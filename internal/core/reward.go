package core

import (
	"fmt"

	"qgov/internal/stats"
)

// SlackTracker maintains the average slack ratio L of Eq. 5:
//
//	L_i = 1/(D·Tref) · Σ (Tref − T_i − T_OVH)
//
// where T_i + T_OVH is the epoch's completion time including the learning
// and DVFS overheads, and D is the number of epochs averaged. The paper
// averages from the application start; a windowed D (the default, 15
// epochs) keeps L responsive after the early epochs — with a cumulative
// average, one early deadline miss would bias L for the rest of a
// 3000-frame run. Window == 0 selects the cumulative behaviour.
type SlackTracker struct {
	Window int // number of epochs in D; 0 = since start

	ratios []float64 // per-epoch slack ratios, newest last (windowed mode)
	sum    float64
	count  int
	l      float64
	prevL  float64
	last   float64
}

// NewSlackTracker returns a tracker with the given window.
func NewSlackTracker(window int) *SlackTracker {
	if window < 0 {
		panic(fmt.Sprintf("core: negative slack window %d", window))
	}
	return &SlackTracker{Window: window}
}

// Observe folds in one epoch: completion time (T_i + T_OVH) against the
// deadline Tref. It returns the updated L.
func (t *SlackTracker) Observe(completionS, refS float64) float64 {
	if refS <= 0 {
		panic("core: slack tracker needs a positive Tref")
	}
	ratio := (refS - completionS) / refS
	t.last = ratio
	t.prevL = t.l
	if t.Window == 0 {
		t.sum += ratio
		t.count++
		t.l = t.sum / float64(t.count)
		return t.l
	}
	t.ratios = append(t.ratios, ratio)
	if len(t.ratios) > t.Window {
		t.ratios = t.ratios[1:]
	}
	t.l = stats.Mean(t.ratios)
	return t.l
}

// L returns the current average slack ratio.
func (t *SlackTracker) L() float64 { return t.l }

// DeltaL returns L_i − L_{i−1}, the ΔL term of the reward (Eq. 4).
func (t *SlackTracker) DeltaL() float64 { return t.l - t.prevL }

// LastRatio returns the most recent epoch's own slack ratio (negative on a
// deadline miss), the input to the reward's instantaneous miss term.
func (t *SlackTracker) LastRatio() float64 { return t.last }

// Reset clears the tracker.
func (t *SlackTracker) Reset() {
	t.ratios = nil
	t.sum, t.l, t.prevL, t.last = 0, 0, 0, 0
	t.count = 0
}

// Reward is the pay-off function of Eq. 4, R = a·r(L) + b·ΔL, with one
// shaping refinement taken from the journal version of this work (Shafik
// et al., TCAD'16, ref [12]): the slack term r(L) peaks at a small positive
// target slack rather than growing with L.
//
// Read literally, R = a·L + b·ΔL is maximised by running every frame at
// f_max — the exact opposite of energy minimisation. What the authors
// describe ("predetermined constants to ensure actions improving L are
// rewarded") only minimises energy if "improving" means *toward the
// deadline*, not "more slack"; the journal paper makes that explicit. So:
//
//	r(L) = −|L − Target|
//
// which rewards finishing just before the deadline (Target ≈ 0.05), the
// lowest-energy point that still meets the performance requirement.
//
// A third term punishes the epoch's *instantaneous* deadline overrun. It
// exists because the averaged L alone is gameable: after a stretch of
// generous slack, one deeply missed frame pulls the window average toward
// the target and would otherwise score as an improvement — yet that missed
// frame is exactly the dropped-frame glitch Section III-B says degrades
// user experience. Charging the overrun per epoch makes misses
// unprofitable regardless of the window state.
type Reward struct {
	A           float64 // weight of the slack term (the paper's a)
	B           float64 // weight of the ΔL term (the paper's b)
	Target      float64 // desired slack ratio
	MissPenalty float64 // weight of the instantaneous overrun term
}

// NewReward returns the constants used in the experiments.
func NewReward() *Reward {
	return &Reward{A: 1.0, B: 0.5, Target: 0.08, MissPenalty: 6.0}
}

// Score computes R for the epoch from the averaged slack ratio L, its
// change ΔL, and the epoch's own slack ratio (negative on a miss).
func (r *Reward) Score(l, deltaL, lastRatio float64) float64 {
	// Tracking term: distance of the averaged slack from the target.
	err := l - r.Target
	if err < 0 {
		err = -err
	}
	// ΔL term with the paper's b: movement toward the target is an
	// improvement — above the target that means shrinking slack, below it
	// growing slack.
	improve := deltaL
	if l > r.Target {
		improve = -deltaL
	}
	// Instantaneous miss term: the fraction of the deadline overrun.
	miss := 0.0
	if lastRatio < 0 {
		miss = -lastRatio
	}
	return -r.A*err + r.B*improve - r.MissPenalty*miss
}
