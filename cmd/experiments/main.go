// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                 # everything, paper-scale
//	experiments -run table1 -frames 800  # one experiment, reduced scale
//	experiments -run fig3 -csv out/      # also write the plot series CSV
//
// Each experiment prints the measured values next to the numbers the paper
// reports; see EXPERIMENTS.md for how to read the comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qgov/internal/experiments"
)

func main() {
	var (
		runWhat = flag.String("run", "all", "experiment: all|table1|table2|table3|fig3|ablations|multiapp")
		frames  = flag.Int("frames", 0, "frames per run (0: each experiment's paper-scale default)")
		seeds   = flag.Int("seeds", len(experiments.DefaultSeeds), "number of seeds to average over")
		csvDir  = flag.String("csv", "", "directory to write per-frame CSV series into (fig3)")
	)
	flag.Parse()

	valid := map[string]bool{
		"all": true, "table1": true, "table2": true, "table3": true,
		"fig3": true, "ablations": true, "multiapp": true,
	}
	if !valid[*runWhat] {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *runWhat)
		os.Exit(2)
	}

	seedList := experiments.DefaultSeeds
	if *seeds < len(seedList) && *seeds > 0 {
		seedList = seedList[:*seeds]
	}

	run := func(name string, f func() error) {
		if *runWhat != "all" && *runWhat != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		return experiments.TableI(seedList, *frames).Render(os.Stdout)
	})
	run("table2", func() error {
		return experiments.TableII(seedList, *frames).Render(os.Stdout)
	})
	run("table3", func() error {
		return experiments.TableIII(seedList, *frames).Render(os.Stdout)
	})
	run("fig3", func() error {
		fig := experiments.Fig3(seedList[0], *frames)
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, "fig3.csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := fig.WriteCSV(f); err != nil {
				return err
			}
			fmt.Printf("  series written to %s\n", path)
		}
		return nil
	})
	run("ablations", func() error {
		return experiments.RenderAblations(os.Stdout, seedList, *frames)
	})
	run("multiapp", func() error {
		return experiments.MultiApp(seedList, *frames).Render(os.Stdout)
	})
}
