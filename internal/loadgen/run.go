package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qgov/internal/governor"
	"qgov/internal/serve/client"
	"qgov/internal/stats"
	"qgov/internal/strhash"
)

// Target is a serving surface the runner can drive. *client.Client (a
// flat server or a router over the binary transport) and *client.Fleet
// (ring-aware direct replica access) both satisfy it, and Local provides
// the in-process oracle the equivalence tests compare against.
type Target interface {
	CreateSession(body []byte) (int, []byte, error)
	DeleteSession(id string) (int, []byte, error)
	DecideBatch(sessions []string, obs []governor.Observation, out []client.Decision) error
}

// Counters is the runner's live-visible state: a caller that needs a
// mid-run view (the soak memory sampler) passes its own instance in
// RunOptions and polls it concurrently.
type Counters struct {
	Creates      atomic.Int64
	CreateErrors atomic.Int64
	Deletes      atomic.Int64
	DeleteErrors atomic.Int64
	Decides      atomic.Int64
	DecideErrors atomic.Int64
	Live         atomic.Int64
	PeakLive     atomic.Int64
}

func (c *Counters) bumpLive(delta int64) {
	live := c.Live.Add(delta)
	for {
		peak := c.PeakLive.Load()
		if live <= peak || c.PeakLive.CompareAndSwap(peak, live) {
			return
		}
	}
}

// Report is the outcome of one run. Checksum is an order-independent
// aggregate over every successful decision (session id, epoch, chosen
// OPP): two runs of the same schedule against deterministic targets must
// produce equal checksums regardless of lane count or interleaving — the
// soak determinism contract.
type Report struct {
	Events       int64   `json:"events"`
	Creates      int64   `json:"creates"`
	CreateErrors int64   `json:"create_errors"`
	Deletes      int64   `json:"deletes"`
	DeleteErrors int64   `json:"delete_errors"`
	Decides      int64   `json:"decides"`
	DecideErrors int64   `json:"decide_errors"`
	PeakLive     int64   `json:"peak_live"`
	EndLive      int64   `json:"end_live"`
	Checksum     uint64  `json:"checksum"`
	WallS        float64 `json:"wall_s"`

	// Latency is the batch round-trip distribution in µs (one sample per
	// decide batch — client-side, so it survives session churn, unlike
	// the server's per-session histograms which die with their session).
	Latency *stats.Histogram `json:"-"`
}

// Batch RTT histogram geometry: [1 µs, 10 s], ten log bins per decade.
const (
	rttHistLoUS = 1
	rttHistHiUS = 1e7
	rttHistBins = 70
)

// RunOptions tunes a run; the zero value is a sensible default.
type RunOptions struct {
	// Lanes is the number of concurrent executor lanes. Sessions are
	// partitioned over lanes by id hash, so one session's events stay
	// ordered however many lanes run. 0 picks min(GOMAXPROCS, 8).
	Lanes int
	// BatchMax caps decides coalesced into one DecideBatch call
	// (default 512, max client.MaxBatch).
	BatchMax int
	// TimeScale, when positive, paces dispatch against the schedule
	// clock: 1.0 replays at recorded speed, 0.5 at double speed. 0 runs
	// flat out (the soak and bench default).
	TimeScale float64
	// Counters, when non-nil, receives the run's live counters so the
	// caller can observe progress concurrently.
	Counters *Counters
}

// decideChecksum folds one successful decision into the order-independent
// aggregate. Mixing makes the sum sensitive to any single changed
// decision despite commutativity.
func decideChecksum(session string, epoch, opp int) uint64 {
	h := strhash.String(session)
	return strhash.Mix(h ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15 ^ (uint64(opp) + 0x517cc1b727220a95))
}

// lane is one executor: it applies its share of the schedule in order,
// coalescing consecutive decides into batches.
type lane struct {
	target   target
	counters *Counters
	batchMax int

	sessions []string
	obs      []governor.Observation
	epochs   []int
	out      []client.Decision

	checksum uint64
	lat      *stats.Histogram
	err      error
}

// target is the internal seam: Target plus nothing — aliased so lane
// code reads cleanly.
type target = Target

func (l *lane) apply(ev Event) {
	if l.err != nil {
		return
	}
	switch ev.Op {
	case OpDecide:
		l.sessions = append(l.sessions, ev.Session)
		l.obs = append(l.obs, ev.Obs)
		l.epochs = append(l.epochs, ev.Obs.Epoch)
		if len(l.sessions) >= l.batchMax {
			l.flush()
		}
	case OpCreate:
		// Control ops order against decides for the same (recycled) id,
		// so the pending batch must land first.
		l.flush()
		body, err := json.Marshal(map[string]any{
			"id":       ev.Session,
			"governor": ev.Governor,
			"platform": ev.Platform,
			"period_s": ev.PeriodS,
			"seed":     ev.Seed,
		})
		if err != nil {
			l.err = err
			return
		}
		status, resp, err := l.target.CreateSession(body)
		if err != nil {
			l.err = fmt.Errorf("loadgen: create %s: %w", ev.Session, err)
			return
		}
		if status != http.StatusCreated {
			l.counters.CreateErrors.Add(1)
			_ = resp
			return
		}
		l.counters.Creates.Add(1)
		l.counters.bumpLive(1)
	case OpDelete:
		l.flush()
		status, _, err := l.target.DeleteSession(ev.Session)
		if err != nil {
			l.err = fmt.Errorf("loadgen: delete %s: %w", ev.Session, err)
			return
		}
		if status != http.StatusNoContent {
			l.counters.DeleteErrors.Add(1)
			return
		}
		l.counters.Deletes.Add(1)
		l.counters.bumpLive(-1)
	}
}

func (l *lane) flush() {
	n := len(l.sessions)
	if n == 0 || l.err != nil {
		return
	}
	if cap(l.out) < n {
		l.out = make([]client.Decision, n)
	}
	out := l.out[:n]
	start := time.Now()
	err := l.target.DecideBatch(l.sessions, l.obs[:n], out)
	l.lat.Add(float64(time.Since(start)) / float64(time.Microsecond))
	if err != nil {
		l.err = fmt.Errorf("loadgen: decide batch: %w", err)
		return
	}
	for i := range out {
		if out[i].Err != "" {
			l.counters.DecideErrors.Add(1)
			continue
		}
		l.counters.Decides.Add(1)
		l.checksum += decideChecksum(l.sessions[i], l.epochs[i], out[i].OPPIdx)
	}
	l.sessions = l.sessions[:0]
	l.obs = l.obs[:0]
	l.epochs = l.epochs[:0]
}

// Run drains a schedule stream into the target and aggregates the
// outcome. Events partition across lanes by session id, so per-session
// ordering (create before decide before delete, across recycled
// generations) holds at any lane count; the aggregate checksum is
// order-independent, so it is identical at any lane count too.
func Run(s Stream, t Target, opts RunOptions) (*Report, error) {
	lanes := opts.Lanes
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
		if lanes > 8 {
			lanes = 8
		}
	}
	batchMax := opts.BatchMax
	if batchMax <= 0 {
		batchMax = 512
	}
	if batchMax > client.MaxBatch {
		batchMax = client.MaxBatch
	}
	counters := opts.Counters
	if counters == nil {
		counters = &Counters{}
	}

	chans := make([]chan Event, lanes)
	ls := make([]*lane, lanes)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan Event, 4*batchMax)
		ls[i] = &lane{
			target:   t,
			counters: counters,
			batchMax: batchMax,
			lat:      stats.NewLogHistogram(rttHistLoUS, rttHistHiUS, rttHistBins),
		}
		wg.Add(1)
		go func(l *lane, ch chan Event) {
			defer wg.Done()
			for ev := range ch {
				l.apply(ev)
			}
			l.flush()
		}(ls[i], chans[i])
	}

	start := time.Now()
	var events int64
	var streamErr error
	for {
		ev, ok, err := s.Next()
		if err != nil {
			streamErr = err
			break
		}
		if !ok {
			break
		}
		if opts.TimeScale > 0 {
			due := time.Duration(ev.AtS * opts.TimeScale * float64(time.Second))
			if ahead := due - time.Since(start); ahead > 0 {
				time.Sleep(ahead)
			}
		}
		events++
		chans[strhash.String(ev.Session)%uint64(lanes)] <- ev
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	rep := &Report{
		Events:       events,
		Creates:      counters.Creates.Load(),
		CreateErrors: counters.CreateErrors.Load(),
		Deletes:      counters.Deletes.Load(),
		DeleteErrors: counters.DeleteErrors.Load(),
		Decides:      counters.Decides.Load(),
		DecideErrors: counters.DecideErrors.Load(),
		PeakLive:     counters.PeakLive.Load(),
		EndLive:      counters.Live.Load(),
		WallS:        time.Since(start).Seconds(),
		Latency:      stats.NewLogHistogram(rttHistLoUS, rttHistHiUS, rttHistBins),
	}
	var firstErr error = streamErr
	for _, l := range ls {
		rep.Checksum += l.checksum
		if err := rep.Latency.Merge(l.lat); err != nil && firstErr == nil {
			firstErr = err
		}
		if l.err != nil && firstErr == nil {
			firstErr = l.err
		}
	}
	return rep, firstErr
}
