package workload

// SPLASH-2 benchmark workload models, following the characterisation in
// Woo et al. (ISCA'95): scientific kernels with strong phase structure.

// Splash2Barnes: Barnes-Hut N-body — per-step work drifts slowly as bodies
// cluster and the tree deepens.
func Splash2Barnes() Profile {
	return Profile{
		Name:                "splash2.barnes",
		BaseCyclesPerThread: 30e6,
		TrendPerFrame:       0.0004,
		WalkSigma:           0.015,
		NoiseSigma:          0.05,
		ImbalanceCV:         0.10,
		LevelMin:            0.7,
		LevelMax:            1.6,
	}
}

// Splash2FMM: fast multipole method — similar drift to barnes with the
// upward/downward pass alternation visible period-2.
func Splash2FMM() Profile {
	return Profile{
		Name:                "splash2.fmm",
		BaseCyclesPerThread: 28e6,
		PeriodFrames:        2,
		PeriodAmp:           0.10,
		WalkSigma:           0.01,
		NoiseSigma:          0.05,
		ImbalanceCV:         0.08,
		LevelMin:            0.7,
		LevelMax:            1.5,
	}
}

// Splash2Ocean: regular grid solver — highly periodic red-black relaxation
// sweeps with little noise.
func Splash2Ocean() Profile {
	return Profile{
		Name:                "splash2.ocean",
		BaseCyclesPerThread: 33e6,
		PeriodFrames:        4,
		PeriodAmp:           0.20,
		NoiseSigma:          0.02,
		ImbalanceCV:         0.03,
		LevelMin:            0.85,
		LevelMax:            1.2,
	}
}

// Splash2Radix: radix sort — a small number of passes with large step
// changes between digit phases; modelled as strong period-8 oscillation.
func Splash2Radix() Profile {
	return Profile{
		Name:                "splash2.radix",
		BaseCyclesPerThread: 26e6,
		PeriodFrames:        8,
		PeriodAmp:           0.45,
		NoiseSigma:          0.03,
		ImbalanceCV:         0.04,
		LevelMin:            0.6,
		LevelMax:            1.6,
	}
}

// Splash2LU: blocked LU decomposition — the trailing submatrix shrinks, so
// per-iteration work decreases steadily; imbalance grows near the end but
// a constant CV approximates it.
func Splash2LU() Profile {
	return Profile{
		Name:                "splash2.lu",
		BaseCyclesPerThread: 40e6,
		TrendPerFrame:       -0.0025,
		NoiseSigma:          0.03,
		ImbalanceCV:         0.10,
		LevelMin:            0.5,
		LevelMax:            1.3,
	}
}

// Splash2Water: molecular dynamics (water-nsquared) — very regular force
// computation with slight thermostat-driven drift.
func Splash2Water() Profile {
	return Profile{
		Name:                "splash2.water",
		BaseCyclesPerThread: 31e6,
		WalkSigma:           0.008,
		NoiseSigma:          0.02,
		ImbalanceCV:         0.03,
		LevelMin:            0.85,
		LevelMax:            1.2,
	}
}

// Splash2Raytrace: ray tracing — demand tracks scene content per tile;
// high per-thread imbalance and noise.
func Splash2Raytrace() Profile {
	return Profile{
		Name:                "splash2.raytrace",
		BaseCyclesPerThread: 27e6,
		WalkSigma:           0.03,
		NoiseSigma:          0.12,
		ImbalanceCV:         0.20,
		LevelMin:            0.5,
		LevelMax:            2.0,
	}
}

// Splash2Cholesky: sparse Cholesky factorisation — irregular supernodal
// work with bursts, decreasing toward the end of the factorisation.
func Splash2Cholesky() Profile {
	return Profile{
		Name:                "splash2.cholesky",
		BaseCyclesPerThread: 29e6,
		TrendPerFrame:       -0.0015,
		BurstProb:           0.06,
		BurstMag:            1.8,
		NoiseSigma:          0.10,
		ImbalanceCV:         0.15,
		LevelMin:            0.4,
		LevelMax:            1.8,
	}
}

// Splash2Profiles returns the full SPLASH-2 model set.
func Splash2Profiles() []Profile {
	return []Profile{
		Splash2Barnes(), Splash2FMM(), Splash2Ocean(), Splash2Radix(),
		Splash2LU(), Splash2Water(), Splash2Raytrace(), Splash2Cholesky(),
	}
}
