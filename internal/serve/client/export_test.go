package client

// setNextBatchHandle forces the next DecideBatch on every conn to try
// this handle value first. The wraparound regression test uses it to
// land on a still-busy handle without issuing 2^20 real batches.
func setNextBatchHandle(c *Client, h uint32) {
	for _, cn := range c.conns {
		cn.mu.Lock()
		cn.nextBatch = h
		cn.mu.Unlock()
	}
}
