package registry

import (
	"strings"

	"qgov/internal/sessionstore"
)

// checkpoints adapts a BlobStore to sessionstore.CheckpointStore:
// session state lives under session/<id> beside the registry's
// manifests and blobs, so one shared store carries both the fleet's
// published policies and its live session checkpoints. Replicas pointed
// at the same store hand sessions off through it exactly as they would
// through a shared directory — the router's RemoveReplica needs no
// common filesystem.
type checkpoints struct {
	b BlobStore
}

// Checkpoints returns the registry-backed session checkpoint store over
// the given blob store.
func Checkpoints(b BlobStore) sessionstore.CheckpointStore {
	return checkpoints{b: b}
}

// Save implements sessionstore.CheckpointStore; atomicity is the blob
// store's Put contract.
func (c checkpoints) Save(id string, state []byte) error {
	return c.b.Put(sessionPrefix+id, state)
}

// Load implements sessionstore.CheckpointStore.
func (c checkpoints) Load(id string) ([]byte, error) {
	return c.b.Get(sessionPrefix + id)
}

// Delete implements sessionstore.CheckpointStore.
func (c checkpoints) Delete(id string) error {
	return c.b.Delete(sessionPrefix + id)
}

// List implements sessionstore.CheckpointStore.
func (c checkpoints) List() ([]string, error) {
	keys, err := c.b.List(sessionPrefix)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(keys))
	for _, k := range keys {
		ids = append(ids, strings.TrimPrefix(k, sessionPrefix))
	}
	return ids, nil
}
