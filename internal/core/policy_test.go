package core

import (
	"math"
	"testing"

	"qgov/internal/xrand"
	"testing/quick"
)

// linNorm mimics an OPP table's normalised frequency axis.
func linNorm(actions int) []float64 {
	nf := make([]float64, actions)
	for a := range nf {
		if actions == 1 {
			nf[a] = 1
		} else {
			nf[a] = float64(a) / float64(actions-1)
		}
	}
	return nf
}

func TestUniformPolicyIsUniform(t *testing.T) {
	rng := xrand.New(1)
	const actions, draws = 10, 20000
	counts := make([]int, actions)
	p := UniformPolicy{}
	for i := 0; i < draws; i++ {
		counts[p.Sample(rng, actions, 0.3, linNorm(actions))]++
	}
	want := float64(draws) / actions
	for a, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("action %d drawn %d times, want ≈%v", a, c, want)
		}
	}
}

func TestEPDWeightsAreDistribution(t *testing.T) {
	p := NewExponentialPolicy()
	for _, slack := range []float64{-0.8, -0.1, 0, 0.1, 0.8} {
		w := p.Weights(19, slack, linNorm(19))
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				t.Fatalf("negative probability at slack %v", slack)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights at slack %v sum to %v", slack, sum)
		}
	}
}

func TestEPDDirection(t *testing.T) {
	p := NewExponentialPolicy()
	nf := linNorm(19)
	// Positive slack (over-performing): slow actions more likely.
	w := p.Weights(19, 0.4, nf)
	if !(w[0] > w[18]) {
		t.Fatalf("positive slack: P(slowest)=%v not above P(fastest)=%v", w[0], w[18])
	}
	// Negative slack (missing deadlines): fast actions more likely.
	w = p.Weights(19, -0.4, nf)
	if !(w[18] > w[0]) {
		t.Fatalf("negative slack: P(fastest)=%v not above P(slowest)=%v", w[18], w[0])
	}
	// Near-zero slack: close to uniform (the paper's λ-dominated regime).
	w = p.Weights(19, 0.001, nf)
	for _, v := range w {
		if math.Abs(v-1.0/19) > 0.02 {
			t.Fatalf("near-zero slack not ≈uniform: %v", w)
		}
	}
}

func TestEPDMonotoneAcrossActions(t *testing.T) {
	p := NewExponentialPolicy()
	w := p.Weights(19, 0.3, linNorm(19))
	for a := 1; a < len(w); a++ {
		if w[a] > w[a-1]+1e-12 {
			t.Fatalf("positive slack weights not non-increasing at %d: %v > %v", a, w[a], w[a-1])
		}
	}
}

func TestEPDLambdaFloor(t *testing.T) {
	// Even at extreme slack, no action's probability collapses to zero:
	// the λ term keeps a floor so every V-F point stays reachable.
	p := NewExponentialPolicy()
	w := p.Weights(19, 5, linNorm(19)) // extreme positive slack
	if w[18] <= 0 {
		t.Fatalf("fastest action starved: %v", w[18])
	}
	floor := p.Lambda / (19*p.Lambda + 19) // lower bound on normalised weight
	if w[18] < floor*0.9 {
		t.Fatalf("fastest action below λ floor: %v < %v", w[18], floor)
	}
}

func TestEPDSampleMatchesWeights(t *testing.T) {
	p := NewExponentialPolicy()
	rng := xrand.New(7)
	const actions, draws = 7, 40000
	nf := linNorm(actions)
	w := p.Weights(actions, -0.3, nf)
	counts := make([]int, actions)
	for i := 0; i < draws; i++ {
		counts[p.Sample(rng, actions, -0.3, nf)]++
	}
	for a := range w {
		got := float64(counts[a]) / draws
		if math.Abs(got-w[a]) > 0.015 {
			t.Fatalf("action %d: empirical %v vs weight %v", a, got, w[a])
		}
	}
}

func TestEPDZeroBetaIsUniform(t *testing.T) {
	p := &ExponentialPolicy{Beta: 0, Lambda: 0.1}
	w := p.Weights(5, 0.7, linNorm(5))
	for _, v := range w {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("β=0 weights not uniform: %v", w)
		}
	}
}

func TestEpsilonScheduleHoldsThenDecays(t *testing.T) {
	s := NewEpsilonSchedule()
	if s.Epsilon() != s.Epsilon0 {
		t.Fatalf("initial ε = %v, want ε0", s.Epsilon())
	}
	// During the hold phase ε stays at ε0.
	for i := 0; i < s.HoldEpochs; i++ {
		s.Advance(0.5, false)
		if s.Epsilon() != s.Epsilon0 {
			t.Fatalf("ε moved during hold at epoch %d: %v", i, s.Epsilon())
		}
	}
	// After the hold it decays monotonically.
	for i := 0; i < 100; i++ {
		prev := s.Epsilon()
		s.Advance(0.5, false)
		if s.Epsilon() >= prev {
			t.Fatal("ε did not decay after the hold")
		}
	}
}

func TestEpsilonBoostSignals(t *testing.T) {
	// Both acceleration signals must shorten exploration relative to the
	// base clock when they are enabled.
	base := NewEpsilonSchedule()
	quiet := NewEpsilonSchedule()
	inBand := NewEpsilonSchedule()
	for _, sch := range []*EpsilonSchedule{base, quiet, inBand} {
		sch.HoldEpochs = 0 // test the decay phase directly
		sch.BoostDecay, sch.BandBoost = 0.02, 0.01
		sch.Reset()
	}
	for i := 0; i < 50; i++ {
		base.Advance(0.5, false)
		quiet.Advance(0.5, true)    // quiet policy: BoostDecay applies
		inBand.Advance(0.01, false) // slack in band: BandBoost applies
	}
	if !(quiet.Epsilon() < base.Epsilon()) {
		t.Fatalf("quiet ε %v not below base ε %v", quiet.Epsilon(), base.Epsilon())
	}
	if !(inBand.Epsilon() < base.Epsilon()) {
		t.Fatalf("in-band ε %v not below base ε %v", inBand.Epsilon(), base.Epsilon())
	}
}

func TestEpsilonReset(t *testing.T) {
	s := NewEpsilonSchedule()
	s.Advance(0, true)
	s.Reset()
	if s.Epsilon() != s.Epsilon0 {
		t.Fatal("Reset did not restore ε0")
	}
}

// Property: EPD weights form a valid distribution for any parameters and
// slack, and sampling always returns a legal index.
func TestEPDValidDistributionProperty(t *testing.T) {
	f := func(rawBeta, rawLambda uint8, slack float64, rawActions uint8, seed int64) bool {
		if math.IsNaN(slack) || math.IsInf(slack, 0) {
			return true
		}
		slack = math.Mod(slack, 3)
		p := &ExponentialPolicy{
			Beta:   float64(rawBeta%20) + 0.1,
			Lambda: float64(rawLambda%100) / 100,
		}
		actions := int(rawActions%30) + 1
		nf := linNorm(actions)
		w := p.Weights(actions, slack, nf)
		sum := 0.0
		for _, v := range w {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		rng := xrand.New(seed)
		a := p.Sample(rng, actions, slack, nf)
		return a >= 0 && a < actions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
