package governor

import "fmt"

// Performance pins the fastest operating point — Linux's "performance"
// governor. It bounds achievable performance and anchors the energy
// comparison from above.
type Performance struct {
	maxIdx int
}

// NewPerformance constructs the governor.
func NewPerformance() *Performance { return &Performance{} }

// Name implements Governor.
func (g *Performance) Name() string { return "performance" }

// Reset implements Governor.
func (g *Performance) Reset(ctx Context) { g.maxIdx = ctx.Table.MaxIdx() }

// Decide implements Governor.
func (g *Performance) Decide(Observation) int { return g.maxIdx }

// Powersave pins the slowest operating point — Linux's "powersave"
// governor. On deadline workloads it trades massive deadline misses for
// minimum power (not minimum energy: frames stretch).
type Powersave struct{}

// NewPowersave constructs the governor.
func NewPowersave() *Powersave { return &Powersave{} }

// Name implements Governor.
func (g *Powersave) Name() string { return "powersave" }

// Reset implements Governor.
func (g *Powersave) Reset(Context) {}

// Decide implements Governor.
func (g *Powersave) Decide(Observation) int { return 0 }

// Userspace pins a caller-chosen operating point, like writing a frequency
// to scaling_setspeed under Linux's "userspace" governor.
type Userspace struct {
	TargetMHz int
	idx       int
}

// NewUserspace constructs the governor for a fixed frequency in MHz.
func NewUserspace(mhz int) *Userspace { return &Userspace{TargetMHz: mhz} }

// Name implements Governor.
func (g *Userspace) Name() string { return fmt.Sprintf("userspace(%dMHz)", g.TargetMHz) }

// Reset implements Governor. An unknown frequency panics: the CLI validates
// user input before constructing the governor, so this is unreachable from
// outside and indicates a harness bug.
func (g *Userspace) Reset(ctx Context) {
	idx := ctx.Table.IndexOfMHz(g.TargetMHz)
	if idx < 0 {
		panic(fmt.Sprintf("governor: userspace target %d MHz not in table", g.TargetMHz))
	}
	g.idx = idx
}

// Decide implements Governor.
func (g *Userspace) Decide(Observation) int { return g.idx }

func init() {
	Register("performance", func() Governor { return NewPerformance() })
	Register("powersave", func() Governor { return NewPowersave() })
}
