package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"qgov/internal/governor"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// TableIIIRow is one method's row of Table III.
type TableIIIRow struct {
	Method     string
	Epochs     float64 // mean decision epochs until the policy stabilises
	PaperValue int     // the paper's reported worst-case epochs
	Converged  int     // how many seeds actually converged
}

// TableIIIResult reproduces "Comparative evaluation of worst case learning
// overhead": the decision epochs a video decode (Tref ≈ 31 ms, the paper's
// ffmpeg setup) needs before the learnt policy stops changing. The
// multi-core DTM of ref [20] trains an independent Q-table per core, so
// all four agents must converge; the proposed RTM shares one table across
// cores and halves the overhead.
type TableIIIResult struct {
	Workload string
	Frames   int
	Seeds    int
	Rows     []TableIIIRow
}

// tableIIITrace builds the decode workload with the paper's 31 ms frame
// budget (≈32 fps). The paper derives Table III from a steady micro-
// benchmark ("per-frame execution time of ffmpeg decoding three frames"),
// so the trace is a stationary decode loop — GOP structure and motion
// noise but no scene cuts. On a non-stationary workload "epochs until the
// policy stops changing" is ill-defined: every scene change re-opens
// learning for both methods.
func tableIIITrace(seed int64, frames int) workload.Trace {
	return workload.VideoConfig{
		Name:            "ffmpeg-31ms",
		Codec:           "h264",
		FPS:             32,
		NumFrames:       frames,
		Threads:         4,
		GOPLength:       12,
		BFrames:         2,
		BaseCycles:      100e6,
		IWeight:         1.12,
		BWeight:         0.92,
		SceneChangeProb: 0,
		SceneSigma:      0.30,
		SceneWalkSigma:  0.004,
		SceneMin:        0.80,
		SceneMax:        1.25,
		NoiseSigma:      0.04,
		ImbalanceCV:     0.05,
		Seed:            seed,
	}.Generate()
}

// TableIII runs the experiment. frames <= 0 selects 1500 frames (enough
// headroom for the slower learner to converge).
func TableIII(seeds []int64, frames int) *TableIIIResult {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 1500
	}
	methods := []struct {
		name  string
		paper int
		build func(tr workload.Trace) governor.Governor
	}{
		{"mldtm", 205, func(workload.Trace) governor.Governor { return governor.NewMLDTM() }},
		{"rtm", 105, func(tr workload.Trace) governor.Governor { return newRTM(tr) }},
	}

	res := &TableIIIResult{Frames: frames, Seeds: len(seeds)}
	for _, m := range methods {
		var sum float64
		var conv int
		for _, seed := range seeds {
			tr := tableIIITrace(seed, frames)
			res.Workload = tr.Name
			r := sim.Run(sim.Config{Trace: tr, Governor: m.build(tr), Seed: seed})
			if r.ConvergedAt >= 0 {
				sum += float64(r.ConvergedAt)
				conv++
			} else {
				// A non-converged run contributes the full horizon: the
				// honest pessimistic bound, called out in Converged.
				sum += float64(frames)
			}
		}
		res.Rows = append(res.Rows, TableIIIRow{
			Method:     m.name,
			Epochs:     sum / float64(len(seeds)),
			PaperValue: m.paper,
			Converged:  conv,
		})
	}
	return res
}

// Row returns the named row, or nil.
func (t *TableIIIResult) Row(method string) *TableIIIRow {
	for i := range t.Rows {
		if t.Rows[i].Method == method {
			return &t.Rows[i]
		}
	}
	return nil
}

// Render writes the table in the paper's layout.
func (t *TableIIIResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table III — learning overhead in decision epochs (%s, %d frames, %d seeds)\n",
		t.Workload, t.Frames, t.Seeds)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Methodology\tEpochs (T_OVH)\tPaper\tConverged runs")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d/%d\n", r.Method, r.Epochs, r.PaperValue, r.Converged, t.Seeds)
	}
	return tw.Flush()
}
