package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/workload"
)

// The multi-application experiment prototypes the paper's stated future
// work: two applications executing concurrently on the A15 cluster — a
// video decode pinned to cores 0-1 and an FFT pipeline pinned to cores 2-3,
// each with its own deadline — under one shared V-F lever.
//
// Compared controllers:
//
//	multi-rtm — core.MultiRTM: per-app slack tracking, binding-app state
//	ondemand  — deadline-blind utilisation control (per-cluster)
//	oracle    — offline minimum-energy OPP meeting both deadlines
//
// The experiment uses its own epoch loop rather than sim.Run because the
// engine's Observation carries one application's timing; here each epoch
// produces two.

// MultiAppRow is one controller's aggregate.
type MultiAppRow struct {
	Method     string
	NormEnergy float64 // vs the combined-trace oracle
	MissVideo  float64 // per-app deadline miss rates
	MissFFT    float64
	PerfVideo  float64 // per-app mean exec/Tref
	PerfFFT    float64
}

// MultiAppResult aggregates the experiment.
type MultiAppResult struct {
	Frames int
	Seeds  int
	Rows   []MultiAppRow
}

// multiAppWorkload builds the paired traces: both apps share the 25 fps
// period (concurrent decision epochs; per-app deadlines still tracked
// separately) with two threads each.
func multiAppWorkload(seed int64, frames int) (video, fftapp workload.Trace) {
	video = workload.VideoConfig{
		Name: "video-2t", Codec: "h264", FPS: 25, NumFrames: frames, Threads: 2,
		GOPLength: 12, BFrames: 2, BaseCycles: 60e6, IWeight: 1.2, BWeight: 0.88,
		SceneChangeProb: 1.0 / 90, SceneSigma: 0.3, SceneWalkSigma: 0.012,
		SceneMin: 0.6, SceneMax: 1.4, NoiseSigma: 0.05, ImbalanceCV: 0.06,
		Seed: seed,
	}.Generate()
	fftapp = workload.FFTAppConfig{
		Name: "fft-2t", FPS: 25, NumFrames: frames, Threads: 2,
		N: 1 << 16, BatchPerThread: 7, CyclesPerBfly: 10, JitterSigma: 0.03,
		Seed: seed + 1,
	}.Generate()
	return video, fftapp
}

// combined merges the two traces into one 4-thread trace (cores 0-1 video,
// cores 2-3 FFT) for the oracle and ondemand baselines.
func combined(video, fftapp workload.Trace) workload.Trace {
	frames := make([]workload.Frame, video.Len())
	for i := range frames {
		cy := make([]uint64, 0, 4)
		cy = append(cy, video.Frames[i].Cycles...)
		cy = append(cy, fftapp.Frames[i].Cycles...)
		frames[i] = workload.Frame{Cycles: cy}
	}
	return workload.Trace{Name: "video+fft", RefTimeS: video.RefTimeS, Frames: frames}
}

// MultiApp runs the experiment. frames <= 0 selects 1200 frames.
func MultiApp(seeds []int64, frames int) *MultiAppResult {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 1200
	}
	type accum struct{ e, missV, missF, perfV, perfF float64 }
	acc := map[string]*accum{}
	methods := []string{"multi-rtm", "ondemand", "oracle"}
	for _, m := range methods {
		acc[m] = &accum{}
	}

	for _, seed := range seeds {
		video, fftapp := multiAppWorkload(seed, frames)
		comb := combined(video, fftapp)
		for _, method := range methods {
			r := runMultiApp(method, video, fftapp, comb, seed)
			a := acc[method]
			a.e += r.energyJ
			a.missV += r.missV
			a.missF += r.missF
			a.perfV += r.perfV
			a.perfF += r.perfF
		}
	}

	res := &MultiAppResult{Frames: frames, Seeds: len(seeds)}
	n := float64(len(seeds))
	oracleMean := acc["oracle"].e / n
	for _, method := range methods {
		a := acc[method]
		res.Rows = append(res.Rows, MultiAppRow{
			Method:     method,
			NormEnergy: (a.e / n) / oracleMean,
			MissVideo:  a.missV / n,
			MissFFT:    a.missF / n,
			PerfVideo:  a.perfV / n,
			PerfFFT:    a.perfF / n,
		})
	}
	return res
}

type multiRunStats struct {
	energyJ float64
	missV   float64
	missF   float64
	perfV   float64
	perfF   float64
}

// runMultiApp executes one controller over the paired traces.
func runMultiApp(method string, video, fftapp, comb workload.Trace, seed int64) multiRunStats {
	cluster := platform.DefaultA15Cluster(seed)
	ctx := governor.Context{
		Table:    cluster.Table(),
		NumCores: cluster.NumCores(),
		PeriodS:  comb.RefTimeS,
		Seed:     seed,
	}

	var (
		mrtm *core.MultiRTM
		gov  governor.Governor
	)
	switch method {
	case "multi-rtm":
		cfg := core.DefaultConfig()
		// Two applications double the chances that quantisation grazes a
		// deadline; the prototype holds a wider slack margin than the
		// single-app RTM.
		cfg.Reward = &core.Reward{A: 1, B: 0.5, Target: 0.15, MissPenalty: 6}
		mrtm = core.NewMultiRTM(cfg, 2)
		series := append(video.MaxPerFrame(), fftapp.MaxPerFrame()...)
		if err := mrtm.Calibrate(series); err != nil {
			panic(err)
		}
		mrtm.Reset(ctx)
	case "ondemand":
		gov = governor.NewOndemand()
		gov.Reset(ctx)
	case "oracle":
		gov = governor.NewOracle(comb, platform.DefaultA15PowerModel())
		gov.Reset(ctx)
	default:
		panic(fmt.Sprintf("experiments: unknown multi-app method %q", method))
	}

	var st multiRunStats
	mObs := core.MultiObservation{Epoch: -1}
	gObs := governor.Observation{Epoch: -1}
	prev := make([]platform.PMUSample, cluster.NumCores())
	for c := range prev {
		prev[c] = cluster.PMU(c).Read()
	}

	for i := 0; i < comb.Len(); i++ {
		var idx int
		var overhead float64
		if mrtm != nil {
			idx = mrtm.DecideMulti(mObs)
			overhead = mrtm.DecisionOverheadS()
		} else {
			idx = gov.Decide(gObs)
		}
		transition := cluster.SetOPP(idx)
		rep := cluster.Execute(comb.Frames[i].Cycles, overhead+transition, comb.RefTimeS)

		// Per-application completion at the applied frequency.
		f := rep.OPP.FreqHz()
		ovh := overhead + transition
		execV := float64(video.Frames[i].MaxCycles())/f + ovh
		execF := float64(fftapp.Frames[i].MaxCycles())/f + ovh
		st.perfV += execV / video.RefTimeS
		st.perfF += execF / fftapp.RefTimeS
		if execV > video.RefTimeS {
			st.missV++
		}
		if execF > fftapp.RefTimeS {
			st.missF++
		}
		st.energyJ += rep.EnergyJ

		if mrtm != nil {
			mObs = core.MultiObservation{
				Epoch: i,
				Apps: []core.AppObservation{
					{ExecTimeS: execV, PeriodS: video.RefTimeS, CriticalCycles: video.Frames[i].MaxCycles()},
					{ExecTimeS: execF, PeriodS: fftapp.RefTimeS, CriticalCycles: fftapp.Frames[i].MaxCycles()},
				},
			}
		} else {
			cycles := make([]uint64, cluster.NumCores())
			utils := make([]float64, cluster.NumCores())
			for c := range cycles {
				s := cluster.PMU(c).Read()
				d := s.Delta(prev[c])
				prev[c] = s
				cycles[c] = d.Cycles
				utils[c] = d.Utilization()
			}
			gObs = governor.Observation{
				Epoch: i, Cycles: cycles, Util: utils,
				ExecTimeS: rep.ExecTimeS, PeriodS: comb.RefTimeS,
				WallTimeS: rep.WallTimeS, PowerW: rep.SensorPowerW,
				TempC: rep.EndTempC, OPPIdx: rep.OPPIdx,
			}
		}
	}
	n := float64(comb.Len())
	st.missV /= n
	st.missF /= n
	st.perfV /= n
	st.perfF /= n
	return st
}

// Row returns the named row, or nil.
func (m *MultiAppResult) Row(method string) *MultiAppRow {
	for i := range m.Rows {
		if m.Rows[i].Method == method {
			return &m.Rows[i]
		}
	}
	return nil
}

// Render writes the comparison.
func (m *MultiAppResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension E1 — two concurrent applications (video + FFT, %d frames, %d seeds)\n",
		m.Frames, m.Seeds)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Method\tNorm. energy\tVideo miss\tFFT miss\tVideo perf\tFFT perf")
	for _, r := range m.Rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f%%\t%.1f%%\t%.2f\t%.2f\n",
			r.Method, r.NormEnergy, r.MissVideo*100, r.MissFFT*100, r.PerfVideo, r.PerfFFT)
	}
	return tw.Flush()
}
