package wire_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"qgov/internal/governor"
	"qgov/internal/wire"
)

// corruptions of a valid frame used as seeds alongside the checked-in
// corpus under testdata/fuzz.
func frameSeeds(f *testing.F) {
	f.Helper()
	obs := sampleObs()
	frame, err := wire.AppendObserve(nil, 1, "c0", &obs)
	if err != nil {
		f.Fatal(err)
	}
	dec, err := wire.AppendDecide(nil, 2, 5, 10, 1800, "boom")
	if err != nil {
		f.Fatal(err)
	}
	ctrl, err := wire.AppendControl(nil, 3, wire.OpCreate, "c0", []byte(`{"governor":"rtm","seed":1}`))
	if err != nil {
		f.Fatal(err)
	}
	// A forwarded observe (replica → replica relay on behalf of a stale
	// direct client) and the two shapes of OpMembers traffic: a fetch
	// (empty body) and a push carrying the membership table.
	fwd, err := wire.AppendObserveBytes(nil, 5, wire.FlagForwarded, []byte("c1"), &obs)
	if err != nil {
		f.Fatal(err)
	}
	membersFetch, err := wire.AppendControl(nil, 6, wire.OpMembers, "", nil)
	if err != nil {
		f.Fatal(err)
	}
	membersPush, err := wire.AppendControl(nil, 7, wire.OpMembers, "",
		[]byte(`{"epoch":3,"vnodes":128,"members":["127.0.0.1:7101","127.0.0.1:7102"],"self":"127.0.0.1:7101"}`))
	if err != nil {
		f.Fatal(err)
	}
	// A create body carrying the registry/cap fields (warm_start,
	// workload, thermal_cap_mw) — the newest control-plane schema.
	warm, err := wire.AppendControl(nil, 4, wire.OpCreate, "w0",
		[]byte(`{"governor":"rtm","workload":"mpeg4-30fps","warm_start":"auto","thermal_cap_mw":1500}`))
	if err != nil {
		f.Fatal(err)
	}
	reply, err := wire.AppendControlReply(nil, 3, 201, []byte(`{"id":"c0"}`))
	if err != nil {
		f.Fatal(err)
	}
	// Relay-path shapes: a maximum-length session id (the ObserveMeta
	// bound) and a flags byte with every bit set.
	longSess, err := wire.AppendObserveBytes(nil, 8, 0xff, bytes.Repeat([]byte("s"), wire.MaxSession), &obs)
	if err != nil {
		f.Fatal(err)
	}
	// A traced observe (trailing 8-byte trace id behind FlagTraced) and
	// the same frame with its tail cut off — the decoder must reject the
	// flagged-but-idless shape, not read past the end.
	traced, err := wire.AppendObserveTraced(nil, 9, wire.FlagForwarded, 0xfeedfacecafebeef, []byte("c2"), &obs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(traced)
	f.Add(traced[:len(traced)-8])
	f.Add(frame)
	f.Add(dec)
	f.Add(ctrl)
	f.Add(longSess)
	f.Add(longSess[:wire.HeaderSize+58]) // observe cut right at the session bytes
	f.Add(warm)
	f.Add(reply)
	f.Add(fwd)
	f.Add(membersFetch)
	f.Add(membersPush)
	f.Add(append(bytes.Clone(fwd), membersPush...))
	f.Add(ctrl[:len(ctrl)-5]) // control cut mid-body
	lying := bytes.Clone(ctrl)
	lying[len(lying)-len(`{"governor":"rtm","seed":1}`)-1] = 0xff // forge the body length
	f.Add(lying)
	f.Add(append(bytes.Clone(frame), dec...)) // two frames back to back
	f.Add(frame[:wire.HeaderSize])            // header only
	f.Add(frame[:len(frame)-3])               // cut mid-payload
	flipped := bytes.Clone(frame)
	flipped[9] ^= 0x80
	f.Add(flipped)
	huge := bytes.Clone(frame)
	binary.BigEndian.PutUint32(huge[4:], wire.MaxPayload+1)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte{0x51, 0x47}) // magic alone
}

// FuzzDecodeFrame feeds arbitrary bytes through the stream reader and
// message decoders. Whatever the input — truncated, oversized, or
// bit-flipped — decoding must return an error or a value, never panic,
// hang, or allocate beyond the frame bound; decoded messages are reused
// across frames exactly as the server does.
func FuzzDecodeFrame(f *testing.F) {
	frameSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// The slice-based splitter and the stream reader must agree on the
		// first frame: both accept or both reject.
		_, _, _, sliceErr := wire.DecodeFrame(data)
		first := true

		r := wire.NewReader(bytes.NewReader(data))
		var o wire.Observe
		var d wire.Decide
		var c wire.Control
		var cr wire.ControlReply
		for {
			typ, payload, err := r.Next()
			if first {
				if (err == nil) != (sliceErr == nil) {
					t.Fatalf("Reader err %v, DecodeFrame err %v on the same bytes", err, sliceErr)
				}
				first = false
			}
			if err != nil {
				return
			}
			// Any payload the reader accepts must survive re-framing: the
			// router's relay path re-frames payloads verbatim with
			// AppendFrame, so the new frame must decode back bit-identically.
			if reframed, ferr := wire.AppendFrame(nil, typ, payload); ferr != nil {
				t.Fatalf("AppendFrame rejected an accepted payload (%d bytes): %v", len(payload), ferr)
			} else if t2, p2, rest, derr := wire.DecodeFrame(reframed); derr != nil || t2 != typ || len(rest) != 0 || !bytes.Equal(p2, payload) {
				t.Fatalf("re-framed payload mangled: typ %d→%d rest %d err %v", typ, t2, len(rest), derr)
			}
			switch typ {
			case wire.MsgObserve:
				if o.Decode(payload) == nil {
					// The zero-copy relay metadata must agree with the full
					// decoder on every frame the decoder accepts.
					id, flags, sess, merr := wire.ObserveMeta(payload)
					if merr != nil {
						t.Fatalf("ObserveMeta rejected a decodable observe: %v", merr)
					}
					if id != o.ID || flags != o.Flags || !bytes.Equal(sess, o.Session) {
						t.Fatalf("ObserveMeta = (%d, %#x, %q), Decode = (%d, %#x, %q)",
							id, flags, sess, o.ID, o.Flags, o.Session)
					}
					// Rewriting the id (what the relay does per request) must
					// change the id and nothing else.
					if err := wire.SetObserveID(payload, id^0xdeadbeef); err != nil {
						t.Fatalf("SetObserveID: %v", err)
					}
					var o2 wire.Observe
					if err := o2.Decode(payload); err != nil {
						t.Fatalf("observe broken by SetObserveID: %v", err)
					}
					if o2.ID != o.ID^0xdeadbeef || o2.Flags != o.Flags || !bytes.Equal(o2.Session, o.Session) ||
						!observationsBitEqual(o2.Obs, o.Obs) {
						t.Fatal("SetObserveID changed more than the id")
					}
				}
			case wire.MsgDecide:
				_ = d.Decode(payload)
			case wire.MsgControl:
				_ = c.Decode(payload)
			case wire.MsgControlReply:
				_ = cr.Decode(payload)
			}
		}
	})
}

// FuzzControlRoundTrip drives arbitrary control ops, sessions, and
// bodies through encode → decode (both directions of the control plane)
// and requires every field back exactly; out-of-bound inputs must be
// rejected by the encoder, cleanly.
func FuzzControlRoundTrip(f *testing.F) {
	f.Add(uint32(1), byte(1), "cluster-0", []byte(`{"governor":"rtm"}`), uint16(201))
	f.Add(uint32(2), byte(1), "w0",
		[]byte(`{"governor":"rtm","workload":"h264-football","warm_start":"deadbeef00112233","thermal_cap_mw":2500.5}`), uint16(201))
	f.Add(uint32(0), byte(6), "", []byte{}, uint16(404))
	f.Add(uint32(1<<31), byte(0xff), "s", bytes.Repeat([]byte{0}, 300), uint16(0))
	f.Fuzz(func(t *testing.T, id uint32, op byte, session string, body []byte, status uint16) {
		frame, err := wire.AppendControl(nil, id, op, session, body)
		if err != nil {
			if len(session) <= wire.MaxSession && len(body) < wire.MaxPayload-wire.MaxSession-32 {
				t.Fatalf("encoder rejected in-bounds control: %v", err)
			}
			return
		}
		typ, payload, rest, err := wire.DecodeFrame(frame)
		if err != nil || typ != wire.MsgControl || len(rest) != 0 {
			t.Fatalf("decoding our own control frame: typ %d rest %d err %v", typ, len(rest), err)
		}
		var m wire.Control
		if err := m.Decode(payload); err != nil {
			t.Fatalf("decoding our own control payload: %v", err)
		}
		if m.ID != id || m.Op != op || string(m.Session) != session || !bytes.Equal(m.Body, body) {
			t.Fatalf("control mangled: %+v", m)
		}

		reply, err := wire.AppendControlReply(nil, id, status, body)
		if err != nil {
			return // body can exceed the reply bound; rejection is the contract
		}
		typ, payload, rest, err = wire.DecodeFrame(reply)
		if err != nil || typ != wire.MsgControlReply || len(rest) != 0 {
			t.Fatalf("reply frame: typ %d rest %d err %v", typ, len(rest), err)
		}
		var r wire.ControlReply
		if err := r.Decode(payload); err != nil {
			t.Fatalf("reply payload: %v", err)
		}
		if r.ID != id || r.Status != status || !bytes.Equal(r.Body, body) {
			t.Fatalf("reply mangled: %+v", r)
		}
	})
}

// FuzzRoundTrip drives arbitrary field values through encode → decode and
// requires every field back bit-exactly. Values the encoder rejects
// (session or vectors over the protocol bound) must fail cleanly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(1), "cluster-0", int64(41), 0.025, 0.04, 0.04, 2.25, 50.5, int32(10), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint32(0), "", int64(-1), 0.0, 0.0, 0.0, 0.0, 0.0, int32(-1), []byte{})
	f.Add(uint32(1<<31), "s", int64(1)<<40, math.Inf(1), math.NaN(), -0.0, 1e300, -40.0, int32(-5), bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, id uint32, session string, epoch int64,
		exec, period, wall, power, temp float64, opp int32, raw []byte) {
		obs := governor.Observation{
			Epoch:     int(epoch),
			ExecTimeS: exec,
			PeriodS:   period,
			WallTimeS: wall,
			PowerW:    power,
			TempC:     temp,
			OPPIdx:    int(opp),
		}
		// Derive the per-core vectors from the raw bytes: 8 bytes per
		// cycle entry, then 8 per util entry.
		for len(raw) >= 8 && len(obs.Cycles) < 6 {
			obs.Cycles = append(obs.Cycles, binary.BigEndian.Uint64(raw))
			raw = raw[8:]
		}
		for len(raw) >= 8 {
			obs.Util = append(obs.Util, math.Float64frombits(binary.BigEndian.Uint64(raw)))
			raw = raw[8:]
		}

		frame, err := wire.AppendObserve(nil, id, session, &obs)
		if err != nil {
			inBounds := len(session) <= wire.MaxSession &&
				len(obs.Cycles) <= wire.MaxVector && len(obs.Util) <= wire.MaxVector
			if inBounds {
				t.Fatalf("encoder rejected in-bounds input: %v", err)
			}
			return
		}
		typ, payload, rest, err := wire.DecodeFrame(frame)
		if err != nil || typ != wire.MsgObserve || len(rest) != 0 {
			t.Fatalf("decoding our own frame: typ %d rest %d err %v", typ, len(rest), err)
		}
		var m wire.Observe
		if err := m.Decode(payload); err != nil {
			t.Fatalf("decoding our own payload: %v", err)
		}
		if m.ID != id || string(m.Session) != session {
			t.Fatalf("id/session mangled: %d %q", m.ID, m.Session)
		}
		if !observationsBitEqual(m.Obs, obs) {
			t.Fatalf("observation mangled:\n got %+v\nwant %+v", m.Obs, obs)
		}

		errMsg := session // reuse the fuzzed string as an error message
		dframe, err := wire.AppendDecide(nil, id, uint32(opp), opp, int32(epoch), errMsg)
		if err != nil {
			t.Fatalf("AppendDecide: %v", err)
		}
		var dm wire.Decide
		typ, payload, rest, err = wire.DecodeFrame(dframe)
		if err != nil || typ != wire.MsgDecide || len(rest) != 0 {
			t.Fatalf("decide frame: typ %d rest %d err %v", typ, len(rest), err)
		}
		if err := dm.Decode(payload); err != nil {
			t.Fatalf("decide payload: %v", err)
		}
		if dm.ID != id || dm.MemberEpoch != uint32(opp) || dm.OPPIdx != opp || dm.FreqMHz != int32(epoch) || string(dm.Err) != errMsg {
			t.Fatalf("decide mangled: %+v", dm)
		}
	})
}
