// Package promlint validates Prometheus text exposition the way a
// strict scraper would: metric and label names must be legal, every
// sample must belong to a family that declared # HELP and # TYPE before
// its first sample, label values must be correctly quoted and escaped,
// histogram le buckets must be strictly increasing and cumulative with
// a +Inf bucket matching _count, and no series may appear twice.
//
// It exists so the repo's own /v1/metrics exposition is checked by CI
// against the format contract rather than against string snapshots: a
// new metric added with a typo'd name, a missing TYPE line, or broken
// bucket cumulativity fails the lint without any test knowing the
// metric exists. The series count and byte size come back with the
// report so callers can also bound scrape cardinality (the O(1)-in-
// sessions guarantee is "series stays flat", which only a counter can
// assert).
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Problem is one lint finding, anchored to its 1-based exposition line
// (0 for whole-document findings discovered after reading everything).
type Problem struct {
	Line int
	Msg  string
}

func (p Problem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("line %d: %s", p.Line, p.Msg)
	}
	return p.Msg
}

// Report is one lint run's result.
type Report struct {
	// Series is the number of sample lines (scrape cardinality).
	Series int
	// Bytes is the exposition size read.
	Bytes int64
	// Problems is every finding; empty means the exposition is clean.
	Problems []Problem
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// family is what the # HELP / # TYPE comments declared for one metric.
type family struct {
	help     bool
	typ      string
	helpLine int
	sampled  bool // a sample for this family has been seen
}

// sample is one parsed series line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// Lint reads one exposition and reports every format violation found.
// The error return is for I/O only; format problems land in the report.
func Lint(r io.Reader) (*Report, error) {
	rep := &Report{}
	families := map[string]*family{}
	var samples []sample
	seen := map[string]int{} // rendered series key -> first line

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		line := sc.Text()
		rep.Bytes += int64(len(line)) + 1
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			lintComment(rep, families, line, lineNo)
			continue
		}
		s, ok := lintSample(rep, line, lineNo)
		if !ok {
			continue
		}
		rep.Series++
		key := seriesKey(s)
		if first, dup := seen[key]; dup {
			rep.addf(lineNo, "duplicate series %s (first at line %d)", key, first)
		} else {
			seen[key] = lineNo
		}
		fam := familyOf(families, s.name)
		if fam == nil {
			rep.addf(lineNo, "sample %s has no # TYPE declaration", s.name)
		} else {
			if !fam.help {
				rep.addf(lineNo, "sample %s has # TYPE but no # HELP", s.name)
			}
			fam.sampled = true
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for name, fam := range families {
		if fam.help && fam.typ == "" {
			rep.addf(fam.helpLine, "# HELP %s has no # TYPE", name)
		}
	}
	lintHistograms(rep, families, samples)
	sort.Slice(rep.Problems, func(i, j int) bool { return rep.Problems[i].Line < rep.Problems[j].Line })
	return rep, nil
}

func (rep *Report) addf(line int, format string, args ...any) {
	rep.Problems = append(rep.Problems, Problem{Line: line, Msg: fmt.Sprintf(format, args...)})
}

// lintComment handles # HELP / # TYPE lines (other comments are legal
// and ignored).
func lintComment(rep *Report, families map[string]*family, line string, lineNo int) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			rep.addf(lineNo, "malformed # HELP line")
			return
		}
		name := fields[2]
		if !metricNameRe.MatchString(name) {
			rep.addf(lineNo, "invalid metric name %q in # HELP", name)
		}
		fam := families[name]
		if fam == nil {
			fam = &family{}
			families[name] = fam
		}
		if fam.help {
			rep.addf(lineNo, "second # HELP for %s", name)
		}
		fam.help = true
		fam.helpLine = lineNo
	case "TYPE":
		if len(fields) < 4 {
			rep.addf(lineNo, "malformed # TYPE line")
			return
		}
		name, typ := fields[2], fields[3]
		if !metricNameRe.MatchString(name) {
			rep.addf(lineNo, "invalid metric name %q in # TYPE", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			rep.addf(lineNo, "unknown metric type %q for %s", typ, name)
		}
		fam := families[name]
		if fam == nil {
			fam = &family{}
			families[name] = fam
		}
		if fam.typ != "" {
			rep.addf(lineNo, "second # TYPE for %s", name)
		}
		if fam.sampled {
			rep.addf(lineNo, "# TYPE for %s after its first sample", name)
		}
		fam.typ = typ
	}
}

// lintSample parses one series line: name, optional {labels}, value.
func lintSample(rep *Report, line string, lineNo int) (sample, bool) {
	s := sample{line: lineNo}
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd < 0 {
		rep.addf(lineNo, "sample line has no value: %q", line)
		return s, false
	}
	s.name = rest[:nameEnd]
	if !metricNameRe.MatchString(s.name) {
		rep.addf(lineNo, "invalid metric name %q", s.name)
		return s, false
	}
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			rep.addf(lineNo, "bad label set: %v", err)
			return s, false
		}
		for k := range labels {
			if !labelNameRe.MatchString(k) {
				rep.addf(lineNo, "invalid label name %q", k)
			}
		}
		s.labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp may follow the value; the repo never emits one, but it
	// is legal exposition.
	valStr := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valStr = rest[:i]
		if _, err := strconv.ParseInt(strings.TrimSpace(rest[i+1:]), 10, 64); err != nil {
			rep.addf(lineNo, "trailing garbage after value: %q", rest[i+1:])
		}
	}
	v, err := parseValue(valStr)
	if err != nil {
		rep.addf(lineNo, "bad sample value %q", valStr)
		return s, false
	}
	s.value = v
	return s, true
}

// parseLabels parses "{k="v",...}" with exposition escaping (\\, \",
// \n inside values) and returns the remainder after the closing brace.
func parseLabels(in string) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated value for label %s", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("raw newline in value for label %s", name)
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", fmt.Errorf("dangling escape in value for label %s", name)
				}
				switch in[i+1] {
				case '\\', '"':
					val.WriteByte(in[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("invalid escape \\%c in value for label %s", in[i+1], name)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

// parseValue accepts what the exposition format does: Go float syntax
// plus +Inf/-Inf/NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// seriesKey renders name+labels deterministically for duplicate checks.
func seriesKey(s sample) string {
	if len(s.labels) == 0 {
		return s.name
	}
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// familyOf resolves which declared family a sample belongs to: its own
// name, or — for histogram/summary component suffixes — the base name.
func familyOf(families map[string]*family, name string) *family {
	if fam := families[name]; fam != nil {
		return fam
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if fam := families[base]; fam != nil && (fam.typ == "histogram" || fam.typ == "summary") {
			return fam
		}
	}
	return nil
}

// lintHistograms checks every histogram family: per child (labelset
// minus le) the le values must be strictly increasing, the bucket
// counts monotone non-decreasing, a +Inf bucket present and equal to
// the child's _count, with a _sum alongside.
func lintHistograms(rep *Report, families map[string]*family, samples []sample) {
	type child struct {
		les       []float64
		counts    []float64
		lastLine  int
		inf       *float64
		count     *float64
		sum       bool
		countLine int
	}
	hists := map[string]map[string]*child{} // family -> childKey -> state
	childOf := func(fam, key string) *child {
		m := hists[fam]
		if m == nil {
			m = map[string]*child{}
			hists[fam] = m
		}
		c := m[key]
		if c == nil {
			c = &child{}
			m[key] = c
		}
		return c
	}
	for _, s := range samples {
		var base, suffix string
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(s.name, suf); b != s.name {
				if fam := families[b]; fam != nil && fam.typ == "histogram" {
					base, suffix = b, suf
					break
				}
			}
		}
		if base == "" {
			continue
		}
		nonLE := sample{name: base, labels: map[string]string{}}
		le, hasLE := "", false
		for k, v := range s.labels {
			if k == "le" {
				le, hasLE = v, true
				continue
			}
			nonLE.labels[k] = v
		}
		c := childOf(base, seriesKey(nonLE))
		switch suffix {
		case "_bucket":
			if !hasLE {
				rep.addf(s.line, "%s_bucket without le label", base)
				continue
			}
			if le == "+Inf" {
				v := s.value
				c.inf = &v
				continue
			}
			edge, err := strconv.ParseFloat(le, 64)
			if err != nil {
				rep.addf(s.line, "%s_bucket le=%q is not a number", base, le)
				continue
			}
			if n := len(c.les); n > 0 && edge <= c.les[n-1] {
				rep.addf(s.line, "%s buckets not strictly increasing: le=%g after le=%g", base, edge, c.les[n-1])
			}
			if n := len(c.counts); n > 0 && s.value < c.counts[n-1] {
				rep.addf(s.line, "%s buckets not cumulative: %g after %g", base, s.value, c.counts[n-1])
			}
			c.les = append(c.les, edge)
			c.counts = append(c.counts, s.value)
			c.lastLine = s.line
		case "_sum":
			c.sum = true
		case "_count":
			v := s.value
			c.count = &v
			c.countLine = s.line
		}
	}
	for fam, children := range hists {
		for key, c := range children {
			at := c.lastLine
			if at == 0 {
				at = c.countLine
			}
			if c.inf == nil {
				rep.addf(at, "histogram %s child %s has no +Inf bucket", fam, key)
			}
			if c.count == nil {
				rep.addf(at, "histogram %s child %s has no _count", fam, key)
			} else if c.inf != nil && *c.inf != *c.count {
				rep.addf(c.countLine, "histogram %s child %s: +Inf bucket %g != _count %g", fam, key, *c.inf, *c.count)
			}
			if !c.sum {
				rep.addf(at, "histogram %s child %s has no _sum", fam, key)
			}
			if n := len(c.counts); n > 0 && c.inf != nil && c.counts[n-1] > *c.inf {
				rep.addf(c.lastLine, "histogram %s child %s: largest finite bucket %g exceeds +Inf %g", fam, key, c.counts[n-1], *c.inf)
			}
		}
	}
}
