package platform

import "fmt"

// SoC composes clusters into a big.LITTLE system-on-chip. The paper pins
// all work to the A15 (big) cluster; the SoC type exists so the platform
// model is complete and so the multi-application extension can be given a
// second domain later without restructuring.
type SoC struct {
	name     string
	clusters []*Cluster
}

// NewSoC builds an SoC from its clusters. At least one is required.
func NewSoC(name string, clusters ...*Cluster) *SoC {
	if len(clusters) == 0 {
		panic("platform: SoC needs at least one cluster")
	}
	return &SoC{name: name, clusters: clusters}
}

// DefaultXU3 returns an ODROID-XU3-like SoC: a quad A15 big cluster and a
// quad A7 LITTLE cluster. Sensor noise for the two clusters is decorrelated
// by deriving distinct seeds.
func DefaultXU3(seed int64) *SoC {
	return NewSoC("Exynos5422",
		DefaultA15Cluster(seed),
		DefaultA7Cluster(seed+0x9e3779b9),
	)
}

// Name returns the SoC name.
func (s *SoC) Name() string { return s.name }

// NumClusters returns the number of clusters.
func (s *SoC) NumClusters() int { return len(s.clusters) }

// Cluster returns cluster i.
func (s *SoC) Cluster(i int) *Cluster { return s.clusters[i] }

// ClusterByName returns the cluster with the given name.
func (s *SoC) ClusterByName(name string) (*Cluster, error) {
	for _, c := range s.clusters {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("platform: SoC %q has no cluster %q", s.name, name)
}

// Big returns the first cluster, by convention the big (A15) one.
func (s *SoC) Big() *Cluster { return s.clusters[0] }

// TotalEnergyJ sums energy across all clusters.
func (s *SoC) TotalEnergyJ() float64 {
	var e float64
	for _, c := range s.clusters {
		e += c.TotalEnergyJ()
	}
	return e
}

// Reset restores every cluster to its initial state.
func (s *SoC) Reset() {
	for _, c := range s.clusters {
		c.Reset()
	}
}
