package serve_test

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/loadgen"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
)

// churnSpec is the correctness workload: recycled session ids (finite
// lifetimes), burst arrivals, a partial storm and a total storm — every
// lifecycle transition the churn bugs lived in, compressed into a few
// seconds of schedule.
func churnSpec() loadgen.Spec {
	return loadgen.Spec{
		Seed:     1234,
		HorizonS: 8,
		IDPrefix: "churn",
		Clients: []loadgen.ClientClass{
			{
				Name:            "steady",
				Count:           6,
				Arrival:         loadgen.Arrival{Process: "poisson", RateHz: 40},
				LifetimeDecides: 30,
				StartWindowS:    0.5,
			},
			{
				Name:         "burst",
				Count:        4,
				Arrival:      loadgen.Arrival{Process: "gamma", RateHz: 25, Shape: 0.5},
				RateSkew:     &loadgen.Skew{Dist: "pareto", Param: 2},
				StartWindowS: 0.5,
			},
		},
		Storms: []loadgen.Storm{
			{AtS: 3, Fraction: 0.7, RestartDelayS: 0.1},
			{AtS: 6, Fraction: 1, RestartDelayS: 0.05},
		},
	}
}

// runChurn drives churnSpec against the target and asserts a clean run:
// transports healthy, every control op accepted, no decide landing
// anywhere unexpected, all sessions drained.
func runChurn(t *testing.T, target loadgen.Target) *loadgen.Report {
	t.Helper()
	g, err := loadgen.New(churnSpec())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := loadgen.Run(g, target, loadgen.RunOptions{Lanes: 4, BatchMax: 32})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.CreateErrors != 0 || rep.DeleteErrors != 0 || rep.DecideErrors != 0 {
		t.Fatalf("churn run not clean: %+v", rep)
	}
	if rep.EndLive != 0 {
		t.Fatalf("%d sessions live after drain", rep.EndLive)
	}
	if rep.Decides == 0 || rep.Creates <= 10 {
		t.Fatalf("hollow run: %+v", rep)
	}
	return rep
}

// oracleReport runs the same schedule against the in-process oracle; the
// serving stacks must reproduce its checksum exactly.
func oracleReport(t *testing.T) *loadgen.Report {
	t.Helper()
	return runChurn(t, loadgen.NewLocal())
}

// TestChurnFlatMatchesOracle runs full lifecycle churn against a flat
// server over the binary transport and demands decision equivalence with
// the in-process oracle: same spec, same checksum. A decide ever landing
// on the wrong generation of a recycled id breaks the equality.
func TestChurnFlatMatchesOracle(t *testing.T) {
	want := oracleReport(t)

	h := newTestServer(t, serve.Options{})
	tcp := newTCPServer(t, h)
	cl, err := client.Dial(tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	got := runChurn(t, cl)
	if got.Checksum != want.Checksum {
		t.Fatalf("flat server checksum %x != oracle %x", got.Checksum, want.Checksum)
	}
	if got.Creates != want.Creates || got.Deletes != want.Deletes || got.Decides != want.Decides {
		t.Fatalf("flat counts diverge: %+v vs oracle %+v", got, want)
	}
	// The drain deleted everything server-side too: a drained id must be
	// creatable again without conflict.
	st, resp, err := cl.CreateSession([]byte(`{"id":"churn-steady-0","governor":"rtm","seed":1}`))
	if err != nil || st != http.StatusCreated {
		t.Fatalf("re-creating a drained id: status %d err %v (%s)", st, err, resp)
	}
}

// TestChurnRouterMatchesOracle repeats the oracle equivalence through a
// 3-replica router: sharded ownership, hand-offs and all.
func TestChurnRouterMatchesOracle(t *testing.T) {
	want := oracleReport(t)

	_, addrs := newFleet(t, 3, serve.Options{})
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	cl, err := client.Dial(startRouterTCP(t, rt))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	got := runChurn(t, cl)
	if got.Checksum != want.Checksum {
		t.Fatalf("routed checksum %x != oracle %x", got.Checksum, want.Checksum)
	}
}

// TestChurnFleetMatchesOracle repeats the oracle equivalence through the
// ring-aware direct fleet client (per-replica connections, client-side
// ownership routing).
func TestChurnFleetMatchesOracle(t *testing.T) {
	want := oracleReport(t)

	_, addrs := newFleet(t, 3, serve.Options{})
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	fl, err := client.DialFleet(startRouterTCP(t, rt))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	got := runChurn(t, fl)
	if got.Checksum != want.Checksum {
		t.Fatalf("fleet checksum %x != oracle %x", got.Checksum, want.Checksum)
	}
}

// TestChurnRecycledIDRace hammers one session id from a decider while a
// churner create/deletes it as fast as it can. Every decide must either
// succeed against whatever generation is live (real decision, real
// frequency) or fail per-decision with unknown-session — never a
// transport error, never a zero-value decision, and after the final
// delete, never a success.
func TestChurnRecycledIDRace(t *testing.T) {
	h := newTestServer(t, serve.Options{})
	tcp := newTCPServer(t, h)

	decider, err := client.Dial(tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer decider.Close()
	churner, err := client.Dial(tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer churner.Close()

	const id = "flip"
	obs := steadyObs()
	var wg sync.WaitGroup
	var landed, missed int
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]client.Decision, 1)
		for i := 0; i < 3000; i++ {
			o := obs
			o.Epoch = i
			if err := decider.DecideBatch([]string{id}, []governor.Observation{o}, out); err != nil {
				t.Errorf("decide %d: transport error: %v", i, err)
				return
			}
			if out[0].Err == "" {
				if out[0].OPPIdx < 0 || out[0].FreqMHz <= 0 {
					t.Errorf("decide %d: hollow success: %+v", i, out[0])
					return
				}
				landed++
			} else {
				missed++
			}
		}
	}()
	for i := 0; i < 400; i++ {
		body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, id, i)
		if st, resp, err := churner.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
			t.Fatalf("create gen %d: status %d err %v (%s)", i, st, err, resp)
		}
		if st, resp, err := churner.DeleteSession(id); err != nil || st != http.StatusNoContent {
			t.Fatalf("delete gen %d: status %d err %v (%s)", i, st, err, resp)
		}
	}
	wg.Wait()
	if landed == 0 {
		t.Log("no decide ever landed on a live generation (timing-dependent; not a failure)")
	}
	t.Logf("decides: %d landed, %d missed across 400 generations", landed, missed)

	// The id is deleted: a decide now must fail per-decision, not succeed
	// against some resurrected generation.
	out := make([]client.Decision, 1)
	if err := decider.DecideBatch([]string{id}, []governor.Observation{obs}, out); err != nil {
		t.Fatalf("post-delete decide: %v", err)
	}
	if out[0].Err == "" {
		t.Fatalf("decide succeeded on a deleted id: %+v", out[0])
	}
}

// TestCheckpointChurnNeverResurrects runs create/decide/delete churn with
// an aggressive background checkpoint sweep, then verifies DELETE meant
// gone: no checkpoint file survives for any deleted session — including
// sessions deleted while the sweep was serialising them (the undo-save
// race) — and a re-created id starts cold.
func TestCheckpointChurnNeverResurrects(t *testing.T) {
	dir := t.TempDir()
	h := newTestServer(t, serve.Options{
		CheckpointDir:   dir,
		CheckpointEvery: time.Millisecond,
	})
	tcp := newTCPServer(t, h)
	cl, err := client.Dial(tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	obs := steadyObs()
	out := make([]client.Decision, 1)
	for round := 0; round < 20; round++ {
		for i := 0; i < 8; i++ {
			id := fmt.Sprintf("gc-%d", i)
			body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, id, round*8+i)
			if st, resp, err := cl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
				t.Fatalf("round %d create %s: status %d err %v (%s)", round, id, st, err, resp)
			}
			for e := 0; e < 3; e++ {
				o := obs
				o.Epoch = e
				if err := cl.DecideBatch([]string{id}, []governor.Observation{o}, out); err != nil || out[0].Err != "" {
					t.Fatalf("round %d decide %s: err %v decision %+v", round, id, err, out[0])
				}
			}
		}
		// Let the sweep overlap the deletes below.
		time.Sleep(2 * time.Millisecond)
		for i := 0; i < 8; i++ {
			id := fmt.Sprintf("gc-%d", i)
			if st, resp, err := cl.DeleteSession(id); err != nil || st != http.StatusNoContent {
				t.Fatalf("round %d delete %s: status %d err %v (%s)", round, id, st, err, resp)
			}
		}
	}
	// One more sweep interval for any in-flight save to finish and be
	// undone.
	time.Sleep(10 * time.Millisecond)

	var leaked []string
	if err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), "gc-") {
			leaked = append(leaked, d.Name())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(leaked) != 0 {
		t.Fatalf("deleted sessions left checkpoints behind: %v", leaked)
	}
}
