module qgov

go 1.24
