package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99, 10} {
		h.Add(x)
	}
	bins := h.Bins()
	want := []int{2, 1, 1, 0, 2} // 10 (top edge) joins the last bin
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
}

func TestHistogramGeometryAccessors(t *testing.T) {
	h := NewHistogram(0, 50, 25)
	if h.Lo() != 0 || h.Hi() != 50 {
		t.Errorf("Lo/Hi = %v/%v, want 0/50", h.Lo(), h.Hi())
	}
	if h.BinWidth() != 2 {
		t.Errorf("BinWidth = %v, want 2", h.BinWidth())
	}
	if got := len(h.Bins()); got != 25 {
		t.Errorf("len(Bins) = %d, want 25", got)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-0.1)
	h.Add(1.5)
	h.Add(math.NaN())
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 { // 1.5 and NaN
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
}

func TestHistogramBinOf(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1.99, 0}, {2, 1}, {9.99, 4}, {10, 4},
		{-1, -1}, {11, -1}, {math.NaN(), -1},
	}
	for _, c := range cases {
		if got := h.BinOf(c.x); got != c.want {
			t.Errorf("BinOf(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	for _, x := range []float64{0.5, 1.5, 1.6, 2.5} {
		h.Add(x)
	}
	if got := h.Mode(); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("Mode = %v, want 1.5", got)
	}
	empty := NewHistogram(0, 1, 4)
	if !math.IsNaN(empty.Mode()) {
		t.Fatal("Mode of empty histogram must be NaN")
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bins", func() { NewHistogram(0, 1, 0) })
	mustPanic("lo==hi", func() { NewHistogram(1, 1, 4) })
	mustPanic("lo>hi", func() { NewHistogram(2, 1, 4) })
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(-1)
	s := h.String()
	if !strings.Contains(s, "underflow 1") {
		t.Fatalf("String missing underflow line:\n%s", s)
	}
}

// Property: every finite sample is accounted for exactly once — the sum of
// bin counts plus under/overflow equals the number of samples added.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-5, 5, 7)
		total := int(n)
		var want float64
		for i := 0; i < total; i++ {
			x := rng.Float64()*20 - 10 // spans beyond [-5,5]
			want += x
			h.Add(x)
		}
		sum := h.Underflow() + h.Overflow()
		for _, c := range h.Bins() {
			sum += c
		}
		return sum == total && h.Count() == total && h.Sum() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogramBinning(t *testing.T) {
	// 6 decades, 10 bins per decade: edges at 10^(i/10).
	h := NewLogHistogram(1, 1e6, 60)
	if !h.LogScale() {
		t.Fatal("LogScale must report true")
	}
	if h.BinWidth() != 0 {
		t.Fatalf("BinWidth = %v, want 0 for log bins", h.BinWidth())
	}
	for _, x := range []float64{1, 9.9, 10, 100, 1e5, 1e6} {
		h.Add(x)
	}
	if h.BinOf(1) != 0 {
		t.Errorf("BinOf(1) = %d, want 0", h.BinOf(1))
	}
	if got := h.BinOf(10); got != 10 {
		t.Errorf("BinOf(10) = %d, want 10", got)
	}
	if got := h.BinOf(1e6); got != 59 {
		t.Errorf("BinOf(1e6) = %d, want 59 (inclusive top edge)", got)
	}
	if h.Underflow() != 0 || h.Overflow() != 0 {
		t.Fatalf("under/overflow = %d/%d, want 0/0", h.Underflow(), h.Overflow())
	}
	h.Add(0.5)
	h.Add(2e6)
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatalf("under/overflow = %d/%d, want 1/1", h.Underflow(), h.Overflow())
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	edges := h.Edges()
	want := []float64{10, 100, 1000}
	for i := range want {
		if !almostEqual(edges[i], want[i], 1e-9) {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
	if edges[len(edges)-1] != 1000 {
		t.Fatalf("top edge must be exactly Hi, got %v", edges[len(edges)-1])
	}
	if got := h.LowerEdge(0); got != 1 {
		t.Fatalf("LowerEdge(0) = %v, want 1", got)
	}
	if got := h.LowerEdge(2); !almostEqual(got, 100, 1e-9) {
		t.Fatalf("LowerEdge(2) = %v, want 100", got)
	}
}

// Every bin edge must be self-consistent: a sample just below an upper edge
// lands in that bin, a sample at the edge lands in the next.
func TestLogHistogramEdgeConsistency(t *testing.T) {
	h := NewLogHistogram(1, 1e6, 60)
	edges := h.Edges()
	for i := 0; i < len(edges)-1; i++ {
		e := edges[i]
		if got := h.BinOf(e * (1 - 1e-12)); got != i {
			t.Fatalf("BinOf(just below edge %d) = %d, want %d", i, got, i)
		}
		if got := h.BinOf(e * (1 + 1e-12)); got != i+1 {
			t.Fatalf("BinOf(just above edge %d) = %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-50) > 1.0 {
		t.Fatalf("Quantile(0.5) = %v, want ~50", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-99) > 1.5 {
		t.Fatalf("Quantile(0.99) = %v, want ~99", got)
	}
	if !math.IsNaN(NewHistogram(0, 1, 2).Quantile(0.5)) {
		t.Fatal("Quantile of empty histogram must be NaN")
	}
	if !math.IsNaN(h.Quantile(1.5)) || !math.IsNaN(h.Quantile(-0.1)) {
		t.Fatal("Quantile outside [0,1] must be NaN")
	}
}

func TestHistogramQuantileOverflowIsInf(t *testing.T) {
	h := NewLogHistogram(1, 100, 10)
	for i := 0; i < 90; i++ {
		h.Add(10)
	}
	for i := 0; i < 10; i++ {
		h.Add(1e9) // saturates
	}
	if got := h.Quantile(0.5); math.IsInf(got, 1) {
		t.Fatalf("Quantile(0.5) = +Inf, want finite")
	}
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Fatalf("Quantile(0.99) = %v, want +Inf when the rank is in overflow", got)
	}
}

func TestHistogramQuantileUnderflowIsLo(t *testing.T) {
	h := NewLogHistogram(10, 100, 5)
	h.Add(1)
	h.Add(1)
	h.Add(50)
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("Quantile(0.5) = %v, want Lo when the rank is in underflow", got)
	}
}

func TestLogHistogramQuantileAccuracy(t *testing.T) {
	// With 10 bins/decade, any quantile is within one bin ratio
	// (10^0.1 ≈ 1.26x) of truth.
	h := NewLogHistogram(1, 1e6, 60)
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		x := math.Exp(rng.Float64() * math.Log(1e5)) // log-uniform in [1, 1e5]
		vals = append(vals, x)
		h.Add(x)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		// Exact quantile from the sorted sample.
		sorted := append([]float64(nil), vals...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		want := sorted[int(math.Ceil(q*float64(len(sorted))))-1]
		if ratio := got / want; ratio < 1/1.3 || ratio > 1.3 {
			t.Fatalf("Quantile(%v) = %v, want within 1.3x of %v", q, got, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLogHistogram(1, 1000, 30)
	b := NewLogHistogram(1, 1000, 30)
	for i := 1; i <= 10; i++ {
		a.Add(float64(i))
		b.Add(float64(i * 50))
	}
	a.Add(0.5)  // underflow
	b.Add(5000) // overflow
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 22 {
		t.Fatalf("merged Count = %d, want 22", a.Count())
	}
	if a.Underflow() != 1 || a.Overflow() != 1 {
		t.Fatalf("merged under/overflow = %d/%d, want 1/1", a.Underflow(), a.Overflow())
	}
	if err := a.Merge(NewHistogram(1, 1000, 30)); err == nil {
		t.Fatal("Merge must reject geometry mismatch (log vs fixed)")
	}
	if err := a.Merge(NewLogHistogram(1, 100, 30)); err == nil {
		t.Fatal("Merge must reject geometry mismatch (range)")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("Merge(nil) must be a no-op, got %v", err)
	}
}

func TestLogHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("zero lo", func() { NewLogHistogram(0, 1, 4) })
	mustPanic("negative lo", func() { NewLogHistogram(-1, 1, 4) })
	mustPanic("lo>=hi", func() { NewLogHistogram(2, 2, 4) })
	mustPanic("zero bins", func() { NewLogHistogram(1, 10, 0) })
}
