package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/ring"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// startRouterTCP puts a binary listener in front of a router and
// returns its address.
func startRouterTCP(t testing.TB, rt *serve.Router) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rtTCP := serve.NewRouterTCP(rt, lis)
	go func() { _ = rtTCP.Serve() }()
	t.Cleanup(func() { _ = rtTCP.Close() })
	return lis.Addr().String()
}

// routerHealth is the aggregated /healthz body the degraded-fleet
// tests read back.
type routerHealth struct {
	Status     string   `json:"status"`
	Sessions   int      `json:"sessions"`
	Replicas   int      `json:"replicas"`
	ReplicasUp int      `json:"replicas_up"`
	Degraded   []string `json:"degraded"`
	Members    map[string]struct {
		Up    bool   `json:"up"`
		Error string `json:"error"`
	} `json:"members"`
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestRouterDegradedFleet is the regression test for the blanket-502
// bug: one unreachable replica used to turn every aggregated router
// endpoint — /healthz, /v1/metrics, the session list — into a fleet-
// wide error, so a 1-of-8 failure read as total outage to every
// monitor. The aggregates must instead answer from the replicas that
// are up, name the one that is not, and only go non-200 when zero
// replicas answer.
func TestRouterDegradedFleet(t *testing.T) {
	reps, addrs := newFleet(t, 2, serve.Options{})
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtHTTP := httptest.NewServer(rt.Handler())
	defer rtHTTP.Close()
	cl, err := client.Dial(startRouterTCP(t, rt))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Spread sessions until both replicas own at least one.
	perOwner := map[string]int{}
	for i := 0; len(perOwner) < 2 && i < 64; i++ {
		id := fmt.Sprintf("deg-%d", i)
		body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, id, i+1)
		if st, resp, err := cl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
			t.Fatalf("create %s: status %d err %v (%s)", id, st, err, resp)
		}
		owner, _ := rt.Owner(id)
		perOwner[owner]++
	}
	if len(perOwner) < 2 {
		t.Fatal("could not spread sessions over both replicas")
	}

	// Kill replica 0: listener and server both go away; the router's
	// connection to it is now poisoned.
	dead := addrs[0]
	_ = reps[0].tcp.Close()
	_ = reps[0].srv.Close()

	var h routerHealth
	if st := getJSON(t, rtHTTP.URL+"/healthz", &h); st != http.StatusOK {
		t.Fatalf("degraded healthz returned %d, want 200 (one replica is still up)", st)
	}
	if h.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded", h.Status)
	}
	if h.ReplicasUp != 1 || h.Replicas != 2 {
		t.Fatalf("healthz counts %d/%d, want 1 up of 2", h.ReplicasUp, h.Replicas)
	}
	if len(h.Degraded) != 1 || h.Degraded[0] != dead {
		t.Fatalf("healthz degraded = %v, want [%s]", h.Degraded, dead)
	}
	if m := h.Members[dead]; m.Up || m.Error == "" {
		t.Fatalf("dead member detail %+v, want down with an error", m)
	}
	if m := h.Members[addrs[1]]; !m.Up {
		t.Fatalf("live member detail %+v, want up", m)
	}
	if h.Sessions != perOwner[addrs[1]] {
		t.Errorf("healthz sessions %d, want the live replica's %d", h.Sessions, perOwner[addrs[1]])
	}

	var metrics struct {
		Sessions map[string]json.RawMessage `json:"sessions"`
		Degraded []string                   `json:"degraded_replicas"`
	}
	if st := getJSON(t, rtHTTP.URL+"/v1/metrics", &metrics); st != http.StatusOK {
		t.Fatalf("degraded metrics returned %d, want 200", st)
	}
	if len(metrics.Degraded) != 1 || metrics.Degraded[0] != dead {
		t.Fatalf("metrics degraded_replicas = %v, want [%s]", metrics.Degraded, dead)
	}
	if len(metrics.Sessions) != perOwner[addrs[1]] {
		t.Errorf("metrics carries %d sessions, want the live replica's %d", len(metrics.Sessions), perOwner[addrs[1]])
	}

	// The scrape surface names the gap too.
	resp, err := http.Get(rtHTTP.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	scrape := new(strings.Builder)
	if _, err := io.Copy(scrape, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(scrape.String(), "rtmd_replicas_degraded 1") ||
		!strings.Contains(scrape.String(), fmt.Sprintf("rtmd_replica_degraded{replica=%q} 1", dead)) {
		t.Errorf("prometheus exposition does not name the degraded replica:\n%s", scrape)
	}

	st, body, err := cl.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	if st != http.StatusPartialContent {
		t.Fatalf("degraded list returned %d, want 206", st)
	}
	var list []json.RawMessage
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("degraded list body: %v (%s)", err, body)
	}
	if len(list) != perOwner[addrs[1]] {
		t.Errorf("degraded list has %d sessions, want %d", len(list), perOwner[addrs[1]])
	}

	// Zero replicas up: now the aggregates genuinely fail.
	_ = reps[1].tcp.Close()
	_ = reps[1].srv.Close()
	if st := getJSON(t, rtHTTP.URL+"/healthz", nil); st != http.StatusServiceUnavailable {
		t.Fatalf("all-down healthz returned %d, want 503", st)
	}
	if st := getJSON(t, rtHTTP.URL+"/v1/metrics", nil); st != http.StatusBadGateway {
		t.Fatalf("all-down metrics returned %d, want 502", st)
	}
	if st, _, err := cl.ListSessions(); err != nil || st != http.StatusBadGateway {
		t.Fatalf("all-down list returned %d err %v, want 502", st, err)
	}
}

// TestReplicaRejoin kills one replica and restarts a fresh empty one
// on the same address: the router's prober must notice the death, mark
// the member degraded, then redial the newcomer, push it the current
// membership table, and route to it again — all without a router
// restart. Before the prober existed the dead replica's poisoned
// connection was reused forever and the address never came back.
func TestReplicaRejoin(t *testing.T) {
	reps, addrs := newFleet(t, 2, serve.Options{})
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtHTTP := httptest.NewServer(rt.Handler())
	defer rtHTTP.Close()
	cl, err := client.Dial(startRouterTCP(t, rt))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	waitHealth := func(cond func(h routerHealth) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			var h routerHealth
			getJSON(t, rtHTTP.URL+"/healthz", &h)
			if cond(h) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet never became %s (health %+v)", what, h)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	victim := addrs[1]
	_ = reps[1].tcp.Close()
	_ = reps[1].srv.Close()
	waitHealth(func(h routerHealth) bool { return h.ReplicasUp == 1 }, "degraded")

	// Restart an empty replica on the same address.
	var lis net.Listener
	for i := 0; i < 50; i++ {
		if lis, err = net.Listen("tcp", victim); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", victim, err)
	}
	srv2 := serve.New(serve.Options{})
	tcp2 := serve.NewTCP(srv2, lis)
	go func() { _ = tcp2.Serve() }()
	t.Cleanup(func() {
		_ = tcp2.Close()
		_ = srv2.Close()
	})

	waitHealth(func(h routerHealth) bool { return h.ReplicasUp == 2 && h.Members[victim].Up }, "whole again")

	// The router must route to the newcomer: find an id the ring places
	// on the restarted address, create it through the router, decide.
	var id string
	for i := 0; i < 4096; i++ {
		cand := fmt.Sprintf("rejoin-%d", i)
		if owner, _ := rt.Owner(cand); owner == victim {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no candidate id maps to the restarted replica")
	}
	body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":1}`, id)
	if st, resp, err := cl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
		t.Fatalf("create on restarted replica: status %d err %v (%s)", st, err, resp)
	}
	d, err := cl.Decide(id, steadyObs())
	if err != nil || d.Err != "" {
		t.Fatalf("decide on restarted replica: %v / %q", err, d.Err)
	}
}

// TestDirectFleetEquivalence is the acceptance test of the ring-aware
// direct client: the same session set, driven once through a Fleet
// (membership table fetched from the router, batches sent straight to
// ring owners) and once through one flat server (the HTTP oracle),
// must produce byte-identical per-session decision streams and
// physical aggregates — across a mid-run AddReplica that reshards part
// of the ring out from under the direct client's installed table. The
// stale window is covered by replica-side forwarding (the first direct
// decide after the reshard still lands on the old owner, which relays
// it) and closed by the epoch carried in every reply, which triggers
// the Fleet's refetch. The flat server mirrors the reshard's hand-off
// (freeze → delete → re-create warm) at the same epoch boundary, as in
// TestRouterEquivalence. Under -race this is the Fleet's concurrency
// test: all lanes share it.
func TestDirectFleetEquivalence(t *testing.T) {
	const (
		scn      = "rtm/mpeg4-30fps/a15"
		frames   = 120
		grow     = 60 // epoch boundary where the fleet gains a replica
		sessions = 9
	)
	flat := newTestServer(t, serve.Options{CheckpointDir: t.TempDir()})
	_, addrs := newFleet(t, 3, serve.Options{CheckpointDir: t.TempDir()})

	rt, err := serve.NewRouter(addrs[:2], serve.RouterOptions{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	direct, err := client.DialFleet(startRouterTCP(t, rt))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if got := direct.Epoch(); got != rt.Epoch() {
		t.Fatalf("fleet bootstrapped at epoch %d, router at %d", got, rt.Epoch())
	}
	if got := len(direct.Replicas()); got != 2 {
		t.Fatalf("direct client holds %d replica connections, want 2", got)
	}

	type lane struct {
		id      string
		seed    int64
		periodS any
		flat    *sim.Session
		direct  *sim.Session
		fOpps   []int
		dOpps   []int
	}
	// Session ids are "eq-N", except the last lane, whose id is scanned so
	// the grown ring places it on the future newcomer: the reshard below
	// must always move at least one session, whatever ports the replicas
	// were assigned (placement hashes the address strings, so with
	// arbitrary ids the newcomer occasionally owned none of them).
	grownRing := ring.New(0, addrs...)
	lastID := ""
	for i := 0; lastID == ""; i++ {
		cand := fmt.Sprintf("eq-%d", sessions-1+i)
		if owner, _ := grownRing.Owner(cand); owner == addrs[2] {
			lastID = cand
		}
	}
	lanes := make([]*lane, sessions)
	for i := range lanes {
		id := fmt.Sprintf("eq-%d", i)
		if i == sessions-1 {
			id = lastID
		}
		seed := int64(i + 1)
		tr := workload.MPEG4At30(seed, frames)
		create := map[string]any{
			"id":             id,
			"governor":       "rtm",
			"period_s":       tr.RefTimeS,
			"seed":           seed,
			"calibration_cc": tr.MaxPerFrame(),
		}
		lanes[i] = &lane{
			id: id, seed: seed, periodS: tr.RefTimeS,
			flat:   sim.NewSession(scenarioConfig(t, scn, seed, frames)),
			direct: sim.NewSession(scenarioConfig(t, scn, seed, frames)),
		}
		if st := flat.post("/v1/sessions", create, nil); st != http.StatusCreated {
			t.Fatalf("create %s on flat server returned %d", id, st)
		}
		raw, err := json.Marshal(create)
		if err != nil {
			t.Fatal(err)
		}
		// Created through the Fleet's control passthrough: the router is
		// still the placement authority.
		if st, resp, err := direct.CreateSession(raw); err != nil || st != http.StatusCreated {
			t.Fatalf("create %s through fleet: status %d err %v (%s)", id, st, err, resp)
		}
	}

	flatDecide := func(id string, obs governor.Observation) (int, error) {
		var resp struct {
			Decisions []decision `json:"decisions"`
		}
		if st := flat.post("/v1/decide", map[string]any{
			"requests": []decideItem{{Session: id, Obs: obsFromGov(obs)}},
		}, &resp); st != http.StatusOK {
			return -1, fmt.Errorf("flat decide returned %d", st)
		}
		if len(resp.Decisions) != 1 || resp.Decisions[0].Error != "" {
			return -1, fmt.Errorf("flat decide: %+v", resp.Decisions)
		}
		return resp.Decisions[0].OPPIdx, nil
	}

	drivePhase := func(maxFrames int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, 2*len(lanes))
		for _, l := range lanes {
			wg.Add(1)
			go func(l *lane) {
				defer wg.Done()
				opps, err := driveFrames(l.flat, maxFrames, func(obs governor.Observation) (int, error) {
					return flatDecide(l.id, obs)
				})
				if err != nil {
					errs <- fmt.Errorf("%s flat: %w", l.id, err)
					return
				}
				l.fOpps = append(l.fOpps, opps...)

				opps, err = driveFrames(l.direct, maxFrames, func(obs governor.Observation) (int, error) {
					d, err := direct.Decide(l.id, obs)
					if err != nil {
						return -1, err
					}
					if d.Err != "" {
						return -1, fmt.Errorf("direct decide: %s", d.Err)
					}
					return d.OPPIdx, nil
				})
				if err != nil {
					errs <- fmt.Errorf("%s direct: %w", l.id, err)
					return
				}
				l.dOpps = append(l.dOpps, opps...)
			}(l)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	drivePhase(grow)

	// Grow the fleet mid-run: sessions reshard onto the newcomer while
	// the direct client still holds the 2-replica table.
	moved, err := rt.AddReplica(addrs[2])
	if err != nil {
		t.Fatalf("AddReplica(%s): %v", addrs[2], err)
	}
	if len(moved) == 0 {
		t.Fatal("AddReplica moved no sessions; the test would not exercise the reshard")
	}
	wantMoved := map[string]bool{}
	for _, id := range moved {
		wantMoved[id] = true
		if owner, _ := rt.Owner(id); owner != addrs[2] {
			t.Fatalf("moved session %s is owned by %s, not the newcomer", id, owner)
		}
	}

	// Mirror the hand-off on the flat server at the same epoch boundary:
	// freeze → delete → re-create warm from the frozen state.
	for _, l := range lanes {
		if !wantMoved[l.id] {
			continue
		}
		var ck struct {
			State json.RawMessage `json:"state"`
		}
		if st := flat.post("/v1/sessions/"+l.id+"/checkpoint", map[string]any{}, &ck); st != http.StatusOK {
			t.Fatalf("flat checkpoint of %s returned %d", l.id, st)
		}
		req, _ := http.NewRequest(http.MethodDelete, flat.ts.URL+"/v1/sessions/"+l.id, nil)
		resp, err := flat.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("flat delete of %s returned %d", l.id, resp.StatusCode)
		}
		recreate := map[string]any{
			"id":       l.id,
			"governor": "rtm",
			"period_s": l.periodS,
			"seed":     l.seed,
			"state":    ck.State,
		}
		if st := flat.post("/v1/sessions", recreate, nil); st != http.StatusCreated {
			t.Fatalf("flat re-create of %s returned %d", l.id, st)
		}
	}

	// Deterministically exercise the stale-table path: the very next
	// direct decide for a moved session hits the old owner — which no
	// longer holds it and must forward to the newcomer, not fail. The
	// flat twin advances the same frame to keep the streams aligned.
	for _, l := range lanes {
		if !wantMoved[l.id] || l.direct.Done() {
			continue
		}
		d, err := direct.Decide(l.id, l.direct.Observe())
		if err != nil || d.Err != "" {
			t.Fatalf("stale-table decide for moved %s: %v / %q", l.id, err, d.Err)
		}
		l.dOpps = append(l.dOpps, d.OPPIdx)
		l.direct.Step(d.OPPIdx)

		f, err := flatDecide(l.id, l.flat.Observe())
		if err != nil {
			t.Fatal(err)
		}
		l.fOpps = append(l.fOpps, f)
		l.flat.Step(f)
		break
	}

	drivePhase(frames - grow)

	for _, l := range lanes {
		if len(l.fOpps) != frames || len(l.dOpps) != frames {
			t.Fatalf("%s: %d flat / %d direct decisions, want %d", l.id, len(l.fOpps), len(l.dOpps), frames)
		}
		for k := range l.fOpps {
			if l.fOpps[k] != l.dOpps[k] {
				t.Fatalf("%s: decision %d is %d flat, %d direct (moved=%v)", l.id, k, l.fOpps[k], l.dOpps[k], wantMoved[l.id])
			}
		}
		if phys(l.flat.Result()) != phys(l.direct.Result()) {
			t.Errorf("%s: physical aggregates diverged", l.id)
		}
	}

	// The data plane must have told the direct client about the reshard:
	// its table is now the router's current epoch over all 3 replicas.
	if got, want := direct.Epoch(), rt.Epoch(); got != want {
		t.Errorf("direct client is at epoch %d, router at %d — stale replies did not trigger a refetch", got, want)
	}
	if got := len(direct.Replicas()); got != 3 {
		t.Errorf("direct client holds %d replica connections, want 3", got)
	}
}

// BenchmarkDirectDecideThroughput measures the ring-aware direct path
// — membership table fetched once, each batch split by ring owner and
// sent straight to its replica — against the same fleet shapes as
// BenchmarkRoutedDecideThroughput. The router is out of the data path
// entirely — no extra hop, no shared relay tier — so this bounds the
// routed numbers from above and throughput scales with the replica
// count instead of the routing tier's capacity. BENCH_7.json records
// this, the pipelined routed path, and the legacy blocking relay in CI.
func BenchmarkDirectDecideThroughput(b *testing.B) {
	for _, replicas := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			const sessions = 256
			_, addrs := newFleet(b, replicas, serve.Options{})

			rt, err := serve.NewRouter(addrs, serve.RouterOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			fl, err := client.DialFleet(startRouterTCP(b, rt))
			if err != nil {
				b.Fatal(err)
			}
			defer fl.Close()

			ids := make([]string, sessions)
			obs := make([]governor.Observation, sessions)
			out := make([]client.Decision, sessions)
			for i := range ids {
				ids[i] = fmt.Sprintf("db-%d", i)
				obs[i] = steadyObs()
				body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, ids[i], i+1)
				if st, resp, err := fl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
					b.Fatalf("create %s: status %d err %v (%s)", ids[i], st, err, resp)
				}
			}

			check := func() {
				if err := fl.DecideBatch(ids, obs, out); err != nil {
					b.Fatal(err)
				}
				for _, d := range out {
					if d.Err != "" {
						b.Fatal(d.Err)
					}
				}
			}
			check() // warm every connection before timing

			lanes := 2 * replicas
			per := sessions / lanes
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, lanes)
			for l := 0; l < lanes; l++ {
				wg.Add(1)
				go func(l int) {
					defer wg.Done()
					lo, hi := l*per, (l+1)*per
					if l == lanes-1 {
						hi = sessions
					}
					lout := make([]client.Decision, hi-lo)
					for i := 0; i < b.N; i++ {
						if err := fl.DecideBatch(ids[lo:hi], obs[lo:hi], lout); err != nil {
							errs <- err
							return
						}
					}
				}(l)
			}
			wg.Wait()
			b.StopTimer()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
			check()
			total := float64(sessions) * float64(b.N)
			b.ReportMetric(total/b.Elapsed().Seconds(), "decisions/s")
			b.ReportMetric(float64(replicas), "replicas")
		})
	}
}
