package platform

import (
	"fmt"
	"math"
)

// PowerModel computes cluster power from the operating point, core activity
// and die temperature using the standard CMOS decomposition
//
//	P = P_dyn + P_leak
//	P_dyn  = C_eff · V² · f        (per active core, plus uncore share)
//	P_leak = V · I0 · e^{kV(V−Vref)} · e^{kT(T−Tref)}   (per core)
//
// The default constants are calibrated against published ODROID-XU3 A15
// cluster measurements (≈6 W fully busy at 2 GHz and ≈0.35 W at 200 MHz
// idle): see DefaultA15PowerModel. The model intentionally stops at this
// fidelity — the governor only ever observes total cluster power through a
// sampled sensor, so per-unit breakdowns beyond core/uncore/leakage would
// not change any observable behaviour.
type PowerModel struct {
	// CeffCoreF is the effective switched capacitance of one fully busy
	// core, in farads.
	CeffCoreF float64
	// CeffUncoreF is the effective switched capacitance of the shared
	// uncore (L2, interconnect), which clocks with the cluster regardless
	// of how many cores are busy.
	CeffUncoreF float64
	// ClockGateFrac is the fraction of a core's dynamic power still burned
	// when the core is architecturally idle but the cluster is clocked
	// (imperfect clock gating of the clock tree).
	ClockGateFrac float64
	// Leakage parameters, per core.
	LeakI0A   float64 // leakage current scale at (VrefV, TrefC), amperes
	LeakKV    float64 // exponential voltage sensitivity, 1/V
	LeakKT    float64 // exponential temperature sensitivity, 1/°C
	VrefV     float64 // leakage calibration voltage
	TrefC     float64 // leakage calibration temperature
	NumCores  int     // cores in the cluster sharing this model
	UncoreIdx float64 // fraction of uncore dynamic power present when fully idle
}

// DefaultA15PowerModel returns the power model used for the quad Cortex-A15
// cluster in all experiments.
//
// Calibration anchors (cluster totals, 4 cores busy, 65 °C):
//
//	2000 MHz/1.3625 V: ≈ 5.9 W   (XU3 A15 near-peak)
//	1000 MHz/1.0250 V: ≈ 1.4 W
//	 200 MHz/0.9125 V: ≈ 0.25 W
func DefaultA15PowerModel() *PowerModel {
	return &PowerModel{
		CeffCoreF:     0.30e-9,
		CeffUncoreF:   0.15e-9,
		ClockGateFrac: 0.05,
		LeakI0A:       0.12,
		LeakKV:        1.2,
		LeakKT:        0.016,
		VrefV:         1.0,
		TrefC:         45,
		NumCores:      4,
		UncoreIdx:     0.30,
	}
}

// DefaultA7PowerModel returns the power model for the quad Cortex-A7
// cluster. The A7 is roughly 3–4× more efficient per clock than the A15 at
// matched voltage; only multi-cluster extensions exercise it.
func DefaultA7PowerModel() *PowerModel {
	return &PowerModel{
		CeffCoreF:     0.10e-9,
		CeffUncoreF:   0.05e-9,
		ClockGateFrac: 0.05,
		LeakI0A:       0.04,
		LeakKV:        1.2,
		LeakKT:        0.016,
		VrefV:         1.0,
		TrefC:         45,
		NumCores:      4,
		UncoreIdx:     0.30,
	}
}

// Validate reports whether the model's parameters are physically sane.
func (m *PowerModel) Validate() error {
	switch {
	case m.CeffCoreF <= 0:
		return fmt.Errorf("platform: CeffCoreF must be positive")
	case m.CeffUncoreF < 0:
		return fmt.Errorf("platform: CeffUncoreF must be non-negative")
	case m.ClockGateFrac < 0 || m.ClockGateFrac > 1:
		return fmt.Errorf("platform: ClockGateFrac must be in [0,1]")
	case m.LeakI0A < 0:
		return fmt.Errorf("platform: LeakI0A must be non-negative")
	case m.NumCores < 1:
		return fmt.Errorf("platform: NumCores must be at least 1")
	case m.UncoreIdx < 0 || m.UncoreIdx > 1:
		return fmt.Errorf("platform: UncoreIdx must be in [0,1]")
	}
	return nil
}

// CoreDynamicW returns the dynamic power of a single fully busy core at the
// given operating point.
func (m *PowerModel) CoreDynamicW(opp OPP) float64 {
	return m.CeffCoreF * opp.VoltageV * opp.VoltageV * opp.FreqHz()
}

// UncoreDynamicW returns the dynamic power of the shared uncore when at
// least one core is active. busy selects between the active and the
// clock-gated idle fraction.
func (m *PowerModel) UncoreDynamicW(opp OPP, busy bool) float64 {
	p := m.CeffUncoreF * opp.VoltageV * opp.VoltageV * opp.FreqHz()
	if !busy {
		p *= m.UncoreIdx
	}
	return p
}

// CoreLeakageW returns the leakage power of one core at the given supply
// voltage and die temperature.
func (m *PowerModel) CoreLeakageW(opp OPP, tempC float64) float64 {
	i := m.LeakI0A *
		math.Exp(m.LeakKV*(opp.VoltageV-m.VrefV)) *
		math.Exp(m.LeakKT*(tempC-m.TrefC))
	return opp.VoltageV * i
}

// ClusterPowerW returns the total cluster power with activeCores cores busy
// (the remainder clock-gated) at the given operating point and temperature.
// activeCores outside [0, NumCores] is clamped.
func (m *PowerModel) ClusterPowerW(opp OPP, activeCores int, tempC float64) float64 {
	if activeCores < 0 {
		activeCores = 0
	}
	if activeCores > m.NumCores {
		activeCores = m.NumCores
	}
	coreDyn := m.CoreDynamicW(opp)
	idleCores := m.NumCores - activeCores
	dyn := float64(activeCores)*coreDyn +
		float64(idleCores)*coreDyn*m.ClockGateFrac +
		m.UncoreDynamicW(opp, activeCores > 0)
	leak := float64(m.NumCores) * m.CoreLeakageW(opp, tempC)
	return dyn + leak
}

// IdlePowerW returns cluster power with every core clock-gated — the floor
// the cluster burns while waiting for the next frame period.
func (m *PowerModel) IdlePowerW(opp OPP, tempC float64) float64 {
	return m.ClusterPowerW(opp, 0, tempC)
}

// EnergyJ integrates constant power over an interval, guarding against
// negative durations (which indicate an engine bug and panic).
func EnergyJ(powerW, seconds float64) float64 {
	if seconds < 0 {
		panic("platform: negative duration in EnergyJ")
	}
	return powerW * seconds
}
