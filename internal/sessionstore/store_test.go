package sessionstore_test

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"qgov/internal/sessionstore"
)

func TestShardedBasics(t *testing.T) {
	s := sessionstore.NewSharded[int](8)
	if !s.Put("a", 1) {
		t.Fatal("first Put rejected")
	}
	if s.Put("a", 2) {
		t.Fatal("duplicate Put accepted")
	}
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if v, ok := s.GetBytes([]byte("a")); !ok || v != 1 {
		t.Fatalf("GetBytes(a) = %d, %v", v, ok)
	}
	if _, ok := s.Get("ghost"); ok {
		t.Fatal("Get of absent id succeeded")
	}
	if v, ok := s.Delete("a"); !ok || v != 1 {
		t.Fatalf("Delete(a) = %d, %v", v, ok)
	}
	if _, ok := s.Delete("a"); ok {
		t.Fatal("second Delete succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
}

func TestShardedRangeAndLen(t *testing.T) {
	s := sessionstore.NewSharded[string](0)
	want := map[string]string{}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("cluster-%d", i)
		want[id] = id + "!"
		s.Put(id, id+"!")
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	got := map[string]string{}
	s.Range(func(id, v string) bool {
		got[id] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for id, v := range want {
		if got[id] != v {
			t.Fatalf("Range saw %q = %q, want %q", id, got[id], v)
		}
	}
	// Early termination stops the walk.
	n := 0
	s.Range(func(string, string) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("Range visited %d entries after stop, want 10", n)
	}
}

// Concurrent creates, lookups, and deletes across goroutines; run under
// -race this is the store's concurrency contract. Every id is created
// exactly once however many goroutines race the Put.
func TestShardedConcurrentPutWinsOnce(t *testing.T) {
	s := sessionstore.NewSharded[int](4)
	const ids, racers = 200, 8
	var wins [ids]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				id := fmt.Sprintf("s-%d", i)
				if s.Put(id, r) {
					mu.Lock()
					wins[i]++
					mu.Unlock()
				}
				if _, ok := s.Get(id); !ok {
					t.Errorf("id %s vanished", id)
					return
				}
				_, _ = s.GetBytes([]byte(id))
			}
		}(r)
	}
	wg.Wait()
	for i, w := range wins {
		if w != 1 {
			t.Fatalf("id s-%d created %d times", i, w)
		}
	}
	if s.Len() != ids {
		t.Fatalf("Len = %d, want %d", s.Len(), ids)
	}
}

func TestDirCheckpointStore(t *testing.T) {
	d, err := sessionstore.NewDir(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load("none"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Load of absent id: %v, want fs.ErrNotExist", err)
	}
	if err := d.Delete("none"); err != nil {
		t.Fatalf("Delete of absent id: %v", err)
	}
	state := []byte(`{"kind":"rtm","version":1}` + "\n")
	if err := d.Save("c0", state); err != nil {
		t.Fatal(err)
	}
	if err := d.Save("c1", state); err != nil {
		t.Fatal(err)
	}
	got, err := d.Load("c0")
	if err != nil || !bytes.Equal(got, state) {
		t.Fatalf("Load = %q, %v", got, err)
	}
	ids, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ids)
	if fmt.Sprint(ids) != "[c0 c1]" {
		t.Fatalf("List = %v", ids)
	}
	// Overwrite replaces atomically.
	state2 := []byte(`{"kind":"rtm","version":1,"x":2}` + "\n")
	if err := d.Save("c0", state2); err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Load("c0"); !bytes.Equal(got, state2) {
		t.Fatalf("after overwrite Load = %q", got)
	}
	if err := d.Delete("c0"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load("c0"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Load after Delete: %v", err)
	}
}

// A crashed writer's stale temp file must be swept on open and never
// listed as a session — while a fresh temp file (a sibling replica
// mid-Save on shared storage) must be left alone.
func TestDirSweepsTornTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".state-12345")
	if err := os.WriteFile(stale, []byte("half a checkpoi"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, ".state-67890")
	if err := os.WriteFile(fresh, []byte("a sibling is writing th"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := sessionstore.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("stale temp file survived NewDir: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file (a live writer's) was swept: %v", err)
	}
	ids, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("List = %v on a dir holding only temp files", ids)
	}
}
