package governor

import "testing"

// StableFraction is the per-state view of convergence: states stop
// counting as stable the epoch their greedy action flips, and the
// fraction only reaches 1 once every state has held for a full window.
func TestConvergenceStableFraction(t *testing.T) {
	c := NewConvergenceTracker(3)
	if f := c.StableFraction(); f != 0 {
		t.Fatalf("fresh tracker StableFraction = %v", f)
	}

	// Four states, constant policy: nothing is stable until the window
	// has been seen, then everything is.
	policy := []int{1, 2, 3, 4}
	for i := 0; i < 2; i++ {
		c.Observe(policy)
		if f := c.StableFraction(); f != 0 {
			t.Fatalf("after %d epochs (window 3) StableFraction = %v, want 0", i+1, f)
		}
	}
	c.Observe(policy)
	if f := c.StableFraction(); f != 1 {
		t.Fatalf("constant policy after full window: StableFraction = %v, want 1", f)
	}

	// One state flips: 3/4 remain stable, and the flipped one needs a
	// fresh window to recover.
	flipped := []int{1, 2, 3, 9}
	c.Observe(flipped)
	if f := c.StableFraction(); f != 0.75 {
		t.Fatalf("after one flip StableFraction = %v, want 0.75", f)
	}
	c.Observe(flipped)
	if f := c.StableFraction(); f != 0.75 {
		t.Fatalf("flip recovering: StableFraction = %v, want 0.75", f)
	}
	c.Observe(flipped)
	if f := c.StableFraction(); f != 1 {
		t.Fatalf("flip recovered: StableFraction = %v, want 1", f)
	}

	// Reset clears the view.
	c.Reset()
	if f := c.StableFraction(); f != 0 {
		t.Fatalf("after Reset StableFraction = %v", f)
	}
}
