// Governorcompare sweeps every governor scenario over a chosen workload
// and prints an energy/performance/miss comparison — the quickest way to
// see how the learning governors relate to the classic cpufreq family on
// a given demand pattern.
//
// It is also the smallest demonstration of the scenario registry driving
// the streaming sweep engine: the pattern "*/workload/platform" expands to
// one scenario per registered governor (plus the Oracle), and the jobs
// stream through a bounded worker pool.
//
//	go run ./examples/governorcompare [-workload parsec.bodytrack] [-frames 1200] [-platform a15]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"qgov/internal/scenario"
	"qgov/internal/sim"
)

func main() {
	name := flag.String("workload", "parsec.bodytrack", "workload to compare on")
	plat := flag.String("platform", "a15", "platform variant (see internal/scenario)")
	frames := flag.Int("frames", 1200, "frames to run")
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	scenarios, err := scenario.Match("*/" + *name + "/" + *plat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	jobs, err := scenario.Jobs(scenarios, []int64{*seed}, *frames)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	results := sim.RunAll(jobs)

	// Normalise energy to the Oracle's (the paper's reference).
	oracleEnergy := 0.0
	for _, r := range results {
		if r.Governor == "oracle" {
			oracleEnergy = r.EnergyJ
		}
	}

	fmt.Printf("workload %s on %s: %d frames, %d governors\n\n",
		*name, *plat, results[0].Frames, len(results))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "governor\tnorm energy\tnorm perf\tmisses\tmean W\tconverged@")
	for _, r := range results {
		conv := "-"
		if r.ConvergedAt >= 0 {
			conv = fmt.Sprintf("%d", r.ConvergedAt)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f%%\t%.2f\t%s\n",
			r.Governor, r.EnergyJ/oracleEnergy, r.NormPerf, r.MissRate*100,
			r.MeanPowerW, conv)
	}
	tw.Flush()
}
