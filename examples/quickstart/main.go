// Quickstart: run the paper's Q-learning run-time manager on a video
// workload and read the result.
//
//	go run ./examples/quickstart
//
// The steps below are the whole public API surface a user needs: name a
// scenario, materialise it into a run configuration, run the closed loop,
// and read the aggregates. (The long way — generating a trace, building
// and calibrating the RTM by hand — still works; the scenario registry is
// exactly that plumbing under one name.)
package main

import (
	"fmt"
	"log"

	"qgov/internal/scenario"
	"qgov/internal/sim"
)

func main() {
	// 1. A scenario: the proposed RTM governor (N=5 state levels, EWMA
	//    γ=0.6, EPD exploration, shared Q-table) decoding MPEG4 at 30 fps
	//    on the paper's quad Cortex-A15 cluster. Every registered
	//    governor × workload × platform combination has a name like this;
	//    `rtmsim -list` counts them.
	sc, err := scenario.Get("rtm/mpeg4-30fps/a15")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Materialise one run: the trace, the simulated cluster, and the
	//    governor pre-characterised on the trace (the paper's design-space
	//    exploration) — all seeded for a deterministic replay.
	cfg, err := sc.Config(42, 1500)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Close the loop: the engine executes the trace frame by frame,
	//    calling the governor once per decision epoch.
	result := sim.Run(cfg)

	// 4. Read the outcome.
	fmt.Printf("workload:      %s, %d frames at %.0f fps\n",
		result.Workload, result.Frames, cfg.Trace.FPS())
	fmt.Printf("energy:        %.2f J (%.2f W mean over %.1f s)\n",
		result.EnergyJ, result.MeanPowerW, result.SimTimeS)
	fmt.Printf("performance:   %.2f of the deadline budget (<1 over-performs)\n",
		result.NormPerf)
	fmt.Printf("missed frames: %d of %d (%.1f%%)\n",
		result.Misses, result.Frames, result.MissRate*100)
	fmt.Printf("learning:      %d explorations, policy stable from epoch %d\n",
		result.Explorations, result.ConvergedAt)
}
