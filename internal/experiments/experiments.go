// Package experiments regenerates every table and figure of the paper's
// evaluation (Section III) plus the ablations called out in DESIGN.md.
// Each experiment returns a typed result that also carries the paper's
// reported numbers, so callers — the CLI, the benchmarks and the tests —
// can print or assert the comparison in one place.
//
// Reading the results: absolute joules and epoch counts depend on the
// simulated platform, so the reproduction targets the paper's *shape* —
// orderings, approximate ratios and crossovers — not its absolute values
// (see EXPERIMENTS.md for the measured-vs-paper record).
package experiments

import (
	"fmt"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/scenario"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// DefaultSeeds are the seeds experiments average over. Multiple seeds keep
// single-run exploration luck from dominating the learning-statistics
// tables (the paper averages repeated runs the same way).
var DefaultSeeds = []int64{11, 23, 37, 41, 59}

// mustGovernor resolves a registered governor through the scenario
// registry's builder (which pre-characterises learners on the trace).
func mustGovernor(name string, tr workload.Trace) governor.Governor {
	g, err := scenario.BuildGovernor(name, tr, platform.DefaultA15PowerModel())
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return g
}

// newRTM builds the proposed governor, pre-characterised on the trace the
// way the paper's design-space exploration profiles each application.
func newRTM(tr workload.Trace) *core.RTM {
	return mustGovernor("rtm", tr).(*core.RTM)
}

// newUPDRL builds the ref [21]-style baseline: identical to the RTM except
// for uniform exploration.
func newUPDRL(tr workload.Trace) *core.RTM {
	return mustGovernor("updrl", tr).(*core.RTM)
}

func mustCalibrate(r *core.RTM, tr workload.Trace) {
	if err := r.Calibrate(tr.MaxPerFrame()); err != nil {
		panic(fmt.Sprintf("experiments: calibrating on %s: %v", tr.Name, err))
	}
}

// run executes one governor on one trace with the default platform.
func run(tr workload.Trace, g governor.Governor, seed int64, record bool) *sim.Result {
	return sim.Run(sim.Config{Trace: tr, Governor: g, Seed: seed, Record: record})
}

// oracleFor builds the paper's energy-normalisation reference for a trace.
func oracleFor(tr workload.Trace) governor.Governor {
	return mustGovernor("oracle", tr)
}
