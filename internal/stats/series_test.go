package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAbsErrors(t *testing.T) {
	got := AbsErrors([]float64{1, 2, 3}, []float64{2, 2, 1})
	want := []float64{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AbsErrors = %v, want %v", got, want)
		}
	}
}

func TestAbsErrorsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AbsErrors must panic on length mismatch")
		}
	}()
	AbsErrors([]float64{1}, []float64{1, 2})
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90, 100}
	actual := []float64{100, 100, 100}
	if got := MAPE(pred, actual); !almostEqual(got, (0.1+0.1+0)/3, 1e-12) {
		t.Fatalf("MAPE = %v", got)
	}
	// zero actuals are skipped
	if got := MAPE([]float64{1, 2}, []float64{0, 4}); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("MAPE with zero actual = %v, want 0.5", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); !math.IsNaN(got) {
		t.Fatalf("MAPE all-skipped = %v, want NaN", got)
	}
}

func TestMAPEOfMean(t *testing.T) {
	pred := []float64{90, 110}
	actual := []float64{100, 100}
	// mean abs err = 10, mean actual = 100 -> 0.1
	if got := MAPEOfMean(pred, actual); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("MAPEOfMean = %v, want 0.1", got)
	}
	if got := MAPEOfMean(nil, nil); !math.IsNaN(got) {
		t.Fatalf("MAPEOfMean(empty) = %v, want NaN", got)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
	if got := RMSE(nil, nil); !math.IsNaN(got) {
		t.Fatalf("RMSE(empty) = %v, want NaN", got)
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", got, want)
		}
	}
	if Diff([]float64{1}) != nil {
		t.Fatal("Diff of single element must be nil")
	}
}

func TestLinregExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := Linreg(x, y)
	if !almostEqual(a, 1, 1e-12) || !almostEqual(b, 2, 1e-12) {
		t.Fatalf("Linreg = (%v, %v), want (1, 2)", a, b)
	}
}

func TestLinregDegenerate(t *testing.T) {
	a, b := Linreg([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(a) || !math.IsNaN(b) {
		t.Fatal("Linreg on degenerate x must return NaNs")
	}
	a, b = Linreg([]float64{1}, []float64{2})
	if !math.IsNaN(a) || !math.IsNaN(b) {
		t.Fatal("Linreg on single point must return NaNs")
	}
}

// Property: RMSE >= mean absolute error (Jensen), and both are zero iff the
// sequences coincide.
func TestErrorMetricOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := int(n%32) + 1
		rng := rand.New(rand.NewSource(seed))
		pred := make([]float64, m)
		actual := make([]float64, m)
		for i := 0; i < m; i++ {
			pred[i] = rng.Float64() * 100
			actual[i] = rng.Float64() * 100
		}
		rmse := RMSE(pred, actual)
		mae := Mean(AbsErrors(pred, actual))
		return rmse >= mae-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
