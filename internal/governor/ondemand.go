package governor

// Ondemand reimplements the Linux ondemand governor (Pallipadi &
// Starikovskiy, OLS'06 — the paper's ref [5]) at decision-epoch
// granularity:
//
//   - load is the maximum per-CPU busy fraction over the sampling window
//     (here: the previous epoch);
//   - load above UpThreshold jumps straight to the fastest OPP;
//   - otherwise the target frequency is proportional to load,
//     f_target = load × f_max, rounded up to the next OPP.
//
// Ondemand knows nothing about the application's deadline. On a periodic
// frame workload its equilibrium is easy to derive: at frequency f the
// load is f_req/f (f_req = cycles/period), so the proportional rule settles
// where f* = (f_req/f*)·f_max, i.e. f* = sqrt(f_req·f_max) — always above
// f_req. That systematic over-performance (normalised performance ≈
// sqrt(f_req/f_max) ≈ 0.7–0.8) at elevated voltage is precisely the
// energy waste Table I of the paper measures against it.
type Ondemand struct {
	// UpThreshold is the load fraction above which the governor jumps to
	// the maximum frequency. Linux's historical default is 80 %.
	UpThreshold float64
	// SamplingDownFactor delays down-scaling after a jump to max, as in
	// the kernel: after hitting fmax the governor holds it for this many
	// epochs unless load collapses. 1 disables the hold.
	SamplingDownFactor int

	ctx      Context
	holdLeft int
}

// NewOndemand constructs the governor with kernel-default tunables.
func NewOndemand() *Ondemand {
	return &Ondemand{UpThreshold: 0.80, SamplingDownFactor: 1}
}

// Name implements Governor.
func (g *Ondemand) Name() string { return "ondemand" }

// Reset implements Governor.
func (g *Ondemand) Reset(ctx Context) {
	g.ctx = ctx
	g.holdLeft = 0
}

// Decide implements Governor.
func (g *Ondemand) Decide(obs Observation) int {
	maxIdx := g.ctx.Table.MaxIdx()
	if obs.Epoch < 0 {
		// Nothing observed yet: kernel policy starts wherever cpufreq was;
		// ondemand's first sample then adjusts. Starting low is the
		// conservative choice and matches the cluster's reset state.
		return 0
	}
	load := obs.MaxUtil()
	if load >= g.UpThreshold {
		g.holdLeft = g.SamplingDownFactor - 1
		return maxIdx
	}
	if g.holdLeft > 0 {
		g.holdLeft--
		return maxIdx
	}
	target := load * g.ctx.Table[maxIdx].FreqHz()
	return g.ctx.Table.CeilIdx(target)
}

// Conservative reimplements Linux's conservative governor: like ondemand
// but stepping gradually — one FreqStep up when load exceeds UpThreshold,
// one down when it falls below DownThreshold. Designed for battery-powered
// devices where frequency spikes are undesirable; on frame workloads it
// lags demand changes by several epochs.
type Conservative struct {
	UpThreshold   float64 // default 0.80
	DownThreshold float64 // default 0.20
	FreqStepIdx   int     // OPP indices per step, default 1

	ctx Context
	cur int
}

// NewConservative constructs the governor with kernel-default tunables.
func NewConservative() *Conservative {
	return &Conservative{UpThreshold: 0.80, DownThreshold: 0.20, FreqStepIdx: 1}
}

// Name implements Governor.
func (g *Conservative) Name() string { return "conservative" }

// Reset implements Governor.
func (g *Conservative) Reset(ctx Context) {
	g.ctx = ctx
	g.cur = 0
}

// Decide implements Governor.
func (g *Conservative) Decide(obs Observation) int {
	if obs.Epoch < 0 {
		g.cur = 0
		return g.cur
	}
	load := obs.MaxUtil()
	switch {
	case load > g.UpThreshold:
		g.cur = g.ctx.Table.Clamp(g.cur + g.FreqStepIdx)
	case load < g.DownThreshold:
		g.cur = g.ctx.Table.Clamp(g.cur - g.FreqStepIdx)
	}
	return g.cur
}

func init() {
	Register("ondemand", func() Governor { return NewOndemand() })
	Register("conservative", func() Governor { return NewConservative() })
}
