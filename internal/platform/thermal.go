package platform

import (
	"fmt"
	"math"
)

// ThermalModel is a first-order lumped RC thermal model of one cluster:
//
//	C_th · dT/dt = P − (T − T_amb) / R_th
//
// Steady state is T = T_amb + P·R_th. The step integrator uses the exact
// exponential solution for piecewise-constant power, so it is
// unconditionally stable for the multi-millisecond steps the epoch engine
// takes (a forward-Euler integrator would need sub-millisecond steps to stay
// stable at small C_th).
//
// The paper neglects the thermal constraint of the Ge & Qiu baseline for
// comparability, but leakage still depends on temperature, so the model is
// kept in the loop: hot clusters leak more, which is visible in the energy
// numbers of sustained high-frequency governors like ondemand.
type ThermalModel struct {
	RthKW    float64 // junction-to-ambient thermal resistance, K/W
	CthJK    float64 // lumped thermal capacitance, J/K
	AmbientC float64 // ambient temperature, °C

	tempC float64 // current die temperature
}

// NewThermalModel returns a model initialised to the ambient temperature.
// It panics when resistance or capacitance are non-positive (configuration
// bug, not a runtime condition).
func NewThermalModel(rthKW, cthJK, ambientC float64) *ThermalModel {
	if rthKW <= 0 || cthJK <= 0 {
		panic(fmt.Sprintf("platform: invalid thermal parameters R=%v C=%v", rthKW, cthJK))
	}
	return &ThermalModel{RthKW: rthKW, CthJK: cthJK, AmbientC: ambientC, tempC: ambientC}
}

// DefaultA15Thermal returns the thermal model used in the experiments:
// R_th ≈ 8 K/W (≈ 73 °C at 6 W above a 25 °C ambient, matching XU3 A15
// behaviour under sustained load) with a ≈1.2 s time constant.
func DefaultA15Thermal() *ThermalModel {
	return NewThermalModel(8.0, 0.15, 25.0)
}

// TempC returns the current die temperature.
func (t *ThermalModel) TempC() float64 { return t.tempC }

// Reset returns the die to ambient temperature.
func (t *ThermalModel) Reset() { t.tempC = t.AmbientC }

// Step advances the model by dt seconds under constant power powerW and
// returns the new temperature. Negative dt panics; dt == 0 is a no-op.
func (t *ThermalModel) Step(powerW, dt float64) float64 {
	if dt < 0 {
		panic("platform: negative dt in ThermalModel.Step")
	}
	if dt == 0 {
		return t.tempC
	}
	steady := t.AmbientC + powerW*t.RthKW
	tau := t.RthKW * t.CthJK
	t.tempC = steady + (t.tempC-steady)*math.Exp(-dt/tau)
	return t.tempC
}

// SteadyC returns the steady-state temperature for a constant power.
func (t *ThermalModel) SteadyC(powerW float64) float64 {
	return t.AmbientC + powerW*t.RthKW
}

// TimeConstant returns the model's RC time constant in seconds.
func (t *ThermalModel) TimeConstant() float64 { return t.RthKW * t.CthJK }
