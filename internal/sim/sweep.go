package sim

// Job names one parameterised run inside a sweep. Build must return a
// fresh Config — governors and clusters are stateful, so sharing one
// instance across concurrent runs would race.
type Job struct {
	Name  string
	Build func() Config
}

// RunAll executes the jobs concurrently (bounded by GOMAXPROCS) and
// returns results in job order. It is the collect-everything convenience
// over Stream; sweeps too large to hold in memory should consume Stream
// directly and fold results into an Aggregator.
func RunAll(jobs []Job) []*Result {
	results := make([]*Result, len(jobs))
	for ir := range Stream(JobSource(jobs), 0) {
		results[ir.Index] = ir.Result
	}
	return results
}

// SeedSweep runs the same configuration across several seeds and returns
// the per-seed results. The build function receives the seed and must
// construct everything fresh (see Job).
func SeedSweep(build func(seed int64) Config, seeds []int64) []*Result {
	jobs := make([]Job, len(seeds))
	for i, s := range seeds {
		s := s
		jobs[i] = Job{Build: func() Config { return build(s) }}
	}
	return RunAll(jobs)
}

// Summary is the cross-seed aggregate of a sweep.
type Summary struct {
	Runs           int
	MeanEnergyJ    float64
	StdEnergyJ     float64
	MeanNormPerf   float64
	MeanMissRate   float64
	MeanExplore    float64 // NaN when the governor is not a learner
	MeanConvergeAt float64 // NaN when never converged / not a learner
}

// Summarize aggregates sweep results; it is the batch form of feeding an
// Aggregator. Runs that never converged are excluded from MeanConvergeAt
// (and counted in none of the learning means if the governor exposes no
// stats).
func Summarize(results []*Result) Summary {
	var a Aggregator
	for _, r := range results {
		a.Add(r)
	}
	return a.Summary()
}
