package core

import (
	"testing"

	"qgov/internal/governor"
	"qgov/internal/platform"
)

func rtmCtx(seed int64) governor.Context {
	return governor.Context{
		Table:    platform.A15Table(),
		NumCores: 4,
		PeriodS:  0.040,
		Seed:     seed,
	}
}

// driveSteady runs the RTM against an idealised steady workload where each
// core needs `cycles` per 40 ms frame, computing exec time from the chosen
// frequency exactly. It returns the OPP indices chosen after each epoch.
func driveSteady(r *RTM, cycles uint64, epochs int) []int {
	ctx := rtmCtx(11)
	r.Reset(ctx)
	idx := r.Decide(governor.Observation{Epoch: -1})
	out := make([]int, 0, epochs)
	for i := 0; i < epochs; i++ {
		f := ctx.Table[idx].FreqHz()
		exec := float64(cycles)/f + r.DecisionOverheadS()
		wall := exec
		if wall < ctx.PeriodS {
			wall = ctx.PeriodS
		}
		util := exec / wall
		obs := governor.Observation{
			Epoch:     i,
			Cycles:    []uint64{cycles, cycles, cycles, cycles},
			Util:      []float64{util, util, util, util},
			ExecTimeS: exec,
			PeriodS:   ctx.PeriodS,
			WallTimeS: wall,
			PowerW:    2,
			TempC:     50,
			OPPIdx:    idx,
		}
		idx = r.Decide(obs)
		out = append(out, idx)
	}
	return out
}

func TestRTMConvergesNearRequiredFrequency(t *testing.T) {
	r := New(DefaultConfig())
	if err := r.Calibrate([]float64{20e6, 30e6, 40e6}); err != nil {
		t.Fatal(err)
	}
	// 30 Mcycles / 40 ms = 750 MHz requirement -> 800 MHz is the slowest
	// meeting OPP (index 6).
	picks := driveSteady(r, 30e6, 800)
	tail := picks[len(picks)-50:]
	for _, idx := range tail {
		mhz := platform.A15Table()[idx].FreqMHz
		if mhz < 800 || mhz > 1100 {
			t.Fatalf("steady-state pick %d MHz; want within [800,1100] for a 750 MHz demand", mhz)
		}
	}
	if r.ConvergedAtEpoch() < 0 {
		t.Fatal("RTM did not report convergence")
	}
	if r.Explorations() == 0 {
		t.Fatal("RTM reported zero explorations")
	}
}

func TestRTMTracksSlackTowardTarget(t *testing.T) {
	r := New(DefaultConfig())
	if err := r.Calibrate([]float64{20e6, 30e6, 40e6}); err != nil {
		t.Fatal(err)
	}
	driveSteady(r, 30e6, 800)
	l := r.SlackL()
	// 800 MHz on a 750 MHz demand leaves ≈6% slack; anything in a modest
	// positive band around the reward target is a pass.
	if l < -0.05 || l > 0.30 {
		t.Fatalf("steady-state slack L = %v, want near the target band", l)
	}
}

func TestRTMDeterministicBySeed(t *testing.T) {
	run := func() []int {
		r := New(DefaultConfig())
		r.Calibrate([]float64{20e6, 30e6, 40e6})
		return driveSteady(r, 28e6, 300)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical configs diverged at epoch %d", i)
		}
	}
}

func TestRTMUPDVariantExploresMore(t *testing.T) {
	// The Table II mechanism in miniature: with everything else equal, the
	// EPD variant should need no more explorations than UPD to converge on
	// the same steady workload. (The full-width comparison across
	// applications is the TableII experiment.)
	epd := New(DefaultConfig())
	epd.Calibrate([]float64{20e6, 30e6, 40e6})
	driveSteady(epd, 30e6, 1500)

	updCfg := DefaultConfig()
	updCfg.Policy = UniformPolicy{}
	upd := New(updCfg)
	upd.Calibrate([]float64{20e6, 30e6, 40e6})
	driveSteady(upd, 30e6, 1500)

	if epd.ConvergedAtEpoch() < 0 || upd.ConvergedAtEpoch() < 0 {
		t.Skipf("one variant did not converge (epd=%d upd=%d)", epd.ConvergedAtEpoch(), upd.ConvergedAtEpoch())
	}
	if epd.Explorations() > upd.Explorations()+10 {
		t.Fatalf("EPD explorations %d materially above UPD %d", epd.Explorations(), upd.Explorations())
	}
}

func TestRTMPerCoreMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = PerCoreTables
	r := New(cfg)
	r.Calibrate([]float64{20e6, 30e6, 40e6})
	picks := driveSteady(r, 30e6, 600)
	if len(picks) != 600 {
		t.Fatal("per-core mode did not run")
	}
	if r.Name() != "rtm-percore" {
		t.Fatalf("Name = %q", r.Name())
	}
	for _, idx := range picks[len(picks)-20:] {
		if idx < 0 || idx >= platform.A15Table().Len() {
			t.Fatalf("per-core pick %d out of range", idx)
		}
	}
}

func TestRTMAutoRangeWithoutCalibration(t *testing.T) {
	r := New(DefaultConfig())
	// No Calibrate call: the first observations must establish a range
	// without panicking, and the controller must still function.
	picks := driveSteady(r, 25e6, 400)
	tail := picks[len(picks)-20:]
	for _, idx := range tail {
		mhz := platform.A15Table()[idx].FreqMHz
		// 25e6/0.04 = 625 MHz requirement.
		if mhz < 600 || mhz > 1400 {
			t.Fatalf("auto-ranged steady pick %d MHz implausible for 625 MHz demand", mhz)
		}
	}
}

func TestRTMNormalizedStateMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseNormalizedState = true
	r := New(cfg)
	picks := driveSteady(r, 30e6, 400)
	if len(picks) != 400 {
		t.Fatal("normalized-state mode did not run")
	}
}

func TestRTMLearningTransferSkipsExploration(t *testing.T) {
	// Learn once, transfer the table, run again: the transferred run must
	// converge (policy stable) in far fewer epochs.
	first := New(DefaultConfig())
	first.Calibrate([]float64{20e6, 30e6, 40e6})
	driveSteady(first, 30e6, 1200)
	if first.ConvergedAtEpoch() < 0 {
		t.Skip("first run did not converge; cannot test transfer")
	}

	cfg := DefaultConfig()
	cfg.Transfer = first.Table()
	// Transfer implies starting largely in exploitation.
	cfg.Epsilon = &EpsilonSchedule{Epsilon0: 0.1, Decay: 0.05, BoostDecay: 0.1, StableBand: 0.08}
	cfg.Epsilon.Reset()
	second := New(cfg)
	second.Calibrate([]float64{20e6, 30e6, 40e6})
	driveSteady(second, 30e6, 1200)

	if second.ConvergedAtEpoch() < 0 {
		t.Fatal("transferred run did not converge")
	}
	if second.Explorations() >= first.Explorations() {
		t.Fatalf("transfer did not reduce exploration: %d vs %d",
			second.Explorations(), first.Explorations())
	}
}

func TestRTMTransferDimensionMismatchPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transfer = NewQTable(4, 4, 0) // wrong shape
	r := New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched transfer table must panic at Reset")
		}
	}()
	r.Reset(rtmCtx(1))
}

func TestRTMConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Levels = 1 },
		func(c *Config) { c.Reward = nil },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Epsilon = nil },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.Discount = 1.0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config case %d must panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestRTMRegisteredInGovernorRegistry(t *testing.T) {
	for _, name := range []string{"rtm", "rtm-percore", "updrl"} {
		g, err := governor.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, g.Name())
		}
		if _, ok := g.(governor.OverheadModeler); !ok {
			t.Errorf("%s does not model its decision overhead", name)
		}
		if _, ok := g.(governor.LearningStats); !ok {
			t.Errorf("%s does not expose learning statistics", name)
		}
	}
}
