package governor

import "io"

// Checkpointer is implemented by learning governors whose learnt state can
// be frozen to a stream and warm-started later — the generalisation of the
// RTM-only Q-table transfer of Shafik et al. (TCAD'16, the paper's ref
// [12]) to every learner in the program. A checkpoint carries everything a
// learner needs to resume exploitation: value tables with their visit
// counts, any state-space calibration, and the exploration schedule's
// position.
//
// The lifecycle mirrors how the engine uses governors:
//
//	g, _ := governor.ByName("rtm")
//	g.(governor.Checkpointer).LoadState(r) // stage the checkpoint
//	... engine calls g.Reset(ctx) ...      // checkpoint is applied
//	... run / serve decisions ...
//	g.(governor.Checkpointer).SaveState(w) // freeze the learnt state
//
// LoadState validates everything it can immediately (format, internal
// consistency, finite values) and stages the state; each subsequent Reset
// re-applies it, so a warm-started governor stays warm-started across
// runs, matching the semantics of core.Config.Transfer. State whose
// dimensions do not fit the run's platform (a checkpoint from a 19-OPP
// ladder loaded onto a 13-OPP one) can only be detected at Reset and
// panics there, again matching Transfer.
type Checkpointer interface {
	// SaveState serialises the learnt state. It errors if the governor
	// has not run yet (there is nothing to freeze).
	SaveState(w io.Writer) error
	// LoadState stages a checkpoint written by SaveState to be applied at
	// the next Reset.
	LoadState(r io.Reader) error
}
