// Package sessionstore holds the serving layer's session state: a
// concurrent keyed Store for live sessions and a CheckpointStore for
// their frozen learning state.
//
// The Store interface exists because the session map is the one shared
// structure every decision crosses. A single RWMutex around one map —
// the shape serve.Server grew up with — serialises the lookup of every
// decide in the fleet through one cache line; the sharded implementation
// stripes the map across independently locked shards so lookups for
// different sessions contend only when they hash to the same stripe.
// The interface also decouples the serving layer from the map's home:
// an in-process store today, a path to an external shared store later.
//
// Values are a type parameter rather than an interface: the serve layer
// stores its unexported *session directly, with no boxing on the decide
// hot path.
package sessionstore

import (
	"sync"

	"qgov/internal/strhash"
)

// Store is a concurrent map of session id → V. Put is put-if-absent —
// session creation must atomically detect duplicates — and Delete
// returns the removed value so callers can release resources it owns.
type Store[V any] interface {
	// Get returns the value for id.
	Get(id string) (V, bool)
	// GetBytes is Get with a byte-slice key. Implementations must not
	// retain id, so callers can pass decode buffers; the sharded store
	// performs no conversion allocation (the binary transport's
	// decode→decide path stays allocation-free).
	GetBytes(id []byte) (V, bool)
	// Put stores v under id if the id is free and reports whether it did.
	Put(id string, v V) bool
	// Delete removes id, returning the removed value.
	Delete(id string) (V, bool)
	// Range calls f for every entry until f returns false. The iteration
	// order is unspecified and entries added or removed concurrently may
	// or may not be seen; f must not call back into the store.
	Range(f func(id string, v V) bool)
	// Len returns the entry count.
	Len() int
}

// defaultShards is the stripe count used when NewSharded is given zero:
// comfortably above the core count of the machines this serves on, so
// two concurrent decides rarely queue on the same stripe.
const defaultShards = 64

// Sharded is the mutex-striped in-process Store: ids hash across
// power-of-two shards, each an independently RW-locked map.
type Sharded[V any] struct {
	shards []shard[V]
	mask   uint64
}

type shard[V any] struct {
	mu sync.RWMutex // 24 bytes
	m  map[string]V // 8 bytes
	// Pad the shard to 128 bytes so no two shards' hot fields share a
	// 64-byte cache line whatever the slice's base alignment —
	// neighbouring shard locks would otherwise false-share under write
	// contention.
	_ [96]byte
}

// NewSharded builds a store with the given shard count rounded up to a
// power of two; <= 0 selects the default.
func NewSharded[V any](shards int) *Sharded[V] {
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]V)
	}
	return s
}

func (s *Sharded[V]) shardFor(h uint64) *shard[V] {
	return &s.shards[h&s.mask]
}

// Get implements Store.
func (s *Sharded[V]) Get(id string) (V, bool) {
	sh := s.shardFor(hashString(id))
	sh.mu.RLock()
	v, ok := sh.m[id]
	sh.mu.RUnlock()
	return v, ok
}

// GetBytes implements Store. The map index compiles to a no-copy lookup.
func (s *Sharded[V]) GetBytes(id []byte) (V, bool) {
	sh := s.shardFor(hashBytes(id))
	sh.mu.RLock()
	v, ok := sh.m[string(id)]
	sh.mu.RUnlock()
	return v, ok
}

// Put implements Store (put-if-absent).
func (s *Sharded[V]) Put(id string, v V) bool {
	sh := s.shardFor(hashString(id))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.m[id]; dup {
		return false
	}
	sh.m[id] = v
	return true
}

// Delete implements Store.
func (s *Sharded[V]) Delete(id string) (V, bool) {
	sh := s.shardFor(hashString(id))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	return v, ok
}

// Range implements Store: each shard is walked under its read lock, so
// f runs with one stripe locked — it must be quick and must not touch
// the store (a Put or Delete from f deadlocks on the same stripe).
func (s *Sharded[V]) Range(f func(id string, v V) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, v := range sh.m {
			if !f(id, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Len implements Store. The count is a sum of per-shard snapshots —
// exact when quiescent, approximate under concurrent mutation.
func (s *Sharded[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

func hashString(s string) uint64 { return strhash.String(s) }

func hashBytes(b []byte) uint64 { return strhash.Bytes(b) }
