package stats

import (
	"runtime"
	"runtime/metrics"
	"testing"
)

func TestReadRuntime(t *testing.T) {
	runtime.GC() // guarantee at least one GC cycle and pause sample
	rs := ReadRuntime()
	if rs.Goroutines < 1 {
		t.Errorf("Goroutines = %d, want >= 1", rs.Goroutines)
	}
	if rs.GCCycles == 0 {
		t.Error("GCCycles = 0 after an explicit runtime.GC()")
	}
	if rs.HeapLiveBytes == 0 {
		t.Error("HeapLiveBytes = 0")
	}
	if rs.GCPauseP99S < 0 || rs.GCPauseP99S > 10 {
		t.Errorf("GCPauseP99S = %g, outside sane bounds", rs.GCPauseP99S)
	}
	if rs.SchedLatencyP99S < 0 || rs.SchedLatencyP99S > 60 {
		t.Errorf("SchedLatencyP99S = %g, outside sane bounds", rs.SchedLatencyP99S)
	}
}

// Every name in runtimeSamples must exist in this Go version's metric
// set (the fallback-to-zero path is for future skew, not for typos).
func TestRuntimeSampleNamesValid(t *testing.T) {
	known := make(map[string]bool)
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	for _, name := range runtimeSamples {
		if !known[name] {
			t.Errorf("runtime metric %q unknown to this Go version", name)
		}
	}
}

func TestHistQuantileEmpty(t *testing.T) {
	if got := histQuantile(nil, 0.99); got != 0 {
		t.Errorf("nil histogram quantile = %g", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g", got)
	}
}

func TestHistQuantileRank(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{90, 9, 1},
		Buckets: []float64{0, 1, 2, 3},
	}
	if got := histQuantile(h, 0.5); got != 1 {
		t.Errorf("p50 = %g, want 1", got)
	}
	if got := histQuantile(h, 0.99); got != 2 {
		t.Errorf("p99 = %g, want 2", got)
	}
	if got := histQuantile(h, 1); got != 3 {
		t.Errorf("p100 = %g, want 3", got)
	}
}
