package experiments

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"

	"qgov/internal/governor"
	"qgov/internal/registry"
	"qgov/internal/scenario"
	"qgov/internal/sim"
)

// The cross-workload transfer study at scenario scale: the paper's
// headline practicality claim (via its ref [12]) is that a learnt DVFS
// policy transfers — a Q-table trained on one workload warm-starts
// another and cuts the exploration a fresh deployment pays. The study
// runs that claim through the checkpoint registry end to end: train the
// RTM on a source workload, publish the frozen state as a manifest,
// then serve a different target workload cold and warm and compare how
// many frames each needs to reach a converged policy and what the
// energy difference is.

// TransferThreshold is the converged-state fraction a serving run must
// reach to count as converged (governor.ExplorationStats).
const TransferThreshold = 0.9

// TransferEpsilonFloor is the exploration probability below which the
// learner counts as exploiting. The fraction threshold alone is not a
// convergence signal: before learning starts, an untouched greedy policy
// is trivially constant, so rarely-visited states read as "stable" from
// epoch one. A run converges at the first epoch where the policy has
// settled (fraction ≥ TransferThreshold) AND the ε schedule has handed
// over to exploitation (ε ≤ this floor) — for a cold start that is the
// hold-then-decay schedule paid in full; a warm start resumes with ε
// already decayed, which is exactly the cost transfer avoids.
const TransferEpsilonFloor = 0.05

// TransferPair is one source → target workload cell of the matrix.
type TransferPair struct {
	Source, Target string
}

// DefaultTransferPairs are the cells the study runs by default: the
// paper's h264-football trace against the two synthetic decode loops,
// in both directions.
var DefaultTransferPairs = []TransferPair{
	{"h264-football", "mpeg4-30fps"},
	{"mpeg4-30fps", "h264-football"},
	{"h264-football", "h264-15fps"},
}

// TransferCell is one measured source → target result, averaged over
// the study's seeds.
type TransferCell struct {
	Source, Target string
	// ManifestID is the registry manifest the warm runs started from.
	ManifestID string
	// Frames to reach TransferThreshold converged-state fraction, mean
	// over seeds; runs that never reach it contribute the full horizon
	// (the honest pessimistic bound, as Table III counts it).
	ColdFrames, WarmFrames float64
	// Converged runs out of len(Seeds), cold and warm.
	ColdConverged, WarmConverged int
	// Mean energy over the serve horizon.
	ColdEnergyJ, WarmEnergyJ float64
	// Mean exploratory decisions spent.
	ColdExplorations, WarmExplorations float64
}

// TransferResult is the full matrix.
type TransferResult struct {
	Governor  string
	Platform  string
	Threshold float64
	Frames    int // both the training and the serving horizon
	Seeds     []int64
	Cells     []TransferCell
}

// TransferMatrix runs the study. frames <= 0 selects 1000 frames; seeds
// empty selects DefaultSeeds. Each distinct source workload is trained
// once (on the first seed — the fleet publishes one policy, many
// sessions reuse it) and published to an in-memory registry; each cell
// then serves the target cold and warm from the published manifest.
func TransferMatrix(seeds []int64, frames int) (*TransferResult, error) {
	return transferMatrix(DefaultTransferPairs, seeds, frames)
}

func transferMatrix(pairs []TransferPair, seeds []int64, frames int) (*TransferResult, error) {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 1000
	}
	const gov, plat = "rtm", "a15"
	res := &TransferResult{
		Governor:  gov,
		Platform:  plat,
		Threshold: TransferThreshold,
		Frames:    frames,
		Seeds:     seeds,
	}

	reg := registry.New(registry.NewMem())
	manifests := map[string]registry.Manifest{} // source workload → manifest
	for _, p := range pairs {
		if _, done := manifests[p.Source]; done {
			continue
		}
		m, err := trainAndPublish(reg, gov, p.Source, plat, seeds[0], frames)
		if err != nil {
			return nil, err
		}
		manifests[p.Source] = m
	}

	for _, p := range pairs {
		m := manifests[p.Source]
		state, err := reg.StateOf(m)
		if err != nil {
			return nil, err
		}
		sc, err := scenario.Get(gov + "/" + p.Target + "/" + plat)
		if err != nil {
			return nil, err
		}
		cell := TransferCell{Source: p.Source, Target: p.Target, ManifestID: m.ID}
		for _, seed := range seeds {
			cold, err := sc.Config(seed, frames)
			if err != nil {
				return nil, err
			}
			cf, cr := serveToConvergence(cold, frames)
			cell.ColdFrames += float64(cf)
			cell.ColdEnergyJ += cr.EnergyJ
			cell.ColdExplorations += float64(cr.Explorations)
			if cf < frames {
				cell.ColdConverged++
			}

			warm, err := sc.ConfigWarm(seed, frames, bytes.NewReader(state))
			if err != nil {
				return nil, err
			}
			wf, wr := serveToConvergence(warm, frames)
			cell.WarmFrames += float64(wf)
			cell.WarmEnergyJ += wr.EnergyJ
			cell.WarmExplorations += float64(wr.Explorations)
			if wf < frames {
				cell.WarmConverged++
			}
		}
		n := float64(len(seeds))
		cell.ColdFrames /= n
		cell.WarmFrames /= n
		cell.ColdEnergyJ /= n
		cell.WarmEnergyJ /= n
		cell.ColdExplorations /= n
		cell.WarmExplorations /= n
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// trainAndPublish trains the governor on the source workload and
// publishes the frozen state under its scenario fingerprint.
func trainAndPublish(reg *registry.Registry, gov, wl, plat string, seed int64, frames int) (registry.Manifest, error) {
	sc, err := scenario.Get(gov + "/" + wl + "/" + plat)
	if err != nil {
		return registry.Manifest{}, err
	}
	s, err := sc.Session(seed, frames)
	if err != nil {
		return registry.Manifest{}, err
	}
	for !s.Done() {
		s.Step(s.Decide())
	}
	var frozen bytes.Buffer
	if err := scenario.Freeze(s.Governor(), &frozen); err != nil {
		return registry.Manifest{}, err
	}
	tr := registry.Training{Frames: int64(frames)}
	if es, ok := s.Governor().(governor.ExplorationStats); ok {
		tr.ConvergedFraction = es.ConvergedFraction()
	}
	return reg.Publish(registry.Fingerprint{
		Governor: gov, Workload: wl, Platform: plat,
		Shape: registry.ShapeOf(frozen.Bytes()),
	}, tr, frozen.Bytes())
}

// serveToConvergence drives one configured run to completion, recording
// the frames processed when the governor first exploits a settled
// policy: converged-state fraction at or above TransferThreshold with ε
// at or below TransferEpsilonFloor. Runs that never get there report
// the full horizon — which also means a run converging exactly on its
// final frame is indistinguishable from the sentinel and counts as
// non-converged; the bias is conservative (cold and warm alike) and
// only touches the converged-runs tally, never the frame means.
func serveToConvergence(cfg sim.Config, frames int) (int, *sim.Result) {
	s := sim.NewSession(cfg)
	es, hasES := cfg.Governor.(governor.ExplorationStats)
	at := frames
	served := 0
	for !s.Done() {
		s.Step(s.Decide())
		served++
		if at == frames && hasES &&
			es.ConvergedFraction() >= TransferThreshold && es.Epsilon() <= TransferEpsilonFloor {
			at = served // frames processed, not the 0-based epoch index
		}
	}
	return at, s.Result()
}

// Cell returns the named cell, or nil.
func (t *TransferResult) Cell(source, target string) *TransferCell {
	for i := range t.Cells {
		if t.Cells[i].Source == source && t.Cells[i].Target == target {
			return &t.Cells[i]
		}
	}
	return nil
}

// Render writes the matrix, one row per cell.
func (t *TransferResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Warm-start transfer matrix — %s on %s, %d frames, %d seeds, converged-fraction threshold %.2f\n",
		t.Governor, t.Platform, t.Frames, len(t.Seeds), t.Threshold)
	fmt.Fprintf(w, "(train on source → publish to registry → serve target cold vs. warm; ref [12]'s transfer claim)\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "source→target\tcold frames→conv\twarm frames→conv\tsaved\tcold expl\twarm expl\tcold J\twarm J\tmanifest")
	for _, c := range t.Cells {
		fmt.Fprintf(tw, "%s→%s\t%.0f (%d/%d)\t%.0f (%d/%d)\t%.0f%%\t%.0f\t%.0f\t%.2f\t%.2f\t%s\n",
			c.Source, c.Target,
			c.ColdFrames, c.ColdConverged, len(t.Seeds),
			c.WarmFrames, c.WarmConverged, len(t.Seeds),
			100*(1-c.WarmFrames/c.ColdFrames),
			c.ColdExplorations, c.WarmExplorations,
			c.ColdEnergyJ, c.WarmEnergyJ, c.ManifestID)
	}
	return tw.Flush()
}
