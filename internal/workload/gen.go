package workload

import (
	"math"
	"math/rand"
)

// Random-variate helpers shared by the workload generators. All generators
// draw from a caller-seeded *rand.Rand so traces are reproducible.

// logNormal draws a multiplicative noise factor with median 1 and the given
// log-domain sigma. sigma == 0 returns exactly 1.
func logNormal(rng *rand.Rand, sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64() * sigma)
}

// boundedWalk advances a mean-reverting random walk in log space and clamps
// the result to [lo, hi]. It models slowly drifting scene activity or
// dataset phase levels: strength pulls back toward 1.0, sigma jitters.
func boundedWalk(rng *rand.Rand, current, sigma, reversion, lo, hi float64) float64 {
	logv := math.Log(current)
	logv = logv*(1-reversion) + rng.NormFloat64()*sigma
	v := math.Exp(logv)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// splitAcrossThreads distributes totalCycles over `threads` threads with a
// given imbalance coefficient of variation. The shares always sum to the
// total (the last thread absorbs rounding), and every thread receives at
// least one cycle so no frame degenerates to fewer threads than requested.
func splitAcrossThreads(rng *rand.Rand, totalCycles float64, threads int, imbalanceCV float64) []uint64 {
	if threads < 1 {
		panic("workload: splitAcrossThreads needs at least one thread")
	}
	weights := make([]float64, threads)
	var wsum float64
	for j := range weights {
		w := 1.0
		if imbalanceCV > 0 {
			w = math.Max(0.05, 1+rng.NormFloat64()*imbalanceCV)
		}
		weights[j] = w
		wsum += w
	}
	out := make([]uint64, threads)
	var assigned uint64
	for j := 0; j < threads-1; j++ {
		c := uint64(totalCycles * weights[j] / wsum)
		if c == 0 {
			c = 1
		}
		out[j] = c
		assigned += c
	}
	rest := totalCycles - float64(assigned)
	if rest < 1 {
		rest = 1
	}
	out[threads-1] = uint64(rest)
	return out
}
