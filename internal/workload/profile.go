package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Profile is the parameterised phase model behind the PARSEC and SPLASH-2
// workloads. The real suites are native binaries we cannot run inside this
// reproduction (DESIGN.md §2); what the governor observes from them is a
// per-iteration cycle-demand series, and published characterisation studies
// (Bienia's PARSEC tech report, the SPLASH-2 paper) describe each
// benchmark's series by a handful of features this model captures:
//
//   - a base per-thread demand with optional linear trend (e.g. LU's
//     shrinking trailing submatrix),
//   - a periodic component (alternating compute/communicate phases, e.g.
//     ocean's red-black sweeps),
//   - a slowly drifting level (dataset-dependent drift, e.g. barnes'
//     clustering bodies),
//   - sporadic bursts (e.g. freqmine's conditional FP-tree rebuilds),
//   - lognormal per-frame noise and per-thread imbalance (pipeline stages
//     in ferret, load imbalance in raytrace).
//
// Each named benchmark below is a preset of these parameters; the preset
// comments cite the behaviour they encode.
type Profile struct {
	Name                string
	BaseCyclesPerThread float64 // mean demand of one thread at level 1.0
	TrendPerFrame       float64 // fractional drift per frame (can be negative)
	PeriodFrames        int     // period of the phase oscillation (0: none)
	PeriodAmp           float64 // amplitude of the oscillation as a fraction
	BurstProb           float64 // per-frame probability of a burst frame
	BurstMag            float64 // burst multiplier (e.g. 2.0 doubles demand)
	WalkSigma           float64 // per-frame log drift of the base level
	NoiseSigma          float64 // per-frame lognormal noise
	ImbalanceCV         float64 // per-thread imbalance
	LevelMin, LevelMax  float64 // clamp for the drifting level
}

// Validate reports parameter errors.
func (p Profile) Validate() error {
	switch {
	case p.BaseCyclesPerThread <= 0:
		return fmt.Errorf("workload: profile %q needs positive base cycles", p.Name)
	case p.PeriodFrames < 0:
		return fmt.Errorf("workload: profile %q has negative period", p.Name)
	case p.PeriodAmp < 0 || p.PeriodAmp >= 1:
		return fmt.Errorf("workload: profile %q needs 0 <= PeriodAmp < 1", p.Name)
	case p.BurstProb < 0 || p.BurstProb > 1:
		return fmt.Errorf("workload: profile %q has invalid burst probability", p.Name)
	case p.BurstProb > 0 && p.BurstMag <= 0:
		return fmt.Errorf("workload: profile %q has bursts with non-positive magnitude", p.Name)
	case p.LevelMin <= 0 || p.LevelMax < p.LevelMin:
		return fmt.Errorf("workload: profile %q level clamp invalid", p.Name)
	}
	return nil
}

// Generate produces a trace of the given length, width and frame rate.
func (p Profile) Generate(numFrames, threads int, fps float64, seed int64) Trace {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if numFrames < 1 || threads < 1 || fps <= 0 {
		panic(fmt.Sprintf("workload: profile %q generate with frames=%d threads=%d fps=%v",
			p.Name, numFrames, threads, fps))
	}
	rng := rand.New(rand.NewSource(seed))
	level := 1.0
	frames := make([]Frame, numFrames)
	for i := range frames {
		level = boundedWalk(rng, level, p.WalkSigma, 0.01, p.LevelMin, p.LevelMax)
		f := level * (1 + p.TrendPerFrame*float64(i))
		if f < 0.05 {
			f = 0.05
		}
		if p.PeriodFrames > 0 {
			f *= 1 + p.PeriodAmp*math.Sin(2*math.Pi*float64(i)/float64(p.PeriodFrames))
		}
		if p.BurstProb > 0 && rng.Float64() < p.BurstProb {
			f *= p.BurstMag
		}
		perThread := p.BaseCyclesPerThread * f
		total := perThread * float64(threads) * logNormal(rng, p.NoiseSigma)
		frames[i] = Frame{Cycles: splitAcrossThreads(rng, total, threads, p.ImbalanceCV)}
	}
	return Trace{Name: p.Name, RefTimeS: 1 / fps, Frames: frames}
}
