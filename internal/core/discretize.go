// Package core implements the paper's contribution: a Q-learning run-time
// manager (RTM) that selects per-epoch voltage-frequency settings from a
// predicted workload state to meet an application's per-frame deadline at
// minimum energy.
//
// The pieces map to the paper as follows:
//
//	StateSpace       — Section II-A: predicted cycle count × average slack
//	                   ratio, each discretised into N levels (N = 5)
//	QTable           — Section II-A/B: the look-up table over state-action
//	                   pairs, updated with Bellman's equation (Eq. 3)
//	ExponentialPolicy— Section II-B: EPD action selection (Eq. 2)
//	UniformPolicy    — the conventional UPD selection of ref [21], kept as
//	                   the Table II baseline
//	SlackTracker     — Eq. 5: the average slack ratio L
//	Reward           — Eq. 4: R = a·L + b·ΔL (shaped; see reward.go)
//	EpsilonSchedule  — Eq. 6: exponentially decaying exploration
//	RTM              — Section II: the governor tying it together
//	Normalize        — Eq. 7: per-core workload normalisation for the
//	                   many-core shared-table formulation
package core

import (
	"fmt"

	"qgov/internal/stats"
)

// StateSpace discretises the two state variables of Section II-A — the
// predicted workload (CPU cycle count) and the current performance (average
// slack ratio L) — into N levels each, yielding N² Q-table rows.
//
// The workload range comes from pre-characterisation ("design space
// exploration" in the paper): Calibrate scans a trace the way the authors
// profiled their applications. Out-of-range values clamp to the edge
// levels, so an uncalibrated or drifting workload degrades gracefully
// instead of faulting.
type StateSpace struct {
	Levels   int     // N; the paper uses 5
	CCMin    float64 // lower edge of the workload range (cycles)
	CCMax    float64 // upper edge of the workload range (cycles)
	SlackMin float64 // lower edge of the slack-ratio range
	SlackMax float64 // upper edge of the slack-ratio range
}

// NewStateSpace returns a space with the paper's defaults: N = 5 and a
// slack-ratio range of [-0.5, 0.5] (a frame overrunning its deadline by
// more than 50 % and one finishing more than 50 % early carry no extra
// information for V-F selection). The workload range must be set by
// Calibrate or by hand before use.
func NewStateSpace(levels int) *StateSpace {
	if levels < 2 {
		panic(fmt.Sprintf("core: state space needs at least 2 levels, got %d", levels))
	}
	return &StateSpace{
		Levels:   levels,
		SlackMin: -0.5,
		SlackMax: 0.5,
	}
}

// Calibrate sets the workload range from a pre-characterisation series of
// per-epoch cycle counts, with a small margin so the common case does not
// sit exactly on the clamp. It returns an error on an empty or degenerate
// series.
func (s *StateSpace) Calibrate(cycleCounts []float64) error {
	if len(cycleCounts) == 0 {
		return fmt.Errorf("core: calibration series is empty")
	}
	lo, hi := stats.Min(cycleCounts), stats.Max(cycleCounts)
	if !(hi > lo) {
		// A constant workload still needs a non-empty range to quantise;
		// widen it artificially around the constant.
		lo, hi = lo*0.9, hi*1.1
		if !(hi > lo) { // all zeros
			return fmt.Errorf("core: calibration series is degenerate (all %v)", lo)
		}
	}
	margin := 0.05 * (hi - lo)
	s.CCMin = lo - margin
	if s.CCMin < 0 {
		s.CCMin = 0
	}
	s.CCMax = hi + margin
	return nil
}

// Calibrated reports whether a usable workload range is set.
func (s *StateSpace) Calibrated() bool { return s.CCMax > s.CCMin }

// NumStates returns the number of Q-table rows, |S| = N².
func (s *StateSpace) NumStates() int { return s.Levels * s.Levels }

// CCLevel quantises a cycle count into [0, Levels).
func (s *StateSpace) CCLevel(cc float64) int {
	return s.quantise(cc, s.CCMin, s.CCMax)
}

// SlackLevel quantises an average slack ratio into [0, Levels).
func (s *StateSpace) SlackLevel(l float64) int {
	return s.quantise(l, s.SlackMin, s.SlackMax)
}

// State combines the two levels into a Q-table row index.
func (s *StateSpace) State(ccLevel, slackLevel int) int {
	if ccLevel < 0 || ccLevel >= s.Levels || slackLevel < 0 || slackLevel >= s.Levels {
		panic(fmt.Sprintf("core: state (%d,%d) outside %d levels", ccLevel, slackLevel, s.Levels))
	}
	return ccLevel*s.Levels + slackLevel
}

// StateOf maps raw observations straight to a row index.
func (s *StateSpace) StateOf(cc, slack float64) int {
	return s.State(s.CCLevel(cc), s.SlackLevel(slack))
}

func (s *StateSpace) quantise(x, lo, hi float64) int {
	if !(hi > lo) {
		panic("core: state space used before calibration")
	}
	if x <= lo {
		return 0
	}
	if x >= hi {
		return s.Levels - 1
	}
	l := int((x - lo) / (hi - lo) * float64(s.Levels))
	if l == s.Levels { // top-edge rounding
		l--
	}
	return l
}

// Normalize implements Eq. 7: the predicted workload of each core divided
// by the cluster total, scaled by the core count so a perfectly balanced
// workload maps to 1.0 on every core. A zero total returns all zeros.
func Normalize(predCC []float64) []float64 {
	out := make([]float64, len(predCC))
	copy(out, predCC)
	return NormalizeInPlace(out)
}

// NormalizeInPlace is Normalize overwriting its argument — the
// allocation-free form the decision hot path uses on a scratch buffer. It
// returns the argument for chaining.
func NormalizeInPlace(predCC []float64) []float64 {
	var total float64
	for _, v := range predCC {
		total += v
	}
	c := float64(len(predCC))
	for i, v := range predCC {
		if total <= 0 {
			predCC[i] = 0
		} else {
			predCC[i] = v / total * c
		}
	}
	return predCC
}
