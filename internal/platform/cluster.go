package platform

import (
	"fmt"
	"math"
	"sort"
)

// Cluster is one DVFS domain with a set of identical cores: the unit the
// run-time manager controls. The paper's experiments use the ODROID-XU3's
// quad Cortex-A15 cluster; DefaultA15Cluster reproduces it.
//
// A cluster executes work in frame-sized chunks: the epoch engine hands it
// per-core cycle demands and it returns timing, energy and sensor readings
// for that epoch. All cores share one operating point (per-cluster DVFS, as
// on the Exynos 5422).
type Cluster struct {
	name     string
	dvfs     *DVFS
	power    *PowerModel
	thermal  *ThermalModel
	sensor   *PowerSensor
	pmus     []*PMU
	memStall float64

	// powerLUT caches the voltage- and frequency-dependent factors of the
	// power model per operating point, leaving only the temperature
	// exponential to evaluate per epoch segment (see oppPower).
	powerLUT []oppPower
	freqHz   []float64 // per-OPP clock in Hz
	fMaxHz   float64   // fastest OPP's clock

	// Per-epoch scratch, reused across Execute calls so the simulation hot
	// loop performs no per-frame allocations. A Cluster is single-run
	// state (see sim.Job) and is never executed concurrently.
	busyScratch   []float64
	finishScratch []float64
	segScratch    []PowerSegment

	totalEnergyJ float64
	totalTimeS   float64
	frames       int
}

// oppPower holds the per-OPP constants of the CMOS power decomposition:
// everything except the e^{kT(T−Tref)} leakage term, which depends on the
// evolving die temperature.
type oppPower struct {
	coreDynW    float64 // one fully busy core
	gatedDynW   float64 // one clock-gated core
	uncoreBusyW float64 // shared uncore, cluster active
	uncoreIdleW float64 // shared uncore, fully idle
	leakVW      float64 // NumCores · V · I0 · e^{kV(V−Vref)}
}

// buildPowerLUT precomputes the per-OPP factors from the power model.
func buildPowerLUT(table OPPTable, m *PowerModel) []oppPower {
	lut := make([]oppPower, len(table))
	for i, opp := range table {
		core := m.CoreDynamicW(opp)
		lut[i] = oppPower{
			coreDynW:    core,
			gatedDynW:   core * m.ClockGateFrac,
			uncoreBusyW: m.UncoreDynamicW(opp, true),
			uncoreIdleW: m.UncoreDynamicW(opp, false),
			leakVW: float64(m.NumCores) * opp.VoltageV * m.LeakI0A *
				math.Exp(m.LeakKV*(opp.VoltageV-m.VrefV)),
		}
	}
	return lut
}

// powerAt evaluates cluster power for the operating point at idx with
// activeCores busy, from the LUT. It matches PowerModel.ClusterPowerW up
// to floating-point association.
func (c *Cluster) powerAt(idx, activeCores int, tempC float64) float64 {
	p := &c.powerLUT[idx]
	if activeCores < 0 {
		activeCores = 0
	}
	if activeCores > len(c.pmus) {
		activeCores = len(c.pmus)
	}
	uncore := p.uncoreBusyW
	if activeCores == 0 {
		uncore = p.uncoreIdleW
	}
	dyn := float64(activeCores)*p.coreDynW +
		float64(len(c.pmus)-activeCores)*p.gatedDynW + uncore
	return dyn + p.leakVW*math.Exp(c.power.LeakKT*(tempC-c.power.TrefC))
}

// ClusterConfig assembles a Cluster. Zero-value fields fall back to the
// defaults documented on each field.
type ClusterConfig struct {
	Name     string        // cluster name, e.g. "A15"
	Table    OPPTable      // required: the DVFS operating points
	NumCores int           // required: cores sharing the domain
	Power    *PowerModel   // default: DefaultA15PowerModel with NumCores patched
	Thermal  *ThermalModel // default: DefaultA15Thermal
	Sensor   *PowerSensor  // default: DefaultSensor(seed)
	IPC      float64       // PMU instruction model, default 1.6 (A15-class)
	StartIdx int           // initial OPP index
	Seed     int64         // seeds the sensor noise
	// MemStallFrac is the memory-bound fraction of each thread's work in
	// [0, 0.9]: execution time follows the leading-order DVFS model
	//
	//	T(f) = (1−m)·C/f + m·C/f_max
	//
	// where C is the thread's cycle demand calibrated at f_max. The memory
	// term is wall-clock-constant (DRAM does not speed up with the core
	// clock), so the higher m is, the less a frequency change moves the
	// execution time — the classic reason DVFS pays less on memory-bound
	// code. PMU cycle counts scale accordingly (stall cycles shrink at
	// lower clocks). 0 (the default) models fully compute-bound work.
	MemStallFrac float64
}

// NewCluster builds a cluster from the configuration. It panics on an
// invalid table or core count: those are construction-time bugs.
func NewCluster(cfg ClusterConfig) *Cluster {
	if err := cfg.Table.Validate(); err != nil {
		panic(err)
	}
	if cfg.NumCores < 1 {
		panic("platform: cluster needs at least one core")
	}
	power := cfg.Power
	if power == nil {
		power = DefaultA15PowerModel()
		power.NumCores = cfg.NumCores
	}
	if err := power.Validate(); err != nil {
		panic(err)
	}
	if power.NumCores != cfg.NumCores {
		panic(fmt.Sprintf("platform: power model is for %d cores, cluster has %d", power.NumCores, cfg.NumCores))
	}
	thermal := cfg.Thermal
	if thermal == nil {
		thermal = DefaultA15Thermal()
	}
	sensor := cfg.Sensor
	if sensor == nil {
		sensor = DefaultSensor(cfg.Seed)
	}
	ipc := cfg.IPC
	if ipc == 0 {
		ipc = 1.6
	}
	if cfg.MemStallFrac < 0 || cfg.MemStallFrac > 0.9 {
		panic(fmt.Sprintf("platform: MemStallFrac %v outside [0, 0.9]", cfg.MemStallFrac))
	}
	pmus := make([]*PMU, cfg.NumCores)
	for i := range pmus {
		pmus[i] = NewPMU(ipc)
	}
	freqHz := cfg.Table.Freqs()
	return &Cluster{
		name:        cfg.Name,
		dvfs:        NewDVFS(cfg.Table, cfg.StartIdx),
		power:       power,
		thermal:     thermal,
		sensor:      sensor,
		pmus:        pmus,
		memStall:    cfg.MemStallFrac,
		powerLUT:    buildPowerLUT(cfg.Table, power),
		freqHz:      freqHz,
		fMaxHz:      freqHz[len(freqHz)-1],
		busyScratch: make([]float64, cfg.NumCores),
	}
}

// DefaultA15Cluster returns the platform used by every experiment in the
// paper: four Cortex-A15 cores, 19 operating points from 200 to 2000 MHz,
// starting at the slowest point (the governor must learn its way up).
func DefaultA15Cluster(seed int64) *Cluster {
	return NewCluster(ClusterConfig{
		Name:     "A15",
		Table:    A15Table(),
		NumCores: 4,
		Seed:     seed,
	})
}

// DefaultA7Cluster returns the LITTLE cluster for multi-cluster extensions.
func DefaultA7Cluster(seed int64) *Cluster {
	pm := DefaultA7PowerModel()
	return NewCluster(ClusterConfig{
		Name:     "A7",
		Table:    A7Table(),
		NumCores: 4,
		Power:    pm,
		Seed:     seed,
	})
}

// Name returns the cluster's name.
func (c *Cluster) Name() string { return c.name }

// NumCores returns the number of cores in the cluster.
func (c *Cluster) NumCores() int { return len(c.pmus) }

// Table returns the cluster's OPP table.
func (c *Cluster) Table() OPPTable { return c.dvfs.Table() }

// CurrentIdx returns the index of the active operating point.
func (c *Cluster) CurrentIdx() int { return c.dvfs.CurrentIdx() }

// CurrentOPP returns the active operating point.
func (c *Cluster) CurrentOPP() OPP { return c.dvfs.Current() }

// SetOPP switches the cluster operating point and returns the transition
// latency in seconds, which the caller should charge to the next epoch's
// overhead (the paper's T_OVH).
func (c *Cluster) SetOPP(idx int) float64 { return c.dvfs.Set(idx) }

// PMU returns core i's performance monitoring unit.
func (c *Cluster) PMU(i int) *PMU { return c.pmus[i] }

// TempC returns the current die temperature.
func (c *Cluster) TempC() float64 { return c.thermal.TempC() }

// TotalEnergyJ returns the cumulative energy consumed since construction
// or the last Reset.
func (c *Cluster) TotalEnergyJ() float64 { return c.totalEnergyJ }

// TotalTimeS returns the cumulative simulated wall time.
func (c *Cluster) TotalTimeS() float64 { return c.totalTimeS }

// Transitions returns the number of DVFS transitions performed.
func (c *Cluster) Transitions() int { return c.dvfs.Transitions() }

// ExecReport describes one epoch executed on a cluster.
type ExecReport struct {
	OPP          OPP     // operating point the epoch ran at
	OPPIdx       int     // its table index
	ExecTimeS    float64 // slowest-thread completion incl. overhead (the paper's T_i)
	WallTimeS    float64 // ExecTimeS, or the period if the frame finished early
	SlackS       float64 // period − ExecTimeS (negative: deadline miss)
	EnergyJ      float64 // exact model energy over WallTimeS
	AvgPowerW    float64 // EnergyJ / WallTimeS
	SensorPowerW float64 // sensor-measured average power over WallTimeS
	MaxCycles    uint64  // largest per-core demand this epoch
	TotalCycles  uint64  // sum of per-core demands
	ActiveCores  int     // cores with non-zero demand
	EndTempC     float64 // die temperature at the end of the epoch
}

// Execute runs one epoch: each core j executes cycles[j] cycles at the
// current operating point, with overheadS seconds of management overhead
// (governor compute plus DVFS transition) serialised before the workload,
// mirroring where the RTM runs at the start of each decision epoch.
//
// periodS > 0 applies periodic frame semantics: when execution finishes
// early the cluster idles (clock-gated) until the period boundary; when it
// overruns, the epoch extends to the execution time (a deadline miss, the
// next frame starts late). periodS == 0 means free-running execution.
//
// len(cycles) must not exceed NumCores; missing entries are idle cores.
func (c *Cluster) Execute(cycles []uint64, overheadS, periodS float64) ExecReport {
	if len(cycles) > len(c.pmus) {
		panic(fmt.Sprintf("platform: %d thread demands for %d cores", len(cycles), len(c.pmus)))
	}
	if overheadS < 0 || periodS < 0 {
		panic("platform: negative overhead or period")
	}
	opp := c.dvfs.Current()
	oppIdx := c.dvfs.CurrentIdx()
	f := c.freqHz[oppIdx]
	fMax := c.fMaxHz

	// Per-core busy durations at this frequency: the compute fraction
	// scales with the clock, the memory-stall fraction does not (see
	// ClusterConfig.MemStallFrac). The overhead runs on core 0 (where the
	// kernel governor executes) before the parallel section.
	busy := c.busyScratch
	for j := range busy {
		busy[j] = 0
	}
	var maxBusy float64
	var total, maxCycles uint64
	active := 0
	for j, cy := range cycles {
		busy[j] = (1-c.memStall)*float64(cy)/f + c.memStall*float64(cy)/fMax
		if busy[j] > maxBusy {
			maxBusy = busy[j]
		}
		total += cy
		if cy > maxCycles {
			maxCycles = cy
		}
		if cy > 0 {
			active++
		}
	}
	execTime := overheadS + maxBusy
	wall := execTime
	if periodS > 0 && wall < periodS {
		wall = periodS
	}

	// Build the piecewise-constant power trajectory: overhead (1 core),
	// then cores dropping off as they finish, then the idle tail.
	segments := c.buildSegments(busy, overheadS, wall, oppIdx)

	// Integrate energy and advance the thermal state segment by segment.
	var energy float64
	for _, seg := range segments {
		energy += EnergyJ(seg.PowerW, seg.Duration)
		c.thermal.Step(seg.PowerW, seg.Duration)
	}
	sensorW := c.sensor.Measure(segments)

	// Advance the PMUs: the cycle counter advances with the core clock for
	// the busy duration (stall cycles shrink at lower clocks), idle for
	// the rest.
	for j, pmu := range c.pmus {
		var b float64
		if j < len(cycles) {
			b = busy[j]
		}
		observed := uint64(b * f)
		if j == 0 {
			// Overhead cycles execute on core 0 at the current frequency.
			pmu.advanceBusy(observed+uint64(overheadS*f), b+overheadS)
			pmu.advanceIdle(wall - b - overheadS)
		} else {
			pmu.advanceBusy(observed, b)
			pmu.advanceIdle(wall - b)
		}
	}

	c.totalEnergyJ += energy
	c.totalTimeS += wall
	c.frames++

	avg := 0.0
	if wall > 0 {
		avg = energy / wall
	}
	slack := 0.0
	if periodS > 0 {
		slack = periodS - execTime
	}
	return ExecReport{
		OPP:          opp,
		OPPIdx:       oppIdx,
		ExecTimeS:    execTime,
		WallTimeS:    wall,
		SlackS:       slack,
		EnergyJ:      energy,
		AvgPowerW:    avg,
		SensorPowerW: sensorW,
		MaxCycles:    maxCycles,
		TotalCycles:  total,
		ActiveCores:  active,
		EndTempC:     c.thermal.TempC(),
	}
}

// buildSegments constructs the power trajectory of one epoch. The returned
// slice is the cluster's reusable scratch: valid until the next Execute.
func (c *Cluster) buildSegments(busy []float64, overheadS, wall float64, oppIdx int) []PowerSegment {
	temp := c.thermal.TempC()
	segs := c.segScratch[:0]
	if overheadS > 0 {
		segs = append(segs, PowerSegment{
			PowerW:   c.powerAt(oppIdx, 1, temp),
			Duration: overheadS,
		})
	}
	// Sort finish times ascending; between consecutive finish times the
	// number of active cores decreases by the cores that finished.
	finish := c.finishScratch[:0]
	for _, b := range busy {
		if b > 0 {
			finish = append(finish, b)
		}
	}
	sort.Float64s(finish)
	activeCores := len(finish)
	prev := 0.0
	for _, t := range finish {
		if t > prev {
			segs = append(segs, PowerSegment{
				PowerW:   c.powerAt(oppIdx, activeCores, temp),
				Duration: t - prev,
			})
			prev = t
		}
		activeCores--
	}
	// Idle tail until the period boundary.
	tail := wall - overheadS - prev
	if tail > 1e-15 {
		segs = append(segs, PowerSegment{
			PowerW:   c.powerAt(oppIdx, 0, temp),
			Duration: tail,
		})
	}
	c.finishScratch = finish
	c.segScratch = segs
	return segs
}

// MinEnergyIdx returns the operating-point index that minimises the energy
// of executing the given per-core demands within periodS, considering both
// active and idle-tail energy, or the fastest index when no point meets the
// deadline. This is the per-frame Oracle decision the paper normalises
// energy against; it uses the model directly (offline knowledge).
func (c *Cluster) MinEnergyIdx(cycles []uint64, periodS float64) int {
	table := c.dvfs.Table()
	temp := c.thermal.TempC()
	var maxCy uint64
	active := 0
	var total uint64
	for _, cy := range cycles {
		if cy > maxCy {
			maxCy = cy
		}
		if cy > 0 {
			active++
		}
		total += cy
	}
	fMax := c.fMaxHz
	bestIdx := -1
	bestE := 0.0
	for i := range table {
		f := c.freqHz[i]
		t := (1-c.memStall)*float64(maxCy)/f + c.memStall*float64(maxCy)/fMax
		if periodS > 0 && t > periodS {
			continue
		}
		// Approximate per-OPP energy: all active cores busy for the mean
		// demand, slowest for t, idle tail to the period. Using the mean
		// spreads imbalance without re-deriving full segments per OPP.
		meanBusy := 0.0
		if active > 0 {
			meanCy := float64(total) / float64(active)
			meanBusy = (1-c.memStall)*meanCy/f + c.memStall*meanCy/fMax
		}
		e := c.powerAt(i, active, temp)*meanBusy +
			c.powerAt(i, 0, temp)*(maxFloat(periodS, t)-meanBusy)
		if bestIdx < 0 || e < bestE {
			bestIdx, bestE = i, e
		}
	}
	if bestIdx < 0 {
		return table.MaxIdx()
	}
	return bestIdx
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Reset restores the cluster to its initial state: slowest OPP, ambient
// temperature, zeroed counters and statistics.
func (c *Cluster) Reset() {
	c.dvfs.Reset(0)
	c.thermal.Reset()
	for _, p := range c.pmus {
		p.Reset()
	}
	c.totalEnergyJ = 0
	c.totalTimeS = 0
	c.frames = 0
}
