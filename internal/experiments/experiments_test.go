package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qgov/internal/sim"
)

// The experiment tests assert the paper's *shape* — orderings and rough
// factors — at reduced scale so the suite stays minutes-fast. The
// full-scale numbers live in EXPERIMENTS.md and regenerate via
// cmd/experiments and the benchmarks.

var testSeeds = []int64{11, 23}

func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	res := TableI(testSeeds, 1500)
	oracle := res.Row("oracle")
	ondemand := res.Row("ondemand")
	mldtm := res.Row("mldtm")
	rtm := res.Row("rtm")
	if oracle == nil || ondemand == nil || mldtm == nil || rtm == nil {
		t.Fatal("missing rows")
	}
	// Energy is normalised to the Oracle.
	if math.Abs(oracle.NormEnergy-1) > 1e-9 {
		t.Errorf("oracle norm energy = %v, want 1", oracle.NormEnergy)
	}
	// Paper ordering: proposed < ML-DTM < ondemand.
	if !(rtm.NormEnergy < mldtm.NormEnergy && mldtm.NormEnergy < ondemand.NormEnergy) {
		t.Errorf("energy ordering broken: rtm %.3f, mldtm %.3f, ondemand %.3f",
			rtm.NormEnergy, mldtm.NormEnergy, ondemand.NormEnergy)
	}
	// The proposed governor must save double-digit energy vs ondemand
	// (paper: ≈16 % vs the state of the art).
	if saving := 1 - rtm.NormEnergy/ondemand.NormEnergy; saving < 0.10 {
		t.Errorf("saving vs ondemand only %.1f%%", saving*100)
	}
	// Performance: the proposed governor tracks Tref most closely; the
	// baselines over-perform.
	if !(rtm.NormPerf > mldtm.NormPerf && rtm.NormPerf > ondemand.NormPerf) {
		t.Errorf("perf ordering broken: rtm %.2f, mldtm %.2f, ondemand %.2f",
			rtm.NormPerf, mldtm.NormPerf, ondemand.NormPerf)
	}
	if rtm.NormPerf < 0.7 || rtm.NormPerf > 1.05 {
		t.Errorf("rtm norm perf %.2f outside the plausible tracking band", rtm.NormPerf)
	}
	if oracle.MissRate > 0.001 {
		t.Errorf("oracle missed deadlines: %.2f%%", oracle.MissRate*100)
	}
}

func TestTableIRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	res := TableI(testSeeds[:1], 600)
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "oracle", "ondemand", "mldtm", "rtm", "Paper energy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	res := TableII(testSeeds, 800)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The EPD approach needs materially fewer explorations than UPD
		// (paper: 38-44 % fewer; we accept anything beyond 15 %).
		if !(row.EPD < row.UPD) {
			t.Errorf("%s: EPD %.0f not below UPD %.0f", row.App, row.EPD, row.UPD)
		}
		if row.Reduction < 0.15 {
			t.Errorf("%s: reduction only %.0f%%", row.App, row.Reduction*100)
		}
		if row.EPD < 10 || row.UPD > 500 {
			t.Errorf("%s: implausible counts EPD=%.0f UPD=%.0f", row.App, row.EPD, row.UPD)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("render missing title")
	}
}

func TestTableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	// Full seed set: with two seeds the convergence-epoch comparison is
	// inside seed noise; the five-seed mean is the experiment's unit.
	res := TableIII(DefaultSeeds, 2500)
	mldtm := res.Row("mldtm")
	rtm := res.Row("rtm")
	if mldtm == nil || rtm == nil {
		t.Fatal("missing rows")
	}
	// The shared-table RTM must stabilise in materially fewer epochs than
	// the per-core ML-DTM (paper factor ≈2; we accept ≥1.2).
	if !(rtm.Epochs < mldtm.Epochs) {
		t.Errorf("rtm epochs %.0f not below mldtm %.0f", rtm.Epochs, mldtm.Epochs)
	}
	if ratio := mldtm.Epochs / rtm.Epochs; ratio < 1.2 {
		t.Errorf("overhead ratio %.2f below 1.2", ratio)
	}
	if rtm.Converged == 0 {
		t.Error("no rtm run converged")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("render missing title")
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	fig := Fig3(11, 240)
	if len(fig.ActualCC) != 240 || len(fig.PredictedCC) != 240 {
		t.Fatalf("series lengths %d/%d", len(fig.ActualCC), len(fig.PredictedCC))
	}
	// Early (exploration + scripted cuts) misprediction exceeds the calm
	// late phase, as in the paper (≈8 % vs ≈3 %).
	if !(fig.MispredictEarly > fig.MispredictLate) {
		t.Errorf("early %.3f not above late %.3f", fig.MispredictEarly, fig.MispredictLate)
	}
	if fig.MispredictEarly > 0.20 {
		t.Errorf("early misprediction %.1f%% implausibly high", fig.MispredictEarly*100)
	}
	if fig.MispredictLate > 0.08 {
		t.Errorf("late misprediction %.1f%% above the paper band", fig.MispredictLate*100)
	}
	// Frame 0 has no forecast.
	if !math.IsNaN(fig.PredictedCC[0]) {
		t.Error("frame 0 should have no prediction")
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 3") {
		t.Error("render missing title")
	}
	buf.Reset()
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 241 { // header + 240
		t.Errorf("CSV lines = %d, want 241", lines)
	}
}

func TestAblationEPDShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	points := AblationEPD(testSeeds[:1], 700)
	if len(points) < 3 {
		t.Fatal("too few sweep points")
	}
	// β=0 (UPD) must explore the most; the largest β the least.
	first, last := points[0], points[len(points)-1]
	if first.Beta != 0 {
		t.Fatalf("sweep must start at β=0, got %v", first.Beta)
	}
	if !(last.Explorations < first.Explorations) {
		t.Errorf("β=%v explorations %.0f not below β=0's %.0f",
			last.Beta, last.Explorations, first.Explorations)
	}
}

func TestAblationGammaBowl(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	points := AblationGamma(testSeeds, 600)
	byGamma := map[float64]float64{}
	for _, p := range points {
		byGamma[p.Gamma] = p.Mispredict
	}
	// The paper's experimentally chosen γ=0.6 must beat both extremes on
	// cut-heavy footage.
	if !(byGamma[0.6] < byGamma[0.2]) {
		t.Errorf("γ=0.6 (%.4f) not below γ=0.2 (%.4f)", byGamma[0.6], byGamma[0.2])
	}
	if !(byGamma[0.6] < byGamma[1.0]) {
		t.Errorf("γ=0.6 (%.4f) not below γ=1.0 (%.4f)", byGamma[0.6], byGamma[1.0])
	}
}

func TestAblationPredictorsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	points := AblationPredictors(testSeeds, 400)
	byName := map[string]float64{}
	for _, p := range points {
		byName[p.Name] = p.Mispredict
	}
	// EWMA must beat the raw adaptive filter on dynamic video workloads —
	// the Section II-A claim.
	if !(byName["ewma"] < byName["nlms"]) {
		t.Errorf("ewma %.4f not below nlms %.4f", byName["ewma"], byName["nlms"])
	}
	for name, v := range byName {
		if math.IsNaN(v) || v <= 0 || v > 0.5 {
			t.Errorf("%s: implausible misprediction %v", name, v)
		}
	}
}

func TestAblationNShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	points := AblationN(testSeeds[:1], 900)
	if len(points) < 3 {
		t.Fatal("too few sweep points")
	}
	// Finer discretisation tracks the deadline more tightly (norm perf
	// rises toward and past 1.0 with N).
	if !(points[0].NormPerf < points[len(points)-1].NormPerf) {
		t.Errorf("norm perf not increasing with N: %v vs %v",
			points[0].NormPerf, points[len(points)-1].NormPerf)
	}
}

func TestAblationSharedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	points := AblationShared(testSeeds[:1], 1800)
	if len(points) != 2 {
		t.Fatal("want shared and per-core points")
	}
	shared, percore := points[0], points[1]
	if shared.Mode != "shared" || percore.Mode != "per-core" {
		t.Fatalf("unexpected modes %q/%q", shared.Mode, percore.Mode)
	}
	// At an equal one-update-per-epoch budget, the per-core organisation
	// delivers visibly worse deadline behaviour.
	if !(shared.MissRate < percore.MissRate) {
		t.Errorf("shared miss %.3f not below per-core %.3f", shared.MissRate, percore.MissRate)
	}
}

func TestAblationUpdateRuleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	points := AblationUpdateRule(testSeeds, 1000)
	if len(points) != 2 {
		t.Fatal("want q-learning and sarsa points")
	}
	for _, p := range points {
		if p.NormEnergy < 1 || p.NormEnergy > 2 {
			t.Errorf("%s: implausible energy %v", p.Rule, p.NormEnergy)
		}
		if p.MissRate < 0 || p.MissRate > 0.5 {
			t.Errorf("%s: implausible miss rate %v", p.Rule, p.MissRate)
		}
	}
	// The two rules must land in the same neighbourhood: the ablation's
	// finding is that the choice barely matters on this problem.
	if d := math.Abs(points[0].NormEnergy - points[1].NormEnergy); d > 0.15 {
		t.Errorf("rules diverge by %v normalised energy; expected near-equivalence", d)
	}
}

func TestAblationMemBoundLeverageFalls(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	points := AblationMemBound(testSeeds, 1200)
	if len(points) < 3 {
		t.Fatal("too few sweep points")
	}
	first, last := points[0], points[len(points)-1]
	if first.MemFrac != 0 {
		t.Fatalf("sweep must start at m=0, got %v", first.MemFrac)
	}
	// DVFS leverage must shrink visibly with memory-boundness.
	if !(last.SavingVsOndemand < first.SavingVsOndemand-0.03) {
		t.Errorf("saving did not fall with memory-boundness: %.3f -> %.3f",
			first.SavingVsOndemand, last.SavingVsOndemand)
	}
	// But the RTM must still save energy even memory-bound.
	if last.SavingVsOndemand < 0 {
		t.Errorf("RTM loses to ondemand at m=%v: %.3f", last.MemFrac, last.SavingVsOndemand)
	}
}

func TestMultiAppShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation experiment")
	}
	res := MultiApp(testSeeds[:1], 700)
	rtm := res.Row("multi-rtm")
	ond := res.Row("ondemand")
	oracle := res.Row("oracle")
	if rtm == nil || ond == nil || oracle == nil {
		t.Fatal("missing rows")
	}
	if math.Abs(oracle.NormEnergy-1) > 1e-9 {
		t.Errorf("oracle norm energy %v", oracle.NormEnergy)
	}
	// The deadline-aware controller must beat ondemand on energy while
	// both applications keep running.
	if !(rtm.NormEnergy < ond.NormEnergy) {
		t.Errorf("multi-rtm energy %.2f not below ondemand %.2f", rtm.NormEnergy, ond.NormEnergy)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Extension E1") {
		t.Error("render missing title")
	}
}

func makeRecords(n int, missed func(int) bool) []sim.FrameRecord {
	out := make([]sim.FrameRecord, n)
	for i := range out {
		out[i] = sim.FrameRecord{Epoch: i, Missed: missed(i)}
	}
	return out
}

func TestTimeToQoS(t *testing.T) {
	recs := makeRecords(300, func(i int) bool { return i < 120 && i%2 == 0 }) // 50% misses early
	q := timeToQoS(recs, 100, 0.08)
	if q < 120 || q > 230 {
		t.Fatalf("timeToQoS = %d, want shortly after the misses stop", q)
	}
	// All clean: QoS from the first full window.
	clean := makeRecords(150, func(int) bool { return false })
	if q := timeToQoS(clean, 100, 0.08); q != 100 {
		t.Fatalf("clean run timeToQoS = %d, want 100", q)
	}
	// Too short to judge.
	if q := timeToQoS(makeRecords(10, func(int) bool { return false }), 100, 0.08); q != -1 {
		t.Fatalf("short run timeToQoS = %d, want -1", q)
	}
	// Never clean.
	dirty := makeRecords(200, func(i int) bool { return i%3 == 0 })
	if q := timeToQoS(dirty, 100, 0.08); q != -1 {
		t.Fatalf("dirty run timeToQoS = %d, want -1", q)
	}
}
