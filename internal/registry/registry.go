// Package registry is the content-addressed checkpoint registry: frozen
// governor learning state published as immutable blobs under a manifest
// index keyed by scenario fingerprint (governor, workload, platform,
// state-space shape) and training metadata (frames trained, converged-
// state fraction). It is the storage half of the paper's transfer claim
// (via its ref [12], Shafik et al., TCAD'16): a Q-table trained on one
// workload warm-starts another, so a fleet that keeps its trained
// policies in a shared registry amortises exploration across every
// session it will ever serve.
//
// Everything lives behind the BlobStore seam. A Registry over one shared
// store gives a replica fleet three things at once:
//
//   - published manifests: train anywhere, Publish once, and any session
//     create carrying warm_start resolves the nearest manifest
//     (Nearest: exact fingerprint first, then same-platform/different-
//     workload — the cross-workload transfer fallback);
//   - content addressing: the blob key is the state's SHA-256 and the
//     manifest id is derived from fingerprint + content, so publishing
//     the same state twice is idempotent and a fetched blob can always
//     be verified against its manifest;
//   - session checkpoints: Checkpoints adapts the same store to
//     sessionstore.CheckpointStore, so router replicas share session
//     state through the registry instead of a common directory and
//     RemoveReplica hand-off works across machines.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"
)

// Fingerprint names the scenario a checkpoint was trained under — the
// match key of warm-start resolution. Governor, Workload and Platform
// are registry names (the scenario registry's segments); Shape is the
// state-space shape of the frozen tables (see ShapeOf), carried so an
// operator can see at a glance why a manifest does or does not fit a
// platform.
type Fingerprint struct {
	Governor string `json:"governor"`
	Workload string `json:"workload"`
	Platform string `json:"platform"`
	Shape    string `json:"shape,omitempty"`
}

// Key renders the fingerprint in scenario-name form.
func (f Fingerprint) Key() string {
	return f.Governor + "/" + f.Workload + "/" + f.Platform
}

// Training is the metadata a manifest carries about how much learning
// the checkpoint embodies — what Nearest ranks candidates by.
type Training struct {
	// Frames is the number of decision epochs the state was trained for.
	Frames int64 `json:"frames"`
	// ConvergedFraction is the fraction of states whose greedy action had
	// settled when the state was frozen (governor.ExplorationStats).
	ConvergedFraction float64 `json:"converged_fraction"`
}

// Manifest indexes one published checkpoint.
type Manifest struct {
	// ID is the manifest's content address: a hash of fingerprint and
	// blob checksum, so identical publishes collapse to one manifest.
	ID          string      `json:"id"`
	Fingerprint Fingerprint `json:"fingerprint"`
	Training    Training    `json:"training"`
	// BlobSHA256 is the hex SHA-256 of the checkpoint state, which is
	// also its blob key under blob/.
	BlobSHA256 string `json:"blob_sha256"`
	// Bytes is the checkpoint's size.
	Bytes int `json:"bytes"`
}

// Key prefixes: manifests, content-addressed state blobs, and session
// checkpoints share one BlobStore without colliding.
const (
	manifestPrefix = "manifest/"
	blobPrefix     = "blob/"
	sessionPrefix  = "session/"
)

// Registry is the manifest index over a BlobStore.
type Registry struct {
	b BlobStore

	// State-blob memo for StateOf. A warm-start storm resolves the same
	// handful of manifests over and over; without the memo every create
	// pays a blob read plus a SHA-256 pass over ~45 KB of state. The
	// cache is sound because blobs are content-addressed (the key IS the
	// checksum, so a hit can never be stale) and verified on first read.
	// Entries evict in insertion order once the cache holds stateMemoCap
	// blobs — the working set is "manifests the fleet warm-starts from",
	// which is small.
	memoMu   sync.Mutex
	memo     map[string][]byte
	memoFIFO []string
}

// stateMemoCap bounds the StateOf memo; at the ~45 KB checkpoints the
// paper's platforms produce this is ~1.4 MB, paid once per process.
const stateMemoCap = 32

// New builds a registry over the given store.
func New(b BlobStore) *Registry { return &Registry{b: b, memo: make(map[string][]byte)} }

// Blobs returns the underlying store (the seam the session-checkpoint
// adapter and the CLI wiring share).
func (r *Registry) Blobs() BlobStore { return r.b }

// manifestID derives the content address of a manifest: the first 16
// hex digits of SHA-256 over the fingerprint and the blob checksum.
// Training metadata is deliberately excluded so re-publishing
// byte-identical state under the same fingerprint updates its manifest
// in place. A retrain that changes the state bytes publishes a NEW
// manifest beside the old one — the registry is append-only, and
// Nearest ranks by converged fraction before frames, so a
// better-converged old manifest keeps winning until it is pruned
// (manifest pruning is an open ROADMAP item).
func manifestID(fp Fingerprint, blobSHA string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%s", fp.Governor, fp.Workload, fp.Platform, fp.Shape, blobSHA)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Publish stores the checkpoint state under its content address and
// indexes it with a manifest. Publishing identical state under an
// identical fingerprint is idempotent and returns the same manifest id.
func (r *Registry) Publish(fp Fingerprint, tr Training, state []byte) (Manifest, error) {
	if fp.Governor == "" || fp.Workload == "" || fp.Platform == "" {
		return Manifest{}, fmt.Errorf("registry: fingerprint %+v is incomplete (governor, workload and platform are required)", fp)
	}
	if len(state) == 0 {
		return Manifest{}, fmt.Errorf("registry: refusing to publish empty state for %s", fp.Key())
	}
	sum := sha256.Sum256(state)
	sha := hex.EncodeToString(sum[:])
	m := Manifest{
		ID:          manifestID(fp, sha),
		Fingerprint: fp,
		Training:    tr,
		BlobSHA256:  sha,
		Bytes:       len(state),
	}
	if err := r.b.Put(blobPrefix+sha, state); err != nil {
		return Manifest{}, fmt.Errorf("registry: publishing %s blob: %w", fp.Key(), err)
	}
	doc, err := json.Marshal(m)
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: encoding manifest: %w", err)
	}
	// The blob lands before the manifest, so a reader that sees the
	// manifest always finds the state it points at.
	if err := r.b.Put(manifestPrefix+m.ID, doc); err != nil {
		return Manifest{}, fmt.Errorf("registry: publishing %s manifest: %w", fp.Key(), err)
	}
	return m, nil
}

// Manifest fetches one manifest by id. A missing id returns an error
// satisfying errors.Is(err, fs.ErrNotExist).
func (r *Registry) Manifest(id string) (Manifest, error) {
	doc, err := r.b.Get(manifestPrefix + id)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(doc, &m); err != nil {
		return Manifest{}, fmt.Errorf("registry: manifest %s is corrupt: %w", id, err)
	}
	return m, nil
}

// State fetches the checkpoint state a manifest id points at.
func (r *Registry) State(id string) ([]byte, error) {
	m, err := r.Manifest(id)
	if err != nil {
		return nil, err
	}
	return r.StateOf(m)
}

// StateOf fetches the checkpoint state of an already-resolved manifest
// (one blob read — callers coming from Nearest or Manifest skip the
// redundant index round trip) and verifies it against the manifest's
// checksum — a content-addressed read can never hand back silently
// corrupted learning state. Repeated fetches of the same blob answer
// from an in-process memo without touching the store; the returned
// bytes are shared and MUST be treated as read-only (every caller
// decodes them, none writes).
func (r *Registry) StateOf(m Manifest) ([]byte, error) {
	r.memoMu.Lock()
	if state, ok := r.memo[m.BlobSHA256]; ok {
		r.memoMu.Unlock()
		return state, nil
	}
	r.memoMu.Unlock()

	state, err := r.b.Get(blobPrefix + m.BlobSHA256)
	if err != nil {
		return nil, fmt.Errorf("registry: manifest %s: %w", m.ID, err)
	}
	sum := sha256.Sum256(state)
	if hex.EncodeToString(sum[:]) != m.BlobSHA256 {
		return nil, fmt.Errorf("registry: blob for manifest %s fails its checksum", m.ID)
	}

	r.memoMu.Lock()
	if _, ok := r.memo[m.BlobSHA256]; !ok {
		for len(r.memoFIFO) >= stateMemoCap {
			delete(r.memo, r.memoFIFO[0])
			r.memoFIFO = r.memoFIFO[1:]
		}
		r.memo[m.BlobSHA256] = state
		r.memoFIFO = append(r.memoFIFO, m.BlobSHA256)
	}
	r.memoMu.Unlock()
	return state, nil
}

// Manifests lists every manifest, sorted by id. A manifest that
// vanishes between List and Get raced a delete and is skipped, as is a
// corrupt document (Put is atomic, so that is data corruption, and one
// bad manifest must not brick resolution for the whole fleet); any
// other storage error propagates — a transient outage must not read as
// "empty registry" and silently cold-start every warm_start create.
func (r *Registry) Manifests() ([]Manifest, error) {
	keys, err := r.b.List(manifestPrefix)
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(keys))
	for _, k := range keys {
		doc, err := r.b.Get(k)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // raced with a delete
			}
			return nil, fmt.Errorf("registry: reading %s: %w", k, err)
		}
		var m Manifest
		if json.Unmarshal(doc, &m) != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Nearest resolves the best manifest for the wanted fingerprint in two
// tiers: exact (governor, workload, platform all equal) first, then
// same-platform/different-workload (the cross-workload transfer
// fallback — tables trained on the same governor and operating-point
// ladder carry over; ref [12]'s claim). Shape is metadata, not a match
// key: platform + governor fix the table dimensions. Within a tier
// candidates rank by converged fraction, then frames trained, then id,
// so resolution is deterministic across the fleet. A want with an empty
// Workload skips the exact tier.
//
// Nearest reads the full manifest index — one Get per manifest. That is
// the right trade at the scale manifests exist at (policies are
// published per workload × platform, not per session); if a deployment
// ever accumulates manifests at session scale, a governor/platform
// prefix layout for manifest keys is the upgrade path.
func (r *Registry) Nearest(want Fingerprint) (Manifest, bool, error) {
	all, err := r.Manifests()
	if err != nil {
		return Manifest{}, false, err
	}
	better := func(a, b Manifest) bool {
		if a.Training.ConvergedFraction != b.Training.ConvergedFraction {
			return a.Training.ConvergedFraction > b.Training.ConvergedFraction
		}
		if a.Training.Frames != b.Training.Frames {
			return a.Training.Frames > b.Training.Frames
		}
		return a.ID < b.ID
	}
	var exact, fallback *Manifest
	for i := range all {
		m := all[i]
		if m.Fingerprint.Governor != want.Governor || m.Fingerprint.Platform != want.Platform {
			continue
		}
		if want.Workload != "" && m.Fingerprint.Workload == want.Workload {
			if exact == nil || better(m, *exact) {
				exact = &all[i]
			}
			continue
		}
		if fallback == nil || better(m, *fallback) {
			fallback = &all[i]
		}
	}
	switch {
	case exact != nil:
		return *exact, true, nil
	case fallback != nil:
		return *fallback, true, nil
	default:
		return Manifest{}, false, nil
	}
}

// ShapeOf summarises the state-space shape of a checkpoint envelope —
// the dimensions a manifest records so an operator can read why a
// checkpoint fits (or cannot fit) a platform. It understands the two
// envelope families in the program (the RTM family's tables and the
// ML-DTM's per-core lattice) and returns "" for anything else; shape is
// descriptive metadata, so unknown is fine.
func ShapeOf(state []byte) string {
	var env struct {
		Kind   string `json:"kind"`
		Tables []struct {
			States  int `json:"states"`
			Actions int `json:"actions"`
		} `json:"tables"`
		Cores   int `json:"cores"`
		Bands   int `json:"bands"`
		Actions int `json:"actions"`
	}
	if json.Unmarshal(state, &env) != nil {
		return ""
	}
	switch {
	case len(env.Tables) > 0:
		return fmt.Sprintf("tables=%d,states=%d,actions=%d",
			len(env.Tables), env.Tables[0].States, env.Tables[0].Actions)
	case env.Cores > 0 && env.Bands > 0:
		return fmt.Sprintf("cores=%d,bands=%d,actions=%d", env.Cores, env.Bands, env.Actions)
	default:
		return ""
	}
}
