// Package workload models the applications of the paper's evaluation as
// per-frame cycle-demand traces: MPEG4 and H.264 video decoding with GOP
// structure, an FFT application grounded in the real kernel from
// internal/fft, and phase-structured models of the PARSEC and SPLASH-2
// benchmark suites.
//
// Each application is "transformed to a periodic structure" exactly as in
// Section III of the paper: it executes for a number of iterations
// (frames), each with a deadline Tref derived from a frames-per-second
// requirement, and each iteration spawns one thread per core with a cycle
// demand. The governor under test only ever observes those demands through
// the platform's PMU — never the trace itself — so a trace plus the
// platform model reproduces the paper's closed loop without the physical
// board (DESIGN.md §2).
package workload

import (
	"fmt"
	"math"
)

// Frame is one iteration's demand: cycles for each spawned thread. Thread j
// is pinned to core j, matching the paper's one-thread-per-core setup on
// the A15 cluster.
type Frame struct {
	Cycles []uint64
}

// MaxCycles returns the critical-path demand (slowest thread).
func (f Frame) MaxCycles() uint64 {
	var m uint64
	for _, c := range f.Cycles {
		if c > m {
			m = c
		}
	}
	return m
}

// TotalCycles returns the summed demand across threads.
func (f Frame) TotalCycles() uint64 {
	var t uint64
	for _, c := range f.Cycles {
		t += c
	}
	return t
}

// Trace is a periodic application: a name, a per-frame deadline, and the
// per-frame thread demands.
type Trace struct {
	Name     string
	RefTimeS float64 // the paper's Tref: per-frame performance requirement
	Frames   []Frame
}

// Len returns the number of frames.
func (t Trace) Len() int { return len(t.Frames) }

// FPS returns the frame-rate requirement implied by RefTimeS.
func (t Trace) FPS() float64 {
	if t.RefTimeS <= 0 {
		return 0
	}
	return 1 / t.RefTimeS
}

// Threads returns the widest thread count used by any frame.
func (t Trace) Threads() int {
	m := 0
	for _, f := range t.Frames {
		if len(f.Cycles) > m {
			m = len(f.Cycles)
		}
	}
	return m
}

// TotalCycles sums demand over the whole trace.
func (t Trace) TotalCycles() uint64 {
	var sum uint64
	for _, f := range t.Frames {
		sum += f.TotalCycles()
	}
	return sum
}

// MaxPerFrame returns the per-frame critical-path demand as floats, the
// series the workload predictors operate on.
func (t Trace) MaxPerFrame() []float64 {
	out := make([]float64, len(t.Frames))
	for i, f := range t.Frames {
		out[i] = float64(f.MaxCycles())
	}
	return out
}

// RequiredHz returns the minimum frequency that completes frame i within
// the deadline, ignoring overheads: MaxCycles / RefTimeS.
func (t Trace) RequiredHz(i int) float64 {
	if t.RefTimeS <= 0 {
		return 0
	}
	return float64(t.Frames[i].MaxCycles()) / t.RefTimeS
}

// Validate checks structural sanity: a positive deadline, at least one
// frame, and no frame without threads.
func (t Trace) Validate() error {
	if t.RefTimeS <= 0 {
		return fmt.Errorf("workload: trace %q has non-positive RefTimeS", t.Name)
	}
	if len(t.Frames) == 0 {
		return fmt.Errorf("workload: trace %q has no frames", t.Name)
	}
	for i, f := range t.Frames {
		if len(f.Cycles) == 0 {
			return fmt.Errorf("workload: trace %q frame %d has no threads", t.Name, i)
		}
	}
	return nil
}

// Slice returns a shallow copy of the trace restricted to frames [lo, hi).
// Bounds are clamped.
func (t Trace) Slice(lo, hi int) Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Frames) {
		hi = len(t.Frames)
	}
	if lo > hi {
		lo = hi
	}
	return Trace{Name: t.Name, RefTimeS: t.RefTimeS, Frames: t.Frames[lo:hi]}
}

// Stats summarises the critical-path demand of a trace.
type Stats struct {
	Frames     int
	Threads    int
	MeanCycles float64 // mean critical-path cycles per frame
	CVCycles   float64 // coefficient of variation (σ/µ) of the critical path
	MinCycles  float64
	MaxCycles  float64
}

// Summarize computes demand statistics. The coefficient of variation is
// the workload-variability measure behind Table II: applications with a
// lower CV (FFT) need fewer explorations than bursty ones (MPEG4, H.264).
func (t Trace) Summarize() Stats {
	xs := t.MaxPerFrame()
	var mean, m2 float64
	mn, mx := math.Inf(1), math.Inf(-1)
	for i, x := range xs {
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	cv := 0.0
	if len(xs) > 1 && mean > 0 {
		cv = math.Sqrt(m2/float64(len(xs)-1)) / mean
	}
	return Stats{
		Frames:     len(xs),
		Threads:    t.Threads(),
		MeanCycles: mean,
		CVCycles:   cv,
		MinCycles:  mn,
		MaxCycles:  mx,
	}
}
