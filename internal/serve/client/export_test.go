package client

// setNextBatchHandle forces the next DecideBatch to try this handle
// value first. The wraparound regression test uses it to land on a
// still-busy handle without issuing 2^20 real batches.
func setNextBatchHandle(c *Client, h uint32) {
	c.mu.Lock()
	c.nextBatch = h
	c.mu.Unlock()
}
