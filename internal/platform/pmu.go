package platform

// PMU models one core's performance monitoring unit. Counters are
// monotonically increasing 64-bit values, mirroring how a governor samples
// hardware counters: read, diff against the previous reading, and treat the
// delta as the epoch's activity.
//
// Only the counters the paper's RTM consumes are modelled. Cycle count is
// the load-bearing one — Section II-A argues for CC over cache misses or
// instruction rate as the workload proxy — and instructions/busy time are
// kept because the baseline governors (ondemand's utilisation estimate) need
// them.
type PMU struct {
	cycles   uint64  // core clock cycles while executing
	instrs   uint64  // retired instructions (derived, fixed IPC model)
	busyNS   uint64  // nanoseconds the core was busy
	idleNS   uint64  // nanoseconds the core was idle
	refNS    uint64  // wall-clock nanoseconds observed by the counter block
	overflow bool    // set if any counter wrapped (not expected in practice)
	ipc      float64 // instructions per cycle used to derive instrs
}

// NewPMU returns a PMU with the given fixed IPC model. IPC must be positive.
func NewPMU(ipc float64) *PMU {
	if ipc <= 0 {
		panic("platform: PMU needs positive IPC")
	}
	return &PMU{ipc: ipc}
}

// PMUSample is a point-in-time reading of all counters.
type PMUSample struct {
	Cycles uint64
	Instrs uint64
	BusyNS uint64
	IdleNS uint64
	RefNS  uint64
}

// Read returns the current counter values.
func (p *PMU) Read() PMUSample {
	return PMUSample{Cycles: p.cycles, Instrs: p.instrs, BusyNS: p.busyNS, IdleNS: p.idleNS, RefNS: p.refNS}
}

// Delta returns the counter increments since a previous sample.
func (s PMUSample) Delta(prev PMUSample) PMUSample {
	return PMUSample{
		Cycles: s.Cycles - prev.Cycles,
		Instrs: s.Instrs - prev.Instrs,
		BusyNS: s.BusyNS - prev.BusyNS,
		IdleNS: s.IdleNS - prev.IdleNS,
		RefNS:  s.RefNS - prev.RefNS,
	}
}

// Utilization returns busy time as a fraction of wall time for a delta
// sample, the quantity Linux's ondemand governor computes from idle
// residency. It returns 0 for an empty interval.
func (s PMUSample) Utilization() float64 {
	total := s.BusyNS + s.IdleNS
	if total == 0 {
		return 0
	}
	return float64(s.BusyNS) / float64(total)
}

// advanceBusy accounts for the core executing `cycles` cycles over
// `seconds` of wall time.
func (p *PMU) advanceBusy(cycles uint64, seconds float64) {
	before := p.cycles
	p.cycles += cycles
	if p.cycles < before {
		p.overflow = true
	}
	p.instrs += uint64(float64(cycles) * p.ipc)
	ns := uint64(seconds * 1e9)
	p.busyNS += ns
	p.refNS += ns
}

// advanceIdle accounts for the core sitting idle for `seconds`.
func (p *PMU) advanceIdle(seconds float64) {
	ns := uint64(seconds * 1e9)
	p.idleNS += ns
	p.refNS += ns
}

// Overflowed reports whether any counter has wrapped since creation.
func (p *PMU) Overflowed() bool { return p.overflow }

// Reset zeroes every counter. Governors normally use deltas instead, but
// the sweep runner resets PMUs between independent runs.
func (p *PMU) Reset() {
	ipc := p.ipc
	*p = PMU{ipc: ipc}
}
