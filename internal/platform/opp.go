// Package platform simulates the hardware layer of the paper's cross-layer
// stack: an ODROID-XU3-class big.LITTLE SoC with per-cluster DVFS, CMOS
// power and first-order thermal models, per-core performance monitoring
// units (PMUs) and sampled power sensors.
//
// The run-time manager under study never touches the real hardware; it only
// observes PMU cycle counts and power telemetry and actuates one lever, the
// cluster voltage-frequency operating point. This package reproduces exactly
// that interface, which is what makes the software-only reproduction of the
// paper's experiments behaviourally faithful (see DESIGN.md §2).
package platform

import (
	"fmt"
	"sort"
)

// OPP is one operating performance point of a DVFS domain: a frequency and
// the minimum stable supply voltage for it.
type OPP struct {
	FreqMHz  int     // core clock in MHz
	VoltageV float64 // supply voltage in volts
}

// FreqHz returns the clock frequency in Hz as a float64 for rate math.
func (o OPP) FreqHz() float64 { return float64(o.FreqMHz) * 1e6 }

// String implements fmt.Stringer, e.g. "1400MHz@1.125V".
func (o OPP) String() string {
	return fmt.Sprintf("%dMHz@%.4gV", o.FreqMHz, o.VoltageV)
}

// OPPTable is an immutable, ascending-frequency list of operating points.
// Index 0 is the slowest point; index len-1 the fastest. Governors address
// operating points by table index (the paper's "19 V-F settings").
type OPPTable []OPP

// Validate checks that the table is non-empty, strictly ascending in
// frequency, non-decreasing in voltage, and has positive entries.
func (t OPPTable) Validate() error {
	if len(t) == 0 {
		return fmt.Errorf("platform: empty OPP table")
	}
	for i, o := range t {
		if o.FreqMHz <= 0 || o.VoltageV <= 0 {
			return fmt.Errorf("platform: OPP %d has non-positive fields: %v", i, o)
		}
		if i > 0 {
			if o.FreqMHz <= t[i-1].FreqMHz {
				return fmt.Errorf("platform: OPP table not strictly ascending at %d: %v after %v", i, o, t[i-1])
			}
			if o.VoltageV < t[i-1].VoltageV {
				return fmt.Errorf("platform: voltage must be non-decreasing with frequency at %d", i)
			}
		}
	}
	return nil
}

// Len returns the number of operating points.
func (t OPPTable) Len() int { return len(t) }

// MinIdx returns the index of the slowest OPP (always 0).
func (t OPPTable) MinIdx() int { return 0 }

// MaxIdx returns the index of the fastest OPP.
func (t OPPTable) MaxIdx() int { return len(t) - 1 }

// Clamp limits idx to the valid index range of the table.
func (t OPPTable) Clamp(idx int) int {
	if idx < 0 {
		return 0
	}
	if idx >= len(t) {
		return len(t) - 1
	}
	return idx
}

// IndexOfMHz returns the index of the OPP with the exact frequency, or -1.
func (t OPPTable) IndexOfMHz(mhz int) int {
	for i, o := range t {
		if o.FreqMHz == mhz {
			return i
		}
	}
	return -1
}

// CeilIdx returns the index of the slowest OPP whose frequency is at least
// hz. When hz exceeds the fastest OPP it returns the fastest index; this is
// the "minimum frequency that still meets the demand" lookup used by the
// Oracle governor and by proportional scale-down policies.
func (t OPPTable) CeilIdx(hz float64) int {
	i := sort.Search(len(t), func(i int) bool { return t[i].FreqHz() >= hz })
	if i == len(t) {
		return len(t) - 1
	}
	return i
}

// Freqs returns the table's frequencies in Hz.
func (t OPPTable) Freqs() []float64 {
	out := make([]float64, len(t))
	for i, o := range t {
		out[i] = o.FreqHz()
	}
	return out
}

// NormFreq returns the frequency of OPP idx normalised to [0, 1], where 0 is
// the slowest point and 1 the fastest. The exponential exploration policy
// (Eq. 2 of the paper) is expressed over this normalised axis.
func (t OPPTable) NormFreq(idx int) float64 {
	if len(t) == 1 {
		return 1
	}
	idx = t.Clamp(idx)
	lo, hi := t[0].FreqHz(), t[len(t)-1].FreqHz()
	return (t[idx].FreqHz() - lo) / (hi - lo)
}

// NormFreqs returns the whole normalised-frequency axis as a lookup table,
// the precomputed form governors keep on their decision hot path instead
// of calling NormFreq per action per epoch.
func (t OPPTable) NormFreqs() []float64 {
	out := make([]float64, len(t))
	for i := range t {
		out[i] = t.NormFreq(i)
	}
	return out
}

// A15Table returns the 19 operating points of the ODROID-XU3 Cortex-A15
// cluster used throughout the paper: 200 MHz to 2000 MHz in 100 MHz steps.
// The voltage ladder follows the Exynos 5422 device tree (ASV group
// midpoint): flat at the bottom of the range and rising ~0.4 V towards
// 2 GHz, which is what gives DVFS its superlinear energy leverage.
func A15Table() OPPTable {
	return OPPTable{
		{200, 0.9125},
		{300, 0.9125},
		{400, 0.9125},
		{500, 0.9250},
		{600, 0.9375},
		{700, 0.9500},
		{800, 0.9750},
		{900, 1.0000},
		{1000, 1.0250},
		{1100, 1.0500},
		{1200, 1.0750},
		{1300, 1.1000},
		{1400, 1.1250},
		{1500, 1.1625},
		{1600, 1.2000},
		{1700, 1.2375},
		{1800, 1.2750},
		{1900, 1.3125},
		{2000, 1.3625},
	}
}

// A7Table returns the 13 operating points of the ODROID-XU3 Cortex-A7
// (LITTLE) cluster, 200–1400 MHz. The paper's experiments pin work to the
// A15 cluster only; the A7 table exists so the SoC model is complete and so
// multi-cluster extensions have a second domain to schedule onto.
func A7Table() OPPTable {
	return OPPTable{
		{200, 0.9000},
		{300, 0.9000},
		{400, 0.9000},
		{500, 0.9125},
		{600, 0.9250},
		{700, 0.9500},
		{800, 0.9750},
		{900, 1.0000},
		{1000, 1.0375},
		{1100, 1.0750},
		{1200, 1.1125},
		{1300, 1.1500},
		{1400, 1.1875},
	}
}
