// Manycore demonstrates the paper's many-core machinery end to end:
//
//  1. the Eq. 7 normalisation and the shared-vs-per-core Q-table modes of
//     the single-application RTM, and
//
//  2. the multi-application extension (the paper's stated future work):
//     a video decoder and an FFT pipeline running concurrently on one
//     cluster under a single V-F lever, each with its own deadline.
//
//     go run ./examples/manycore [-frames 1200]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"qgov/internal/core"
	"qgov/internal/experiments"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

func main() {
	frames := flag.Int("frames", 1200, "frames per run")
	seed := flag.Int64("seed", 5, "simulation seed")
	flag.Parse()

	// Part 1 — learning organisation on an imbalanced PARSEC pipeline.
	// ferret's pipeline stages load the four cores unevenly, which is
	// where the per-core workload state (Eq. 7 share) and the shared
	// table have something to disagree about.
	trace := workload.ParsecFerret().Generate(*frames, 4, 25, *seed)
	fmt.Printf("part 1: %s, %d frames, thread imbalance CV %.2f\n\n",
		trace.Name, trace.Len(), workload.ParsecFerret().ImbalanceCV)

	modes := []struct {
		label string
		build func() *core.RTM
	}{
		{"shared table (paper)", func() *core.RTM {
			return core.New(core.DefaultConfig())
		}},
		{"shared + Eq.7 state", func() *core.RTM {
			cfg := core.DefaultConfig()
			cfg.UseNormalizedState = true
			return core.New(cfg)
		}},
		{"per-core tables", func() *core.RTM {
			cfg := core.DefaultConfig()
			cfg.Mode = core.PerCoreTables
			return core.New(cfg)
		}},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "organisation\tenergy (J)\tnorm perf\tmisses\tconverged@")
	for _, m := range modes {
		rtm := m.build()
		if err := rtm.Calibrate(trace.MaxPerFrame()); err != nil {
			panic(err)
		}
		r := sim.Run(sim.Config{Trace: trace, Governor: rtm, Seed: *seed})
		conv := "-"
		if r.ConvergedAt >= 0 {
			conv = fmt.Sprintf("%d", r.ConvergedAt)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.1f%%\t%s\n",
			m.label, r.EnergyJ, r.NormPerf, r.MissRate*100, conv)
	}
	tw.Flush()

	// Part 2 — two concurrent applications under one V-F lever.
	fmt.Println()
	res := experiments.MultiApp([]int64{*seed}, *frames)
	if err := res.Render(os.Stdout); err != nil {
		panic(err)
	}
}
