package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsOff(t *testing.T) {
	var tr *Tracer
	if id, ok := tr.Sample(); ok || id != 0 {
		t.Fatalf("nil Sample = %v, %v", id, ok)
	}
	if tr.Slow(time.Hour) {
		t.Fatal("nil Slow = true")
	}
	if tr.Enabled() {
		t.Fatal("nil Enabled = true")
	}
	tr.Record(Span{Trace: 1, Stage: "decide"}) // must not panic
	if got := tr.Snapshot(Filter{}); got != nil {
		t.Fatalf("nil Snapshot = %v", got)
	}
	if tr.Len() != 0 {
		t.Fatalf("nil Len = %d", tr.Len())
	}
	if tr.ID() != 0 {
		t.Fatalf("nil ID = %v", tr.ID())
	}
}

func TestSampleProbabilityEdges(t *testing.T) {
	always := New(Options{SampleProb: 1})
	for i := 0; i < 1000; i++ {
		id, ok := always.Sample()
		if !ok || id == 0 {
			t.Fatalf("prob 1.0 sample %d: id=%v ok=%v", i, id, ok)
		}
	}
	never := New(Options{SampleProb: 0})
	for i := 0; i < 1000; i++ {
		if _, ok := never.Sample(); ok {
			t.Fatalf("prob 0 sampled at %d", i)
		}
	}
}

func TestSampleProbabilityRate(t *testing.T) {
	tr := New(Options{SampleProb: 0.25})
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if _, ok := tr.Sample(); ok {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("prob 0.25 sampled at rate %.4f", rate)
	}
}

func TestSampleIDsDistinct(t *testing.T) {
	tr := New(Options{SampleProb: 1})
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id, _ := tr.Sample()
		if seen[id] {
			t.Fatalf("duplicate trace id %v after %d samples", id, i)
		}
		seen[id] = true
	}
}

func TestSlowThreshold(t *testing.T) {
	tr := New(Options{Slow: 5 * time.Millisecond})
	if tr.Slow(4 * time.Millisecond) {
		t.Fatal("4ms flagged slow at 5ms threshold")
	}
	if !tr.Slow(5 * time.Millisecond) {
		t.Fatal("5ms not flagged at 5ms threshold")
	}
	off := New(Options{})
	if off.Slow(time.Hour) {
		t.Fatal("zero threshold captured a tail")
	}
	if off.Enabled() {
		t.Fatal("no sampling, no threshold, yet Enabled")
	}
	if !tr.Enabled() {
		t.Fatal("tail capture configured but not Enabled")
	}
}

func TestRecordZeroTraceDropped(t *testing.T) {
	tr := New(Options{SampleProb: 1})
	tr.Record(Span{Trace: 0, Stage: "decide"})
	if tr.Len() != 0 {
		t.Fatalf("zero-trace span recorded: Len=%d", tr.Len())
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New(Options{SampleProb: 1, Capacity: 16})
	for i := 1; i <= 100; i++ {
		tr.Record(Span{Trace: TraceID(i), Stage: "decide", Start: int64(i)})
	}
	if tr.Len() != 16 {
		t.Fatalf("Len = %d, want 16", tr.Len())
	}
	got := tr.Snapshot(Filter{})
	if len(got) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(got))
	}
	// Only the newest 16 survive, newest first.
	for i, sp := range got {
		want := TraceID(100 - i)
		if sp.Trace != want {
			t.Fatalf("span %d trace = %v, want %v", i, sp.Trace, want)
		}
	}
}

func TestSnapshotFilters(t *testing.T) {
	tr := New(Options{SampleProb: 1, Capacity: 64})
	tr.Record(Span{Trace: 1, Stage: "decide", Session: "a", DurUS: 10, Start: 1})
	tr.Record(Span{Trace: 2, Stage: "decide", Session: "b", DurUS: 100, Start: 2})
	tr.Record(Span{Trace: 2, Stage: "route", DurUS: 150, Start: 3})
	tr.Record(Span{Trace: 3, Stage: "decide", Session: "a", DurUS: 1000, Start: 4})

	if got := tr.Snapshot(Filter{Session: "a"}); len(got) != 2 {
		t.Fatalf("session filter: %d spans, want 2", len(got))
	}
	if got := tr.Snapshot(Filter{Trace: 2}); len(got) != 2 {
		t.Fatalf("trace filter: %d spans, want 2", len(got))
	}
	if got := tr.Snapshot(Filter{MinDurUS: 120}); len(got) != 2 {
		t.Fatalf("min-dur filter: %d spans, want 2", len(got))
	}
	got := tr.Snapshot(Filter{Limit: 2})
	if len(got) != 2 || got[0].Trace != 3 || got[1].Trace != 2 {
		t.Fatalf("limit filter newest-first: %+v", got)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(Options{SampleProb: 1, Capacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id, ok := tr.Sample()
				if !ok {
					t.Error("prob 1.0 did not sample")
					return
				}
				tr.Record(Span{Trace: id, Stage: "decide", DurUS: float64(i)})
				tr.Snapshot(Filter{Limit: 4})
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Fatalf("Len = %d, want full ring 128", tr.Len())
	}
	for _, sp := range tr.Snapshot(Filter{}) {
		if sp.Trace == 0 || sp.Stage != "decide" {
			t.Fatalf("torn span: %+v", sp)
		}
	}
}

func TestTraceIDJSON(t *testing.T) {
	id := TraceID(0xdeadbeef12345678)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef12345678"` {
		t.Fatalf("marshal = %s", b)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip = %v, want %v", back, id)
	}
	// Short forms parse (leading zeros omitted).
	short, err := ParseID("1f")
	if err != nil || short != 0x1f {
		t.Fatalf("ParseID(1f) = %v, %v", short, err)
	}
	if _, err := ParseID(""); err == nil {
		t.Fatal("empty id parsed")
	}
	if _, err := ParseID("xyz"); err == nil {
		t.Fatal("non-hex id parsed")
	}
	if _, err := ParseID("00000000000000001"); err == nil {
		t.Fatal("17-digit id parsed")
	}
}

func TestIDNeverZero(t *testing.T) {
	tr := New(Options{SampleProb: 1})
	for i := 0; i < 10000; i++ {
		if tr.ID() == 0 {
			t.Fatal("ID minted zero")
		}
	}
}
