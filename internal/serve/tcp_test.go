package serve_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
)

// newTCPServer attaches a binary listener to an HTTP test server's
// Server: HTTP remains the control plane (session creation), TCP carries
// decisions. Cleanup closes the TCP half before the Server itself.
func newTCPServer(t *testing.T, h *testServer) *serve.TCPServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := serve.NewTCP(h.srv, lis)
	go func() {
		if err := ts.Serve(); err != nil {
			t.Errorf("tcp serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = ts.Close() })
	return ts
}

func steadyObs() governor.Observation {
	return governor.Observation{
		Epoch:     1,
		Cycles:    []uint64{30e6, 31e6, 29e6, 30e6},
		Util:      []float64{0.6, 0.5, 0.7, 0.6},
		ExecTimeS: 0.025,
		PeriodS:   0.040,
		WallTimeS: 0.040,
		PowerW:    2,
		TempC:     50,
		OPPIdx:    10,
	}
}

func TestTCPDecideBasics(t *testing.T) {
	h := newTestServer(t, serve.Options{})
	ts := newTCPServer(t, h)
	if st := h.post("/v1/sessions", map[string]any{"id": "a", "governor": "ondemand"}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}

	cl, err := client.Dial(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	d, err := cl.Decide("a", steadyObs())
	if err != nil {
		t.Fatal(err)
	}
	if d.Err != "" || d.OPPIdx < 0 || d.FreqMHz <= 0 {
		t.Errorf("decide over TCP: %+v", d)
	}

	// Unknown sessions fail the entry, not the connection — exactly like
	// the JSON batch.
	d, err = cl.Decide("ghost", steadyObs())
	if err != nil {
		t.Fatal(err)
	}
	if d.Err == "" || d.OPPIdx != -1 {
		t.Errorf("unknown session over TCP: %+v", d)
	}

	// The connection survived the failed entry.
	if d, err = cl.Decide("a", steadyObs()); err != nil || d.Err != "" {
		t.Errorf("decide after failed entry: %+v err %v", d, err)
	}
}

// A poisoned stream (bad magic) must drop that connection — framing is
// unrecoverable — without disturbing other connections.
func TestTCPProtocolErrorDropsConnection(t *testing.T) {
	h := newTestServer(t, serve.Options{})
	ts := newTCPServer(t, h)
	if st := h.post("/v1/sessions", map[string]any{"id": "a", "governor": "ondemand"}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}

	good, err := client.Dial(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	bad, err := net.Dial("tcp", ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := bad.Read(make([]byte, 1)); err == nil {
		t.Errorf("server answered %d bytes on a poisoned stream", n)
	}

	if d, err := good.Decide("a", steadyObs()); err != nil || d.Err != "" {
		t.Errorf("healthy connection disturbed: %+v err %v", d, err)
	}
}

// Graceful shutdown over TCP mirrors the HTTP drain: requests already
// written when Shutdown begins are read, decided, and answered; the
// connection closes only after the drain; and the final checkpoint
// (Server.Close) then freezes the learning those drained decisions did.
func TestTCPGracefulShutdownDrainsInFlight(t *testing.T) {
	const nSessions = 40
	dir := t.TempDir()
	srv := serve.New(serve.Options{CheckpointDir: dir, CheckpointEvery: time.Hour})
	h := newHTTPOnly(t, srv)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := serve.NewTCP(srv, lis)
	serveDone := make(chan error, 1)
	go func() { serveDone <- ts.Serve() }()

	ids := make([]string, nSessions)
	obs := make([]governor.Observation, nSessions)
	out := make([]client.Decision, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("drain-%d", i)
		obs[i] = steadyObs()
		if st := h.post("/v1/sessions", map[string]any{"id": ids[i], "governor": "rtm", "seed": i + 1}, nil); st != http.StatusCreated {
			t.Fatalf("create %s returned %d", ids[i], st)
		}
	}

	cl, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// One round trip first: Dial returns before the accept loop has
	// adopted the connection, and a connection the server never adopted
	// would be cut — not drained — by Shutdown.
	if d, err := cl.Decide(ids[0], obs[0]); err != nil || d.Err != "" {
		t.Fatalf("warm-up decide: %+v err %v", d, err)
	}

	// Put a full batch in flight, then shut down while it is on the wire.
	batchErr := make(chan error, 1)
	go func() { batchErr <- cl.DecideBatch(ids, obs, out) }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutErr := make(chan error, 1)
	go func() { shutErr <- ts.Shutdown(ctx) }()

	// Every in-flight request is answered during the drain.
	if err := <-batchErr; err != nil {
		t.Fatalf("in-flight batch failed during drain: %v", err)
	}
	for i, d := range out {
		if d.Err != "" || d.OPPIdx < 0 {
			t.Fatalf("drained decision %d: %+v", i, d)
		}
	}

	// Release the connection; the drain then completes well before the
	// deadline and the listener is gone.
	if err := cl.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := <-shutErr; err != nil {
		t.Errorf("graceful shutdown returned %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v", err)
	}
	if _, err := net.DialTimeout("tcp", lis.Addr().String(), 500*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}

	// Only now does the server freeze state — the drained decisions are in.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := os.Stat(dir + "/" + id + ".state"); err != nil {
			t.Errorf("final checkpoint for %s missing: %v", id, err)
		}
	}
}

// newHTTPOnly wraps an existing Server with an HTTP control plane whose
// lifetime the test manages (no automatic srv.Close, unlike
// newTestServer — shutdown-ordering tests close the server themselves).
func newHTTPOnly(t *testing.T, srv *serve.Server) *testServer {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testServer{t: t, srv: srv, ts: ts}
}
