package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over a closed interval. Samples
// outside the interval are counted in dedicated underflow/overflow buckets
// so that no observation is silently dropped — the workload
// pre-characterisation pass ("design space exploration" in the paper) uses
// the histogram to pick the N discretisation levels and must see outliers.
type Histogram struct {
	lo, hi    float64
	width     float64
	counts    []int
	underflow int
	overflow  int
	total     int
	sum       float64
}

// NewHistogram creates a histogram over [lo, hi] with the given number of
// bins. It panics if bins < 1 or lo >= hi: both indicate caller bugs, not
// runtime conditions.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: NewHistogram needs at least one bin")
	}
	if !(lo < hi) {
		panic("stats: NewHistogram needs lo < hi")
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]int, bins),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	if !math.IsNaN(x) {
		// Out-of-range samples still contribute — Sum is the total of
		// everything observed, as a Prometheus histogram's _sum is.
		h.sum += x
	}
	switch {
	case math.IsNaN(x):
		// NaNs land in overflow: they must not vanish, and they have no
		// ordering that would justify underflow instead.
		h.overflow++
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		// The top edge itself belongs to the last bin.
		if x == h.hi {
			h.counts[len(h.counts)-1]++
		} else {
			h.overflow++
		}
	default:
		i := int((x - h.lo) / h.width)
		if i == len(h.counts) { // guard against FP edge rounding
			i--
		}
		h.counts[i]++
	}
}

// Lo returns the lower edge of the histogram range.
func (h *Histogram) Lo() float64 { return h.lo }

// Hi returns the upper (inclusive) edge of the histogram range.
func (h *Histogram) Hi() float64 { return h.hi }

// BinWidth returns the fixed width of each bin.
func (h *Histogram) BinWidth() float64 { return h.width }

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Count returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Count() int { return h.total }

// Sum returns the total of every sample recorded (NaNs excluded,
// out-of-range samples included).
func (h *Histogram) Sum() float64 { return h.sum }

// Underflow returns the number of samples below the histogram range.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow returns the number of samples at or above the histogram range
// (excluding the inclusive top edge) plus any NaNs.
func (h *Histogram) Overflow() int { return h.overflow }

// BinOf returns the bin index x would fall into, or -1 when out of range.
func (h *Histogram) BinOf(x float64) int {
	if math.IsNaN(x) || x < h.lo || x > h.hi {
		return -1
	}
	if x == h.hi {
		return len(h.counts) - 1
	}
	i := int((x - h.lo) / h.width)
	if i == len(h.counts) {
		i--
	}
	return i
}

// Mode returns the centre of the most populated bin. Ties resolve to the
// lowest bin. It returns NaN when no in-range samples were added.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, 0
	for i, c := range h.counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return math.NaN()
	}
	return h.lo + (float64(best)+0.5)*h.width
}

// String renders a compact ASCII summary, one line per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.counts {
		lo := h.lo + float64(i)*h.width
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d\n", lo, lo+h.width, c)
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.overflow)
	}
	return b.String()
}
