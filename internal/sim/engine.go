// Package sim closes the loop of Fig. 2(a): it drives a governor against a
// workload trace executing on the simulated platform, one decision epoch
// per frame, and records the timing, energy and learning telemetry the
// experiments report.
//
// The engine enforces the information boundary the paper's cross-layer
// stack has on real hardware: the governor sees only PMU counter deltas,
// sensed power, temperature and the timing of the epoch that just ended —
// never the trace itself. Only the Oracle baseline (constructed with the
// trace, by definition offline) breaks that boundary.
package sim

import (
	"math"

	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	Trace    workload.Trace
	Governor governor.Governor
	// Cluster to execute on; nil builds the paper's platform
	// (DefaultA15Cluster) seeded from Seed.
	Cluster *platform.Cluster
	// Seed feeds the governor's stochastic policy and, when Cluster is
	// nil, the platform's sensor noise.
	Seed int64
	// Record retains per-frame records (the Fig. 3 series); aggregates are
	// always computed.
	Record bool
}

// FrameRecord is one epoch of a recorded run.
type FrameRecord struct {
	Epoch        int
	OPPIdx       int
	FreqMHz      int
	ExecTimeS    float64 // completion incl. overheads (T_i + T_OVH)
	SlackRatio   float64 // (Tref − exec)/Tref; negative on a miss
	EnergyJ      float64
	AvgPowerW    float64
	SensorPowerW float64
	TempC        float64
	Missed       bool
	ActualCC     float64 // critical-path demand of the frame
	PredictedCC  float64 // governor's forecast for the frame (NaN if opaque)
	AvgSlackL    float64 // governor's averaged slack L (NaN if opaque)
	Epsilon      float64 // exploration probability (NaN if opaque)
}

// Result aggregates one run.
type Result struct {
	Workload string
	Governor string
	Frames   int

	EnergyJ       float64 // exact model energy over the whole run
	SensorEnergyJ float64 // energy as the on-board sensors would report it
	MeanPowerW    float64
	SimTimeS      float64 // simulated wall time

	NormPerf     float64 // mean of (T_i + T_OVH)/Tref; >1 under-performs
	MissRate     float64 // fraction of frames past the deadline
	Misses       int
	Transitions  int // DVFS transitions
	Explorations int // -1 if the governor is not a learner
	// ExplorationsToConv counts the explorations spent before the policy
	// stabilised (Table II's quantity); equal to Explorations when the
	// governor exposes no per-epoch curve or never converged.
	ExplorationsToConv int
	ConvergedAt        int // -1 if never converged / not a learner
	FinalTempC         float64

	Records []FrameRecord // nil unless Config.Record
}

// tracer is the optional introspection surface the proposed RTM exposes;
// the engine records it when present.
type tracer interface {
	PredictedCC() []float64
	SlackL() float64
	Epsilon() float64
}

// Run executes the trace to completion and returns the aggregated result.
// It is the closed offline loop over the step-driven Session: validation
// and panics on configuration errors (nil governor, trace wider than the
// cluster) happen in NewSession — those are harness bugs, not run-time
// conditions.
func Run(cfg Config) *Result {
	s := NewSession(cfg)
	for !s.Done() {
		s.Step(s.Decide())
	}
	return s.Result()
}

func nan() float64 { return math.NaN() }

func maxFloat64s(xs []float64) float64 {
	if len(xs) == 0 {
		return nan()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
