package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlackTrackerWindowed(t *testing.T) {
	tr := NewSlackTracker(2)
	// Frame takes 30ms against 40ms: ratio 0.25.
	if got := tr.Observe(0.030, 0.040); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("L = %v, want 0.25", got)
	}
	// Second: 40ms exactly, ratio 0 -> window mean 0.125.
	if got := tr.Observe(0.040, 0.040); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("L = %v, want 0.125", got)
	}
	// Third: 50ms (miss, ratio -0.25) -> window of last two = (0-0.25)/2.
	if got := tr.Observe(0.050, 0.040); math.Abs(got-(-0.125)) > 1e-12 {
		t.Fatalf("L = %v, want -0.125", got)
	}
	if got := tr.DeltaL(); math.Abs(got-(-0.25)) > 1e-12 {
		t.Fatalf("ΔL = %v, want -0.25", got)
	}
}

func TestSlackTrackerCumulative(t *testing.T) {
	tr := NewSlackTracker(0)
	tr.Observe(0.030, 0.040) // 0.25
	tr.Observe(0.040, 0.040) // 0
	tr.Observe(0.020, 0.040) // 0.5
	if got := tr.L(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("cumulative L = %v, want 0.25", got)
	}
}

func TestSlackTrackerReset(t *testing.T) {
	tr := NewSlackTracker(4)
	tr.Observe(0.030, 0.040)
	tr.Reset()
	if tr.L() != 0 || tr.DeltaL() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestSlackTrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative window must panic")
		}
	}()
	NewSlackTracker(-1)
}

func TestSlackTrackerZeroRefPanics(t *testing.T) {
	tr := NewSlackTracker(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero Tref must panic")
		}
	}()
	tr.Observe(0.01, 0)
}

func TestRewardPeaksAtTarget(t *testing.T) {
	r := NewReward()
	atTarget := r.Score(r.Target, 0, r.Target)
	missed := r.Score(-0.1, 0, -0.1)
	wasteful := r.Score(0.4, 0, 0.4)
	if !(atTarget > missed) {
		t.Fatalf("target %v not above miss %v", atTarget, missed)
	}
	if !(atTarget > wasteful) {
		t.Fatalf("target %v not above wasteful slack %v", atTarget, wasteful)
	}
}

func TestRewardMissAsymmetry(t *testing.T) {
	// A frame overrunning its deadline by x must hurt more than one
	// finishing x early: dropped frames degrade user experience; idle
	// slack only burns energy.
	r := NewReward()
	miss := r.Score(r.Target-0.2, 0, r.Target-0.2)
	over := r.Score(r.Target+0.2, 0, r.Target+0.2)
	if !(miss < over) {
		t.Fatalf("miss %v not punished harder than over-slack %v", miss, over)
	}
}

func TestRewardInstantaneousMissTerm(t *testing.T) {
	// The window-gaming scenario that motivated the term: average slack
	// lands exactly on target, but the epoch itself blew its deadline.
	// That epoch must score clearly worse than one that also lands the
	// average on target while meeting its own deadline.
	r := NewReward()
	gamed := r.Score(r.Target, -0.05, -0.9) // deep miss folded into a nice average
	honest := r.Score(r.Target, -0.05, 0.1)
	if !(gamed < honest-1.0) {
		t.Fatalf("deep per-frame miss not punished: gamed=%v honest=%v", gamed, honest)
	}
}

func TestRewardDeltaTermDirection(t *testing.T) {
	r := NewReward()
	// Above target: shrinking slack (ΔL < 0) is an improvement.
	improving := r.Score(0.3, -0.05, 0.3)
	worsening := r.Score(0.3, +0.05, 0.3)
	if !(improving > worsening) {
		t.Fatalf("above target: improvement %v not above worsening %v", improving, worsening)
	}
	// Below target (missing): growing slack is an improvement.
	improving = r.Score(-0.2, +0.05, -0.2)
	worsening = r.Score(-0.2, -0.05, -0.2)
	if !(improving > worsening) {
		t.Fatalf("below target: improvement %v not above worsening %v", improving, worsening)
	}
}

// Property: reward is maximal exactly at (L=target, ΔL favourable) and
// decreases monotonically with |L − target| on either side.
func TestRewardMonotoneProperty(t *testing.T) {
	r := NewReward()
	f := func(rawA, rawB uint16) bool {
		// two points on the same side of the target
		a := float64(rawA%1000)/1000*0.5 + r.Target
		b := float64(rawB%1000)/1000*0.5 + r.Target
		if a > b {
			a, b = b, a
		}
		if !(r.Score(a, 0, a) >= r.Score(b, 0, b)-1e-12) {
			return false
		}
		// mirrored below target, inside the miss region
		am := r.Target - (a - r.Target) - 0.2
		bm := r.Target - (b - r.Target) - 0.2
		return r.Score(bm, 0, bm) <= r.Score(am, 0, am)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the windowed tracker's L is always within the min/max of the
// ratios it has seen (convexity), for any positive inputs.
func TestSlackTrackerHullProperty(t *testing.T) {
	f := func(execs []uint16, rawWindow uint8) bool {
		window := int(rawWindow % 30)
		tr := NewSlackTracker(window)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range execs {
			exec := float64(e%100)/1000 + 0.001 // 1..101 ms
			ratio := (0.040 - exec) / 0.040
			if ratio < lo {
				lo = ratio
			}
			if ratio > hi {
				hi = ratio
			}
			l := tr.Observe(exec, 0.040)
			if l < lo-1e-9 || l > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
