package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"qgov/internal/serve/client"
	"qgov/internal/trace"
)

// This file is the trace read side: GET /v1/trace on both tiers and the
// binary OpTrace it rides on. A replica serves its own span ring; the
// router serves its ring merged with every reachable replica's, so one
// query against the router returns the stitched router→replica(→forward)
// view of any sampled decide.

// traceQueryJSON is the OpTrace request body (and the query-string
// surface of GET /v1/trace): every field narrows the snapshot.
type traceQueryJSON struct {
	// MinUS keeps only spans at least this slow (microseconds).
	MinUS float64 `json:"min_us,omitempty"`
	// Session keeps only spans recorded for this session id.
	Session string `json:"session,omitempty"`
	// Trace keeps only spans under this 16-hex-digit trace id.
	Trace string `json:"trace,omitempty"`
	// Limit caps the answer at this many spans, newest first; 0 is all.
	Limit int `json:"limit,omitempty"`
}

// filter converts the wire shape into a trace.Filter.
func (q traceQueryJSON) filter() (trace.Filter, error) {
	f := trace.Filter{MinDurUS: q.MinUS, Session: q.Session, Limit: q.Limit}
	if q.Trace != "" {
		id, err := trace.ParseID(q.Trace)
		if err != nil {
			return trace.Filter{}, err
		}
		f.Trace = id
	}
	return f, nil
}

// parseTraceBody decodes an OpTrace body; empty means "everything".
func parseTraceBody(body []byte) (trace.Filter, error) {
	var q traceQueryJSON
	if len(body) > 0 {
		if err := json.Unmarshal(body, &q); err != nil {
			return trace.Filter{}, err
		}
	}
	return q.filter()
}

// traceQueryFromRequest reads the GET /v1/trace query string.
func traceQueryFromRequest(r *http.Request) (traceQueryJSON, error) {
	var q traceQueryJSON
	vals := r.URL.Query()
	if s := vals.Get("min_us"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, errf("bad min_us %q", s)
		}
		q.MinUS = v
	}
	q.Session = vals.Get("session")
	q.Trace = vals.Get("trace")
	if s := vals.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return q, errf("bad limit %q", s)
		}
		q.Limit = v
	}
	return q, nil
}

// spansBody renders a span list as the OpTrace / /v1/trace body — always
// a JSON array, never null, so scripted consumers can range it blindly.
func spansBody(spans []trace.Span) []byte {
	if spans == nil {
		spans = []trace.Span{}
	}
	return jsonBody(spans)
}

// traceSpans answers OpTrace for a flat server / replica: its own ring.
func (s *Server) traceSpans(body []byte) (uint16, []byte) {
	f, err := parseTraceBody(body)
	if err != nil {
		return http.StatusBadRequest, errorBody(err)
	}
	return http.StatusOK, spansBody(s.tracer.Snapshot(f))
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	q, err := traceQueryFromRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	f, err := q.filter()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeControlResult(w, http.StatusOK, spansBody(s.tracer.Snapshot(f)))
}

// aggregateTrace answers OpTrace on the router: its own ring (route and
// relay spans) merged with every reachable replica's, newest first, with
// the filter's limit re-applied to the merged set. Replica spans whose
// origin is empty (a replica outside any named fleet) are stamped with
// the member address they came from, so the operator can always tell
// which server recorded what. A failed replica degrades the answer (its
// spans are missing) rather than failing it — same stance as metrics.
func (rt *Router) aggregateTrace(body []byte) (uint16, []byte) {
	f, err := parseTraceBody(body)
	if err != nil {
		return http.StatusBadRequest, errorBody(err)
	}
	all := rt.tracer.Snapshot(f)
	bodies, members, errs := rt.eachReplica(func(addr string, cl *client.Client) ([]byte, error) {
		status, b, err := cl.TraceSpans(body)
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, errf("trace returned %d", status)
		}
		return b, nil
	})
	for i := range members {
		if errs[i] != nil {
			continue
		}
		var spans []trace.Span
		if err := json.Unmarshal(bodies[i], &spans); err != nil {
			continue
		}
		for _, sp := range spans {
			if sp.Origin == "" {
				sp.Origin = members[i]
			}
			all = append(all, sp)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start > all[j].Start })
	if f.Limit > 0 && len(all) > f.Limit {
		all = all[:f.Limit]
	}
	return http.StatusOK, spansBody(all)
}

func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	q, err := traceQueryFromRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status, body := rt.aggregateTrace(jsonBody(q))
	writeControlResult(w, status, body)
}
