package loadgen_test

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"qgov/internal/governor"
	"qgov/internal/loadgen"
	"qgov/internal/serve/client"
)

// testSpec exercises every generator feature at once: three classes with
// distinct arrival processes, rate skew, finite lifetimes, staggered
// starts, and two storms (one partial, one total).
func testSpec() loadgen.Spec {
	return loadgen.Spec{
		Seed:     42,
		HorizonS: 30,
		Clients: []loadgen.ClientClass{
			{
				Name:            "steady",
				Count:           8,
				Arrival:         loadgen.Arrival{Process: "poisson", RateHz: 5},
				RateSkew:        &loadgen.Skew{Dist: "pareto", Param: 2.5},
				LifetimeDecides: 40,
				StartWindowS:    2,
			},
			{
				Name:         "burst",
				Count:        4,
				Arrival:      loadgen.Arrival{Process: "gamma", RateHz: 8, Shape: 0.5},
				RateSkew:     &loadgen.Skew{Dist: "lognormal", Param: 0.8},
				StartWindowS: 1,
			},
			{
				Name:            "weib",
				Count:           3,
				Arrival:         loadgen.Arrival{Process: "weibull", RateHz: 3, Shape: 0.7},
				LifetimeDecides: 25,
			},
		},
		Storms: []loadgen.Storm{
			{AtS: 10, Fraction: 0.5, RestartDelayS: 0.5},
			{AtS: 20, Fraction: 1, RestartDelayS: 0.25},
		},
	}
}

func record(t *testing.T, spec loadgen.Spec) []byte {
	t.Helper()
	g, err := loadgen.New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var buf bytes.Buffer
	n, err := loadgen.Record(&buf, g)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if n == 0 {
		t.Fatal("empty schedule")
	}
	return buf.Bytes()
}

func TestTraceByteIdentical(t *testing.T) {
	a := record(t, testSpec())
	b := record(t, testSpec())
	if !bytes.Equal(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
	changed := testSpec()
	changed.Seed++
	if bytes.Equal(a, record(t, changed)) {
		t.Fatal("changing the seed did not change the schedule")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	a := record(t, testSpec())
	rd := loadgen.NewTraceReader(bytes.NewReader(a))
	var buf bytes.Buffer
	n, err := loadgen.Record(&buf, rd)
	if err != nil {
		t.Fatalf("re-recording replay: %v", err)
	}
	if got := int64(bytes.Count(a, []byte("\n"))); n != got {
		t.Fatalf("replayed %d events, recorded %d lines", n, got)
	}
	if !bytes.Equal(a, buf.Bytes()) {
		t.Fatal("trace did not survive a record→replay→record round trip byte-identically")
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"{\"at_s\":0,\"op\":\"explode\",\"session\":\"x\"}\n",
		"{\"at_s\":0,\"op\":\"decide\",\"session\":\"x\"}\n", // decide without obs
		"{\"at_s\":0,\"op\":\"create\"}\n",                   // missing session
		"not json\n",
	} {
		rd := loadgen.NewTraceReader(strings.NewReader(bad))
		if _, _, err := rd.Next(); err == nil {
			t.Errorf("trace line %q: want error, got none", strings.TrimSpace(bad))
		}
	}
}

// TestScheduleInvariants walks the whole schedule checking the lifecycle
// contract: global time order, create-before-use, per-generation epoch
// sequence, storms actually deleting, and a drained end state.
func TestScheduleInvariants(t *testing.T) {
	spec := testSpec()
	g, err := loadgen.New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	live := map[string]int{} // id → next expected epoch
	var last float64
	var creates, deletes, decides, stormDeletes int
	for {
		ev, ok, err := g.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		if ev.AtS < last {
			t.Fatalf("time went backwards: %v after %v", ev.AtS, last)
		}
		last = ev.AtS
		if ev.AtS > spec.HorizonS {
			t.Fatalf("event at %v past horizon %v", ev.AtS, spec.HorizonS)
		}
		switch ev.Op {
		case loadgen.OpCreate:
			if _, exists := live[ev.Session]; exists {
				t.Fatalf("create of live session %s at %v", ev.Session, ev.AtS)
			}
			if ev.Governor == "" || ev.PeriodS <= 0 {
				t.Fatalf("create %s missing parameters: %+v", ev.Session, ev)
			}
			live[ev.Session] = 0
			creates++
		case loadgen.OpDecide:
			want, exists := live[ev.Session]
			if !exists {
				t.Fatalf("decide on dead session %s at %v", ev.Session, ev.AtS)
			}
			if ev.Obs.Epoch != want {
				t.Fatalf("session %s epoch %d, want %d", ev.Session, ev.Obs.Epoch, want)
			}
			if len(ev.Obs.Cycles) == 0 || ev.Obs.PeriodS <= 0 {
				t.Fatalf("decide %s has a hollow observation: %+v", ev.Session, ev.Obs)
			}
			live[ev.Session] = want + 1
			decides++
		case loadgen.OpDelete:
			if _, exists := live[ev.Session]; !exists {
				t.Fatalf("delete of dead session %s at %v", ev.Session, ev.AtS)
			}
			delete(live, ev.Session)
			deletes++
			if ev.AtS == spec.Storms[0].AtS || ev.AtS == spec.Storms[1].AtS {
				stormDeletes++
			}
		}
	}
	if len(live) != 0 {
		t.Fatalf("%d sessions still live after drain", len(live))
	}
	if creates != deletes {
		t.Fatalf("creates %d != deletes %d", creates, deletes)
	}
	clients := 0
	for _, c := range spec.Clients {
		clients += c.Count
	}
	if creates <= clients {
		t.Fatalf("creates %d <= client count %d: no session ever recycled its id", creates, clients)
	}
	if decides < 10*clients {
		t.Fatalf("only %d decides for %d clients over %vs", decides, clients, spec.HorizonS)
	}
	// The second storm takes every live session down.
	if stormDeletes < clients {
		t.Fatalf("only %d storm-time deletes, want at least %d (total storm)", stormDeletes, clients)
	}
}

func TestMaxEventsCapsSchedule(t *testing.T) {
	spec := testSpec()
	spec.MaxEvents = 100
	g, err := loadgen.New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n := 0
	for {
		_, ok, err := g.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("emitted %d events, want exactly 100", n)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	base := testSpec()
	cases := []struct {
		name   string
		mutate func(*loadgen.Spec)
	}{
		{"zero horizon", func(s *loadgen.Spec) { s.HorizonS = 0 }},
		{"no clients", func(s *loadgen.Spec) { s.Clients = nil }},
		{"bad process", func(s *loadgen.Spec) { s.Clients[0].Arrival.Process = "uniform" }},
		{"zero rate", func(s *loadgen.Spec) { s.Clients[0].Arrival.RateHz = 0 }},
		{"unknown governor", func(s *loadgen.Spec) { s.Clients[0].Governor = "nope" }},
		{"unknown platform", func(s *loadgen.Spec) { s.Clients[0].Platform = "nope" }},
		{"pareto alpha <= 1", func(s *loadgen.Spec) { s.Clients[0].RateSkew = &loadgen.Skew{Dist: "pareto", Param: 1} }},
		{"bad skew dist", func(s *loadgen.Spec) { s.Clients[0].RateSkew = &loadgen.Skew{Dist: "zipf", Param: 2} }},
		{"storm fraction > 1", func(s *loadgen.Spec) { s.Storms[0].Fraction = 1.5 }},
		{"storm past horizon", func(s *loadgen.Spec) { s.Storms[1].AtS = 99 }},
		{"unsorted storms", func(s *loadgen.Spec) { s.Storms[0].AtS = 25 }},
	}
	for _, tc := range cases {
		spec := base
		spec.Clients = append([]loadgen.ClientClass(nil), base.Clients...)
		spec.Storms = append([]loadgen.Storm(nil), base.Storms...)
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}
}

// runSpec runs the spec's schedule against a fresh Local oracle.
func runSpec(t *testing.T, spec loadgen.Spec, opts loadgen.RunOptions) *loadgen.Report {
	t.Helper()
	g, err := loadgen.New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := loadgen.Run(g, loadgen.NewLocal(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestRunLaneIndependence is the determinism contract end to end: the
// same schedule against a deterministic target yields the same aggregate
// checksum and counts at any lane count and any batch size.
func TestRunLaneIndependence(t *testing.T) {
	spec := testSpec()
	spec.HorizonS = 12
	spec.Storms = []loadgen.Storm{{AtS: 6, Fraction: 0.6, RestartDelayS: 0.5}}
	var first *loadgen.Report
	for _, opts := range []loadgen.RunOptions{
		{Lanes: 1},
		{Lanes: 7, BatchMax: 16},
		{Lanes: 3, BatchMax: 1},
	} {
		rep := runSpec(t, spec, opts)
		if rep.CreateErrors != 0 || rep.DeleteErrors != 0 || rep.DecideErrors != 0 {
			t.Fatalf("lanes=%d: errors in clean run: %+v", opts.Lanes, rep)
		}
		if rep.EndLive != 0 {
			t.Fatalf("lanes=%d: %d sessions live after drain", opts.Lanes, rep.EndLive)
		}
		if rep.PeakLive == 0 || rep.Decides == 0 || rep.Creates == 0 {
			t.Fatalf("lanes=%d: hollow run: %+v", opts.Lanes, rep)
		}
		if rep.Latency.Count() == 0 {
			t.Fatalf("lanes=%d: no batch latency samples", opts.Lanes)
		}
		if first == nil {
			first = rep
			continue
		}
		if rep.Checksum != first.Checksum {
			t.Fatalf("lanes=%d: checksum %x != lanes=1 checksum %x", opts.Lanes, rep.Checksum, first.Checksum)
		}
		if rep.Creates != first.Creates || rep.Deletes != first.Deletes || rep.Decides != first.Decides {
			t.Fatalf("lanes=%d: counts diverge: %+v vs %+v", opts.Lanes, rep, first)
		}
	}
}

// TestRunReplayMatchesLive proves a recorded trace is the schedule: a
// replayed run produces the identical checksum to the generated run.
func TestRunReplayMatchesLive(t *testing.T) {
	spec := testSpec()
	spec.HorizonS = 12
	spec.Storms = []loadgen.Storm{{AtS: 6, Fraction: 0.6, RestartDelayS: 0.5}}
	trace := record(t, spec)
	live := runSpec(t, spec, loadgen.RunOptions{Lanes: 4})
	replayed, err := loadgen.Run(loadgen.NewTraceReader(bytes.NewReader(trace)), loadgen.NewLocal(), loadgen.RunOptions{Lanes: 2})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if replayed.Checksum != live.Checksum {
		t.Fatalf("replay checksum %x != live checksum %x", replayed.Checksum, live.Checksum)
	}
	if replayed.Decides != live.Decides || replayed.Creates != live.Creates {
		t.Fatalf("replay counts diverge: %+v vs %+v", replayed, live)
	}
}

func TestTeeRecordsWhatRan(t *testing.T) {
	spec := testSpec()
	spec.HorizonS = 6
	spec.Storms = nil
	direct := record(t, spec)
	g, err := loadgen.New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var buf bytes.Buffer
	tee := loadgen.NewTee(g, &buf)
	if _, err := loadgen.Run(tee, loadgen.NewLocal(), loadgen.RunOptions{Lanes: 2}); err != nil {
		t.Fatalf("Run through tee: %v", err)
	}
	if err := tee.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !bytes.Equal(direct, buf.Bytes()) {
		t.Fatal("tee recording differs from a direct recording of the same spec")
	}
}

func TestLocalTargetContract(t *testing.T) {
	l := loadgen.NewLocal()
	body := []byte(`{"id":"x","governor":"rtm","period_s":0.04,"seed":7}`)
	if st, _, err := l.CreateSession(body); err != nil || st != http.StatusCreated {
		t.Fatalf("create: status %d err %v", st, err)
	}
	if st, _, _ := l.CreateSession(body); st != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", st)
	}
	if st, _, _ := l.CreateSession([]byte(`{"id":"y","governor":"nope"}`)); st != http.StatusBadRequest {
		t.Fatalf("bad governor: status %d, want 400", st)
	}
	obs := []governor.Observation{{
		Epoch:     0,
		Cycles:    []uint64{30e6, 30e6, 30e6, 30e6},
		Util:      []float64{0.6, 0.6, 0.6, 0.6},
		PeriodS:   0.04,
		ExecTimeS: 0.02,
		WallTimeS: 0.04,
		PowerW:    2,
		TempC:     50,
		OPPIdx:    3,
	}}
	out := make([]client.Decision, 1)
	if err := l.DecideBatch([]string{"x"}, obs, out); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if out[0].Err != "" || out[0].OPPIdx < 0 || out[0].FreqMHz <= 0 {
		t.Fatalf("decide on live session: %+v", out[0])
	}
	if err := l.DecideBatch([]string{"ghost"}, obs, out); err != nil {
		t.Fatalf("decide ghost: %v", err)
	}
	if out[0].Err == "" {
		t.Fatal("decide on unknown session did not error per-decision")
	}
	if st, _, _ := l.DeleteSession("x"); st != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", st)
	}
	if st, _, _ := l.DeleteSession("x"); st != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", st)
	}
	if n := l.Len(); n != 0 {
		t.Fatalf("%d sessions left, want 0", n)
	}
}
