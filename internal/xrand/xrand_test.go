package xrand

import (
	"math"
	"testing"
)

// The compact generator must be deterministic per seed, uniform enough
// for scheduling and ε draws, and produce variates with the moments
// the samplers assume — Exp(1) mean 1, N(0,1) mean 0 / variance 1.
// These are loose statistical checks on a fixed seed, so they can
// never flake.
func TestRandDeterministicAndSane(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c, d := New(43), New(42)
	if c.Uint64() == d.Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}

	const n = 200000
	p := New(7)
	var sumU, sumExp, sumN, sumN2 float64
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		u := p.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", u)
		}
		sumU += u
		counts[p.Intn(10)]++
		sumExp += p.ExpFloat64()
		x := p.NormFloat64()
		sumN += x
		sumN2 += x * x
	}
	if m := sumU / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean %v, want ~0.5", m)
	}
	for dg, c := range counts {
		if frac := float64(c) / n; math.Abs(frac-0.1) > 0.01 {
			t.Errorf("Intn(10) digit %d frequency %v, want ~0.1", dg, frac)
		}
	}
	if m := sumExp / n; math.Abs(m-1) > 0.02 {
		t.Errorf("exponential mean %v, want ~1", m)
	}
	if m := sumN / n; math.Abs(m) > 0.02 {
		t.Errorf("normal mean %v, want ~0", m)
	}
	if v := sumN2/n - (sumN/n)*(sumN/n); math.Abs(v-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", v)
	}
}

// Value-form embedding must behave identically to the pointer form.
func TestSeededMatchesNew(t *testing.T) {
	v := Seeded(99)
	p := New(99)
	for i := 0; i < 50; i++ {
		if v.Uint64() != p.Uint64() {
			t.Fatal("Seeded and New diverged")
		}
	}
}
