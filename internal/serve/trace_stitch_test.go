package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
	"qgov/internal/trace"
)

// fetchSpans queries OpTrace through a client and decodes the answer.
func fetchSpans(t *testing.T, cl *client.Client, filter string) []trace.Span {
	t.Helper()
	var body []byte
	if filter != "" {
		body = []byte(filter)
	}
	st, resp, err := cl.TraceSpans(body)
	if err != nil || st != http.StatusOK {
		t.Fatalf("trace fetch: status %d err %v (%s)", st, err, resp)
	}
	var spans []trace.Span
	if err := json.Unmarshal(resp, &spans); err != nil {
		t.Fatalf("decoding spans: %v (%s)", err, resp)
	}
	return spans
}

// The tentpole acceptance test: a decide through the router, with head
// sampling at probability 1, must yield router and replica spans
// stitched under one trace id — the router's "route" (whole batch) and
// "relay" (replica hop) spans plus the replica's "decide" span — all
// visible from a single /v1/trace (OpTrace) query against the router.
// The replicas have no sampling of their own: their spans exist only
// because the id propagated across the wire.
func TestRoutedDecideTraceStitching(t *testing.T) {
	_, addrs := newFleet(t, 2, serve.Options{})
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{
		ProbeEvery: -1,
		Tracer:     trace.New(trace.Options{SampleProb: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	cl, err := client.Dial(startRouterTCP(t, rt))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const id = "stitch-0"
	body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":1}`, id)
	if st, resp, err := cl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
		t.Fatalf("create: status %d err %v (%s)", st, err, resp)
	}
	if d, err := cl.Decide(id, steadyObs()); err != nil || d.Err != "" {
		t.Fatalf("decide: %v / %q", err, d.Err)
	}

	// The route span lands after the relay's completion goroutine runs,
	// which can trail the client's reply; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := fetchSpans(t, cl, fmt.Sprintf(`{"session":%q}`, id))
		var tid trace.TraceID
		for _, sp := range spans {
			if sp.Stage == "decide" {
				tid = sp.Trace
			}
		}
		if tid != 0 {
			got := map[string]int{}
			all := fetchSpans(t, cl, fmt.Sprintf(`{"trace":%q}`, tid.String()))
			for _, sp := range all {
				if sp.Trace != tid {
					t.Fatalf("trace filter leaked span %+v", sp)
				}
				got[sp.Stage]++
			}
			if got["route"] >= 1 && got["relay"] >= 1 && got["decide"] >= 1 {
				for _, sp := range all {
					if sp.Stage == "route" && sp.Origin != "router" {
						t.Errorf("route span origin %q, want router", sp.Origin)
					}
					if sp.Stage == "decide" && sp.Session != id {
						t.Errorf("decide span session %q, want %s", sp.Session, id)
					}
					if sp.Stage == "decide" && sp.Origin == "" {
						t.Error("replica decide span has no origin after aggregation")
					}
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("stitched stages missing: %v (spans %+v)", got, all)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("no decide span for %s: %+v", id, spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A misrouted decide — sent straight to the wrong replica with a
// client-chosen trace id — must stitch the same way: the wrong replica
// records a "forward" span naming the owner, the owner records the
// "decide" span marked Forwarded, and both surface under the one id
// from the router's aggregated /v1/trace.
func TestMisrouteForwardTraceStitching(t *testing.T) {
	_, addrs := newFleet(t, 2, serve.Options{})
	// NewRouter pushes the membership table to both replicas, which is
	// what arms replica-side forwarding.
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rcl, err := client.Dial(startRouterTCP(t, rt))
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()

	const id = "fwd-0"
	body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":7}`, id)
	if st, resp, err := rcl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
		t.Fatalf("create: status %d err %v (%s)", st, err, resp)
	}
	owner, ok := rt.Owner(id)
	if !ok {
		t.Fatal("ring places nothing")
	}
	wrong := addrs[0]
	if wrong == owner {
		wrong = addrs[1]
	}
	wcl, err := client.Dial(wrong)
	if err != nil {
		t.Fatal(err)
	}
	defer wcl.Close()

	const tid = uint64(0x1234567890abcdef)
	out := make([]client.Decision, 1)
	err = wcl.DecideBatchTraced([]string{id}, []governor.Observation{steadyObs()}, out, []uint64{tid})
	if err != nil || out[0].Err != "" {
		t.Fatalf("misrouted decide: %v / %q", err, out[0].Err)
	}

	spans := fetchSpans(t, rcl, fmt.Sprintf(`{"trace":%q}`, trace.TraceID(tid).String()))
	var forward, forwardedDecide bool
	for _, sp := range spans {
		if sp.Trace != trace.TraceID(tid) {
			t.Fatalf("span under wrong trace: %+v", sp)
		}
		switch sp.Stage {
		case "forward":
			forward = true
			if sp.Replica != owner {
				t.Errorf("forward span names replica %q, want owner %q", sp.Replica, owner)
			}
			if sp.Session != id {
				t.Errorf("forward span session %q, want %s", sp.Session, id)
			}
		case "decide":
			if sp.Forwarded {
				forwardedDecide = true
				if sp.Session != id {
					t.Errorf("forwarded decide session %q, want %s", sp.Session, id)
				}
			}
		}
	}
	if !forward || !forwardedDecide {
		t.Fatalf("stitched misroute incomplete (forward=%v forwardedDecide=%v): %+v",
			forward, forwardedDecide, spans)
	}
}

// Tail capture: with head sampling off and a zero-ish slow threshold,
// every decide batch is slower than the threshold and must be captured
// as a Slow "decide.batch" span with a minted id — the flight-recorder
// path that catches outliers head sampling misses.
func TestTailCaptureSlowBatch(t *testing.T) {
	h := newTestServer(t, serve.Options{
		Tracer: trace.New(trace.Options{Slow: time.Nanosecond}),
	})
	ts := newTCPServer(t, h)
	if st := h.post("/v1/sessions", map[string]any{"id": "slow-0", "governor": "ondemand"}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	cl, err := client.Dial(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if d, err := cl.Decide("slow-0", steadyObs()); err != nil || d.Err != "" {
		t.Fatalf("decide: %v / %q", err, d.Err)
	}
	spans := fetchSpans(t, cl, "")
	for _, sp := range spans {
		if sp.Stage == "decide.batch" && sp.Slow && sp.Trace != 0 {
			return
		}
	}
	t.Fatalf("no slow decide.batch span captured: %+v", spans)
}
