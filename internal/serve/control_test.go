package serve_test

import (
	"encoding/json"
	"errors"
	"io/fs"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"qgov/internal/serve"
	"qgov/internal/serve/client"
	"qgov/internal/wire"
)

// The binary control plane must mirror the HTTP one: create, info,
// checkpoint, delete — same statuses, same JSON bodies — over the same
// connection that carries decisions.
func TestTCPControlPlaneLifecycle(t *testing.T) {
	h := newTestServer(t, serve.Options{CheckpointDir: t.TempDir()})
	ts := newTCPServer(t, h)
	cl, err := client.Dial(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, body, err := cl.CreateSession([]byte(`{"id":"bc0","governor":"rtm","seed":3}`))
	if err != nil || st != http.StatusCreated {
		t.Fatalf("create: status %d body %s err %v", st, body, err)
	}
	var info struct {
		ID       string `json:"id"`
		Governor string `json:"governor"`
		Epochs   int64  `json:"epochs"`
	}
	if err := json.Unmarshal(body, &info); err != nil || info.ID != "bc0" || info.Governor != "rtm" {
		t.Fatalf("create body %s (err %v)", body, err)
	}

	// Duplicate create conflicts, exactly like HTTP.
	if st, _, err = cl.CreateSession([]byte(`{"id":"bc0","governor":"rtm"}`)); err != nil || st != http.StatusConflict {
		t.Fatalf("duplicate create: status %d err %v", st, err)
	}

	// Decide a few epochs so there is state to freeze.
	for i := 0; i < 5; i++ {
		obs := steadyObs()
		obs.Epoch = i
		if d, err := cl.Decide("bc0", obs); err != nil || d.Err != "" {
			t.Fatalf("decide %d: %+v err %v", i, d, err)
		}
	}

	if st, body, err = cl.SessionInfo("bc0"); err != nil || st != http.StatusOK {
		t.Fatalf("info: status %d err %v", st, err)
	}
	if err := json.Unmarshal(body, &info); err != nil || info.Epochs != 5 {
		t.Fatalf("info body %s (err %v)", body, err)
	}

	st, body, err = cl.CheckpointSession("bc0")
	if err != nil || st != http.StatusOK {
		t.Fatalf("checkpoint: status %d err %v", st, err)
	}
	var ck struct {
		Session string          `json:"session"`
		State   json.RawMessage `json:"state"`
	}
	if err := json.Unmarshal(body, &ck); err != nil || ck.Session != "bc0" || len(ck.State) == 0 {
		t.Fatalf("checkpoint body %s (err %v)", body, err)
	}

	// The HTTP oracle sees the same session the binary plane created.
	var hinfo sessionInfo
	if st := h.get("/v1/sessions/bc0", &hinfo); st != http.StatusOK || hinfo.Epochs != 5 {
		t.Fatalf("HTTP sees %+v (status %d)", hinfo, st)
	}

	// List includes it; metrics carries its histogram.
	if st, body, err = cl.ListSessions(); err != nil || st != http.StatusOK {
		t.Fatalf("list: status %d err %v", st, err)
	}
	var infos []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &infos); err != nil || len(infos) != 1 || infos[0].ID != "bc0" {
		t.Fatalf("list body %s (err %v)", body, err)
	}
	if st, body, err = cl.Metrics(); err != nil || st != http.StatusOK {
		t.Fatalf("metrics: status %d err %v", st, err)
	}
	var m struct {
		Sessions map[string]struct {
			Count int `json:"count"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal(body, &m); err != nil || m.Sessions["bc0"].Count != 5 {
		t.Fatalf("metrics body %s (err %v)", body, err)
	}

	if st, _, err = cl.DeleteSession("bc0"); err != nil || st != http.StatusNoContent {
		t.Fatalf("delete: status %d err %v", st, err)
	}
	if st, _, err = cl.SessionInfo("bc0"); err != nil || st != http.StatusNotFound {
		t.Fatalf("info after delete: status %d err %v", st, err)
	}
	if st, _, err = cl.Control(0x7f, "", nil); err != nil || st != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d err %v", st, err)
	}
}

// Control frames are ordering barriers: a create written *before* an
// observe on the same connection — in the same kernel write, no round
// trip between them — must be applied before that observe decides.
func TestTCPControlBarrierOrdering(t *testing.T) {
	h := newTestServer(t, serve.Options{})
	ts := newTCPServer(t, h)

	conn, err := net.Dial("tcp", ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf []byte
	buf, err = wire.AppendControl(buf, 1, wire.OpCreate, "", []byte(`{"id":"bar0","governor":"ondemand"}`))
	if err != nil {
		t.Fatal(err)
	}
	obs := steadyObs()
	buf, err = wire.AppendObserve(buf, 2, "bar0", &obs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}

	r := wire.NewReader(conn)
	sawCreate, sawDecide := false, false
	for i := 0; i < 2; i++ {
		typ, payload, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case wire.MsgControlReply:
			var cr wire.ControlReply
			if err := cr.Decode(payload); err != nil {
				t.Fatal(err)
			}
			if cr.ID != 1 || cr.Status != 201 {
				t.Fatalf("create reply: %+v (%s)", cr, cr.Body)
			}
			sawCreate = true
		case wire.MsgDecide:
			var d wire.Decide
			if err := d.Decode(payload); err != nil {
				t.Fatal(err)
			}
			if d.ID != 2 || len(d.Err) != 0 || d.OPPIdx < 0 {
				t.Fatalf("decide after create in the same write failed: %+v (%s)", d, d.Err)
			}
			sawDecide = true
		default:
			t.Fatalf("unexpected frame type 0x%02x", typ)
		}
	}
	if !sawCreate || !sawDecide {
		t.Fatalf("saw create=%v decide=%v", sawCreate, sawDecide)
	}
}

// A session created over the binary plane on a checkpointing server must
// freeze on Close and warm-start on re-create — the restart contract,
// independent of which control plane created it.
func TestTCPControlCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	h := newTestServer(t, serve.Options{CheckpointDir: dir})
	ts := newTCPServer(t, h)
	cl, err := client.Dial(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if st, _, err := cl.CreateSession([]byte(`{"id":"gc0","governor":"rtm","seed":1}`)); err != nil || st != http.StatusCreated {
		t.Fatalf("create: status %d err %v", st, err)
	}
	obs := steadyObs()
	if d, err := cl.Decide("gc0", obs); err != nil || d.Err != "" {
		t.Fatalf("decide: %+v err %v", d, err)
	}
	if st, _, err := cl.CheckpointSession("gc0"); err != nil || st != http.StatusOK {
		t.Fatalf("checkpoint: status %d err %v", st, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gc0.state")); err != nil {
		t.Fatalf("checkpoint file missing after explicit checkpoint: %v", err)
	}
	// Deleting the session garbage-collects the state file.
	if st, _, err := cl.DeleteSession("gc0"); err != nil || st != http.StatusNoContent {
		t.Fatalf("delete: status %d err %v", st, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gc0.state")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("checkpoint file survived session delete: %v", err)
	}
}
