// Package ring is a consistent-hash ring mapping session ids to the
// replica that owns them — the placement function of a sharded rtmd
// fleet. Each replica is hashed onto the ring at VirtualNodes positions
// (virtual nodes smooth the per-replica share toward 1/N); a key belongs
// to the first replica position at or clockwise after the key's own
// hash. Placement is a pure function of the member set: every router
// holding the same members computes the same owner for every key, with
// no coordination.
//
// The property that makes the ring the right structure for a session
// fleet is bounded movement: removing one of N replicas reassigns only
// the keys that replica owned (≈1/N of them, < 2/N with the default
// virtual-node count — the ring tests enforce the bound) and moves no
// key between two surviving replicas; adding a replica steals only the
// keys it now owns. A modulo hash would reshuffle nearly everything.
//
// A Ring is not internally locked: Owner is safe for any number of
// concurrent readers, but Add/Remove must be serialised against readers
// by the caller (the router holds its own lock across membership
// changes, which it must anyway to hand sessions off).
package ring

import (
	"sort"

	"qgov/internal/strhash"
)

// DefaultVirtualNodes is the vnode count used when New is given zero.
// 128 positions per replica keeps the largest/smallest owner share
// within ~2x of each other at small N, which is what bounds movement
// under 2/N when a replica leaves.
const DefaultVirtualNodes = 128

// Ring places string keys on named members.
type Ring struct {
	vnodes  int
	members []string // sorted; the authoritative membership
	hashes  []uint64 // sorted vnode positions
	owners  []string // owners[i] owns hashes[i]
}

// New builds a ring with the given virtual-node count (<= 0 selects
// DefaultVirtualNodes) over the given members. Duplicate members are
// kept once.
func New(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// VirtualNodes returns the ring's virtual-node count. A client building
// its own ring from a membership table must use the same count to
// compute the same placement the router does.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Members returns the member set, sorted. The slice is a copy.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Has reports whether the member is on the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// Add places a member on the ring. It reports whether the member was new.
func (r *Ring) Add(member string) bool {
	if r.Has(member) {
		return false
	}
	i := sort.SearchStrings(r.members, member)
	r.members = append(r.members, "")
	copy(r.members[i+1:], r.members[i:])
	r.members[i] = member
	r.rebuild()
	return true
}

// Remove takes a member off the ring. It reports whether it was present.
func (r *Ring) Remove(member string) bool {
	i := sort.SearchStrings(r.members, member)
	if i >= len(r.members) || r.members[i] != member {
		return false
	}
	r.members = append(r.members[:i], r.members[i+1:]...)
	r.rebuild()
	return true
}

// rebuild recomputes the vnode positions from the member set. Placement
// depends only on the (sorted) membership, never on insertion order.
func (r *Ring) rebuild() {
	n := len(r.members) * r.vnodes
	r.hashes = r.hashes[:0]
	r.owners = r.owners[:0]
	if cap(r.hashes) < n {
		r.hashes = make([]uint64, 0, n)
		r.owners = make([]string, 0, n)
	}
	for _, m := range r.members {
		h := strhash.AddString(strhash.Seed, m)
		for v := 0; v < r.vnodes; v++ {
			// Chain the vnode index into the member hash, then mix: FNV
			// alone leaves different members' vnode sequences affinely
			// related (the shares come out wildly uneven); the finalizer
			// decorrelates them.
			r.hashes = append(r.hashes, strhash.Mix(strhash.AddU32(h, uint32(v))))
			r.owners = append(r.owners, m)
		}
	}
	sort.Sort((*ringSlice)(r))
	// Identical positions from different members would make placement
	// depend on sort stability; break ties by owner so the winner is
	// deterministic, then drop the shadowed duplicates.
	w := 0
	for i := range r.hashes {
		if i > 0 && r.hashes[i] == r.hashes[w-1] {
			continue
		}
		r.hashes[w], r.owners[w] = r.hashes[i], r.owners[i]
		w++
	}
	r.hashes, r.owners = r.hashes[:w], r.owners[:w]
}

// ringSlice sorts positions with owner tiebreak.
type ringSlice Ring

func (s *ringSlice) Len() int { return len(s.hashes) }
func (s *ringSlice) Less(i, j int) bool {
	if s.hashes[i] != s.hashes[j] {
		return s.hashes[i] < s.hashes[j]
	}
	return s.owners[i] < s.owners[j]
}
func (s *ringSlice) Swap(i, j int) {
	s.hashes[i], s.hashes[j] = s.hashes[j], s.hashes[i]
	s.owners[i], s.owners[j] = s.owners[j], s.owners[i]
}

// Owner returns the member owning the key, and false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	return r.owners[r.search(strhash.String(key))], true
}

// OwnerBytes is Owner for a byte-slice key; it hashes identically to the
// string form and allocates nothing, for the binary-transport route path.
func (r *Ring) OwnerBytes(key []byte) (string, bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	return r.owners[r.search(strhash.Bytes(key))], true
}

// search finds the first position at or clockwise after h.
func (r *Ring) search(h uint64) int {
	lo, hi := 0, len(r.hashes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.hashes) {
		return 0 // wrap past the last position
	}
	return lo
}
