package loadgen

import (
	"math"

	"qgov/internal/xrand"
)

// Hand-rolled samplers: the repo takes no dependencies, and the base
// generator provides only uniform, normal and exponential variates.
// Each sampler consumes draws from the caller's generator, so a client's
// whole event stream is a pure function of its seed.

// sampleInterarrival draws one interarrival gap for the process, scaled
// so the long-run mean rate is rateHz.
func sampleInterarrival(rng *xrand.Rand, a Arrival, rateHz float64) float64 {
	shape := a.Shape
	if shape == 0 {
		shape = 1
	}
	switch a.Process {
	case "gamma":
		// Gamma(shape k, scale θ) has mean kθ; θ = 1/(rate·k) keeps the
		// mean gap at 1/rate. k < 1 clumps arrivals into bursts.
		return sampleGamma(rng, shape) / (rateHz * shape)
	case "weibull":
		// Weibull(k, λ) has mean λ·Γ(1+1/k); normalise λ accordingly.
		lambda := 1 / (rateHz * math.Gamma(1+1/shape))
		return sampleWeibull(rng, shape, lambda)
	default: // "poisson": exponential gaps
		return rng.ExpFloat64() / rateHz
	}
}

// sampleWeibull draws Weibull(shape k, scale λ) by inverse CDF:
// λ·(-ln U)^(1/k).
func sampleWeibull(rng *xrand.Rand, k, lambda float64) float64 {
	u := rng.Float64()
	for u == 0 { // ln(0) guard; Float64 can return 0
		u = rng.Float64()
	}
	return lambda * math.Pow(-math.Log(u), 1/k)
}

// sampleGamma draws Gamma(shape k, scale 1) via Marsaglia–Tsang
// squeeze-rejection; shape < 1 goes through the boost
// Gamma(k) = Gamma(k+1)·U^(1/k).
func sampleGamma(rng *xrand.Rand, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sampleSkew draws one client's rate multiplier from the skew
// distribution, normalised to mean 1 so the class keeps its aggregate
// rate.
func sampleSkew(rng *xrand.Rand, sk *Skew) float64 {
	if sk == nil {
		return 1
	}
	switch sk.Dist {
	case "lognormal":
		// exp(N(µ,σ)) has mean exp(µ+σ²/2); µ = -σ²/2 centres it at 1.
		sigma := sk.Param
		return math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
	default: // "pareto"
		// Pareto(xm, α) has mean α·xm/(α-1); xm = (α-1)/α centres it at 1.
		alpha := sk.Param
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		xm := (alpha - 1) / alpha
		return xm / math.Pow(u, 1/alpha)
	}
}
