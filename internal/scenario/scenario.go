// Package scenario names governor × workload × platform combinations as
// first-class sweep scenarios. A scenario name has three slash-separated
// segments — "rtm/h264-football/a15", "mldtm/mpeg4-30fps/a7" — each drawn
// from the corresponding registry (the governor registry plus the offline
// Oracle, the workload registry, and the platform variants defined here).
//
// The registry replaces the hand-rolled governor/trace/cluster plumbing
// that used to be duplicated across the experiment harness, the CLI tools
// and the examples: every consumer resolves a name to a sim.Config builder
// and hands the jobs to sim.Stream or sim.RunAll. Because the enumeration
// is the full cross product, the sweep surface grows automatically with
// every governor or workload registered anywhere in the program.
package scenario

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// Platform is one simulated hardware variant a scenario can run on.
type Platform struct {
	Name string
	// Describe is a one-line summary for listings.
	Describe string
	// NewCluster builds a fresh cluster seeded for one run.
	NewCluster func(seed int64) *platform.Cluster
	// PowerModel returns the cluster's power model (the Oracle's offline
	// knowledge).
	PowerModel func() *platform.PowerModel
}

// platforms is the platform registry. The paper's experiments all run on
// "a15"; the others widen the design space the sweeps explore.
var platforms = map[string]Platform{
	"a15": {
		Name:       "a15",
		Describe:   "quad Cortex-A15, 19 OPPs 200–2000 MHz (the paper's platform)",
		NewCluster: platform.DefaultA15Cluster,
		PowerModel: platform.DefaultA15PowerModel,
	},
	"a7": {
		Name:       "a7",
		Describe:   "quad Cortex-A7 LITTLE cluster, 13 OPPs 200–1400 MHz",
		NewCluster: platform.DefaultA7Cluster,
		PowerModel: platform.DefaultA7PowerModel,
	},
	"a15-membound": {
		Name:     "a15-membound",
		Describe: "A15 cluster with 40% memory-bound work (reduced DVFS leverage)",
		NewCluster: func(seed int64) *platform.Cluster {
			return platform.NewCluster(platform.ClusterConfig{
				Name:         "A15m",
				Table:        platform.A15Table(),
				NumCores:     4,
				Seed:         seed,
				MemStallFrac: 0.4,
			})
		},
		PowerModel: platform.DefaultA15PowerModel,
	},
}

// Scenario is one named governor × workload × platform combination.
type Scenario struct {
	Governor string
	Workload string
	Platform string
}

// Name returns the canonical "governor/workload/platform" form.
func (s Scenario) Name() string {
	return s.Governor + "/" + s.Workload + "/" + s.Platform
}

// Parse splits a scenario name without validating the segments.
func Parse(name string) (Scenario, error) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return Scenario{}, fmt.Errorf("scenario: %q is not governor/workload/platform", name)
	}
	return Scenario{Governor: parts[0], Workload: parts[1], Platform: parts[2]}, nil
}

// Get resolves and validates a scenario name.
func Get(name string) (Scenario, error) {
	s, err := Parse(name)
	if err != nil {
		return Scenario{}, err
	}
	if !governorKnown(s.Governor) {
		return Scenario{}, fmt.Errorf("scenario: unknown governor %q (try one of %v)", s.Governor, Governors())
	}
	if _, err := workload.ByName(s.Workload); err != nil {
		return Scenario{}, fmt.Errorf("scenario: unknown workload %q", s.Workload)
	}
	if _, ok := platforms[s.Platform]; !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown platform %q (try one of %v)", s.Platform, Platforms())
	}
	return s, nil
}

// Governors lists the governor segment's legal values: every registered
// governor plus the offline Oracle.
func Governors() []string {
	names := governor.Names()
	names = append(names, "oracle")
	sort.Strings(names)
	return names
}

// Platforms lists the platform segment's legal values, sorted.
func Platforms() []string {
	out := make([]string, 0, len(platforms))
	for k := range platforms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PlatformByName returns a platform variant.
func PlatformByName(name string) (Platform, error) {
	p, ok := platforms[name]
	if !ok {
		return Platform{}, fmt.Errorf("scenario: unknown platform %q (try one of %v)", name, Platforms())
	}
	return p, nil
}

// Names enumerates the full governor × workload × platform cross product,
// sorted. The count is the product of the three registries' sizes, so it
// grows with every governor or workload added to the program.
func Names() []string {
	govs, wls, plats := Governors(), workload.Names(), Platforms()
	out := make([]string, 0, len(govs)*len(wls)*len(plats))
	for _, g := range govs {
		for _, w := range wls {
			for _, p := range plats {
				out = append(out, Scenario{g, w, p}.Name())
			}
		}
	}
	return out
}

// Match returns the scenarios whose name matches the pattern: three
// slash-separated segments where "*" matches any value, e.g. "rtm/*/a15"
// (every workload under the proposed RTM on the paper's platform) or
// "*/h264-football/*" (every governor and platform on the football trace).
func Match(pattern string) ([]Scenario, error) {
	want, err := Parse(pattern)
	if err != nil {
		return nil, err
	}
	segMatch := func(pat, v string) bool { return pat == "*" || pat == v }
	var out []Scenario
	for _, g := range Governors() {
		if !segMatch(want.Governor, g) {
			continue
		}
		for _, w := range workload.Names() {
			if !segMatch(want.Workload, w) {
				continue
			}
			for _, p := range Platforms() {
				if segMatch(want.Platform, p) {
					out = append(out, Scenario{g, w, p})
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: pattern %q matches nothing", pattern)
	}
	return out, nil
}

func governorKnown(name string) bool {
	if name == "oracle" {
		return true
	}
	for _, n := range governor.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// BuildGovernor constructs and prepares the named governor for a trace on
// a platform's power model: the Oracle gets its offline knowledge, RTM
// variants are pre-characterised on the trace (the paper's design-space
// exploration). This is the single home of the setup every harness used to
// hand-roll.
func BuildGovernor(name string, tr workload.Trace, pm *platform.PowerModel) (governor.Governor, error) {
	if name == "oracle" {
		return governor.NewOracle(tr, pm), nil
	}
	g, err := governor.ByName(name)
	if err != nil {
		return nil, err
	}
	if rtm, ok := g.(*core.RTM); ok {
		if err := rtm.Calibrate(tr.MaxPerFrame()); err != nil {
			return nil, fmt.Errorf("scenario: calibrating %s on %s: %w", name, tr.Name, err)
		}
	}
	return g, nil
}

// Config materialises one run of the scenario: a fresh trace, cluster and
// prepared governor. frames <= 0 selects the workload's natural length.
// Each call builds everything new, so the returned Config is safe to run
// concurrently with other calls' results (see sim.Job).
func (s Scenario) Config(seed int64, frames int) (sim.Config, error) {
	gen, err := workload.ByName(s.Workload)
	if err != nil {
		return sim.Config{}, err
	}
	plat, err := PlatformByName(s.Platform)
	if err != nil {
		return sim.Config{}, err
	}
	tr := gen(seed, frames)
	g, err := BuildGovernor(s.Governor, tr, plat.PowerModel())
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Trace:    tr,
		Governor: g,
		Cluster:  plat.NewCluster(seed),
		Seed:     seed,
	}, nil
}

// Session materialises the scenario as a step-driven sim.Session: the
// caller owns the decision loop (sim.Run's closed loop is the trivial
// driver; cmd/rtmd's online serving is the interesting one).
func (s Scenario) Session(seed int64, frames int) (*sim.Session, error) {
	cfg, err := s.Config(seed, frames)
	if err != nil {
		return nil, err
	}
	return sim.NewSession(cfg), nil
}

// WarmStart stages a learner checkpoint (written by Freeze) into the
// governor, which must implement governor.Checkpointer — this is how a
// named scenario is warm-started from a trained, frozen state.
func WarmStart(g governor.Governor, r io.Reader) error {
	cp, ok := g.(governor.Checkpointer)
	if !ok {
		return fmt.Errorf("scenario: governor %s has no learnt state to warm-start", g.Name())
	}
	return cp.LoadState(r)
}

// Freeze writes the governor's learnt state, which it must expose through
// governor.Checkpointer.
func Freeze(g governor.Governor, w io.Writer) error {
	cp, ok := g.(governor.Checkpointer)
	if !ok {
		return fmt.Errorf("scenario: governor %s has no learnt state to freeze", g.Name())
	}
	return cp.SaveState(w)
}

// ConfigWarm is Config with the scenario's governor warm-started from a
// checkpoint: train a scenario, Freeze its governor, and any later run of
// the same scenario resumes from the frozen policy instead of re-learning.
func (s Scenario) ConfigWarm(seed int64, frames int, state io.Reader) (sim.Config, error) {
	cfg, err := s.Config(seed, frames)
	if err != nil {
		return sim.Config{}, err
	}
	if err := WarmStart(cfg.Governor, state); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// Job wraps the scenario as a sweep job. The name is validated eagerly;
// the Config is built lazily inside the worker so a large sweep holds only
// job descriptors, never materialised traces.
func (s Scenario) Job(seed int64, frames int) (sim.Job, error) {
	if _, err := Get(s.Name()); err != nil {
		return sim.Job{}, err
	}
	return sim.Job{
		Name: fmt.Sprintf("%s@%d", s.Name(), seed),
		Build: func() sim.Config {
			cfg, err := s.Config(seed, frames)
			if err != nil {
				// Validated above; failure here is a registry bug.
				panic(err)
			}
			return cfg
		},
	}, nil
}

// Jobs builds the scenarios × seeds job list in deterministic order
// (scenario-major, then seed).
func Jobs(scenarios []Scenario, seeds []int64, frames int) ([]sim.Job, error) {
	jobs := make([]sim.Job, 0, len(scenarios)*len(seeds))
	for _, s := range scenarios {
		for _, seed := range seeds {
			j, err := s.Job(seed, frames)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// JobStream feeds the scenarios × seeds product lazily into a channel for
// sim.Stream — the constant-memory path for sweeps too large to hold as a
// slice. Invalid scenarios surface as a panic on first use; validate with
// Get or Jobs when the input is untrusted.
func JobStream(scenarios []Scenario, seeds []int64, frames int) <-chan sim.Job {
	ch := make(chan sim.Job)
	go func() {
		defer close(ch)
		for _, s := range scenarios {
			s := s
			for _, seed := range seeds {
				seed := seed
				ch <- sim.Job{
					Name: fmt.Sprintf("%s@%d", s.Name(), seed),
					Build: func() sim.Config {
						cfg, err := s.Config(seed, frames)
						if err != nil {
							panic(err)
						}
						return cfg
					},
				}
			}
		}
	}()
	return ch
}
