// Package serve hosts governors as an online decision service — the
// deployment shape the paper's RTM has on real hardware, where the
// learning manager lives inside the OS and is fed one epoch's
// PMU/power/timing observation at a time. A serve.Server holds many
// independent sessions (one per controlled cluster, each with its own
// governor instance and learning state) behind an HTTP JSON API:
//
//	POST   /v1/sessions                 create a session (optionally
//	                                    calibrated and/or warm-started)
//	POST   /v1/decide                   batched: one observation per
//	                                    session, one OPP decision back
//	GET    /v1/sessions/{id}            session info + learning stats
//	POST   /v1/sessions/{id}/checkpoint freeze the learnt state now
//	DELETE /v1/sessions/{id}            drop the session
//	GET    /healthz                     liveness + counters
//
// Sessions are independent and internally locked: decisions for
// different sessions run concurrently, decisions for one session
// serialise, so each session's governor sees a strict observation
// sequence and remains exactly as deterministic as under sim.Run (the
// serve tests drive a sim.Session through this API and require
// byte-identical physical aggregates). Learning state is periodically
// checkpointed through governor.Checkpointer when a checkpoint directory
// is configured, and sessions warm-start from their checkpoint file on
// re-creation — a restarted server resumes its learnt policies.
package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/scenario"
	"qgov/internal/stats"
)

// Decision-latency histogram geometry: governor decisions are sub-10 µs,
// so 1 µs bins over [0, 50 µs] resolve the working range and the
// histogram's overflow bucket catches scheduler-delayed outliers.
const (
	latHistHiUS = 50
	latHistBins = 50
)

// Options configures a Server. The zero value serves on the paper's
// defaults: platform "a15", 25 fps decision epochs, no checkpointing.
type Options struct {
	// DefaultPlatform names the scenario platform variant used when a
	// session create omits one. Empty selects "a15".
	DefaultPlatform string
	// DefaultPeriodS is the decision-epoch deadline used when a session
	// create omits one. Zero selects 0.040 s (25 fps).
	DefaultPeriodS float64
	// CheckpointDir, when non-empty, is where session learning state is
	// frozen (one "<id>.state" file per checkpointable session) and
	// looked up again when a session of the same id is re-created.
	CheckpointDir string
	// CheckpointEvery is the period of the background checkpoint sweep;
	// <= 0 disables the sweep (explicit /checkpoint calls and the final
	// sweep on Close still run when CheckpointDir is set).
	CheckpointEvery time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server is the concurrent session store behind the HTTP API.
type Server struct {
	opt Options

	mu       sync.RWMutex
	sessions map[string]*session
	closed   bool

	nextID    atomic.Int64
	decisions atomic.Int64

	done      chan struct{}
	loopWG    sync.WaitGroup
	closeOnce sync.Once
}

// session is one controlled cluster's governor with its serving state.
// mu serialises governor access: a governor mutates learning state in
// Decide, and its determinism contract is a strict observation sequence.
type session struct {
	mu sync.Mutex

	id       string
	govName  string
	platName string
	periodS  float64
	seed     int64

	gov    governor.Governor
	table  platform.OPPTable
	cores  int
	epochs int64
	lat    *stats.Histogram // decision latency in µs, guarded by mu
}

// New builds a Server and starts the periodic checkpoint sweep when
// configured. Callers must Close it.
func New(opt Options) *Server {
	if opt.DefaultPlatform == "" {
		opt.DefaultPlatform = "a15"
	}
	if opt.DefaultPeriodS <= 0 {
		opt.DefaultPeriodS = 0.040
	}
	s := &Server{
		opt:      opt,
		sessions: make(map[string]*session),
		done:     make(chan struct{}),
	}
	if opt.CheckpointDir != "" && opt.CheckpointEvery > 0 {
		s.loopWG.Add(1)
		go s.checkpointLoop()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Close stops the checkpoint sweep and, when a checkpoint directory is
// configured, freezes every session one final time — the graceful-
// shutdown half of warm restarts. It is idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		s.loopWG.Wait()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		if s.opt.CheckpointDir != "" {
			n, e := s.CheckpointAll()
			s.logf("serve: final checkpoint: %d sessions", n)
			err = e
		}
	})
	return err
}

func (s *Server) checkpointLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.opt.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if n, err := s.CheckpointAll(); err != nil {
				s.logf("serve: checkpoint sweep: %v", err)
			} else if n > 0 {
				s.logf("serve: checkpointed %d sessions", n)
			}
		}
	}
}

// CheckpointAll freezes every checkpointable session into CheckpointDir
// and returns how many were written. The first error is returned after
// attempting the rest.
func (s *Server) CheckpointAll() (int, error) {
	s.mu.RLock()
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.RUnlock()

	var n int
	var firstErr error
	for _, sess := range all {
		wrote, err := s.checkpointSession(sess)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if wrote {
			n++
		}
	}
	return n, firstErr
}

// checkpointSession freezes one session's state to its file; sessions
// whose governor keeps no learnt state (or that have not decided yet)
// are skipped without error.
func (s *Server) checkpointSession(sess *session) (bool, error) {
	cp, ok := sess.gov.(governor.Checkpointer)
	if !ok || s.opt.CheckpointDir == "" {
		return false, nil
	}
	var buf bytes.Buffer
	sess.mu.Lock()
	epochs := sess.epochs
	err := cp.SaveState(&buf)
	sess.mu.Unlock()
	if epochs == 0 {
		return false, nil // nothing observed yet; keep any prior file
	}
	if err != nil {
		return false, fmt.Errorf("serve: freezing %s: %w", sess.id, err)
	}
	if err := atomicWrite(s.statePath(sess.id), buf.Bytes()); err != nil {
		return false, fmt.Errorf("serve: writing %s checkpoint: %w", sess.id, err)
	}
	return true, nil
}

func (s *Server) statePath(id string) string {
	return filepath.Join(s.opt.CheckpointDir, id+".state")
}

func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".state-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// idPattern keeps session ids shell- and filename-safe: they become
// checkpoint file names.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

// createSession builds, optionally calibrates and warm-starts, and
// registers a session. It returns an HTTP status on failure.
func (s *Server) createSession(req createRequest) (*session, int, error) {
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("s%d", s.nextID.Add(1))
	}
	if !idPattern.MatchString(id) {
		return nil, 400, fmt.Errorf("session id %q must match %s", id, idPattern)
	}
	if req.Governor == "" {
		return nil, 400, fmt.Errorf("governor is required (one of %v)", governor.Names())
	}
	if req.Governor == "oracle" {
		return nil, 400, fmt.Errorf("the oracle is offline by definition (it needs the whole trace); it cannot serve online")
	}
	gov, err := governor.ByName(req.Governor)
	if err != nil {
		return nil, 400, err
	}

	platName := req.Platform
	if platName == "" {
		platName = s.opt.DefaultPlatform
	}
	plat, err := scenario.PlatformByName(platName)
	if err != nil {
		return nil, 400, err
	}
	cluster := plat.NewCluster(req.Seed)

	periodS := req.PeriodS
	if periodS == 0 {
		periodS = s.opt.DefaultPeriodS
	}
	if !(periodS > 0) || periodS != periodS {
		return nil, 400, fmt.Errorf("period_s %v must be positive", req.PeriodS)
	}

	if len(req.CalibrationCC) > 0 {
		rtm, ok := gov.(*core.RTM)
		if !ok {
			return nil, 400, fmt.Errorf("governor %s does not take a workload calibration", req.Governor)
		}
		if err := rtm.Calibrate(req.CalibrationCC); err != nil {
			return nil, 400, err
		}
	}

	if len(req.State) > 0 {
		if err := scenario.WarmStart(gov, bytes.NewReader(req.State)); err != nil {
			return nil, 400, err
		}
	} else if s.opt.CheckpointDir != "" {
		// A session re-created under its old id resumes its learnt policy.
		if f, err := os.Open(s.statePath(id)); err == nil {
			err = scenario.WarmStart(gov, f)
			f.Close()
			if err != nil {
				return nil, 500, fmt.Errorf("warm-starting %s from checkpoint: %w", id, err)
			}
			s.logf("serve: session %s warm-started from %s", id, s.statePath(id))
		}
	}

	sess := &session{
		id:       id,
		govName:  req.Governor,
		platName: platName,
		periodS:  periodS,
		seed:     req.Seed,
		gov:      gov,
		table:    cluster.Table(),
		cores:    cluster.NumCores(),
		lat:      stats.NewHistogram(0, latHistHiUS, latHistBins),
	}
	if err := resetGovernor(sess); err != nil {
		return nil, 400, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 503, fmt.Errorf("server is shutting down")
	}
	if _, dup := s.sessions[id]; dup {
		return nil, 409, fmt.Errorf("session %q already exists", id)
	}
	s.sessions[id] = sess
	return sess, 0, nil
}

// resetGovernor runs the governor's Reset, converting the panic a
// dimension-mismatched checkpoint raises (the Config.Transfer contract)
// into an error the API can return.
func resetGovernor(sess *session) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("resetting governor: %v", r)
		}
	}()
	sess.gov.Reset(governor.Context{
		Table:    sess.table,
		NumCores: sess.cores,
		PeriodS:  sess.periodS,
		Seed:     sess.seed,
	})
	return nil
}

func (s *Server) session(id string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

// sessionFor is the byte-keyed twin of session for the binary transport:
// looking a []byte key up in a string map compiles without a conversion
// allocation, keeping the TCP decode→decide path allocation-free.
func (s *Server) sessionFor(id []byte) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[string(id)]
}

func (s *Server) deleteSession(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	return true
}

// decide serialises one decision on the session and records its latency
// (µs under the session lock, the figure /v1/metrics reports). Governor
// panics (a malformed observation hitting a harness-bug assertion) are
// contained per call so one bad request cannot take the server down.
func (sess *session) decide(obs governor.Observation) (idx int, err error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("governor rejected the observation: %v", r)
		}
		sess.lat.Add(float64(time.Since(start)) / float64(time.Microsecond))
	}()
	idx = sess.gov.Decide(obs)
	sess.epochs++
	return idx, nil
}
