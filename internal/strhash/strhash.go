// Package strhash is the deterministic string hash shared by the
// placement layers: FNV-1a chaining with a splitmix64 finalizer. The
// session store's shard index and the consistent-hash ring must agree
// on nothing — each hashes independently — but both need the same
// properties: identical results on every platform and process (ring
// placement is coordination-free across routers), byte-slice and string
// forms that hash identically without conversion allocations (the
// binary transport's decode buffers), and full avalanche even on
// short, shared-prefix inputs like "cluster-0"/"cluster-1" (raw FNV
// leaves such inputs' hashes affinely related, which skews shard and
// ring shares badly).
package strhash

// FNV-1a parameters.
const (
	Seed  uint64 = 14695981039346656037
	prime uint64 = 1099511628211
)

// String hashes s: FNV-1a from Seed, finalized.
func String(s string) uint64 { return Mix(AddString(Seed, s)) }

// Bytes hashes b identically to String(string(b)), allocation-free.
func Bytes(b []byte) uint64 { return Mix(AddBytes(Seed, b)) }

// AddString chains s into h without finalizing (for callers composing
// multi-part keys; finish with Mix).
func AddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// AddBytes chains b into h without finalizing.
func AddBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// AddU32 chains v's big-endian bytes into h without finalizing.
func AddU32(h uint64, v uint32) uint64 {
	for shift := 24; shift >= 0; shift -= 8 {
		h ^= uint64(byte(v >> shift))
		h *= prime
	}
	return h
}

// Mix is the splitmix64 finalizer: full avalanche, so low bits (shard
// masks) and ring ordering are uniform however similar the inputs.
func Mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
