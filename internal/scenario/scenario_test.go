package scenario

import (
	"strings"
	"testing"

	"qgov/internal/governor"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

func TestNamesIsFullCrossProduct(t *testing.T) {
	names := Names()
	want := len(Governors()) * len(workload.Names()) * len(Platforms())
	if len(names) != want {
		t.Fatalf("Names() = %d entries, want %d (the registry cross product)", len(names), want)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate scenario %q", n)
		}
		seen[n] = true
		if _, err := Get(n); err != nil {
			t.Fatalf("enumerated scenario %q does not resolve: %v", n, err)
		}
	}
}

func TestGetRejectsBadNames(t *testing.T) {
	for _, bad := range []string{
		"", "rtm", "rtm/h264-football", "rtm/h264-football/a15/extra",
		"nosuch/h264-football/a15", "rtm/nosuch/a15", "rtm/h264-football/nosuch",
		"//", "rtm//a15",
	} {
		if _, err := Get(bad); err == nil {
			t.Errorf("Get(%q) accepted", bad)
		}
	}
}

func TestGovernorsIncludeOracleAndRegistry(t *testing.T) {
	govs := Governors()
	hasOracle := false
	for _, g := range govs {
		if g == "oracle" {
			hasOracle = true
		}
	}
	if !hasOracle {
		t.Fatal("oracle missing from scenario governors")
	}
	if len(govs) != len(governor.Names())+1 {
		t.Fatalf("governors = %d, want registry (%d) + oracle", len(govs), len(governor.Names()))
	}
}

func TestMatchPatterns(t *testing.T) {
	all, err := Match("*/*/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Names()) {
		t.Fatalf("wildcard match %d, want %d", len(all), len(Names()))
	}

	rtmOnly, err := Match("rtm/*/a15")
	if err != nil {
		t.Fatal(err)
	}
	if len(rtmOnly) != len(workload.Names()) {
		t.Fatalf("rtm/*/a15 matched %d, want one per workload (%d)", len(rtmOnly), len(workload.Names()))
	}
	for _, s := range rtmOnly {
		if s.Governor != "rtm" || s.Platform != "a15" {
			t.Fatalf("rtm/*/a15 matched %v", s)
		}
	}

	if _, err := Match("nosuch/*/*"); err == nil {
		t.Fatal("empty match did not error")
	}
	if _, err := Match("not-a-pattern"); err == nil {
		t.Fatal("malformed pattern did not error")
	}
}

func TestConfigMaterialisesRunnableRuns(t *testing.T) {
	cases := []string{
		"rtm/mpeg4-30fps/a15",              // learner, calibrated
		"oracle/fft-32fps/a7",              // offline reference on the LITTLE cluster
		"ondemand/h264-15fps/a15-membound", // classic governor, memory-bound variant
	}
	for _, name := range cases {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := sc.Config(3, 60)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Cluster == nil || cfg.Governor == nil {
			t.Fatalf("%s: incomplete config", name)
		}
		res := sim.Run(cfg)
		if res.Frames != 60 || res.EnergyJ <= 0 {
			t.Fatalf("%s: bad run %+v", name, res)
		}
	}
}

func TestConfigsAreIndependentInstances(t *testing.T) {
	sc, err := Get("rtm/fft-32fps/a15")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Config(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Config(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.Governor == b.Governor {
		t.Fatal("two Configs share one governor instance — concurrent runs would race")
	}
	if a.Cluster == b.Cluster {
		t.Fatal("two Configs share one cluster instance — concurrent runs would race")
	}
}

func TestJobsOrderAndNaming(t *testing.T) {
	scenarios, err := Match("performance/fft-32fps/*")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Jobs(scenarios, []int64{1, 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(scenarios)*2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	// Scenario-major, seed-minor, with the seed visible in the name.
	if !strings.HasSuffix(jobs[0].Name, "@1") || !strings.HasSuffix(jobs[1].Name, "@2") {
		t.Fatalf("job names %q, %q", jobs[0].Name, jobs[1].Name)
	}
	results := sim.RunAll(jobs)
	for i, r := range results {
		if r == nil || r.Frames != 20 {
			t.Fatalf("job %d (%s) failed: %+v", i, jobs[i].Name, r)
		}
	}

	if _, err := Jobs([]Scenario{{Governor: "nosuch", Workload: "fft-32fps", Platform: "a15"}}, []int64{1}, 10); err == nil {
		t.Fatal("invalid scenario accepted by Jobs")
	}
}

func TestJobStreamFeedsSweep(t *testing.T) {
	scenarios, err := Match("powersave/fft-32fps/a15")
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 2, 3}
	var agg sim.Aggregator
	for ir := range sim.Stream(JobStream(scenarios, seeds, 15), 2) {
		agg.Add(ir.Result)
	}
	if agg.Count() != len(scenarios)*len(seeds) {
		t.Fatalf("streamed %d runs, want %d", agg.Count(), len(scenarios)*len(seeds))
	}
}

func TestBuildGovernorPreparesLearners(t *testing.T) {
	tr := workload.FFT32(1, 50)
	p, err := PlatformByName("a15")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGovernor("rtm", tr, p.PowerModel())
	if err != nil {
		t.Fatal(err)
	}
	// A calibrated RTM run must behave identically to the hand-built one;
	// the cheap proxy is that it runs without auto-ranging from scratch.
	res := sim.Run(sim.Config{Trace: tr, Governor: g, Seed: 1})
	if res.Frames != 50 {
		t.Fatal("calibrated learner failed to run")
	}
	if _, err := BuildGovernor("nosuch", tr, p.PowerModel()); err == nil {
		t.Fatal("unknown governor accepted")
	}
}
