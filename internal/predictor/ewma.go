package predictor

import "fmt"

// EWMA is the paper's workload predictor (Eq. 1):
//
//	CC_{i+1} = γ·actualCC_i + (1−γ)·predCC_i
//
// γ is the smoothing factor, experimentally determined as 0.6 in Section
// III-B. Until the first observation it predicts zero (no prior knowledge
// of the application, matching the RTM's cold start).
type EWMA struct {
	gamma  float64
	pred   float64
	primed bool
}

// NewEWMA creates the predictor. gamma must lie in (0, 1].
func NewEWMA(gamma float64) *EWMA {
	if gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("predictor: EWMA gamma %v outside (0,1]", gamma))
	}
	return &EWMA{gamma: gamma}
}

// Name implements Predictor.
func (e *EWMA) Name() string { return fmt.Sprintf("ewma(γ=%g)", e.gamma) }

// Gamma returns the smoothing factor.
func (e *EWMA) Gamma() float64 { return e.gamma }

// Predict implements Predictor.
func (e *EWMA) Predict() float64 { return e.pred }

// Observe implements Predictor. The first observation primes the filter
// directly (predicting zero forever after one sample would be a pure
// artifact of the zero prior).
func (e *EWMA) Observe(actual float64) {
	if !e.primed {
		e.pred = actual
		e.primed = true
		return
	}
	e.pred = e.gamma*actual + (1-e.gamma)*e.pred
}

// Reset implements Predictor.
func (e *EWMA) Reset() {
	e.pred = 0
	e.primed = false
}
