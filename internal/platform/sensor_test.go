package platform

import (
	"math"
	"testing"
)

func TestSensorMeasuresConstantPower(t *testing.T) {
	s := NewPowerSensor(1e-3, 42)
	s.NoiseSigmaW = 0 // isolate quantisation
	got := s.Measure([]PowerSegment{{PowerW: 3.0, Duration: 0.5}})
	if math.Abs(got-3.0) > s.ResolutionW {
		t.Fatalf("constant 3 W measured as %v", got)
	}
}

func TestSensorTracksTwoLevelTrajectory(t *testing.T) {
	s := NewPowerSensor(1e-4, 7)
	s.NoiseSigmaW = 0
	// 4 W for 30 ms then 1 W for 10 ms -> time-weighted mean 3.25 W.
	segs := []PowerSegment{{4, 0.030}, {1, 0.010}}
	got := s.Measure(segs)
	want := ExactAverage(segs)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("measured %v, exact %v", got, want)
	}
}

func TestSensorSubPeriodWindow(t *testing.T) {
	// Window much shorter than the sampling period: integrated fallback.
	s := NewPowerSensor(1.0, 3)
	s.NoiseSigmaW = 0
	got := s.Measure([]PowerSegment{{2.0, 1e-4}})
	if math.Abs(got-2.0) > s.ResolutionW {
		t.Fatalf("sub-period measurement = %v, want ≈2", got)
	}
}

func TestSensorNoiseIsZeroMean(t *testing.T) {
	s := NewPowerSensor(1e-4, 99)
	var acc float64
	const rounds = 200
	for i := 0; i < rounds; i++ {
		acc += s.Measure([]PowerSegment{{2.0, 0.01}})
	}
	mean := acc / rounds
	if math.Abs(mean-2.0) > 0.01 {
		t.Fatalf("noise not zero-mean: long-run average %v", mean)
	}
}

func TestSensorEmptyWindow(t *testing.T) {
	s := DefaultSensor(1)
	if got := s.Measure(nil); got != 0 {
		t.Fatalf("empty window measured %v, want 0", got)
	}
}

func TestSensorNegativeDurationPanics(t *testing.T) {
	s := DefaultSensor(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration must panic")
		}
	}()
	s.Measure([]PowerSegment{{1, -1}})
}

func TestSensorDeterministicBySeed(t *testing.T) {
	segs := []PowerSegment{{3, 0.02}, {1, 0.02}}
	a := NewPowerSensor(1e-3, 5).Measure(segs)
	b := NewPowerSensor(1e-3, 5).Measure(segs)
	if a != b {
		t.Fatalf("same seed, different measurements: %v vs %v", a, b)
	}
}

func TestExactAverage(t *testing.T) {
	segs := []PowerSegment{{4, 1}, {2, 3}}
	if got, want := ExactAverage(segs), 2.5; got != want {
		t.Fatalf("ExactAverage = %v, want %v", got, want)
	}
	if got := ExactAverage(nil); got != 0 {
		t.Fatalf("ExactAverage(nil) = %v, want 0", got)
	}
}

func TestSensorPhaseCarriesAcrossWindows(t *testing.T) {
	// With a 1 ms period and 0.4 ms windows, samples land in some windows
	// and not others; phase continuity means on average the sampling rate
	// is preserved. We simply check the sensor still produces sane values.
	s := NewPowerSensor(1e-3, 11)
	s.NoiseSigmaW = 0
	var acc float64
	for i := 0; i < 50; i++ {
		acc += s.Measure([]PowerSegment{{1.5, 4e-4}})
	}
	mean := acc / 50
	if math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("phase-carried mean = %v, want ≈1.5", mean)
	}
}
