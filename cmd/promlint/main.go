// Command promlint lints a Prometheus text exposition read from stdin
// (or a file argument) against the format contract — name validity,
// HELP/TYPE pairing, label escaping, histogram bucket cumulativity,
// duplicate series — and optionally bounds scrape cardinality and size.
// CI pipes a live rtmd's /v1/metrics through it so a malformed metric
// or an unbounded series explosion fails the build:
//
//	curl -s localhost:8090/v1/metrics?format=prometheus | promlint -max-series 200
//
// Exit status: 0 clean, 1 problems found or a bound exceeded, 2 usage
// or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qgov/internal/promlint"
)

func main() {
	maxSeries := flag.Int("max-series", 0, "fail when the exposition has more than this many series (0: unbounded)")
	maxBytes := flag.Int64("max-bytes", 0, "fail when the exposition is larger than this many bytes (0: unbounded)")
	quiet := flag.Bool("q", false, "suppress the summary line; print problems only")
	flag.Parse()

	var in io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintln(os.Stderr, "usage: promlint [-max-series N] [-max-bytes N] [file]")
		os.Exit(2)
	}

	rep, err := promlint.Lint(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(2)
	}
	for _, p := range rep.Problems {
		fmt.Println(p)
	}
	fail := len(rep.Problems) > 0
	if *maxSeries > 0 && rep.Series > *maxSeries {
		fmt.Printf("series budget exceeded: %d series > %d\n", rep.Series, *maxSeries)
		fail = true
	}
	if *maxBytes > 0 && rep.Bytes > *maxBytes {
		fmt.Printf("byte budget exceeded: %d bytes > %d\n", rep.Bytes, *maxBytes)
		fail = true
	}
	if !*quiet {
		fmt.Printf("promlint: %d series, %d bytes, %d problems\n", rep.Series, rep.Bytes, len(rep.Problems))
	}
	if fail {
		os.Exit(1)
	}
}
