package stats

import (
	"math"
	"runtime/metrics"
)

// RuntimeStats is one snapshot of the Go runtime's own health signals —
// the process-level telemetry every serving tier exposes beside its
// decision metrics, so an operator can tell a slow fleet apart from a
// GC-bound or goroutine-leaked one without attaching a profiler.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int64 `json:"goroutines"`
	// GCPauseP99S is the 99th-percentile stop-the-world GC pause, in
	// seconds, over the process lifetime.
	GCPauseP99S float64 `json:"gc_pause_p99_s"`
	// GCCycles counts completed GC cycles.
	GCCycles uint64 `json:"gc_cycles"`
	// HeapLiveBytes is the heap memory occupied by live objects plus
	// not-yet-swept spans — the closest runtime/metrics analogue of
	// "live heap".
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// SchedLatencyP99S is the 99th-percentile time goroutines spent
	// runnable before running, in seconds, over the process lifetime.
	SchedLatencyP99S float64 `json:"sched_latency_p99_s"`
}

// runtimeSamples is the fixed sample set ReadRuntime reads. Names that
// this Go version does not export simply report zero — the snapshot
// must never panic on a runtime revision skew.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/gc/pauses:seconds",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/live:bytes",
	"/sched/latencies:seconds",
}

// ReadRuntime samples the Go runtime metrics once. It allocates a small
// fixed amount and costs microseconds — fine on every metrics scrape,
// not meant for per-decision paths.
func ReadRuntime() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	var out RuntimeStats
	for _, s := range samples {
		if s.Value.Kind() == metrics.KindBad {
			continue
		}
		switch s.Name {
		case "/sched/goroutines:goroutines":
			out.Goroutines = int64(s.Value.Uint64())
		case "/gc/pauses:seconds":
			out.GCPauseP99S = histQuantile(s.Value.Float64Histogram(), 0.99)
		case "/gc/cycles/total:gc-cycles":
			out.GCCycles = s.Value.Uint64()
		case "/gc/heap/live:bytes":
			out.HeapLiveBytes = s.Value.Uint64()
		case "/sched/latencies:seconds":
			out.SchedLatencyP99S = histQuantile(s.Value.Float64Histogram(), 0.99)
		}
	}
	return out
}

// histQuantile estimates quantile q from a runtime Float64Histogram,
// reporting the upper bucket edge the rank falls under — pessimistic by
// up to one bucket, which is the right bias for a pause/latency alarm.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Buckets[i+1] is the bucket's upper edge; the final bucket's
			// +Inf edge falls back to its finite lower edge.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
