package platform

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestA15TableShape(t *testing.T) {
	table := A15Table()
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper: "19 V-F settings (2000 MHz – 200 MHz in 100 MHz steps)".
	if table.Len() != 19 {
		t.Fatalf("A15 table has %d OPPs, want 19", table.Len())
	}
	if table[0].FreqMHz != 200 || table[table.MaxIdx()].FreqMHz != 2000 {
		t.Fatalf("A15 range = %d..%d MHz, want 200..2000", table[0].FreqMHz, table[table.MaxIdx()].FreqMHz)
	}
	for i := 1; i < table.Len(); i++ {
		if table[i].FreqMHz-table[i-1].FreqMHz != 100 {
			t.Fatalf("A15 step at %d is %d MHz, want 100", i, table[i].FreqMHz-table[i-1].FreqMHz)
		}
	}
}

func TestA7TableValid(t *testing.T) {
	if err := A7Table().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := A7Table().Len(); got != 13 {
		t.Fatalf("A7 table has %d OPPs, want 13", got)
	}
}

func TestOPPTableValidateRejects(t *testing.T) {
	cases := map[string]OPPTable{
		"empty":              {},
		"zero freq":          {{0, 1.0}},
		"zero voltage":       {{100, 0}},
		"descending freq":    {{200, 0.9}, {100, 0.9}},
		"duplicate freq":     {{200, 0.9}, {200, 0.95}},
		"descending voltage": {{100, 1.0}, {200, 0.9}},
	}
	for name, table := range cases {
		if err := table.Validate(); err == nil {
			t.Errorf("Validate(%s) accepted invalid table", name)
		}
	}
}

func TestIndexOfMHz(t *testing.T) {
	table := A15Table()
	if got := table.IndexOfMHz(1400); got != 12 {
		t.Errorf("IndexOfMHz(1400) = %d, want 12", got)
	}
	if got := table.IndexOfMHz(1450); got != -1 {
		t.Errorf("IndexOfMHz(1450) = %d, want -1", got)
	}
}

func TestCeilIdx(t *testing.T) {
	table := A15Table()
	cases := []struct {
		hz   float64
		want int
	}{
		{0, 0},
		{150e6, 0},
		{200e6, 0},
		{201e6, 1},
		{999e6, 8}, // 1000 MHz is index 8
		{1000e6, 8},
		{2000e6, 18},
		{9e9, 18}, // beyond the table: fastest
	}
	for _, c := range cases {
		if got := table.CeilIdx(c.hz); got != c.want {
			t.Errorf("CeilIdx(%.0f) = %d, want %d", c.hz, got, c.want)
		}
	}
}

func TestClampIdx(t *testing.T) {
	table := A15Table()
	if got := table.Clamp(-3); got != 0 {
		t.Errorf("Clamp(-3) = %d", got)
	}
	if got := table.Clamp(100); got != 18 {
		t.Errorf("Clamp(100) = %d", got)
	}
	if got := table.Clamp(7); got != 7 {
		t.Errorf("Clamp(7) = %d", got)
	}
}

func TestNormFreq(t *testing.T) {
	table := A15Table()
	if got := table.NormFreq(0); got != 0 {
		t.Errorf("NormFreq(min) = %v, want 0", got)
	}
	if got := table.NormFreq(18); got != 1 {
		t.Errorf("NormFreq(max) = %v, want 1", got)
	}
	mid := table.NormFreq(9) // 1100 MHz in 200..2000
	if want := 0.5; mid != want {
		t.Errorf("NormFreq(9) = %v, want %v", mid, want)
	}
	single := OPPTable{{500, 1.0}}
	if got := single.NormFreq(0); got != 1 {
		t.Errorf("NormFreq on single-entry table = %v, want 1", got)
	}
}

func TestOPPString(t *testing.T) {
	s := OPP{1400, 1.125}.String()
	if !strings.Contains(s, "1400MHz") || !strings.Contains(s, "1.125V") {
		t.Fatalf("OPP.String() = %q", s)
	}
}

// Property: NormFreq is monotone non-decreasing in the index and stays in
// [0,1] for any index, including out-of-range ones (which clamp).
func TestNormFreqMonotoneProperty(t *testing.T) {
	table := A15Table()
	f := func(rawA, rawB int8) bool {
		a, b := int(rawA), int(rawB)
		na, nb := table.NormFreq(a), table.NormFreq(b)
		if na < 0 || na > 1 || nb < 0 || nb > 1 {
			return false
		}
		if table.Clamp(a) <= table.Clamp(b) {
			return na <= nb
		}
		return na >= nb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
