// Package client speaks the rtmd binary wire protocol: persistent
// multiplexed TCP connections carrying observe→decide frames plus the
// control plane (session create, checkpoint, delete, info, metrics,
// list) as control frames. Many goroutines may share one Client —
// requests are tagged with ids, writes of a batch coalesce into one
// flush, and a reader goroutine per connection routes responses back to
// their callers. The router drives every replica through one Client;
// the serve benchmarks and the cross-transport equivalence tests drive
// their sessions through it too.
//
// A Client holds DialOptions.Conns TCP connections to its endpoint
// (default 1). Batches stripe across the connections round-robin — on
// big-core-count hosts one stream's write mutex and single reader
// serialise at the socket, and sharding removes that ceiling — while
// control frames always travel on the first connection.
//
// Ordering: frames written on one connection are executed by the server
// in write order, with control frames acting as barriers — a Control
// create issued before a Decide for the same session is applied first
// (controls and any following calls from the same goroutine are safe
// with Conns > 1 too, because every call blocks until the server has
// answered it). Two concurrent calls on different connections have no
// relative order, exactly like two concurrent calls on one connection.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qgov/internal/governor"
	"qgov/internal/wire"
)

// Decision is one answered request. Err mirrors the per-entry error of
// the JSON batch API: non-empty means this request failed (unknown
// session, rejected observation) while others in the batch may have
// succeeded.
type Decision struct {
	OPPIdx  int
	FreqMHz int
	Err     string
}

// Request ids pack a batch handle and an index: the high 20 bits name
// the DecideBatch call, the low 12 its entry. One routing-table insert
// covers a whole batch, so the per-decision client cost is a shared-map
// read — not an insert/delete pair — which matters at 500k decisions/s.
// Handles are scoped per connection: replies arrive on the connection
// that carried the request, so two connections may use the same handle
// concurrently without ambiguity.
const (
	indexBits = 12
	// MaxBatch bounds one DecideBatch call (it must fit the index bits);
	// it equals the server's per-fan-out coalescing limit.
	MaxBatch = 1 << indexBits
)

// batchCall tracks one DecideBatch in flight. The reader fills out
// entries as frames arrive (any order) and closes done when the last
// one lands. answered is a bitset over out: a duplicate of an
// already-answered id is dropped instead of decrementing remaining a
// second time — otherwise a hostile or buggy server could close the
// batch early and unfilled entries would come back as zero-valued
// decisions, indistinguishable from the real thing.
type batchCall struct {
	out       []Decision
	answered  []uint64
	remaining int
	done      chan struct{}
}

// DefaultTimeout bounds one round trip (batch or control) on a Client
// when neither DialOptions.Timeout nor the Timeout field set one: a
// server that stops answering — hung process, blackholed network with
// the TCP session still open — must surface as a transport error, not
// wedge every caller forever. A router holds its membership lock across
// these waits, so an unbounded hang there would stall a whole fleet. A
// healthy replica answers in microseconds; 30 s only ever fires on a
// genuinely stuck peer.
const DefaultTimeout = 30 * time.Second

// Client is a multiplexed client of an rtmd binary listener, holding
// one or more TCP connections to it.
type Client struct {
	// Timeout bounds each round trip; 0 selects DefaultTimeout and a
	// negative value disables the bound. DialOptions.Timeout seeds it;
	// set before sharing the client.
	Timeout time.Duration

	conns []*conn
	next  atomic.Uint32 // round-robin batch striping across conns

	// lastEpoch is the highest membership epoch seen in any decide reply
	// on any connection (monotonic; 0 until a fleet replica answers).
	lastEpoch atomic.Uint32
}

// conn is one TCP connection of a Client: its write half, its pending
// request tables, and its sticky transport error. Request routing is
// per connection — the server answers on the connection a request
// arrived on — so connections fail independently: a poisoned conn
// releases only its own waiters.
type conn struct {
	cl *Client
	nc net.Conn

	// wmu serialises the write half: frame encoding into enc and the
	// buffered writer.
	wmu sync.Mutex
	bw  *bufio.Writer
	enc []byte

	// mu guards the routing tables and the sticky transport error.
	mu          sync.Mutex
	pending     map[uint32]*batchCall // keyed by batch handle (id >> indexBits)
	pendingCtrl map[uint32]*ctrlCall  // keyed by full control request id
	nextBatch   uint32
	nextCtrl    uint32
	err         error

	readerDone chan struct{}
}

// ctrlCall tracks one Control round trip. The reader copies the reply
// out (the frame buffer is reused) and closes done.
type ctrlCall struct {
	status uint16
	body   []byte
	done   chan struct{}
}

// DialOptions tunes a Client connection.
type DialOptions struct {
	// Conns is the number of TCP connections to hold to the endpoint;
	// <= 0 selects 1. Batches stripe across them round-robin; controls
	// stay on the first.
	Conns int
	// Timeout seeds Client.Timeout: the per-round-trip bound. 0 selects
	// DefaultTimeout; negative disables the bound.
	Timeout time.Duration
}

// Dial connects to an rtmd -listen-tcp address with default options
// (one connection).
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, DialOptions{})
}

// DialOpts connects to an rtmd -listen-tcp address, opening
// opt.Conns connections.
func DialOpts(addr string, opt DialOptions) (*Client, error) {
	n := opt.Conns
	if n < 1 {
		n = 1
	}
	c := &Client{Timeout: opt.Timeout, conns: make([]*conn, 0, n)}
	for i := 0; i < n; i++ {
		nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			c.Close()
			return nil, err
		}
		cn := &conn{
			cl:          c,
			nc:          nc,
			bw:          bufio.NewWriterSize(nc, 64<<10),
			pending:     make(map[uint32]*batchCall),
			pendingCtrl: make(map[uint32]*ctrlCall),
			readerDone:  make(chan struct{}),
		}
		c.conns = append(c.conns, cn)
		go cn.readLoop()
	}
	return c, nil
}

// NumConns returns how many TCP connections the client holds.
func (c *Client) NumConns() int { return len(c.conns) }

// pick selects the connection for the next batch: round-robin across
// the conns, so concurrent batches spread over all sockets.
func (c *Client) pick() *conn {
	if len(c.conns) == 1 {
		return c.conns[0]
	}
	return c.conns[int(c.next.Add(1))%len(c.conns)]
}

// ctrlConn is the connection control frames travel on. Pinning them to
// one connection preserves the single-conn barrier ordering for any
// caller that writes control frames back to back.
func (c *Client) ctrlConn() *conn { return c.conns[0] }

// Err returns the client's sticky transport error — nil while every
// connection is healthy. Once non-nil the client is degraded (calls
// striped onto the failed connection error); the owner should redial.
func (c *Client) Err() error {
	for _, cn := range c.conns {
		cn.mu.Lock()
		err := cn.err
		cn.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close tears every connection down; in-flight requests fail with a
// transport error.
func (c *Client) Close() error {
	var firstErr error
	for _, cn := range c.conns {
		if err := cn.nc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, cn := range c.conns {
		<-cn.readerDone
	}
	return firstErr
}

// CloseWrite half-closes every connection: the server sees end of
// stream, drains what it already received, answers, and closes. Callers
// read their remaining responses through in-flight DecideBatch calls.
func (c *Client) CloseWrite() error {
	var firstErr error
	for _, cn := range c.conns {
		cn.wmu.Lock()
		err := cn.bw.Flush()
		if err == nil {
			if tc, ok := cn.nc.(*net.TCPConn); ok {
				err = tc.CloseWrite()
			} else {
				err = errors.New("client: connection does not support half-close")
			}
		}
		cn.wmu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Decide serves one observation for one session and returns the
// operating-point decision.
func (c *Client) Decide(session string, obs governor.Observation) (Decision, error) {
	var out [1]Decision
	if err := decideBatch(c, []string{session}, []governor.Observation{obs}, out[:], 0, nil); err != nil {
		return Decision{}, err
	}
	return out[0], nil
}

// DecideBatch serves one observation per session — the binary twin of
// POST /v1/decide. All frames are written under one flush; the call
// returns when every response has arrived, filling out[i] for
// sessions[i]. A returned error is transport-level and poisons the
// carrying connection; per-request failures land in out[i].Err instead.
func (c *Client) DecideBatch(sessions []string, obs []governor.Observation, out []Decision) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs)",
			len(sessions), len(obs), len(out))
	}
	if len(sessions) == 0 {
		return nil
	}
	return decideBatch(c, sessions, obs, out, 0, nil)
}

// DecideBatchTraced is DecideBatch with per-request trace ids: a
// nonzero traces[i] rides request i as the wire trace extension, so the
// server's decide span stitches to the caller's trace. traces may be
// nil (all untraced); zero entries leave their requests untraced.
func (c *Client) DecideBatchTraced(sessions []string, obs []governor.Observation, out []Decision, traces []uint64) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) || (traces != nil && len(traces) != len(sessions)) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs, %d traces)",
			len(sessions), len(obs), len(out), len(traces))
	}
	if len(sessions) == 0 {
		return nil
	}
	return decideBatch(c, sessions, obs, out, 0, traces)
}

// DecideBatchBytes is DecideBatch for callers that already hold session
// ids as bytes — a router regrouping decoded frames by ring owner skips
// one string conversion per decision on its hot path.
func (c *Client) DecideBatchBytes(sessions [][]byte, obs []governor.Observation, out []Decision) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs)",
			len(sessions), len(obs), len(out))
	}
	if len(sessions) == 0 {
		return nil
	}
	return decideBatch(c, sessions, obs, out, 0, nil)
}

// ForwardBatch relays observes that arrived at the wrong replica to the
// ring owner on behalf of a stale direct client. Each frame carries
// wire.FlagForwarded, so the receiver answers locally even if its own
// table disagrees — bounding transient membership disagreement to one
// extra hop instead of a forwarding loop. traces carries per-request
// trace ids (nil or zero entries: untraced), so a traced decide that
// misroutes keeps its trace across the forward hop.
func (c *Client) ForwardBatch(sessions [][]byte, obs []governor.Observation, out []Decision, traces []uint64) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) || (traces != nil && len(traces) != len(sessions)) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs, %d traces)",
			len(sessions), len(obs), len(out), len(traces))
	}
	if len(sessions) == 0 {
		return nil
	}
	return decideBatch(c, sessions, obs, out, wire.FlagForwarded, traces)
}

// LastMemberEpoch returns the highest membership epoch observed in any
// decide reply on this client — 0 until a fleet replica has answered. A
// Fleet compares it against its own table's epoch to detect a ring
// change from the data plane alone.
func (c *Client) LastMemberEpoch() uint32 { return c.lastEpoch.Load() }

// reserve claims a batch handle on this connection and publishes bc
// under it, before any frame can be answered. Handles wrap after 2^20
// batches; a handle whose previous holder is still waiting (a slow
// batch outliving 2^20 successors) is skipped — overwriting it would
// strand that waiter until timeout and misroute its replies into the
// new batch.
func (cn *conn) reserve(bc *batchCall) (uint32, error) {
	const handleMask = 1<<(32-indexBits) - 1
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.err != nil {
		return 0, cn.err
	}
	handle := cn.nextBatch & handleMask
	for cn.pending[handle] != nil {
		if len(cn.pending) > handleMask {
			return 0, fmt.Errorf("client: all %d batch handles in flight", handleMask+1)
		}
		cn.nextBatch++
		handle = cn.nextBatch & handleMask
	}
	cn.nextBatch++
	cn.pending[handle] = bc
	return handle, nil
}

// unreserve abandons a handle whose frames never made it onto the wire.
func (cn *conn) unreserve(handle uint32) {
	cn.mu.Lock()
	delete(cn.pending, handle)
	cn.mu.Unlock()
}

func decideBatch[S string | []byte](c *Client, sessions []S, obs []governor.Observation, out []Decision, flags byte, traces []uint64) error {
	n := len(sessions)
	if n > MaxBatch {
		return fmt.Errorf("client: batch of %d exceeds the %d-request limit", n, MaxBatch)
	}
	cn := c.pick()
	bc := &batchCall{
		out:       out,
		answered:  make([]uint64, (n+63)/64),
		remaining: n,
		done:      make(chan struct{}),
	}
	handle, err := cn.reserve(bc)
	if err != nil {
		return err
	}
	base := handle << indexBits

	// Encode every frame and flush once.
	cn.wmu.Lock()
	for i := 0; i < n && err == nil; i++ {
		var trace uint64
		if traces != nil {
			trace = traces[i]
		}
		cn.enc, err = wire.AppendObserveTraced(cn.enc[:0], base|uint32(i), flags, trace, sessions[i], &obs[i])
		if err == nil {
			_, err = cn.bw.Write(cn.enc)
		}
	}
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		cn.unreserve(handle)
		return err
	}

	return finishBatch(c, cn, bc)
}

// finishBatch waits a dispatched batch out and reports a mid-batch
// transport failure (fail() released the waiter with entries missing).
func finishBatch(c *Client, cn *conn, bc *batchCall) error {
	if err := c.wait(cn, bc.done); err != nil {
		return err
	}
	cn.mu.Lock()
	err := cn.err
	cn.mu.Unlock()
	if bc.remaining != 0 { // released by fail(), not by the last response
		return fmt.Errorf("client: transport failed mid-batch: %w", err)
	}
	return nil
}

// Relay is one in-flight relayed batch started with StartRelay: the
// frames are on the wire and the replies are being collected by the
// connection's reader. Wait blocks until the batch completes.
type Relay struct {
	c  *Client
	cn *conn
	bc *batchCall
}

// StartRelay forwards already-encoded MsgObserve payloads to the server
// and returns without waiting for the replies — the asynchronous,
// zero-copy half of the router's relay path. Each payload's request id
// is rewritten in place to this batch's id space (payloads[i] answers
// into out[i]); nothing else in the payload is read or re-encoded, so
// the observation bytes travel through the relay untouched. The caller
// must keep payloads and out alive and unmodified until Wait returns.
//
// Several relays may be in flight on one Client concurrently — that is
// the point: fan-out to one replica overlaps reply collection from
// another, and with Conns > 1 the batches stripe across sockets too.
func (c *Client) StartRelay(payloads [][]byte, out []Decision) (*Relay, error) {
	n := len(payloads)
	if n != len(out) {
		return nil, fmt.Errorf("client: mismatched relay slices (%d payloads, %d outputs)", n, len(out))
	}
	if n > MaxBatch {
		return nil, fmt.Errorf("client: batch of %d exceeds the %d-request limit", n, MaxBatch)
	}
	cn := c.pick()
	bc := &batchCall{
		out:       out,
		answered:  make([]uint64, (n+63)/64),
		remaining: n,
		done:      make(chan struct{}),
	}
	if n == 0 {
		close(bc.done)
		return &Relay{c: c, cn: cn, bc: bc}, nil
	}
	handle, err := cn.reserve(bc)
	if err != nil {
		return nil, err
	}
	base := handle << indexBits

	cn.wmu.Lock()
	for i := 0; i < n && err == nil; i++ {
		if err = wire.SetObserveID(payloads[i], base|uint32(i)); err != nil {
			break
		}
		cn.enc, err = wire.AppendFrame(cn.enc[:0], wire.MsgObserve, payloads[i])
		if err == nil {
			_, err = cn.bw.Write(cn.enc)
		}
	}
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		cn.unreserve(handle)
		return nil, err
	}
	return &Relay{c: c, cn: cn, bc: bc}, nil
}

// Wait blocks until every reply of the relayed batch has arrived
// (landing in the out slice given to StartRelay) or the carrying
// connection fails. Like DecideBatch, a returned error is
// transport-level; per-request failures land in out[i].Err.
func (r *Relay) Wait() error {
	return finishBatch(r.c, r.cn, r.bc)
}

// timerPool recycles round-trip timers: wait runs once per batch or
// control round trip, and allocating a fresh timer each time is
// measurable churn at hundreds of thousands of round trips per second.
var timerPool = sync.Pool{New: func() any { return time.NewTimer(time.Hour) }}

// wait blocks on done up to the client's timeout. On expiry it cuts the
// carrying connection — its reader then fails every waiter on that conn
// (including this one), so a poisoned connection degrades to per-call
// transport errors instead of unbounded hangs.
func (c *Client) wait(cn *conn, done <-chan struct{}) error {
	d := c.Timeout
	if d == 0 {
		d = DefaultTimeout
	}
	if d < 0 {
		<-done
		return nil
	}
	t := timerPool.Get().(*time.Timer)
	t.Reset(d)
	defer func() {
		t.Stop()
		timerPool.Put(t)
	}()
	select {
	case <-done:
		return nil
	case <-t.C:
		cn.nc.Close()
		<-done // released by fail() once the reader sees the closed conn
		return fmt.Errorf("client: no response within %v; connection dropped", d)
	}
}

// Control runs one control-plane operation (a wire.Op* constant) against
// the server and returns its HTTP-vocabulary status code and JSON body.
// The returned body is the caller's to keep. A returned error is
// transport-level and poisons the control connection; application
// failures (unknown session, invalid create) come back as non-2xx
// statuses with an {"error": ...} body, exactly like the HTTP control
// plane.
func (c *Client) Control(op byte, session string, body []byte) (int, []byte, error) {
	cn := c.ctrlConn()
	cc := &ctrlCall{done: make(chan struct{})}

	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return 0, nil, err
	}
	id := cn.nextCtrl
	cn.nextCtrl++
	cn.pendingCtrl[id] = cc
	cn.mu.Unlock()

	cn.wmu.Lock()
	var err error
	cn.enc, err = wire.AppendControl(cn.enc[:0], id, op, session, body)
	if err == nil {
		if _, err = cn.bw.Write(cn.enc); err == nil {
			err = cn.bw.Flush()
		}
	}
	cn.wmu.Unlock()
	if err != nil {
		cn.mu.Lock()
		delete(cn.pendingCtrl, id)
		cn.mu.Unlock()
		return 0, nil, err
	}

	if err := c.wait(cn, cc.done); err != nil {
		return 0, nil, err
	}
	cn.mu.Lock()
	err = cn.err
	cn.mu.Unlock()
	if cc.status == 0 { // released by fail(), not by a reply
		return 0, nil, fmt.Errorf("client: transport failed mid-control: %w", err)
	}
	return int(cc.status), cc.body, nil
}

// CreateSession creates a session from a JSON create-request body and
// returns the session-info JSON.
func (c *Client) CreateSession(body []byte) (int, []byte, error) {
	return c.Control(wire.OpCreate, "", body)
}

// CheckpointSession freezes the session's learnt state now; the reply
// body carries {"session": ..., "state": ...}.
func (c *Client) CheckpointSession(id string) (int, []byte, error) {
	return c.Control(wire.OpCheckpoint, id, nil)
}

// DeleteSession drops the session and its checkpoint.
func (c *Client) DeleteSession(id string) (int, []byte, error) {
	return c.Control(wire.OpDelete, id, nil)
}

// SessionInfo returns the session's info JSON.
func (c *Client) SessionInfo(id string) (int, []byte, error) {
	return c.Control(wire.OpInfo, id, nil)
}

// Metrics returns the server's /v1/metrics JSON.
func (c *Client) Metrics() (int, []byte, error) {
	return c.Control(wire.OpMetrics, "", nil)
}

// ListSessions returns the JSON array of every session's info.
func (c *Client) ListSessions() (int, []byte, error) {
	return c.Control(wire.OpList, "", nil)
}

// Health returns the server's /healthz JSON (O(1) on the server).
func (c *Client) Health() (int, []byte, error) {
	return c.Control(wire.OpHealth, "", nil)
}

// Members fetches the server's membership table (a wire.Members JSON
// document; epoch 0 with no members from a flat server outside any
// fleet).
func (c *Client) Members() (int, []byte, error) {
	return c.Control(wire.OpMembers, "", nil)
}

// TraceSpans fetches recent decide-path spans from the server's trace
// ring. filter is the JSON filter document (/v1/trace's query params:
// min_us, session, trace, limit); nil fetches everything. The reply
// body is the JSON span array — how a router stitches fleet-wide traces
// over the binary control plane.
func (c *Client) TraceSpans(filter []byte) (int, []byte, error) {
	return c.Control(wire.OpTrace, "", filter)
}

func (cn *conn) readLoop() {
	defer close(cn.readerDone)
	r := wire.NewReader(cn.nc)
	var m wire.Decide
	var cm wire.ControlReply
	for {
		typ, payload, err := r.Next()
		if err != nil {
			cn.fail(err)
			return
		}
		switch typ {
		case wire.MsgDecide:
			if err := m.Decode(payload); err != nil {
				cn.fail(err)
				return
			}
			// Track the server's membership epoch monotonically; replies
			// may be routed to this point from frames decoded in any order.
			for {
				cur := cn.cl.lastEpoch.Load()
				if m.MemberEpoch <= cur || cn.cl.lastEpoch.CompareAndSwap(cur, m.MemberEpoch) {
					break
				}
			}
			handle, idx := m.ID>>indexBits, int(m.ID&(MaxBatch-1))
			cn.mu.Lock()
			bc := cn.pending[handle]
			if bc == nil {
				// A decide for a batch we never issued (or one already fully
				// answered): the stream is inconsistent — request ids are
				// ours, a correct server only ever echoes them back once.
				cn.mu.Unlock()
				cn.fail(fmt.Errorf("client: decide for unknown batch (id %#x)", m.ID))
				return
			}
			if idx >= len(bc.out) {
				cn.mu.Unlock()
				cn.fail(fmt.Errorf("client: decide index %d beyond batch of %d (id %#x)", idx, len(bc.out), m.ID))
				return
			}
			if bc.answered[idx/64]&(1<<(idx%64)) != 0 {
				// Duplicate of an already-answered id: the first answer
				// stands. Decrementing remaining again would close the batch
				// early and return zero-valued decisions for entries never
				// answered at all.
				cn.mu.Unlock()
				continue
			}
			bc.answered[idx/64] |= 1 << (idx % 64)
			d := &bc.out[idx]
			d.OPPIdx = int(m.OPPIdx)
			d.FreqMHz = int(m.FreqMHz)
			if len(m.Err) > 0 {
				d.Err = string(m.Err)
			} else {
				d.Err = ""
			}
			bc.remaining--
			if bc.remaining == 0 {
				delete(cn.pending, handle)
				close(bc.done)
			}
			cn.mu.Unlock()
		case wire.MsgControlReply:
			if err := cm.Decode(payload); err != nil {
				cn.fail(err)
				return
			}
			cn.mu.Lock()
			cc := cn.pendingCtrl[cm.ID]
			if cc != nil {
				delete(cn.pendingCtrl, cm.ID)
				cc.status = cm.Status
				cc.body = append([]byte(nil), cm.Body...) // the frame buffer is reused
				close(cc.done)
			}
			cn.mu.Unlock()
		default:
			cn.fail(fmt.Errorf("client: unexpected frame type 0x%02x", typ))
			return
		}
	}
}

// fail records the connection's transport error and releases every
// waiter on this connection. Other connections of the same Client are
// untouched — their batches complete normally.
func (cn *conn) fail(err error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.err == nil {
		cn.err = err
	}
	for handle, bc := range cn.pending {
		delete(cn.pending, handle)
		close(bc.done)
	}
	for id, cc := range cn.pendingCtrl {
		delete(cn.pendingCtrl, id)
		close(cc.done)
	}
}
