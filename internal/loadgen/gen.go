package loadgen

import (
	"container/heap"
	"fmt"

	"qgov/internal/governor"
	"qgov/internal/strhash"
	"qgov/internal/xrand"
)

// Op is a schedule event kind.
type Op uint8

const (
	// OpCreate creates the event's session.
	OpCreate Op = iota
	// OpDecide sends one observation to the session.
	OpDecide
	// OpDelete deletes the session.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpDecide:
		return "decide"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one scheduled action. Create events carry the session
// parameters; decide events carry a fully synthesized observation (so a
// recorded trace is self-contained and replays byte-identically without
// the generator).
type Event struct {
	AtS     float64
	Op      Op
	Session string

	// Create-only fields.
	Governor string
	Platform string
	PeriodS  float64
	Seed     int64

	// Decide-only field.
	Obs governor.Observation
}

// Stream yields schedule events in time order. Next returns ok=false
// when the schedule is exhausted; err is non-nil only for replay sources
// that can encounter malformed input.
type Stream interface {
	Next() (Event, bool, error)
}

// defaultPeriodS mirrors the serve default (25 fps) so a spec that
// omits period_s generates observations consistent with the sessions it
// creates.
const defaultPeriodS = 0.040

// client phases.
const (
	phaseCreate = iota // next emission creates the session
	phaseLive          // session live; next emission decides or deletes
	phaseDone          // past the horizon; no more events
)

// clientState is one client's lazy event stream. All randomness comes
// from the client's own rng (seeded from the spec seed and the client's
// global ordinal), so a client's schedule is independent of every other
// client's — the heap merge then interleaves them deterministically.
type clientState struct {
	ord     int // global client ordinal; heap tiebreak and seed input
	id      string
	class   *ClientClass
	rng     xrand.Rand // by value: 8 bytes, not math/rand's ~5 KB
	rate    float64    // skew-scaled mean decide rate
	victims []bool     // storm participation, drawn up-front

	phase     int
	t         float64 // emission time of the client's next event
	stormIdx  int     // next storm not yet considered
	gen       int64   // session generation; increments per create
	epoch     int
	remaining int64 // decides left this lifetime; -1 unbounded

	next  Event // staged event (valid when phase != phaseDone)
	valid bool
}

// Gen generates a Spec's schedule lazily in time order.
type Gen struct {
	spec    Spec
	clients []*clientState
	h       clientHeap
	emitted int64
}

// New validates the spec and builds its generator.
func New(spec Spec) (*Gen, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	prefix := spec.IDPrefix
	if prefix == "" {
		prefix = defaultIDPrefix
	}
	g := &Gen{spec: spec}
	ord := 0
	for ci := range spec.Clients {
		class := &spec.Clients[ci]
		for i := 0; i < class.Count; i++ {
			c := &clientState{
				ord:   ord,
				id:    fmt.Sprintf("%s-%s-%d", prefix, class.Name, i),
				class: class,
				rng:   xrand.Seeded(clientSeed(spec.Seed, ord)),
				phase: phaseCreate,
			}
			c.rate = class.Arrival.RateHz * sampleSkew(&c.rng, class.RateSkew)
			if class.StartWindowS > 0 {
				c.t = c.rng.Float64() * class.StartWindowS
			}
			// Storm participation is drawn up-front so a client's arrival
			// stream consumes the same rng sequence whether or not storms
			// fire near it.
			c.victims = make([]bool, len(spec.Storms))
			for si := range spec.Storms {
				c.victims[si] = c.rng.Float64() < spec.Storms[si].Fraction
			}
			g.clients = append(g.clients, c)
			ord++
		}
	}
	for _, c := range g.clients {
		if g.advance(c); c.valid {
			g.h = append(g.h, c)
		}
	}
	heap.Init(&g.h)
	return g, nil
}

// clientSeed mixes the spec seed with a client ordinal into an
// independent stream seed.
func clientSeed(seed int64, ord int) int64 {
	return int64(strhash.Mix(uint64(seed) ^ (uint64(ord)+1)<<20 ^ 0x9e3779b97f4a7c15))
}

// sessionSeed derives the governor seed for one session generation.
func (c *clientState) sessionSeed(specSeed int64) int64 {
	return int64(strhash.Mix(uint64(specSeed) ^ uint64(c.ord)<<24 ^ uint64(c.gen) + 1))
}

// advance computes the client's next event into c.next. It implements
// the lifecycle state machine: create → decides (arrival-process gaps)
// → lifetime-end delete → re-create, with storms cutting in whenever
// one fires before the client's next natural event.
func (g *Gen) advance(c *clientState) {
	c.valid = false
	horizon := g.spec.HorizonS
	for {
		switch c.phase {
		case phaseDone:
			return
		case phaseCreate:
			// Storms that pass while the client is between sessions have
			// no session to kill; consume them.
			for c.stormIdx < len(g.spec.Storms) && g.spec.Storms[c.stormIdx].AtS <= c.t {
				c.stormIdx++
			}
			if c.t > horizon {
				c.phase = phaseDone
				return
			}
			c.gen++
			c.epoch = 0
			c.remaining = -1
			if c.class.LifetimeDecides > 0 {
				c.remaining = 1 + int64(c.rng.ExpFloat64()*c.class.LifetimeDecides)
			}
			c.next = Event{
				AtS:      c.t,
				Op:       OpCreate,
				Session:  c.id,
				Governor: c.governorName(),
				Platform: c.class.Platform,
				PeriodS:  c.periodS(),
				Seed:     c.sessionSeed(g.spec.Seed),
			}
			c.valid = true
			c.phase = phaseLive
			// The first decide follows one interarrival gap after create.
			c.t += sampleInterarrival(&c.rng, c.class.Arrival, c.rate)
			return
		case phaseLive:
			// A storm firing before the client's next natural event
			// pre-empts it.
			if c.stormIdx < len(g.spec.Storms) && g.spec.Storms[c.stormIdx].AtS <= c.t {
				storm := g.spec.Storms[c.stormIdx]
				c.stormIdx++
				if !c.victims[c.stormIdx-1] {
					continue
				}
				c.next = Event{AtS: storm.AtS, Op: OpDelete, Session: c.id}
				c.valid = true
				c.phase = phaseCreate
				c.t = storm.AtS + storm.RestartDelayS
				return
			}
			if c.t > horizon {
				if !g.spec.NoDrain {
					c.next = Event{AtS: horizon, Op: OpDelete, Session: c.id}
					c.valid = true
					c.phase = phaseDone
					return
				}
				c.phase = phaseDone
				return
			}
			if c.remaining == 0 {
				// Lifetime over: delete now, re-create after one more gap.
				c.next = Event{AtS: c.t, Op: OpDelete, Session: c.id}
				c.valid = true
				c.phase = phaseCreate
				c.t += sampleInterarrival(&c.rng, c.class.Arrival, c.rate)
				return
			}
			c.next = Event{AtS: c.t, Op: OpDecide, Session: c.id, Obs: c.synthObs()}
			c.valid = true
			c.epoch++
			if c.remaining > 0 {
				c.remaining--
			}
			c.t += sampleInterarrival(&c.rng, c.class.Arrival, c.rate)
			return
		}
	}
}

func (c *clientState) governorName() string {
	if c.class.Governor == "" {
		return "rtm"
	}
	return c.class.Governor
}

func (c *clientState) periodS() float64 {
	if c.class.PeriodS > 0 {
		return c.class.PeriodS
	}
	return defaultPeriodS
}

// synthObs synthesizes one epoch's observation: a 4-core frame workload
// with execution time jittering around 60% of the period, matching the
// shape the serving benchmarks use. Values derive from the client rng
// only, so the observation sequence is part of the deterministic
// schedule.
func (c *clientState) synthObs() governor.Observation {
	period := c.periodS()
	base := 28e6 + 4e6*c.rng.Float64()
	cycles := make([]uint64, 4)
	util := make([]float64, 4)
	for i := range cycles {
		cycles[i] = uint64(base * (0.9 + 0.2*c.rng.Float64()))
		util[i] = 0.4 + 0.4*c.rng.Float64()
	}
	return governor.Observation{
		Epoch:     c.epoch,
		Cycles:    cycles,
		Util:      util,
		ExecTimeS: period * (0.4 + 0.4*c.rng.Float64()),
		PeriodS:   period,
		WallTimeS: period,
		PowerW:    1.2 + 1.6*c.rng.Float64(),
		TempC:     42 + 14*c.rng.Float64(),
		OPPIdx:    c.rng.Intn(10),
	}
}

// Next implements Stream: events pop in (time, client ordinal) order,
// which is total and machine-independent.
func (g *Gen) Next() (Event, bool, error) {
	if len(g.h) == 0 {
		return Event{}, false, nil
	}
	if g.spec.MaxEvents > 0 && g.emitted >= g.spec.MaxEvents {
		return Event{}, false, nil
	}
	c := g.h[0]
	ev := c.next
	if g.advance(c); c.valid {
		heap.Fix(&g.h, 0)
	} else {
		heap.Pop(&g.h)
	}
	g.emitted++
	return ev, true, nil
}

// clientHeap orders clients by their staged event: earliest time first,
// ties broken by client ordinal so the order never depends on map or
// scheduler nondeterminism.
type clientHeap []*clientState

func (h clientHeap) Len() int { return len(h) }
func (h clientHeap) Less(i, j int) bool {
	if h[i].next.AtS != h[j].next.AtS {
		return h[i].next.AtS < h[j].next.AtS
	}
	return h[i].ord < h[j].ord
}
func (h clientHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *clientHeap) Push(x any)   { *h = append(*h, x.(*clientState)) }
func (h *clientHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
