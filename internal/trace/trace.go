// Package trace is the serving tier's low-overhead decide-path tracer.
//
// A Tracer makes two sampling decisions. Head sampling picks a small
// probabilistic fraction of decide batches up front (Sample), assigning
// them a trace id that rides the wire protocol through every tier a
// request crosses — router relay, replica decide, misroute forward — so
// the spans recorded at each hop stitch together under one id. Tail
// capture (Slow) additionally records any batch slower than a threshold
// regardless of the head decision, which is what catches the p999
// outlier a 1-in-1024 head sample would almost always miss.
//
// Recorded spans land in a fixed-capacity lock-free ring buffer: writers
// claim a slot with one atomic increment and publish with one atomic
// pointer store, so recording never blocks a decide and the buffer never
// grows. Readers (the /v1/trace endpoint) snapshot whatever is published.
// Overwritten history is gone — this is a flight recorder, not a log.
//
// All Tracer methods are safe on a nil receiver and act as "tracing
// off": Sample and Slow return false, Record drops, Snapshot is empty.
// Call sites therefore need no nil guards on the hot path.
package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// TraceID identifies one traced decide across every tier it crosses.
// It marshals as a 16-hex-digit string (the form the wire protocol and
// /v1/trace queries use); zero means "not traced" and never appears on
// a recorded span.
type TraceID uint64

// String renders the canonical 16-hex-digit form.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// MarshalJSON renders the id as its hex string.
func (t TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts the hex string form (with or without quotes'
// leading zeros).
func (t *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	id, err := ParseID(s)
	if err != nil {
		return err
	}
	*t = id
	return nil
}

// ParseID parses the hex string form of a TraceID.
func ParseID(s string) (TraceID, error) {
	if s == "" || len(s) > 16 {
		return 0, fmt.Errorf("trace: bad id %q", s)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("trace: bad id %q", s)
		}
		v = v<<4 | d
	}
	return TraceID(v), nil
}

// Span is one recorded stage of a traced decide. Stage names in use:
// "route" (router batch, admission to last reply), "relay" (one
// replica-group hop inside a routed batch), "decide" (one session's
// decision on a replica), "decide.batch" (a whole replica batch, tail
// captures), "forward" (a misroute re-forwarded replica-to-replica).
type Span struct {
	Trace     TraceID `json:"trace"`
	Stage     string  `json:"stage"`
	Origin    string  `json:"origin,omitempty"`  // which server recorded it ("router", replica addr)
	Session   string  `json:"session,omitempty"` // for per-session stages
	Replica   string  `json:"replica,omitempty"` // relay/forward destination
	Start     int64   `json:"start_unix_ns"`
	DurUS     float64 `json:"dur_us"`
	Batch     int     `json:"batch,omitempty"` // requests in the batch, for batch stages
	Forwarded bool    `json:"forwarded,omitempty"`
	Err       string  `json:"err,omitempty"`
	Slow      bool    `json:"slow,omitempty"` // recorded by tail capture, not head sampling
}

// Filter selects spans out of a Snapshot.
type Filter struct {
	MinDurUS float64 // only spans at least this slow
	Session  string  // only spans for this session (batch spans have none and never match)
	Trace    TraceID // only spans under this trace id
	Limit    int     // at most this many spans, newest first (0: all)
}

// Options configures a Tracer.
type Options struct {
	// SampleProb is the head-sampling probability in [0, 1]. 0 disables
	// head sampling; tail capture still fires.
	SampleProb float64
	// Slow is the tail-capture threshold: any batch at least this slow
	// is recorded even when not head-sampled. 0 disables tail capture.
	Slow time.Duration
	// Capacity is the ring size in spans (default 4096, min 16).
	Capacity int
}

// Tracer records sampled spans into a lock-free ring. The zero value is
// not usable; construct with New. A nil *Tracer is valid everywhere and
// means tracing is off.
type Tracer struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64 // next slot to claim (monotone; slot = next % len)
	idctr atomic.Uint64 // trace-id generator state
	// sampleBits is the head-sampling threshold in 63-bit space:
	// sampled iff mixed>>1 < sampleBits. 2^63 ⇒ always, 0 ⇒ never.
	sampleBits uint64
	slowNS     int64
}

// New builds a Tracer. A Tracer with SampleProb 0 and Slow 0 still
// accepts propagated trace ids (a router upstream may have sampled).
func New(o Options) *Tracer {
	cap := o.Capacity
	if cap <= 0 {
		cap = 4096
	}
	if cap < 16 {
		cap = 16
	}
	p := o.SampleProb
	if math.IsNaN(p) || p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	t := &Tracer{
		slots:      make([]atomic.Pointer[Span], cap),
		sampleBits: uint64(p * float64(uint64(1)<<63)),
		slowNS:     o.Slow.Nanoseconds(),
	}
	// Seed the id counter off the wall clock so two servers started
	// together do not mint colliding trace ids.
	t.idctr.Store(uint64(time.Now().UnixNano()))
	return t
}

// splitmix64 is the id/sampling mixer: one xor-shift-multiply cascade,
// full-period over the counter, good enough avalanche that the low bits
// of sequential counters are uniform.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sample makes the head-sampling decision for one batch. When sampled
// it returns a fresh nonzero trace id. The cost of an unsampled call is
// one atomic increment and a few ALU ops.
func (t *Tracer) Sample() (TraceID, bool) {
	if t == nil || t.sampleBits == 0 {
		return 0, false
	}
	mixed := splitmix64(t.idctr.Add(1))
	if mixed>>1 >= t.sampleBits {
		return 0, false
	}
	id := TraceID(splitmix64(mixed))
	if id == 0 {
		id = 1 // zero means "untraced" on the wire; never mint it
	}
	return id, true
}

// ID mints a fresh nonzero trace id without a sampling decision — for
// callers that already decided to trace (tail capture, tests).
func (t *Tracer) ID() TraceID {
	if t == nil {
		return 0
	}
	id := TraceID(splitmix64(t.idctr.Add(1)))
	if id == 0 {
		id = 1
	}
	return id
}

// Slow reports whether a batch of the given duration crosses the
// tail-capture threshold.
func (t *Tracer) Slow(d time.Duration) bool {
	return t != nil && t.slowNS > 0 && d.Nanoseconds() >= t.slowNS
}

// Enabled reports whether this tracer can ever record anything on its
// own (head sampling or tail capture configured). Propagated spans are
// recorded regardless.
func (t *Tracer) Enabled() bool {
	return t != nil && (t.sampleBits != 0 || t.slowNS > 0)
}

// Record publishes one span into the ring, overwriting the oldest slot
// once full. Safe from any number of goroutines; never blocks.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Trace == 0 {
		return
	}
	if s.Start == 0 {
		s.Start = time.Now().UnixNano()
	}
	slot := t.next.Add(1) - 1
	t.slots[slot%uint64(len(t.slots))].Store(&s)
}

// Len reports how many spans are currently published.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n > uint64(len(t.slots)) {
		return len(t.slots)
	}
	return int(n)
}

// Snapshot copies out the published spans matching f, newest first.
func (t *Tracer) Snapshot(f Filter) []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, 64)
	for i := range t.slots {
		sp := t.slots[i].Load()
		if sp == nil {
			continue
		}
		if f.MinDurUS > 0 && sp.DurUS < f.MinDurUS {
			continue
		}
		if f.Session != "" && sp.Session != f.Session {
			continue
		}
		if f.Trace != 0 && sp.Trace != f.Trace {
			continue
		}
		out = append(out, *sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}
