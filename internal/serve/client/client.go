// Package client speaks the rtmd binary wire protocol: a persistent
// multiplexed TCP connection carrying observe→decide frames. Many
// goroutines may share one Client — requests are tagged with ids, writes
// of a batch coalesce into one flush, and a single reader goroutine
// routes responses back to their callers. The serve benchmarks and the
// cross-transport equivalence tests drive their sessions through it.
//
// The client carries only the decision hot loop; session lifecycle
// (create, inspect, checkpoint, delete) stays on the HTTP JSON API.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"qgov/internal/governor"
	"qgov/internal/wire"
)

// Decision is one answered request. Err mirrors the per-entry error of
// the JSON batch API: non-empty means this request failed (unknown
// session, rejected observation) while others in the batch may have
// succeeded.
type Decision struct {
	OPPIdx  int
	FreqMHz int
	Err     string
}

// Request ids pack a batch handle and an index: the high 20 bits name
// the DecideBatch call, the low 12 its entry. One routing-table insert
// covers a whole batch, so the per-decision client cost is a shared-map
// read — not an insert/delete pair — which matters at 500k decisions/s.
const (
	indexBits = 12
	// MaxBatch bounds one DecideBatch call (it must fit the index bits);
	// it equals the server's per-fan-out coalescing limit.
	MaxBatch = 1 << indexBits
)

// batchCall tracks one DecideBatch in flight. The reader fills out
// entries as frames arrive (any order) and closes done when the last
// one lands.
type batchCall struct {
	out       []Decision
	remaining int
	done      chan struct{}
}

// Client is a multiplexed connection to an rtmd binary listener.
type Client struct {
	conn net.Conn

	// wmu serialises the write half: frame encoding into enc and the
	// buffered writer.
	wmu sync.Mutex
	bw  *bufio.Writer
	enc []byte

	// mu guards the routing table and the sticky transport error.
	mu        sync.Mutex
	pending   map[uint32]*batchCall // keyed by batch handle (id >> indexBits)
	nextBatch uint32
	err       error

	readerDone chan struct{}
}

// Dial connects to an rtmd -listen-tcp address.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 64<<10),
		pending:    make(map[uint32]*batchCall),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight requests fail with a
// transport error.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// CloseWrite half-closes the connection: the server sees end of stream,
// drains what it already received, answers, and closes. Callers read
// their remaining responses through in-flight DecideBatch calls.
func (c *Client) CloseWrite() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return errors.New("client: connection does not support half-close")
}

// Decide serves one observation for one session and returns the
// operating-point decision.
func (c *Client) Decide(session string, obs governor.Observation) (Decision, error) {
	var out [1]Decision
	if err := c.decideBatch([]string{session}, []governor.Observation{obs}, out[:]); err != nil {
		return Decision{}, err
	}
	return out[0], nil
}

// DecideBatch serves one observation per session — the binary twin of
// POST /v1/decide. All frames are written under one flush; the call
// returns when every response has arrived, filling out[i] for
// sessions[i]. A returned error is transport-level and poisons the
// client; per-request failures land in out[i].Err instead.
func (c *Client) DecideBatch(sessions []string, obs []governor.Observation, out []Decision) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs)",
			len(sessions), len(obs), len(out))
	}
	if len(sessions) == 0 {
		return nil
	}
	return c.decideBatch(sessions, obs, out)
}

func (c *Client) decideBatch(sessions []string, obs []governor.Observation, out []Decision) error {
	n := len(sessions)
	if n > MaxBatch {
		return fmt.Errorf("client: batch of %d exceeds the %d-request limit", n, MaxBatch)
	}
	bc := &batchCall{out: out, remaining: n, done: make(chan struct{})}

	// Reserve a batch handle and publish the routing entry before any
	// frame can be answered. Handles wrap after 2^20 batches; by then the
	// old holder is long gone.
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	handle := c.nextBatch & (1<<(32-indexBits) - 1)
	c.nextBatch++
	c.pending[handle] = bc
	c.mu.Unlock()
	base := handle << indexBits

	// Encode every frame and flush once.
	c.wmu.Lock()
	var err error
	for i := 0; i < n && err == nil; i++ {
		c.enc, err = wire.AppendObserve(c.enc[:0], base|uint32(i), sessions[i], &obs[i])
		if err == nil {
			_, err = c.bw.Write(c.enc)
		}
	}
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, handle)
		c.mu.Unlock()
		return err
	}

	<-bc.done
	c.mu.Lock()
	err = c.err
	c.mu.Unlock()
	if bc.remaining != 0 { // released by fail(), not by the last response
		return fmt.Errorf("client: transport failed mid-batch: %w", err)
	}
	return nil
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	r := wire.NewReader(c.conn)
	var m wire.Decide
	for {
		typ, payload, err := r.Next()
		if err != nil {
			c.fail(err)
			return
		}
		if typ != wire.MsgDecide {
			c.fail(fmt.Errorf("client: unexpected frame type 0x%02x", typ))
			return
		}
		if err := m.Decode(payload); err != nil {
			c.fail(err)
			return
		}
		handle, idx := m.ID>>indexBits, int(m.ID&(MaxBatch-1))
		c.mu.Lock()
		bc := c.pending[handle]
		if bc != nil && idx < len(bc.out) {
			d := &bc.out[idx]
			d.OPPIdx = int(m.OPPIdx)
			d.FreqMHz = int(m.FreqMHz)
			if len(m.Err) > 0 {
				d.Err = string(m.Err)
			} else {
				d.Err = ""
			}
			bc.remaining--
			if bc.remaining == 0 {
				delete(c.pending, handle)
				close(bc.done)
			}
		}
		c.mu.Unlock()
	}
}

// fail records the transport error and releases every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for handle, bc := range c.pending {
		delete(c.pending, handle)
		close(bc.done)
	}
}
