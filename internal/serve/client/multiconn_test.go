package client

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/wire"
)

// hostileMulti is the many-connection twin of hostile: it accepts every
// connection a multi-conn client opens and hands each observe frame to
// the script together with its arrival connection. Replies must go back
// on the arrival connection — the client routes replies by the
// connection they came in on, which is exactly the property these tests
// pin down.
type hostileMulti struct {
	t    *testing.T
	addr string

	mu sync.Mutex
}

// newHostileMulti starts the server. The wire.Observe handed to the
// script aliases the reader's buffer; scripts that defer a reply copy
// what they keep.
func newHostileMulti(t *testing.T, script func(h *hostileMulti, conn net.Conn, m wire.Observe)) *hostileMulti {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	h := &hostileMulti{t: t, addr: lis.Addr().String()}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := wire.NewReader(conn)
				var m wire.Observe
				for {
					typ, payload, err := r.Next()
					if err != nil {
						return
					}
					if typ != wire.MsgObserve {
						continue
					}
					if err := m.Decode(payload); err != nil {
						return
					}
					script(h, conn, m)
				}
			}(conn)
		}
	}()
	return h
}

// replyOn writes one decide frame to the given connection; safe from
// any goroutine.
func (h *hostileMulti) replyOn(conn net.Conn, id uint32, oppIdx, freqMHz int32, errMsg string) {
	buf, err := wire.AppendDecide(nil, id, 0, oppIdx, freqMHz, errMsg)
	if err != nil {
		h.t.Error(err)
		return
	}
	h.mu.Lock()
	conn.Write(buf)
	h.mu.Unlock()
}

// TestMultiConnStripesBatches: with Conns > 1 sequential batches must
// round-robin across the connections, and each batch's replies must
// come back on the connection that carried it.
func TestMultiConnStripesBatches(t *testing.T) {
	var mu sync.Mutex
	seen := map[net.Conn]int{}
	h := newHostileMulti(t, func(h *hostileMulti, conn net.Conn, m wire.Observe) {
		mu.Lock()
		seen[conn]++
		mu.Unlock()
		h.replyOn(conn, m.ID, 3, 300, "")
	})
	c, err := DialOpts(h.addr, DialOptions{Conns: 2, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumConns() != 2 {
		t.Fatalf("NumConns() = %d, want 2", c.NumConns())
	}

	for i := 0; i < 4; i++ {
		d, err := c.Decide("s", governor.Observation{})
		if err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
		if d.OPPIdx != 3 {
			t.Fatalf("decide %d = %+v, want OPP 3", i, d)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("4 sequential batches used %d connections, want 2 (no striping)", len(seen))
	}
	for conn, n := range seen {
		if n != 2 {
			t.Fatalf("connection %v carried %d batches, want 2", conn.RemoteAddr(), n)
		}
	}
}

// TestMultiConnFailureIsolation: poisoning one connection of a
// multi-conn client (here with a stray reply, the corrupt-stream class)
// must fail only the batches on that connection. The other connection
// keeps serving, while Err() reports the failure for callers that
// monitor client health.
func TestMultiConnFailureIsolation(t *testing.T) {
	h := newHostileMulti(t, func(h *hostileMulti, conn net.Conn, m wire.Observe) {
		if string(m.Session) == "poison" {
			h.replyOn(conn, m.ID^(5<<indexBits), 1, 1000, "") // stray batch handle
			return
		}
		h.replyOn(conn, m.ID, 4, 400, "")
	})
	c, err := DialOpts(h.addr, DialOptions{Conns: 2, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Decide("poison", governor.Observation{}); err == nil {
		t.Fatal("decide on the poisoned connection succeeded")
	}
	if c.Err() == nil {
		t.Fatal("Err() is nil after one connection was poisoned")
	}

	// Striping alternates, so of the next two decides one lands on the
	// healthy connection (and must succeed) and one on the poisoned
	// connection (and must fail fast, not hang).
	okCount, failCount := 0, 0
	for i := 0; i < 2; i++ {
		d, err := c.Decide("fine", governor.Observation{})
		if err != nil {
			failCount++
			continue
		}
		if d.OPPIdx != 4 {
			t.Fatalf("healthy decide = %+v, want OPP 4", d)
		}
		okCount++
	}
	if okCount != 1 || failCount != 1 {
		t.Fatalf("after poisoning one of two connections: %d ok, %d failed; want 1 and 1", okCount, failCount)
	}
}

// relayPayload encodes one observe payload (no frame header) the way
// the router's relay path carries them.
func relayPayload(t *testing.T, session string) []byte {
	t.Helper()
	frame, err := wire.AppendObserve(nil, 0, session, &governor.Observation{})
	if err != nil {
		t.Fatal(err)
	}
	return frame[wire.HeaderSize:]
}

// TestRelayOutOfOrderAcrossPipelinedBatches: two relays in flight on
// one connection, with the server answering the second batch before the
// first and the first batch's own frames in reverse — the hostile
// interleaving a pipelined router sees when replica batches complete
// out of order. Every decision must land in its own batch slot.
func TestRelayOutOfOrderAcrossPipelinedBatches(t *testing.T) {
	opp := map[string]int32{"a1": 1, "a2": 2, "b1": 3}
	type frame struct {
		conn    net.Conn
		id      uint32
		session string
	}
	var mu sync.Mutex
	var got []frame
	h := newHostileMulti(t, func(h *hostileMulti, conn net.Conn, m wire.Observe) {
		mu.Lock()
		got = append(got, frame{conn: conn, id: m.ID, session: string(m.Session)})
		if len(got) < 3 {
			mu.Unlock()
			return
		}
		frames := got
		mu.Unlock()
		// All three frames (batch A: a1,a2; batch B: b1) have arrived;
		// answer them in reverse arrival order.
		for i := len(frames) - 1; i >= 0; i-- {
			f := frames[i]
			h.replyOn(f.conn, f.id, opp[f.session], 100*opp[f.session], "")
		}
	})
	c, err := DialOpts(h.addr, DialOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	outA := make([]Decision, 2)
	relA, err := c.StartRelay([][]byte{relayPayload(t, "a1"), relayPayload(t, "a2")}, outA)
	if err != nil {
		t.Fatal(err)
	}
	outB := make([]Decision, 1)
	relB, err := c.StartRelay([][]byte{relayPayload(t, "b1")}, outB)
	if err != nil {
		t.Fatal(err)
	}

	if err := relB.Wait(); err != nil {
		t.Fatalf("relay B: %v", err)
	}
	if err := relA.Wait(); err != nil {
		t.Fatalf("relay A: %v", err)
	}
	if outA[0].OPPIdx != 1 || outA[1].OPPIdx != 2 {
		t.Fatalf("batch A decisions misrouted: %+v", outA)
	}
	if outB[0].OPPIdx != 3 {
		t.Fatalf("batch B decision misrouted: %+v", outB)
	}
}

// TestRelayConnFailureFailsOnlyItsHandles: with two connections and a
// relay in flight on each, a connection dying mid-pipeline must fail
// exactly the relay it carried; the relay on the surviving connection
// completes.
func TestRelayConnFailureFailsOnlyItsHandles(t *testing.T) {
	h := newHostileMulti(t, func(h *hostileMulti, conn net.Conn, m wire.Observe) {
		if strings.HasPrefix(string(m.Session), "kill") {
			conn.Close()
			return
		}
		h.replyOn(conn, m.ID, 5, 500, "")
	})
	c, err := DialOpts(h.addr, DialOptions{Conns: 2, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	outKill := make([]Decision, 2)
	relKill, err := c.StartRelay([][]byte{relayPayload(t, "kill1"), relayPayload(t, "kill2")}, outKill)
	if err != nil {
		t.Fatal(err)
	}
	outOK := make([]Decision, 1)
	relOK, err := c.StartRelay([][]byte{relayPayload(t, "ok1")}, outOK)
	if err != nil {
		t.Fatal(err)
	}

	if err := relKill.Wait(); err == nil {
		t.Fatal("relay on the dead connection reported success")
	}
	if err := relOK.Wait(); err != nil {
		t.Fatalf("relay on the surviving connection failed: %v", err)
	}
	if outOK[0].OPPIdx != 5 {
		t.Fatalf("surviving relay decision = %+v, want OPP 5", outOK[0])
	}
	if c.Err() == nil {
		t.Fatal("Err() is nil after a connection died")
	}
}

// TestTimeoutStillFires pins the per-call deadline after the timer-pool
// rework: a server that never answers must still fail the call at
// Client.Timeout, not hang.
func TestTimeoutStillFires(t *testing.T) {
	h := newHostileMulti(t, func(h *hostileMulti, conn net.Conn, m wire.Observe) {
		// drop the frame
	})
	c, err := DialOpts(h.addr, DialOptions{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Decide("s", governor.Observation{})
	if err == nil || !strings.Contains(err.Error(), "no response within") {
		t.Fatalf("err = %v, want a timeout failure", err)
	}
	if since := time.Since(start); since > 3*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", since)
	}
}
