package governor

// Schedutil reimplements the modern Linux schedutil governor at
// decision-epoch granularity: the target frequency is proportional to
// utilisation with 25 % headroom,
//
//	f_target = 1.25 · util · f_max
//
// with a rate limit on down-scaling (frequency may rise immediately but
// only falls after RateLimitEpochs quiet epochs), mirroring the kernel's
// rate_limit_us behaviour. Like ondemand it is deadline-blind; unlike
// ondemand it has no jump-to-max discontinuity, so it bounces less and
// wastes less — the strongest of the classic utilisation-driven policies.
type Schedutil struct {
	// Headroom is the multiplier on utilisation (kernel: 1.25).
	Headroom float64
	// RateLimitEpochs delays down-scaling after any frequency change.
	RateLimitEpochs int

	ctx     Context
	cur     int
	sinceUp int
}

// NewSchedutil constructs the governor with kernel-default tunables.
func NewSchedutil() *Schedutil {
	return &Schedutil{Headroom: 1.25, RateLimitEpochs: 2}
}

// Name implements Governor.
func (g *Schedutil) Name() string { return "schedutil" }

// Reset implements Governor.
func (g *Schedutil) Reset(ctx Context) {
	g.ctx = ctx
	g.cur = 0
	g.sinceUp = 0
}

// Decide implements Governor.
func (g *Schedutil) Decide(obs Observation) int {
	if obs.Epoch < 0 {
		g.cur = 0
		return 0
	}
	target := g.Headroom * obs.MaxUtil() * g.ctx.Table[g.ctx.Table.MaxIdx()].FreqHz()
	want := g.ctx.Table.CeilIdx(target)
	switch {
	case want > g.cur:
		g.cur = want
		g.sinceUp = 0
	case want < g.cur:
		// Down-scaling is rate-limited: hold until the demand has been
		// low for RateLimitEpochs epochs.
		g.sinceUp++
		if g.sinceUp >= g.RateLimitEpochs {
			g.cur = want
			g.sinceUp = 0
		}
	default:
		g.sinceUp = 0
	}
	return g.cur
}

func init() {
	Register("schedutil", func() Governor { return NewSchedutil() })
}
