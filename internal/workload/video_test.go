package workload

import (
	"math"
	"testing"
)

func TestVideoFrameTypePattern(t *testing.T) {
	c := VideoConfig{GOPLength: 12, BFrames: 2}
	want := "IBBPBBPBBPBB"
	var got []byte
	for i := 0; i < 12; i++ {
		got = append(got, c.frameType(i))
	}
	if string(got) != want {
		t.Fatalf("GOP pattern = %s, want %s", got, want)
	}
	// No B-frames: everything after I is P.
	c = VideoConfig{GOPLength: 4, BFrames: 0}
	for i := 1; i < 4; i++ {
		if c.frameType(i) != 'P' {
			t.Fatalf("BFrames=0 frame %d = %c, want P", i, c.frameType(i))
		}
	}
}

func TestVideoDeterministicBySeed(t *testing.T) {
	a := MPEG4At30(7, 100)
	b := MPEG4At30(7, 100)
	if a.Len() != b.Len() {
		t.Fatal("length mismatch")
	}
	for i := range a.Frames {
		for j := range a.Frames[i].Cycles {
			if a.Frames[i].Cycles[j] != b.Frames[i].Cycles[j] {
				t.Fatalf("frame %d thread %d differs across identical seeds", i, j)
			}
		}
	}
	c := MPEG4At30(8, 100)
	same := true
	for i := range a.Frames {
		for j := range a.Frames[i].Cycles {
			if a.Frames[i].Cycles[j] != c.Frames[i].Cycles[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestVideoIFramesHeavierThanB(t *testing.T) {
	// With noise suppressed, mean I-frame demand must exceed mean B-frame
	// demand by roughly the configured weight ratio.
	cfg := VideoConfig{
		Name: "test", FPS: 25, NumFrames: 600, Threads: 4,
		GOPLength: 12, BFrames: 2,
		BaseCycles: 100e6, IWeight: 1.6, BWeight: 0.6,
		SceneMin: 0.999, SceneMax: 1.001, Seed: 3,
	}
	tr := cfg.Generate()
	var iSum, bSum float64
	var iN, bN int
	for i, f := range tr.Frames {
		switch cfg.frameType(i % cfg.GOPLength) {
		case 'I':
			iSum += float64(f.TotalCycles())
			iN++
		case 'B':
			bSum += float64(f.TotalCycles())
			bN++
		}
	}
	ratio := (iSum / float64(iN)) / (bSum / float64(bN))
	if math.Abs(ratio-1.6/0.6) > 0.15 {
		t.Fatalf("I/B demand ratio = %v, want ≈%v", ratio, 1.6/0.6)
	}
}

func TestScriptedSceneChangeShiftsLevel(t *testing.T) {
	tr := MPEG4SVGA24(11, 200)
	// Compare the mean demand just before and after the scripted cut at 92.
	mean := func(lo, hi int) float64 {
		var s float64
		for _, f := range tr.Frames[lo:hi] {
			s += float64(f.TotalCycles())
		}
		return s / float64(hi-lo)
	}
	before := mean(60, 92)
	after := mean(92, 124)
	if rel := math.Abs(after-before) / before; rel < 0.10 {
		t.Fatalf("scene cut at 92 moved the level only %.1f%%; want a visible shift", rel*100)
	}
}

func TestFootballH264Shape(t *testing.T) {
	tr := FootballH264(1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("football length = %d, want 3000 frames", tr.Len())
	}
	if tr.Threads() != 4 {
		t.Fatalf("threads = %d, want 4", tr.Threads())
	}
	st := tr.Summarize()
	// Variability: sports footage must be clearly non-constant.
	if st.CVCycles < 0.15 {
		t.Errorf("football CV = %v, want >= 0.15", st.CVCycles)
	}
	// Demand must span a useful part of the 200-2000 MHz ladder. Frames
	// lighter than fmin are fine (the slowest OPP over-satisfies them) but
	// the heaviest frame must stay meetable at fmax, or Table I's
	// normalised-performance comparison loses its meaning.
	loHz := st.MinCycles / tr.RefTimeS
	hiHz := st.MaxCycles / tr.RefTimeS
	if loHz < 100e6 {
		t.Errorf("lightest frame needs %.0f MHz: implausibly light", loHz/1e6)
	}
	if hiHz > 2000e6 {
		t.Errorf("heaviest frame needs %.0f MHz: unmeetable at fmax", hiHz/1e6)
	}
	if hiHz/loHz < 2 {
		t.Errorf("demand range only %.1fx; workload too flat to exercise DVFS", hiHz/loHz)
	}
}

func TestVideoConfigValidateRejects(t *testing.T) {
	good := VideoConfig{
		Name: "ok", FPS: 25, NumFrames: 10, Threads: 4, GOPLength: 12,
		BFrames: 2, BaseCycles: 1e6, IWeight: 1.5, BWeight: 0.6,
		SceneMin: 0.5, SceneMax: 2,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*VideoConfig){
		func(c *VideoConfig) { c.FPS = 0 },
		func(c *VideoConfig) { c.NumFrames = 0 },
		func(c *VideoConfig) { c.Threads = 0 },
		func(c *VideoConfig) { c.GOPLength = 0 },
		func(c *VideoConfig) { c.BFrames = 12 },
		func(c *VideoConfig) { c.BaseCycles = 0 },
		func(c *VideoConfig) { c.IWeight = 0.5 },
		func(c *VideoConfig) { c.BWeight = 0 },
		func(c *VideoConfig) { c.SceneMin = 0 },
		func(c *VideoConfig) { c.SceneMax = 0.1 },
	}
	for i, mutate := range mutations {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
