package qpage

import (
	"sync"
	"testing"
)

func poolEmpty(t *testing.T, p *Pool) {
	t.Helper()
	pages, bytes, _ := p.Stats()
	if pages != 0 || bytes != 0 {
		t.Fatalf("pool not empty: %d pages, %d bytes", pages, bytes)
	}
}

func TestNewSharedDedupsToOnePage(t *testing.T) {
	p := NewPool()
	a := p.NewShared(25, 19, -1)
	b := p.NewShared(25, 19, -1)
	pages, bytes, _ := p.Stats()
	if pages != 1 {
		t.Fatalf("two identical cold tables interned %d distinct pages, want 1", pages)
	}
	if want := int64(PageRows * 19 * (8 + 4)); bytes != want { // 8 B values + 4 B visits
		t.Fatalf("shared bytes %d, want %d", bytes, want)
	}
	if a.SharedPages() != numPages(25) || b.SharedPages() != numPages(25) {
		t.Fatalf("shared page counts %d/%d, want %d", a.SharedPages(), b.SharedPages(), numPages(25))
	}
	a.Release()
	b.Release()
	poolEmpty(t, p)
}

func TestCOWFaultIsolatesWriter(t *testing.T) {
	p := NewPool()
	a := p.NewShared(8, 3, 0.5)
	b := a.Clone()
	q, v := a.MutRow(1)
	q[2] = 9
	v[2] = 1
	if got := b.Row(1)[2]; got != 0.5 {
		t.Fatalf("write through A leaked into B: %v", got)
	}
	if got := a.Row(1)[2]; got != 9 {
		t.Fatalf("A does not see its own write: %v", got)
	}
	if got := a.VRow(1)[2]; got != 1 {
		t.Fatalf("A visit write lost: %d", got)
	}
	// The fault must have carried the page's untouched prior content —
	// both the other columns of the written row and every other row.
	if got := a.Row(1)[0]; got != 0.5 {
		t.Fatalf("fault lost untouched content on the faulted page: %v", got)
	}
	if got := a.Row(0)[0]; got != 0.5 {
		t.Fatalf("fault disturbed an unwritten row: %v", got)
	}
	_, _, faults := p.Stats()
	if faults != 1 {
		t.Fatalf("fault counter %d, want 1", faults)
	}
	// Faulting again on the now-owned page is free.
	a.MutRow(1)
	if _, _, f := p.Stats(); f != 1 {
		t.Fatalf("owned-page MutRow counted a fault: %d", f)
	}
	a.Release()
	b.Release()
	poolEmpty(t, p)
}

func TestInternDedupsByContent(t *testing.T) {
	p := NewPool()
	q := make([]float64, 8*3)
	v := make([]int, 8*3)
	for i := range q {
		q[i] = float64(i) * 0.25
		v[i] = i
	}
	a := FromFlat(8, 3, q, v)
	b := FromFlat(8, 3, q, v)
	a.Intern(p)
	b.Intern(p)
	pages, _, _ := p.Stats()
	if want := int64(numPages(8)); pages != want {
		t.Fatalf("two identical tables interned %d distinct pages, want %d", pages, want)
	}
	// Intern is idempotent.
	a.Intern(p)
	if pg, _, _ := p.Stats(); pg != pages {
		t.Fatalf("re-intern changed page count %d -> %d", pages, pg)
	}
	a.Release()
	b.Release()
	poolEmpty(t, p)
}

func TestFlatRoundTrip(t *testing.T) {
	const rows, cols = 7, 5 // exercises the last-page tail when PageRows > 1
	q := make([]float64, rows*cols)
	v := make([]int, rows*cols)
	for i := range q {
		q[i] = float64(i)*1.5 - 3
		v[i] = i % 4
	}
	tab := FromFlat(rows, cols, q, v)
	p := NewPool()
	tab.Intern(p)
	cl := tab.Clone()
	fq, fv := cl.FlatQ(), cl.FlatV()
	for i := range q {
		if fq[i] != q[i] || fv[i] != v[i] {
			t.Fatalf("flat round trip diverged at %d: %v/%d vs %v/%d", i, fq[i], fv[i], q[i], v[i])
		}
	}
	tab.Release()
	cl.Release()
	poolEmpty(t, p)
}

func TestUseAfterReleasePanics(t *testing.T) {
	p := NewPool()
	tab := p.NewShared(4, 2, 0)
	tab.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("reading a released table did not panic")
		}
	}()
	_ = tab.Row(0)
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	a := p.NewShared(4, 2, 0)
	b := a.Clone()
	a.Release()
	a.Release() // poisoned pages: second release is a no-op, not a refs underflow
	b.Release()
	poolEmpty(t, p)
	// A genuine refs underflow (two tables racing to release the same page
	// reference) is covered by the pool's panic; simulate it directly.
	c := p.NewShared(4, 2, 0)
	pg := c.pages[0]
	c.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("refs underflow did not panic")
		}
	}()
	p.release(pg)
}

// TestConcurrentCloneFaultRelease hammers one shared base from many
// goroutines — clone, read, write (faulting), release — under -race.
func TestConcurrentCloneFaultRelease(t *testing.T) {
	p := NewPool()
	base := p.NewShared(25, 19, -1)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tab := base.Clone()
				if got := tab.Row(w % 25)[w % 19]; got != -1 {
					panic("clone saw torn base content")
				}
				q, v := tab.MutRow((w + i) % 25)
				q[0] = float64(w)
				v[0]++
				tab.Release()
			}
		}(w)
	}
	wg.Wait()
	// The base must be untouched by every write above.
	for r := 0; r < 25; r++ {
		for c, got := range base.Row(r) {
			if got != -1 {
				t.Fatalf("base mutated at (%d,%d): %v", r, c, got)
			}
		}
		for c, got := range base.VRow(r) {
			if got != 0 {
				t.Fatalf("base visits mutated at (%d,%d): %d", r, c, got)
			}
		}
	}
	base.Release()
	poolEmpty(t, p)
}
