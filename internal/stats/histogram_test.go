package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99, 10} {
		h.Add(x)
	}
	bins := h.Bins()
	want := []int{2, 1, 1, 0, 2} // 10 (top edge) joins the last bin
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
}

func TestHistogramGeometryAccessors(t *testing.T) {
	h := NewHistogram(0, 50, 25)
	if h.Lo() != 0 || h.Hi() != 50 {
		t.Errorf("Lo/Hi = %v/%v, want 0/50", h.Lo(), h.Hi())
	}
	if h.BinWidth() != 2 {
		t.Errorf("BinWidth = %v, want 2", h.BinWidth())
	}
	if got := len(h.Bins()); got != 25 {
		t.Errorf("len(Bins) = %d, want 25", got)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-0.1)
	h.Add(1.5)
	h.Add(math.NaN())
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 { // 1.5 and NaN
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
}

func TestHistogramBinOf(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1.99, 0}, {2, 1}, {9.99, 4}, {10, 4},
		{-1, -1}, {11, -1}, {math.NaN(), -1},
	}
	for _, c := range cases {
		if got := h.BinOf(c.x); got != c.want {
			t.Errorf("BinOf(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	for _, x := range []float64{0.5, 1.5, 1.6, 2.5} {
		h.Add(x)
	}
	if got := h.Mode(); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("Mode = %v, want 1.5", got)
	}
	empty := NewHistogram(0, 1, 4)
	if !math.IsNaN(empty.Mode()) {
		t.Fatal("Mode of empty histogram must be NaN")
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bins", func() { NewHistogram(0, 1, 0) })
	mustPanic("lo==hi", func() { NewHistogram(1, 1, 4) })
	mustPanic("lo>hi", func() { NewHistogram(2, 1, 4) })
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(-1)
	s := h.String()
	if !strings.Contains(s, "underflow 1") {
		t.Fatalf("String missing underflow line:\n%s", s)
	}
}

// Property: every finite sample is accounted for exactly once — the sum of
// bin counts plus under/overflow equals the number of samples added.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-5, 5, 7)
		total := int(n)
		var want float64
		for i := 0; i < total; i++ {
			x := rng.Float64()*20 - 10 // spans beyond [-5,5]
			want += x
			h.Add(x)
		}
		sum := h.Underflow() + h.Overflow()
		for _, c := range h.Bins() {
			sum += c
		}
		return sum == total && h.Count() == total && h.Sum() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
