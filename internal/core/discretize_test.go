package core

import (
	"math"
	"testing"
	"testing/quick"
)

func calibratedSpace(t *testing.T) *StateSpace {
	t.Helper()
	s := NewStateSpace(5)
	if err := s.Calibrate([]float64{10e6, 20e6, 30e6, 40e6, 50e6}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStateSpaceShape(t *testing.T) {
	s := calibratedSpace(t)
	if s.NumStates() != 25 {
		t.Fatalf("NumStates = %d, want 25 (the paper's 5x5)", s.NumStates())
	}
	if !s.Calibrated() {
		t.Fatal("Calibrated() false after Calibrate")
	}
}

func TestStateSpacePanicsOnFewLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStateSpace(1) must panic")
		}
	}()
	NewStateSpace(1)
}

func TestCalibrateErrors(t *testing.T) {
	s := NewStateSpace(5)
	if err := s.Calibrate(nil); err == nil {
		t.Error("empty calibration accepted")
	}
	if err := s.Calibrate([]float64{0, 0, 0}); err == nil {
		t.Error("all-zero calibration accepted")
	}
	// Constant series: widened artificially, still usable.
	if err := s.Calibrate([]float64{5e6, 5e6}); err != nil {
		t.Errorf("constant calibration rejected: %v", err)
	}
	if !s.Calibrated() {
		t.Error("constant calibration left space uncalibrated")
	}
	if lvl := s.CCLevel(5e6); lvl < 0 || lvl >= 5 {
		t.Errorf("constant calibration level = %d", lvl)
	}
}

func TestCCLevelEdges(t *testing.T) {
	s := calibratedSpace(t)
	if got := s.CCLevel(0); got != 0 {
		t.Errorf("below range -> %d, want 0", got)
	}
	if got := s.CCLevel(1e12); got != 4 {
		t.Errorf("above range -> %d, want 4", got)
	}
	// monotone through the range
	prev := -1
	for cc := 0.0; cc <= 60e6; cc += 1e6 {
		l := s.CCLevel(cc)
		if l < prev {
			t.Fatalf("CCLevel not monotone at %g: %d after %d", cc, l, prev)
		}
		prev = l
	}
}

func TestSlackLevelRange(t *testing.T) {
	s := calibratedSpace(t)
	if got := s.SlackLevel(-10); got != 0 {
		t.Errorf("deep miss -> %d, want 0", got)
	}
	if got := s.SlackLevel(10); got != 4 {
		t.Errorf("huge slack -> %d, want 4", got)
	}
	if got := s.SlackLevel(0); got != 2 {
		t.Errorf("zero slack -> %d, want middle level 2", got)
	}
}

func TestStateIndexBijection(t *testing.T) {
	s := calibratedSpace(t)
	seen := map[int]bool{}
	for cc := 0; cc < 5; cc++ {
		for sl := 0; sl < 5; sl++ {
			idx := s.State(cc, sl)
			if idx < 0 || idx >= s.NumStates() {
				t.Fatalf("State(%d,%d) = %d out of range", cc, sl, idx)
			}
			if seen[idx] {
				t.Fatalf("State(%d,%d) = %d duplicates another pair", cc, sl, idx)
			}
			seen[idx] = true
		}
	}
}

func TestStatePanicsOutOfRange(t *testing.T) {
	s := calibratedSpace(t)
	defer func() {
		if recover() == nil {
			t.Fatal("State(5,0) must panic")
		}
	}()
	s.State(5, 0)
}

func TestUncalibratedQuantisePanics(t *testing.T) {
	s := NewStateSpace(5)
	defer func() {
		if recover() == nil {
			t.Fatal("CCLevel before calibration must panic")
		}
	}()
	s.CCLevel(1e6)
}

func TestNormalizeEq7(t *testing.T) {
	// Balanced: every core at 1.0.
	got := Normalize([]float64{10, 10, 10, 10})
	for _, v := range got {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("balanced normalise = %v", got)
		}
	}
	// Imbalanced: shares scale with demand, mean stays 1.
	got = Normalize([]float64{30, 10, 10, 10})
	if math.Abs(got[0]-2.0) > 1e-12 {
		t.Fatalf("hot core share = %v, want 2.0", got[0])
	}
	// Degenerate: all zeros.
	got = Normalize([]float64{0, 0})
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("zero total normalise = %v", got)
	}
}

// Property: StateOf is total over arbitrary finite inputs once calibrated —
// never panics, always lands in [0, NumStates).
func TestStateOfTotalProperty(t *testing.T) {
	s := NewStateSpace(5)
	if err := s.Calibrate([]float64{1e6, 9e7}); err != nil {
		t.Fatal(err)
	}
	f := func(cc float64, slack float64) bool {
		if math.IsNaN(cc) || math.IsNaN(slack) {
			return true // NaN workloads cannot occur (cycles are uint64)
		}
		idx := s.StateOf(cc, slack)
		return idx >= 0 && idx < s.NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. 7 normalisation sums to the core count (mean share 1).
func TestNormalizeSumProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			in[i] = float64(v)
			total += in[i]
		}
		out := Normalize(in)
		if total == 0 {
			for _, v := range out {
				if v != 0 {
					return false
				}
			}
			return true
		}
		var sum float64
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-float64(len(raw))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
