package workload

import (
	"fmt"
	"sort"
)

// Generator builds a trace of the requested length from a seed. numFrames
// <= 0 selects each workload's natural default length.
type Generator func(seed int64, numFrames int) Trace

// Registry maps workload names to generators; the CLI tools and the
// experiment harness resolve workloads through it.
func Registry() map[string]Generator {
	reg := map[string]Generator{
		"h264-football": func(seed int64, n int) Trace {
			t := FootballH264(seed)
			if n > 0 {
				t = t.Slice(0, n)
			}
			return t
		},
		"mpeg4-svga24": func(seed int64, n int) Trace {
			if n <= 0 {
				n = 240
			}
			return MPEG4SVGA24(seed, n)
		},
		"mpeg4-30fps": func(seed int64, n int) Trace {
			if n <= 0 {
				n = 1000
			}
			return MPEG4At30(seed, n)
		},
		"h264-15fps": func(seed int64, n int) Trace {
			if n <= 0 {
				n = 1000
			}
			return H264At15(seed, n)
		},
		"fft-32fps": func(seed int64, n int) Trace {
			if n <= 0 {
				n = 1000
			}
			return FFT32(seed, n)
		},
	}
	for _, p := range append(ParsecProfiles(), Splash2Profiles()...) {
		p := p
		reg[p.Name] = func(seed int64, n int) Trace {
			if n <= 0 {
				n = 1000
			}
			return p.Generate(n, 4, 25, seed)
		}
	}
	return reg
}

// Names returns the sorted workload names available in the registry.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for k := range reg {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ByName resolves one workload generator.
func ByName(name string) (Generator, error) {
	g, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (try one of %v)", name, Names())
	}
	return g, nil
}
