package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"qgov/internal/governor"
)

// Trace format: one JSON object per line, in schedule order. The fields
// are a flat projection of Event — encoding/json marshals struct fields
// in declaration order with shortest-round-trip floats, so recording the
// same schedule twice produces byte-identical files, and that identity
// is what the determinism tests assert.

type traceLine struct {
	AtS     float64  `json:"at_s"`
	Op      string   `json:"op"`
	Session string   `json:"session"`
	Gov     string   `json:"governor,omitempty"`
	Plat    string   `json:"platform,omitempty"`
	PeriodS float64  `json:"period_s,omitempty"`
	Seed    int64    `json:"seed,omitempty"`
	Obs     *obsJSON `json:"obs,omitempty"`
}

// obsJSON mirrors governor.Observation field for field (the serve API's
// JSON shape, duplicated here so the trace format does not reach into an
// internal type's future).
type obsJSON struct {
	Epoch     int       `json:"epoch"`
	Cycles    []uint64  `json:"cycles,omitempty"`
	Util      []float64 `json:"util,omitempty"`
	ExecTimeS float64   `json:"exec_time_s"`
	PeriodS   float64   `json:"period_s"`
	WallTimeS float64   `json:"wall_time_s"`
	PowerW    float64   `json:"power_w"`
	TempC     float64   `json:"temp_c"`
	OPPIdx    int       `json:"opp_idx"`
}

func obsToJSON(o governor.Observation) *obsJSON {
	return &obsJSON{
		Epoch:     o.Epoch,
		Cycles:    o.Cycles,
		Util:      o.Util,
		ExecTimeS: o.ExecTimeS,
		PeriodS:   o.PeriodS,
		WallTimeS: o.WallTimeS,
		PowerW:    o.PowerW,
		TempC:     o.TempC,
		OPPIdx:    o.OPPIdx,
	}
}

func (o *obsJSON) observation() governor.Observation {
	return governor.Observation{
		Epoch:     o.Epoch,
		Cycles:    o.Cycles,
		Util:      o.Util,
		ExecTimeS: o.ExecTimeS,
		PeriodS:   o.PeriodS,
		WallTimeS: o.WallTimeS,
		PowerW:    o.PowerW,
		TempC:     o.TempC,
		OPPIdx:    o.OPPIdx,
	}
}

// WriteEvent appends one event to w in trace format.
func WriteEvent(w io.Writer, ev Event) error {
	line := traceLine{
		AtS:     ev.AtS,
		Op:      ev.Op.String(),
		Session: ev.Session,
	}
	switch ev.Op {
	case OpCreate:
		line.Gov = ev.Governor
		line.Plat = ev.Platform
		line.PeriodS = ev.PeriodS
		line.Seed = ev.Seed
	case OpDecide:
		line.Obs = obsToJSON(ev.Obs)
	}
	b, err := json.Marshal(line)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Record drains a stream into w in trace format and returns the event
// count.
func Record(w io.Writer, s Stream) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	for {
		ev, ok, err := s.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		if err := WriteEvent(bw, ev); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// TraceReader replays a recorded trace as a Stream.
type TraceReader struct {
	sc   *bufio.Scanner
	line int64
}

// NewTraceReader wraps r (a trace in JSONL format).
func NewTraceReader(r io.Reader) *TraceReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	return &TraceReader{sc: sc}
}

// Next implements Stream.
func (t *TraceReader) Next() (Event, bool, error) {
	for t.sc.Scan() {
		t.line++
		raw := t.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line traceLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return Event{}, false, fmt.Errorf("loadgen: trace line %d: %w", t.line, err)
		}
		ev := Event{AtS: line.AtS, Session: line.Session}
		switch line.Op {
		case "create":
			ev.Op = OpCreate
			ev.Governor = line.Gov
			ev.Platform = line.Plat
			ev.PeriodS = line.PeriodS
			ev.Seed = line.Seed
		case "decide":
			ev.Op = OpDecide
			if line.Obs == nil {
				return Event{}, false, fmt.Errorf("loadgen: trace line %d: decide without obs", t.line)
			}
			ev.Obs = line.Obs.observation()
		case "delete":
			ev.Op = OpDelete
		default:
			return Event{}, false, fmt.Errorf("loadgen: trace line %d: unknown op %q", t.line, line.Op)
		}
		if ev.Session == "" {
			return Event{}, false, fmt.Errorf("loadgen: trace line %d: missing session", t.line)
		}
		return ev, true, nil
	}
	return Event{}, false, t.sc.Err()
}

// Tee passes a stream through while recording every event to w. Callers
// must Flush when the stream is drained.
type Tee struct {
	src Stream
	bw  *bufio.Writer
}

// NewTee wraps src, recording each event that passes to w.
func NewTee(src Stream, w io.Writer) *Tee {
	return &Tee{src: src, bw: bufio.NewWriterSize(w, 1<<20)}
}

// Next implements Stream.
func (t *Tee) Next() (Event, bool, error) {
	ev, ok, err := t.src.Next()
	if err != nil || !ok {
		return ev, ok, err
	}
	if err := WriteEvent(t.bw, ev); err != nil {
		return Event{}, false, err
	}
	return ev, true, nil
}

// Flush flushes the recording buffer.
func (t *Tee) Flush() error { return t.bw.Flush() }
