package sim

import (
	"bufio"
	"fmt"
	"io"
)

// WriteRecordsCSV serialises a recorded run's per-frame series — the data
// behind Fig. 3 style plots — as CSV. Columns are stable and documented in
// EXPERIMENTS.md; NaN telemetry (governors without introspection) is
// written as empty fields.
func WriteRecordsCSV(w io.Writer, records []FrameRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(
		"epoch,freq_mhz,exec_s,slack_ratio,energy_j,avg_power_w,sensor_power_w,temp_c,missed,actual_cc,predicted_cc,avg_slack_l,epsilon\n"); err != nil {
		return err
	}
	for _, r := range records {
		missed := 0
		if r.Missed {
			missed = 1
		}
		fmt.Fprintf(bw, "%d,%d,%.9g,%.6g,%.9g,%.6g,%.6g,%.4g,%d,%.9g,%s,%s,%s\n",
			r.Epoch, r.FreqMHz, r.ExecTimeS, r.SlackRatio, r.EnergyJ,
			r.AvgPowerW, r.SensorPowerW, r.TempC, missed, r.ActualCC,
			optional(r.PredictedCC), optional(r.AvgSlackL), optional(r.Epsilon))
	}
	return bw.Flush()
}

// optional renders NaN as an empty CSV field.
func optional(x float64) string {
	if x != x { // NaN
		return ""
	}
	return fmt.Sprintf("%.9g", x)
}
