package platform

import (
	"math"
	"math/rand"
)

// PowerSegment is an interval of (modelled) constant power, the ground
// truth the sensor samples from.
type PowerSegment struct {
	PowerW   float64
	Duration float64 // seconds
}

// PowerSensor models the ODROID-XU3's on-board INA231 current monitors: it
// takes discrete samples of the instantaneous power at a fixed period,
// quantises them to the converter's resolution, and adds zero-mean Gaussian
// measurement noise. The paper measures per-frame power with these sensors
// and computes energy as average power × execution time; the simulator
// reports both the sensor-derived figure and the exact model integral so
// tests can bound the sensor error.
type PowerSensor struct {
	PeriodS     float64 // sampling period (INA231 default ≈ 1.024 ms at 16 avg)
	ResolutionW float64 // quantisation step (LSB)
	NoiseSigmaW float64 // Gaussian noise standard deviation

	rng    *rand.Rand
	phaseS float64 // time until the next sample, carried across windows
}

// NewPowerSensor creates a sensor with the given sampling period, seeded
// deterministically. Period must be positive.
func NewPowerSensor(periodS float64, seed int64) *PowerSensor {
	if periodS <= 0 {
		panic("platform: PowerSensor needs a positive sampling period")
	}
	return &PowerSensor{
		PeriodS:     periodS,
		ResolutionW: 0.001, // 1 mW LSB, INA231-class
		NoiseSigmaW: 0.002,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// DefaultSensor returns the sensor configuration used by the experiments:
// 1.024 ms sampling, 1 mW resolution, 2 mW noise.
func DefaultSensor(seed int64) *PowerSensor { return NewPowerSensor(1.024e-3, seed) }

// Measure samples the power trajectory described by segments and returns
// the average measured power over the window. When the window is shorter
// than one sampling period and contains no sample point, the sensor returns
// the quantised time-weighted mean instead (the INA231 integrates
// internally), so short frames still produce a reading.
func (s *PowerSensor) Measure(segments []PowerSegment) float64 {
	var total float64
	for _, seg := range segments {
		if seg.Duration < 0 {
			panic("platform: negative segment duration")
		}
		total += seg.Duration
	}
	if total == 0 {
		return 0
	}

	var sum float64
	var n int
	// Walk the segments sampling every PeriodS, preserving phase across
	// calls so sampling is not artificially aligned to frame boundaries.
	t := s.phaseS
	elapsed := 0.0
	for _, seg := range segments {
		end := elapsed + seg.Duration
		for t < end {
			if t >= elapsed {
				sum += s.sample(seg.PowerW)
				n++
			}
			t += s.PeriodS
		}
		elapsed = end
	}
	s.phaseS = t - elapsed

	if n == 0 {
		// Sub-period window: fall back to the integrated mean.
		var acc float64
		for _, seg := range segments {
			acc += seg.PowerW * seg.Duration
		}
		return s.quantize(acc / total)
	}
	return sum / float64(n)
}

func (s *PowerSensor) sample(trueW float64) float64 {
	v := trueW + s.rng.NormFloat64()*s.NoiseSigmaW
	if v < 0 {
		v = 0
	}
	return s.quantize(v)
}

func (s *PowerSensor) quantize(w float64) float64 {
	if s.ResolutionW <= 0 {
		return w
	}
	return math.Round(w/s.ResolutionW) * s.ResolutionW
}

// ExactAverage returns the true time-weighted average power of the
// segments, the noise-free reference the tests compare sensor output to.
func ExactAverage(segments []PowerSegment) float64 {
	var acc, total float64
	for _, seg := range segments {
		acc += seg.PowerW * seg.Duration
		total += seg.Duration
	}
	if total == 0 {
		return 0
	}
	return acc / total
}
