package qgov_test

// Allocation guardrails for the hot paths the benchmarks measure. The
// per-epoch paths (Q update, EPD sampling, EWMA, power model, cluster
// epoch) must be allocation-free in steady state, and a whole simulation
// run must cost only its setup — if a per-frame allocation sneaks back
// into the loop, a 1000-frame run blows straight through these bounds.

import (
	"testing"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/predictor"
	"qgov/internal/sim"
	"qgov/internal/workload"
	"qgov/internal/xrand"
)

func assertAllocs(t *testing.T, name string, max float64, f func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, f); got > max {
		t.Errorf("%s: %.2f allocs/op, want <= %v", name, got, max)
	}
}

func TestQTableUpdateAllocFree(t *testing.T) {
	q := core.NewQTable(25, 19, -1)
	rng := xrand.New(1)
	assertAllocs(t, "QTable.Update", 0, func() {
		s, a, ns := rng.Intn(25), rng.Intn(19), rng.Intn(25)
		q.Update(s, a, -0.3, ns, 0.4, 0.9)
	})
}

func TestEPDSampleAllocFree(t *testing.T) {
	p := core.NewExponentialPolicy()
	rng := xrand.New(1)
	nf := platform.A15Table().NormFreqs()
	for _, slack := range []float64{-0.4, 0, 0.3} {
		assertAllocs(t, "ExponentialPolicy.Sample", 0, func() {
			p.Sample(rng, 19, slack, nf)
		})
	}
}

func TestEWMAObserveAllocFree(t *testing.T) {
	e := predictor.NewEWMA(0.6)
	i := 0
	assertAllocs(t, "EWMA.Observe", 0, func() {
		e.Observe(float64(30e6 + i%1000))
		i++
	})
}

func TestPowerModelAllocFree(t *testing.T) {
	m := platform.DefaultA15PowerModel()
	opp := platform.A15Table()[12]
	assertAllocs(t, "PowerModel.ClusterPowerW", 0, func() {
		_ = m.ClusterPowerW(opp, 4, 55)
	})
}

func TestClusterEpochAllocFree(t *testing.T) {
	c := platform.DefaultA15Cluster(1)
	c.SetOPP(10)
	cycles := []uint64{30e6, 31e6, 29e6, 30e6}
	assertAllocs(t, "Cluster.Execute", 0, func() {
		c.Execute(cycles, 120e-6, 0.040)
	})
}

// A full closed-loop run may allocate only per-run setup (governor,
// cluster, observation buffers), never per frame. The bounds are ~2× the
// measured setup cost; a single allocation inside the 1000-frame loop
// adds 1000 and fails loudly.
func TestSimRunAllocsAreSetupOnly(t *testing.T) {
	tr := workload.MPEG4At30(1, 1000)

	if got := testing.AllocsPerRun(3, func() {
		sim.Run(sim.Config{Trace: tr, Governor: governor.NewPerformance(), Seed: 1})
	}); got > 80 {
		t.Errorf("performance run: %.0f allocs for 1000 frames, want setup-only (<= 80)", got)
	}

	if got := testing.AllocsPerRun(3, func() {
		rtm := core.New(core.DefaultConfig())
		if err := rtm.Calibrate(tr.MaxPerFrame()); err != nil {
			t.Fatal(err)
		}
		sim.Run(sim.Config{Trace: tr, Governor: rtm, Seed: 1})
	}); got > 300 {
		t.Errorf("rtm run: %.0f allocs for 1000 frames, want setup-only (<= 300)", got)
	}
}
