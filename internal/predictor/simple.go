package predictor

import "fmt"

// LastValue predicts that the next epoch repeats the previous one — the
// cheapest possible predictor and the natural baseline for EWMA.
type LastValue struct {
	last float64
}

// NewLastValue creates the predictor.
func NewLastValue() *LastValue { return &LastValue{} }

// Name implements Predictor.
func (l *LastValue) Name() string { return "last-value" }

// Predict implements Predictor.
func (l *LastValue) Predict() float64 { return l.last }

// Observe implements Predictor.
func (l *LastValue) Observe(actual float64) { l.last = actual }

// Reset implements Predictor.
func (l *LastValue) Reset() { l.last = 0 }

// MovingAverage predicts the mean of the last W observations. Longer
// windows smooth more but lag workload phase changes harder — the lag
// behaviour the paper holds against plain filtering approaches.
type MovingAverage struct {
	window []float64
	next   int
	filled int
	sum    float64
}

// NewMovingAverage creates a predictor with window size w >= 1.
func NewMovingAverage(w int) *MovingAverage {
	if w < 1 {
		panic(fmt.Sprintf("predictor: moving average window %d < 1", w))
	}
	return &MovingAverage{window: make([]float64, w)}
}

// Name implements Predictor.
func (m *MovingAverage) Name() string { return fmt.Sprintf("ma(%d)", len(m.window)) }

// Predict implements Predictor.
func (m *MovingAverage) Predict() float64 {
	if m.filled == 0 {
		return 0
	}
	return m.sum / float64(m.filled)
}

// Observe implements Predictor.
func (m *MovingAverage) Observe(actual float64) {
	if m.filled == len(m.window) {
		m.sum -= m.window[m.next]
	} else {
		m.filled++
	}
	m.window[m.next] = actual
	m.sum += actual
	m.next = (m.next + 1) % len(m.window)
}

// Reset implements Predictor.
func (m *MovingAverage) Reset() {
	for i := range m.window {
		m.window[i] = 0
	}
	m.next, m.filled, m.sum = 0, 0, 0
}

// Holt is double exponential smoothing: it tracks a level and a trend, so
// unlike EWMA it extrapolates ramps instead of lagging them.
type Holt struct {
	alpha, beta  float64
	level, trend float64
	seen         int
}

// NewHolt creates the predictor. Both smoothing factors must lie in (0, 1].
func NewHolt(alpha, beta float64) *Holt {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("predictor: Holt parameters (%v, %v) outside (0,1]", alpha, beta))
	}
	return &Holt{alpha: alpha, beta: beta}
}

// Name implements Predictor.
func (h *Holt) Name() string { return fmt.Sprintf("holt(α=%g,β=%g)", h.alpha, h.beta) }

// Predict implements Predictor.
func (h *Holt) Predict() float64 {
	if h.seen == 0 {
		return 0
	}
	return h.level + h.trend
}

// Observe implements Predictor.
func (h *Holt) Observe(actual float64) {
	switch h.seen {
	case 0:
		h.level = actual
	case 1:
		h.trend = actual - h.level
		h.level = actual
	default:
		prevLevel := h.level
		h.level = h.alpha*actual + (1-h.alpha)*(h.level+h.trend)
		h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	}
	h.seen++
}

// Reset implements Predictor.
func (h *Holt) Reset() {
	h.level, h.trend = 0, 0
	h.seen = 0
}
