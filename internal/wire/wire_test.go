package wire_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"qgov/internal/governor"
	"qgov/internal/wire"
)

func sampleObs() governor.Observation {
	return governor.Observation{
		Epoch:     41,
		Cycles:    []uint64{30e6, 31e6, 29e6, 30e6},
		Util:      []float64{0.6, 0.5, 0.7, 0.6},
		ExecTimeS: 0.025,
		PeriodS:   0.040,
		WallTimeS: 0.040,
		PowerW:    2.25,
		TempC:     50.5,
		OPPIdx:    10,
	}
}

// observationsBitEqual compares two observations field for field with
// float comparison by bits, so NaNs and negative zeros count as equal to
// themselves — the wire contract is bit-exact transport, not numeric
// equivalence.
func observationsBitEqual(a, b governor.Observation) bool {
	f64 := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if a.Epoch != b.Epoch || a.OPPIdx != b.OPPIdx ||
		!f64(a.ExecTimeS, b.ExecTimeS) || !f64(a.PeriodS, b.PeriodS) ||
		!f64(a.WallTimeS, b.WallTimeS) || !f64(a.PowerW, b.PowerW) || !f64(a.TempC, b.TempC) {
		return false
	}
	if len(a.Cycles) != len(b.Cycles) || len(a.Util) != len(b.Util) {
		return false
	}
	for i := range a.Cycles {
		if a.Cycles[i] != b.Cycles[i] {
			return false
		}
	}
	for i := range a.Util {
		if !f64(a.Util[i], b.Util[i]) {
			return false
		}
	}
	return true
}

func TestObserveRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		session string
		obs     governor.Observation
	}{
		{"steady", "cluster-0", sampleObs()},
		{"first-epoch", "s1", governor.Observation{Epoch: -1, OPPIdx: -1}},
		{"empty-vectors", "x", governor.Observation{Epoch: 3, ExecTimeS: 0.1}},
		{"nan-and-negzero", "n", governor.Observation{
			Epoch: 2, ExecTimeS: math.NaN(), PowerW: math.Copysign(0, -1),
			Util: []float64{math.Inf(1), math.Inf(-1)},
		}},
		{"max-session", strings.Repeat("a", wire.MaxSession), sampleObs()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := wire.AppendObserve(nil, 7, tc.session, &tc.obs)
			if err != nil {
				t.Fatal(err)
			}
			typ, payload, rest, err := wire.DecodeFrame(frame)
			if err != nil || typ != wire.MsgObserve || len(rest) != 0 {
				t.Fatalf("DecodeFrame: typ %d rest %d err %v", typ, len(rest), err)
			}
			var m wire.Observe
			if err := m.Decode(payload); err != nil {
				t.Fatal(err)
			}
			if m.ID != 7 || string(m.Session) != tc.session {
				t.Errorf("id/session mangled: %d %q", m.ID, m.Session)
			}
			if !observationsBitEqual(m.Obs, tc.obs) {
				t.Errorf("observation mangled:\n got %+v\nwant %+v", m.Obs, tc.obs)
			}
		})
	}
}

func TestDecideRoundTrip(t *testing.T) {
	for _, errMsg := range []string{"", `unknown session "ghost"`} {
		frame, err := wire.AppendDecide(nil, 9, 0, -1, 0, errMsg)
		if err != nil {
			t.Fatal(err)
		}
		frame, err = wire.AppendDecide(frame, 10, 7, 12, 1800, "")
		if err != nil {
			t.Fatal(err)
		}
		typ, payload, rest, err := wire.DecodeFrame(frame)
		if err != nil || typ != wire.MsgDecide {
			t.Fatalf("first frame: typ %d err %v", typ, err)
		}
		var m wire.Decide
		if err := m.Decode(payload); err != nil {
			t.Fatal(err)
		}
		if m.ID != 9 || m.MemberEpoch != 0 || m.OPPIdx != -1 || string(m.Err) != errMsg {
			t.Errorf("decide mangled: %+v", m)
		}
		typ, payload, rest, err = wire.DecodeFrame(rest)
		if err != nil || typ != wire.MsgDecide || len(rest) != 0 {
			t.Fatalf("second frame: typ %d rest %d err %v", typ, len(rest), err)
		}
		if err := m.Decode(payload); err != nil {
			t.Fatal(err)
		}
		if m.ID != 10 || m.MemberEpoch != 7 || m.OPPIdx != 12 || m.FreqMHz != 1800 || len(m.Err) != 0 {
			t.Errorf("second decide mangled: %+v", m)
		}
	}
}

// TestObserveFlagsRoundTrip pins the flags byte: a forwarded observe
// decodes with FlagForwarded set, a plain AppendObserve with zero.
func TestObserveFlagsRoundTrip(t *testing.T) {
	obs := sampleObs()
	frame, err := wire.AppendObserveBytes(nil, 3, wire.FlagForwarded, []byte("c0"), &obs)
	if err != nil {
		t.Fatal(err)
	}
	var m wire.Observe
	_, payload, _, err := wire.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.ID != 3 || m.Flags != wire.FlagForwarded || string(m.Session) != "c0" {
		t.Errorf("forwarded observe mangled: id %d flags %#x session %q", m.ID, m.Flags, m.Session)
	}
	if !observationsBitEqual(m.Obs, obs) {
		t.Errorf("observation mangled through AppendObserveBytes")
	}

	plain, err := wire.AppendObserve(nil, 3, "c0", &obs)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, _, _ = wire.DecodeFrame(plain)
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.Flags != 0 {
		t.Errorf("plain observe carries flags %#x", m.Flags)
	}
	// The two encodings differ only in the flags byte.
	if len(frame) != len(plain) {
		t.Errorf("frame lengths differ: %d vs %d", len(frame), len(plain))
	}
}

func TestAppendObserveBounds(t *testing.T) {
	obs := sampleObs()
	if _, err := wire.AppendObserve(nil, 1, strings.Repeat("a", wire.MaxSession+1), &obs); !errors.Is(err, wire.ErrTooLong) {
		t.Errorf("oversized session: %v", err)
	}
	obs.Cycles = make([]uint64, wire.MaxVector+1)
	if _, err := wire.AppendObserve(nil, 1, "s", &obs); !errors.Is(err, wire.ErrTooLong) {
		t.Errorf("oversized cycles: %v", err)
	}
	// A failed append must leave dst untouched.
	dst := []byte{1, 2, 3}
	out, err := wire.AppendObserve(dst, 1, "s", &obs)
	if err == nil || len(out) != 3 {
		t.Errorf("failed append grew dst to %d bytes (err %v)", len(out), err)
	}
}

func validObserveFrame(t testing.TB) []byte {
	t.Helper()
	obs := sampleObs()
	frame, err := wire.AppendObserve(nil, 1, "c0", &obs)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestDecodeFrameErrors(t *testing.T) {
	frame := validObserveFrame(t)

	t.Run("truncated-everywhere", func(t *testing.T) {
		for n := 0; n < len(frame); n++ {
			if _, _, _, err := wire.DecodeFrame(frame[:n]); !errors.Is(err, wire.ErrTruncated) {
				t.Fatalf("prefix of %d bytes: %v", n, err)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		b := bytes.Clone(frame)
		b[0] ^= 0xff
		if _, _, _, err := wire.DecodeFrame(b); !errors.Is(err, wire.ErrBadMagic) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		b := bytes.Clone(frame)
		b[2] = wire.Version + 1
		if _, _, _, err := wire.DecodeFrame(b); !errors.Is(err, wire.ErrBadVersion) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("oversized-length", func(t *testing.T) {
		b := bytes.Clone(frame)
		binary.BigEndian.PutUint32(b[4:], wire.MaxPayload+1)
		if _, _, _, err := wire.DecodeFrame(b); !errors.Is(err, wire.ErrFrameTooLarge) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("payload-truncated", func(t *testing.T) {
		// Shorten the payload but leave the length prefix: the message
		// decode must reject it without reading past the end.
		_, payload, _, err := wire.DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		var m wire.Observe
		for n := 0; n < len(payload); n++ {
			if err := m.Decode(payload[:n]); err == nil {
				t.Fatalf("payload prefix of %d bytes decoded cleanly", n)
			}
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		_, payload, _, err := wire.DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		grown := append(bytes.Clone(payload), 0)
		var m wire.Observe
		if err := m.Decode(grown); !errors.Is(err, wire.ErrTrailingBytes) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("vector-count-lies", func(t *testing.T) {
		// Claim 65535 cycle entries with no bytes behind them: must error
		// before allocating anything of that size.
		var m wire.Observe
		p := bytes.Clone(validObserveFrame(t)[wire.HeaderSize:])
		// cycles count sits after the fixed 50-byte prefix + session.
		off := 4 + 1 + 8 + 5*8 + 4 + 1 + 2 // id, flags, epoch, floats, opp, sesslen, "c0"
		binary.BigEndian.PutUint16(p[off:], 0xffff)
		if err := m.Decode(p); err == nil {
			t.Error("lying vector count decoded cleanly")
		}
	})
}

func TestReaderStream(t *testing.T) {
	obs := sampleObs()
	var stream []byte
	var err error
	for i := 0; i < 5; i++ {
		obs.Epoch = i
		stream, err = wire.AppendObserve(stream, uint32(i), "c0", &obs)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := wire.NewReader(bytes.NewReader(stream))
	var m wire.Observe
	for i := 0; i < 5; i++ {
		typ, payload, err := r.Next()
		if err != nil || typ != wire.MsgObserve {
			t.Fatalf("frame %d: typ %d err %v", i, typ, err)
		}
		if err := m.Decode(payload); err != nil {
			t.Fatal(err)
		}
		if m.ID != uint32(i) || m.Obs.Epoch != i {
			t.Fatalf("frame %d decoded as id %d epoch %d", i, m.ID, m.Obs.Epoch)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Errorf("clean end of stream returned %v, want io.EOF", err)
	}

	// A stream cut mid-frame is an unexpected EOF, not a clean one.
	r = wire.NewReader(bytes.NewReader(stream[:len(stream)-3]))
	for i := 0; i < 4; i++ {
		if _, _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-frame end of stream returned %v, want io.ErrUnexpectedEOF", err)
	}
}

// The codec hot path must not allocate in steady state: encode appends
// into a reused buffer, decode reuses the message's slice capacity.
func TestCodecZeroAlloc(t *testing.T) {
	obs := sampleObs()
	var buf []byte
	var err error
	if buf, err = wire.AppendObserve(buf[:0], 1, "cluster-0", &obs); err != nil {
		t.Fatal(err)
	}
	payload := buf[wire.HeaderSize:]
	var m wire.Observe
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		buf, err = wire.AppendObserve(buf[:0], 1, "cluster-0", &obs)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendObserve allocates %.1f/op in steady state", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := m.Decode(payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Observe.Decode allocates %.1f/op in steady state", n)
	}

	dec, err := wire.AppendDecide(nil, 1, 1, 10, 1800, "")
	if err != nil {
		t.Fatal(err)
	}
	var dm wire.Decide
	if n := testing.AllocsPerRun(200, func() {
		dec, err = wire.AppendDecide(dec[:0], 1, 1, 10, 1800, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := dm.Decode(dec[wire.HeaderSize:]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Decide round-trip allocates %.1f/op in steady state", n)
	}
}
