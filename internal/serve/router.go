package serve

import (
	crand "crypto/rand"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"qgov/internal/governor"
	"qgov/internal/ring"
	"qgov/internal/serve/client"
	"qgov/internal/wire"
)

// Router is the fleet-facing front of a sharded rtmd deployment: it
// owns no sessions itself, maps every session id onto a replica with a
// consistent-hash ring, and forwards traffic over one persistent
// multiplexed binary connection per replica. Decide batches split by
// owner and fan out to the replicas in parallel — each replica's slice
// of the batch travels as one flush on that replica's connection, so
// the connection-level batch coalescing the flat server relies on is
// preserved per replica. Control operations (create, checkpoint,
// delete, info) follow the same ring; metrics and list aggregate across
// the fleet.
//
// The router serves the same two fronts as a replica: Handler is the
// HTTP control plane (plus JSON decide), NewRouterTCP the binary
// transport. Clients cannot tell a router from a flat server — the
// router equivalence test holds routed decision streams byte-identical
// to a single server over the same session set.
//
// RemoveReplica drains a member: its sessions hand off to their new
// owners by checkpoint/restore (freeze on the leaving replica, re-create
// warm from that state on the ring's new placement), so learnt policies
// survive resharding. Adding replicas to a live router (the other half
// of live resharding) is future work; membership otherwise fixes at
// construction.
type Router struct {
	opt RouterOptions

	// mu guards membership: the ring and the client set. Decide and
	// control traffic holds it for read; RemoveReplica holds it for
	// write across the whole hand-off, so no decision can land on a
	// session mid-move.
	mu      sync.RWMutex
	ring    *ring.Ring
	clients map[string]*client.Client

	nextID    atomic.Int64
	decisions atomic.Int64
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// VirtualNodes is the ring's virtual-node count per replica; <= 0
	// selects ring.DefaultVirtualNodes.
	VirtualNodes int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// NewRouter dials every replica's binary address and builds the ring
// over them. Replica addresses are the ring's member names: every
// router given the same replica set computes the same placement.
func NewRouter(replicas []string, opt RouterOptions) (*Router, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one replica")
	}
	rt := &Router{
		opt:     opt,
		ring:    ring.New(opt.VirtualNodes),
		clients: make(map[string]*client.Client, len(replicas)),
	}
	for _, addr := range replicas {
		if _, dup := rt.clients[addr]; dup {
			continue
		}
		cl, err := client.Dial(addr)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("serve: dialing replica %s: %w", addr, err)
		}
		rt.clients[addr] = cl
		rt.ring.Add(addr)
	}
	return rt, nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.opt.Logf != nil {
		rt.opt.Logf(format, args...)
	}
}

// Close drops every replica connection.
func (rt *Router) Close() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var firstErr error
	for addr, cl := range rt.clients {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(rt.clients, addr)
		rt.ring.Remove(addr)
	}
	return firstErr
}

// Replicas returns the current member addresses, sorted.
func (rt *Router) Replicas() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Members()
}

// Owner returns the replica address that owns the session id.
func (rt *Router) Owner(id string) (string, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Owner(id)
}

// decideBatch implements connBackend: requests group by owning replica
// and fan out in parallel, one DecideBatch (one flush, one coalesced
// server-side fan-out) per replica. Entries for unreachable replicas
// fail individually, exactly like unknown sessions.
func (rt *Router) decideBatch(batch []*observeReq) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()

	type group struct {
		idx      []int
		sessions []string
		obs      []governor.Observation
	}
	groups := make(map[string]*group)
	for i, r := range batch {
		if r.ctrl {
			continue // callers split controls out; defensive
		}
		owner, ok := rt.ring.OwnerBytes(r.m.Session)
		if !ok {
			r.oppIdx, r.freqMHz = -1, 0
			r.errMsg = "router has no replicas"
			continue
		}
		g := groups[owner]
		if g == nil {
			g = &group{}
			groups[owner] = g
		}
		g.idx = append(g.idx, i)
		g.sessions = append(g.sessions, string(r.m.Session))
		g.obs = append(g.obs, r.m.Obs)
	}

	var wg sync.WaitGroup
	for owner, g := range groups {
		wg.Add(1)
		go func(owner string, g *group) {
			defer wg.Done()
			out := make([]client.Decision, len(g.sessions))
			err := rt.clients[owner].DecideBatch(g.sessions, g.obs, out)
			for k, i := range g.idx {
				r := batch[i]
				if err != nil {
					r.oppIdx, r.freqMHz = -1, 0
					r.errMsg = fmt.Sprintf("replica %s: %v", owner, err)
					continue
				}
				r.oppIdx = int32(out[k].OPPIdx)
				r.freqMHz = int32(out[k].FreqMHz)
				r.errMsg = out[k].Err
				if out[k].Err == "" {
					rt.decisions.Add(1)
				}
			}
		}(owner, g)
	}
	wg.Wait()
}

// control implements connBackend: session-scoped ops forward to the
// owning replica; fleet-scoped ops aggregate across every replica.
func (rt *Router) control(op byte, session string, body []byte) (uint16, []byte) {
	switch op {
	case wire.OpMetrics:
		return rt.aggregateMetrics()
	case wire.OpList:
		return rt.aggregateList()
	case wire.OpHealth:
		return rt.aggregateHealth()
	case wire.OpCreate:
		id := session
		if id == "" {
			// The id decides placement, so the router must know it before
			// forwarding; parse it out of the body and assign one if the
			// caller left naming to the server.
			var req struct {
				ID string `json:"id"`
			}
			if len(body) > 0 {
				if err := json.Unmarshal(body, &req); err != nil {
					return http.StatusBadRequest, errorBody(err)
				}
			}
			id = req.ID
		}
		if id == "" {
			// The router is stateless and replicas outlive it, so
			// auto-assigned ids must not repeat across router restarts
			// (a counter would collide with sessions the fleet still
			// holds) or across two routers fronting the same fleet.
			var rnd [6]byte
			if _, err := crand.Read(rnd[:]); err != nil {
				return http.StatusInternalServerError, errorBody(err)
			}
			id = fmt.Sprintf("r%d-%x", rt.nextID.Add(1), rnd)
		}
		if !validSessionID(id) {
			return http.StatusBadRequest, errorBody(errBadSessionID(id))
		}
		return rt.forward(wire.OpCreate, id, body)
	default:
		return rt.forward(op, session, body)
	}
}

// forward routes one session-scoped control op to the session's owner.
// The op travels with the session id in the frame's session field, so
// the replica applies it to the right session whatever the body says.
// The read lock is held across the round trip: a control op must not
// land on a replica after RemoveReplica has enumerated its sessions —
// the drain would miss it and strand the session off-ring.
func (rt *Router) forward(op byte, session string, body []byte) (uint16, []byte) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	owner, ok := rt.ring.Owner(session)
	cl := rt.clients[owner]
	if !ok || cl == nil {
		return http.StatusServiceUnavailable, errorBody(errf("router has no replicas"))
	}
	status, resp, err := cl.Control(op, session, body)
	if err != nil {
		return http.StatusBadGateway, errorBody(fmt.Errorf("replica %s: %w", owner, err))
	}
	return uint16(status), resp
}

// eachReplica runs f per replica in parallel, collecting results in
// member order. The read lock is held across the fan-out so the member
// set cannot shrink under it.
func (rt *Router) eachReplica(f func(addr string, cl *client.Client) ([]byte, error)) ([][]byte, []string, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	members := rt.ring.Members()
	clients := make([]*client.Client, len(members))
	for i, m := range members {
		clients[i] = rt.clients[m]
	}

	bodies := make([][]byte, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i := range members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], errs[i] = f(members[i], clients[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("replica %s: %w", members[i], err)
		}
	}
	return bodies, members, nil
}

// mergedMetrics merges every replica's /v1/metrics document: session
// entries union (ids are globally unique — the ring sends each to one
// replica) and decision counters sum.
func (rt *Router) mergedMetrics() (metricsJSON, error) {
	bodies, _, err := rt.eachReplica(func(addr string, cl *client.Client) ([]byte, error) {
		status, body, err := cl.Metrics()
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("metrics returned %d", status)
		}
		return body, nil
	})
	if err != nil {
		return metricsJSON{}, err
	}
	merged := metricsJSON{Sessions: make(map[string]sessionMetricsJSON)}
	for _, body := range bodies {
		var m metricsJSON
		if err := json.Unmarshal(body, &m); err != nil {
			return metricsJSON{}, fmt.Errorf("decoding replica metrics: %w", err)
		}
		merged.Decisions += m.Decisions
		for id, sm := range m.Sessions {
			merged.Sessions[id] = sm
		}
	}
	return merged, nil
}

// aggregateMetrics is mergedMetrics in control-plane clothing.
func (rt *Router) aggregateMetrics() (uint16, []byte) {
	merged, err := rt.mergedMetrics()
	if err != nil {
		return http.StatusBadGateway, errorBody(err)
	}
	return http.StatusOK, jsonBody(merged)
}

// aggregateList concatenates every replica's session list, sorted by id.
func (rt *Router) aggregateList() (uint16, []byte) {
	bodies, _, err := rt.eachReplica(func(addr string, cl *client.Client) ([]byte, error) {
		status, body, err := cl.ListSessions()
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("list returned %d", status)
		}
		return body, nil
	})
	if err != nil {
		return http.StatusBadGateway, errorBody(err)
	}
	var all []sessionInfo
	for _, body := range bodies {
		var infos []sessionInfo
		if err := json.Unmarshal(body, &infos); err != nil {
			return http.StatusBadGateway, errorBody(fmt.Errorf("decoding replica list: %w", err))
		}
		all = append(all, infos...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return http.StatusOK, jsonBody(all)
}

// RemoveReplica drains one member: every session it owns is frozen
// there, re-created warm from that state on the replica the shrunk ring
// now places it on, and deleted from the leaver. The write lock is held
// throughout, so no decide observes a session mid-move; callers pause
// their decision loops at an epoch boundary around this call (decides
// issued during the move simply block, they do not fail).
//
// The drain is abort-on-failure: if any session cannot move, the
// sessions already moved are moved back, the ring is restored, and the
// replica stays connected — the router never ends up routing a session
// away from the only replica that holds it. It returns the moved
// session ids.
func (rt *Router) RemoveReplica(addr string) ([]string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()

	leaving := rt.clients[addr]
	if leaving == nil {
		return nil, fmt.Errorf("serve: %s is not a replica", addr)
	}
	if len(rt.clients) == 1 {
		return nil, fmt.Errorf("serve: cannot remove the last replica")
	}

	status, body, err := leaving.ListSessions()
	if err != nil || status != http.StatusOK {
		return nil, fmt.Errorf("serve: listing sessions on %s: status %d err %v", addr, status, err)
	}
	var infos []sessionInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		return nil, fmt.Errorf("serve: decoding session list from %s: %w", addr, err)
	}

	rt.ring.Remove(addr)
	var moved []string
	for _, info := range infos {
		owner, ok := rt.ring.Owner(info.ID)
		if !ok {
			// Unreachable with ≥ 1 survivor; guard anyway.
			rt.ring.Add(addr)
			return nil, fmt.Errorf("serve: ring is empty")
		}
		if err := rt.moveSession(leaving, addr, rt.clients[owner], owner, info); err != nil {
			rt.logf("serve: router: moving %s off %s failed, aborting drain: %v", info.ID, addr, err)
			rt.undoDrain(leaving, addr, infos, moved)
			rt.ring.Add(addr)
			return nil, fmt.Errorf("serve: draining %s: moving %s: %w", addr, info.ID, err)
		}
		moved = append(moved, info.ID)
	}

	delete(rt.clients, addr)
	closeErr := leaving.Close()
	rt.logf("serve: router: drained %s (%d sessions moved)", addr, len(moved))
	return moved, closeErr
}

// undoDrain moves already-moved sessions back onto the replica whose
// drain is being aborted. The ring is still shrunk here, so each moved
// session's current holder is its ring owner. Undo failures are logged
// and skipped — at that point the fleet is degraded either way, and
// leaving the session where it is beats deleting it.
func (rt *Router) undoDrain(leaving *client.Client, addr string, infos []sessionInfo, moved []string) {
	byID := make(map[string]sessionInfo, len(infos))
	for _, info := range infos {
		byID[info.ID] = info
	}
	for _, id := range moved {
		owner, ok := rt.ring.Owner(id)
		if !ok {
			continue
		}
		if err := rt.moveSession(rt.clients[owner], owner, leaving, addr, byID[id]); err != nil {
			rt.logf("serve: router: undo of %s back to %s failed: %v", id, addr, err)
		}
	}
}

// moveSession hands one session between replicas by checkpoint/restore:
// freeze on the source, re-create warm on the destination, delete from
// the source, then persist on the destination. The delete runs after
// the create so the session always exists somewhere; the final
// checkpoint runs after the delete because deleting the source session
// garbage-collects its checkpoint — on shared checkpoint storage that
// would otherwise leave the moved session with no durable state until
// the destination's next periodic sweep. Callers hold the write lock.
func (rt *Router) moveSession(src *client.Client, srcAddr string, dst *client.Client, dstAddr string, info sessionInfo) error {
	if dst == nil {
		return fmt.Errorf("no client for %s", dstAddr)
	}

	// Freeze the learnt state. Governors that keep none (400) move cold;
	// a governor that has not decided yet (409) moves cold too.
	var state json.RawMessage
	status, body, err := src.CheckpointSession(info.ID)
	switch {
	case err != nil:
		return fmt.Errorf("freezing on %s: %w", srcAddr, err)
	case status == http.StatusOK:
		var ck checkpointResponse
		if err := json.Unmarshal(body, &ck); err != nil {
			return fmt.Errorf("decoding checkpoint: %w", err)
		}
		state = ck.State
	case status == http.StatusBadRequest || status == http.StatusConflict:
		// stateless governor / nothing learnt yet
	default:
		return fmt.Errorf("freezing on %s: status %d: %s", srcAddr, status, body)
	}

	// The moved session keeps its identity: workload and cap re-apply,
	// and the manifest it originally warm-started from rides along as
	// provenance (the state itself travels inline). A ThermalCap's
	// ceiling is transient protective state and is not carried — the
	// destination starts at the full ladder and re-throttles within an
	// epoch per over-budget step, exactly as after a restart.
	create := createRequest{
		ID:           info.ID,
		Governor:     info.Governor,
		Platform:     info.Platform,
		Workload:     info.Workload,
		PeriodS:      info.PeriodS,
		Seed:         info.Seed,
		ThermalCapMW: info.ThermalCapMW,
		WarmStart:    info.WarmManifest,
		State:        state,
	}
	status, body, err = dst.CreateSession(jsonBody(create))
	if err != nil {
		return fmt.Errorf("re-creating on %s: %w", dstAddr, err)
	}
	if status != http.StatusCreated {
		return fmt.Errorf("re-creating on %s: status %d: %s", dstAddr, status, body)
	}

	if status, body, err = src.DeleteSession(info.ID); err != nil || status != http.StatusNoContent {
		// The move failed with the session live on BOTH replicas. Remove
		// the destination copy so the source (which the aborting caller
		// will restore to the ring) stays the single authority — an
		// orphaned dst copy would keep checkpointing stale state over the
		// live session's on shared storage.
		if st, b, derr := dst.DeleteSession(info.ID); derr != nil || st != http.StatusNoContent {
			rt.logf("serve: router: removing duplicate %s from %s after failed move: status %d err %v (%s)",
				info.ID, dstAddr, st, derr, b)
		} else if state != nil {
			// That delete garbage-collected the checkpoint; on shared
			// storage it was the survivor's too. Re-freeze on the source
			// (best-effort — its periodic sweep retries).
			if st, _, cerr := src.CheckpointSession(info.ID); cerr != nil || st != http.StatusOK {
				rt.logf("serve: router: re-freezing %s on %s after aborted move: status %d err %v",
					info.ID, srcAddr, st, cerr)
			}
		}
		return fmt.Errorf("deleting from %s: status %d err %v (%s)", srcAddr, status, err, body)
	}

	// Re-persist on the destination; best-effort (the periodic sweep
	// retries), but without it a crash before the next sweep would lose
	// the learnt state the move just carried.
	if state != nil {
		if status, body, err := dst.CheckpointSession(info.ID); err != nil || status != http.StatusOK {
			rt.logf("serve: router: persisting %s on %s after move: status %d err %v (%s)",
				info.ID, dstAddr, status, err, body)
		}
	}
	return nil
}

// NewRouterTCP wraps a Router with a binary-transport listener — the
// routed twin of NewTCP. Clients speak the identical protocol; the
// router forwards each frame to the replica that owns its session.
func NewRouterTCP(rt *Router, lis net.Listener) *TCPServer {
	return newTCPListener(rt, lis)
}

// Handler returns the router's HTTP API: the same surface a flat server
// exposes, so existing clients point at the router unchanged.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", rt.handleRouteCreate)
	mux.HandleFunc("POST /v1/decide", rt.handleRouteDecide)
	mux.HandleFunc("GET /v1/sessions/{id}", rt.handleRouteOp(wire.OpInfo))
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleRouteOp(wire.OpDelete))
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", rt.handleRouteOp(wire.OpCheckpoint))
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsPrometheus(r) {
			// The router scrapes like a replica: the fleet-merged document
			// renders through the same exposition writer.
			merged, err := rt.mergedMetrics()
			if err != nil {
				writeError(w, http.StatusBadGateway, err)
				return
			}
			w.Header().Set("Content-Type", prometheusContentType)
			writePrometheus(w, merged)
			return
		}
		status, body := rt.control(wire.OpMetrics, "", nil)
		writeControlResult(w, status, body)
	})
	mux.HandleFunc("GET /healthz", rt.handleRouteHealth)
	return mux
}

// writeControlResult relays a control result as an HTTP response; the
// two planes share status codes and bodies by construction.
func writeControlResult(w http.ResponseWriter, status uint16, body []byte) {
	if len(body) == 0 {
		w.WriteHeader(int(status))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(int(status))
	_, _ = w.Write(body)
}

func (rt *Router) handleRouteCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decodeBody(w, r, &req) {
		return
	}
	status, body := rt.control(wire.OpCreate, req.ID, jsonBody(req))
	writeControlResult(w, status, body)
}

func (rt *Router) handleRouteOp(op byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		status, body := rt.control(op, r.PathValue("id"), nil)
		writeControlResult(w, status, body)
	}
}

// handleRouteDecide serves a JSON decide batch through the same
// grouping/fan-out path as the binary transport.
func (rt *Router) handleRouteDecide(w http.ResponseWriter, r *http.Request) {
	var req decideRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n := len(req.Requests)
	if err := validateDecideBatch(n); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	batch := make([]*observeReq, n)
	for i, item := range req.Requests {
		batch[i] = &observeReq{}
		batch[i].m.Session = []byte(item.Session)
		batch[i].m.Obs = item.Obs.observation()
	}
	rt.decideBatch(batch)
	resp := decideResponse{Decisions: make([]decisionJSON, n)}
	for i, r := range batch {
		// decideBatch zeroes freqMHz on every failure path, matching the
		// flat server's error shape.
		resp.Decisions[i] = decisionJSON{
			Session: req.Requests[i].Session,
			OPPIdx:  int(r.oppIdx),
			FreqMHz: int(r.freqMHz),
			Error:   r.errMsg,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// aggregateHealth sums fleet liveness: one O(1) health op per replica
// — a probe never enumerates sessions. Both control planes serve it
// (GET /healthz and binary OpHealth return the same body).
func (rt *Router) aggregateHealth() (uint16, []byte) {
	bodies, members, err := rt.eachReplica(func(addr string, cl *client.Client) ([]byte, error) {
		status, body, err := cl.Health()
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("health returned %d", status)
		}
		return body, nil
	})
	if err != nil {
		return http.StatusBadGateway, errorBody(err)
	}
	var sessions int
	var decisions int64
	for i, body := range bodies {
		var h healthJSON
		if err := json.Unmarshal(body, &h); err != nil {
			return http.StatusBadGateway, errorBody(fmt.Errorf("decoding health from %s: %w", members[i], err))
		}
		sessions += h.Sessions
		decisions += h.Decisions
	}
	return http.StatusOK, jsonBody(map[string]any{
		"status":           "ok",
		"sessions":         sessions,
		"replicas":         len(members),
		"decisions":        decisions, // fleet total, direct traffic included
		"routed_decisions": rt.decisions.Load(),
	})
}

func (rt *Router) handleRouteHealth(w http.ResponseWriter, _ *http.Request) {
	status, body := rt.aggregateHealth()
	writeControlResult(w, status, body)
}
