package experiments

import (
	"flag"
	"fmt"
	"net"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/loadgen"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
)

// -soakspec swaps the built-in smoke spec for a spec file; the CI soak
// job passes examples/soak-smoke.json to run the full-size smoke.
var soakSpec = flag.String("soakspec", "", "loadgen spec file for TestSoakSmoke (default: tiny built-in spec)")

// smokeSpec is the built-in miniature soak: enough clients, churn and
// storming to exercise every code path in a couple of seconds.
func smokeSpec() loadgen.Spec {
	return loadgen.Spec{
		Seed:     7,
		HorizonS: 4,
		IDPrefix: "soak",
		Clients: []loadgen.ClientClass{
			{
				Name:            "steady",
				Count:           40,
				Arrival:         loadgen.Arrival{Process: "poisson", RateHz: 20},
				LifetimeDecides: 25,
				StartWindowS:    0.5,
			},
			{
				Name:         "burst",
				Count:        20,
				Arrival:      loadgen.Arrival{Process: "weibull", RateHz: 15, Shape: 0.7},
				RateSkew:     &loadgen.Skew{Dist: "pareto", Param: 2},
				StartWindowS: 0.5,
			},
		},
		Storms: []loadgen.Storm{
			{AtS: 1.5, Fraction: 0.6, RestartDelayS: 0.1},
			{AtS: 3, Fraction: 1, RestartDelayS: 0.05},
		},
	}
}

func soakSmokeSpec(t *testing.T) loadgen.Spec {
	t.Helper()
	if *soakSpec == "" {
		return smokeSpec()
	}
	spec, err := loadgen.LoadSpec(*soakSpec)
	if err != nil {
		t.Fatalf("loading -soakspec: %v", err)
	}
	return spec
}

// TestSoakSmoke is the CI churn soak: a full lifecycle workload against
// a real server with checkpointing on, asserting the run is clean, the
// latency histogram resolves its tail, the drain returns the heap, the
// Q-table pool drains with it, and — at CI scale — the per-session
// live-memory floor holds.
func TestSoakSmoke(t *testing.T) {
	res, err := RunSoak(SoakConfig{
		Spec:     soakSmokeSpec(t),
		Topology: "flat",
		Lanes:    16,
		// The smoke drives ~5k decides/s — batches of 64 keep every lane
		// busy while shrinking the fixed lane-channel buffers (~7 MB at
		// the 512 default) that would otherwise pollute the per-session
		// live-memory reading at this deliberately small scale.
		BatchMax:        64,
		CheckpointEvery: 100 * time.Millisecond,
		LiveSampleEvery: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	t.Logf("soak: %+v", res)
	if res.DecideErrors != 0 {
		t.Fatalf("%d decide errors in a clean schedule", res.DecideErrors)
	}
	if res.Creates != res.Deletes {
		t.Fatalf("creates %d != deletes %d after drain", res.Creates, res.Deletes)
	}
	if res.Decides == 0 || res.PeakLive == 0 {
		t.Fatalf("hollow soak: %+v", res)
	}
	if res.P99US <= 0 {
		t.Fatalf("p99 unresolved (%v µs): histogram overflowed or empty", res.P99US)
	}
	if res.P999US < res.P99US && res.P999US > 0 {
		t.Fatalf("p999 %v µs < p99 %v µs", res.P999US, res.P99US)
	}
	if res.HeapPeakB == 0 || res.HeapEndB == 0 {
		t.Fatalf("memory trajectory not sampled: %+v", res)
	}
	if res.HeapRecoveredFrac < 0 || res.HeapRecoveredFrac > 1 {
		t.Fatalf("heap_recovered_frac %v outside [0,1]", res.HeapRecoveredFrac)
	}
	// Every session was deleted; a page still interned is a refcount leak.
	if res.QTablePoolPagesEnd != 0 || res.QTablePoolBytesEnd != 0 {
		t.Fatalf("Q-table pool leaked %d pages / %d bytes after drain",
			res.QTablePoolPagesEnd, res.QTablePoolBytesEnd)
	}
	// The memory-floor tripwire, gated on populations large enough that
	// harness overhead amortises away: the copy-on-write tables put a
	// decided rtm session near ~9 KB live (the math/rand state is now
	// over half of it); 10 KB is the regression line, not the target.
	if res.PeakLive >= 500 {
		if res.LiveHeapPeakB == 0 {
			t.Fatal("live-heap sampler produced no samples at CI scale")
		}
		if res.LiveBytesPerSession > 10*1024 {
			t.Fatalf("live memory per session regressed: %.0f B (limit 10240)", res.LiveBytesPerSession)
		}
	}
}

// TestSoakBaselineTogglesBite proves the Baseline flag really reverts
// both fixes, using the checkpoint counters (deterministic, unlike
// memory): a baseline sweep never skips a session, a fixed sweep skips
// every clean one.
func TestSoakBaselineTogglesBite(t *testing.T) {
	spec := smokeSpec()
	spec.HorizonS = 2
	spec.Storms = nil

	fixed, err := RunSoak(SoakConfig{Spec: spec, CheckpointEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("fixed RunSoak: %v", err)
	}
	baseline, err := RunSoak(SoakConfig{Spec: spec, Baseline: true, CheckpointEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("baseline RunSoak: %v", err)
	}
	if baseline.CheckpointSkipped != 0 {
		t.Fatalf("baseline run skipped %d checkpoint writes; CheckpointEverySession is not biting", baseline.CheckpointSkipped)
	}
	// The sweeps race the workload, so the fixed run's skip count is
	// timing-dependent; what must hold is that it never writes more than
	// the baseline discipline would for the same sweep count.
	t.Logf("fixed: %d written / %d skipped; baseline: %d written",
		fixed.CheckpointWrites, fixed.CheckpointSkipped, baseline.CheckpointWrites)
}

// steadySoakObs is a plausible steady-state frame observation.
func steadySoakObs(epoch int) governor.Observation {
	return governor.Observation{
		Epoch:     epoch,
		Cycles:    []uint64{30e6, 29e6, 31e6, 30e6},
		Util:      []float64{0.6, 0.55, 0.65, 0.6},
		ExecTimeS: 0.024,
		PeriodS:   0.040,
		WallTimeS: 0.040,
		PowerW:    2.1,
		TempC:     48,
		OPPIdx:    4,
	}
}

// TestSoakSteadyDecideAllocs is the steady-state allocation guardrail:
// whole-process allocations (client encode, server decode, decide,
// reply) per decision over the binary transport, measured at a settled
// session population. Regressions here are exactly the kind of per-epoch
// garbage that turns a million-session soak into a GC death spiral.
func TestSoakSteadyDecideAllocs(t *testing.T) {
	srv := serve.New(serve.Options{})
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tcp := serve.NewTCP(srv, lis)
	go func() { _ = tcp.Serve() }()
	defer tcp.Close()
	cl, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 64
	sessions := make([]string, n)
	obs := make([]governor.Observation, n)
	out := make([]client.Decision, n)
	for i := range sessions {
		sessions[i] = fmt.Sprintf("alloc-%d", i)
		obs[i] = steadySoakObs(0)
		body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, sessions[i], i+1)
		if st, resp, err := cl.CreateSession([]byte(body)); err != nil || st != 201 {
			t.Fatalf("create %s: status %d err %v (%s)", sessions[i], st, err, resp)
		}
	}
	decide := func() {
		if err := cl.DecideBatch(sessions, obs, out); err != nil {
			t.Fatalf("decide batch: %v", err)
		}
		for i := range out {
			if out[i].Err != "" {
				t.Fatalf("decide %s: %s", sessions[i], out[i].Err)
			}
		}
	}
	// Warm the path (connection buffers, session stripes) before counting.
	for i := 0; i < 10; i++ {
		decide()
	}
	perBatch := testing.AllocsPerRun(50, decide)
	perDecide := perBatch / n
	t.Logf("steady state: %.1f allocs/batch, %.2f allocs/decide (batch of %d)", perBatch, perDecide, n)
	// Measured ~0.6 allocs/decide end to end (client + server). 3 is the
	// regression tripwire, not the target.
	if perDecide > 3 {
		t.Fatalf("steady-state allocations regressed: %.2f allocs/decide (limit 3)", perDecide)
	}
}

// benchSoakSpec sizes the soak for the perf-trajectory benchmark: a
// thousand clients with skewed rates, lifecycle recycling and two storms.
func benchSoakSpec() loadgen.Spec {
	return loadgen.Spec{
		Seed:     99,
		HorizonS: 6,
		IDPrefix: "bench",
		Clients: []loadgen.ClientClass{
			{
				Name:            "steady",
				Count:           700,
				Arrival:         loadgen.Arrival{Process: "poisson", RateHz: 10},
				RateSkew:        &loadgen.Skew{Dist: "pareto", Param: 2.2},
				LifetimeDecides: 30,
				StartWindowS:    1,
			},
			{
				Name:         "burst",
				Count:        300,
				Arrival:      loadgen.Arrival{Process: "gamma", RateHz: 12, Shape: 0.5},
				RateSkew:     &loadgen.Skew{Dist: "lognormal", Param: 0.7},
				StartWindowS: 1,
			},
		},
		Storms: []loadgen.Storm{
			{AtS: 2.5, Fraction: 0.5, RestartDelayS: 0.2},
			{AtS: 4.5, Fraction: 1, RestartDelayS: 0.1},
		},
	}
}

// bench10xSpec is benchSoakSpec pushed an order of magnitude up the
// session axis: ten thousand clients, the same churn shapes, per-client
// rates scaled down so the schedule stays executable flat-out while the
// live population peaks ~10x higher. This is the copy-on-write memory
// headline: B/session and live-B/session at a population where the
// pre-COW ~45 KB floor would have meant ~350 MB of Q-tables alone.
func bench10xSpec() loadgen.Spec {
	return loadgen.Spec{
		Seed:     199,
		HorizonS: 8,
		IDPrefix: "bench10x",
		Clients: []loadgen.ClientClass{
			{
				Name:            "steady",
				Count:           7000,
				Arrival:         loadgen.Arrival{Process: "poisson", RateHz: 1.5},
				RateSkew:        &loadgen.Skew{Dist: "pareto", Param: 2.2},
				LifetimeDecides: 30,
				StartWindowS:    4,
			},
			{
				Name:         "burst",
				Count:        3000,
				Arrival:      loadgen.Arrival{Process: "gamma", RateHz: 2, Shape: 0.5},
				RateSkew:     &loadgen.Skew{Dist: "lognormal", Param: 0.7},
				StartWindowS: 4,
			},
		},
		Storms: []loadgen.Storm{
			{AtS: 3.5, Fraction: 0.5, RestartDelayS: 0.3},
			{AtS: 6, Fraction: 1, RestartDelayS: 0.2},
		},
	}
}

// BenchmarkSoakChurn runs the soak across topologies — and, for flat,
// against the pre-fix baseline and at 10x the session population —
// reporting churn tail latency and memory per session into BENCH_9.json.
// "Improvement" reads directly off the flat vs flat-baseline pair
// (heap-recovered-pct collapses and ckpt-writes explode without the
// fixes); the memory floor reads off flat-10x's live-B/session. Only
// the memory-headline case pays for forced-GC live sampling, so the
// other cases' decides/s stay comparable across BENCH_* generations.
func BenchmarkSoakChurn(b *testing.B) {
	cases := []struct {
		name string
		cfg  SoakConfig
		spec func() loadgen.Spec
	}{
		{"flat", SoakConfig{Topology: "flat", CheckpointEvery: 25 * time.Millisecond}, benchSoakSpec},
		{"flat-baseline", SoakConfig{Topology: "flat", Baseline: true, CheckpointEvery: 25 * time.Millisecond}, benchSoakSpec},
		{"routed", SoakConfig{Topology: "routed"}, benchSoakSpec},
		{"direct", SoakConfig{Topology: "direct"}, benchSoakSpec},
		// BatchMax 128 matches the 10x spec's ~4k decides/s — full batches
		// still form, but the fixed lane-channel buffers stop polluting
		// the live-B/session headline the case exists to measure.
		{"flat-10x", SoakConfig{Topology: "flat", CheckpointEvery: 100 * time.Millisecond,
			LiveSampleEvery: 500 * time.Millisecond, BatchMax: 128}, bench10xSpec},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var res *SoakResult
			for i := 0; i < b.N; i++ {
				cfg := tc.cfg
				cfg.Spec = tc.spec()
				var err error
				res, err = RunSoak(cfg)
				if err != nil {
					b.Fatalf("RunSoak: %v", err)
				}
				if res.DecideErrors != 0 {
					b.Fatalf("%d decide errors", res.DecideErrors)
				}
			}
			b.ReportMetric(res.DecidesPerS, "decides/s")
			b.ReportMetric(res.P50US, "p50-us")
			b.ReportMetric(res.P99US, "p99-us")
			b.ReportMetric(res.P999US, "p999-us")
			b.ReportMetric(float64(res.PeakLive), "peak-live")
			b.ReportMetric(res.BytesPerSession, "B/session")
			if res.LiveBytesPerSession > 0 {
				b.ReportMetric(res.LiveBytesPerSession, "live-B/session")
			}
			b.ReportMetric(100*res.HeapRecoveredFrac, "heap-recovered-%")
			b.ReportMetric(float64(res.CheckpointWrites), "ckpt-writes")
			b.ReportMetric(float64(res.CheckpointSkipped), "ckpt-skipped")
			b.ReportMetric(float64(res.QTableCowFaults), "cow-faults")
		})
	}
}
