package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/predictor"
	"qgov/internal/sim"
	"qgov/internal/stats"
	"qgov/internal/workload"
)

// Ablations probe the design choices DESIGN.md calls out. They are this
// reproduction's additions — the paper asserts these choices (EPD, N = 5,
// γ = 0.6, the shared table) mostly without sweeps; the ablations measure
// them.

// EPDBetaPoint is one β setting of the EPD ablation.
type EPDBetaPoint struct {
	Beta         float64
	Explorations float64
	ConvergedAt  float64
	MissRate     float64
}

// AblationEPD sweeps the EPD sharpness β on the MPEG4 workload. β = 0 is
// exactly UPD (the Eq. 2 exponent vanishes); as β grows, exploration
// concentrates on slack-appropriate frequencies and the exploration count
// should fall until excessive sharpness starves the distribution's tails.
func AblationEPD(seeds []int64, frames int) []EPDBetaPoint {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 1000
	}
	betas := []float64{0, 2, 6, 12, 24}
	out := make([]EPDBetaPoint, 0, len(betas))
	for _, beta := range betas {
		var expl, conv, miss float64
		for _, seed := range seeds {
			tr := workload.MPEG4At30(seed, frames)
			cfg := core.DefaultConfig()
			cfg.Policy = &core.ExponentialPolicy{Beta: beta, Lambda: 0.1}
			rtm := core.New(cfg)
			mustCalibrate(rtm, tr)
			r := run(tr, rtm, seed, false)
			expl += float64(r.Explorations)
			miss += r.MissRate
			if r.ConvergedAt >= 0 {
				conv += float64(r.ConvergedAt)
			} else {
				conv += float64(frames)
			}
		}
		n := float64(len(seeds))
		out = append(out, EPDBetaPoint{
			Beta:         beta,
			Explorations: expl / n,
			ConvergedAt:  conv / n,
			MissRate:     miss / n,
		})
	}
	return out
}

// NLevelPoint is one Q-table size setting of the N ablation.
type NLevelPoint struct {
	Levels      int
	States      int
	NormEnergy  float64 // vs Oracle
	NormPerf    float64
	ConvergedAt float64
	MissRate    float64
}

// AblationN sweeps the discretisation N (Q-table rows N²) on the H.264
// workload: the paper picks N = 5 by pre-characterisation, trading the
// learning overhead of a bigger table against control resolution.
func AblationN(seeds []int64, frames int) []NLevelPoint {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 1200
	}
	levels := []int{3, 5, 7, 9}
	out := make([]NLevelPoint, 0, len(levels))
	for _, n := range levels {
		var e, p, conv, miss float64
		for _, seed := range seeds {
			tr := workload.H264At15(seed, frames)
			oracle := run(tr, oracleFor(tr), seed, false)
			cfg := core.DefaultConfig()
			cfg.Levels = n
			rtm := core.New(cfg)
			mustCalibrate(rtm, tr)
			r := run(tr, rtm, seed, false)
			e += r.EnergyJ / oracle.EnergyJ
			p += r.NormPerf
			miss += r.MissRate
			if r.ConvergedAt >= 0 {
				conv += float64(r.ConvergedAt)
			} else {
				conv += float64(frames)
			}
		}
		ns := float64(len(seeds))
		out = append(out, NLevelPoint{
			Levels:      n,
			States:      n * n,
			NormEnergy:  e / ns,
			NormPerf:    p / ns,
			ConvergedAt: conv / ns,
			MissRate:    miss / ns,
		})
	}
	return out
}

// GammaPoint is one smoothing-factor setting of the EWMA ablation.
type GammaPoint struct {
	Gamma      float64
	Mispredict float64 // mean |pred−actual| / mean actual
}

// AblationGamma sweeps the EWMA smoothing factor. The paper determines
// γ = 0.6 experimentally; the sweep shows the misprediction bowl around it.
// The trade-off only materialises on footage with frequent scene cuts:
// a small γ lags each cut for ~1/γ frames, a large γ chases the per-frame
// motion noise, and in between lies the bowl. (On a calm sequence the
// curve is nearly flat and smaller γ always wins — smoothing is free when
// nothing ever jumps.)
func AblationGamma(seeds []int64, frames int) []GammaPoint {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 600
	}
	gammas := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	out := make([]GammaPoint, 0, len(gammas))
	for _, g := range gammas {
		var acc float64
		for _, seed := range seeds {
			tr := gammaSweepTrace(seed, frames)
			recs := predictor.Evaluate(predictor.NewEWMA(g), tr.MaxPerFrame())
			pred, actual := predictor.Split(recs[1:]) // frame 0: unprimed
			acc += stats.MAPEOfMean(pred, actual)
		}
		out = append(out, GammaPoint{Gamma: g, Mispredict: acc / float64(len(seeds))})
	}
	return out
}

// gammaSweepTrace is sports-style footage: a hard cut every ~30 frames
// with large scene-to-scene level jumps and small per-frame noise.
func gammaSweepTrace(seed int64, frames int) workload.Trace {
	return workload.VideoConfig{
		Name: "cut-heavy", Codec: "mpeg4", FPS: 24, NumFrames: frames,
		Threads: 4, GOPLength: 12, BFrames: 2,
		BaseCycles: 140e6, IWeight: 1.05, BWeight: 0.96,
		SceneChangeProb: 1.0 / 30, SceneSigma: 0.45,
		SceneWalkSigma: 0.004, SceneMin: 0.55, SceneMax: 1.45,
		NoiseSigma: 0.02, ImbalanceCV: 0.04, Seed: seed,
	}.Generate()
}

// SharedPoint is one learning-organisation setting of the shared-table
// ablation.
type SharedPoint struct {
	Mode        string
	ConvergedAt float64
	// TimeToQoS is the first epoch from which the trailing-100-epoch miss
	// rate stays below 8 % — "how long until the governor delivers
	// acceptable quality of service". Unlike policy-stability convergence
	// it cannot be gamed by rows that never gather enough experience to
	// count. -1 (reported as the horizon) when never reached.
	TimeToQoS  float64
	NormEnergy float64
	MissRate   float64
}

// timeToQoS scans a recorded run for the first epoch after which the
// trailing-window miss rate stays below the threshold until the end.
func timeToQoS(records []sim.FrameRecord, window int, threshold float64) int {
	if len(records) < window {
		return -1
	}
	misses := make([]int, len(records)+1)
	for i, r := range records {
		misses[i+1] = misses[i]
		if r.Missed {
			misses[i+1]++
		}
	}
	// Find the last window that violates the threshold; QoS holds after it.
	last := -1
	for i := window; i <= len(records); i++ {
		rate := float64(misses[i]-misses[i-window]) / float64(window)
		if rate >= threshold {
			last = i
		}
	}
	if last < 0 {
		return window // clean from the start
	}
	if last >= len(records) {
		return -1
	}
	return last
}

// AblationShared isolates the Section II-D design: the same RTM with the
// shared Q-table versus independent per-core tables, on the stationary
// decode loop Table III uses (convergence epochs are only well defined on
// a stationary workload). The shared table aggregates every core's
// experience and should converge in materially fewer epochs — the
// Table III mechanism without the other baseline differences.
func AblationShared(seeds []int64, frames int) []SharedPoint {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 2000
	}
	modes := []core.Mode{core.SharedTable, core.PerCoreTables}
	out := make([]SharedPoint, 0, len(modes))
	for _, mode := range modes {
		var conv, qos, e, miss float64
		for _, seed := range seeds {
			tr := tableIIITrace(seed, frames)
			oracle := run(tr, oracleFor(tr), seed, false)
			cfg := core.DefaultConfig()
			cfg.Mode = mode
			rtm := core.New(cfg)
			mustCalibrate(rtm, tr)
			r := run(tr, rtm, seed, true)
			if r.ConvergedAt >= 0 {
				conv += float64(r.ConvergedAt)
			} else {
				conv += float64(frames)
			}
			if q := timeToQoS(r.Records, 100, 0.08); q >= 0 {
				qos += float64(q)
			} else {
				qos += float64(frames)
			}
			r.Release() // series consumed; recycle for the next seed
			e += r.EnergyJ / oracle.EnergyJ
			miss += r.MissRate
		}
		n := float64(len(seeds))
		out = append(out, SharedPoint{
			Mode:        mode.String(),
			ConvergedAt: conv / n,
			TimeToQoS:   qos / n,
			NormEnergy:  e / n,
			MissRate:    miss / n,
		})
	}
	return out
}

// UpdateRulePoint is one temporal-difference rule of the A6 ablation.
type UpdateRulePoint struct {
	Rule        string
	NormEnergy  float64
	NormPerf    float64
	MissRate    float64
	ConvergedAt float64
}

// AblationUpdateRule compares off-policy Q-learning (the paper's Eq. 3)
// against on-policy SARSA with everything else identical. Q-learning
// bootstraps from the greedy maximum even while exploration is running,
// which inflates optimistic values; SARSA evaluates the policy actually
// followed and tends to land safer (fewer misses) at slightly higher
// energy. The experiment quantifies whether the paper's choice of
// Q-learning costs anything on this problem.
func AblationUpdateRule(seeds []int64, frames int) []UpdateRulePoint {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 1500
	}
	rules := []bool{false, true} // OnPolicy
	out := make([]UpdateRulePoint, 0, len(rules))
	for _, onPolicy := range rules {
		var e, p, miss, conv float64
		for _, seed := range seeds {
			tr := workload.MPEG4At30(seed, frames)
			oracle := run(tr, oracleFor(tr), seed, false)
			cfg := core.DefaultConfig()
			cfg.OnPolicy = onPolicy
			rtm := core.New(cfg)
			mustCalibrate(rtm, tr)
			r := run(tr, rtm, seed, false)
			e += r.EnergyJ / oracle.EnergyJ
			p += r.NormPerf
			miss += r.MissRate
			if r.ConvergedAt >= 0 {
				conv += float64(r.ConvergedAt)
			} else {
				conv += float64(frames)
			}
		}
		n := float64(len(seeds))
		rule := "q-learning"
		if onPolicy {
			rule = "sarsa"
		}
		out = append(out, UpdateRulePoint{
			Rule:        rule,
			NormEnergy:  e / n,
			NormPerf:    p / n,
			MissRate:    miss / n,
			ConvergedAt: conv / n,
		})
	}
	return out
}

// PredictorPoint is one predictor of the predictor-comparison ablation.
type PredictorPoint struct {
	Name       string
	Mispredict float64
}

// AblationPredictors compares EWMA against the adaptive-filter and simple
// predictors on the MPEG4 workload — the Section II-A claim that filter
// lag hurts under dynamic workload changes, measured.
func AblationPredictors(seeds []int64, frames int) []PredictorPoint {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 400
	}
	names := []string{"ewma", "last", "ma", "holt", "nlms"}
	out := make([]PredictorPoint, 0, len(names))
	for _, name := range names {
		var acc float64
		for _, seed := range seeds {
			tr := workload.MPEG4SVGA24(seed, frames)
			p, err := predictor.New(name)
			if err != nil {
				panic(err)
			}
			recs := predictor.Evaluate(p, tr.MaxPerFrame())
			pred, actual := predictor.Split(recs[1:])
			acc += stats.MAPEOfMean(pred, actual)
		}
		out = append(out, PredictorPoint{Name: name, Mispredict: acc / float64(len(seeds))})
	}
	return out
}

// MemBoundPoint is one memory-intensity setting of the A7 ablation.
type MemBoundPoint struct {
	MemFrac          float64
	SavingVsOndemand float64 // 1 − E_rtm/E_ondemand
	RTMPerf          float64
	MissRate         float64
}

// AblationMemBound sweeps the workload's memory-bound fraction and
// measures how much of the RTM's energy advantage over ondemand survives.
// DVFS leverage shrinks as work becomes memory-bound — the memory term of
// T(f) neither speeds up at f_max nor slows down at f_min — so the saving
// should fall with m. This bounds where the paper's approach pays off.
func AblationMemBound(seeds []int64, frames int) []MemBoundPoint {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 1500
	}
	fracs := []float64{0, 0.2, 0.4, 0.6}
	out := make([]MemBoundPoint, 0, len(fracs))
	for _, m := range fracs {
		var saving, perf, miss float64
		for _, seed := range seeds {
			tr := workload.MPEG4At30(seed, frames)
			cluster := func() *platform.Cluster {
				return platform.NewCluster(platform.ClusterConfig{
					Name: "A15", Table: platform.A15Table(), NumCores: 4,
					Seed: seed, MemStallFrac: m,
				})
			}
			ond := sim.Run(sim.Config{Trace: tr, Governor: governor.NewOndemand(), Cluster: cluster(), Seed: seed})
			rtm := newRTM(tr)
			r := sim.Run(sim.Config{Trace: tr, Governor: rtm, Cluster: cluster(), Seed: seed})
			saving += 1 - r.EnergyJ/ond.EnergyJ
			perf += r.NormPerf
			miss += r.MissRate
		}
		n := float64(len(seeds))
		out = append(out, MemBoundPoint{
			MemFrac:          m,
			SavingVsOndemand: saving / n,
			RTMPerf:          perf / n,
			MissRate:         miss / n,
		})
	}
	return out
}

// RenderAblations writes every ablation as one report.
func RenderAblations(w io.Writer, seeds []int64, frames int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)

	fmt.Fprintln(w, "Ablation A1 — EPD sharpness β (β=0 is UPD)")
	fmt.Fprintln(tw, "beta\texplorations\tconverged_at\tmiss_rate")
	for _, p := range AblationEPD(seeds, frames) {
		fmt.Fprintf(tw, "%.0f\t%.0f\t%.0f\t%.1f%%\n", p.Beta, p.Explorations, p.ConvergedAt, p.MissRate*100)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nAblation A2 — discretisation levels N")
	fmt.Fprintln(tw, "N\tstates\tnorm_energy\tnorm_perf\tconverged_at\tmiss_rate")
	for _, p := range AblationN(seeds, frames) {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.3f\t%.0f\t%.1f%%\n",
			p.Levels, p.States, p.NormEnergy, p.NormPerf, p.ConvergedAt, p.MissRate*100)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nAblation A3 — EWMA smoothing factor γ")
	fmt.Fprintln(tw, "gamma\tmispredict")
	for _, p := range AblationGamma(seeds, frames) {
		fmt.Fprintf(tw, "%.1f\t%.2f%%\n", p.Gamma, p.Mispredict*100)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nAblation A4 — shared vs per-core Q-tables")
	fmt.Fprintln(tw, "mode\tconverged_at\ttime_to_qos\tnorm_energy\tmiss_rate")
	for _, p := range AblationShared(seeds, frames) {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.3f\t%.1f%%\n",
			p.Mode, p.ConvergedAt, p.TimeToQoS, p.NormEnergy, p.MissRate*100)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nAblation A5 — workload predictors")
	fmt.Fprintln(tw, "predictor\tmispredict")
	for _, p := range AblationPredictors(seeds, frames) {
		fmt.Fprintf(tw, "%s\t%.2f%%\n", p.Name, p.Mispredict*100)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nAblation A6 — temporal-difference update rule")
	fmt.Fprintln(tw, "rule\tnorm_energy\tnorm_perf\tmiss_rate\tconverged_at")
	for _, p := range AblationUpdateRule(seeds, frames) {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.1f%%\t%.0f\n",
			p.Rule, p.NormEnergy, p.NormPerf, p.MissRate*100, p.ConvergedAt)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nAblation A7 — memory-bound fraction (DVFS leverage)")
	fmt.Fprintln(tw, "mem_frac\tsaving_vs_ondemand\trtm_perf\trtm_miss")
	for _, p := range AblationMemBound(seeds, frames) {
		fmt.Fprintf(tw, "%.1f\t%.1f%%\t%.2f\t%.1f%%\n",
			p.MemFrac, p.SavingVsOndemand*100, p.RTMPerf, p.MissRate*100)
	}
	return tw.Flush()
}
