package sim

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"qgov/internal/governor"
	"qgov/internal/workload"
)

// tinyJob is a minimal fast run for high-volume sweep tests.
func tinyJob(frames int) Job {
	return Job{Name: "tiny", Build: func() Config {
		return Config{
			Trace:    workload.Constant("tiny", 25, frames, 4, 30e6),
			Governor: governor.NewPerformance(),
			Seed:     1,
		}
	}}
}

func TestStreamDeliversEveryJobExactlyOnce(t *testing.T) {
	const n = 200
	jobs := make(chan Job)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			jobs <- tinyJob(3)
		}
	}()
	seen := make([]bool, n)
	count := 0
	for ir := range Stream(jobs, 4) {
		if ir.Index < 0 || ir.Index >= n {
			t.Fatalf("index %d out of range", ir.Index)
		}
		if seen[ir.Index] {
			t.Fatalf("index %d delivered twice", ir.Index)
		}
		seen[ir.Index] = true
		if ir.Result == nil || ir.Result.Frames != 3 {
			t.Fatalf("bad result at %d: %+v", ir.Index, ir.Result)
		}
		count++
	}
	if count != n {
		t.Fatalf("delivered %d of %d results", count, n)
	}
}

func TestStreamEmptyInput(t *testing.T) {
	jobs := make(chan Job)
	close(jobs)
	if _, ok := <-Stream(jobs, 2); ok {
		t.Fatal("result emitted for empty input")
	}
}

// TestStreamTenThousandJobsBoundedMemory is the acceptance check of the
// streaming engine: a 10k-job sweep must hold O(workers) state, not
// O(jobs). The consumer retains nothing but the online aggregate, so live
// heap after the sweep must sit where it started — if the engine (or the
// runs) retained per-job state such as FrameRecord slices, 10k jobs would
// show up as megabytes here.
func TestStreamTenThousandJobsBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-job sweep")
	}
	const n = 10000
	jobs := make(chan Job)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			jobs <- tinyJob(4)
		}
	}()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var agg Aggregator
	for ir := range Stream(jobs, 0) {
		if ir.Result.Records != nil {
			t.Fatal("unrequested per-frame records retained")
		}
		agg.Add(ir.Result)
	}
	if agg.Count() != n {
		t.Fatalf("aggregated %d of %d runs", agg.Count(), n)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 4<<20 {
		t.Fatalf("live heap grew %d bytes across a 10k-job sweep; per-job state retained", grew)
	}

	s := agg.Summary()
	if s.Runs != n || s.MeanEnergyJ <= 0 {
		t.Fatalf("summary lost the sweep: %+v", s)
	}
}

// TestStreamConcurrentConsumers exercises the multi-consumer contract
// under the race detector: several goroutines draining one result channel
// into per-consumer aggregators that are merged at the end.
func TestStreamConcurrentConsumers(t *testing.T) {
	const n, consumers = 64, 4
	jobs := make(chan Job)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			jobs <- tinyJob(5)
		}
	}()
	out := Stream(jobs, 4)

	var wg sync.WaitGroup
	aggs := make([]Aggregator, consumers)
	counts := make([]int, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for ir := range out {
				aggs[c].Add(ir.Result)
				counts[c]++
			}
		}(c)
	}
	wg.Wait()

	var total Aggregator
	sum := 0
	for c := range aggs {
		total.Merge(&aggs[c])
		sum += counts[c]
	}
	if sum != n || total.Count() != n {
		t.Fatalf("consumers saw %d results (aggregated %d), want %d", sum, total.Count(), n)
	}
}

func TestAggregatorMatchesSummarize(t *testing.T) {
	results := []*Result{
		{EnergyJ: 10, NormPerf: 0.9, MissRate: 0.1, Explorations: 40, ConvergedAt: 120},
		{EnergyJ: 12, NormPerf: 1.1, MissRate: 0.0, Explorations: 55, ConvergedAt: -1},
		{EnergyJ: 11, NormPerf: 1.0, MissRate: 0.2, Explorations: -1, ConvergedAt: -1},
		{EnergyJ: 14, NormPerf: 0.8, MissRate: 0.3, Explorations: 70, ConvergedAt: 90},
	}
	batch := Summarize(results)

	// Streaming one-by-one must agree with the batch fold.
	var a Aggregator
	for _, r := range results {
		a.Add(r)
	}
	assertSummariesClose(t, batch, a.Summary())

	// A split-and-merge fold must agree too (parallel consumers).
	var left, right Aggregator
	left.Add(results[0])
	left.Add(results[1])
	right.Add(results[2])
	right.Add(results[3])
	left.Merge(&right)
	assertSummariesClose(t, batch, left.Summary())

	// Merging into an empty aggregator adopts the other side wholesale.
	var empty Aggregator
	var full Aggregator
	for _, r := range results {
		full.Add(r)
	}
	empty.Merge(&full)
	assertSummariesClose(t, batch, empty.Summary())
}

func assertSummariesClose(t *testing.T, want, got Summary) {
	t.Helper()
	if want.Runs != got.Runs {
		t.Fatalf("Runs: %d vs %d", want.Runs, got.Runs)
	}
	close2 := func(name string, a, b float64) {
		t.Helper()
		if math.IsNaN(a) != math.IsNaN(b) {
			t.Fatalf("%s: NaN mismatch (%v vs %v)", name, a, b)
		}
		if !math.IsNaN(a) && math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
			t.Fatalf("%s: %v vs %v", name, a, b)
		}
	}
	close2("MeanEnergyJ", want.MeanEnergyJ, got.MeanEnergyJ)
	close2("StdEnergyJ", want.StdEnergyJ, got.StdEnergyJ)
	close2("MeanNormPerf", want.MeanNormPerf, got.MeanNormPerf)
	close2("MeanMissRate", want.MeanMissRate, got.MeanMissRate)
	close2("MeanExplore", want.MeanExplore, got.MeanExplore)
	close2("MeanConvergeAt", want.MeanConvergeAt, got.MeanConvergeAt)
}

func TestRecordPoolRoundTrip(t *testing.T) {
	cfg := Config{
		Trace:    workload.Constant("tiny", 25, 20, 4, 30e6),
		Governor: governor.NewPerformance(),
		Seed:     1,
		Record:   true,
	}
	res := Run(cfg)
	if len(res.Records) != 20 {
		t.Fatalf("Records = %d, want 20", len(res.Records))
	}
	res.Release()
	if res.Records != nil {
		t.Fatal("Release did not clear Records")
	}
	res.Release() // idempotent

	// A second recorded run must produce correct records even when its
	// slice comes from the pool.
	cfg.Governor = governor.NewPerformance()
	res2 := Run(cfg)
	if len(res2.Records) != 20 {
		t.Fatalf("pooled run Records = %d, want 20", len(res2.Records))
	}
	for i, r := range res2.Records {
		if r.Epoch != i {
			t.Fatalf("record %d carries epoch %d (stale pooled data?)", i, r.Epoch)
		}
	}
}
