// Videodecoder reproduces the paper's headline scenario (Table I) as a
// runnable program: an H.264 football sequence of 3000 frames decoded on
// the simulated A15 cluster under four governors, with energy normalised
// to the offline Oracle.
//
//	go run ./examples/videodecoder [-frames 3000] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

func main() {
	frames := flag.Int("frames", 3000, "frames to decode")
	seed := flag.Int64("seed", 11, "simulation seed")
	flag.Parse()

	trace := workload.FootballH264(*seed).Slice(0, *frames)
	st := trace.Summarize()
	fmt.Printf("decoding %q: %d frames @ %.0f fps, demand %.0f–%.0f MHz\n\n",
		trace.Name, trace.Len(), trace.FPS(),
		st.MinCycles/trace.RefTimeS/1e6, st.MaxCycles/trace.RefTimeS/1e6)

	// The same trace under each governor; all runs share the seed so the
	// platform noise is identical.
	jobs := []sim.Job{
		{Name: "oracle", Build: func() sim.Config {
			return sim.Config{
				Trace:    trace,
				Governor: governor.NewOracle(trace, platform.DefaultA15PowerModel()),
				Seed:     *seed,
			}
		}},
		{Name: "ondemand", Build: func() sim.Config {
			return sim.Config{Trace: trace, Governor: governor.NewOndemand(), Seed: *seed}
		}},
		{Name: "mldtm", Build: func() sim.Config {
			return sim.Config{Trace: trace, Governor: governor.NewMLDTM(), Seed: *seed}
		}},
		{Name: "rtm", Build: func() sim.Config {
			rtm := core.New(core.DefaultConfig())
			if err := rtm.Calibrate(trace.MaxPerFrame()); err != nil {
				panic(err)
			}
			return sim.Config{Trace: trace, Governor: rtm, Seed: *seed}
		}},
	}
	results := sim.RunAll(jobs)
	oracleEnergy := results[0].EnergyJ

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "governor\tenergy (J)\tvs oracle\tnorm perf\tmisses\ttransitions")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.1f\t%.2fx\t%.2f\t%.1f%%\t%d\n",
			r.Governor, r.EnergyJ, r.EnergyJ/oracleEnergy, r.NormPerf,
			r.MissRate*100, r.Transitions)
	}
	tw.Flush()

	rtm, ondemand := results[3], results[1]
	fmt.Printf("\nthe RTM uses %.0f%% less energy than ondemand on this sequence\n",
		(1-rtm.EnergyJ/ondemand.EnergyJ)*100)
}
