package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestTransformMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randomSignal(n, int64(n))
		want := NaiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		if _, err := Transform(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max |FFT-DFT| = %g", n, d)
		}
	}
}

func TestTransformRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 12, 100} {
		x := make([]complex128, n)
		if _, err := Transform(x); err == nil {
			t.Errorf("Transform accepted length %d", n)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{2, 8, 128, 1024} {
		orig := randomSignal(n, int64(n)+100)
		x := make([]complex128, n)
		copy(x, orig)
		if _, err := Transform(x); err != nil {
			t.Fatal(err)
		}
		if _, err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(x, orig); d > 1e-9*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, d)
		}
	}
}

func TestTransformRealImpulse(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	x := make([]float64, 16)
	x[0] = 1
	spec, ops, err := TransformReal(x)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range spec {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum[%d] = %v, want 1", k, v)
		}
	}
	if ops.N != 16 {
		t.Fatalf("ops.N = %d", ops.N)
	}
}

func TestTransformSingleTone(t *testing.T) {
	// A pure cosine at bin 3 puts energy only at bins 3 and N-3.
	const n, bin = 64, 3
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * bin * float64(i) / n)
	}
	spec, _, err := TransformReal(x)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range spec {
		mag := cmplx.Abs(v)
		if k == bin || k == n-bin {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Errorf("bin %d magnitude %g, want %g", k, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d leaked %g", k, mag)
		}
	}
}

func TestOpCountMatchesAnalytic(t *testing.T) {
	for _, n := range []int{2, 4, 8, 1024} {
		x := randomSignal(n, 7)
		ops, err := Transform(x)
		if err != nil {
			t.Fatal(err)
		}
		if ops.Butterflies != ExpectedButterflies(n) {
			t.Errorf("n=%d: counted %d butterflies, want %d", n, ops.Butterflies, ExpectedButterflies(n))
		}
	}
	if ExpectedButterflies(1) != 0 {
		t.Error("ExpectedButterflies(1) must be 0")
	}
}

func TestCyclesAt(t *testing.T) {
	ops := OpCount{Butterflies: 1000}
	if got := ops.CyclesAt(10); got != 10000 {
		t.Fatalf("CyclesAt = %d, want 10000", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CyclesAt(0) must panic")
		}
	}()
	ops.CyclesAt(0)
}

// Property: Parseval's theorem — energy in time equals energy in frequency
// divided by N, for arbitrary signals.
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64, rawLog uint8) bool {
		n := 1 << (1 + rawLog%9) // 2..512
		x := randomSignal(n, seed)
		timeE := 0.0
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		spec := make([]complex128, n)
		copy(spec, x)
		if _, err := Transform(spec); err != nil {
			return false
		}
		freqE := 0.0
		for _, v := range spec {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		return math.Abs(timeE-freqE) <= 1e-9*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — FFT(a·x + y) == a·FFT(x) + FFT(y).
func TestLinearityProperty(t *testing.T) {
	f := func(seedX, seedY int64, rawScale uint8) bool {
		const n = 64
		a := complex(float64(rawScale%7)+1, 0)
		x := randomSignal(n, seedX)
		y := randomSignal(n, seedY)
		combo := make([]complex128, n)
		for i := range combo {
			combo[i] = a*x[i] + y[i]
		}
		fx := make([]complex128, n)
		fy := make([]complex128, n)
		copy(fx, x)
		copy(fy, y)
		Transform(fx)
		Transform(fy)
		Transform(combo)
		for i := range combo {
			want := a*fx[i] + fy[i]
			if cmplx.Abs(combo[i]-want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
