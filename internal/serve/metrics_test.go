package serve_test

import (
	"net/http"
	"testing"

	"qgov/internal/serve"
)

type latencyMetrics struct {
	Count      int     `json:"count"`
	LoUS       float64 `json:"lo_us"`
	HiUS       float64 `json:"hi_us"`
	BinWidthUS float64 `json:"bin_width_us"`
	Bins       []int   `json:"bins"`
	Underflow  int     `json:"underflow"`
	Overflow   int     `json:"overflow"`
}

type metricsResponse struct {
	Decisions int64                     `json:"decisions"`
	Sessions  map[string]latencyMetrics `json:"sessions"`
}

// After a known decision sequence, /v1/metrics must account for every
// decision exactly once in that session's latency histogram: the bin
// counts (plus overflow) sum to the number of decisions served, nothing
// lands below zero latency, and the histogram geometry is the advertised
// 1 µs × 50 grid.
func TestMetricsLatencyHistogram(t *testing.T) {
	const decisions = 37
	h := newTestServer(t, serve.Options{})
	if st := h.post("/v1/sessions", map[string]any{"id": "m0", "governor": "rtm", "seed": 3}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	// A second, never-decided session must report an all-zero histogram.
	if st := h.post("/v1/sessions", map[string]any{"id": "idle", "governor": "rtm"}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}

	obs := steadyObs()
	for i := 0; i < decisions; i++ {
		obs.Epoch = i
		var resp struct {
			Decisions []decision `json:"decisions"`
		}
		if st := h.post("/v1/decide", map[string]any{
			"requests": []decideItem{{Session: "m0", Obs: obsJSON{
				Epoch: obs.Epoch, Cycles: obs.Cycles, Util: obs.Util,
				ExecTimeS: obs.ExecTimeS, PeriodS: obs.PeriodS, WallTimeS: obs.WallTimeS,
				PowerW: obs.PowerW, TempC: obs.TempC, OPPIdx: obs.OPPIdx,
			}}},
		}, &resp); st != http.StatusOK {
			t.Fatalf("decide %d returned %d", i, st)
		}
		if resp.Decisions[0].Error != "" {
			t.Fatal(resp.Decisions[0].Error)
		}
	}

	var m metricsResponse
	if st := h.get("/v1/metrics", &m); st != http.StatusOK {
		t.Fatalf("metrics returned %d", st)
	}
	if m.Decisions != decisions {
		t.Errorf("server counted %d decisions, want %d", m.Decisions, decisions)
	}

	lat, ok := m.Sessions["m0"]
	if !ok {
		t.Fatalf("metrics missing session m0: %+v", m.Sessions)
	}
	if lat.LoUS != 0 || lat.HiUS != 50 || lat.BinWidthUS != 1 || len(lat.Bins) != 50 {
		t.Errorf("histogram geometry %g..%g step %g × %d bins, want 0..50 step 1 × 50",
			lat.LoUS, lat.HiUS, lat.BinWidthUS, len(lat.Bins))
	}
	if lat.Count != decisions {
		t.Errorf("histogram holds %d samples, want %d", lat.Count, decisions)
	}
	if lat.Underflow != 0 {
		t.Errorf("%d decisions below zero latency", lat.Underflow)
	}
	sum := lat.Underflow + lat.Overflow
	for _, c := range lat.Bins {
		sum += c
	}
	if sum != decisions {
		t.Errorf("bins account for %d decisions, want %d", sum, decisions)
	}

	idle, ok := m.Sessions["idle"]
	if !ok {
		t.Fatal("metrics missing the idle session")
	}
	if idle.Count != 0 {
		t.Errorf("idle session reports %d samples", idle.Count)
	}
}
