package governor

import (
	"testing"
)

func TestMLDTMStateMapping(t *testing.T) {
	g := NewMLDTM()
	g.Reset(testCtx(1))
	cases := []struct {
		util float64
		want int
	}{
		{-0.5, 0}, {0, 0}, {0.19, 0}, {0.2, 1}, {0.55, 2}, {0.99, 4}, {1.0, 4}, {1.5, 4},
	}
	for _, c := range cases {
		if got := g.stateOf(c.util); got != c.want {
			t.Errorf("stateOf(%v) = %d, want %d", c.util, got, c.want)
		}
	}
}

func TestMLDTMRewardShape(t *testing.T) {
	g := NewMLDTM()
	// Reward is maximal at the target utilisation and lower both below and
	// above it; higher power always hurts.
	atTarget := g.reward(g.TargetUtil, 2)
	below := g.reward(0.3, 2)
	above := g.reward(1.0, 2)
	if !(atTarget > below) || !(atTarget > above) {
		t.Fatalf("reward not peaked at target: %v vs %v / %v", atTarget, below, above)
	}
	if !(g.reward(0.9, 1) > g.reward(0.9, 6)) {
		t.Fatal("reward must penalise power")
	}
}

func TestMLDTMLearnsAndConverges(t *testing.T) {
	g := NewMLDTM()
	ctx := testCtx(7)
	g.Reset(ctx)
	idx := g.Decide(Observation{Epoch: -1})
	const fReq = 700e6
	converged := -1
	for i := 0; i < 3000; i++ {
		f := ctx.Table[idx].FreqHz()
		util := fReq / f
		if util > 1 {
			util = 1
		}
		idx = g.Decide(obsAt(i, idx, util, 0.04))
		if g.ConvergedAtEpoch() >= 0 {
			converged = g.ConvergedAtEpoch()
			break
		}
	}
	if converged < 0 {
		t.Fatal("mldtm did not converge in 3000 epochs")
	}
	if g.Explorations() == 0 {
		t.Fatal("mldtm reported zero explorations")
	}
	// After convergence, utilisation-targeting must hold frequency near or
	// above the requirement (TargetUtil 0.9 -> f ≈ fReq/0.9 ≈ 780 MHz);
	// run a few more epochs and check the choice is not pinned at the
	// extremes.
	for i := 0; i < 20; i++ {
		f := ctx.Table[idx].FreqHz()
		util := fReq / f
		if util > 1 {
			util = 1
		}
		idx = g.Decide(obsAt(converged+i, idx, util, 0.04))
	}
	if mhz := ctx.Table[idx].FreqMHz; mhz < 600 || mhz > 1600 {
		t.Fatalf("post-convergence choice %d MHz implausible for 700 MHz demand", mhz)
	}
}

func TestMLDTMDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []int {
		g := NewMLDTM()
		ctx := testCtx(seed)
		g.Reset(ctx)
		idx := g.Decide(Observation{Epoch: -1})
		var picks []int
		for i := 0; i < 200; i++ {
			idx = g.Decide(obsAt(i, idx, 0.6, 0.04))
			picks = append(picks, idx)
		}
		return picks
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestMLDTMOverheadPositive(t *testing.T) {
	g := NewMLDTM()
	if g.DecisionOverheadS() <= 0 {
		t.Fatal("learning governor must model a positive decision overhead")
	}
}

func TestConvergenceTracker(t *testing.T) {
	// Window 3, tolerance 1 flip. The very first Observe counts as a full
	// change (len(policy) flips), so the window must drain before any
	// convergence is possible.
	tr := NewConvergenceTracker(3)
	a := []int{1, 2, 3}
	b := []int{1, 2, 4} // one entry differs from a
	tr.Observe(a)       // epoch 0: 3 flips (first sight)
	tr.Observe(a)       // epoch 1: 0 flips
	tr.Observe(a)       // epoch 2: window holds 3 flips -> not converged
	if tr.ConvergedAt() >= 0 {
		t.Fatal("converged while the first-sight flips were still in window")
	}
	tr.Observe(a) // epoch 3: window {0,0,0} -> converged at window start
	if tr.ConvergedAt() != 1 {
		t.Fatalf("ConvergedAt = %d, want 1", tr.ConvergedAt())
	}
	// A single flip is within tolerance: stays converged.
	tr.Observe(b) // epoch 4: 1 flip
	if tr.ConvergedAt() != 1 {
		t.Fatalf("single tolerated flip reopened: %d", tr.ConvergedAt())
	}
	// Two flips inside one window reopen learning.
	tr.Observe(a) // epoch 5: 1 flip -> window {0,1,1} = 2 > tolerance
	if tr.ConvergedAt() != -1 {
		t.Fatalf("two flips did not reopen: %d", tr.ConvergedAt())
	}
	// A fresh qualifying window re-converges at its start: epochs {5,6,7}
	// hold {1,0,0} flips, back inside tolerance, so epoch 5 — where the
	// tolerated final adjustment happened — is the reported stabilisation.
	tr.Observe(a) // epoch 6: 0 flips
	tr.Observe(a) // epoch 7: window {1,0,0}
	if tr.ConvergedAt() != 5 {
		t.Fatalf("ConvergedAt = %d, want 5", tr.ConvergedAt())
	}
	tr.Observe(a) // epoch 8: window {0,0,0} keeps the earlier start
	if tr.ConvergedAt() != 5 {
		t.Fatalf("ConvergedAt moved to %d after more quiet epochs", tr.ConvergedAt())
	}
	if !tr.Quiet() {
		t.Fatal("Quiet() false on a quiet window")
	}
}

func TestConvergenceTrackerLengthChange(t *testing.T) {
	tr := NewConvergenceTracker(2)
	tr.Observe([]int{1})
	tr.Observe([]int{1, 2}) // different length: full change
	if tr.ConvergedAt() >= 0 {
		t.Fatal("length change treated as stable")
	}
	if tr.WindowFlips() == 0 {
		t.Fatal("length change not counted as flips")
	}
}

func TestConvergenceTrackerReset(t *testing.T) {
	tr := NewConvergenceTracker(1)
	tr.MaxFlips = 99 // any change tolerated
	tr.Observe([]int{1})
	if tr.ConvergedAt() != 0 {
		t.Fatal("setup failed")
	}
	tr.Reset()
	if tr.ConvergedAt() != -1 {
		t.Fatal("Reset did not clear convergence")
	}
}
