package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"qgov/internal/governor"
)

// The RTM family (rtm, rtm-percore, rtm-sarsa, updrl) checkpoints through
// one envelope: the learning organisation and exploration policy are
// configuration, not state, so the same format serves them all.
var _ governor.Checkpointer = (*RTM)(nil)

// rtmCheckpoint is the RTM's governor.Checkpointer payload: the value
// tables with their visit counts (the visit-decayed learning rate resumes
// where it left off), the workload state-space range the tables were
// trained against (Q-table rows are meaningless under a different
// quantisation), and the ε schedule's position (a trained manager resumes
// exploitation, not the hold-then-decay exploration phase).
type rtmCheckpoint struct {
	Kind       string    `json:"kind"`
	Version    int       `json:"version"`
	Mode       string    `json:"mode"`
	Levels     int       `json:"levels"`
	CCMin      float64   `json:"cc_min"`
	CCMax      float64   `json:"cc_max"`
	Calibrated bool      `json:"calibrated"`
	Epsilon    float64   `json:"epsilon"`
	EpsEpoch   int       `json:"epsilon_epoch"`
	Tables     []*QTable `json:"tables"`
}

// SaveState implements governor.Checkpointer.
func (r *RTM) SaveState(w io.Writer) error {
	if len(r.tables) == 0 {
		return fmt.Errorf("core: RTM has not run yet, nothing to save")
	}
	cp := rtmCheckpoint{
		Kind:       "rtm",
		Version:    1,
		Mode:       r.cfg.Mode.String(),
		Levels:     r.cfg.Levels,
		CCMin:      r.space.CCMin,
		CCMax:      r.space.CCMax,
		Calibrated: r.calibrated,
		Epsilon:    r.cfg.Epsilon.Epsilon(),
		EpsEpoch:   r.cfg.Epsilon.Epoch(),
		Tables:     r.tables,
	}
	if err := json.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("core: saving RTM state: %w", err)
	}
	return nil
}

// LoadState implements governor.Checkpointer: it validates and stages the
// checkpoint; every subsequent Reset applies it (taking precedence over
// Config.Transfer). Table dimensions are checked against the governor's
// configuration here and against the run's platform at Reset, which panics
// on a mismatch exactly as Config.Transfer does.
func (r *RTM) LoadState(rd io.Reader) error {
	var cp rtmCheckpoint
	if err := json.NewDecoder(rd).Decode(&cp); err != nil {
		return fmt.Errorf("core: loading RTM state: %w", err)
	}
	if cp.Kind != "rtm" {
		return fmt.Errorf("core: checkpoint is %q state, not rtm", cp.Kind)
	}
	if cp.Version != 1 {
		return fmt.Errorf("core: unsupported rtm checkpoint version %d", cp.Version)
	}
	if cp.Mode != r.cfg.Mode.String() {
		return fmt.Errorf("core: checkpoint was trained in %s mode, governor is configured %s", cp.Mode, r.cfg.Mode)
	}
	if cp.Levels != r.cfg.Levels {
		return fmt.Errorf("core: checkpoint has %d discretisation levels, governor is configured with %d", cp.Levels, r.cfg.Levels)
	}
	if len(cp.Tables) == 0 {
		return fmt.Errorf("core: checkpoint holds no tables")
	}
	nStates := r.space.NumStates()
	for i, t := range cp.Tables {
		if t == nil {
			return fmt.Errorf("core: checkpoint table %d is null", i)
		}
		if t.States() != nStates {
			return fmt.Errorf("core: checkpoint table %d is %dx%d, need %d states for N=%d",
				i, t.States(), t.Actions(), nStates, cp.Levels)
		}
		if t.Actions() != cp.Tables[0].Actions() {
			return fmt.Errorf("core: checkpoint tables disagree on action count")
		}
	}
	if math.IsNaN(cp.Epsilon) || cp.Epsilon < 0 || cp.Epsilon > 1 {
		return fmt.Errorf("core: checkpoint epsilon %v outside [0,1]", cp.Epsilon)
	}
	if cp.EpsEpoch < 0 {
		return fmt.Errorf("core: checkpoint epsilon epoch %d is negative", cp.EpsEpoch)
	}
	if cp.Calibrated && !(cp.CCMax > cp.CCMin) {
		return fmt.Errorf("core: checkpoint workload range [%v, %v] is degenerate", cp.CCMin, cp.CCMax)
	}
	r.restored = &cp
	return nil
}

// applyRestored builds the run's tables from a staged checkpoint. It is
// called from Reset once the run's dimensions are known.
//
// With a page pool in the Context the staged tables are interned on first
// apply and the live tables are clones sharing their pages: a thousand
// sessions warm-started from one manifest carry one copy of the trained
// values between them (the intern is content-addressed, so even separate
// decodes of the same manifest land on the same pooled pages). Without a
// pool the live tables are private deep copies, the pre-pool behaviour.
func (r *RTM) applyRestored(nStates, nActions int) {
	cp := r.restored
	if len(cp.Tables) != len(r.tables) {
		panic(fmt.Sprintf("core: checkpoint holds %d tables, %s mode on this cluster needs %d",
			len(cp.Tables), r.cfg.Mode, len(r.tables)))
	}
	pool := r.ctx.QPool
	for i, src := range cp.Tables {
		if src.States() != nStates || src.Actions() != nActions {
			panic(fmt.Sprintf("core: checkpoint table is %dx%d, need %dx%d",
				src.States(), src.Actions(), nStates, nActions))
		}
		if pool != nil && (src.tab.Pool() == nil || src.tab.Pool() == pool) {
			src.Intern(pool) // idempotent after the first Reset
			r.tables[i] = src.Clone()
			continue
		}
		dst := NewQTable(nStates, nActions, 0)
		for s := 0; s < nStates; s++ {
			q, v := dst.tab.MutRow(s)
			copy(q, src.tab.Row(s))
			copy(v, src.tab.VRow(s))
		}
		dst.recomputeRowVisits()
		r.tables[i] = dst
	}
	r.space.CCMin, r.space.CCMax = cp.CCMin, cp.CCMax
	r.calibrated = cp.Calibrated
}
