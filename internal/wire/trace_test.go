package wire_test

import (
	"bytes"
	"errors"
	"testing"

	"qgov/internal/wire"
)

// TestObserveTracedRoundTrip pins the trace extension: a traced frame
// decodes with its id, an untraced one with zero, and the traced frame
// is exactly 8 bytes longer with every other field unchanged.
func TestObserveTracedRoundTrip(t *testing.T) {
	obs := sampleObs()
	const id = uint64(0x0123456789abcdef)
	traced, err := wire.AppendObserveTraced(nil, 7, 0, id, "c0", &obs)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := wire.AppendObserve(nil, 7, "c0", &obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain)+8 {
		t.Fatalf("traced frame is %d bytes, plain %d: want exactly +8", len(traced), len(plain))
	}

	_, payload, _, err := wire.DecodeFrame(traced)
	if err != nil {
		t.Fatal(err)
	}
	var m wire.Observe
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.TraceID != id || m.Flags&wire.FlagTraced == 0 {
		t.Fatalf("traced decode: trace %#x flags %#x", m.TraceID, m.Flags)
	}
	if m.ID != 7 || string(m.Session) != "c0" || !observationsBitEqual(m.Obs, obs) {
		t.Fatalf("trace extension mangled the observe: %+v", m)
	}

	// Reusing the same struct for an untraced frame must clear TraceID.
	_, payload, _, _ = wire.DecodeFrame(plain)
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.TraceID != 0 || m.Flags&wire.FlagTraced != 0 {
		t.Fatalf("untraced decode kept trace state: trace %#x flags %#x", m.TraceID, m.Flags)
	}
}

// TestAppendObserveTracedZero: a zero trace id encodes a plain frame
// even if the caller passed FlagTraced in flags — a traced flag with no
// id behind it would desync every downstream decoder.
func TestAppendObserveTracedZero(t *testing.T) {
	obs := sampleObs()
	frame, err := wire.AppendObserveTraced(nil, 1, wire.FlagTraced|wire.FlagForwarded, 0, "c0", &obs)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, _, err := wire.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var m wire.Observe
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.Flags != wire.FlagForwarded || m.TraceID != 0 {
		t.Fatalf("zero-trace encode: flags %#x trace %#x", m.Flags, m.TraceID)
	}
}

// TestObserveTraceID pins the O(1) tail read against the full decoder.
func TestObserveTraceID(t *testing.T) {
	obs := sampleObs()
	const id = uint64(0xfeedfacecafebeef)
	traced, err := wire.AppendObserveTraced(nil, 3, 0, id, "sess", &obs)
	if err != nil {
		t.Fatal(err)
	}
	payload := traced[wire.HeaderSize:]
	got, ok := wire.ObserveTraceID(payload)
	if !ok || got != id {
		t.Fatalf("ObserveTraceID = (%#x, %v), want (%#x, true)", got, ok, id)
	}

	plain, err := wire.AppendObserve(nil, 3, "sess", &obs)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := wire.ObserveTraceID(plain[wire.HeaderSize:]); ok || got != 0 {
		t.Fatalf("untraced ObserveTraceID = (%#x, %v)", got, ok)
	}
	if _, ok := wire.ObserveTraceID(nil); ok {
		t.Fatal("ObserveTraceID accepted an empty payload")
	}
}

// TestAppendObserveTrace covers the router's in-flight tagging: set the
// flag and append the id on an untraced payload, overwrite in place on
// an already-traced one, and reject truncated payloads.
func TestAppendObserveTrace(t *testing.T) {
	obs := sampleObs()
	frame, err := wire.AppendObserveBytes(nil, 11, wire.FlagForwarded, []byte("c9"), &obs)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Clone(frame[wire.HeaderSize:])

	tagged, err := wire.AppendObserveTrace(payload, 0xaa55aa55aa55aa55)
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) != len(payload)+8 {
		t.Fatalf("tagging grew payload by %d bytes, want 8", len(tagged)-len(payload))
	}
	var m wire.Observe
	if err := m.Decode(tagged); err != nil {
		t.Fatal(err)
	}
	if m.TraceID != 0xaa55aa55aa55aa55 || m.Flags != wire.FlagForwarded|wire.FlagTraced {
		t.Fatalf("tagged decode: trace %#x flags %#x", m.TraceID, m.Flags)
	}
	if m.ID != 11 || string(m.Session) != "c9" || !observationsBitEqual(m.Obs, obs) {
		t.Fatal("tagging changed more than flags+tail")
	}

	// Tagging an already-traced payload overwrites in place.
	retagged, err := wire.AppendObserveTrace(tagged, 0x1111222233334444)
	if err != nil {
		t.Fatal(err)
	}
	if len(retagged) != len(tagged) {
		t.Fatalf("re-tagging grew the payload: %d → %d", len(tagged), len(retagged))
	}
	if err := m.Decode(retagged); err != nil {
		t.Fatal(err)
	}
	if m.TraceID != 0x1111222233334444 {
		t.Fatalf("re-tagged trace = %#x", m.TraceID)
	}

	// A zero trace id is a no-op.
	same, err := wire.AppendObserveTrace(bytes.Clone(frame[wire.HeaderSize:]), 0)
	if err != nil || len(same) != len(frame)-wire.HeaderSize {
		t.Fatalf("zero-trace tag: len %d err %v", len(same), err)
	}

	if _, err := wire.AppendObserveTrace([]byte{1, 2, 3}, 5); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("truncated payload tag: %v", err)
	}
}

// TestTracedSurvivesRelay is the wire-level half of the stitching
// contract: tag a payload, rewrite its id (what the relay does), frame
// it verbatim, and the receiver still reads the same trace id.
func TestTracedSurvivesRelay(t *testing.T) {
	obs := sampleObs()
	frame, err := wire.AppendObserveTraced(nil, 1, 0, 0xdecafbadc0ffee00, "hop", &obs)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Clone(frame[wire.HeaderSize:])
	if err := wire.SetObserveID(payload, 99); err != nil {
		t.Fatal(err)
	}
	relayed, err := wire.AppendFrame(nil, wire.MsgObserve, payload)
	if err != nil {
		t.Fatal(err)
	}
	_, p2, _, err := wire.DecodeFrame(relayed)
	if err != nil {
		t.Fatal(err)
	}
	var m wire.Observe
	if err := m.Decode(p2); err != nil {
		t.Fatal(err)
	}
	if m.ID != 99 || m.TraceID != 0xdecafbadc0ffee00 {
		t.Fatalf("relay lost the trace: id %d trace %#x", m.ID, m.TraceID)
	}
	if id, ok := wire.ObserveTraceID(p2); !ok || id != 0xdecafbadc0ffee00 {
		t.Fatalf("O(1) read after relay: (%#x, %v)", id, ok)
	}
}
