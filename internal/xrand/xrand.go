// Package xrand is the repo's compact deterministic random generator:
// a splitmix64 core with the variate shapes the learners and the load
// generator need. math/rand's default generator carries ~5 KB of state
// per instance (a [607]int64 lagged-Fibonacci vector); with one
// generator per learner session and per load-generator client, a
// 100k-session soak spent hundreds of megabytes on randomness alone —
// the single largest line in the per-session memory profile. This
// generator is 8 bytes, embeds by value, and is every bit as
// deterministic: a run is still a pure function of its seed.
//
// Draw sequences are NOT bit-compatible with math/rand. The golden
// experiment tables were regenerated when the learners switched over
// (the table *shapes* — EPD beating UPD, warm-start beating cold — are
// seed-independent; only the digits moved), and nothing on the wire or
// in checkpoints records a draw.
package xrand

import "math"

// Rand is the generator. The zero value is a valid generator seeded
// with 0; use New or Seeded to seed it properly. Not safe for
// concurrent use — give each goroutine/session its own (at 8 bytes,
// that is the point).
type Rand struct {
	s uint64
}

// New returns a pointer-form generator, for fields that want lazy
// construction or a shared nil sentinel.
func New(seed int64) *Rand { r := Seeded(seed); return &r }

// Seeded returns a value-form generator for embedding. splitmix64's
// mixer avalanches the state on every draw, so the raw seed is usable
// as-is — no warm-up pass needed.
func Seeded(seed int64) Rand { return Rand{s: uint64(seed)} }

// Uint64 is splitmix64: an additive Weyl sequence pushed through a
// finalising mixer. Full 2^64 period, no short cycles, passes BigCrush.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1), from the top 53 bits.
func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn returns a uniform draw in [0, n), rejection-sampled so no
// residue class is favoured.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		if v := r.Uint64(); v < bound {
			return int(v % uint64(n))
		}
	}
}

// ExpFloat64 returns an Exp(1) draw by inverse CDF: -ln(1-U). The
// argument is in (0, 1] (Float64 never returns 1), so the log is
// finite.
func (r *Rand) ExpFloat64() float64 { return -math.Log(1 - r.Float64()) }

// NormFloat64 returns a standard normal draw by Box–Muller. The
// spare cosine variate is deliberately discarded: caching it would
// grow the state and make a draw's value depend on draw parity, which
// is the kind of hidden coupling that turns schedule edits into
// spooky diffs.
func (r *Rand) NormFloat64() float64 {
	u := r.Float64()
	for u == 0 { // ln(0) guard
		u = r.Float64()
	}
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*r.Float64())
}
