package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/scenario"
	"qgov/internal/serve/client"
)

// Local is an in-process Target: the oracle the equivalence tests compare
// served decisions against. It builds sessions exactly the way the server
// does — governor.ByName, platform cluster from the request seed, Reset
// with the same governor.Context — so a deterministic governor produces
// the same decision stream here as over any transport.
type Local struct {
	defaultPlatform string
	defaultPeriodS  float64

	mu       sync.Mutex
	sessions map[string]*localSession
}

type localSession struct {
	mu    sync.Mutex
	gov   governor.Governor
	table platform.OPPTable
}

// NewLocal builds an empty oracle target with the serve defaults
// (platform "a15", 40 ms period).
func NewLocal() *Local {
	return &Local{
		defaultPlatform: "a15",
		defaultPeriodS:  0.040,
		sessions:        make(map[string]*localSession),
	}
}

// localCreate is the subset of the serve create body the generator emits.
type localCreate struct {
	ID       string  `json:"id"`
	Governor string  `json:"governor"`
	Platform string  `json:"platform"`
	PeriodS  float64 `json:"period_s"`
	Seed     int64   `json:"seed"`
}

// CreateSession implements Target with serve's status contract: 201 on
// success, 409 for a duplicate id, 400 for a bad request.
func (l *Local) CreateSession(body []byte) (int, []byte, error) {
	var req localCreate
	if err := json.Unmarshal(body, &req); err != nil {
		return http.StatusBadRequest, []byte(err.Error()), nil
	}
	if req.ID == "" {
		return http.StatusBadRequest, []byte("local target requires an explicit id"), nil
	}
	gov, err := governor.ByName(req.Governor)
	if err != nil {
		return http.StatusBadRequest, []byte(err.Error()), nil
	}
	platName := req.Platform
	if platName == "" {
		platName = l.defaultPlatform
	}
	plat, err := scenario.PlatformByName(platName)
	if err != nil {
		return http.StatusBadRequest, []byte(err.Error()), nil
	}
	cluster := plat.NewCluster(req.Seed)
	periodS := req.PeriodS
	if periodS == 0 {
		periodS = l.defaultPeriodS
	}
	sess := &localSession{gov: gov, table: cluster.Table()}
	gov.Reset(governor.Context{
		Table:    sess.table,
		NumCores: cluster.NumCores(),
		PeriodS:  periodS,
		Seed:     req.Seed,
	})

	l.mu.Lock()
	defer l.mu.Unlock()
	if _, exists := l.sessions[req.ID]; exists {
		return http.StatusConflict, []byte(fmt.Sprintf("session %q already exists", req.ID)), nil
	}
	l.sessions[req.ID] = sess
	return http.StatusCreated, nil, nil
}

// DeleteSession implements Target: 204 on success, 404 for unknown ids.
func (l *Local) DeleteSession(id string) (int, []byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.sessions[id]; !ok {
		return http.StatusNotFound, []byte(fmt.Sprintf("unknown session %q", id)), nil
	}
	delete(l.sessions, id)
	return http.StatusNoContent, nil, nil
}

// Len reports the live session count.
func (l *Local) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sessions)
}

// DecideBatch implements Target. Per-decision failures (unknown session,
// governor panic) land in out[i].Err, matching the transports.
func (l *Local) DecideBatch(sessions []string, obs []governor.Observation, out []client.Decision) error {
	if len(obs) != len(sessions) || len(out) != len(sessions) {
		return fmt.Errorf("loadgen: mismatched batch lengths %d/%d/%d", len(sessions), len(obs), len(out))
	}
	for i, id := range sessions {
		l.mu.Lock()
		sess := l.sessions[id]
		l.mu.Unlock()
		if sess == nil {
			out[i] = client.Decision{OPPIdx: -1, Err: fmt.Sprintf("unknown session %q", id)}
			continue
		}
		out[i] = sess.decide(obs[i])
	}
	return nil
}

func (s *localSession) decide(obs governor.Observation) (d client.Decision) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			d = client.Decision{OPPIdx: -1, Err: fmt.Sprintf("governor rejected the observation: %v", r)}
		}
	}()
	idx := s.gov.Decide(obs)
	return client.Decision{OPPIdx: idx, FreqMHz: s.table[idx].FreqMHz}
}
