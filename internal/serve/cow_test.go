package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qgov/internal/registry"
	"qgov/internal/serve"
	"qgov/internal/sim"
)

// Tests of the copy-on-write interned Q-table storage as the serving
// tier exercises it: warm-started sessions sharing one base, COW under
// concurrent decides and delete storms, refcount hygiene after drains,
// and the pool observability at both serving tiers.

// rawPost is h.post without t.Fatal, safe to call from goroutines.
func rawPost(cl *http.Client, url string, body, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := cl.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// rawDelete issues DELETE /v1/sessions/{id} and returns the status.
func rawDelete(cl *http.Client, base, id string) (int, error) {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return 0, err
	}
	resp, err := cl.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// A fleet of sessions warm-started from one manifest must share the
// manifest's pages: the pool's page count after N warm creates equals
// the count after one. Decides then fault private copies (the faults
// counter moves) without ever growing the shared set, and deleting
// everything drains the pool to exactly empty — the refcount-leak
// check. Run with -race this doubles as the concurrency test: half the
// fleet decides while the other half is delete-stormed mid-flight.
func TestWarmBaseSharingAndDeleteStormDrainsPool(t *testing.T) {
	const frames = 200
	blobs := registry.NewMem()
	reg := registry.New(blobs)
	h := newTestServer(t, serve.Options{Registry: reg})

	m, _ := trainAndPublish(t, h, reg, "trainer", "mpeg4-30fps", 11, frames)
	if st, err := rawDelete(h.ts.Client(), h.ts.URL, "trainer"); err != nil || st != http.StatusNoContent {
		t.Fatalf("deleting trainer: status %d, err %v", st, err)
	}
	if pages, bytes, _ := h.srv.QPoolStats(); pages != 0 || bytes != 0 {
		t.Fatalf("pool holds %d pages / %d bytes after the only session was deleted", pages, bytes)
	}

	// One warm session sets the shared-page floor; fifteen more must
	// not move it — clones reference the interned base, they do not
	// re-intern it (and re-decoding the manifest lands on the same
	// content-addressed pages).
	const n = 16
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("cow-%02d", i)
	}
	mk := func(id string) {
		if st := h.post("/v1/sessions", map[string]any{
			"id": id, "governor": "rtm", "seed": 11, "warm_start": m.ID,
		}, nil); st != http.StatusCreated {
			t.Fatalf("warm create %s returned %d", id, st)
		}
	}
	mk(ids[0])
	basePages, baseBytes, _ := h.srv.QPoolStats()
	if basePages == 0 || baseBytes == 0 {
		t.Fatal("warm-started session interned no pages")
	}
	for _, id := range ids[1:] {
		mk(id)
	}
	if pages, _, _ := h.srv.QPoolStats(); pages != basePages {
		t.Fatalf("pool grew from %d to %d pages across %d clones of one base", basePages, pages, n)
	}

	// Half the fleet decides (each against its own local sim) while the
	// other half is deleted underneath in-flight decides. Deciders on
	// stormed sessions must see clean unknown-session errors, never a
	// torn table.
	var wg sync.WaitGroup
	errc := make(chan error, 2*n)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			s := sim.NewSession(scenarioConfig(t, "rtm/mpeg4-30fps/a15", 11, 60))
			for !s.Done() {
				var resp struct {
					Decisions []decision `json:"decisions"`
				}
				st, err := rawPost(h.ts.Client(), h.ts.URL+"/v1/decide", map[string]any{
					"requests": []decideItem{{Session: id, Obs: obsOf(s)}},
				}, &resp)
				if err != nil || st != http.StatusOK {
					errc <- fmt.Errorf("decide %s: status %d, err %v", id, st, err)
					return
				}
				if len(resp.Decisions) != 1 {
					errc <- fmt.Errorf("decide %s: %d decisions", id, len(resp.Decisions))
					return
				}
				if e := resp.Decisions[0].Error; e != "" {
					if strings.Contains(e, "unknown session") {
						return // delete storm won the race, by design
					}
					errc <- fmt.Errorf("decide %s: %s", id, e)
					return
				}
				s.Step(resp.Decisions[0].OPPIdx)
			}
		}(i, id)
	}
	for _, id := range ids[n/2:] {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if st, err := rawDelete(h.ts.Client(), h.ts.URL, id); err != nil || st != http.StatusNoContent {
				errc <- fmt.Errorf("delete %s: status %d, err %v", id, st, err)
			}
		}(id)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if _, _, faults := h.srv.QPoolStats(); faults == 0 {
		t.Error("decides updated shared tables without a single COW fault")
	}

	// Drain the survivors: every page reference must come home.
	for _, id := range ids[:n/2] {
		if st, err := rawDelete(h.ts.Client(), h.ts.URL, id); err != nil || st != http.StatusNoContent {
			t.Fatalf("delete %s: status %d, err %v", id, st, err)
		}
	}
	if pages, bytes, _ := h.srv.QPoolStats(); pages != 0 || bytes != 0 {
		t.Errorf("pool leaked %d pages / %d bytes after every session was deleted", pages, bytes)
	}
}

// Cold sessions share too: every freshly created table of one shape is
// a clone of the same uniform page until its first update.
func TestColdSessionsShareUniformPage(t *testing.T) {
	h := newTestServer(t, serve.Options{})
	mk := func(id string) {
		if st := h.post("/v1/sessions", map[string]any{
			"id": id, "governor": "rtm", "seed": 3,
		}, nil); st != http.StatusCreated {
			t.Fatalf("create %s returned %d", id, st)
		}
	}
	mk("cold-0")
	base, _, _ := h.srv.QPoolStats()
	if base == 0 {
		t.Fatal("cold session interned no pages")
	}
	for i := 1; i < 8; i++ {
		mk(fmt.Sprintf("cold-%d", i))
	}
	if pages, _, _ := h.srv.QPoolStats(); pages != base {
		t.Fatalf("pool grew from %d to %d pages across 8 identical cold sessions", base, pages)
	}
	for i := 0; i < 8; i++ {
		if st, err := rawDelete(h.ts.Client(), h.ts.URL, fmt.Sprintf("cold-%d", i)); err != nil || st != http.StatusNoContent {
			t.Fatalf("delete cold-%d: status %d, err %v", i, st, err)
		}
	}
	if pages, bytes, _ := h.srv.QPoolStats(); pages != 0 || bytes != 0 {
		t.Errorf("pool leaked %d pages / %d bytes after drain", pages, bytes)
	}
}

// The pool's gauges and the COW fault counter must surface in
// /v1/metrics — JSON and Prometheus text — on a flat server.
func TestQTablePoolMetricsFlat(t *testing.T) {
	const frames = 80
	h := newTestServer(t, serve.Options{})
	if st := h.post("/v1/sessions", map[string]any{
		"id": "pm", "governor": "rtm", "seed": 5,
	}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	h.driveOne("pm", sim.NewSession(scenarioConfig(t, "rtm/mpeg4-30fps/a15", 5, frames)))

	var m struct {
		PoolPages   int64 `json:"qtable_pool_pages"`
		SharedBytes int64 `json:"qtable_pool_shared_bytes"`
		CowFaults   int64 `json:"qtable_cow_faults"`
	}
	if st := h.get("/v1/metrics", &m); st != http.StatusOK {
		t.Fatalf("metrics returned %d", st)
	}
	if m.PoolPages == 0 || m.SharedBytes == 0 {
		t.Errorf("pool gauges absent from JSON metrics: pages=%d bytes=%d", m.PoolPages, m.SharedBytes)
	}
	if m.CowFaults == 0 {
		t.Error("COW fault counter absent from JSON metrics after a full training run")
	}

	resp, err := h.ts.Client().Get(h.ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"rtmd_qtable_pool_pages ",
		"rtmd_qtable_pool_shared_bytes ",
		"rtmd_qtable_cow_faults_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition lacks %q", want)
		}
	}
}

// A router's aggregated /v1/metrics must report the fleet-wide pool
// sums: replicas each intern their own pages, and the router's JSON and
// Prometheus views add them up.
func TestQTablePoolMetricsRouted(t *testing.T) {
	reps, addrs := newFleet(t, 2, serve.Options{})
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtHTTP := httptest.NewServer(rt.Handler())
	defer rtHTTP.Close()
	cl := rtHTTP.Client()

	// Enough sessions that the ring lands some on each replica.
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("fleet-%d", i)
		if st, err := rawPost(cl, rtHTTP.URL+"/v1/sessions", map[string]any{
			"id": id, "governor": "rtm", "seed": 9,
		}, nil); err != nil || st != http.StatusCreated {
			t.Fatalf("create %s via router: status %d, err %v", id, st, err)
		}
		s := sim.NewSession(scenarioConfig(t, "rtm/mpeg4-30fps/a15", 9, 20))
		for !s.Done() {
			var resp struct {
				Decisions []decision `json:"decisions"`
			}
			st, err := rawPost(cl, rtHTTP.URL+"/v1/decide", map[string]any{
				"requests": []decideItem{{Session: id, Obs: obsOf(s)}},
			}, &resp)
			if err != nil || st != http.StatusOK || len(resp.Decisions) != 1 || resp.Decisions[0].Error != "" {
				t.Fatalf("decide %s via router: status %d, err %v, resp %+v", id, st, err, resp.Decisions)
			}
			s.Step(resp.Decisions[0].OPPIdx)
		}
	}

	var want struct{ pages, bytes, faults int64 }
	for _, r := range reps {
		p, b, f := r.srv.QPoolStats()
		want.pages += p
		want.bytes += b
		want.faults += f
	}
	if want.pages == 0 || want.faults == 0 {
		t.Fatalf("fleet pools idle (pages=%d faults=%d); test drove no learning", want.pages, want.faults)
	}

	var m struct {
		PoolPages   int64 `json:"qtable_pool_pages"`
		SharedBytes int64 `json:"qtable_pool_shared_bytes"`
		CowFaults   int64 `json:"qtable_cow_faults"`
	}
	if st := getJSON(t, rtHTTP.URL+"/v1/metrics", &m); st != http.StatusOK {
		t.Fatalf("router metrics returned %d", st)
	}
	if m.PoolPages != want.pages || m.SharedBytes != want.bytes || m.CowFaults != want.faults {
		t.Errorf("router merge = {pages %d, bytes %d, faults %d}, replica sums = %+v",
			m.PoolPages, m.SharedBytes, m.CowFaults, want)
	}

	resp, err := cl.Get(rtHTTP.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), fmt.Sprintf("rtmd_qtable_pool_pages %d", want.pages)) {
		t.Errorf("router prometheus exposition lacks the fleet page sum %d", want.pages)
	}
}
