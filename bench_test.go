package qgov_test

// One benchmark per table and figure of the paper's evaluation — each
// regenerates its experiment and prints the rows the paper reports — plus
// micro-benchmarks for the hot paths (Q update, EPD sampling, EWMA, the
// power model, a full simulated epoch, the FFT kernel).
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks run at a reduced-but-faithful scale (one seed)
// so a full -bench pass stays in minutes; cmd/experiments runs the
// paper-scale versions.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"qgov/internal/core"
	"qgov/internal/experiments"
	"qgov/internal/fft"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/predictor"
	"qgov/internal/sim"
	"qgov/internal/workload"
	"qgov/internal/xrand"
)

// benchSeeds trades runtime for stability: single-seed learning results
// sit inside seed noise (convergence epochs especially), so the rendered
// tables use three seeds; cmd/experiments runs the full five.
var benchSeeds = experiments.DefaultSeeds[:3]

// renderOnce prints each experiment's table a single time per `go test`
// invocation, however many times the benchmark harness re-runs b.N loops.
var renderOnce sync.Map

func printOnce(key string, render func(w io.Writer) error) {
	if _, loaded := renderOnce.LoadOrStore(key, true); loaded {
		return
	}
	fmt.Println()
	if err := render(os.Stdout); err != nil {
		panic(err)
	}
	fmt.Println()
}

// BenchmarkTableI regenerates Table I: normalised energy and performance
// of ondemand, ML-DTM and the proposed RTM against the Oracle on the
// H.264 football decode.
func BenchmarkTableI(b *testing.B) {
	var res *experiments.TableIResult
	for i := 0; i < b.N; i++ {
		res = experiments.TableI(benchSeeds, 2000)
	}
	printOnce("table1", res.Render)
}

// BenchmarkTableII regenerates Table II: the number of explorations under
// uniform (ref [21]) versus exponential (proposed) action selection.
func BenchmarkTableII(b *testing.B) {
	var res *experiments.TableIIResult
	for i := 0; i < b.N; i++ {
		res = experiments.TableII(benchSeeds, 1000)
	}
	printOnce("table2", res.Render)
}

// BenchmarkTableIII regenerates Table III: learning overhead in decision
// epochs of the per-core ML-DTM versus the shared-table RTM.
func BenchmarkTableIII(b *testing.B) {
	var res *experiments.TableIIIResult
	for i := 0; i < b.N; i++ {
		res = experiments.TableIII(benchSeeds, 2500)
	}
	printOnce("table3", res.Render)
}

// BenchmarkFig3 regenerates Fig. 3: the predicted-vs-actual workload
// series and the average slack of the MPEG4 decode.
func BenchmarkFig3(b *testing.B) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig3(benchSeeds[0], 240)
	}
	printOnce("fig3", res.Render)
}

// BenchmarkAblationEPD sweeps the EPD sharpness β (A1).
func BenchmarkAblationEPD(b *testing.B) {
	var pts []experiments.EPDBetaPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AblationEPD(benchSeeds, 700)
	}
	printOnce("a1", func(w io.Writer) error {
		fmt.Fprintln(w, "Ablation A1 — EPD sharpness β")
		for _, p := range pts {
			fmt.Fprintf(w, "  β=%-4.0f explorations=%-4.0f miss=%.1f%%\n",
				p.Beta, p.Explorations, p.MissRate*100)
		}
		return nil
	})
}

// BenchmarkAblationN sweeps the discretisation N (A2).
func BenchmarkAblationN(b *testing.B) {
	var pts []experiments.NLevelPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AblationN(benchSeeds, 900)
	}
	printOnce("a2", func(w io.Writer) error {
		fmt.Fprintln(w, "Ablation A2 — discretisation levels N")
		for _, p := range pts {
			fmt.Fprintf(w, "  N=%d energy=%.3f perf=%.3f miss=%.1f%%\n",
				p.Levels, p.NormEnergy, p.NormPerf, p.MissRate*100)
		}
		return nil
	})
}

// BenchmarkAblationGamma sweeps the EWMA smoothing factor (A3).
func BenchmarkAblationGamma(b *testing.B) {
	var pts []experiments.GammaPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AblationGamma(benchSeeds, 600)
	}
	printOnce("a3", func(w io.Writer) error {
		fmt.Fprintln(w, "Ablation A3 — EWMA smoothing factor γ")
		for _, p := range pts {
			fmt.Fprintf(w, "  γ=%.1f mispredict=%.2f%%\n", p.Gamma, p.Mispredict*100)
		}
		return nil
	})
}

// BenchmarkAblationShared compares the shared and per-core Q-table
// organisations (A4).
func BenchmarkAblationShared(b *testing.B) {
	var pts []experiments.SharedPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AblationShared(benchSeeds, 1800)
	}
	printOnce("a4", func(w io.Writer) error {
		fmt.Fprintln(w, "Ablation A4 — shared vs per-core Q-tables")
		for _, p := range pts {
			fmt.Fprintf(w, "  %-9s converged=%-5.0f qos=%-5.0f energy=%.3f miss=%.1f%%\n",
				p.Mode, p.ConvergedAt, p.TimeToQoS, p.NormEnergy, p.MissRate*100)
		}
		return nil
	})
}

// BenchmarkAblationUpdateRule compares Q-learning and SARSA (A6).
func BenchmarkAblationUpdateRule(b *testing.B) {
	var pts []experiments.UpdateRulePoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AblationUpdateRule(benchSeeds, 1000)
	}
	printOnce("a6", func(w io.Writer) error {
		fmt.Fprintln(w, "Ablation A6 — temporal-difference update rule")
		for _, p := range pts {
			fmt.Fprintf(w, "  %-10s energy=%.3f perf=%.3f miss=%.1f%%\n",
				p.Rule, p.NormEnergy, p.NormPerf, p.MissRate*100)
		}
		return nil
	})
}

// BenchmarkAblationMemBound sweeps the memory-bound fraction (A7).
func BenchmarkAblationMemBound(b *testing.B) {
	var pts []experiments.MemBoundPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.AblationMemBound(benchSeeds, 1200)
	}
	printOnce("a7", func(w io.Writer) error {
		fmt.Fprintln(w, "Ablation A7 — memory-bound fraction (DVFS leverage)")
		for _, p := range pts {
			fmt.Fprintf(w, "  m=%.1f saving=%.1f%% perf=%.2f\n",
				p.MemFrac, p.SavingVsOndemand*100, p.RTMPerf)
		}
		return nil
	})
}

// BenchmarkMultiApp runs the multi-application extension (E1).
func BenchmarkMultiApp(b *testing.B) {
	var res *experiments.MultiAppResult
	for i := 0; i < b.N; i++ {
		res = experiments.MultiApp(benchSeeds, 800)
	}
	printOnce("e1", res.Render)
}

// --- micro-benchmarks -----------------------------------------------------

// BenchmarkQTableUpdate measures one Bellman update on the paper-sized
// table (25 states x 19 actions).
func BenchmarkQTableUpdate(b *testing.B) {
	q := core.NewQTable(25, 19, -1)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, a, ns := rng.Intn(25), rng.Intn(19), rng.Intn(25)
		q.Update(s, a, -0.3, ns, 0.4, 0.9)
	}
}

// BenchmarkEPDSample measures one Eq. 2 draw over the 19-point ladder.
func BenchmarkEPDSample(b *testing.B) {
	p := core.NewExponentialPolicy()
	rng := xrand.New(1)
	nf := platform.A15Table().NormFreqs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample(rng, 19, 0.2, nf)
	}
}

// BenchmarkEWMA measures one Eq. 1 observation.
func BenchmarkEWMA(b *testing.B) {
	e := predictor.NewEWMA(0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(float64(30e6 + i%1000))
	}
}

// BenchmarkPowerModel measures one cluster power evaluation.
func BenchmarkPowerModel(b *testing.B) {
	m := platform.DefaultA15PowerModel()
	opp := platform.A15Table()[12]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ClusterPowerW(opp, 4, 55)
	}
}

// BenchmarkClusterEpoch measures one full platform epoch: execution,
// energy integration, thermal step, sensor sampling, PMU accounting.
func BenchmarkClusterEpoch(b *testing.B) {
	c := platform.DefaultA15Cluster(1)
	c.SetOPP(10)
	cycles := []uint64{30e6, 31e6, 29e6, 30e6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Execute(cycles, 120e-6, 0.040)
	}
}

// BenchmarkSimEpoch measures the full closed loop per decision epoch:
// governor decision, DVFS, execution, observation assembly.
func BenchmarkSimEpoch(b *testing.B) {
	trace := workload.MPEG4At30(1, 2000)
	b.ResetTimer()
	frames := 0
	for i := 0; i < b.N; i += trace.Len() {
		rtm := core.New(core.DefaultConfig())
		if err := rtm.Calibrate(trace.MaxPerFrame()); err != nil {
			b.Fatal(err)
		}
		res := sim.Run(sim.Config{Trace: trace, Governor: rtm, Seed: 1})
		frames += res.Frames
	}
	b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
}

// BenchmarkOndemandDecision measures the baseline governor's decision.
func BenchmarkOndemandDecision(b *testing.B) {
	g := governor.NewOndemand()
	g.Reset(governor.Context{Table: platform.A15Table(), NumCores: 4, PeriodS: 0.040, Seed: 1})
	obs := governor.Observation{
		Epoch: 1, Util: []float64{0.6, 0.5, 0.7, 0.6},
		Cycles: []uint64{20e6, 18e6, 22e6, 20e6}, ExecTimeS: 0.025,
		PeriodS: 0.040, WallTimeS: 0.040, PowerW: 2, TempC: 50, OPPIdx: 10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.Epoch = i
		g.Decide(obs)
	}
}

// BenchmarkFFT64K measures the kernel that grounds the FFT application's
// cycle model.
func BenchmarkFFT64K(b *testing.B) {
	x := make([]complex128, 1<<16)
	rng := xrand.New(1)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if _, err := fft.Transform(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSweep measures the streaming sweep engine end to end:
// jobs flowing through the worker pool into the online aggregator, the
// shape of every large design-space exploration.
func BenchmarkStreamSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		jobs := make(chan sim.Job)
		go func() {
			defer close(jobs)
			for j := 0; j < 32; j++ {
				jobs <- sim.Job{Name: "bench", Build: func() sim.Config {
					return sim.Config{
						Trace:    workload.Constant("bench", 25, 50, 4, 30e6),
						Governor: governor.NewOndemand(),
						Seed:     1,
					}
				}}
			}
		}()
		var agg sim.Aggregator
		for ir := range sim.Stream(jobs, 0) {
			agg.Add(ir.Result)
		}
		if agg.Count() != 32 {
			b.Fatal("lost runs")
		}
	}
}

// BenchmarkTraceGeneration measures building the 3000-frame football trace.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := workload.FootballH264(int64(i))
		if tr.Len() != 3000 {
			b.Fatal("bad trace")
		}
	}
}
