// Package loadgen generates production-shaped serving load: heterogeneous
// client populations with skewed per-client rates, pluggable arrival
// processes (Poisson, Gamma and Weibull burst trains), and session
// lifecycle churn — create, decide for a lifetime, delete, repeat, plus
// fleet-wide create/delete storms. Everything is driven by one seed:
// the same Spec and seed produce a byte-identical schedule on any
// machine at any GOMAXPROCS, so a soak run is an experiment, not an
// anecdote. Schedules can be recorded to JSONL and replayed
// byte-identically (trace.go), and executed against any serving target —
// a flat server, the router, the direct fleet client, or an in-process
// oracle (run.go).
//
// The model follows the ServeGen observation that production load is not
// one distribution: each client class holds its own arrival process and
// rate skew, and the population is the union. A tiny spec reproduces the
// paper's steady 25 fps frame streams; a storm spec reproduces the kind
// of churn that exposes map-retention and write-amplification bugs.
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"qgov/internal/governor"
	"qgov/internal/scenario"
)

// Spec is a complete workload description. The zero values of optional
// fields are production defaults, so a minimal spec is three lines.
type Spec struct {
	// Seed drives every random draw in the schedule. Same seed, same
	// schedule — byte-identical, machine-independent.
	Seed int64 `json:"seed"`
	// HorizonS is the simulated duration of the schedule in seconds.
	HorizonS float64 `json:"horizon_s"`
	// IDPrefix namespaces session ids (default "lg"). Ids are
	// "<prefix>-<class>-<client#>" and are recycled across a client's
	// session generations — deliberately, so churn exercises the
	// recycled-id races.
	IDPrefix string `json:"id_prefix,omitempty"`
	// Clients are the heterogeneous population, one entry per class.
	Clients []ClientClass `json:"clients"`
	// Storms are scheduled mass delete/re-create phases.
	Storms []Storm `json:"storms,omitempty"`
	// MaxEvents caps the schedule length as a safety net; 0 is uncapped.
	MaxEvents int64 `json:"max_events,omitempty"`
	// NoDrain leaves sessions live at the horizon instead of emitting
	// the final delete for each (the default drains, so a completed run
	// leaves a clean server).
	NoDrain bool `json:"no_drain,omitempty"`
}

// ClientClass is one homogeneous sub-population.
type ClientClass struct {
	// Name labels the class in session ids and reports.
	Name string `json:"name"`
	// Count is how many clients of this class exist.
	Count int `json:"count"`
	// Governor names the governor for this class's sessions (default
	// "rtm").
	Governor string `json:"governor,omitempty"`
	// Platform names the scenario platform (empty uses the target
	// server's default).
	Platform string `json:"platform,omitempty"`
	// PeriodS is the session decision period (default 0.04 — 25 fps).
	PeriodS float64 `json:"period_s,omitempty"`
	// Arrival is the decide arrival process for each client.
	Arrival Arrival `json:"arrival"`
	// RateSkew optionally spreads per-client mean rates around
	// Arrival.RateHz; without it every client of the class runs at the
	// same mean rate.
	RateSkew *Skew `json:"rate_skew,omitempty"`
	// LifetimeDecides is the mean session lifetime in decides; after an
	// exponentially drawn number of decides the client deletes its
	// session and creates a fresh one under the same id. 0 means
	// sessions live to the horizon.
	LifetimeDecides float64 `json:"lifetime_decides,omitempty"`
	// StartWindowS staggers session creation uniformly over the first
	// StartWindowS seconds (default 0: every client creates at t=0 — a
	// deliberate thundering herd).
	StartWindowS float64 `json:"start_window_s,omitempty"`
}

// Arrival is a decide interarrival process. RateHz is the mean decides
// per second; Process shapes the variance around that mean.
type Arrival struct {
	// Process is "poisson", "gamma" or "weibull". Gamma and Weibull with
	// Shape < 1 produce burst trains (clumped decides with long gaps);
	// Shape > 1 is more regular than Poisson; Shape == 1 degenerates to
	// Poisson for both.
	Process string `json:"process"`
	// RateHz is the class's mean decide rate per client.
	RateHz float64 `json:"rate_hz"`
	// Shape is the Gamma/Weibull shape parameter (default 1).
	Shape float64 `json:"shape,omitempty"`
}

// Skew spreads per-client mean rates: each client's rate is
// Arrival.RateHz scaled by a draw from the distribution, normalised to
// mean 1 — so the class keeps its aggregate rate but individual clients
// range from near-idle to hot (the heavy-tailed client populations
// ServeGen measures).
type Skew struct {
	// Dist is "pareto" (Param is the tail index alpha, > 1) or
	// "lognormal" (Param is sigma).
	Dist string `json:"dist"`
	// Param parameterises the distribution.
	Param float64 `json:"param"`
}

// Storm is one mass-churn phase: at AtS, Fraction of all clients delete
// their sessions simultaneously and re-create them RestartDelayS later.
type Storm struct {
	AtS           float64 `json:"at_s"`
	Fraction      float64 `json:"fraction"`
	RestartDelayS float64 `json:"restart_delay_s,omitempty"`
}

const defaultIDPrefix = "lg"

// Validate checks the spec and fills nothing in: defaults are applied at
// generation time so a validated spec round-trips through JSON unchanged.
func (s *Spec) Validate() error {
	if !(s.HorizonS > 0) {
		return fmt.Errorf("loadgen: horizon_s %v must be positive", s.HorizonS)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("loadgen: spec needs at least one client class")
	}
	if s.MaxEvents < 0 {
		return fmt.Errorf("loadgen: max_events %d must be >= 0", s.MaxEvents)
	}
	for i := range s.Clients {
		c := &s.Clients[i]
		if c.Name == "" {
			return fmt.Errorf("loadgen: client class %d needs a name", i)
		}
		if c.Count <= 0 {
			return fmt.Errorf("loadgen: class %s count %d must be positive", c.Name, c.Count)
		}
		if c.Governor != "" {
			if _, err := governor.ByName(c.Governor); err != nil {
				return fmt.Errorf("loadgen: class %s: %w", c.Name, err)
			}
		}
		if c.Platform != "" {
			if _, err := scenario.PlatformByName(c.Platform); err != nil {
				return fmt.Errorf("loadgen: class %s: %w", c.Name, err)
			}
		}
		if c.PeriodS < 0 {
			return fmt.Errorf("loadgen: class %s period_s %v must be >= 0", c.Name, c.PeriodS)
		}
		switch c.Arrival.Process {
		case "poisson":
		case "gamma", "weibull":
			if c.Arrival.Shape < 0 {
				return fmt.Errorf("loadgen: class %s shape %v must be >= 0", c.Name, c.Arrival.Shape)
			}
		default:
			return fmt.Errorf("loadgen: class %s arrival process %q is not poisson, gamma or weibull", c.Name, c.Arrival.Process)
		}
		if !(c.Arrival.RateHz > 0) {
			return fmt.Errorf("loadgen: class %s rate_hz %v must be positive", c.Name, c.Arrival.RateHz)
		}
		if sk := c.RateSkew; sk != nil {
			switch sk.Dist {
			case "pareto":
				if !(sk.Param > 1) {
					return fmt.Errorf("loadgen: class %s pareto alpha %v must be > 1 (finite mean)", c.Name, sk.Param)
				}
			case "lognormal":
				if !(sk.Param > 0) {
					return fmt.Errorf("loadgen: class %s lognormal sigma %v must be positive", c.Name, sk.Param)
				}
			default:
				return fmt.Errorf("loadgen: class %s rate_skew dist %q is not pareto or lognormal", c.Name, sk.Dist)
			}
		}
		if c.LifetimeDecides < 0 {
			return fmt.Errorf("loadgen: class %s lifetime_decides %v must be >= 0", c.Name, c.LifetimeDecides)
		}
		if c.StartWindowS < 0 {
			return fmt.Errorf("loadgen: class %s start_window_s %v must be >= 0", c.Name, c.StartWindowS)
		}
	}
	for i, st := range s.Storms {
		if st.AtS < 0 || st.AtS > s.HorizonS {
			return fmt.Errorf("loadgen: storm %d at_s %v outside [0, %v]", i, st.AtS, s.HorizonS)
		}
		if st.Fraction <= 0 || st.Fraction > 1 {
			return fmt.Errorf("loadgen: storm %d fraction %v outside (0, 1]", i, st.Fraction)
		}
		if st.RestartDelayS < 0 {
			return fmt.Errorf("loadgen: storm %d restart_delay_s %v must be >= 0", i, st.RestartDelayS)
		}
		if i > 0 && st.AtS < s.Storms[i-1].AtS {
			return fmt.Errorf("loadgen: storms must be sorted by at_s (storm %d at %v after %v)", i, st.AtS, s.Storms[i-1].AtS)
		}
	}
	return nil
}

// LoadSpec reads and validates a Spec from a JSON file. Unknown fields
// are errors — a typo in a soak spec must fail loudly, not silently run
// a different workload.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("loadgen: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
