package serve

import (
	"encoding/json"
	"net/http"

	"qgov/internal/wire"
)

// control implements connBackend: it executes one binary control-plane
// operation. Ops mirror the HTTP endpoints one for one — same request
// and response JSON, same status codes — so the two control planes
// cannot drift apart in semantics, only in framing. It is called from
// the TCP connection worker between decide batches (control frames are
// ordering barriers; see tcpConn.respond).
func (s *Server) control(op byte, session string, body []byte) (status uint16, resp []byte) {
	switch op {
	case wire.OpCreate:
		var req createRequest
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				return http.StatusBadRequest, errorBody(err)
			}
		}
		if session != "" {
			req.ID = session
		}
		sess, st, err := s.createSession(req)
		if err != nil {
			return uint16(st), errorBody(err)
		}
		s.logf("serve: session %s created (%s on %s)", sess.id, sess.govName, sess.platName)
		return http.StatusCreated, jsonBody(s.info(sess))

	case wire.OpCheckpoint:
		sess := s.session(session)
		if sess == nil {
			return http.StatusNotFound, errorBody(errUnknownSession(session))
		}
		state, st, err := s.freezeSession(sess)
		if err != nil {
			return uint16(st), errorBody(err)
		}
		return http.StatusOK, jsonBody(checkpointResponse{Session: sess.id, State: state})

	case wire.OpDelete:
		if !s.deleteSession(session) {
			return http.StatusNotFound, errorBody(errUnknownSession(session))
		}
		return http.StatusNoContent, nil

	case wire.OpInfo:
		sess := s.session(session)
		if sess == nil {
			return http.StatusNotFound, errorBody(errUnknownSession(session))
		}
		return http.StatusOK, jsonBody(s.info(sess))

	case wire.OpMetrics:
		return http.StatusOK, jsonBody(s.buildMetrics())

	case wire.OpList:
		return http.StatusOK, jsonBody(s.listInfos())

	case wire.OpHealth:
		return http.StatusOK, jsonBody(s.health())

	case wire.OpTrace:
		return s.traceSpans(body)

	case wire.OpMembers:
		if len(body) == 0 {
			return http.StatusOK, jsonBody(s.membersTable())
		}
		var msg wire.Members
		if err := json.Unmarshal(body, &msg); err != nil {
			return http.StatusBadRequest, errorBody(err)
		}
		return s.installMembers(msg)

	default:
		return http.StatusBadRequest, errorBody(errf("unknown control op 0x%02x", op))
	}
}

func jsonBody(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Every body type here marshals by construction; reaching this is
		// a programming error worth failing loudly over.
		panic("serve: encoding control response: " + err.Error())
	}
	return b
}

func errorBody(err error) []byte {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return b
}
