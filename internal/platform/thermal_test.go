package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThermalSteadyState(t *testing.T) {
	th := NewThermalModel(8, 0.15, 25)
	// Long exposure to 5 W must land on ambient + P*R = 65°C.
	for i := 0; i < 1000; i++ {
		th.Step(5, 0.1)
	}
	if got, want := th.TempC(), 65.0; math.Abs(got-want) > 0.01 {
		t.Fatalf("steady temp = %.3f, want %.3f", got, want)
	}
	if got := th.SteadyC(5); got != 65 {
		t.Fatalf("SteadyC = %v, want 65", got)
	}
}

func TestThermalCoolsToAmbient(t *testing.T) {
	th := NewThermalModel(8, 0.15, 25)
	th.Step(6, 10) // heat up
	if th.TempC() <= 25 {
		t.Fatal("did not heat")
	}
	for i := 0; i < 100; i++ {
		th.Step(0, 1)
	}
	if math.Abs(th.TempC()-25) > 0.01 {
		t.Fatalf("did not cool to ambient: %.3f", th.TempC())
	}
}

func TestThermalExactExponential(t *testing.T) {
	th := NewThermalModel(10, 0.1, 20) // tau = 1 s
	th.Step(4, 1)                      // one time constant toward 60
	want := 60 + (20-60)*math.Exp(-1)
	if math.Abs(th.TempC()-want) > 1e-9 {
		t.Fatalf("after 1 tau: %.6f, want %.6f", th.TempC(), want)
	}
}

func TestThermalStepEdgeCases(t *testing.T) {
	th := NewThermalModel(8, 0.15, 25)
	before := th.TempC()
	if got := th.Step(5, 0); got != before {
		t.Fatal("dt=0 must be a no-op")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt must panic")
		}
	}()
	th.Step(5, -1)
}

func TestThermalReset(t *testing.T) {
	th := DefaultA15Thermal()
	th.Step(6, 100)
	th.Reset()
	if th.TempC() != th.AmbientC {
		t.Fatalf("Reset: temp %.2f != ambient %.2f", th.TempC(), th.AmbientC)
	}
}

func TestNewThermalModelPanics(t *testing.T) {
	for _, c := range []struct{ r, cap float64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewThermalModel(%v,%v) must panic", c.r, c.cap)
				}
			}()
			NewThermalModel(c.r, c.cap, 25)
		}()
	}
}

// Property: temperature always moves toward (and never past) the
// steady-state point, and splitting a step in two gives the same result as
// one combined step (semigroup property of the exact integrator).
func TestThermalStepProperties(t *testing.T) {
	f := func(rawP, rawDT uint16, split uint8) bool {
		p := float64(rawP%100) / 10            // 0..10 W
		dt := float64(rawDT%10000)/1000 + 1e-6 // up to 10 s
		a := NewThermalModel(8, 0.15, 25)
		b := NewThermalModel(8, 0.15, 25)
		a.Step(6, 2) // pre-warm both identically
		b.Step(6, 2)

		steady := a.SteadyC(p)
		before := a.TempC()
		after := a.Step(p, dt)
		// monotone approach without overshoot
		if before <= steady && (after < before-1e-9 || after > steady+1e-9) {
			return false
		}
		if before >= steady && (after > before+1e-9 || after < steady-1e-9) {
			return false
		}
		// semigroup: one step == two half steps
		frac := (float64(split%98) + 1) / 100
		b.Step(p, dt*frac)
		b.Step(p, dt*(1-frac))
		return math.Abs(b.TempC()-after) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
