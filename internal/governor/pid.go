package governor

// PID is a control-theoretic DVS baseline in the tradition of Gu &
// Chakraborty (DAC'08, the paper's ref [4]): a discrete PID controller
// regulates the per-frame slack ratio toward a setpoint by moving the
// operating point up or down the ladder. It is deadline-aware (unlike
// ondemand/schedutil) but model-free and memoryless about workload
// structure (unlike the RTM): the same gains act in every workload phase,
// so it trades the RTM's learning overhead for steady-state hunting on
// workloads whose demand jumps between levels.
type PID struct {
	// Kp, Ki, Kd are the controller gains over the slack error, expressed
	// in OPP steps per unit slack-ratio error.
	Kp, Ki, Kd float64
	// Setpoint is the desired slack ratio (finishing 10 % early).
	Setpoint float64
	// IntegralClamp bounds the integral term (anti-windup), in the same
	// OPP-step units the gains produce.
	IntegralClamp float64
	// OverheadS is the per-decision compute cost.
	OverheadS float64

	ctx      Context
	cur      int
	integral float64
	prevErr  float64
	primed   bool
}

// NewPID constructs the controller with gains tuned on the A15 ladder:
// a full-scale slack error (1.0) moves about six operating points.
func NewPID() *PID {
	return &PID{
		Kp:            6,
		Ki:            1.2,
		Kd:            2,
		Setpoint:      0.10,
		IntegralClamp: 8,
		OverheadS:     20e-6,
	}
}

// Name implements Governor.
func (g *PID) Name() string { return "pid" }

// DecisionOverheadS implements OverheadModeler.
func (g *PID) DecisionOverheadS() float64 { return g.OverheadS }

// Reset implements Governor.
func (g *PID) Reset(ctx Context) {
	g.ctx = ctx
	g.cur = 0
	g.integral = 0
	g.prevErr = 0
	g.primed = false
}

// Decide implements Governor. The error convention: a frame finishing
// late (slack below the setpoint) yields a positive error and pushes the
// frequency up.
func (g *PID) Decide(obs Observation) int {
	if obs.Epoch < 0 {
		g.cur = 0
		return 0
	}
	slack := (obs.PeriodS - obs.ExecTimeS) / obs.PeriodS
	err := g.Setpoint - slack

	g.integral += g.Ki * err
	if g.integral > g.IntegralClamp {
		g.integral = g.IntegralClamp
	}
	if g.integral < -g.IntegralClamp {
		g.integral = -g.IntegralClamp
	}
	deriv := 0.0
	if g.primed {
		deriv = err - g.prevErr
	}
	g.prevErr = err
	g.primed = true

	delta := g.Kp*err + g.integral + g.Kd*deriv
	// Move relative to the current point; round toward the demanded
	// direction so small persistent errors still act through the integral.
	g.cur = g.ctx.Table.Clamp(g.cur + int(roundAway(delta)))
	return g.cur
}

// roundAway rounds half-away-from-zero, so a sustained fractional demand
// eventually crosses an OPP step.
func roundAway(x float64) float64 {
	if x >= 0 {
		return float64(int(x + 0.5))
	}
	return float64(int(x - 0.5))
}

func init() {
	Register("pid", func() Governor { return NewPID() })
}
