package serve

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"qgov/internal/wire"
)

// TCPServer serves the binary wire protocol on persistent multiplexed
// connections — the transport fast path. The HTTP endpoint pays ~500 µs
// of connection and JSON handling per 64-decision batch; a wire frame
// costs ~100 bytes and decodes allocation-free, so a persistent
// connection pushes decisions/s toward the governor's own throughput.
//
// Each connection runs two goroutines. A reader decodes MsgObserve
// frames into pooled requests; a worker drains everything the reader has
// queued into one batch (connection-level batching: requests that arrive
// while the previous batch is deciding coalesce into the next fan-out),
// decides the batch through the same fanOut/session path as HTTP, and
// writes the MsgDecide responses back with a single flush. Requests fail
// independently, exactly like entries of the JSON batch.
//
// The control plane stays on HTTP: sessions are created, inspected,
// checkpointed, and deleted over the JSON API; TCP carries only the
// observe→decide hot loop.
type TCPServer struct {
	srv *Server
	lis net.Listener

	mu     sync.Mutex
	conns  map[*tcpConn]struct{}
	closed bool

	wg sync.WaitGroup // one per live connection
}

// NewTCP wraps srv with a binary-transport listener. Call Serve to
// accept; Shutdown (or Close) before srv.Close so the final checkpoint
// sees every drained decision.
func NewTCP(srv *Server, lis net.Listener) *TCPServer {
	return &TCPServer{
		srv:   srv,
		lis:   lis,
		conns: make(map[*tcpConn]struct{}),
	}
}

// Addr returns the listener's address.
func (t *TCPServer) Addr() net.Addr { return t.lis.Addr() }

// Serve accepts connections until the listener closes. It returns nil
// after Shutdown/Close, the accept error otherwise.
func (t *TCPServer) Serve() error {
	for {
		conn, err := t.lis.Accept()
		if err != nil {
			if t.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c := &tcpConn{
			t:    t,
			conn: conn,
			reqs: make(chan *observeReq, maxDecideBatch),
		}
		if !t.register(c) {
			conn.Close()
			return nil
		}
		t.wg.Add(1)
		go c.run()
	}
}

func (t *TCPServer) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCPServer) register(c *tcpConn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *TCPServer) unregister(c *tcpConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.conns, c)
}

// snapshot returns the live connections and marks the server closed.
func (t *TCPServer) snapshotAndClose() []*tcpConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	all := make([]*tcpConn, 0, len(t.conns))
	for c := range t.conns {
		all = append(all, c)
	}
	return all
}

// drainQuiet is how long a draining connection keeps reading after
// Shutdown begins. Frames the client had written when shutdown started
// are in the kernel buffer and arrive within milliseconds; a persistent
// connection has no request boundary that would mark it "idle" (the way
// http.Server.Shutdown detects idle conns), so reading stops after this
// quiet window rather than holding every restart for the full grace.
const drainQuiet = time.Second

// Shutdown drains gracefully: the listener closes, every connection
// keeps reading for drainQuiet (bounded by ctx's deadline) so frames
// already in flight are decided and answered, responses flush, and the
// call returns once all connections have closed. When ctx expires
// first, remaining connections are cut and ctx.Err() returned. Call the
// owning Server's Close afterwards so the final checkpoint includes
// every drained decision.
func (t *TCPServer) Shutdown(ctx context.Context) error {
	conns := t.snapshotAndClose()
	t.lis.Close()

	deadline := time.Now().Add(drainQuiet)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for _, c := range conns {
		// Reads past the deadline fail; the reader goroutine then stops
		// accepting frames and the worker drains what was queued.
		_ = c.conn.SetReadDeadline(deadline)
	}

	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range conns {
			c.conn.Close()
		}
		<-done
		return ctx.Err()
	}
}

// Close cuts every connection immediately. Tests and error paths use it;
// production shutdown goes through Shutdown.
func (t *TCPServer) Close() error {
	conns := t.snapshotAndClose()
	err := t.lis.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	t.wg.Wait()
	return err
}

// observeReq is one in-flight binary request: the decoded observe
// message and, after decideBatch, its answer. Pooled so a steady decision
// stream allocates nothing.
type observeReq struct {
	m       wire.Observe
	oppIdx  int32
	freqMHz int32
	errMsg  string
}

var observePool = sync.Pool{New: func() any { return new(observeReq) }}

// maxWireErrLen truncates per-request error messages on the wire; real
// governor errors are a line, anything longer is a recovered panic dump.
const maxWireErrLen = 1024

type tcpConn struct {
	t    *TCPServer
	conn net.Conn
	reqs chan *observeReq
}

func (c *tcpConn) run() {
	defer c.t.wg.Done()
	defer c.t.unregister(c)
	defer c.conn.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.respond()
	}()
	c.read()
	close(c.reqs) // reader is done; let the worker drain and exit
	<-done
}

// read decodes frames until the stream ends. Any protocol error (bad
// magic, truncated message, non-observe frame) drops the connection —
// framing is byte-exact, so there is no way to resynchronise.
func (c *tcpConn) read() {
	r := wire.NewReader(c.conn)
	for {
		typ, payload, err := r.Next()
		if err != nil {
			// EOF (client went away), read-deadline expiry (drain), or a
			// poisoned stream: all end the reading half.
			return
		}
		if typ != wire.MsgObserve {
			c.t.srv.logf("serve: tcp %s: unexpected frame type 0x%02x", c.conn.RemoteAddr(), typ)
			return
		}
		req := observePool.Get().(*observeReq)
		if err := req.m.Decode(payload); err != nil {
			observePool.Put(req)
			c.t.srv.logf("serve: tcp %s: %v", c.conn.RemoteAddr(), err)
			return
		}
		c.reqs <- req
	}
}

// respond is the connection's batching worker: it blocks for one request,
// coalesces everything else already queued into the same batch, decides
// the batch in one fan-out, and writes all responses under one flush.
func (c *tcpConn) respond() {
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	var batch []*observeReq
	var scratch []byte
	for {
		req, ok := <-c.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
	coalesce:
		for len(batch) < maxDecideBatch {
			select {
			case more, ok := <-c.reqs:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
			default:
				break coalesce
			}
		}

		c.decideBatch(batch)

		writeErr := false
		for _, r := range batch {
			// Cap the error message below the codec's 64 KiB field bound:
			// a failed AppendDecide would otherwise drop the response and
			// leave the client waiting on that id forever.
			if len(r.errMsg) > maxWireErrLen {
				r.errMsg = r.errMsg[:maxWireErrLen]
			}
			var err error
			scratch, err = wire.AppendDecide(scratch[:0], r.m.ID, r.oppIdx, r.freqMHz, r.errMsg)
			if err != nil {
				writeErr = true // cannot answer → the connection must die
			} else if !writeErr {
				if _, werr := bw.Write(scratch); werr != nil {
					writeErr = true
				}
			}
			r.errMsg = ""
			observePool.Put(r)
		}
		if !writeErr {
			writeErr = bw.Flush() != nil
		}
		if writeErr {
			// The write half is gone. Close the connection so the reader
			// unblocks, then drain its queue so it never blocks sending.
			c.conn.Close()
			for r := range c.reqs {
				observePool.Put(r)
			}
			return
		}
	}
}

// decideBatch answers every request in the batch through the same
// session/fan-out machinery as the HTTP path.
func (c *tcpConn) decideBatch(batch []*observeReq) {
	srv := c.t.srv
	fanOut(len(batch), func(i int) {
		r := batch[i]
		sess := srv.sessionFor(r.m.Session)
		if sess == nil {
			r.oppIdx, r.freqMHz = -1, 0
			r.errMsg = errUnknownSession(string(r.m.Session)).Error()
			return
		}
		idx, err := sess.decide(r.m.Obs)
		if err != nil {
			r.oppIdx, r.freqMHz = -1, 0
			r.errMsg = err.Error()
			return
		}
		r.oppIdx = int32(idx)
		r.freqMHz = int32(sess.table[idx].FreqMHz)
		srv.decisions.Add(1)
	})
}
