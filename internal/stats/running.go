package stats

import "math"

// Running accumulates streaming samples and exposes count, mean, variance
// and extrema without retaining the samples. The mean and variance use
// Welford's algorithm, so the accumulator is numerically stable over the
// multi-hundred-thousand-epoch sweeps run by the experiment harness.
//
// The zero value is an empty accumulator ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddAll incorporates every sample in xs.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N returns the number of samples observed.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or NaN before any sample.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased running variance, or NaN before two samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased running standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observed sample, or NaN before any sample.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observed sample, or NaN before any sample.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Reset returns the accumulator to its empty state.
func (r *Running) Reset() { *r = Running{} }

// Merge folds another accumulator into r, as if every sample added to o had
// been added to r. Merging an empty accumulator is a no-op. This supports
// the parallel sweep runner, which accumulates per-goroutine and merges.
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}
