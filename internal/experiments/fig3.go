package experiments

import (
	"fmt"
	"io"

	"qgov/internal/sim"
	"qgov/internal/stats"
	"qgov/internal/workload"
)

// Fig3Result reproduces Fig. 3: the per-frame predicted and actual
// workload (cycle count) of an MPEG4 decode at 24 fps SVGA under the RTM,
// together with the average slack ratio — showing mispredictions during
// the early exploration frames and again at the scene change after frame
// 90, and the slack settling toward the target as learning completes.
type Fig3Result struct {
	Workload string
	Frames   int

	PredictedCC []float64 // per-frame forecast (frame 0 has none: NaN)
	ActualCC    []float64
	AvgSlackL   []float64
	FreqMHz     []int

	// MispredictEarly is mean |pred−actual| / mean(actual) over the first
	// 100 frames (the paper reports ≈8 %); MispredictLate the same over
	// the remaining frames (paper: ≈3 %).
	MispredictEarly float64
	MispredictLate  float64
	PaperEarly      float64
	PaperLate       float64

	// SceneChangeFrames are the scripted cuts in the workload, for
	// plotting annotations.
	SceneChangeFrames []int

	Records []sim.FrameRecord
}

// Fig3 runs the experiment: 240 frames by default (frames <= 0), enough to
// show warm-up, the frame-92 cut during exploitation and recovery.
func Fig3(seed int64, frames int) *Fig3Result {
	if frames <= 0 {
		frames = 240
	}
	tr := workload.MPEG4SVGA24(seed, frames)
	rtm := newRTM(tr)
	r := run(tr, rtm, seed, true)

	res := &Fig3Result{
		Workload:          tr.Name,
		Frames:            frames,
		PaperEarly:        0.08,
		PaperLate:         0.03,
		SceneChangeFrames: []int{8, 18, 92},
		Records:           r.Records,
	}
	for _, rec := range r.Records {
		res.PredictedCC = append(res.PredictedCC, rec.PredictedCC)
		res.ActualCC = append(res.ActualCC, rec.ActualCC)
		res.AvgSlackL = append(res.AvgSlackL, rec.AvgSlackL)
		res.FreqMHz = append(res.FreqMHz, rec.FreqMHz)
	}

	// Misprediction relative to the average workload, as in Section III-B.
	// Frame 0 has no forecast and is skipped.
	split := 100
	if split > frames {
		split = frames
	}
	res.MispredictEarly = mispredict(res.PredictedCC[1:split], res.ActualCC[1:split])
	if frames > split {
		res.MispredictLate = mispredict(res.PredictedCC[split:], res.ActualCC[split:])
	}
	return res
}

func mispredict(pred, actual []float64) float64 {
	// Drop NaN forecasts (un-primed predictor).
	var p, a []float64
	for i := range pred {
		if pred[i] == pred[i] {
			p = append(p, pred[i])
			a = append(a, actual[i])
		}
	}
	return stats.MAPEOfMean(p, a)
}

// Render prints the summary statistics and a compact frame-series excerpt.
func (f *Fig3Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 3 — workload misprediction, %s, %d frames\n", f.Workload, f.Frames)
	fmt.Fprintf(w, "  avg misprediction, frames 1-99:   %5.1f%%   (paper ≈ %.0f%%)\n",
		f.MispredictEarly*100, f.PaperEarly*100)
	fmt.Fprintf(w, "  avg misprediction, frames 100+:   %5.1f%%   (paper ≈ %.0f%%)\n",
		f.MispredictLate*100, f.PaperLate*100)
	fmt.Fprintf(w, "  scene changes at frames %v\n", f.SceneChangeFrames)
	fmt.Fprintln(w, "  frame   predicted_cc     actual_cc   slack_L  freq_mhz")
	for i := 0; i < len(f.ActualCC); i += 10 {
		pred := "-"
		if f.PredictedCC[i] == f.PredictedCC[i] {
			pred = fmt.Sprintf("%12.0f", f.PredictedCC[i])
		}
		fmt.Fprintf(w, "  %5d  %13s  %12.0f  %+8.3f  %8d\n",
			i, pred, f.ActualCC[i], f.AvgSlackL[i], f.FreqMHz[i])
	}
	return nil
}

// WriteCSV emits the full per-frame series for plotting.
func (f *Fig3Result) WriteCSV(w io.Writer) error {
	return sim.WriteRecordsCSV(w, f.Records)
}
