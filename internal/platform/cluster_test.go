package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func testCluster(seed int64) *Cluster {
	return DefaultA15Cluster(seed)
}

func TestClusterBasicExecution(t *testing.T) {
	c := testCluster(1)
	c.SetOPP(8) // 1000 MHz
	// 10 Mcycles on each of 4 cores at 1 GHz = 10 ms exec.
	cycles := []uint64{10e6, 10e6, 10e6, 10e6}
	rep := c.Execute(cycles, 0, 0.040)
	if math.Abs(rep.ExecTimeS-0.010) > 1e-9 {
		t.Errorf("ExecTimeS = %v, want 0.010", rep.ExecTimeS)
	}
	if rep.WallTimeS != 0.040 {
		t.Errorf("WallTimeS = %v, want the period 0.040", rep.WallTimeS)
	}
	if math.Abs(rep.SlackS-0.030) > 1e-9 {
		t.Errorf("SlackS = %v, want 0.030", rep.SlackS)
	}
	if rep.EnergyJ <= 0 {
		t.Errorf("EnergyJ = %v, want > 0", rep.EnergyJ)
	}
	if rep.ActiveCores != 4 {
		t.Errorf("ActiveCores = %d, want 4", rep.ActiveCores)
	}
	if rep.TotalCycles != 40e6 || rep.MaxCycles != 10e6 {
		t.Errorf("cycle accounting wrong: %+v", rep)
	}
}

func TestClusterDeadlineMissExtendsWall(t *testing.T) {
	c := testCluster(2)
	c.SetOPP(0) // 200 MHz
	// 40 Mcycles at 200 MHz = 200 ms >> 40 ms period.
	rep := c.Execute([]uint64{40e6}, 0, 0.040)
	if rep.SlackS >= 0 {
		t.Fatalf("slack = %v, want negative (deadline miss)", rep.SlackS)
	}
	if rep.WallTimeS != rep.ExecTimeS {
		t.Fatalf("wall %v != exec %v on a miss", rep.WallTimeS, rep.ExecTimeS)
	}
}

func TestClusterImbalancedThreads(t *testing.T) {
	c := testCluster(3)
	c.SetOPP(8) // 1 GHz
	rep := c.Execute([]uint64{20e6, 10e6, 5e6, 0}, 0, 0.050)
	if math.Abs(rep.ExecTimeS-0.020) > 1e-9 {
		t.Errorf("exec time follows slowest thread: %v, want 0.020", rep.ExecTimeS)
	}
	if rep.ActiveCores != 3 {
		t.Errorf("ActiveCores = %d, want 3", rep.ActiveCores)
	}
}

func TestClusterEnergyHigherAtHigherOPPSameWork(t *testing.T) {
	// Same work within the same period must cost more energy at a higher
	// voltage-frequency point (race-to-idle does not pay on this ladder).
	cycles := []uint64{30e6, 30e6, 30e6, 30e6}
	run := func(idx int) float64 {
		c := testCluster(4)
		c.SetOPP(idx)
		// settle thermal state to make runs comparable
		rep := c.Execute(cycles, 0, 0.060)
		return rep.EnergyJ
	}
	eLow := run(8)   // 1.0 GHz: 30 ms exec in 60 ms period
	eHigh := run(18) // 2.0 GHz: 15 ms exec, long idle tail
	if !(eHigh > eLow) {
		t.Fatalf("high-OPP energy %v not above low-OPP energy %v", eHigh, eLow)
	}
}

func TestClusterOverheadSerializes(t *testing.T) {
	c := testCluster(5)
	c.SetOPP(8)
	base := c.Execute([]uint64{10e6}, 0, 0).ExecTimeS
	c2 := testCluster(5)
	c2.SetOPP(8)
	withOvh := c2.Execute([]uint64{10e6}, 0.002, 0).ExecTimeS
	if math.Abs((withOvh-base)-0.002) > 1e-9 {
		t.Fatalf("overhead not serialised: %v vs %v", withOvh, base)
	}
}

func TestClusterPMUsAdvance(t *testing.T) {
	c := testCluster(6)
	c.SetOPP(8)
	before := make([]PMUSample, 4)
	for i := range before {
		before[i] = c.PMU(i).Read()
	}
	c.Execute([]uint64{10e6, 20e6, 0, 0}, 0.001, 0.050)
	d0 := c.PMU(0).Read().Delta(before[0])
	d1 := c.PMU(1).Read().Delta(before[1])
	d2 := c.PMU(2).Read().Delta(before[2])
	// Core 0 also executes the 1 ms overhead at 1 GHz = 1e6 extra cycles.
	if d0.Cycles != 10e6+1e6 {
		t.Errorf("core0 cycles = %d, want 11e6 (incl. overhead)", d0.Cycles)
	}
	if d1.Cycles != 20e6 {
		t.Errorf("core1 cycles = %d, want 20e6", d1.Cycles)
	}
	if d2.Cycles != 0 {
		t.Errorf("core2 cycles = %d, want 0", d2.Cycles)
	}
	// Wall time identical for all cores.
	if d0.RefNS != d1.RefNS || d1.RefNS != d2.RefNS {
		t.Errorf("wall time differs across PMUs: %d %d %d", d0.RefNS, d1.RefNS, d2.RefNS)
	}
}

func TestClusterSensorAgreesWithModel(t *testing.T) {
	c := testCluster(7)
	c.SetOPP(12)
	rep := c.Execute([]uint64{25e6, 25e6, 25e6, 25e6}, 0, 0.040)
	if rep.AvgPowerW <= 0 {
		t.Fatal("no average power")
	}
	relErr := math.Abs(rep.SensorPowerW-rep.AvgPowerW) / rep.AvgPowerW
	if relErr > 0.10 {
		t.Fatalf("sensor %.3f W vs model %.3f W: rel err %.1f%%",
			rep.SensorPowerW, rep.AvgPowerW, relErr*100)
	}
}

func TestClusterTemperatureRisesUnderLoad(t *testing.T) {
	c := testCluster(8)
	c.SetOPP(18)
	t0 := c.TempC()
	for i := 0; i < 200; i++ {
		c.Execute([]uint64{60e6, 60e6, 60e6, 60e6}, 0, 0.033)
	}
	if !(c.TempC() > t0+10) {
		t.Fatalf("temperature barely moved: %v -> %v", t0, c.TempC())
	}
}

func TestClusterCumulativeAccounting(t *testing.T) {
	c := testCluster(9)
	c.SetOPP(8)
	var sumE, sumT float64
	for i := 0; i < 10; i++ {
		rep := c.Execute([]uint64{10e6, 10e6}, 0, 0.040)
		sumE += rep.EnergyJ
		sumT += rep.WallTimeS
	}
	if math.Abs(c.TotalEnergyJ()-sumE) > 1e-9 {
		t.Errorf("TotalEnergyJ %v != sum of reports %v", c.TotalEnergyJ(), sumE)
	}
	if math.Abs(c.TotalTimeS()-sumT) > 1e-9 {
		t.Errorf("TotalTimeS %v != sum %v", c.TotalTimeS(), sumT)
	}
	c.Reset()
	if c.TotalEnergyJ() != 0 || c.TotalTimeS() != 0 || c.CurrentIdx() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestClusterTooManyThreadsPanics(t *testing.T) {
	c := testCluster(10)
	defer func() {
		if recover() == nil {
			t.Fatal("5 demands on 4 cores must panic")
		}
	}()
	c.Execute([]uint64{1, 1, 1, 1, 1}, 0, 0)
}

func TestMinEnergyIdxMeetsDeadline(t *testing.T) {
	c := testCluster(11)
	// 30 Mcycles in 40 ms needs >= 750 MHz -> index of 800 MHz.
	idx := c.MinEnergyIdx([]uint64{30e6, 30e6, 30e6, 30e6}, 0.040)
	opp := c.Table()[idx]
	if exec := 30e6 / opp.FreqHz(); exec > 0.040 {
		t.Fatalf("oracle choice %v misses the deadline (%.1f ms)", opp, exec*1e3)
	}
	// It must not wildly overshoot either: on this near-affine power curve
	// the energy-optimal point sits close to the deadline.
	if opp.FreqMHz > 1200 {
		t.Fatalf("oracle picked %v: excessive for 750 MHz requirement", opp)
	}
}

func TestMinEnergyIdxImpossibleDeadline(t *testing.T) {
	c := testCluster(12)
	// 200 Mcycles in 40 ms needs 5 GHz: impossible, expect fastest OPP.
	idx := c.MinEnergyIdx([]uint64{200e6}, 0.040)
	if idx != c.Table().MaxIdx() {
		t.Fatalf("impossible deadline chose idx %d, want max", idx)
	}
}

func TestSoCComposition(t *testing.T) {
	soc := DefaultXU3(1)
	if soc.NumClusters() != 2 {
		t.Fatalf("XU3 has %d clusters, want 2", soc.NumClusters())
	}
	if soc.Big().Name() != "A15" {
		t.Fatalf("Big() = %q, want A15", soc.Big().Name())
	}
	if _, err := soc.ClusterByName("A7"); err != nil {
		t.Fatal(err)
	}
	if _, err := soc.ClusterByName("M4"); err == nil {
		t.Fatal("ClusterByName(M4) must error")
	}
	soc.Big().SetOPP(8)
	soc.Big().Execute([]uint64{10e6}, 0, 0.040)
	if soc.TotalEnergyJ() <= 0 {
		t.Fatal("SoC energy accounting broken")
	}
	soc.Reset()
	if soc.TotalEnergyJ() != 0 {
		t.Fatal("SoC reset broken")
	}
}

// Property: energy conservation — report energy equals avg power times wall
// time, slack+exec == period when no miss, and all report fields are finite
// and non-negative where applicable.
func TestClusterReportInvariantsProperty(t *testing.T) {
	f := func(rawIdx uint8, rawCy [4]uint32, rawOvh uint16) bool {
		c := testCluster(99)
		c.SetOPP(int(rawIdx) % 19)
		cycles := make([]uint64, 4)
		for i, cy := range rawCy {
			cycles[i] = uint64(cy % 50e6)
		}
		ovh := float64(rawOvh%1000) * 1e-6
		rep := c.Execute(cycles, ovh, 0.040)
		if rep.EnergyJ < 0 || math.IsNaN(rep.EnergyJ) {
			return false
		}
		if rep.WallTimeS < rep.ExecTimeS-1e-12 {
			return false
		}
		if math.Abs(rep.AvgPowerW*rep.WallTimeS-rep.EnergyJ) > 1e-9 {
			return false
		}
		if rep.SlackS > 0 && math.Abs(rep.ExecTimeS+rep.SlackS-0.040) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
