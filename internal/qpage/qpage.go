// Package qpage implements paged numeric value tables with copy-on-write
// sharing through a content-interned page pool.
//
// The serving tier holds one Q-table (or one per core) per live session.
// The tables are identical by construction across sessions — every
// cold-started session begins from the same uniform InitQ table, and every
// session warm-started from a given registry manifest begins from the same
// trained values — yet each session used to carry its own full deep copy
// (~7.6 KB per 25×19 table). This package splits a table into fixed-size
// pages and keeps one refcounted copy of each distinct page in a
// process-wide pool keyed by content hash (SHA-256, consistent with the
// registry's content addressing). A session's table is then a slice of
// page pointers; the first write to a shared page copies just that page
// (a "COW fault") and the session owns the copy from there on.
//
// Concurrency contract: a pooled page is immutable after publish — writers
// always fault it out first — so concurrent readers never need a lock. The
// pool itself is sharded like sessionstore so that faults and releases
// from many sessions do not serialise on one mutex; steady-state decides
// on already-owned pages touch the pool not at all.
package qpage

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// PageRows is the number of table rows per page. One row of a 19-action
// table is a ~300 B page — the fault quantum. Fault granularity is the
// dominant per-session memory cost under churn: a short-lived session
// visits two or three states before it is reaped, and at four rows per
// page each of those visits dragged in three neighbouring rows of dead
// weight (~3.3 KB/session measured at soak scale; ~1 KB at one row).
// The price is more page pointers per table (25 instead of 7 for the
// paper-sized table) and proportionally more refcount traffic on
// clone/release — both off the decide hot path.
const PageRows = 1

// Page holds PageRows rows of values and visit counts, always allocated
// full-size (the last page of a table leaves its tail rows at the fill
// value). pooled/key/refs are pool bookkeeping: refs is guarded by the
// owning shard's mutex; pooled and key are written once before the page is
// published and never change afterwards.
type Page struct {
	Q []float64
	// V holds visit counts as int32: 2^31 visits per state–action pair
	// is beyond any session lifetime, and the narrower lane halves the
	// second-largest slab of per-session COW memory. The checkpoint
	// surface (FlatV/FromFlat) stays []int, so nothing serialised changes.
	V []int32

	pooled bool
	key    [32]byte
	refs   int64
}

// Table is a rows×cols value table stored as page references. Pages are
// either owned (private, freely mutable) or pooled (shared, immutable —
// MutRow faults them out before the first write).
type Table struct {
	rows, cols int
	pages      []*Page
	pool       *Pool // pool the pooled pages belong to; nil if never interned
}

const poolShards = 64

type poolShard struct {
	mu    sync.Mutex
	m     map[[32]byte]*Page
	pages int64
	bytes int64
	// Pad shards apart so refcount traffic from unrelated sessions does
	// not false-share a cache line, mirroring sessionstore.
	_ [24]byte
}

// Pool is a sharded content-addressed intern pool of immutable pages.
// A page's first intern publishes it; later interns of identical content
// return the published page with its refcount bumped. Releasing the last
// reference removes the page, so a drained fleet leaves the pool empty.
type Pool struct {
	shards [poolShards]poolShard
	faults atomic.Int64
}

// NewPool creates an empty pool.
func NewPool() *Pool {
	p := new(Pool)
	for i := range p.shards {
		p.shards[i].m = make(map[[32]byte]*Page)
	}
	return p
}

// Stats reports the pool's current distinct page count, the bytes those
// shared pages hold, and the cumulative count of COW faults taken against
// it. Pages and bytes fall back to zero as sessions release; faults only
// grow.
func (p *Pool) Stats() (pages, bytes, faults int64) {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		pages += sh.pages
		bytes += sh.bytes
		sh.mu.Unlock()
	}
	return pages, bytes, p.faults.Load()
}

func (p *Pool) shardOf(key [32]byte) *poolShard { return &p.shards[key[0]&(poolShards-1)] }

// contentKey hashes a page's exact content: lengths then raw float64 bits
// then visit counts, all little-endian. Bit-exact equality is the intern
// criterion (−0 and 0 intern separately; NaNs never reach a table — the
// checkpoint loaders reject them).
func contentKey(pg *Page) [32]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(pg.Q)))
	h.Write(buf[:])
	for _, q := range pg.Q {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(q))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(pg.V)))
	h.Write(buf[:])
	for _, v := range pg.V {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

func pageBytes(pg *Page) int64 { return int64(len(pg.Q))*8 + int64(len(pg.V))*4 }

// intern publishes an owned page (or finds an identical one already
// published) and returns the pooled page with one reference held.
func (p *Pool) intern(pg *Page) *Page {
	key := contentKey(pg)
	sh := p.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if got, ok := sh.m[key]; ok {
		got.refs++
		return got
	}
	pg.pooled = true
	pg.key = key
	pg.refs = 1
	sh.m[key] = pg
	sh.pages++
	sh.bytes += pageBytes(pg)
	return pg
}

// acquire takes one more reference on an already-pooled page.
func (p *Pool) acquire(pg *Page) {
	sh := p.shardOf(pg.key)
	sh.mu.Lock()
	pg.refs++
	sh.mu.Unlock()
}

// release drops one reference; the last reference removes the page from
// the pool. The map entry is deleted rather than kept as a tombstone: the
// pool holds distinct *content*, so its population is orders of magnitude
// below the session count and map growth is not a storm concern the way
// sessionstore's was.
func (p *Pool) release(pg *Page) {
	sh := p.shardOf(pg.key)
	sh.mu.Lock()
	pg.refs--
	if pg.refs == 0 {
		delete(sh.m, pg.key)
		sh.pages--
		sh.bytes -= pageBytes(pg)
	} else if pg.refs < 0 {
		sh.mu.Unlock()
		panic("qpage: page released more times than acquired")
	}
	sh.mu.Unlock()
}

func numPages(rows int) int { return (rows + PageRows - 1) / PageRows }

// New creates a table of owned pages with every value at fill and every
// visit count at zero.
func New(rows, cols int, fill float64) *Table {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("qpage: Table(%d rows, %d cols)", rows, cols))
	}
	t := &Table{rows: rows, cols: cols, pages: make([]*Page, numPages(rows))}
	for i := range t.pages {
		t.pages[i] = newPage(cols, fill)
	}
	return t
}

func newPage(cols int, fill float64) *Page {
	pg := &Page{Q: make([]float64, PageRows*cols), V: make([]int32, PageRows*cols)}
	if fill != 0 {
		for i := range pg.Q {
			pg.Q[i] = fill
		}
	}
	return pg
}

// NewShared creates a table whose pages are all references to one pooled
// uniform page — the cold-start fast path. A fleet of a million
// just-created sessions on the same platform shares a single ~230 B page
// per distinct (cols, fill) pair.
func (p *Pool) NewShared(rows, cols int, fill float64) *Table {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("qpage: Table(%d rows, %d cols)", rows, cols))
	}
	t := &Table{rows: rows, cols: cols, pool: p, pages: make([]*Page, numPages(rows))}
	pg := p.intern(newPage(cols, fill))
	t.pages[0] = pg
	for i := 1; i < len(t.pages); i++ {
		p.acquire(pg)
		t.pages[i] = pg
	}
	return t
}

// FromFlat creates a table of owned pages from flat row-major value and
// visit slices, copying both.
func FromFlat(rows, cols int, q []float64, v []int) *Table {
	if len(q) != rows*cols || len(v) != rows*cols {
		panic(fmt.Sprintf("qpage: FromFlat %dx%d given %d values, %d visits", rows, cols, len(q), len(v)))
	}
	t := New(rows, cols, 0)
	for r := 0; r < rows; r++ {
		pg := t.pages[r/PageRows]
		off := (r % PageRows) * cols
		copy(pg.Q[off:off+cols], q[r*cols:(r+1)*cols])
		for c, vc := range v[r*cols : (r+1)*cols] {
			pg.V[off+c] = int32(vc)
		}
	}
	return t
}

// Rows returns the table's row count.
func (t *Table) Rows() int { return t.rows }

// Cols returns the table's column count.
func (t *Table) Cols() int { return t.cols }

// Pool returns the pool this table's pooled pages belong to (nil if the
// table was never interned or cloned from a pooled table).
func (t *Table) Pool() *Pool { return t.pool }

// Row returns a read-only view of one row's values. The view may alias a
// shared page: callers must not write through it (use MutRow).
func (t *Table) Row(r int) []float64 {
	pg := t.pages[r/PageRows]
	off := (r % PageRows) * t.cols
	return pg.Q[off : off+t.cols : off+t.cols]
}

// VRow returns a read-only view of one row's visit counts.
func (t *Table) VRow(r int) []int32 {
	pg := t.pages[r/PageRows]
	off := (r % PageRows) * t.cols
	return pg.V[off : off+t.cols : off+t.cols]
}

// MutRow returns writable views of one row's values and visit counts,
// faulting the containing page out of the pool first if it is shared.
func (t *Table) MutRow(r int) ([]float64, []int32) {
	pi := r / PageRows
	pg := t.pages[pi]
	if pg.pooled {
		pg = t.fault(pi, pg)
	}
	off := (r % PageRows) * t.cols
	return pg.Q[off : off+t.cols : off+t.cols], pg.V[off : off+t.cols : off+t.cols]
}

// fault replaces a shared page with a private copy — the copy-on-write
// step. The shared page's values remain visible to every other holder.
func (t *Table) fault(pi int, shared *Page) *Page {
	own := &Page{
		Q: append([]float64(nil), shared.Q...),
		V: append([]int32(nil), shared.V...),
	}
	t.pages[pi] = own
	t.pool.release(shared)
	t.pool.faults.Add(1)
	return own
}

// Clone returns a table sharing every pooled page (refcounts bumped) and
// deep-copying every owned one. Cloning an interned base is how N sessions
// come to share one warm-start table.
func (t *Table) Clone() *Table {
	nt := &Table{rows: t.rows, cols: t.cols, pool: t.pool, pages: make([]*Page, len(t.pages))}
	for i, pg := range t.pages {
		if pg.pooled {
			t.pool.acquire(pg)
			nt.pages[i] = pg
		} else {
			nt.pages[i] = &Page{
				Q: append([]float64(nil), pg.Q...),
				V: append([]int32(nil), pg.V...),
			}
		}
	}
	return nt
}

// Intern publishes every owned page of t into pool (deduplicating against
// pages already there) and leaves t referencing the pooled copies. It is
// idempotent; interning one table into two different pools is a
// programming error.
func (t *Table) Intern(pool *Pool) {
	if t.pool != nil && t.pool != pool {
		panic("qpage: table already interned into a different pool")
	}
	t.pool = pool
	for i, pg := range t.pages {
		if !pg.pooled {
			t.pages[i] = pool.intern(pg)
		}
	}
}

// Release returns every pooled page reference to the pool and poisons the
// table (nil page pointers), so a use-after-release panics loudly instead
// of silently reading freed shared state. Releasing an unpooled table just
// poisons it.
func (t *Table) Release() {
	for i, pg := range t.pages {
		if pg != nil && pg.pooled {
			t.pool.release(pg)
		}
		t.pages[i] = nil
	}
}

// FlatQ materialises the values into one flat row-major slice — the
// checkpoint serialisation path, where the wire format must stay exactly
// the pre-paging flat layout.
func (t *Table) FlatQ() []float64 {
	out := make([]float64, t.rows*t.cols)
	for r := 0; r < t.rows; r++ {
		copy(out[r*t.cols:(r+1)*t.cols], t.Row(r))
	}
	return out
}

// FlatV materialises the visit counts into one flat row-major slice.
func (t *Table) FlatV() []int {
	out := make([]int, t.rows*t.cols)
	for r := 0; r < t.rows; r++ {
		row := t.VRow(r)
		for c, vc := range row {
			out[r*t.cols+c] = int(vc)
		}
	}
	return out
}

// SharedPages counts how many of t's page references are pooled (shared),
// for tests and diagnostics.
func (t *Table) SharedPages() int {
	n := 0
	for _, pg := range t.pages {
		if pg != nil && pg.pooled {
			n++
		}
	}
	return n
}
