package core

import (
	"bytes"
	"strings"
	"testing"

	"qgov/internal/governor"
)

// feedEpoch pushes one steady observation through the RTM.
func feedEpoch(r *RTM, epoch int, cycles uint64) int {
	return r.Decide(governor.Observation{
		Epoch:     epoch,
		Cycles:    []uint64{cycles, cycles, cycles, cycles},
		Util:      []float64{0.8, 0.8, 0.8, 0.8},
		ExecTimeS: 0.032,
		PeriodS:   0.040,
		WallTimeS: 0.040,
		PowerW:    2,
		TempC:     50,
		OPPIdx:    5,
	})
}

// An uncalibrated RTM auto-ranges its workload state space online; a
// checkpoint must carry that trained range, and a warm-started instance
// must keep it across Reset instead of letting the first observation
// re-prime it — re-priming would re-quantise every restored Q-table row
// against a different range than it was trained on.
func TestWarmStartPreservesAutoRangedStateSpace(t *testing.T) {
	r := New(DefaultConfig()) // no Calibrate: auto-ranging
	r.Reset(rtmCtx(3))
	r.Decide(governor.Observation{Epoch: -1})
	for i := 0; i < 60; i++ {
		feedEpoch(r, i, uint64(28e6+1e5*float64(i%7)))
	}
	lo, hi := r.space.CCMin, r.space.CCMax
	if !(hi > lo) || lo <= 0 {
		t.Fatalf("setup: auto-range did not prime (range [%v, %v])", lo, hi)
	}

	var buf bytes.Buffer
	if err := r.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := New(DefaultConfig())
	if err := r2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	r2.Reset(rtmCtx(3))
	if r2.space.CCMin != lo || r2.space.CCMax != hi {
		t.Fatalf("restored range [%v, %v], want [%v, %v]", r2.space.CCMin, r2.space.CCMax, lo, hi)
	}

	// An in-range observation must not move the restored range; before
	// the ccSeen restore it re-primed to [0.5cc, 1.5cc].
	r2.Decide(governor.Observation{Epoch: -1})
	feedEpoch(r2, 0, uint64((lo+hi)/2))
	if r2.space.CCMin != lo || r2.space.CCMax != hi {
		t.Errorf("first observation re-primed the restored range to [%v, %v], want [%v, %v]",
			r2.space.CCMin, r2.space.CCMax, lo, hi)
	}
}

// LoadState must reject checkpoints that disagree with the governor's
// configuration before they can reach a table.
func TestRTMLoadStateValidation(t *testing.T) {
	r := New(DefaultConfig())
	r.Reset(rtmCtx(1))
	r.Decide(governor.Observation{Epoch: -1})
	for i := 0; i < 30; i++ {
		feedEpoch(r, i, 30e6)
	}
	var buf bytes.Buffer
	if err := r.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]struct {
		cfg   func() Config
		state string
	}{
		"mode mismatch": {
			cfg:   func() Config { c := DefaultConfig(); c.Mode = PerCoreTables; return c },
			state: good,
		},
		"levels mismatch": {
			cfg:   func() Config { c := DefaultConfig(); c.Levels = 4; return c },
			state: good,
		},
		"wrong kind": {
			cfg:   DefaultConfig,
			state: strings.Replace(good, `"kind":"rtm"`, `"kind":"mldtm"`, 1),
		},
		"bad epsilon": {
			cfg:   DefaultConfig,
			state: strings.Replace(good, `"epsilon":`, `"epsilon":7,"was":`, 1),
		},
	}
	for name, tc := range cases {
		g := New(tc.cfg())
		if err := g.LoadState(strings.NewReader(tc.state)); err == nil {
			t.Errorf("%s: LoadState accepted", name)
		}
	}
}
