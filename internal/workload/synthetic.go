package workload

import (
	"math"
	"math/rand"
)

// Synthetic traces with exactly known structure. The predictor and
// governor unit tests use these: when the input is a step or a ramp the
// correct EWMA/Q-learning behaviour is analytically checkable, which is not
// true of the statistical application models.

// Constant returns a trace with identical demand in every frame.
func Constant(name string, fps float64, numFrames, threads int, perThread uint64) Trace {
	frames := make([]Frame, numFrames)
	for i := range frames {
		cy := make([]uint64, threads)
		for j := range cy {
			cy[j] = perThread
		}
		frames[i] = Frame{Cycles: cy}
	}
	return Trace{Name: name, RefTimeS: 1 / fps, Frames: frames}
}

// Step returns a trace that runs at lo cycles per thread and jumps to hi at
// frame stepAt.
func Step(name string, fps float64, numFrames, threads, stepAt int, lo, hi uint64) Trace {
	frames := make([]Frame, numFrames)
	for i := range frames {
		v := lo
		if i >= stepAt {
			v = hi
		}
		cy := make([]uint64, threads)
		for j := range cy {
			cy[j] = v
		}
		frames[i] = Frame{Cycles: cy}
	}
	return Trace{Name: name, RefTimeS: 1 / fps, Frames: frames}
}

// Ramp returns a trace whose per-thread demand rises linearly from lo to hi
// across the trace.
func Ramp(name string, fps float64, numFrames, threads int, lo, hi uint64) Trace {
	frames := make([]Frame, numFrames)
	for i := range frames {
		frac := 0.0
		if numFrames > 1 {
			frac = float64(i) / float64(numFrames-1)
		}
		v := uint64(float64(lo) + frac*float64(hi-lo))
		cy := make([]uint64, threads)
		for j := range cy {
			cy[j] = v
		}
		frames[i] = Frame{Cycles: cy}
	}
	return Trace{Name: name, RefTimeS: 1 / fps, Frames: frames}
}

// Sine returns a trace oscillating around mean with the given amplitude and
// period in frames.
func Sine(name string, fps float64, numFrames, threads, period int, mean, amp float64) Trace {
	frames := make([]Frame, numFrames)
	for i := range frames {
		v := mean + amp*math.Sin(2*math.Pi*float64(i)/float64(period))
		if v < 1 {
			v = 1
		}
		cy := make([]uint64, threads)
		for j := range cy {
			cy[j] = uint64(v)
		}
		frames[i] = Frame{Cycles: cy}
	}
	return Trace{Name: name, RefTimeS: 1 / fps, Frames: frames}
}

// Noisy returns a trace with i.i.d. lognormal demand around mean.
func Noisy(name string, fps float64, numFrames, threads int, mean, sigma float64, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]Frame, numFrames)
	for i := range frames {
		cy := make([]uint64, threads)
		for j := range cy {
			cy[j] = uint64(mean * logNormal(rng, sigma))
		}
		frames[i] = Frame{Cycles: cy}
	}
	return Trace{Name: name, RefTimeS: 1 / fps, Frames: frames}
}
