package sim_test

import (
	"reflect"
	"runtime"
	"testing"

	"qgov/internal/scenario"
	"qgov/internal/sim"
)

// The engine's determinism contract: a (scenario, seed) pair fully
// determines the Result aggregates. Concurrency — RunAll, Stream, the
// GOMAXPROCS setting — may reorder wall-clock execution but must never
// change an outcome byte. These tests lock that contract against the
// streaming engine and the allocation-reuse refactors, which are exactly
// the kinds of change that break it silently (shared scratch state,
// order-dependent floating point, rng sharing).

// determinismJobs builds the job set: learning and non-learning governors,
// a stochastic and a near-constant workload.
func determinismJobs(t *testing.T, frames int) []sim.Job {
	t.Helper()
	names := []string{
		"rtm/mpeg4-30fps/a15",
		"updrl/mpeg4-30fps/a15",
		"ondemand/fft-32fps/a15",
		"mldtm/h264-15fps/a15",
		"oracle/mpeg4-30fps/a15-membound",
		"rtm/fft-32fps/a7",
	}
	jobs := make([]sim.Job, 0, len(names))
	for _, n := range names {
		sc, err := scenario.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		j, err := sc.Job(17, frames)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

func collectStream(jobs []sim.Job, workers int) []*sim.Result {
	out := make([]*sim.Result, len(jobs))
	for ir := range sim.Stream(sim.JobSource(jobs), workers) {
		out[ir.Index] = ir.Result
	}
	return out
}

func TestSameSeedIdenticalAcrossExecutionModes(t *testing.T) {
	const frames = 220

	// Reference: strictly serial execution.
	serial := make([]*sim.Result, 0)
	for _, j := range determinismJobs(t, frames) {
		serial = append(serial, sim.Run(j.Build()))
	}

	modes := map[string]func() []*sim.Result{
		"RunAll":   func() []*sim.Result { return sim.RunAll(determinismJobs(t, frames)) },
		"Stream-1": func() []*sim.Result { return collectStream(determinismJobs(t, frames), 1) },
		"Stream-8": func() []*sim.Result { return collectStream(determinismJobs(t, frames), 8) },
		"Session": func() []*sim.Result {
			// The step-driven path: the caller owns the loop.
			out := make([]*sim.Result, 0)
			for _, j := range determinismJobs(t, frames) {
				s := sim.NewSession(j.Build())
				for !s.Done() {
					s.Step(s.Decide())
				}
				out = append(out, s.Result())
			}
			return out
		},
	}
	for _, procs := range []int{1, 2, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for mode, f := range modes {
			got := f()
			for i, r := range got {
				if !reflect.DeepEqual(serial[i], r) {
					t.Errorf("GOMAXPROCS=%d %s: job %d diverged from serial run\nserial: %+v\n%s: %+v",
						procs, mode, i, serial[i], mode, r)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// Repeating the whole streamed sweep must reproduce itself exactly — the
// repeat-run form of the contract, catching state leaks between jobs
// (pooled buffers, shared rngs) that a serial-vs-parallel comparison with
// fresh processes would miss.
func TestStreamRepeatedSweepReproduces(t *testing.T) {
	a := collectStream(determinismJobs(t, 150), 4)
	b := collectStream(determinismJobs(t, 150), 2)
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("job %d not reproducible across worker counts:\n%+v\nvs\n%+v", i, a[i], b[i])
		}
	}
}
