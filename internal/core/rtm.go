package core

import (
	"fmt"
	"qgov/internal/governor"
	"qgov/internal/predictor"
	"qgov/internal/xrand"
)

// Mode selects the many-core learning organisation of Section II-D.
type Mode int

const (
	// SharedTable is the paper's formulation: one Q-table shared by all
	// cores, updated by one core per decision epoch in round-robin order.
	// Every core's experience trains the same table, so learning converges
	// in roughly half the epochs of independent learners (Table III).
	SharedTable Mode = iota
	// PerCoreTables gives every core an independent Q-table under the same
	// one-update-per-epoch budget: control rotates round-robin and each
	// epoch's pay-off trains only its controller's table. This is the
	// organisation of conventional multi-core learners; the A4 ablation
	// isolates the shared-table benefit against it.
	PerCoreTables
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case SharedTable:
		return "shared"
	case PerCoreTables:
		return "per-core"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterises the RTM. DefaultConfig returns the values used in
// the paper's experiments; zero-value fields in a caller-built Config are
// not defaulted — construct via DefaultConfig and override.
type Config struct {
	Levels int     // N discretisation levels (paper: 5)
	Alpha  float64 // initial Q-learning rate α (Eq. 3)
	// AlphaDecayK decays the learning rate per state-action visit count v
	// as α·K/(K+v) — the Robbins-Monro schedule that lets Q-values (and
	// with them the greedy policy) actually converge under stochastic
	// rewards. 0 keeps α constant.
	AlphaDecayK float64
	Discount    float64 // future-payoff discount γ (Eq. 3)
	EWMAGamma   float64 // workload smoothing factor γ (Eq. 1; paper: 0.6)
	SlackWindow int     // D of Eq. 5; 0 averages from the application start
	InitQ       float64 // initial Q-value (see QTable)
	OverheadS   float64 // per-decision processing cost charged as T_OVH

	Reward  *Reward
	Policy  ExplorationPolicy
	Epsilon *EpsilonSchedule

	Mode Mode
	// OnPolicy switches the Bellman update to SARSA: the bootstrap uses
	// the action actually selected for the next epoch instead of the
	// greedy maximum. Supported in SharedTable mode (the ablation's
	// subject); ignored under PerCoreTables.
	OnPolicy bool
	// GreedyMargin is the hysteresis dead-band of the greedy policy: a
	// challenger action must beat the incumbent's Q-value by this much to
	// take over (see QTable.BestActionSticky).
	GreedyMargin float64
	// UseNormalizedState switches the workload state dimension to the
	// Eq. 7 normalised per-core share (range [0, 2]) instead of the
	// absolute calibrated cycle count.
	UseNormalizedState bool
	// StableEpochs configures convergence detection.
	StableEpochs int
	// Transfer optionally seeds the Q-table from a previous run
	// (learning transfer, ref [12]). Its dimensions must match.
	Transfer *QTable
}

// DefaultConfig returns the experiment configuration: N = 5, α = 0.5,
// γ_discount = 0.9, EWMA γ = 0.6, EPD exploration, shared table.
func DefaultConfig() Config {
	return Config{
		Levels:       5,
		Alpha:        0.40,
		AlphaDecayK:  25,
		Discount:     0.90,
		EWMAGamma:    0.6,
		SlackWindow:  15,
		InitQ:        -1,
		OverheadS:    120e-6,
		Reward:       NewReward(),
		Policy:       NewExponentialPolicy(),
		Epsilon:      NewEpsilonSchedule(),
		Mode:         SharedTable,
		GreedyMargin: 0.12,
		StableEpochs: 25,
	}
}

// RTM is the paper's run-time manager: a Q-learning power governor that
// predicts the next epoch's workload (EWMA, Eq. 1), classifies it with the
// current average slack ratio into a discrete state (Section II-A),
// selects a V-F action (EPD exploration, Eq. 2, under an ε schedule,
// Eq. 6; greedy exploitation otherwise) and updates the Q-table with the
// slack-derived pay-off (Eqs. 3–5). It implements governor.Governor.
type RTM struct {
	cfg   Config
	space *StateSpace

	ctx governor.Context
	// rng is built lazily on the first ε draw: even at xrand's 8-byte
	// state a freshly created session that has never decided should not
	// pay the allocation. Laziness is stream-identical — no draw happens
	// between Reset and the first selectAction either way.
	rng        *xrand.Rand
	tables     []*QTable // one (shared) or NumCores (per-core)
	greedy     [][]int   // sticky greedy choice per table, per state
	preds      []predictor.EWMA
	slack      *SlackTracker
	tracker    *governor.ConvergenceTracker
	normFreq   []float64 // per-action normalised frequency (Eq. 2 axis)
	prevState  []int     // per table
	prevAction int
	lastCtrl   int // controller of the epoch in flight (per-core mode)
	epoch      int

	// Per-epoch scratch, reused so Decide allocates nothing in steady
	// state (the explHist append amortises to zero).
	fpScratch   []int
	predScratch []float64

	explorations  int
	exploredPairs []uint64 // distinct (table, state, action) experiments, one bit each
	explHist      []int32  // cumulative explorations after each epoch
	calibrated    bool
	ccSeen        bool // auto-ranging primed

	// restored is the staged Checkpointer state; Reset applies it (see
	// LoadState in checkpoint.go).
	restored *rtmCheckpoint
}

// New constructs an RTM from the configuration.
func New(cfg Config) *RTM {
	if cfg.Levels < 2 {
		panic(fmt.Sprintf("core: RTM needs at least 2 levels, got %d", cfg.Levels))
	}
	if cfg.Reward == nil || cfg.Policy == nil || cfg.Epsilon == nil {
		panic("core: RTM config missing Reward/Policy/Epsilon (use DefaultConfig)")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 || cfg.Discount < 0 || cfg.Discount >= 1 {
		panic(fmt.Sprintf("core: RTM alpha=%v discount=%v out of range", cfg.Alpha, cfg.Discount))
	}
	return &RTM{cfg: cfg, space: NewStateSpace(cfg.Levels)}
}

// Name implements governor.Governor.
func (r *RTM) Name() string {
	if r.cfg.Policy.Name() == "upd" {
		return "updrl"
	}
	if r.cfg.Mode == PerCoreTables {
		return "rtm-percore"
	}
	if r.cfg.OnPolicy {
		return "rtm-sarsa"
	}
	return "rtm"
}

// DecisionOverheadS implements governor.OverheadModeler.
func (r *RTM) DecisionOverheadS() float64 { return r.cfg.OverheadS }

// Explorations implements governor.LearningStats. Following the
// visit-based exploration accounting of Shen et al. (ref [21], the
// Table II baseline), it counts *distinct state-action experiments*: the
// number of (state, action) pairs the policy has tried exploratorily.
// Re-trying a pair refines its Q estimate but is not a new exploration.
// This is the quantity the EPD/UPD comparison turns on — uniform selection
// spreads trials across the whole 19-point ladder in every state, while
// the slack-directed EPD concentrates on the candidates that can matter.
func (r *RTM) Explorations() int { return r.explorations }

// ExplorationsAt implements governor.ExplorationCurve: the cumulative
// exploration count after the given epoch completed.
func (r *RTM) ExplorationsAt(epoch int) int {
	if epoch < 0 || len(r.explHist) == 0 {
		return 0
	}
	if epoch >= len(r.explHist) {
		return r.explorations
	}
	return int(r.explHist[epoch])
}

// ConvergedAtEpoch implements governor.LearningStats.
func (r *RTM) ConvergedAtEpoch() int { return r.tracker.ConvergedAt() }

// Epsilon implements governor.ExplorationStats: the current exploration
// probability.
func (r *RTM) Epsilon() float64 { return r.cfg.Epsilon.Epsilon() }

// VisitTotal implements governor.ExplorationStats: total state–action
// visits across the value tables.
func (r *RTM) VisitTotal() int {
	n := 0
	for _, t := range r.tables {
		n += t.VisitTotal()
	}
	return n
}

// ConvergedFraction implements governor.ExplorationStats: the fraction
// of states whose greedy action has held for the convergence window.
func (r *RTM) ConvergedFraction() float64 { return r.tracker.StableFraction() }

// SlackL returns the current average slack ratio L (for tracing).
func (r *RTM) SlackL() float64 { return r.slack.L() }

// PredictedCC returns the current per-core workload forecasts (for
// tracing and the Fig. 3 series).
func (r *RTM) PredictedCC() []float64 {
	out := make([]float64, len(r.preds))
	for i := range r.preds {
		out[i] = r.preds[i].Predict()
	}
	return out
}

// predictInto fills the scratch buffer with the per-core forecasts — the
// allocation-free PredictedCC the decision path uses.
func (r *RTM) predictInto(dst []float64) []float64 {
	dst = dst[:len(r.preds)]
	for i := range r.preds {
		dst[i] = r.preds[i].Predict()
	}
	return dst
}

// Table returns the shared Q-table (or core 0's in per-core mode), for
// learning transfer and inspection.
func (r *RTM) Table() *QTable { return r.tables[0] }

// Calibrate sets the workload state range from a pre-characterisation
// series of per-epoch critical-path cycle counts (the paper's design-space
// exploration). Without it the RTM auto-ranges online.
func (r *RTM) Calibrate(cycleCounts []float64) error {
	if err := r.space.Calibrate(cycleCounts); err != nil {
		return err
	}
	r.calibrated = true
	return nil
}

// releaseTables returns every pooled page reference the current tables
// hold. Safe on nil and on partially built slices.
func (r *RTM) releaseTables() {
	for _, t := range r.tables {
		if t != nil {
			t.Release()
		}
	}
}

// ReleaseState implements governor.StateReleaser: the serving tier calls
// it once on session delete so shared pages return to the pool. The
// staged checkpoint's tables are released too — they were interned on
// first apply (see applyRestored) and hold references of their own.
func (r *RTM) ReleaseState() {
	r.releaseTables()
	r.tables = nil
	if r.restored != nil {
		for _, t := range r.restored.Tables {
			if t != nil {
				t.Release()
			}
		}
		r.restored = nil
	}
}

// Reset implements governor.Governor.
func (r *RTM) Reset(ctx governor.Context) {
	r.ctx = ctx
	r.rng = nil // rebuilt lazily from ctx.Seed on the first ε draw
	nTables := 1
	if r.cfg.Mode == PerCoreTables {
		nTables = ctx.NumCores
	}
	nStates := r.space.NumStates()
	nActions := ctx.Table.Len()
	r.releaseTables()
	r.tables = make([]*QTable, nTables)
	if r.restored != nil {
		// A staged checkpoint outranks Config.Transfer: it carries visit
		// counts and the state-space range as well as the Q-values.
		r.applyRestored(nStates, nActions)
	} else {
		for i := range r.tables {
			switch {
			case r.cfg.Transfer != nil:
				if r.cfg.Transfer.States() != nStates || r.cfg.Transfer.Actions() != nActions {
					panic(fmt.Sprintf("core: transfer table is %dx%d, need %dx%d",
						r.cfg.Transfer.States(), r.cfg.Transfer.Actions(), nStates, nActions))
				}
				// Copy so concurrent runs cannot share mutable state.
				t := NewQTable(nStates, nActions, 0)
				for s := 0; s < nStates; s++ {
					row, _ := t.tab.MutRow(s)
					for a := range row {
						row[a] = r.cfg.Transfer.Q(s, a)
					}
				}
				r.tables[i] = t
			case ctx.QPool != nil:
				// Cold start through the pool: every cold session on this
				// platform references the same uniform InitQ page until
				// its first update faults a private copy.
				r.tables[i] = NewQTableShared(ctx.QPool, nStates, nActions, r.cfg.InitQ)
			default:
				r.tables[i] = NewQTable(nStates, nActions, r.cfg.InitQ)
			}
		}
	}
	r.preds = make([]predictor.EWMA, ctx.NumCores)
	for i := range r.preds {
		r.preds[i] = *predictor.NewEWMA(r.cfg.EWMAGamma)
	}
	r.greedy = make([][]int, nTables)
	for i := range r.greedy {
		g := make([]int, nStates)
		for s := range g {
			g[s] = r.tables[i].BestAction(s)
		}
		r.greedy[i] = g
	}
	r.slack = NewSlackTracker(r.cfg.SlackWindow)
	r.cfg.Epsilon.Reset()
	if r.restored != nil {
		r.cfg.Epsilon.Restore(r.restored.Epsilon, r.restored.EpsEpoch)
	}
	r.tracker = governor.NewConvergenceTracker(r.cfg.StableEpochs)
	// Two flips per window: one for a state crossing the visit threshold
	// into the fingerprint, one for a genuine late adjustment.
	r.tracker.MaxFlips = 2
	if ctx.NormFreq != nil {
		r.normFreq = ctx.NormFreq // shared read-only precompute
	} else {
		r.normFreq = ctx.Table.NormFreqs()
	}
	r.fpScratch = make([]int, 0, nTables*nStates)
	r.predScratch = make([]float64, ctx.NumCores)
	r.prevState = make([]int, nTables)
	r.prevAction = 0
	r.lastCtrl = 0
	r.epoch = 0
	r.explorations = 0
	r.exploredPairs = make([]uint64, (nTables*nStates*nActions+63)/64)
	r.explHist = nil
	r.ccSeen = false
	if r.restored != nil && r.restored.CCMax > r.restored.CCMin {
		// The restored tables were trained against the checkpointed range:
		// auto-ranging may refine it from here but must not re-prime over
		// it, which would re-quantise every restored row.
		r.ccSeen = true
	}
	if r.cfg.UseNormalizedState {
		// The Eq. 7 share is dimensionless: balanced work sits at 1.0,
		// the busiest possible core at NumCores. [0, 2] covers everything
		// short of pathological single-thread pile-ups, which clamp.
		r.space.CCMin, r.space.CCMax = 0, 2
		r.calibrated = true
	}
}

// Decide implements governor.Governor. Called at time t_i, it performs the
// three RTM duties of Section II: (1) compute the pay-off for the epoch
// that ended, (2) update the Q-table for its state-action, (3) predict the
// next state and select its action.
func (r *RTM) Decide(obs governor.Observation) int {
	if obs.Epoch < 0 {
		// Nothing executed yet: no pay-off, no prediction. Start from the
		// slowest point like the reset platform.
		r.prevAction = 0
		return 0
	}

	// (1) Pay-off for [t_{i-1}, t_i] from the measured completion time.
	// The reward tracks the *averaged* slack ratio L (Eq. 4-5); the state
	// and the EPD bias use the epoch's *own* slack ratio. The averaged L
	// moves a quantisation level only after ~Window epochs — beyond the
	// discount horizon 1/(1−γ) — so a state built on it cannot propagate
	// credit for steering toward the target; the instantaneous ratio
	// responds to the previous action within one epoch.
	l := r.slack.Observe(obs.ExecTimeS, obs.PeriodS)
	inst := r.slack.LastRatio()
	reward := r.cfg.Reward.Score(l, r.slack.DeltaL(), inst)

	// Feed the workload predictors with this epoch's actual demand.
	for c := range r.preds {
		if c < len(obs.Cycles) {
			r.preds[c].Observe(float64(obs.Cycles[c]))
		}
	}
	r.autoRange(obs)

	// (2)+(3) depend on the learning organisation.
	var action int
	switch r.cfg.Mode {
	case SharedTable:
		action = r.decideShared(inst, reward)
	case PerCoreTables:
		action = r.decidePerCore(inst, reward)
	default:
		panic(fmt.Sprintf("core: unknown mode %v", r.cfg.Mode))
	}

	// ε advances on the epoch's own slack error plus the learning-progress
	// signal: a quiet greedy policy accelerates the decay (Eq. 6's purpose
	// — hand over to exploitation once learning stops moving). This is
	// where EPD earns its Table II advantage: slack-directed exploration
	// ranks the useful actions sooner, the policy goes quiet sooner, and ε
	// collapses with it.
	r.tracker.Observe(r.greedyFingerprint())
	r.cfg.Epsilon.Advance(inst-r.cfg.Reward.Target, r.tracker.Quiet())
	r.explHist = append(r.explHist, int32(r.explorations))
	r.epoch++
	r.prevAction = action
	return action
}

// decideShared performs the paper's shared-table step: one Q-update per
// epoch lands in the single shared table and one action controls the
// cluster. The workload dimension of the state is the *critical* (largest)
// per-core forecast — the demand the deadline actually binds on; under
// UseNormalizedState it is the round-robin controlling core's Eq. 7 share,
// the paper's literal many-core formulation.
func (r *RTM) decideShared(slack, reward float64) int {
	ctrl := -1 // critical-core state
	if r.cfg.UseNormalizedState {
		ctrl = r.epoch % r.ctx.NumCores
	}
	next := r.stateFor(ctrl, slack)
	if r.cfg.OnPolicy {
		// SARSA: choose the next action first, then bootstrap from it.
		action := r.selectAction(0, next, slack)
		alpha := r.effectiveAlpha(0, r.prevState[0], r.prevAction)
		r.tables[0].UpdateSARSA(r.prevState[0], r.prevAction, reward, next, action, alpha, r.cfg.Discount)
		r.refreshGreedy(0, r.prevState[0])
		r.prevState[0] = next
		return action
	}
	r.updateTable(0, r.prevState[0], r.prevAction, reward, next)
	r.prevState[0] = next
	return r.selectAction(0, next, slack)
}

// effectiveAlpha computes the visit-decayed learning rate for a pair.
func (r *RTM) effectiveAlpha(t, state, action int) float64 {
	if r.cfg.AlphaDecayK <= 0 {
		return r.cfg.Alpha
	}
	v := float64(r.tables[t].Visits(state, action))
	return r.cfg.Alpha * r.cfg.AlphaDecayK / (r.cfg.AlphaDecayK + v)
}

// refreshGreedy re-evaluates the sticky greedy choice of one state.
func (r *RTM) refreshGreedy(t, state int) {
	r.greedy[t][state] = r.tables[t].BestActionSticky(state, r.greedy[t][state], r.cfg.GreedyMargin)
}

// decidePerCore runs the rotating independent-table scheme: the epoch's
// pay-off trains the table of the core that chose the action, then control
// passes to the next core, which decides from its own table. Each table
// sees a quarter of the experience the shared table gets — the learning
// handicap Section II-D's design removes.
func (r *RTM) decidePerCore(slack, reward float64) int {
	last := r.lastCtrl
	nextLast := r.stateFor(last, slack)
	r.updateTable(last, r.prevState[last], r.prevAction, reward, nextLast)
	r.prevState[last] = nextLast

	ctrl := r.epoch % r.ctx.NumCores
	next := r.stateFor(ctrl, slack)
	r.prevState[ctrl] = next
	r.lastCtrl = ctrl
	return r.selectAction(ctrl, next, slack)
}

// stateFor maps a predicted workload and the measured slack into a Q-table
// row. c >= 0 selects core c's forecast (Eq. 7 share under
// UseNormalizedState); c < 0 selects the cluster-critical forecast, the
// max across cores.
func (r *RTM) stateFor(c int, slack float64) int {
	var cc float64
	switch {
	case c < 0:
		for i := range r.preds {
			if v := r.preds[i].Predict(); v > cc {
				cc = v
			}
		}
	case r.cfg.UseNormalizedState:
		cc = NormalizeInPlace(r.predictInto(r.predScratch))[c]
	default:
		cc = r.preds[c].Predict()
	}
	return r.space.StateOf(cc, slack)
}

// updateTable applies the Bellman update with the visit-decayed learning
// rate and refreshes the updated state's sticky greedy choice.
func (r *RTM) updateTable(t, state, action int, reward float64, nextState int) {
	alpha := r.effectiveAlpha(t, state, action)
	r.tables[t].Update(state, action, reward, nextState, alpha, r.cfg.Discount)
	r.refreshGreedy(t, state)
}

// selectAction picks explore-vs-exploit and counts explorations.
func (r *RTM) selectAction(t, state int, l float64) int {
	a, explored := r.selectActionNoCount(t, state, l)
	if explored {
		r.explorations++
	}
	return a
}

func (r *RTM) selectActionNoCount(t, state int, l float64) (int, bool) {
	if r.rng == nil {
		r.rng = xrand.New(r.ctx.Seed)
	}
	if r.rng.Float64() < r.cfg.Epsilon.Epsilon() {
		a := r.cfg.Policy.Sample(r.rng, r.tables[t].Actions(), l, r.normFreq)
		key := (t*r.space.NumStates()+state)*r.tables[t].Actions() + a
		if r.exploredPairs[key>>6]&(1<<uint(key&63)) == 0 {
			r.exploredPairs[key>>6] |= 1 << uint(key&63)
			return a, true // a new experiment
		}
		return a, false // a repeat visit, not a new exploration
	}
	return r.greedy[t][state], false
}

// greedyFingerprint concatenates the sticky greedy policies of all tables,
// masking states with fewer than minRowVisits updates: an under-sampled
// row has not learnt anything yet, so its (still essentially random)
// greedy choice flipping must not count as "the policy is still moving".
// A state entering the fingerprint as it crosses the threshold costs one
// tolerated flip.
func (r *RTM) greedyFingerprint() []int {
	const minRowVisits = 20
	out := r.fpScratch[:0]
	for ti, g := range r.greedy {
		for s, a := range g {
			if r.tables[ti].RowVisits(s) < minRowVisits {
				out = append(out, -1)
			} else {
				out = append(out, a)
			}
		}
	}
	r.fpScratch = out
	return out
}

func init() {
	governor.Register("rtm", func() governor.Governor { return New(DefaultConfig()) })
	governor.Register("rtm-percore", func() governor.Governor {
		cfg := DefaultConfig()
		cfg.Mode = PerCoreTables
		return New(cfg)
	})
	governor.Register("updrl", func() governor.Governor {
		cfg := DefaultConfig()
		cfg.Policy = UniformPolicy{}
		return New(cfg)
	})
}

// autoRange maintains the workload state range when no pre-characterisation
// was supplied: the observed critical-path demand expands the range as
// needed (quantisation boundaries shift while learning, which is why the
// paper prefers offline calibration; the experiments call Calibrate).
func (r *RTM) autoRange(obs governor.Observation) {
	if r.calibrated || r.cfg.UseNormalizedState {
		return
	}
	cc := float64(obs.MaxCycles())
	if cc <= 0 {
		return
	}
	if !r.ccSeen {
		r.space.CCMin, r.space.CCMax = cc*0.5, cc*1.5
		r.ccSeen = true
		return
	}
	if cc < r.space.CCMin {
		r.space.CCMin = cc * 0.95
	}
	if cc > r.space.CCMax {
		r.space.CCMax = cc * 1.05
	}
}
