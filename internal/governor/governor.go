// Package governor defines the power-governor abstraction of the paper's
// run-time layer and implements the baseline governors the proposed RTM is
// evaluated against: the Linux cpufreq family (performance, powersave,
// userspace, ondemand, conservative), the offline Oracle used for energy
// normalisation, a multi-core learning DTM in the style of Ge & Qiu
// (DAC'11, the paper's ref [20]) and a uniform-exploration RL manager in
// the style of Shen et al. (TODAES'13, ref [21]).
//
// A governor lives at exactly the abstraction level of a Linux cpufreq
// policy driver: once per decision epoch it receives what the OS can
// observe (PMU deltas, sensed power, temperature, timing of the epoch that
// just ended) and returns the operating-point index for the next epoch.
// The paper's proposed Q-learning RTM implements this same interface in
// internal/core.
package governor

import (
	"fmt"
	"sort"
	"sync"

	"qgov/internal/platform"
	"qgov/internal/qpage"
)

// Context carries the run-static facts a governor may depend on. Reset
// receives it before every run.
type Context struct {
	Table    platform.OPPTable // the cluster's operating points
	NumCores int               // cores in the controlled cluster
	PeriodS  float64           // the application's per-frame deadline (Tref)
	Seed     int64             // seed for any stochastic policy
	// NormFreq, when non-nil, is Table.NormFreqs() precomputed and shared:
	// it is read-only by contract, so a serving tier creating thousands of
	// sessions on one platform hands them all the same slice instead of
	// each learner deriving a private copy. Nil makes the learner compute
	// its own — identical values either way.
	NormFreq []float64
	// QPool, when non-nil, is a process-wide content-interned page pool:
	// learning governors build their value tables through it so that
	// sessions with identical starting state (cold tables, one warm-start
	// manifest) share immutable pages copy-on-write instead of each
	// holding a private deep copy. Nil (the sim default) keeps storage
	// fully private — behaviour and results are identical either way.
	QPool *qpage.Pool
}

// StateReleaser is implemented by governors that hold references to shared
// pooled state (Context.QPool pages). The serving tier calls ReleaseState
// exactly once when a session is deleted, returning the references so a
// drained fleet leaves the pool empty; the governor is unusable after.
type StateReleaser interface {
	ReleaseState()
}

// Observation reports one completed decision epoch. Decide is called with
// the observation of epoch i-1 to choose the operating point for epoch i;
// the very first call carries Epoch == -1 and zero values (nothing has
// executed yet), which governors must tolerate.
type Observation struct {
	Epoch     int       // index of the completed epoch, -1 before the first
	Cycles    []uint64  // per-core PMU cycle deltas over the epoch
	Util      []float64 // per-core busy fraction over the epoch
	ExecTimeS float64   // the paper's T_i + T_OVH: completion incl. overheads
	PeriodS   float64   // the epoch's deadline Tref
	WallTimeS float64   // ExecTimeS or PeriodS, whichever governed the epoch
	PowerW    float64   // sensor-average power over the epoch
	TempC     float64   // die temperature at epoch end
	OPPIdx    int       // operating point the epoch ran at
}

// MaxUtil returns the highest per-core utilisation, the load signal
// Linux's ondemand uses across a policy's CPUs. It returns 0 when Util is
// empty.
func (o Observation) MaxUtil() float64 {
	m := 0.0
	for _, u := range o.Util {
		if u > m {
			m = u
		}
	}
	return m
}

// MaxCycles returns the critical-path cycle demand observed.
func (o Observation) MaxCycles() uint64 {
	var m uint64
	for _, c := range o.Cycles {
		if c > m {
			m = c
		}
	}
	return m
}

// Governor selects operating points at decision-epoch granularity.
type Governor interface {
	// Name identifies the governor in result tables.
	Name() string
	// Reset prepares the governor for a fresh run.
	Reset(ctx Context)
	// Decide returns the OPP index for the next epoch given the
	// observation of the previous one.
	Decide(obs Observation) int
}

// OverheadModeler is implemented by governors whose per-decision compute
// cost is material (the learning governors). The epoch engine charges this
// many seconds of serialised work to every epoch, feeding the T_OVH term of
// the paper's Eq. 5. Governors that do not implement it cost nothing.
type OverheadModeler interface {
	DecisionOverheadS() float64
}

// registry of constructors for CLI lookup.
var (
	regMu    sync.Mutex
	registry = map[string]func() Governor{}
)

// Register makes a governor constructor available to ByName. It is called
// from init functions; duplicate names panic (two governors claiming one
// name is a programming error).
func Register(name string, ctor func() Governor) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("governor: duplicate registration of %q", name))
	}
	registry[name] = ctor
}

// ByName constructs a registered governor.
func ByName(name string) (Governor, error) {
	regMu.Lock()
	ctor, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("governor: unknown governor %q (try one of %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists the registered governors, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
