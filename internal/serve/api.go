package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qgov/internal/governor"
	"qgov/internal/stats"
	"qgov/internal/trace"
)

// Wire types. Floats round-trip exactly through encoding/json (shortest
// representation that parses back to the same float64), which is what
// lets a served governor reproduce a sim.Run decision for decision.

// createRequest creates one session.
type createRequest struct {
	// ID names the session; empty lets the server assign one. It must be
	// filename-safe (it names the checkpoint file).
	ID string `json:"id"`
	// Governor is the registered governor name ("rtm", "mldtm", ...).
	Governor string `json:"governor"`
	// Platform is the scenario platform variant; empty uses the server
	// default.
	Platform string `json:"platform,omitempty"`
	// PeriodS is the decision-epoch deadline Tref; 0 uses the server
	// default.
	PeriodS float64 `json:"period_s,omitempty"`
	// Seed feeds the governor's stochastic policy.
	Seed int64 `json:"seed,omitempty"`
	// CalibrationCC optionally pre-characterises an RTM's workload state
	// range (per-epoch critical-path cycle counts, the paper's design-
	// space exploration).
	CalibrationCC []float64 `json:"calibration_cc,omitempty"`
	// State optionally warm-starts the governor from an inline
	// checkpoint (the body written by /checkpoint or scenario.Freeze).
	// It takes precedence over warm_start and over a checkpoint on disk.
	State json.RawMessage `json:"state,omitempty"`
	// Workload optionally names the workload this session controls
	// (a workload-registry name). It is matching metadata: warm_start
	// "auto" prefers a manifest trained on the same workload before
	// falling back to any same-platform one.
	Workload string `json:"workload,omitempty"`
	// WarmStart resolves learnt state from the checkpoint registry:
	// "auto" picks the nearest manifest for this session's fingerprint,
	// anything else names a manifest id exactly. Inline State and the
	// session's own checkpoint (a re-created id resumes its exact learnt
	// policy) both take precedence; when neither exists the registry
	// resolves it, and the server having no registry is then an error.
	// Alongside inline State, a non-"auto" value is recorded as the
	// session's warm_manifest provenance (the router's hand-off path).
	WarmStart string `json:"warm_start,omitempty"`
	// ThermalCapMW, when positive, wraps the governor in a per-session
	// power cap (governor.ThermalCap in power-only form): sensed epoch
	// power above the budget steps the permissible OPP ceiling down, and
	// it recovers once power clears the cap's hysteresis.
	ThermalCapMW float64 `json:"thermal_cap_mw,omitempty"`
}

type sessionInfo struct {
	ID           string  `json:"id"`
	Governor     string  `json:"governor"`
	Platform     string  `json:"platform"`
	Workload     string  `json:"workload,omitempty"`
	PeriodS      float64 `json:"period_s"`
	Seed         int64   `json:"seed"`
	ThermalCapMW float64 `json:"thermal_cap_mw,omitempty"`
	WarmManifest string  `json:"warm_manifest,omitempty"` // registry manifest the session warm-started from
	Epochs       int64   `json:"epochs"`
	Explorations int     `json:"explorations"` // -1 for non-learners
	ConvergedAt  int     `json:"converged_at"` // -1 while learning
}

type decideRequest struct {
	Requests []decideItem `json:"requests"`
}

type decideItem struct {
	Session string          `json:"session"`
	Obs     observationJSON `json:"obs"`
}

// observationJSON mirrors governor.Observation field for field.
type observationJSON struct {
	Epoch     int       `json:"epoch"`
	Cycles    []uint64  `json:"cycles,omitempty"`
	Util      []float64 `json:"util,omitempty"`
	ExecTimeS float64   `json:"exec_time_s"`
	PeriodS   float64   `json:"period_s"`
	WallTimeS float64   `json:"wall_time_s"`
	PowerW    float64   `json:"power_w"`
	TempC     float64   `json:"temp_c"`
	OPPIdx    int       `json:"opp_idx"`
}

func (o observationJSON) observation() governor.Observation {
	return governor.Observation{
		Epoch:     o.Epoch,
		Cycles:    o.Cycles,
		Util:      o.Util,
		ExecTimeS: o.ExecTimeS,
		PeriodS:   o.PeriodS,
		WallTimeS: o.WallTimeS,
		PowerW:    o.PowerW,
		TempC:     o.TempC,
		OPPIdx:    o.OPPIdx,
	}
}

type decideResponse struct {
	Decisions []decisionJSON `json:"decisions"`
}

type decisionJSON struct {
	Session string `json:"session"`
	OPPIdx  int    `json:"opp_idx"`
	FreqMHz int    `json:"freq_mhz,omitempty"`
	Error   string `json:"error,omitempty"`
}

// maxDecideBatch bounds one /v1/decide request; a controller batching
// more clusters than this per tick should split the batch.
const maxDecideBatch = 4096

// validateDecideBatch is the one copy of the batch-size contract, shared
// by the flat server's and the router's JSON decide handlers so the two
// paths cannot drift.
func validateDecideBatch(n int) error {
	if n == 0 {
		return errf("requests is empty")
	}
	if n > maxDecideBatch {
		return errf("batch of %d exceeds the %d-decision limit", n, maxDecideBatch)
	}
	return nil
}

// maxBodyBytes bounds any request body (calibration series and inline
// checkpoints are the big ones).
const maxBodyBytes = 32 << 20

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("POST /v1/decide", s.handleDecide)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, status, err := s.createSession(req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	s.logf("serve: session %s created (%s on %s)", sess.id, sess.govName, sess.platName)
	writeJSON(w, http.StatusCreated, s.info(sess))
}

func (s *Server) info(sess *session) sessionInfo {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	in := sessionInfo{
		ID:           sess.id,
		Governor:     sess.govName,
		Platform:     sess.platName,
		Workload:     sess.workload,
		PeriodS:      sess.periodS,
		Seed:         sess.seed,
		ThermalCapMW: sess.capMW,
		WarmManifest: sess.warmFrom,
		Epochs:       sess.epochs,
		Explorations: -1,
		ConvergedAt:  -1,
	}
	if ls, ok := sess.learner.(governor.LearningStats); ok {
		in.Explorations = ls.Explorations()
		in.ConvergedAt = ls.ConvergedAtEpoch()
	}
	return in
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, errUnknownSession(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.info(sess))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.deleteSession(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, errUnknownSession(r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// freezeSession captures the session's learnt state now and persists it
// to the checkpoint store when one is configured. Both control planes
// (HTTP and binary) run checkpoints through it. The returned status is
// an HTTP code on failure.
func (s *Server) freezeSession(sess *session) ([]byte, int, error) {
	cp, ok := sess.learner.(governor.Checkpointer)
	if !ok {
		return nil, http.StatusBadRequest, errf("governor %s keeps no learnt state", sess.govName)
	}
	var buf bytes.Buffer
	sess.mu.Lock()
	if sess.dead {
		// Deleted while this request was in flight: its learning state is
		// released, so there is nothing left to freeze.
		sess.mu.Unlock()
		return nil, http.StatusNotFound, errUnknownSession(sess.id)
	}
	epochs := sess.epochs
	err := cp.SaveState(&buf)
	sess.mu.Unlock()
	if err != nil {
		return nil, http.StatusConflict, err
	}
	if s.ckpt != nil {
		if err := s.ckpt.Save(sess.id, buf.Bytes()); err != nil {
			return nil, http.StatusInternalServerError, err
		}
		s.ckptWrites.Add(1)
		// An explicit checkpoint marks the session clean the same way the
		// periodic sweep does, so the next sweep does not re-write it.
		sess.mu.Lock()
		if epochs > sess.ckptEpochs {
			sess.ckptEpochs = epochs
		}
		sess.mu.Unlock()
		s.undoSaveIfDeleted(sess)
	}
	return buf.Bytes(), http.StatusOK, nil
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, errUnknownSession(r.PathValue("id")))
		return
	}
	state, status, err := s.freezeSession(sess)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, checkpointResponse{Session: sess.id, State: state})
}

// checkpointResponse is the body of a successful checkpoint: the frozen
// state inline, so a caller (the router's hand-off, a backup job) can
// carry it without touching the checkpoint store.
type checkpointResponse struct {
	Session string          `json:"session"`
	State   json.RawMessage `json:"state"`
}

// decideOne serves one batch entry. Entries fail independently — an
// unknown session or a rejected observation errors that entry, not the
// batch.
func (s *Server) decideOne(item decideItem) decisionJSON {
	d := decisionJSON{Session: item.Session, OPPIdx: -1}
	if sess := s.session(item.Session); sess == nil {
		d.Error = errUnknownSession(item.Session).Error()
	} else if idx, err := sess.decide(item.Obs.observation()); err != nil {
		d.Error = err.Error()
	} else {
		d.OPPIdx = idx
		d.FreqMHz = sess.plat.table[idx].FreqMHz
		s.decisions.Add(1)
	}
	return d
}

// parallelDecideThreshold is the batch size past which fanning entries
// out across workers beats a serial loop (a single decision is a few
// microseconds of governor work).
const parallelDecideThreshold = 32

// fanOut runs f(0..n-1), in parallel across min(GOMAXPROCS, n) workers
// when the batch is big enough to amortise the goroutine hand-off. Both
// transports decide batches through it: sessions lock independently, so
// entries for different sessions run concurrently.
func fanOut(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n < parallelDecideThreshold || workers < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// handleDecide is the serving hot path: one batched request carries one
// observation per controlled session and returns one operating-point
// decision each. Large batches fan out across workers — sessions lock
// independently, so decisions for different sessions run concurrently
// within a batch as well as across requests. A batch carrying several
// observations for the *same* session is a protocol violation (the
// session serialises them in unspecified order).
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req decideRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n := len(req.Requests)
	if err := validateDecideBatch(n); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Same two sampling decisions as the binary path, batch-level on the
	// JSON plane: head-sample the batch, tail-capture it if slow.
	tr := s.tracer
	batchTrace, _ := tr.Sample()
	timed := tr.Enabled()
	var start time.Time
	if timed {
		start = time.Now()
	}
	resp := decideResponse{Decisions: make([]decisionJSON, n)}
	fanOut(n, func(i int) {
		resp.Decisions[i] = s.decideOne(req.Requests[i])
	})
	if timed {
		dur := time.Since(start)
		durUS := float64(dur) / float64(time.Microsecond)
		if tr.Slow(dur) {
			id := batchTrace
			if id == 0 {
				id = tr.ID()
			}
			tr.Record(trace.Span{
				Trace: id, Stage: "decide.batch", Origin: s.originName(),
				Start: start.UnixNano(), DurUS: durUS, Batch: n, Slow: true,
			})
			s.log.Warn("slow decide batch",
				"trace", id.String(), "dur_us", durUS, "batch", n)
		} else if batchTrace != 0 {
			tr.Record(trace.Span{
				Trace: batchTrace, Stage: "decide.batch", Origin: s.originName(),
				Start: start.UnixNano(), DurUS: durUS, Batch: n,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// latencyJSON is one latency histogram: bins over [lo_us, hi_us] with
// out-of-range samples in underflow/overflow, so every decision is
// accounted for exactly once. Fixed-width bins carry bin_width_us;
// log-width bins (scale "log", what serve's decide histograms use) carry
// the per-bin upper edges instead. p99/p999 are estimated from the bins
// and omitted when the rank falls in the overflow bucket — a saturated
// tail must read as "unknown, beyond hi_us", never as a number.
type latencyJSON struct {
	Count      int       `json:"count"`
	SumUS      float64   `json:"sum_us"`
	LoUS       float64   `json:"lo_us"`
	HiUS       float64   `json:"hi_us"`
	BinWidthUS float64   `json:"bin_width_us,omitempty"`
	Scale      string    `json:"scale,omitempty"`
	EdgesUS    []float64 `json:"edges_us,omitempty"`
	Bins       []int     `json:"bins"`
	Underflow  int       `json:"underflow"`
	Overflow   int       `json:"overflow"`
	P99US      *float64  `json:"p99_us,omitempty"`
	P999US     *float64  `json:"p999_us,omitempty"`
}

// latencyFromHistogram renders one histogram in the latencyJSON shape.
func latencyFromHistogram(h *stats.Histogram) latencyJSON {
	lj := latencyJSON{
		Count:      h.Count(),
		SumUS:      h.Sum(),
		LoUS:       h.Lo(),
		HiUS:       h.Hi(),
		BinWidthUS: h.BinWidth(),
		Bins:       h.Bins(),
		Underflow:  h.Underflow(),
		Overflow:   h.Overflow(),
	}
	if h.LogScale() {
		lj.Scale = "log"
		lj.EdgesUS = h.Edges()
	}
	// json.Marshal rejects NaN/Inf, so the quantiles are pointers set
	// only when the estimate is a real number.
	if q := h.Quantile(0.99); !math.IsNaN(q) && !math.IsInf(q, 0) {
		lj.P99US = &q
	}
	if q := h.Quantile(0.999); !math.IsNaN(q) && !math.IsInf(q, 0) {
		lj.P999US = &q
	}
	return lj
}

// learningJSON is one session's explore→exploit position: where the ε
// schedule sits, how much experience the tables hold, and how much of
// the greedy policy has settled — the counters an operator reads to
// tell "still exploring" from "converged and exploiting" without
// touching the session.
type learningJSON struct {
	Epochs       int64 `json:"epochs"`
	Explorations int   `json:"explorations"`
	ConvergedAt  int   `json:"converged_at"` // -1 while learning
	// The ExplorationStats trio; present only for learners that expose it.
	Epsilon           *float64 `json:"epsilon,omitempty"`
	VisitTotal        *int     `json:"visit_total,omitempty"`
	ConvergedFraction *float64 `json:"converged_fraction,omitempty"`
}

// sessionMetricsJSON is one session's /v1/metrics entry: the latency
// histogram fields (flat, as they have always been) plus the learning
// counters for governors that learn.
type sessionMetricsJSON struct {
	latencyJSON
	Learning *learningJSON `json:"learning,omitempty"`
}

type metricsJSON struct {
	Decisions int64                         `json:"decisions"`
	Sessions  map[string]sessionMetricsJSON `json:"sessions"`
	// DecideLatency is the server-wide decision latency histogram — the
	// striped aggregate every session's decides also land in, O(1) in
	// session count. A router reports the fleet-wide bin-sum. Absent
	// until the first decision.
	DecideLatency *latencyJSON `json:"decide_latency,omitempty"`
	// Runtime is this process's Go runtime health snapshot (goroutines,
	// GC pause p99, live heap, scheduler latency p99). Per-process even
	// on a router: the fleet's replicas each report their own.
	Runtime *stats.RuntimeStats `json:"runtime,omitempty"`
	// DegradedReplicas, set only on a router's fleet aggregate, names the
	// members whose metrics could not be collected — the body then covers
	// the reachable majority rather than failing wholesale.
	DegradedReplicas []string `json:"degraded_replicas,omitempty"`
	// RouteHops, set only on a router, is the per-replica routed decide
	// round-trip latency (router→replica→router, microseconds).
	RouteHops map[string]latencyJSON `json:"route_hops,omitempty"`
	// RouteInflight, set only on a router, is the number of relayed
	// decide requests currently awaiting replica replies.
	RouteInflight *int64 `json:"route_inflight,omitempty"`
	// CheckpointWrites / CheckpointSkipped count the periodic sweep's
	// session-state writes and the writes it skipped because nothing had
	// decided since the last one (the dirty-flag fix for checkpoint write
	// amplification). A router reports the fleet-wide sums.
	CheckpointWrites  int64 `json:"checkpoint_writes"`
	CheckpointSkipped int64 `json:"checkpoint_skipped"`
	// The Q-table page pool's memory-floor gauges: distinct shared pages
	// and the bytes they hold right now, plus the cumulative count of
	// copy-on-write faults (first writes that privatised a shared page).
	// A router reports the fleet-wide sums.
	QTablePoolPages       int64 `json:"qtable_pool_pages"`
	QTablePoolSharedBytes int64 `json:"qtable_pool_shared_bytes"`
	QTableCowFaults       int64 `json:"qtable_cow_faults"`
}

// buildMetrics snapshots the fleet view /v1/metrics serves. Each session
// is snapshotted under its own lock, so metrics reads interleave with
// serving without stalling the whole store.
func (s *Server) buildMetrics() metricsJSON {
	all := s.snapshotSessions()
	out := metricsJSON{
		Decisions:         s.decisions.Load(),
		Sessions:          make(map[string]sessionMetricsJSON, len(all)),
		CheckpointWrites:  s.ckptWrites.Load(),
		CheckpointSkipped: s.ckptSkipped.Load(),
	}
	out.QTablePoolPages, out.QTablePoolSharedBytes, out.QTableCowFaults = s.qpool.Stats()
	if agg := s.DecideLatency(); agg != nil {
		lj := latencyFromHistogram(agg)
		out.DecideLatency = &lj
	}
	rs := stats.ReadRuntime()
	out.Runtime = &rs
	for _, sess := range all {
		sess.mu.Lock()
		lat := sess.lat
		if lat == nil {
			lat = emptyLatHist // not decided yet: histogram built lazily
		}
		mj := sessionMetricsJSON{latencyJSON: latencyFromHistogram(lat)}
		if ls, ok := sess.learner.(governor.LearningStats); ok {
			lj := &learningJSON{
				Epochs:       sess.epochs,
				Explorations: ls.Explorations(),
				ConvergedAt:  ls.ConvergedAtEpoch(),
			}
			if es, ok := sess.learner.(governor.ExplorationStats); ok {
				eps, visits, frac := es.Epsilon(), es.VisitTotal(), es.ConvergedFraction()
				lj.Epsilon, lj.VisitTotal, lj.ConvergedFraction = &eps, &visits, &frac
			}
			mj.Learning = lj
		}
		sess.mu.Unlock()
		out.Sessions[sess.id] = mj
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.buildMetrics()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", prometheusContentType)
		writePrometheus(w, m, topSessions(r))
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// maxTopSessions bounds ?top=K: per-session series are opt-in detail, and
// even opted in, the scrape must stay bounded whatever K the URL carries.
const maxTopSessions = 64

// topSessions reads the Prometheus scrape's ?top=K knob: how many of the
// busiest sessions get per-session series. The default 0 keeps the
// exposition O(1) in session count.
func topSessions(r *http.Request) int {
	s := r.URL.Query().Get("top")
	if s == "" {
		return 0
	}
	k, err := strconv.Atoi(s)
	if err != nil || k < 0 {
		return 0
	}
	if k > maxTopSessions {
		return maxTopSessions
	}
	return k
}

// mergeLatencyJSON folds one rendered latency histogram into an
// accumulator (bin-wise sums; geometry is trusted equal because every
// server in a fleet runs the same build). The quantile estimates are
// recomputed from the merged bins — quantiles do not sum.
func mergeLatencyJSON(dst, src *latencyJSON) *latencyJSON {
	if src == nil {
		return dst
	}
	if dst == nil {
		cp := *src
		cp.Bins = append([]int(nil), src.Bins...)
		dst = &cp
	} else {
		if len(dst.Bins) != len(src.Bins) {
			return dst // geometry drift: keep what we have rather than corrupt it
		}
		dst.Count += src.Count
		dst.SumUS += src.SumUS
		dst.Underflow += src.Underflow
		dst.Overflow += src.Overflow
		for i, c := range src.Bins {
			dst.Bins[i] += c
		}
	}
	dst.P99US = latencyJSONQuantile(dst, 0.99)
	dst.P999US = latencyJSONQuantile(dst, 0.999)
	return dst
}

// latencyJSONQuantile estimates quantile q from rendered bins, reporting
// the upper edge of the bucket the rank lands in (pessimistic by up to
// one bucket). Nil when the histogram is empty or the rank falls in the
// overflow bucket — a saturated tail reads as "beyond hi_us", never a
// number.
func latencyJSONQuantile(lj *latencyJSON, q float64) *float64 {
	if lj.Count == 0 {
		return nil
	}
	rank := int(math.Ceil(q * float64(lj.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := lj.Underflow
	if cum >= rank {
		v := lj.LoUS
		return &v
	}
	for i, c := range lj.Bins {
		cum += c
		if cum >= rank {
			var hi float64
			if len(lj.EdgesUS) == len(lj.Bins) {
				hi = lj.EdgesUS[i]
			} else {
				hi = lj.LoUS + float64(i+1)*lj.BinWidthUS
			}
			return &hi
		}
	}
	return nil
}

// listInfos snapshots every session's info, sorted by id — the body of
// the binary OpList (what a router enumerates when draining a replica).
func (s *Server) listInfos() []sessionInfo {
	all := s.snapshotSessions()
	infos := make([]sessionInfo, 0, len(all))
	for _, sess := range all {
		infos = append(infos, s.info(sess))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// healthJSON is the /healthz body on both control planes: liveness plus
// O(1) counters. MemberEpoch is the replica's installed membership epoch
// — the router's prober compares it against the fleet epoch and
// re-pushes the table to a replica that restarted (and so came back with
// epoch 0).
type healthJSON struct {
	Status      string `json:"status"`
	Sessions    int    `json:"sessions"`
	Decisions   int64  `json:"decisions"`
	MemberEpoch uint32 `json:"member_epoch,omitempty"`
	Forwarded   int64  `json:"forwarded_decisions,omitempty"`
}

func (s *Server) health() healthJSON {
	return healthJSON{
		Status:      "ok",
		Sessions:    s.sessions.Len(),
		Decisions:   s.decisions.Load(),
		MemberEpoch: s.fleetEpoch.Load(),
		Forwarded:   s.forwarded.Load(),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

func errUnknownSession(id string) error { return errf("unknown session %q", id) }
