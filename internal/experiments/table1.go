package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"qgov/internal/governor"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// TableIRow is one method's row of Table I.
type TableIRow struct {
	Method     string
	NormEnergy float64 // energy / Oracle energy (>1: worse than Oracle)
	NormPerf   float64 // mean exec time / Tref (<1: over-performs)
	MissRate   float64 // extra context the paper does not tabulate
	PaperE     float64 // the paper's reported normalised energy (0: n/a)
	PaperP     float64 // the paper's reported normalised performance
}

// TableIResult reproduces "Comparative evaluation of normalised energy and
// performance requirements": the H.264 football decode under the Linux
// ondemand governor [5], the multi-core learning DTM [20] and the proposed
// RTM, with energy normalised to the offline Oracle and performance to
// Tref.
type TableIResult struct {
	Workload      string
	Frames        int
	Seeds         int
	OracleEnergyJ float64
	Rows          []TableIRow
}

// TableI runs the experiment. frames <= 0 selects the paper's full ≈3000
// frame sequence; smaller values (≥ 500 recommended) keep CI fast.
func TableI(seeds []int64, frames int) *TableIResult {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	methods := []struct {
		name   string
		paperE float64
		paperP float64
		build  func(tr workload.Trace) governor.Governor
	}{
		{"oracle", 1.00, 0, func(tr workload.Trace) governor.Governor { return oracleFor(tr) }},
		{"ondemand", 1.29, 0.77, func(workload.Trace) governor.Governor { return governor.NewOndemand() }},
		{"mldtm", 1.20, 0.89, func(workload.Trace) governor.Governor { return governor.NewMLDTM() }},
		{"rtm", 1.11, 0.96, func(tr workload.Trace) governor.Governor { return newRTM(tr) }},
	}

	res := &TableIResult{Seeds: len(seeds)}
	// Aggregate per method across seeds; the trace is regenerated per seed
	// so every method sees the same sequence for a given seed.
	sums := make([]struct{ e, p, m float64 }, len(methods))
	var oracleSum float64
	for _, seed := range seeds {
		tr := workload.FootballH264(seed)
		if frames > 0 {
			tr = tr.Slice(0, frames)
		}
		res.Workload = tr.Name
		res.Frames = tr.Len()

		jobs := make([]sim.Job, len(methods))
		for i, m := range methods {
			m := m
			jobs[i] = sim.Job{Name: m.name, Build: func() sim.Config {
				return sim.Config{Trace: tr, Governor: m.build(tr), Seed: seed}
			}}
		}
		results := sim.RunAll(jobs)
		oracleE := results[0].EnergyJ
		oracleSum += oracleE
		for i, r := range results {
			sums[i].e += r.EnergyJ / oracleE
			sums[i].p += r.NormPerf
			sums[i].m += r.MissRate
		}
	}

	n := float64(len(seeds))
	res.OracleEnergyJ = oracleSum / n
	for i, m := range methods {
		res.Rows = append(res.Rows, TableIRow{
			Method:     m.name,
			NormEnergy: sums[i].e / n,
			NormPerf:   sums[i].p / n,
			MissRate:   sums[i].m / n,
			PaperE:     m.paperE,
			PaperP:     m.paperP,
		})
	}
	return res
}

// Row returns the named row, or nil.
func (t *TableIResult) Row(method string) *TableIRow {
	for i := range t.Rows {
		if t.Rows[i].Method == method {
			return &t.Rows[i]
		}
	}
	return nil
}

// Render writes the table in the paper's layout with the paper's numbers
// alongside.
func (t *TableIResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table I — normalised energy and performance (%s, %d frames, %d seeds)\n",
		t.Workload, t.Frames, t.Seeds)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Methodology\tNorm. energy\tNorm. perf\tMiss rate\tPaper energy\tPaper perf")
	for _, r := range t.Rows {
		paperE, paperP := "-", "-"
		if r.PaperE > 0 {
			paperE = fmt.Sprintf("%.2f", r.PaperE)
		}
		if r.PaperP > 0 {
			paperP = fmt.Sprintf("%.2f", r.PaperP)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f%%\t%s\t%s\n",
			r.Method, r.NormEnergy, r.NormPerf, r.MissRate*100, paperE, paperP)
	}
	return tw.Flush()
}
