package sessionstore_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"qgov/internal/sessionstore"
)

// After a delete storm the store must still serve its survivors: the map
// rebuild may not lose, duplicate, or corrupt entries.
func TestShardedShrinkKeepsSurvivors(t *testing.T) {
	s := sessionstore.NewSharded[int](1) // one shard: thresholds are exact
	const peak = 20000
	for i := 0; i < peak; i++ {
		if !s.Put(fmt.Sprintf("sess-%d", i), i) {
			t.Fatalf("Put sess-%d refused", i)
		}
	}
	// Storm: delete all but every 20th entry, driving occupancy to 5% of
	// the high-water mark — far below the rebuild threshold.
	for i := 0; i < peak; i++ {
		if i%20 == 0 {
			continue
		}
		if _, ok := s.Delete(fmt.Sprintf("sess-%d", i)); !ok {
			t.Fatalf("Delete sess-%d missed", i)
		}
	}
	if got, want := s.Len(), peak/20; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for i := 0; i < peak; i += 20 {
		v, ok := s.Get(fmt.Sprintf("sess-%d", i))
		if !ok || v != i {
			t.Fatalf("Get sess-%d = %d,%v after shrink, want %d,true", i, v, ok, i)
		}
	}
	// Survivors must be deletable and their ids re-usable.
	if _, ok := s.Delete("sess-0"); !ok {
		t.Fatal("Delete sess-0 missed after shrink")
	}
	if !s.Put("sess-0", -1) {
		t.Fatal("Put of recycled id refused after shrink")
	}
}

// retainedAfter reports the heap retained by the value built by build,
// measured across forced GCs so transient garbage does not count.
func retainedAfter(build func() any) uint64 {
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	v := build()
	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(v)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// The actual bug: Go maps never release bucket arrays, so without the
// rebuild a store that peaked at 200k sessions retains peak-sized memory
// after a 97% delete storm. The fix must recover most of it.
func TestShardedShrinkReleasesMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory measurement in -short mode")
	}
	const peak = 200000
	churn := func(disable bool) any {
		s := sessionstore.NewSharded[[8]int64](0)
		if disable {
			s.DisableShrink()
		}
		for i := 0; i < peak; i++ {
			s.Put(fmt.Sprintf("soak-session-%d", i), [8]int64{int64(i)})
		}
		for i := 0; i < peak; i++ {
			if i%32 != 0 {
				s.Delete(fmt.Sprintf("soak-session-%d", i))
			}
		}
		return s
	}
	baseline := retainedAfter(func() any { return churn(true) })
	fixed := retainedAfter(func() any { return churn(false) })
	t.Logf("retained after storm: baseline=%d B, shrink=%d B", baseline, fixed)
	// The baseline holds buckets for 200k entries, the shrunk store for
	// ~6.25k. Demand a conservative 2x margin to stay robust against
	// allocator noise.
	if fixed*2 >= baseline {
		t.Fatalf("shrink retained %d B, baseline %d B: map rebuild is not releasing storm memory", fixed, baseline)
	}
}

// Shrink must be invisible to concurrent readers and writers: a churn of
// put/delete/get/range across goroutines, run under -race in CI.
func TestShardedShrinkConcurrentChurn(t *testing.T) {
	s := sessionstore.NewSharded[int](4)
	const (
		workers = 8
		rounds  = 25
		span    = 600 // enough per-shard peak to cross shrinkMinHiWater
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < span; i++ {
					id := fmt.Sprintf("w%d-%d", w, i)
					s.Put(id, i)
				}
				for i := 0; i < span; i++ {
					id := fmt.Sprintf("w%d-%d", w, i)
					if v, ok := s.Get(id); ok && v != i {
						t.Errorf("Get %s = %d, want %d", id, v, i)
						return
					}
				}
				for i := 0; i < span; i++ {
					s.Delete(fmt.Sprintf("w%d-%d", w, i))
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var ranger sync.WaitGroup
	ranger.Add(1)
	go func() {
		defer ranger.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := 0
			s.Range(func(string, int) bool { n++; return n < 100 })
			_ = s.Len()
		}
	}()
	wg.Wait()
	close(stop)
	ranger.Wait()
}
