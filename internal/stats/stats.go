// Package stats provides the small statistical toolkit used throughout the
// simulator: descriptive statistics, running (online) accumulators,
// histograms and time-series error metrics.
//
// The package exists so that the experiment harness and the governors share
// one audited implementation of means, percentiles and prediction-error
// metrics instead of hand-rolling them in every module. Everything operates
// on float64 slices and is deterministic.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	// Kahan summation keeps long trace aggregations (100k+ frames)
	// accurate enough for energy bookkeeping.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// It returns NaN when fewer than two samples are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice;
// p outside [0,100] is clamped.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MeanAbs returns the mean of |xs[i]|.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// Covariance returns the unbiased sample covariance of xs and ys.
// It returns NaN when the slices differ in length or hold fewer than two
// samples.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var ss float64
	for i := range xs {
		ss += (xs[i] - mx) * (ys[i] - my)
	}
	return ss / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
func Correlation(xs, ys []float64) float64 {
	cov := Covariance(xs, ys)
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return cov / (sx * sy)
}

// Normalize returns xs scaled by 1/ref. It is used for the paper's
// "normalised energy" (vs Oracle) and "normalised performance" (vs Tref)
// columns. It returns an error when ref is zero or not finite.
func Normalize(xs []float64, ref float64) ([]float64, error) {
	if ref == 0 || math.IsNaN(ref) || math.IsInf(ref, 0) {
		return nil, errors.New("stats: invalid normalisation reference")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / ref
	}
	return out, nil
}

// Clamp limits x to the closed interval [lo, hi]. It panics if lo > hi,
// which always indicates a programming error in the caller.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("stats: Clamp called with lo > hi")
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}
