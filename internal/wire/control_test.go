package wire_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"qgov/internal/wire"
)

func TestControlRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		op      byte
		session string
		body    []byte
	}{
		{"create", wire.OpCreate, "cluster-0", []byte(`{"id":"cluster-0","governor":"rtm","seed":1}`)},
		{"checkpoint", wire.OpCheckpoint, "cluster-0", nil},
		{"delete", wire.OpDelete, "c1", []byte{}},
		{"metrics-no-session", wire.OpMetrics, "", nil},
		{"max-session", wire.OpInfo, strings.Repeat("s", wire.MaxSession), []byte("{}")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := wire.AppendControl(nil, 11, tc.op, tc.session, tc.body)
			if err != nil {
				t.Fatal(err)
			}
			typ, payload, rest, err := wire.DecodeFrame(frame)
			if err != nil || typ != wire.MsgControl || len(rest) != 0 {
				t.Fatalf("DecodeFrame: typ %d rest %d err %v", typ, len(rest), err)
			}
			var m wire.Control
			if err := m.Decode(payload); err != nil {
				t.Fatal(err)
			}
			if m.ID != 11 || m.Op != tc.op || string(m.Session) != tc.session || string(m.Body) != string(tc.body) {
				t.Errorf("control mangled: %+v", m)
			}
		})
	}
}

func TestControlReplyRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		status uint16
		body   string
	}{
		{201, `{"id":"cluster-0","governor":"rtm"}`},
		{404, `{"error":"unknown session \"ghost\""}`},
		{204, ""},
	} {
		frame, err := wire.AppendControlReply(nil, 21, tc.status, []byte(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		typ, payload, rest, err := wire.DecodeFrame(frame)
		if err != nil || typ != wire.MsgControlReply || len(rest) != 0 {
			t.Fatalf("DecodeFrame: typ %d rest %d err %v", typ, len(rest), err)
		}
		var m wire.ControlReply
		if err := m.Decode(payload); err != nil {
			t.Fatal(err)
		}
		if m.ID != 21 || m.Status != tc.status || string(m.Body) != tc.body {
			t.Errorf("reply mangled: %+v", m)
		}
	}
}

func TestControlBounds(t *testing.T) {
	if _, err := wire.AppendControl(nil, 1, wire.OpCreate, strings.Repeat("a", wire.MaxSession+1), nil); !errors.Is(err, wire.ErrTooLong) {
		t.Errorf("oversized session: %v", err)
	}
	big := make([]byte, wire.MaxPayload)
	if _, err := wire.AppendControl(nil, 1, wire.OpCreate, "s", big); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Errorf("oversized body: %v", err)
	}
	if _, err := wire.AppendControlReply(nil, 1, 200, big); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Errorf("oversized reply body: %v", err)
	}
	// A failed append leaves dst untouched.
	dst := []byte{9, 9}
	if out, err := wire.AppendControl(dst, 1, wire.OpCreate, "s", big); err == nil || len(out) != 2 {
		t.Errorf("failed append grew dst to %d bytes (err %v)", len(out), err)
	}
}

func TestControlDecodeErrors(t *testing.T) {
	frame, err := wire.AppendControl(nil, 5, wire.OpCreate, "c0", []byte(`{"governor":"rtm"}`))
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[wire.HeaderSize:]

	var m wire.Control
	for n := 0; n < len(payload); n++ {
		if err := m.Decode(payload[:n]); err == nil {
			t.Fatalf("control payload prefix of %d bytes decoded cleanly", n)
		}
	}
	grown := append(bytes.Clone(payload), 0)
	if err := m.Decode(grown); !errors.Is(err, wire.ErrTrailingBytes) {
		t.Errorf("trailing byte: %v", err)
	}

	reply, err := wire.AppendControlReply(nil, 6, 200, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	rp := reply[wire.HeaderSize:]
	var r wire.ControlReply
	for n := 0; n < len(rp); n++ {
		if err := r.Decode(rp[:n]); err == nil {
			t.Fatalf("reply payload prefix of %d bytes decoded cleanly", n)
		}
	}
	if err := r.Decode(append(bytes.Clone(rp), 0)); !errors.Is(err, wire.ErrTrailingBytes) {
		t.Errorf("reply trailing byte: %v", err)
	}
}
