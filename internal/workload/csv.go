package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace serialisation. The format is a plain CSV of one row per frame with
// one column per thread, preceded by two comment lines carrying the trace
// name and deadline:
//
//	# name=h264-football
//	# ref_time_s=0.04
//	frame,thread0,thread1,thread2,thread3
//	0,31000000,29000000,30500000,30120000
//	...
//
// cmd/tracegen writes this format so captured or externally generated
// traces (e.g. converted from real PMU logs) can be replayed through the
// simulator with cmd/rtmsim -trace.

// WriteCSV serialises the trace.
func (t Trace) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name=%s\n", t.Name)
	fmt.Fprintf(bw, "# ref_time_s=%g\n", t.RefTimeS)
	threads := t.Threads()
	bw.WriteString("frame")
	for j := 0; j < threads; j++ {
		fmt.Fprintf(bw, ",thread%d", j)
	}
	bw.WriteByte('\n')
	for i, f := range t.Frames {
		fmt.Fprintf(bw, "%d", i)
		for j := 0; j < threads; j++ {
			var c uint64
			if j < len(f.Cycles) {
				c = f.Cycles[j]
			}
			fmt.Fprintf(bw, ",%d", c)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadCSV parses a trace previously written by WriteCSV. It tolerates
// missing comment headers (name defaults to "imported", deadline to 40 ms)
// but rejects structurally broken rows.
func ReadCSV(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	t := Trace{Name: "imported", RefTimeS: 0.040}
	headerSeen := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			kv := strings.TrimSpace(strings.TrimPrefix(text, "#"))
			if name, ok := strings.CutPrefix(kv, "name="); ok {
				t.Name = name
			} else if v, ok := strings.CutPrefix(kv, "ref_time_s="); ok {
				ref, err := strconv.ParseFloat(v, 64)
				if err != nil || ref <= 0 {
					return Trace{}, fmt.Errorf("workload: line %d: bad ref_time_s %q", line, v)
				}
				t.RefTimeS = ref
			}
			continue
		}
		if !headerSeen && strings.HasPrefix(text, "frame") {
			headerSeen = true
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return Trace{}, fmt.Errorf("workload: line %d: need frame index and at least one thread", line)
		}
		cy := make([]uint64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return Trace{}, fmt.Errorf("workload: line %d: bad cycle count %q: %v", line, f, err)
			}
			cy = append(cy, v)
		}
		t.Frames = append(t.Frames, Frame{Cycles: cy})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}
