package governor

import (
	"qgov/internal/platform"
	"qgov/internal/workload"
)

// Oracle chooses, for every frame, the operating point that minimises the
// epoch's modelled energy subject to meeting the deadline — using the
// *actual* cycle demand of the upcoming frame, which no online governor can
// know. This is the paper's energy-normalisation reference: "offline
// determination of optimized V-F for the observed CPU workloads".
//
// Decisions are precomputed at Reset against the platform's power model at
// a fixed reference temperature. Leakage's temperature sensitivity shifts
// per-OPP energies by a few percent but essentially never the argmin
// between adjacent OPPs, so precomputation keeps the Oracle deterministic
// and free of feedback coupling.
type Oracle struct {
	trace   workload.Trace
	power   *platform.PowerModel
	refTemp float64
	choices []int
}

// NewOracle constructs the oracle for a trace and the power model of the
// cluster it will run on.
func NewOracle(trace workload.Trace, power *platform.PowerModel) *Oracle {
	return &Oracle{trace: trace, power: power, refTemp: 50}
}

// Name implements Governor.
func (g *Oracle) Name() string { return "oracle" }

// Reset implements Governor: precomputes the per-frame minimum-energy OPP.
func (g *Oracle) Reset(ctx Context) {
	g.choices = make([]int, g.trace.Len())
	for i := range g.choices {
		g.choices[i] = g.chooseFor(ctx.Table, g.trace.Frames[i], g.trace.RefTimeS)
	}
}

// chooseFor returns the index of the minimum-energy OPP that completes the
// frame within the period, or the fastest OPP when none can.
func (g *Oracle) chooseFor(table platform.OPPTable, f workload.Frame, periodS float64) int {
	maxCy := f.MaxCycles()
	active := 0
	var total uint64
	for _, c := range f.Cycles {
		if c > 0 {
			active++
		}
		total += c
	}
	bestIdx := -1
	var bestE float64
	for i := range table {
		opp := table[i]
		exec := float64(maxCy) / opp.FreqHz()
		// A 1% margin absorbs the DVFS transition and sampling overheads
		// the offline computation cannot see; without it the Oracle grazes
		// deadlines it nominally meets.
		if exec > periodS*0.99 {
			continue
		}
		meanBusy := 0.0
		if active > 0 {
			meanBusy = float64(total) / float64(active) / opp.FreqHz()
		}
		idle := periodS - meanBusy
		e := g.power.ClusterPowerW(opp, active, g.refTemp)*meanBusy +
			g.power.IdlePowerW(opp, g.refTemp)*idle
		if bestIdx < 0 || e < bestE {
			bestIdx, bestE = i, e
		}
	}
	if bestIdx < 0 {
		return table.MaxIdx()
	}
	return bestIdx
}

// Decide implements Governor. The observation of epoch i-1 selects the
// choice for frame i; past the end of the trace it holds the last choice.
func (g *Oracle) Decide(obs Observation) int {
	next := obs.Epoch + 1
	if next >= len(g.choices) {
		next = len(g.choices) - 1
	}
	if next < 0 {
		next = 0
	}
	return g.choices[next]
}
