package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition of /v1/metrics. The JSON document stays the
// canonical body (it is what the binary control plane and the router's
// fleet merge exchange); this renderer projects that same document into
// the text format a Prometheus scraper ingests, so both the replica and
// the router expose it by re-rendering whatever they would have served
// as JSON — one source of truth, two encodings.
//
// The exposition is O(1) in session count: the decision-latency histogram
// is the server-wide striped aggregate, one 70-bucket family however many
// sessions exist. Per-session detail (latency histogram and learning
// gauges) is opt-in via ?top=K, which emits series for the K
// most-decided sessions under the separate rtmd_session_* families —
// a 10k-session fleet at the default scrape renders the same byte count
// as an idle one, and an operator debugging a hot session turns the
// detail on per request without changing server state.

// wantsPrometheus reports whether a metrics request asked for the text
// exposition format: ?format=prometheus, or an Accept header preferring
// text/plain (what a Prometheus scrape sends) over JSON.
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// prometheusContentType is the text exposition format version scrapers
// expect.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promFloat renders a float the exposition format accepts (Go's 'g'
// shortest form is valid Prometheus syntax, including +Inf/NaN spellings
// which never occur here).
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Label values render through %q, whose escaping (backslash, quote,
// newline) is exactly what the exposition format requires.

// writePrometheus renders the metrics document in text exposition
// format. topK > 0 additionally emits per-session series for the K
// most-decided sessions; 0 keeps the scrape free of per-session
// cardinality entirely.
func writePrometheus(w io.Writer, m metricsJSON, topK int) {
	fmt.Fprintf(w, "# HELP rtmd_decisions_total Operating-point decisions served.\n")
	fmt.Fprintf(w, "# TYPE rtmd_decisions_total counter\n")
	fmt.Fprintf(w, "rtmd_decisions_total %d\n", m.Decisions)
	fmt.Fprintf(w, "# HELP rtmd_sessions Live sessions.\n")
	fmt.Fprintf(w, "# TYPE rtmd_sessions gauge\n")
	fmt.Fprintf(w, "rtmd_sessions %d\n", len(m.Sessions))
	fmt.Fprintf(w, "# HELP rtmd_replicas_degraded Fleet members the last aggregation could not reach (always 0 on a flat server).\n")
	fmt.Fprintf(w, "# TYPE rtmd_replicas_degraded gauge\n")
	fmt.Fprintf(w, "rtmd_replicas_degraded %d\n", len(m.DegradedReplicas))
	if len(m.DegradedReplicas) > 0 {
		fmt.Fprintf(w, "# HELP rtmd_replica_degraded Set to 1 for each member missing from the fleet aggregate.\n")
		fmt.Fprintf(w, "# TYPE rtmd_replica_degraded gauge\n")
		for _, r := range m.DegradedReplicas {
			fmt.Fprintf(w, "rtmd_replica_degraded{replica=%q} 1\n", r)
		}
	}

	if m.RouteInflight != nil {
		fmt.Fprintf(w, "# HELP rtmd_route_inflight_requests Relayed decide requests awaiting replica replies.\n")
		fmt.Fprintf(w, "# TYPE rtmd_route_inflight_requests gauge\n")
		fmt.Fprintf(w, "rtmd_route_inflight_requests %d\n", *m.RouteInflight)
	}
	if len(m.RouteHops) > 0 {
		replicas := make([]string, 0, len(m.RouteHops))
		for r := range m.RouteHops {
			replicas = append(replicas, r)
		}
		sort.Strings(replicas)
		fmt.Fprintf(w, "# HELP rtmd_route_hop_seconds Routed decide round-trip per replica (router to replica and back).\n")
		fmt.Fprintf(w, "# TYPE rtmd_route_hop_seconds histogram\n")
		for _, r := range replicas {
			writeLatencyHistogram(w, "rtmd_route_hop_seconds", "replica", r, m.RouteHops[r])
		}
	}

	// The server-wide aggregate: one histogram whatever the session count.
	agg := latencyFromHistogram(emptyLatHist) // zero shape: no decisions yet
	if m.DecideLatency != nil {
		agg = *m.DecideLatency
	}
	fmt.Fprintf(w, "# HELP rtmd_decision_latency_seconds Decision latency under the session lock, aggregated server-wide.\n")
	fmt.Fprintf(w, "# TYPE rtmd_decision_latency_seconds histogram\n")
	writeLatencyHistogram(w, "rtmd_decision_latency_seconds", "", "", agg)
	// The +Inf-adjacent saturation signal: histogram_quantile() over the
	// le buckets silently clamps to the top edge when the tail escaped the
	// range, so the overflow count is exported explicitly — a non-zero
	// value here means the le-derived quantiles under-read.
	fmt.Fprintf(w, "# HELP rtmd_decision_latency_overflow_total Decisions beyond the histogram range; non-zero means le-bucket quantiles are saturated.\n")
	fmt.Fprintf(w, "# TYPE rtmd_decision_latency_overflow_total counter\n")
	fmt.Fprintf(w, "rtmd_decision_latency_overflow_total %d\n", agg.Overflow)

	fmt.Fprintf(w, "# HELP rtmd_qtable_pool_pages Distinct shared Q-table pages interned in the copy-on-write pool.\n")
	fmt.Fprintf(w, "# TYPE rtmd_qtable_pool_pages gauge\n")
	fmt.Fprintf(w, "rtmd_qtable_pool_pages %d\n", m.QTablePoolPages)
	fmt.Fprintf(w, "# HELP rtmd_qtable_pool_shared_bytes Bytes held by the shared Q-table pages (paid once, however many sessions reference them).\n")
	fmt.Fprintf(w, "# TYPE rtmd_qtable_pool_shared_bytes gauge\n")
	fmt.Fprintf(w, "rtmd_qtable_pool_shared_bytes %d\n", m.QTablePoolSharedBytes)
	fmt.Fprintf(w, "# HELP rtmd_qtable_cow_faults_total Copy-on-write faults: first writes that privatised a shared Q-table page.\n")
	fmt.Fprintf(w, "# TYPE rtmd_qtable_cow_faults_total counter\n")
	fmt.Fprintf(w, "rtmd_qtable_cow_faults_total %d\n", m.QTableCowFaults)

	fmt.Fprintf(w, "# HELP rtmd_checkpoint_writes_total Session states written by checkpoint sweeps and explicit checkpoints.\n")
	fmt.Fprintf(w, "# TYPE rtmd_checkpoint_writes_total counter\n")
	fmt.Fprintf(w, "rtmd_checkpoint_writes_total %d\n", m.CheckpointWrites)
	fmt.Fprintf(w, "# HELP rtmd_checkpoint_skipped_total Sweep writes skipped because the session was clean since its last checkpoint.\n")
	fmt.Fprintf(w, "# TYPE rtmd_checkpoint_skipped_total counter\n")
	fmt.Fprintf(w, "rtmd_checkpoint_skipped_total %d\n", m.CheckpointSkipped)

	if m.Runtime != nil {
		rs := m.Runtime
		fmt.Fprintf(w, "# HELP rtmd_go_goroutines Live goroutines in this process.\n")
		fmt.Fprintf(w, "# TYPE rtmd_go_goroutines gauge\n")
		fmt.Fprintf(w, "rtmd_go_goroutines %d\n", rs.Goroutines)
		fmt.Fprintf(w, "# HELP rtmd_go_gc_pause_p99_seconds 99th-percentile stop-the-world GC pause over the process lifetime.\n")
		fmt.Fprintf(w, "# TYPE rtmd_go_gc_pause_p99_seconds gauge\n")
		fmt.Fprintf(w, "rtmd_go_gc_pause_p99_seconds %s\n", promFloat(rs.GCPauseP99S))
		fmt.Fprintf(w, "# HELP rtmd_go_gc_cycles_total Completed GC cycles.\n")
		fmt.Fprintf(w, "# TYPE rtmd_go_gc_cycles_total counter\n")
		fmt.Fprintf(w, "rtmd_go_gc_cycles_total %d\n", rs.GCCycles)
		fmt.Fprintf(w, "# HELP rtmd_go_heap_live_bytes Heap bytes occupied by live objects plus unswept spans.\n")
		fmt.Fprintf(w, "# TYPE rtmd_go_heap_live_bytes gauge\n")
		fmt.Fprintf(w, "rtmd_go_heap_live_bytes %d\n", rs.HeapLiveBytes)
		fmt.Fprintf(w, "# HELP rtmd_go_sched_latency_p99_seconds 99th-percentile time goroutines spent runnable before running.\n")
		fmt.Fprintf(w, "# TYPE rtmd_go_sched_latency_p99_seconds gauge\n")
		fmt.Fprintf(w, "rtmd_go_sched_latency_p99_seconds %s\n", promFloat(rs.SchedLatencyP99S))
	}

	if topK <= 0 {
		return
	}
	ids := topSessionIDs(m, topK)

	fmt.Fprintf(w, "# HELP rtmd_session_decision_latency_seconds Decision latency for the top-K most-decided sessions (opt-in via ?top=K).\n")
	fmt.Fprintf(w, "# TYPE rtmd_session_decision_latency_seconds histogram\n")
	for _, id := range ids {
		writeLatencyHistogram(w, "rtmd_session_decision_latency_seconds", "session", id, m.Sessions[id].latencyJSON)
	}
	fmt.Fprintf(w, "# HELP rtmd_session_decision_latency_overflow_total Per-session decisions beyond the histogram range (top-K sessions only).\n")
	fmt.Fprintf(w, "# TYPE rtmd_session_decision_latency_overflow_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(w, "rtmd_session_decision_latency_overflow_total{session=%q} %d\n", id, m.Sessions[id].Overflow)
	}

	writeLearningGauge(w, m, ids, "rtmd_session_epochs", "Decision epochs the session has served.",
		func(lj *learningJSON) (string, bool) { return strconv.FormatInt(lj.Epochs, 10), true })
	// Gauge, not counter: the count resets when a session is re-created
	// under its id, which a counter contract would forbid.
	writeLearningGauge(w, m, ids, "rtmd_session_explorations", "Exploratory (non-greedy) decisions taken.",
		func(lj *learningJSON) (string, bool) { return strconv.Itoa(lj.Explorations), true })
	writeLearningGauge(w, m, ids, "rtmd_session_converged_at_epoch", "Epoch initial learning completed; -1 while learning.",
		func(lj *learningJSON) (string, bool) { return strconv.Itoa(lj.ConvergedAt), true })
	writeLearningGauge(w, m, ids, "rtmd_session_epsilon", "Exploration probability (the ε schedule's position).",
		func(lj *learningJSON) (string, bool) {
			if lj.Epsilon == nil {
				return "", false
			}
			return promFloat(*lj.Epsilon), true
		})
	// "visits", not "visit_total": like the explorations gauge above, the
	// value resets on session re-creation, so a counter-implying _total
	// suffix would mislead rate()-style queries.
	writeLearningGauge(w, m, ids, "rtmd_session_visits", "State-action visits across the learner's value tables.",
		func(lj *learningJSON) (string, bool) {
			if lj.VisitTotal == nil {
				return "", false
			}
			return strconv.Itoa(*lj.VisitTotal), true
		})
	writeLearningGauge(w, m, ids, "rtmd_session_converged_fraction", "Fraction of states whose greedy action has settled.",
		func(lj *learningJSON) (string, bool) {
			if lj.ConvergedFraction == nil {
				return "", false
			}
			return promFloat(*lj.ConvergedFraction), true
		})
}

// topSessionIDs picks the K most-decided sessions (latency sample count
// descending, id ascending on ties) — the bounded per-session slice an
// operator opted into with ?top=K.
func topSessionIDs(m metricsJSON, k int) []string {
	ids := make([]string, 0, len(m.Sessions))
	for id := range m.Sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := m.Sessions[ids[i]].Count, m.Sessions[ids[j]].Count
		if ci != cj {
			return ci > cj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	// Render in id order so the output is deterministic and diffable.
	sort.Strings(ids)
	return ids
}

// writeLatencyHistogram renders one latencyJSON as a Prometheus
// histogram series, with a single label (session or replica) or — when
// label is empty — unlabeled. The microsecond bins convert to seconds;
// bucket edges come from the explicit edge list when the histogram is
// log-width and from the fixed bin width otherwise. Underflow folds into
// the first bucket (a sample below lo is certainly <= the first edge) so
// the buckets always sum to the count.
func writeLatencyHistogram(w io.Writer, name, label, value string, lj latencyJSON) {
	series := func(suffix, le string) string {
		switch {
		case label == "" && le == "":
			return name + suffix
		case label == "":
			return fmt.Sprintf("%s%s{le=%q}", name, suffix, le)
		case le == "":
			return fmt.Sprintf("%s%s{%s=%q}", name, suffix, label, value)
		default:
			return fmt.Sprintf("%s%s{%s=%q,le=%q}", name, suffix, label, value, le)
		}
	}
	cum := lj.Underflow
	for i, c := range lj.Bins {
		cum += c
		var le float64
		if len(lj.EdgesUS) == len(lj.Bins) {
			le = lj.EdgesUS[i] * 1e-6
		} else {
			le = (lj.LoUS + float64(i+1)*lj.BinWidthUS) * 1e-6
		}
		fmt.Fprintf(w, "%s %d\n", series("_bucket", promFloat(le)), cum)
	}
	fmt.Fprintf(w, "%s %d\n", series("_bucket", "+Inf"), lj.Count)
	fmt.Fprintf(w, "%s %s\n", series("_sum", ""), promFloat(lj.SumUS*1e-6))
	fmt.Fprintf(w, "%s %d\n", series("_count", ""), lj.Count)
}

// writeLearningGauge renders one per-session learning gauge family,
// covering only the given (top-K) sessions whose governor learns (and,
// per field, only learners that expose it).
func writeLearningGauge(w io.Writer, m metricsJSON, ids []string, name, help string,
	value func(*learningJSON) (string, bool)) {
	wrote := false
	for _, id := range ids {
		lj := m.Sessions[id].Learning
		if lj == nil {
			continue
		}
		v, ok := value(lj)
		if !ok {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			wrote = true
		}
		fmt.Fprintf(w, "%s{session=%q} %s\n", name, id, v)
	}
}
