// Governorcompare sweeps every registered governor over a chosen workload
// and prints an energy/performance/miss comparison — the quickest way to
// see how the learning governors relate to the classic cpufreq family on
// a given demand pattern.
//
//	go run ./examples/governorcompare [-workload parsec.bodytrack] [-frames 1200]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

func main() {
	name := flag.String("workload", "parsec.bodytrack", "workload to compare on")
	frames := flag.Int("frames", 1200, "frames to run")
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	gen, err := workload.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	trace := gen(*seed, *frames)

	names := governor.Names()
	sort.Strings(names)
	jobs := make([]sim.Job, 0, len(names)+1)
	jobs = append(jobs, sim.Job{Name: "oracle", Build: func() sim.Config {
		return sim.Config{
			Trace:    trace,
			Governor: governor.NewOracle(trace, platform.DefaultA15PowerModel()),
			Seed:     *seed,
		}
	}})
	for _, n := range names {
		n := n
		jobs = append(jobs, sim.Job{Name: n, Build: func() sim.Config {
			g, err := governor.ByName(n)
			if err != nil {
				panic(err)
			}
			if rtm, ok := g.(*core.RTM); ok {
				if err := rtm.Calibrate(trace.MaxPerFrame()); err != nil {
					panic(err)
				}
			}
			return sim.Config{Trace: trace, Governor: g, Seed: *seed}
		}})
	}

	results := sim.RunAll(jobs)
	oracleEnergy := results[0].EnergyJ

	fmt.Printf("workload %s: %d frames @ %.0f fps\n\n", trace.Name, trace.Len(), trace.FPS())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "governor\tnorm energy\tnorm perf\tmisses\tmean W\tconverged@")
	for _, r := range results {
		conv := "-"
		if r.ConvergedAt >= 0 {
			conv = fmt.Sprintf("%d", r.ConvergedAt)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f%%\t%.2f\t%s\n",
			r.Governor, r.EnergyJ/oracleEnergy, r.NormPerf, r.MissRate*100,
			r.MeanPowerW, conv)
	}
	tw.Flush()
}
