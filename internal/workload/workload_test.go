package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFrameAggregates(t *testing.T) {
	f := Frame{Cycles: []uint64{10, 30, 20}}
	if f.MaxCycles() != 30 {
		t.Errorf("MaxCycles = %d, want 30", f.MaxCycles())
	}
	if f.TotalCycles() != 60 {
		t.Errorf("TotalCycles = %d, want 60", f.TotalCycles())
	}
	var empty Frame
	if empty.MaxCycles() != 0 || empty.TotalCycles() != 0 {
		t.Error("empty frame aggregates must be zero")
	}
}

func TestTraceBasics(t *testing.T) {
	tr := Trace{
		Name:     "t",
		RefTimeS: 0.040,
		Frames: []Frame{
			{Cycles: []uint64{10e6, 20e6}},
			{Cycles: []uint64{30e6, 5e6, 1e6}},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Threads() != 3 {
		t.Errorf("Threads = %d, want 3", tr.Threads())
	}
	if got := tr.FPS(); math.Abs(got-25) > 1e-12 {
		t.Errorf("FPS = %v, want 25", got)
	}
	if tr.TotalCycles() != 66e6 {
		t.Errorf("TotalCycles = %d", tr.TotalCycles())
	}
	mpf := tr.MaxPerFrame()
	if mpf[0] != 20e6 || mpf[1] != 30e6 {
		t.Errorf("MaxPerFrame = %v", mpf)
	}
	// 30 Mcycles in 40 ms -> 750 MHz.
	if got := tr.RequiredHz(1); math.Abs(got-750e6) > 1 {
		t.Errorf("RequiredHz = %v, want 750e6", got)
	}
}

func TestTraceValidateRejects(t *testing.T) {
	bad := []Trace{
		{Name: "no-ref", RefTimeS: 0, Frames: []Frame{{Cycles: []uint64{1}}}},
		{Name: "no-frames", RefTimeS: 0.04},
		{Name: "empty-frame", RefTimeS: 0.04, Frames: []Frame{{}}},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("Validate(%s) accepted invalid trace", tr.Name)
		}
	}
}

func TestTraceSliceClamps(t *testing.T) {
	tr := Constant("c", 25, 10, 2, 1000)
	s := tr.Slice(-5, 100)
	if s.Len() != 10 {
		t.Errorf("clamped slice Len = %d, want 10", s.Len())
	}
	s = tr.Slice(8, 4)
	if s.Len() != 0 {
		t.Errorf("inverted slice Len = %d, want 0", s.Len())
	}
	s = tr.Slice(2, 5)
	if s.Len() != 3 {
		t.Errorf("Slice(2,5) Len = %d, want 3", s.Len())
	}
}

func TestSummarizeConstantTrace(t *testing.T) {
	tr := Constant("c", 25, 100, 4, 5e6)
	st := tr.Summarize()
	if st.CVCycles != 0 {
		t.Errorf("constant trace CV = %v, want 0", st.CVCycles)
	}
	if st.MeanCycles != 5e6 {
		t.Errorf("mean = %v, want 5e6", st.MeanCycles)
	}
	if st.Frames != 100 || st.Threads != 4 {
		t.Errorf("frames/threads = %d/%d", st.Frames, st.Threads)
	}
}

func TestSyntheticShapes(t *testing.T) {
	step := Step("s", 25, 10, 1, 5, 100, 200)
	for i, f := range step.Frames {
		want := uint64(100)
		if i >= 5 {
			want = 200
		}
		if f.Cycles[0] != want {
			t.Fatalf("step frame %d = %d, want %d", i, f.Cycles[0], want)
		}
	}
	ramp := Ramp("r", 25, 11, 1, 100, 200)
	if ramp.Frames[0].Cycles[0] != 100 || ramp.Frames[10].Cycles[0] != 200 {
		t.Errorf("ramp endpoints = %d..%d", ramp.Frames[0].Cycles[0], ramp.Frames[10].Cycles[0])
	}
	sine := Sine("w", 25, 40, 1, 20, 1000, 100)
	st := sine.Summarize()
	if st.MinCycles < 899 || st.MaxCycles > 1101 {
		t.Errorf("sine range [%v, %v] outside mean±amp", st.MinCycles, st.MaxCycles)
	}
	noisy := Noisy("n", 25, 500, 2, 1e6, 0.1, 42)
	if cv := noisy.Summarize().CVCycles; cv < 0.02 || cv > 0.3 {
		t.Errorf("noisy CV = %v, want ≈0.1", cv)
	}
}

// Property: splitAcrossThreads conserves total work (within rounding) and
// never produces a zero-cycle thread.
func TestSplitConservationProperty(t *testing.T) {
	f := func(seed int64, rawTotal uint32, rawThreads, rawCV uint8) bool {
		total := float64(rawTotal%100e6) + 1000
		threads := int(rawThreads%8) + 1
		cv := float64(rawCV%50) / 100
		rng := newTestRNG(seed)
		out := splitAcrossThreads(rng, total, threads, cv)
		if len(out) != threads {
			return false
		}
		var sum uint64
		for _, c := range out {
			if c == 0 {
				return false
			}
			sum += c
		}
		// Rounding slack: one cycle per thread plus the enforced minimums.
		diff := math.Abs(float64(sum) - total)
		return diff <= float64(threads)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
