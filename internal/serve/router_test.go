package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"qgov/internal/governor"
	"qgov/internal/registry"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// replica is one in-process fleet member: a Server with its binary
// listener.
type replica struct {
	srv *serve.Server
	tcp *serve.TCPServer
}

// newFleet starts n replicas, every one built from the same options —
// point them at one shared checkpoint store (a common CheckpointDir, or
// a registry-backed Checkpoints) and you have the deployment shape
// hand-off relies on. It returns them with their binary addresses.
func newFleet(t testing.TB, n int, opt serve.Options) ([]*replica, []string) {
	t.Helper()
	reps := make([]*replica, n)
	addrs := make([]string, n)
	for i := range reps {
		srv := serve.New(opt)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tcp := serve.NewTCP(srv, lis)
		go func() { _ = tcp.Serve() }()
		reps[i] = &replica{srv: srv, tcp: tcp}
		addrs[i] = lis.Addr().String()
		t.Cleanup(func() {
			_ = tcp.Close()
			_ = srv.Close()
		})
	}
	return reps, addrs
}

// driveFrames advances a sim.Session up to maxFrames decisions through
// decide, recording each OPP index.
func driveFrames(s *sim.Session, maxFrames int, decide func(obs governor.Observation) (int, error)) ([]int, error) {
	var opps []int
	for n := 0; n < maxFrames && !s.Done(); n++ {
		idx, err := decide(s.Observe())
		if err != nil {
			return nil, err
		}
		opps = append(opps, idx)
		s.Step(idx)
	}
	return opps, nil
}

// TestRouterEquivalence is the acceptance test of the sharded serving
// stack: an identical session set, driven once through a 3-replica
// router (binary transport end to end) and once through one flat
// server (the HTTP oracle), must produce byte-identical per-session
// decision streams, physical aggregates, and frozen checkpoints —
// including across a mid-run checkpoint/restore hand-off, where one
// replica leaves the ring and its sessions move to the survivors. The
// flat server mirrors the hand-off (freeze → delete → re-create warm)
// at the same epoch boundary, so any divergence the routing layer or
// the hand-off itself introduced would surface as a decision mismatch.
func TestRouterEquivalence(t *testing.T) {
	dirFleet := t.TempDir()
	runRouterFlatEquivalence(t, serve.Options{CheckpointDir: dirFleet}, serve.RouterOptions{}, func(id string) ([]byte, error) {
		return os.ReadFile(dirFleet + "/" + id + ".state")
	})
}

// TestRouterEquivalencePipelinedMultiConn re-runs the router-vs-flat
// suite with the relay's concurrency knobs turned up: two connections
// per replica (batches stripe across them) and an explicit pipeline
// depth, so several relayed batches ride each replica connection at
// once. The byte-identical contract must survive both — under -race
// this is the pipelined relay's equivalence test.
func TestRouterEquivalencePipelinedMultiConn(t *testing.T) {
	dirFleet := t.TempDir()
	runRouterFlatEquivalence(t, serve.Options{CheckpointDir: dirFleet},
		serve.RouterOptions{ConnsPerReplica: 2, PipelineDepth: 4},
		func(id string) ([]byte, error) {
			return os.ReadFile(dirFleet + "/" + id + ".state")
		})
}

// TestRouterEquivalenceLegacyRelay keeps the legacy blocking relay (the
// -pipeline-depth<0 escape hatch and the benchmark baseline) honest
// against the same contract.
func TestRouterEquivalenceLegacyRelay(t *testing.T) {
	dirFleet := t.TempDir()
	runRouterFlatEquivalence(t, serve.Options{CheckpointDir: dirFleet},
		serve.RouterOptions{LegacyRelay: true},
		func(id string) ([]byte, error) {
			return os.ReadFile(dirFleet + "/" + id + ".state")
		})
}

// TestRouterHandoffThroughRegistry re-runs the router-vs-flat suite with
// the fleet's checkpoints living in the content-addressed registry's
// blob store instead of a shared directory — the deployment where
// replicas on different machines share an object store. The same
// contract must hold: byte-identical decision streams and checkpoints,
// including across a RemoveReplica hand-off whose freeze/restore now
// travels through the registry-backed CheckpointStore.
func TestRouterHandoffThroughRegistry(t *testing.T) {
	blobs := registry.NewMem()
	runRouterFlatEquivalence(t, serve.Options{
		Checkpoints: registry.Checkpoints(blobs),
		Registry:    registry.New(blobs),
	}, serve.RouterOptions{}, registry.Checkpoints(blobs).Load)
}

// runRouterFlatEquivalence drives the shared equivalence scenario; the
// fleet's checkpoint placement is the caller's (a shared directory, the
// registry) and loadFleetCkpt reads one session's frozen fleet state
// back for the byte comparison.
func runRouterFlatEquivalence(t *testing.T, fleetOpt serve.Options, rtOpt serve.RouterOptions, loadFleetCkpt func(id string) ([]byte, error)) {
	const (
		scn      = "rtm/mpeg4-30fps/a15"
		frames   = 120
		handoff  = 60 // epoch boundary where the fleet shrinks
		sessions = 9
		replicas = 3
	)
	dirFlat := t.TempDir()
	flat := newTestServer(t, serve.Options{CheckpointDir: dirFlat})
	fleet, addrs := newFleet(t, replicas, fleetOpt)

	rt, err := serve.NewRouter(addrs, rtOpt)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtHTTP := httptest.NewServer(rt.Handler())
	defer rtHTTP.Close()

	rtLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rtTCP := serve.NewRouterTCP(rt, rtLis)
	go func() { _ = rtTCP.Serve() }()
	defer rtTCP.Close()

	cl, err := client.Dial(rtLis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Create the same sessions on both sides; remember the create params
	// for the flat side's hand-off mirror.
	type lane struct {
		id     string
		seed   int64
		create map[string]any
	}
	lanes := make([]lane, sessions)
	owners := map[string][]string{} // replica addr → session ids
	for i := range lanes {
		id := fmt.Sprintf("eq-%d", i)
		seed := int64(i + 1)
		tr := workload.MPEG4At30(seed, frames)
		create := map[string]any{
			"id":             id,
			"governor":       "rtm",
			"period_s":       tr.RefTimeS,
			"seed":           seed,
			"calibration_cc": tr.MaxPerFrame(),
		}
		lanes[i] = lane{id: id, seed: seed, create: create}
		if st := flat.post("/v1/sessions", create, nil); st != http.StatusCreated {
			t.Fatalf("create %s on flat server returned %d", id, st)
		}
		raw, err := json.Marshal(create)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := rtHTTP.Client().Post(rtHTTP.URL+"/v1/sessions", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s through router returned %d", id, resp.StatusCode)
		}
		owner, ok := rt.Owner(id)
		if !ok {
			t.Fatalf("router has no owner for %s", id)
		}
		owners[owner] = append(owners[owner], id)
	}

	// Pick the leaving replica: one that owns at least one session, so
	// the hand-off genuinely moves learnt state.
	var leaving string
	for _, addr := range addrs {
		if len(owners[addr]) > 0 {
			leaving = addr
			break
		}
	}
	if leaving == "" {
		t.Fatal("no replica owns any session")
	}

	type side struct {
		sim  *sim.Session
		opps []int
	}
	flatSide := make([]side, sessions)
	routedSide := make([]side, sessions)
	for i, l := range lanes {
		flatSide[i] = side{sim: sim.NewSession(scenarioConfig(t, scn, l.seed, frames))}
		routedSide[i] = side{sim: sim.NewSession(scenarioConfig(t, scn, l.seed, frames))}
	}

	// drivePhase advances every session maxFrames decisions on both
	// sides, concurrently across sessions (the routed side shares one
	// multiplexed client — under -race this is the routing layer's
	// concurrency test).
	drivePhase := func(maxFrames int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, 2*sessions)
		for i := range lanes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				l := lanes[i]
				opps, err := driveFrames(flatSide[i].sim, maxFrames, func(obs governor.Observation) (int, error) {
					var resp struct {
						Decisions []decision `json:"decisions"`
					}
					if st := flat.post("/v1/decide", map[string]any{
						"requests": []decideItem{{Session: l.id, Obs: obsFromGov(obs)}},
					}, &resp); st != http.StatusOK {
						return -1, fmt.Errorf("flat decide returned %d", st)
					}
					if len(resp.Decisions) != 1 || resp.Decisions[0].Error != "" {
						return -1, fmt.Errorf("flat decide: %+v", resp.Decisions)
					}
					return resp.Decisions[0].OPPIdx, nil
				})
				if err != nil {
					errs <- fmt.Errorf("%s flat: %w", l.id, err)
					return
				}
				flatSide[i].opps = append(flatSide[i].opps, opps...)

				opps, err = driveFrames(routedSide[i].sim, maxFrames, func(obs governor.Observation) (int, error) {
					d, err := cl.Decide(l.id, obs)
					if err != nil {
						return -1, err
					}
					if d.Err != "" {
						return -1, fmt.Errorf("routed decide: %s", d.Err)
					}
					return d.OPPIdx, nil
				})
				if err != nil {
					errs <- fmt.Errorf("%s routed: %w", l.id, err)
					return
				}
				routedSide[i].opps = append(routedSide[i].opps, opps...)
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	drivePhase(handoff)

	// Shrink the fleet: the leaving replica's sessions hand off by
	// checkpoint/restore to their new ring placements.
	moved, err := rt.RemoveReplica(leaving)
	if err != nil {
		t.Fatalf("RemoveReplica(%s): %v", leaving, err)
	}
	if len(moved) == 0 {
		t.Fatal("hand-off moved no sessions; the test would not exercise checkpoint/restore")
	}
	wantMoved := map[string]bool{}
	for _, id := range owners[leaving] {
		wantMoved[id] = true
	}
	if len(moved) != len(wantMoved) {
		t.Fatalf("moved %v, want exactly the leaver's sessions %v", moved, owners[leaving])
	}
	for _, id := range moved {
		if !wantMoved[id] {
			t.Fatalf("session %s moved but was not owned by %s", id, leaving)
		}
		if owner, _ := rt.Owner(id); owner == leaving {
			t.Fatalf("session %s still placed on the departed replica", id)
		}
	}

	// Mirror the hand-off on the flat server at the same epoch boundary:
	// freeze → delete → re-create warm from the frozen state.
	for i, l := range lanes {
		if !wantMoved[l.id] {
			continue
		}
		var ck struct {
			State json.RawMessage `json:"state"`
		}
		if st := flat.post("/v1/sessions/"+l.id+"/checkpoint", map[string]any{}, &ck); st != http.StatusOK {
			t.Fatalf("flat checkpoint of %s returned %d", l.id, st)
		}
		req, _ := http.NewRequest(http.MethodDelete, flat.ts.URL+"/v1/sessions/"+l.id, nil)
		resp, err := flat.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("flat delete of %s returned %d", l.id, resp.StatusCode)
		}
		recreate := map[string]any{
			"id":       l.id,
			"governor": "rtm",
			"period_s": l.create["period_s"],
			"seed":     l.seed,
			"state":    ck.State,
		}
		if st := flat.post("/v1/sessions", recreate, nil); st != http.StatusCreated {
			t.Fatalf("flat re-create of %s returned %d", l.id, st)
		}
		_ = i
	}

	drivePhase(frames - handoff)

	// Byte-identical decision streams and physical aggregates.
	for i, l := range lanes {
		f, r := flatSide[i], routedSide[i]
		if len(f.opps) != frames || len(r.opps) != frames {
			t.Fatalf("%s: %d flat / %d routed decisions, want %d", l.id, len(f.opps), len(r.opps), frames)
		}
		for k := range f.opps {
			if f.opps[k] != r.opps[k] {
				t.Fatalf("%s: decision %d is %d flat, %d routed (moved=%v)", l.id, k, f.opps[k], r.opps[k], wantMoved[l.id])
			}
		}
		if phys(f.sim.Result()) != phys(r.sim.Result()) {
			t.Errorf("%s: physical aggregates diverged", l.id)
		}
	}

	// Identical learning implies byte-identical frozen state, flat vs
	// fleet, for every session — including the moved ones.
	if _, err := flat.srv.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	for _, rep := range fleet {
		if _, err := rep.srv.CheckpointAll(); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range lanes {
		a, err := os.ReadFile(dirFlat + "/" + l.id + ".state")
		if err != nil {
			t.Fatalf("flat checkpoint for %s: %v", l.id, err)
		}
		b, err := loadFleetCkpt(l.id)
		if err != nil {
			t.Fatalf("fleet checkpoint for %s: %v", l.id, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: checkpoints differ flat vs fleet (%d vs %d bytes, moved=%v)",
				l.id, len(a), len(b), wantMoved[l.id])
		}
	}

	// The router's aggregated views cover the whole fleet.
	var health struct {
		Sessions int `json:"sessions"`
		Replicas int `json:"replicas"`
	}
	resp, err := rtHTTP.Client().Get(rtHTTP.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Sessions != sessions || health.Replicas != replicas-1 {
		t.Errorf("router healthz: %+v, want %d sessions on %d replicas", health, sessions, replicas-1)
	}
	var metrics struct {
		Sessions map[string]json.RawMessage `json:"sessions"`
	}
	resp, err = rtHTTP.Client().Get(rtHTTP.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(metrics.Sessions) != sessions {
		t.Errorf("router metrics aggregates %d sessions, want %d", len(metrics.Sessions), sessions)
	}
}

// obsFromGov mirrors a governor.Observation into the JSON wire shape.
func obsFromGov(o governor.Observation) obsJSON {
	return obsJSON{
		Epoch:     o.Epoch,
		Cycles:    o.Cycles,
		Util:      o.Util,
		ExecTimeS: o.ExecTimeS,
		PeriodS:   o.PeriodS,
		WallTimeS: o.WallTimeS,
		PowerW:    o.PowerW,
		TempC:     o.TempC,
		OPPIdx:    o.OPPIdx,
	}
}

// BenchmarkRoutedDecideThroughput measures the sharded serving stack
// end to end — router binary listener, consistent-hash fan-out, one
// multiplexed connection per replica, replica-side batching — as
// decisions/second over 256 sessions spread across 2–4 in-process
// replicas. Several batches stay in flight concurrently (as a fleet of
// controllers would keep them), so the replicas' governor work runs in
// parallel and throughput scales with the replica count up to the
// machine's core budget — near-linear on multi-core CI hardware, flat
// on one core where in-process replicas share the clock. BENCH_4.json
// records it in CI.
func BenchmarkRoutedDecideThroughput(b *testing.B) {
	for _, replicas := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			// Two connections per replica plus the default pipeline depth:
			// the configuration the relay rework targets.
			benchRoutedDecide(b, replicas, serve.RouterOptions{ConnsPerReplica: 2})
		})
	}
}

// BenchmarkRoutedLegacyDecideThroughput is the same load through the
// legacy blocking relay (decode, re-encode, one batch in flight per
// connection) — the baseline the pipelined numbers in BENCH_7.json are
// read against.
func BenchmarkRoutedLegacyDecideThroughput(b *testing.B) {
	for _, replicas := range []int{2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			benchRoutedDecide(b, replicas, serve.RouterOptions{LegacyRelay: true})
		})
	}
}

func benchRoutedDecide(b *testing.B, replicas int, rtOpt serve.RouterOptions) {
	const sessions = 256
	_, addrs := newFleet(b, replicas, serve.Options{})

	rt, err := serve.NewRouter(addrs, rtOpt)
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	rtTCP := serve.NewRouterTCP(rt, lis)
	go func() { _ = rtTCP.Serve() }()
	defer rtTCP.Close()

	cl, err := client.Dial(lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	ids := make([]string, sessions)
	obs := make([]governor.Observation, sessions)
	out := make([]client.Decision, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("rb-%d", i)
		obs[i] = steadyObs()
		body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, ids[i], i+1)
		if st, resp, err := cl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
			b.Fatalf("create %s: status %d err %v (%s)", ids[i], st, err, resp)
		}
	}

	check := func() {
		if err := cl.DecideBatch(ids, obs, out); err != nil {
			b.Fatal(err)
		}
		for _, d := range out {
			if d.Err != "" {
				b.Fatal(d.Err)
			}
		}
	}
	check() // warm the path before timing

	// Keep 2 batches per replica in flight: each lane owns a
	// session slice and pipelines its own DecideBatch loop.
	lanes := 2 * replicas
	per := sessions / lanes
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, lanes)
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			lo, hi := l*per, (l+1)*per
			if l == lanes-1 {
				hi = sessions
			}
			lout := make([]client.Decision, hi-lo)
			for i := 0; i < b.N; i++ {
				if err := cl.DecideBatch(ids[lo:hi], obs[lo:hi], lout); err != nil {
					errs <- err
					return
				}
			}
		}(l)
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	check()
	total := float64(sessions) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "decisions/s")
	b.ReportMetric(float64(replicas), "replicas")
}
