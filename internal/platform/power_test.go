package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelsValid(t *testing.T) {
	if err := DefaultA15PowerModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultA7PowerModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerCalibrationAnchors(t *testing.T) {
	m := DefaultA15PowerModel()
	table := A15Table()
	// Near-peak power of the XU3 A15 cluster is ~5.5-6.5 W.
	peak := m.ClusterPowerW(table[table.MaxIdx()], 4, 65)
	if peak < 4.5 || peak > 7.5 {
		t.Errorf("peak cluster power = %.2f W, want ≈ 6 W", peak)
	}
	// Bottom of the range should be a few hundred mW.
	low := m.ClusterPowerW(table[0], 4, 40)
	if low < 0.05 || low > 1.0 {
		t.Errorf("200 MHz cluster power = %.3f W, want a few hundred mW", low)
	}
	// A7 must be markedly more efficient than A15 at its own peak.
	a7 := DefaultA7PowerModel()
	a7peak := a7.ClusterPowerW(A7Table()[len(A7Table())-1], 4, 65)
	if a7peak >= peak/2 {
		t.Errorf("A7 peak %.2f W not well below A15 peak %.2f W", a7peak, peak)
	}
}

func TestClusterPowerMonotoneInActiveCores(t *testing.T) {
	m := DefaultA15PowerModel()
	opp := A15Table()[10]
	prev := -1.0
	for n := 0; n <= 4; n++ {
		p := m.ClusterPowerW(opp, n, 50)
		if p <= prev {
			t.Fatalf("power not increasing with active cores: %d -> %.3f after %.3f", n, p, prev)
		}
		prev = p
	}
}

func TestClusterPowerClampsActiveCores(t *testing.T) {
	m := DefaultA15PowerModel()
	opp := A15Table()[5]
	if got, want := m.ClusterPowerW(opp, -2, 50), m.ClusterPowerW(opp, 0, 50); got != want {
		t.Errorf("negative cores not clamped: %v vs %v", got, want)
	}
	if got, want := m.ClusterPowerW(opp, 99, 50), m.ClusterPowerW(opp, 4, 50); got != want {
		t.Errorf("excess cores not clamped: %v vs %v", got, want)
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	m := DefaultA15PowerModel()
	opp := A15Table()[18]
	cold := m.CoreLeakageW(opp, 25)
	hot := m.CoreLeakageW(opp, 85)
	if hot <= cold {
		t.Fatalf("leakage at 85C (%.3f) not above 25C (%.3f)", hot, cold)
	}
	// 60 degrees at kT=0.016 is e^0.96 ≈ 2.6x.
	if ratio := hot / cold; ratio < 1.5 || ratio > 5 {
		t.Errorf("leakage ratio over 60°C = %.2f, want 1.5..5", ratio)
	}
}

func TestEnergyJ(t *testing.T) {
	if got := EnergyJ(2.5, 4); got != 10 {
		t.Fatalf("EnergyJ = %v, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnergyJ must panic on negative duration")
		}
	}()
	EnergyJ(1, -1)
}

// Property: cluster power is strictly increasing in OPP index (both f and V
// rise along the A15 ladder) at any temperature in a sane range and any
// active-core count.
func TestPowerMonotoneInOPPProperty(t *testing.T) {
	m := DefaultA15PowerModel()
	table := A15Table()
	f := func(rawIdx uint8, rawCores uint8, rawTemp uint8) bool {
		idx := int(rawIdx) % (table.Len() - 1) // compare idx and idx+1
		cores := int(rawCores) % 5
		temp := 25 + float64(rawTemp%70)
		lo := m.ClusterPowerW(table[idx], cores, temp)
		hi := m.ClusterPowerW(table[idx+1], cores, temp)
		return hi > lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: with leakage disabled, energy per fixed amount of work is
// non-decreasing in the OPP index — dynamic energy per cycle is C·V² and V
// is non-decreasing along the ladder. (With leakage on the curve is
// U-shaped; see TestEnergyPerWorkUShaped.)
func TestEnergyPerWorkMonotoneWithoutLeakageProperty(t *testing.T) {
	m := DefaultA15PowerModel()
	m.LeakI0A = 0
	table := A15Table()
	const cycles = 40e6
	f := func(rawIdx uint8) bool {
		idx := int(rawIdx) % (table.Len() - 1)
		energy := func(i int) float64 {
			tExec := cycles / table[i].FreqHz()
			return m.ClusterPowerW(table[i], 4, 50) * tExec
		}
		return energy(idx+1) >= energy(idx)*(1-1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// With leakage on, the active energy for a fixed amount of work is U-shaped
// in frequency: crawling burns leakage over a long time, sprinting burns
// V² dynamic energy. Published ODROID-XU3 A15 measurements put the
// energy-optimal frequency mid-table (≈800–1400 MHz); the default model
// must reproduce an interior minimum.
func TestEnergyPerWorkUShaped(t *testing.T) {
	m := DefaultA15PowerModel()
	table := A15Table()
	const cycles = 40e6
	energy := func(i int) float64 {
		tExec := cycles / table[i].FreqHz()
		return m.ClusterPowerW(table[i], 4, 50) * tExec
	}
	best := 0
	for i := 1; i < table.Len(); i++ {
		if energy(i) < energy(best) {
			best = i
		}
	}
	if best == 0 || best == table.MaxIdx() {
		t.Fatalf("energy minimum at boundary index %d (%v); want interior", best, table[best])
	}
	if mhz := table[best].FreqMHz; mhz < 400 || mhz > 1500 {
		t.Errorf("energy-optimal point %d MHz outside the plausible 400..1500 band", mhz)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []PowerModel{
		{CeffCoreF: 0, NumCores: 4},
		{CeffCoreF: 1e-9, CeffUncoreF: -1, NumCores: 4},
		{CeffCoreF: 1e-9, ClockGateFrac: 2, NumCores: 4},
		{CeffCoreF: 1e-9, LeakI0A: -1, NumCores: 4},
		{CeffCoreF: 1e-9, NumCores: 0},
		{CeffCoreF: 1e-9, NumCores: 4, UncoreIdx: 1.5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid model %+v", i, b)
		}
	}
}

func TestIdleBelowActive(t *testing.T) {
	m := DefaultA15PowerModel()
	for _, opp := range A15Table() {
		idle := m.IdlePowerW(opp, 50)
		act := m.ClusterPowerW(opp, 4, 50)
		if !(idle < act) {
			t.Fatalf("idle %.3f not below active %.3f at %v", idle, act, opp)
		}
		if idle <= 0 || math.IsNaN(idle) {
			t.Fatalf("idle power %.3f invalid at %v", idle, opp)
		}
	}
}
