package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden table files")

// The golden tests lock the rendered Table I–III output — including the
// paper's reported rows, the layout, and the measured values at a fixed
// reduced scale — against accidental drift. The simulation is fully
// deterministic for a (seeds, frames) choice, so any diff here is a real
// behavioural change: either intended (re-run with -update and justify the
// new numbers in the commit) or a regression this test just caught.
//
//	go test ./internal/experiments -run TestGolden -update

var goldenSeeds = DefaultSeeds[:2]

func goldenCompare(t *testing.T, name string, render func(w *bytes.Buffer) error) {
	t.Helper()
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("%s drifted from golden file.\n--- want\n%s\n--- got\n%s\nRe-run with -update if the change is intended.",
			name, want, buf.Bytes())
	}
}

func TestGoldenTableI(t *testing.T) {
	res := TableI(goldenSeeds, 600)
	goldenCompare(t, "table1", func(w *bytes.Buffer) error { return res.Render(w) })
}

func TestGoldenTableII(t *testing.T) {
	res := TableII(goldenSeeds, 500)
	goldenCompare(t, "table2", func(w *bytes.Buffer) error { return res.Render(w) })
}

func TestGoldenTableIII(t *testing.T) {
	res := TableIII(goldenSeeds, 800)
	goldenCompare(t, "table3", func(w *bytes.Buffer) error { return res.Render(w) })
}

// The paper's reported numbers inside the rendered tables must never move
// at all — they are constants from the publication, not measurements. This
// guards the golden files' most load-bearing columns independently, so an
// -update cannot silently rewrite the paper.
func TestPaperConstantsPinned(t *testing.T) {
	t1 := TableI(goldenSeeds, 100)
	for method, want := range map[string][2]float64{
		"oracle": {1.00, 0}, "ondemand": {1.29, 0.77}, "mldtm": {1.20, 0.89}, "rtm": {1.11, 0.96},
	} {
		row := t1.Row(method)
		if row == nil {
			t.Fatalf("Table I lost the %s row", method)
		}
		if row.PaperE != want[0] || row.PaperP != want[1] {
			t.Errorf("Table I %s paper constants moved: %v/%v", method, row.PaperE, row.PaperP)
		}
	}

	t2 := TableII(goldenSeeds, 100)
	for app, want := range map[string][2]int{
		"mpeg4-30fps": {144, 83}, "h264-15fps": {149, 90}, "fft-32fps": {119, 74},
	} {
		row := t2.Row(app)
		if row == nil {
			t.Fatalf("Table II lost the %s row", app)
		}
		if row.PaperUPD != want[0] || row.PaperEPD != want[1] {
			t.Errorf("Table II %s paper constants moved: %d/%d", app, row.PaperUPD, row.PaperEPD)
		}
	}

	t3 := TableIII(goldenSeeds, 100)
	for method, want := range map[string]int{"mldtm": 205, "rtm": 105} {
		row := t3.Row(method)
		if row == nil {
			t.Fatalf("Table III lost the %s row", method)
		}
		if row.PaperValue != want {
			t.Errorf("Table III %s paper constant moved: %d", method, row.PaperValue)
		}
	}
}
