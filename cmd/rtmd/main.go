// Command rtmd serves governor decisions online: the run-time manager as
// a daemon instead of a closed simulation loop. Each controlled cluster
// creates a session (its own governor instance and learning state) and
// posts one observation per decision epoch to the batched /v1/decide
// endpoint, receiving the operating-point index to apply next — the
// deployment direction of Kim et al. (arXiv:1712.00076): take the learnt
// manager out of the simulator and put it behind the OS.
//
// Usage:
//
//	rtmd -addr :8090
//	rtmd -addr :8090 -listen-tcp :8091
//	rtmd -addr :8090 -checkpoint-dir /var/lib/rtmd -checkpoint-every 30s
//
//	curl -s localhost:8090/v1/sessions -d '{"id":"cluster0","governor":"rtm","seed":1}'
//	curl -s localhost:8090/v1/decide -d '{"requests":[{"session":"cluster0","obs":{"epoch":-1}}]}'
//
// -listen-tcp additionally serves the binary wire protocol (see
// internal/wire and the README's "Wire protocol" section) on persistent
// multiplexed connections — the transport fast path, several times the
// decisions/s of the JSON endpoint. HTTP stays up alongside it as the
// control plane (sessions are created and checkpointed over JSON) and as
// the differential-testing oracle for the binary path.
//
// Learning state is checkpointed periodically and on graceful shutdown
// (SIGINT/SIGTERM) — both listeners drain before the final freeze — and
// a restarted rtmd warm-starts every session that is re-created under
// its old id.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"qgov/internal/serve"

	// Register the RTM variants with the governor registry.
	_ "qgov/internal/core"
)

func main() {
	var (
		addr       = flag.String("addr", ":8090", "HTTP listen address (control plane + JSON decide)")
		tcpAddr    = flag.String("listen-tcp", "", "binary wire-protocol listen address (empty: HTTP only)")
		platform   = flag.String("platform", "a15", "default platform variant for new sessions")
		periodS    = flag.Float64("period", 0.040, "default decision-epoch deadline Tref in seconds")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for session learning-state checkpoints (empty: no persistence)")
		ckptEvery  = flag.Duration("checkpoint-every", 30*time.Second, "period of the background checkpoint sweep")
		drainGrace = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		quiet      = flag.Bool("quiet", false, "suppress operational logging")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
	}

	srv := serve.New(serve.Options{
		DefaultPlatform: *platform,
		DefaultPeriodS:  *periodS,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Logf:            logf,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	var tcpSrv *serve.TCPServer
	if *tcpAddr != "" {
		lis, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatal(err)
		}
		tcpSrv = serve.NewTCP(srv, lis)
		go func() {
			// An accept error ends the binary listener but must not kill
			// the process: HTTP keeps serving and, crucially, the final
			// checkpoint still runs on shutdown.
			if err := tcpSrv.Serve(); err != nil {
				logf("rtmd: binary transport down: %v", err)
			}
		}()
		logf("rtmd: binary transport on %s", lis.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		logf("rtmd: shutting down (draining for up to %v)", *drainGrace)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		// Drain both transports in parallel within the same grace window.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := hs.Shutdown(drainCtx); err != nil {
				logf("rtmd: http drain: %v", err)
			}
		}()
		if tcpSrv != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := tcpSrv.Shutdown(drainCtx); err != nil {
					logf("rtmd: tcp drain: %v", err)
				}
			}()
		}
		wg.Wait()
	}()

	logf("rtmd: serving on %s (default platform %s, Tref %gs)", *addr, *platform, *periodS)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	// ListenAndServe returns the moment Shutdown begins; wait for both
	// transports to finish draining before the final checkpoint, so no
	// in-flight decision can land between the freeze and exit.
	<-drained
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmd:", err)
	os.Exit(1)
}
