package core

import (
	"fmt"
	"qgov/internal/governor"
	"qgov/internal/predictor"
	"qgov/internal/xrand"
)

// The paper closes with: "Our future work is investigating how to extend
// this approach to manage the energy consumption of multiple concurrently
// executing applications." MultiRTM is that extension, built from the same
// parts as the single-application RTM:
//
//   - each application keeps its own EWMA workload predictor and its own
//     average-slack tracker (per-app Tref can differ);
//   - the Q-table state combines the *binding* application's predicted
//     workload level with the *minimum* slack level across applications —
//     the cluster has one V-F lever, so the application closest to missing
//     its deadline is the one the action must serve;
//   - the reward is the *binding* application's pay-off (Eq. 4 evaluated
//     for the app with the least slack). Scoring the loose applications'
//     inevitable surplus slack would punish every feasible operating
//     point — with one V-F lever their slack cannot be traded away — and
//     push all Q-values below the initial value, so nothing would ever
//     look learnt. An application about to miss its deadline has the
//     least slack and therefore *is* the binding one, so no deadline is
//     ever sacrificed by this choice.
//
// MultiRTM does not implement governor.Governor — it needs per-application
// observations the single-app engine cannot provide — so the multi-app
// experiment drives it through DecideMulti.
type MultiRTM struct {
	cfg   Config
	space *StateSpace

	table    *QTable
	greedy   []int // sticky greedy choice per state
	rng      *xrand.Rand
	preds    []*predictor.EWMA // one per application (critical thread)
	slacks   []*SlackTracker
	tracker  *governor.ConvergenceTracker
	normFreq []float64
	nApps    int

	prevState    int
	prevAction   int
	epoch        int
	explorations int
	calibrated   bool
	ccSeen       bool
}

// AppObservation reports one application's share of a completed epoch.
type AppObservation struct {
	// ExecTimeS is the completion time of this application's slowest
	// thread, including the epoch's management overhead.
	ExecTimeS float64
	// PeriodS is this application's own deadline Tref.
	PeriodS float64
	// CriticalCycles is the largest per-thread cycle demand this
	// application exercised during the epoch.
	CriticalCycles uint64
}

// MultiObservation reports a completed epoch for all applications.
type MultiObservation struct {
	Epoch int
	Apps  []AppObservation
}

// NewMultiRTM builds the controller for nApps concurrently executing
// applications.
func NewMultiRTM(cfg Config, nApps int) *MultiRTM {
	if nApps < 1 {
		panic(fmt.Sprintf("core: MultiRTM needs at least one app, got %d", nApps))
	}
	if cfg.Reward == nil || cfg.Policy == nil || cfg.Epsilon == nil {
		panic("core: MultiRTM config missing Reward/Policy/Epsilon (use DefaultConfig)")
	}
	return &MultiRTM{cfg: cfg, space: NewStateSpace(cfg.Levels), nApps: nApps}
}

// Calibrate sets the workload range from the concatenated
// pre-characterisation series of all applications' critical-path demands.
func (m *MultiRTM) Calibrate(cycleCounts []float64) error {
	if err := m.space.Calibrate(cycleCounts); err != nil {
		return err
	}
	m.calibrated = true
	return nil
}

// Reset prepares the controller for a run on the given platform context.
func (m *MultiRTM) Reset(ctx governor.Context) {
	m.rng = xrand.New(ctx.Seed)
	m.table = NewQTable(m.space.NumStates(), ctx.Table.Len(), m.cfg.InitQ)
	m.greedy = make([]int, m.space.NumStates())
	m.preds = make([]*predictor.EWMA, m.nApps)
	m.slacks = make([]*SlackTracker, m.nApps)
	for i := 0; i < m.nApps; i++ {
		m.preds[i] = predictor.NewEWMA(m.cfg.EWMAGamma)
		m.slacks[i] = NewSlackTracker(m.cfg.SlackWindow)
	}
	m.cfg.Epsilon.Reset()
	m.tracker = governor.NewConvergenceTracker(m.cfg.StableEpochs)
	if ctx.NormFreq != nil {
		m.normFreq = ctx.NormFreq // shared read-only precompute
	} else {
		m.normFreq = ctx.Table.NormFreqs()
	}
	m.prevState = 0
	m.prevAction = 0
	m.epoch = 0
	m.explorations = 0
	m.ccSeen = false
}

// DecisionOverheadS mirrors the single-app RTM's per-epoch cost; tracking
// several applications samples more counters, so the cost scales mildly
// with the app count.
func (m *MultiRTM) DecisionOverheadS() float64 {
	return m.cfg.OverheadS * (1 + 0.25*float64(m.nApps-1))
}

// Explorations implements governor.LearningStats.
func (m *MultiRTM) Explorations() int { return m.explorations }

// ConvergedAtEpoch implements governor.LearningStats.
func (m *MultiRTM) ConvergedAtEpoch() int { return m.tracker.ConvergedAt() }

// SlackL returns application a's current average slack ratio.
func (m *MultiRTM) SlackL(a int) float64 { return m.slacks[a].L() }

// DecideMulti selects the cluster operating point for the next epoch given
// the per-application observations of the previous one. obs.Epoch == -1
// starts the run.
func (m *MultiRTM) DecideMulti(obs MultiObservation) int {
	if obs.Epoch < 0 {
		m.prevAction = 0
		return 0
	}
	if len(obs.Apps) != m.nApps {
		panic(fmt.Sprintf("core: MultiRTM configured for %d apps, observed %d", m.nApps, len(obs.Apps)))
	}

	// Update every application's slack tracker and predictor; the app
	// with the least instantaneous slack is the binding one this epoch.
	minSlack := 0.0
	binding := 0
	for i, app := range obs.Apps {
		m.slacks[i].Observe(app.ExecTimeS, app.PeriodS)
		inst := m.slacks[i].LastRatio()
		if i == 0 || inst < minSlack {
			minSlack = inst
			binding = i
		}
		m.preds[i].Observe(float64(app.CriticalCycles))
	}
	reward := m.cfg.Reward.Score(
		m.slacks[binding].L(), m.slacks[binding].DeltaL(), m.slacks[binding].LastRatio())
	m.autoRange(obs)

	next := m.space.StateOf(m.preds[binding].Predict(), minSlack)
	alpha := m.cfg.Alpha
	if m.cfg.AlphaDecayK > 0 {
		v := float64(m.table.Visits(m.prevState, m.prevAction))
		alpha = m.cfg.Alpha * m.cfg.AlphaDecayK / (m.cfg.AlphaDecayK + v)
	}
	m.table.Update(m.prevState, m.prevAction, reward, next, alpha, m.cfg.Discount)
	m.greedy[m.prevState] = m.table.BestActionSticky(m.prevState, m.greedy[m.prevState], m.cfg.GreedyMargin)
	m.prevState = next

	var action int
	if m.rng.Float64() < m.cfg.Epsilon.Epsilon() {
		action = m.cfg.Policy.Sample(m.rng, m.table.Actions(), minSlack, m.normFreq)
		m.explorations++
	} else {
		action = m.greedy[next]
	}

	// ε advances on the binding app's distance from the target: until the
	// worst-off application is stable, keep exploring.
	m.tracker.Observe(m.table.GreedyPolicy())
	m.cfg.Epsilon.Advance(m.slacks[binding].L()-m.cfg.Reward.Target, m.tracker.Quiet())
	m.epoch++
	m.prevAction = action
	return action
}

func (m *MultiRTM) autoRange(obs MultiObservation) {
	if m.calibrated {
		return
	}
	var maxCC float64
	for _, app := range obs.Apps {
		if cc := float64(app.CriticalCycles); cc > maxCC {
			maxCC = cc
		}
	}
	if maxCC <= 0 {
		return
	}
	if !m.ccSeen {
		m.space.CCMin, m.space.CCMax = maxCC*0.5, maxCC*1.5
		m.ccSeen = true
		return
	}
	if maxCC < m.space.CCMin {
		m.space.CCMin = maxCC * 0.95
	}
	if maxCC > m.space.CCMax {
		m.space.CCMax = maxCC * 1.05
	}
}
