package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"qgov/internal/scenario"
	"qgov/internal/serve"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// --- HTTP test harness ------------------------------------------------------

type testServer struct {
	t   *testing.T
	srv *serve.Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, opt serve.Options) *testServer {
	t.Helper()
	srv := serve.New(opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return &testServer{t: t, srv: srv, ts: ts}
}

// post sends a JSON body and decodes the JSON response into out (which
// may be nil). It returns the HTTP status.
func (h *testServer) post(path string, body, out any) int {
	h.t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := h.ts.Client().Post(h.ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func (h *testServer) get(path string, out any) int {
	h.t.Helper()
	resp, err := h.ts.Client().Get(h.ts.URL + path)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

type obsJSON struct {
	Epoch     int       `json:"epoch"`
	Cycles    []uint64  `json:"cycles,omitempty"`
	Util      []float64 `json:"util,omitempty"`
	ExecTimeS float64   `json:"exec_time_s"`
	PeriodS   float64   `json:"period_s"`
	WallTimeS float64   `json:"wall_time_s"`
	PowerW    float64   `json:"power_w"`
	TempC     float64   `json:"temp_c"`
	OPPIdx    int       `json:"opp_idx"`
}

type decideItem struct {
	Session string  `json:"session"`
	Obs     obsJSON `json:"obs"`
}

type decision struct {
	Session string `json:"session"`
	OPPIdx  int    `json:"opp_idx"`
	FreqMHz int    `json:"freq_mhz"`
	Error   string `json:"error"`
}

type sessionInfo struct {
	ID           string `json:"id"`
	Epochs       int64  `json:"epochs"`
	Explorations int    `json:"explorations"`
	ConvergedAt  int    `json:"converged_at"`
}

func obsOf(s *sim.Session) obsJSON {
	o := s.Observe()
	return obsJSON{
		Epoch:     o.Epoch,
		Cycles:    o.Cycles,
		Util:      o.Util,
		ExecTimeS: o.ExecTimeS,
		PeriodS:   o.PeriodS,
		WallTimeS: o.WallTimeS,
		PowerW:    o.PowerW,
		TempC:     o.TempC,
		OPPIdx:    o.OPPIdx,
	}
}

// driveOne runs one sim.Session to completion with every decision served
// over HTTP, one session per batch.
func (h *testServer) driveOne(id string, s *sim.Session) *sim.Result {
	h.t.Helper()
	for !s.Done() {
		var resp struct {
			Decisions []decision `json:"decisions"`
		}
		if st := h.post("/v1/decide", map[string]any{
			"requests": []decideItem{{Session: id, Obs: obsOf(s)}},
		}, &resp); st != http.StatusOK {
			h.t.Fatalf("decide returned %d", st)
		}
		if len(resp.Decisions) != 1 || resp.Decisions[0].Error != "" {
			h.t.Fatalf("decide failed: %+v", resp.Decisions)
		}
		s.Step(resp.Decisions[0].OPPIdx)
	}
	return s.Result()
}

// physical projects the fields that must be byte-identical however the
// decisions were served; learning fields live on the serving side.
type physical struct {
	EnergyJ, SensorEnergyJ, MeanPowerW, SimTimeS, NormPerf, MissRate float64
	Misses, Transitions                                              int
	FinalTempC                                                       float64
}

func phys(r *sim.Result) physical {
	return physical{r.EnergyJ, r.SensorEnergyJ, r.MeanPowerW, r.SimTimeS,
		r.NormPerf, r.MissRate, r.Misses, r.Transitions, r.FinalTempC}
}

func scenarioConfig(t *testing.T, name string, seed int64, frames int) sim.Config {
	t.Helper()
	sc, err := scenario.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.Config(seed, frames)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// --- tests ------------------------------------------------------------------

// A governor served over HTTP must reproduce sim.Run decision for
// decision: the platform side (a local sim.Session fed the served OPP
// indices) lands on byte-identical physical aggregates, and the serving
// side accumulates the very learning statistics the closed-loop Result
// reports. This is the acceptance contract of the serve layer — floats
// round-trip exactly through JSON, so there is no tolerance here.
func TestServedDecisionsMatchSimRun(t *testing.T) {
	const (
		scn    = "rtm/mpeg4-30fps/a15"
		seed   = 5
		frames = 400
	)
	want := sim.Run(scenarioConfig(t, scn, seed, frames))

	h := newTestServer(t, serve.Options{})
	tr := workload.MPEG4At30(seed, frames)
	if st := h.post("/v1/sessions", map[string]any{
		"id":             "c0",
		"governor":       "rtm",
		"platform":       "a15",
		"period_s":       tr.RefTimeS,
		"seed":           seed,
		"calibration_cc": tr.MaxPerFrame(),
	}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}

	got := h.driveOne("c0", sim.NewSession(scenarioConfig(t, scn, seed, frames)))
	if phys(want) != phys(got) {
		t.Errorf("served run diverged from sim.Run:\n%+v\nvs\n%+v", phys(want), phys(got))
	}

	var info sessionInfo
	if st := h.get("/v1/sessions/c0", &info); st != http.StatusOK {
		t.Fatalf("info returned %d", st)
	}
	if info.Epochs != frames {
		t.Errorf("server saw %d epochs, want %d", info.Epochs, frames)
	}
	if info.Explorations != want.Explorations || info.ConvergedAt != want.ConvergedAt {
		t.Errorf("served learning stats (expl %d, conv %d) differ from sim.Run (expl %d, conv %d)",
			info.Explorations, info.ConvergedAt, want.Explorations, want.ConvergedAt)
	}
}

// Many goroutines hammer the batched decide endpoint concurrently, each
// owning a few sessions it advances in lockstep. Run under -race this
// exercises the session store and per-session locking; the determinism
// check is that every session still lands byte-identically on its serial
// sim.Run twin, however the server interleaved the batches.
func TestConcurrentServeSessionsDeterministic(t *testing.T) {
	const (
		goroutines = 6
		perG       = 4
		frames     = 120
		scn        = "rtm/mpeg4-30fps/a15"
	)
	h := newTestServer(t, serve.Options{})

	type lane struct {
		id   string
		seed int64
	}
	lanes := make([][]lane, goroutines)
	for g := range lanes {
		lanes[g] = make([]lane, perG)
		for m := range lanes[g] {
			l := lane{id: fmt.Sprintf("g%d-m%d", g, m), seed: int64(1 + g*perG + m)}
			lanes[g][m] = l
			tr := workload.MPEG4At30(l.seed, frames)
			if st := h.post("/v1/sessions", map[string]any{
				"id":             l.id,
				"governor":       "rtm",
				"period_s":       tr.RefTimeS,
				"seed":           l.seed,
				"calibration_cc": tr.MaxPerFrame(),
			}, nil); st != http.StatusCreated {
				t.Fatalf("create %s returned %d", l.id, st)
			}
		}
	}

	results := make([][]*sim.Result, goroutines)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sims := make([]*sim.Session, perG)
			for m, l := range lanes[g] {
				sc, err := scenario.Get(scn)
				if err != nil {
					errs <- err
					return
				}
				cfg, err := sc.Config(l.seed, frames)
				if err != nil {
					errs <- err
					return
				}
				sims[m] = sim.NewSession(cfg)
			}
			for !sims[0].Done() {
				items := make([]decideItem, perG)
				for m := range sims {
					items[m] = decideItem{Session: lanes[g][m].id, Obs: obsOf(sims[m])}
				}
				raw, err := json.Marshal(map[string]any{"requests": items})
				if err != nil {
					errs <- err
					return
				}
				resp, err := h.ts.Client().Post(h.ts.URL+"/v1/decide", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				var out struct {
					Decisions []decision `json:"decisions"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for m, d := range out.Decisions {
					if d.Error != "" {
						errs <- fmt.Errorf("session %s: %s", lanes[g][m].id, d.Error)
						return
					}
					sims[m].Step(d.OPPIdx)
				}
			}
			results[g] = make([]*sim.Result, perG)
			for m := range sims {
				results[g][m] = sims[m].Result()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for g := range lanes {
		for m, l := range lanes[g] {
			want := sim.Run(scenarioConfig(t, scn, l.seed, frames))
			if phys(want) != phys(results[g][m]) {
				t.Errorf("session %s diverged from its serial twin", l.id)
			}
			var info sessionInfo
			if st := h.get("/v1/sessions/"+l.id, &info); st != http.StatusOK {
				t.Fatalf("info %s returned %d", l.id, st)
			}
			if info.Explorations != want.Explorations {
				t.Errorf("session %s explored %d times, serial twin %d", l.id, info.Explorations, want.Explorations)
			}
		}
	}
}

// Checkpoint to disk, shut the server down, bring up a new one on the
// same directory: a session re-created under its old id must warm-start
// from the frozen state — freezing it again immediately reproduces the
// checkpoint byte for byte (modulo JSON re-encoding).
func TestServeCheckpointSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const frames = 300

	srv1 := serve.New(serve.Options{CheckpointDir: dir, CheckpointEvery: time.Hour})
	ts1 := httptest.NewServer(srv1.Handler())
	h1 := &testServer{t: t, srv: srv1, ts: ts1}

	tr := workload.MPEG4At30(9, frames)
	if st := h1.post("/v1/sessions", map[string]any{
		"id": "c0", "governor": "rtm", "period_s": tr.RefTimeS, "seed": 9,
		"calibration_cc": tr.MaxPerFrame(),
	}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	h1.driveOne("c0", sim.NewSession(scenarioConfig(t, "rtm/mpeg4-30fps/a15", 9, frames)))

	ts1.Close()
	if err := srv1.Close(); err != nil { // final sweep freezes c0
		t.Fatal(err)
	}
	frozen, err := os.ReadFile(dir + "/c0.state")
	if err != nil {
		t.Fatalf("final checkpoint was not written: %v", err)
	}

	h2 := newTestServer(t, serve.Options{CheckpointDir: dir, CheckpointEvery: time.Hour})
	if st := h2.post("/v1/sessions", map[string]any{
		"id": "c0", "governor": "rtm", "period_s": tr.RefTimeS, "seed": 9,
	}, nil); st != http.StatusCreated {
		t.Fatalf("re-create returned %d", st)
	}
	var out struct {
		State json.RawMessage `json:"state"`
	}
	if st := h2.post("/v1/sessions/c0/checkpoint", map[string]any{}, &out); st != http.StatusOK {
		t.Fatalf("checkpoint returned %d", st)
	}
	var a, b any
	if err := json.Unmarshal(frozen, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.State, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("warm-started session does not reproduce its checkpoint")
	}
}

// DELETE must garbage-collect the session's checkpoint: re-creating the
// id afterwards starts cold, not from the deleted session's state.
func TestDeleteRemovesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	const frames = 200
	h := newTestServer(t, serve.Options{CheckpointDir: dir})
	tr := workload.MPEG4At30(4, frames)
	create := map[string]any{
		"id": "gc", "governor": "rtm", "period_s": tr.RefTimeS, "seed": 4,
		"calibration_cc": tr.MaxPerFrame(),
	}
	if st := h.post("/v1/sessions", create, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	h.driveOne("gc", sim.NewSession(scenarioConfig(t, "rtm/mpeg4-30fps/a15", 4, frames)))
	var learnt struct {
		State json.RawMessage `json:"state"`
	}
	if st := h.post("/v1/sessions/gc/checkpoint", map[string]any{}, &learnt); st != http.StatusOK {
		t.Fatalf("checkpoint returned %d", st)
	}
	if _, err := os.Stat(dir + "/gc.state"); err != nil {
		t.Fatalf("checkpoint missing before delete: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, h.ts.URL+"/v1/sessions/gc", nil)
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete returned %d", resp.StatusCode)
	}
	if _, err := os.Stat(dir + "/gc.state"); err == nil {
		t.Fatal("DELETE orphaned the checkpoint file")
	}

	// Re-creating the id starts cold: freezing it immediately must not
	// reproduce the deleted session's learnt state (which a lingering
	// checkpoint file would have warm-started).
	if st := h.post("/v1/sessions", create, nil); st != http.StatusCreated {
		t.Fatalf("re-create returned %d", st)
	}
	var fresh struct {
		State json.RawMessage `json:"state"`
	}
	if st := h.post("/v1/sessions/gc/checkpoint", map[string]any{}, &fresh); st != http.StatusOK {
		t.Fatalf("checkpoint of re-created session returned %d", st)
	}
	if bytes.Equal(fresh.State, learnt.State) {
		t.Error("re-created session carries the deleted session's learnt state")
	}
}

// New sweeps the checkpoint store of state no session could restore:
// torn writes and foreign files go, valid checkpoints stay and still
// warm-start.
func TestStartupCompactionSweepsDeadState(t *testing.T) {
	dir := t.TempDir()
	const frames = 200

	// A real checkpoint to survive the sweep.
	srv1 := serve.New(serve.Options{CheckpointDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	h1 := &testServer{t: t, srv: srv1, ts: ts1}
	tr := workload.MPEG4At30(6, frames)
	if st := h1.post("/v1/sessions", map[string]any{
		"id": "alive", "governor": "rtm", "period_s": tr.RefTimeS, "seed": 6,
		"calibration_cc": tr.MaxPerFrame(),
	}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	h1.driveOne("alive", sim.NewSession(scenarioConfig(t, "rtm/mpeg4-30fps/a15", 6, frames)))
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Dead state beside it: a torn write, non-JSON garbage, and an
	// envelope with no kind.
	for name, data := range map[string]string{
		"torn.state":    `{"kind":"rtm","ver`,
		"garbage.state": "\x00\x01binary junk",
		"unkinded.state": `{"version":1,"tables":[]}
`,
	} {
		if err := os.WriteFile(dir+"/"+name, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	h2 := newTestServer(t, serve.Options{CheckpointDir: dir})
	for _, name := range []string{"torn.state", "garbage.state", "unkinded.state"} {
		if _, err := os.Stat(dir + "/" + name); err == nil {
			t.Errorf("startup sweep kept unrestorable %s", name)
		}
	}
	if _, err := os.Stat(dir + "/alive.state"); err != nil {
		t.Fatalf("startup sweep deleted a restorable checkpoint: %v", err)
	}
	// The surviving checkpoint still warm-starts.
	if st := h2.post("/v1/sessions", map[string]any{
		"id": "alive", "governor": "rtm", "period_s": tr.RefTimeS, "seed": 6,
	}, nil); st != http.StatusCreated {
		t.Fatalf("re-create returned %d", st)
	}
	var out struct {
		State json.RawMessage `json:"state"`
	}
	if st := h2.post("/v1/sessions/alive/checkpoint", map[string]any{}, &out); st != http.StatusOK {
		t.Fatalf("checkpoint of warm-started session returned %d", st)
	}
	if len(out.State) == 0 {
		t.Error("warm-started session froze empty state")
	}
}

// Per-entry failure isolation and session lifecycle status codes.
func TestServeAPILifecycle(t *testing.T) {
	h := newTestServer(t, serve.Options{})

	if st := h.post("/v1/sessions", map[string]any{"id": "a", "governor": "ondemand"}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	if st := h.post("/v1/sessions", map[string]any{"id": "a", "governor": "ondemand"}, nil); st != http.StatusConflict {
		t.Errorf("duplicate create returned %d, want 409", st)
	}
	if st := h.post("/v1/sessions", map[string]any{"id": "b", "governor": "oracle"}, nil); st != http.StatusBadRequest {
		t.Errorf("oracle create returned %d, want 400", st)
	}
	if st := h.post("/v1/sessions", map[string]any{"id": "../evil", "governor": "rtm"}, nil); st != http.StatusBadRequest {
		t.Errorf("unsafe id returned %d, want 400", st)
	}
	for _, id := range []string{".", ".."} {
		if st := h.post("/v1/sessions", map[string]any{"id": id, "governor": "rtm"}, nil); st != http.StatusBadRequest {
			t.Errorf("path-special id %q returned %d, want 400", id, st)
		}
	}
	if st := h.post("/v1/sessions", map[string]any{"id": "c", "governor": "mldtm", "calibration_cc": []float64{1, 2}}, nil); st != http.StatusBadRequest {
		t.Errorf("mldtm with calibration returned %d, want 400", st)
	}

	// One bad entry must not fail the batch.
	var resp struct {
		Decisions []decision `json:"decisions"`
	}
	if st := h.post("/v1/decide", map[string]any{"requests": []decideItem{
		{Session: "a", Obs: obsJSON{Epoch: -1}},
		{Session: "ghost", Obs: obsJSON{Epoch: -1}},
	}}, &resp); st != http.StatusOK {
		t.Fatalf("decide returned %d", st)
	}
	if resp.Decisions[0].Error != "" || resp.Decisions[1].Error == "" {
		t.Errorf("per-entry isolation broken: %+v", resp.Decisions)
	}

	req, _ := http.NewRequest(http.MethodDelete, h.ts.URL+"/v1/sessions/a", nil)
	r, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNoContent {
		t.Errorf("delete returned %d, want 204", r.StatusCode)
	}
	if st := h.get("/v1/sessions/a", nil); st != http.StatusNotFound {
		t.Errorf("info after delete returned %d, want 404", st)
	}

	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if st := h.get("/healthz", &health); st != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz %d %+v", st, health)
	}
}
