package core

import (
	"fmt"
	"math"

	"qgov/internal/xrand"
)

// ExplorationPolicy chooses an exploratory action given the measured
// average slack ratio. The two implementations are the paper's EPD (Eq. 2)
// and the conventional uniform selection of ref [21]; Table II measures the
// difference between them.
type ExplorationPolicy interface {
	// Name identifies the policy in tables.
	Name() string
	// Sample draws an action index in [0, actions) for a state with the
	// given slack. normFreq holds each action's position on the frequency
	// ladder normalised to [0, 1] (0 = slowest, 1 = fastest), precomputed
	// once per run (platform.OPPTable.NormFreqs) so sampling sits on the
	// decision hot path without allocating or re-deriving the ladder.
	Sample(rng *xrand.Rand, actions int, slack float64, normFreq []float64) int
}

// UniformPolicy is the uniform probability distribution (UPD) used by
// conventional RL power managers: every action equally likely.
type UniformPolicy struct{}

// Name implements ExplorationPolicy.
func (UniformPolicy) Name() string { return "upd" }

// Sample implements ExplorationPolicy.
func (UniformPolicy) Sample(rng *xrand.Rand, actions int, _ float64, _ []float64) int {
	return rng.Intn(actions)
}

// ExponentialPolicy is the paper's discrete Exponential Probability
// Distribution (Eq. 2): the probability of exploring action a decays
// exponentially in the product of the action's frequency and the measured
// slack,
//
//	p(a) ∝ λ · exp(−β · L · F̂(a))
//
// with F̂ the frequency normalised to [0,1]. The intuition it encodes:
// with slack in hand (L > 0) the useful experiments are the slower V-F
// points; behind the deadline (L < 0) they are the faster ones; at L ≈ 0
// the distribution flattens toward uniform (the λ term), as the paper
// notes. This steers the exploration budget toward actions that can
// plausibly improve the pay-off, which is why it needs fewer explorations
// than UPD (Table II).
type ExponentialPolicy struct {
	// Beta scales how sharply slack tilts the distribution. 0 degenerates
	// to uniform.
	Beta float64
	// Lambda is the uniform mixing floor: every action keeps at least a
	// λ-proportional chance, so no V-F point is ever starved.
	Lambda float64
}

// NewExponentialPolicy returns the policy with the constants used in the
// experiments (β = 12, λ = 0.06). The sharpness matters in both directions:
// β must be large enough that typical slack magnitudes (|L| ≈ 0.1–0.3)
// visibly tilt the distribution — otherwise EPD degenerates to uniform and
// its Table II advantage vanishes — while λ keeps every operating point
// reachable so a mis-ranked action can still be corrected (the A1 ablation
// sweeps β).
func NewExponentialPolicy() *ExponentialPolicy {
	return &ExponentialPolicy{Beta: 12, Lambda: 0.06}
}

// Name implements ExplorationPolicy.
func (p *ExponentialPolicy) Name() string { return "epd" }

// Weights returns the normalised selection probabilities for inspection
// and testing. It panics on a non-positive action count.
func (p *ExponentialPolicy) Weights(actions int, slack float64, normFreq []float64) []float64 {
	if actions < 1 {
		panic(fmt.Sprintf("core: EPD over %d actions", actions))
	}
	w := make([]float64, actions)
	var sum float64
	for a := range w {
		w[a] = p.weight(slack, normFreq[a])
		sum += w[a]
	}
	for a := range w {
		w[a] /= sum
	}
	return w
}

func (p *ExponentialPolicy) weight(slack, nf float64) float64 {
	return p.Lambda + math.Exp(-p.Beta*slack*nf)
}

// Sample implements ExplorationPolicy by inverse-CDF sampling of the Eq. 2
// distribution. It draws in two passes over the unnormalised weights —
// total mass first, then the accumulation to the threshold — so the hot
// path allocates nothing.
func (p *ExponentialPolicy) Sample(rng *xrand.Rand, actions int, slack float64, normFreq []float64) int {
	if actions < 1 {
		panic(fmt.Sprintf("core: EPD over %d actions", actions))
	}
	var sum float64
	for a := 0; a < actions; a++ {
		sum += p.weight(slack, normFreq[a])
	}
	u := rng.Float64() * sum
	acc := 0.0
	for a := 0; a < actions; a++ {
		acc += p.weight(slack, normFreq[a])
		if u < acc {
			return a
		}
	}
	return actions - 1 // guard against FP shortfall in the CDF
}

// EpsilonSchedule is the exploration/exploitation switch of Section II-C
// (Eq. 6): the probability ε of taking an exploratory action decays
// exponentially with the epoch index, and the decay accelerates once
// learning has visibly stopped moving — the paper's "to accelerate the
// process of exploitation". Two acceleration signals feed the boost:
// the greedy policy holding still (the convergence tracker's quiet
// window) and the measured slack sitting inside the stable band around
// the target. Tying exploration to learning progress is what lets an
// exploration policy that learns faster also *stop exploring* sooner —
// the Table II effect.
type EpsilonSchedule struct {
	// Epsilon0 is the initial exploration probability.
	Epsilon0 float64
	// HoldEpochs keeps ε at ε₀ for an initial learning phase before the
	// exponential decay starts. The paper's Fig. 3 narrative — a distinct
	// exploration phase over the first frames, exploitation after — is a
	// hold-then-decay shape, not a slow exponential from epoch zero.
	HoldEpochs int
	// Decay is the per-epoch exponential decay constant after the hold,
	// the paper's (1−α) learning-factor term.
	Decay float64
	// BoostDecay is the extra decay applied while the greedy policy is
	// quiet (no flips beyond tolerance in the tracker window).
	BoostDecay float64
	// BandBoost is the extra decay applied on epochs whose slack error is
	// within StableBand of the target.
	BandBoost float64
	// StableBand is the |slack − target| threshold for BandBoost.
	StableBand float64

	eps   float64
	epoch int
}

// NewEpsilonSchedule returns the schedule used in the experiments: hold
// for 110 epochs, then a sharp handover to exploitation.
func NewEpsilonSchedule() *EpsilonSchedule {
	s := &EpsilonSchedule{
		Epsilon0:   0.9,
		HoldEpochs: 110,
		Decay:      0.040,
		BoostDecay: 0.010,
		BandBoost:  0.004,
		StableBand: 0.15,
	}
	s.Reset()
	return s
}

// Reset restores ε to ε₀ and the epoch clock to zero.
func (s *EpsilonSchedule) Reset() {
	s.eps = s.Epsilon0
	s.epoch = 0
}

// Epsilon returns the current exploration probability.
func (s *EpsilonSchedule) Epsilon() float64 { return s.eps }

// Epoch returns the number of Advance calls since the last Reset — the
// schedule's position on its decay curve.
func (s *EpsilonSchedule) Epoch() int { return s.epoch }

// Restore places the schedule at a checkpointed position: the given ε and
// epoch clock, as read back by Epsilon and Epoch. A warm-started learner
// resumes exploitation where the training run left off instead of
// re-paying the hold-then-decay exploration phase.
func (s *EpsilonSchedule) Restore(eps float64, epoch int) {
	s.eps = eps
	s.epoch = epoch
}

// Advance decays ε by one epoch given the epoch's slack error and whether
// the greedy policy is currently quiet.
func (s *EpsilonSchedule) Advance(slackError float64, quiet bool) {
	s.epoch++
	if s.epoch <= s.HoldEpochs {
		return
	}
	d := s.Decay
	if quiet {
		d += s.BoostDecay
	}
	if math.Abs(slackError) <= s.StableBand {
		d += s.BandBoost
	}
	s.eps *= math.Exp(-d)
}
