package platform

import (
	"testing"
	"testing/quick"
)

func TestPMUAccounting(t *testing.T) {
	p := NewPMU(2.0)
	p.advanceBusy(1000, 0.5)
	p.advanceIdle(0.5)
	s := p.Read()
	if s.Cycles != 1000 {
		t.Errorf("Cycles = %d, want 1000", s.Cycles)
	}
	if s.Instrs != 2000 {
		t.Errorf("Instrs = %d, want 2000 (IPC 2)", s.Instrs)
	}
	if s.BusyNS != 5e8 || s.IdleNS != 5e8 {
		t.Errorf("Busy/Idle = %d/%d, want 5e8/5e8", s.BusyNS, s.IdleNS)
	}
	if s.RefNS != 1e9 {
		t.Errorf("RefNS = %d, want 1e9", s.RefNS)
	}
}

func TestPMUDelta(t *testing.T) {
	p := NewPMU(1.0)
	p.advanceBusy(100, 0.1)
	before := p.Read()
	p.advanceBusy(50, 0.05)
	p.advanceIdle(0.05)
	d := p.Read().Delta(before)
	if d.Cycles != 50 {
		t.Errorf("delta cycles = %d, want 50", d.Cycles)
	}
	if got := d.Utilization(); got < 0.49 || got > 0.51 {
		t.Errorf("delta utilization = %v, want ≈0.5", got)
	}
}

func TestPMUUtilizationEmpty(t *testing.T) {
	var s PMUSample
	if got := s.Utilization(); got != 0 {
		t.Fatalf("empty utilization = %v, want 0", got)
	}
}

func TestPMUReset(t *testing.T) {
	p := NewPMU(1.5)
	p.advanceBusy(123, 0.1)
	p.Reset()
	s := p.Read()
	if s.Cycles != 0 || s.Instrs != 0 || s.RefNS != 0 {
		t.Fatalf("Reset left counters: %+v", s)
	}
	// IPC model survives reset.
	p.advanceBusy(100, 0.1)
	if p.Read().Instrs != 150 {
		t.Fatalf("IPC lost after Reset: instrs=%d", p.Read().Instrs)
	}
}

func TestNewPMUPanicsOnBadIPC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPMU(0) must panic")
		}
	}()
	NewPMU(0)
}

// Property: utilization is always in [0,1] and monotone bookkeeping holds:
// busy+idle == ref for any sequence of advances.
func TestPMUConsistencyProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		p := NewPMU(1.2)
		for i, s := range steps {
			d := float64(s%1000) / 1e4
			if i%2 == 0 {
				p.advanceBusy(uint64(s), d)
			} else {
				p.advanceIdle(d)
			}
		}
		r := p.Read()
		if r.BusyNS+r.IdleNS != r.RefNS {
			return false
		}
		u := r.Utilization()
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
