package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/workload"
)

func steadyTrace(frames int) workload.Trace {
	// 30 Mcycles per thread per 40 ms frame: needs 750 MHz.
	return workload.Constant("steady", 25, frames, 4, 30e6)
}

func TestRunPerformanceGovernorBaseline(t *testing.T) {
	res := Run(Config{
		Trace:    steadyTrace(100),
		Governor: governor.NewPerformance(),
		Seed:     1,
	})
	if res.Frames != 100 {
		t.Fatalf("Frames = %d", res.Frames)
	}
	// At 2 GHz a 30 Mcycle frame takes 15 ms of the 40 ms period.
	if math.Abs(res.NormPerf-0.375) > 0.01 {
		t.Errorf("NormPerf = %v, want ≈0.375", res.NormPerf)
	}
	if res.Misses != 0 {
		t.Errorf("Misses = %d, want 0", res.Misses)
	}
	if res.EnergyJ <= 0 || res.MeanPowerW <= 0 {
		t.Error("energy accounting broken")
	}
	// 100 frames at 40 ms each.
	if math.Abs(res.SimTimeS-4.0) > 1e-9 {
		t.Errorf("SimTimeS = %v, want 4.0", res.SimTimeS)
	}
	if res.Explorations != -1 || res.ConvergedAt != -1 {
		t.Error("non-learner must report -1 learning stats")
	}
}

func TestRunPowersaveMissesEverything(t *testing.T) {
	res := Run(Config{
		Trace:    steadyTrace(50),
		Governor: governor.NewPowersave(),
		Seed:     1,
	})
	// 30 Mcycles at 200 MHz = 150 ms >> 40 ms: every frame misses.
	if res.MissRate != 1.0 {
		t.Fatalf("MissRate = %v, want 1.0", res.MissRate)
	}
	if res.NormPerf < 3 {
		t.Fatalf("NormPerf = %v, want > 3 (heavy under-performance)", res.NormPerf)
	}
}

func TestRunOracleMeetsDeadlinesCheaply(t *testing.T) {
	tr := steadyTrace(100)
	oracle := governor.NewOracle(tr, platform.DefaultA15PowerModel())
	resO := Run(Config{Trace: tr, Governor: oracle, Seed: 1})
	if resO.Misses != 0 {
		t.Fatalf("oracle missed %d deadlines", resO.Misses)
	}
	resP := Run(Config{Trace: tr, Governor: governor.NewPerformance(), Seed: 1})
	if !(resO.EnergyJ < resP.EnergyJ) {
		t.Fatalf("oracle energy %v not below performance governor %v", resO.EnergyJ, resP.EnergyJ)
	}
}

func TestRunRTMOnSteadyWorkload(t *testing.T) {
	rtm := core.New(core.DefaultConfig())
	rtm.Calibrate([]float64{25e6, 30e6, 35e6})
	res := Run(Config{Trace: steadyTrace(600), Governor: rtm, Seed: 3})
	if res.ConvergedAt < 0 {
		t.Fatal("RTM did not converge on a steady workload")
	}
	if res.Explorations <= 0 {
		t.Fatal("RTM reported no explorations")
	}
	// After learning, misses should be confined to the exploration phase.
	if res.MissRate > 0.25 {
		t.Fatalf("MissRate = %v, too many misses overall", res.MissRate)
	}
}

func TestRunRecordsSeries(t *testing.T) {
	rtm := core.New(core.DefaultConfig())
	rtm.Calibrate([]float64{25e6, 30e6, 35e6})
	res := Run(Config{Trace: steadyTrace(50), Governor: rtm, Seed: 3, Record: true})
	if len(res.Records) != 50 {
		t.Fatalf("Records = %d, want 50", len(res.Records))
	}
	r0 := res.Records[0]
	if r0.ActualCC != 30e6 {
		t.Errorf("ActualCC = %v", r0.ActualCC)
	}
	if !math.IsNaN(r0.PredictedCC) {
		t.Errorf("first-frame prediction should be NaN (nothing observed), got %v", r0.PredictedCC)
	}
	// Later frames carry the EWMA forecast and slack telemetry.
	r10 := res.Records[10]
	if math.IsNaN(r10.PredictedCC) || r10.PredictedCC <= 0 {
		t.Errorf("frame 10 prediction missing: %v", r10.PredictedCC)
	}
	if math.IsNaN(r10.AvgSlackL) || math.IsNaN(r10.Epsilon) {
		t.Error("RTM telemetry missing from records")
	}
	// Non-recording run keeps Records nil.
	res2 := Run(Config{Trace: steadyTrace(10), Governor: governor.NewPerformance(), Seed: 1})
	if res2.Records != nil {
		t.Error("Records retained without Record flag")
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	build := func() *Result {
		rtm := core.New(core.DefaultConfig())
		rtm.Calibrate([]float64{25e6, 30e6, 35e6})
		return Run(Config{Trace: workload.MPEG4At30(9, 200), Governor: rtm, Seed: 42})
	}
	a, b := build(), build()
	if a.EnergyJ != b.EnergyJ || a.NormPerf != b.NormPerf || a.Misses != b.Misses {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	cases := map[string]Config{
		"nil governor": {Trace: steadyTrace(1)},
		"bad trace":    {Trace: workload.Trace{}, Governor: governor.NewPerformance()},
		"too wide": {
			Trace:    workload.Constant("wide", 25, 1, 8, 1e6),
			Governor: governor.NewPerformance(),
		},
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Run must panic", name)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestRunChargesLearningOverhead(t *testing.T) {
	// The same fixed OPP with and without a decision overhead must differ
	// in measured performance by exactly the overhead per frame.
	tr := steadyTrace(10)
	plain := Run(Config{Trace: tr, Governor: governor.NewPerformance(), Seed: 1})
	over := Run(Config{Trace: tr, Governor: &overheadWrapper{Governor: governor.NewPerformance(), ovh: 2e-3}, Seed: 1})
	perFrame := (over.NormPerf - plain.NormPerf) * tr.RefTimeS
	if math.Abs(perFrame-2e-3) > 1e-6 {
		t.Fatalf("overhead charged %.6f s/frame, want 0.002", perFrame)
	}
}

// overheadWrapper adds a fixed decision overhead to any governor.
type overheadWrapper struct {
	governor.Governor
	ovh float64
}

func (o *overheadWrapper) DecisionOverheadS() float64 { return o.ovh }

func TestSweepRunAllOrderAndDeterminism(t *testing.T) {
	jobs := []Job{
		{Name: "perf", Build: func() Config {
			return Config{Trace: steadyTrace(20), Governor: governor.NewPerformance(), Seed: 1}
		}},
		{Name: "powersave", Build: func() Config {
			return Config{Trace: steadyTrace(20), Governor: governor.NewPowersave(), Seed: 1}
		}},
	}
	res := RunAll(jobs)
	if len(res) != 2 {
		t.Fatal("lost results")
	}
	if res[0].Governor != "performance" || res[1].Governor != "powersave" {
		t.Fatalf("order not preserved: %s, %s", res[0].Governor, res[1].Governor)
	}
}

func TestSeedSweepAndSummarize(t *testing.T) {
	results := SeedSweep(func(seed int64) Config {
		rtm := core.New(core.DefaultConfig())
		rtm.Calibrate([]float64{25e6, 30e6, 35e6})
		return Config{Trace: steadyTrace(300), Governor: rtm, Seed: seed}
	}, []int64{1, 2, 3, 4})
	s := Summarize(results)
	if s.Runs != 4 {
		t.Fatalf("Runs = %d", s.Runs)
	}
	if s.MeanEnergyJ <= 0 || s.MeanNormPerf <= 0 {
		t.Fatal("summary means missing")
	}
	if math.IsNaN(s.MeanExplore) {
		t.Fatal("learner sweep lost exploration stats")
	}
	if s.StdEnergyJ < 0 {
		t.Fatal("negative std")
	}
	empty := Summarize(nil)
	if empty.Runs != 0 {
		t.Fatal("empty summary")
	}
}

func TestWriteRecordsCSV(t *testing.T) {
	rtm := core.New(core.DefaultConfig())
	rtm.Calibrate([]float64{25e6, 30e6, 35e6})
	res := Run(Config{Trace: steadyTrace(5), Governor: rtm, Seed: 3, Record: true})
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 5 frames
		t.Fatalf("CSV has %d lines, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[0], "epoch,freq_mhz") {
		t.Fatalf("header = %q", lines[0])
	}
	// First frame has no prediction: empty field, not "NaN".
	if strings.Contains(lines[1], "NaN") {
		t.Fatalf("NaN leaked into CSV: %q", lines[1])
	}
}
