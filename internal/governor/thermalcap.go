package governor

// ThermalCap wraps any governor with a thermal-throttling layer modelled
// on the kernel's intelligent power allocation behaviour on the
// Exynos 5422: when the die temperature crosses TripC the permissible
// operating-point ceiling steps down each epoch, and it recovers one step
// per epoch once the die has cooled below TripC − HysteresisC.
//
// The paper neglects the thermal constraint of its baseline "for
// equivalence of comparison", so none of the Table I-III experiments
// enable this wrapper; it exists because a deployable governor cannot
// ship without it, and because it lets users measure how much headroom
// each policy leaves the thermal envelope (sustained fmax under
// performance/ondemand trips it; the RTM's deadline-exact operation
// usually does not).
type ThermalCap struct {
	// Inner is the wrapped policy.
	Inner Governor
	// TripC is the throttling threshold.
	TripC float64
	// HysteresisC is how far below TripC the die must cool before the
	// ceiling recovers.
	HysteresisC float64

	ctx     Context
	ceiling int
	events  int
}

// NewThermalCap wraps a governor with the Exynos-flavoured defaults
// (trip at 85 °C, recover below 80 °C).
func NewThermalCap(inner Governor) *ThermalCap {
	if inner == nil {
		panic("governor: ThermalCap needs an inner governor")
	}
	return &ThermalCap{Inner: inner, TripC: 85, HysteresisC: 5}
}

// Name implements Governor.
func (g *ThermalCap) Name() string { return g.Inner.Name() + "+thermal" }

// DecisionOverheadS forwards the inner governor's overhead model.
func (g *ThermalCap) DecisionOverheadS() float64 {
	if om, ok := g.Inner.(OverheadModeler); ok {
		return om.DecisionOverheadS()
	}
	return 0
}

// ThrottleEvents returns how many epochs the wrapper clamped the inner
// governor's choice.
func (g *ThermalCap) ThrottleEvents() int { return g.events }

// Ceiling returns the current operating-point ceiling.
func (g *ThermalCap) Ceiling() int { return g.ceiling }

// Reset implements Governor.
func (g *ThermalCap) Reset(ctx Context) {
	g.ctx = ctx
	g.ceiling = ctx.Table.MaxIdx()
	g.events = 0
	g.Inner.Reset(ctx)
}

// Decide implements Governor: update the ceiling from the measured die
// temperature, then clamp the inner policy's choice to it.
func (g *ThermalCap) Decide(obs Observation) int {
	if obs.Epoch >= 0 {
		switch {
		case obs.TempC > g.TripC && g.ceiling > 0:
			g.ceiling--
		case obs.TempC < g.TripC-g.HysteresisC && g.ceiling < g.ctx.Table.MaxIdx():
			g.ceiling++
		}
	}
	idx := g.Inner.Decide(obs)
	if idx > g.ceiling {
		g.events++
		return g.ceiling
	}
	return idx
}
