package governor

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"qgov/internal/qpage"
	"qgov/internal/xrand"
)

// MLDTM reimplements the multi-core learning DVFS controller of Ge & Qiu,
// "Dynamic thermal management for multimedia applications using machine
// learning" (DAC'11) — the paper's ref [20] and its strongest baseline in
// Table I. Following the paper, the thermal constraint is neglected "for
// equivalence of comparison"; what remains is the controller's learning
// structure, which differs from the proposed RTM in exactly the three ways
// the comparison turns on:
//
//  1. its state is the observed per-core *utilisation band* — it has no
//     notion of the application's deadline or slack, so it regulates
//     toward a fixed utilisation target rather than toward Tref;
//  2. exploration draws actions from a *uniform* distribution;
//  3. every core trains an *independent* Q-table from only its own
//     experience (per-core DVFS in the original platform), so on a
//     shared-clock cluster four agents must each converge — roughly
//     doubling the learning overhead measured in Table III.
type MLDTM struct {
	// UtilBands is the number of utilisation states per core.
	UtilBands int
	// TargetUtil is the utilisation the reward steers toward. Without
	// deadline knowledge the controller keeps headroom: utilisation ≈ 0.9
	// means finishing ≈ 10 % before the period — the over-performance
	// visible in Table I's normalised performance of 0.89.
	TargetUtil float64
	// PowerWeight scales the power penalty against the utilisation error.
	PowerWeight float64
	// MaxPowerW normalises sensed power into [0,1] for the reward.
	MaxPowerW float64
	// Alpha and Discount are the Q-learning parameters; the learning rate
	// decays per state-action visit as α·K/(K+v) with K = AlphaDecayK so
	// the per-core policies can actually converge (Table III needs a
	// well-defined convergence epoch for this baseline too).
	Alpha       float64
	AlphaDecayK float64
	Discount    float64
	// GreedyMargin is the hysteresis dead-band on the per-core greedy
	// choice, mirroring the proposed RTM's.
	GreedyMargin float64
	// Epsilon0 and EpsilonDecay control the ε-greedy schedule
	// ε_i = ε₀·exp(−decay·i).
	Epsilon0     float64
	EpsilonDecay float64
	// OverheadS is the per-decision compute cost (four table updates plus
	// counter sampling).
	OverheadS float64
	// StableEpochs configures convergence detection.
	StableEpochs int

	ctx Context
	// rng is built lazily on the first ε draw (see the RTM's identically
	// motivated field): a never-decided session should not pay even the
	// 8-byte xrand allocation.
	rng *xrand.Rand
	// tab holds every core's value table as one paged copy-on-write
	// table: row c·UtilBands+s is core c's band-s action values. Built
	// through Context.QPool when present, so identical cold or
	// warm-started controllers share immutable pages.
	tab          *qpage.Table
	greedy       [][]int // sticky greedy choice per core, per state
	lastState    []int
	lastAction   int
	epoch        int
	explorations int
	tracker      *ConvergenceTracker

	// restored is the staged Checkpointer state; Reset applies it.
	// restoredTab is the staged table interned on first apply — every
	// later Reset clones it instead of re-copying the flat payload.
	restored    *mldtmCheckpoint
	restoredTab *qpage.Table
}

// row maps (core, band) to the packed table row.
func (g *MLDTM) row(c, s int) int { return c*g.UtilBands + s }

// NewMLDTM constructs the baseline with the configuration used in the
// experiments.
func NewMLDTM() *MLDTM {
	return &MLDTM{
		UtilBands:    5,
		TargetUtil:   0.90,
		PowerWeight:  0.3,
		MaxPowerW:    7.0,
		Alpha:        0.40,
		AlphaDecayK:  25,
		Discount:     0.85,
		GreedyMargin: 0.12,
		Epsilon0:     1.0,
		EpsilonDecay: 0.012,
		OverheadS:    200e-6,
		StableEpochs: 25,
	}
}

// Name implements Governor.
func (g *MLDTM) Name() string { return "mldtm" }

// DecisionOverheadS implements OverheadModeler.
func (g *MLDTM) DecisionOverheadS() float64 { return g.OverheadS }

// Explorations implements LearningStats.
func (g *MLDTM) Explorations() int { return g.explorations }

// ConvergedAtEpoch implements LearningStats.
func (g *MLDTM) ConvergedAtEpoch() int { return g.tracker.ConvergedAt() }

// Epsilon implements ExplorationStats: the ε the next decision will use,
// the same exponential decay Decide applies at the current epoch clock.
func (g *MLDTM) Epsilon() float64 {
	return g.Epsilon0 * math.Exp(-g.EpsilonDecay*float64(g.epoch))
}

// VisitTotal implements ExplorationStats.
func (g *MLDTM) VisitTotal() int {
	if g.tab == nil {
		return 0
	}
	n := 0
	for r := 0; r < g.tab.Rows(); r++ {
		for _, v := range g.tab.VRow(r) {
			n += int(v)
		}
	}
	return n
}

// ConvergedFraction implements ExplorationStats.
func (g *MLDTM) ConvergedFraction() float64 { return g.tracker.StableFraction() }

// ReleaseState implements StateReleaser: called once on session delete to
// return the live table's and the staged base's pooled pages.
func (g *MLDTM) ReleaseState() {
	if g.tab != nil {
		g.tab.Release()
		g.tab = nil
	}
	if g.restoredTab != nil {
		g.restoredTab.Release()
		g.restoredTab = nil
	}
	g.restored = nil
}

// Reset implements Governor.
func (g *MLDTM) Reset(ctx Context) {
	g.ctx = ctx
	g.rng = nil // rebuilt lazily from ctx.Seed on the first ε draw
	nActions := ctx.Table.Len()
	if g.tab != nil {
		g.tab.Release()
	}
	rows := ctx.NumCores * g.UtilBands
	if g.restored != nil {
		g.applyRestored(rows, nActions)
	} else if ctx.QPool != nil {
		g.tab = ctx.QPool.NewShared(rows, nActions, 0)
	} else {
		g.tab = qpage.New(rows, nActions, 0)
	}
	g.greedy = make([][]int, ctx.NumCores)
	for c := range g.greedy {
		g.greedy[c] = make([]int, g.UtilBands)
		for s := range g.greedy[c] {
			g.greedy[c][s] = argmaxOf(g.tab.Row(g.row(c, s)))
		}
	}
	g.lastState = make([]int, ctx.NumCores)
	g.lastAction = 0
	g.epoch = 0
	g.explorations = 0
	g.tracker = NewConvergenceTracker(g.StableEpochs)
	g.tracker.MaxFlips = 2 // mirror the RTM's tolerance for comparability
	if g.restored != nil {
		g.epoch = g.restored.Epoch
	}
}

// mldtmCheckpoint is the ML-DTM's Checkpointer payload: every core's value
// table with visit counts, flattened [core][band][action] row-major, plus
// the epoch clock that drives the ε decay — a warm-started controller
// resumes at the decayed exploration rate, not ε₀.
type mldtmCheckpoint struct {
	Kind    string    `json:"kind"`
	Version int       `json:"version"`
	Cores   int       `json:"cores"`
	Bands   int       `json:"bands"`
	Actions int       `json:"actions"`
	Q       []float64 `json:"q"`
	Visits  []int     `json:"visits"`
	Epoch   int       `json:"epoch"`
}

// SaveState implements Checkpointer. The paged table materialises flat in
// [core][band][action] row-major order — exactly the packed row layout —
// so the wire format is unchanged from the pre-paging encoding.
func (g *MLDTM) SaveState(w io.Writer) error {
	if g.tab == nil {
		return fmt.Errorf("governor: mldtm has not run yet, nothing to save")
	}
	cp := mldtmCheckpoint{
		Kind:    "mldtm",
		Version: 1,
		Cores:   g.ctx.NumCores,
		Bands:   g.UtilBands,
		Actions: g.ctx.Table.Len(),
		Epoch:   g.epoch,
		Q:       g.tab.FlatQ(),
		Visits:  g.tab.FlatV(),
	}
	if err := json.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("governor: saving mldtm state: %w", err)
	}
	return nil
}

// LoadState implements Checkpointer: validate, then stage for the next
// Reset. A checkpoint whose core or action count does not match the run's
// platform panics at Reset, the same contract as the RTM's.
func (g *MLDTM) LoadState(r io.Reader) error {
	var cp mldtmCheckpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("governor: loading mldtm state: %w", err)
	}
	if cp.Kind != "mldtm" {
		return fmt.Errorf("governor: checkpoint is %q state, not mldtm", cp.Kind)
	}
	if cp.Version != 1 {
		return fmt.Errorf("governor: unsupported mldtm checkpoint version %d", cp.Version)
	}
	if cp.Bands != g.UtilBands {
		return fmt.Errorf("governor: checkpoint has %d utilisation bands, controller is configured with %d", cp.Bands, g.UtilBands)
	}
	n := cp.Cores * cp.Bands * cp.Actions
	if cp.Cores < 1 || cp.Actions < 1 || len(cp.Q) != n || len(cp.Visits) != n {
		return fmt.Errorf("governor: mldtm checkpoint is inconsistent (%d cores × %d bands × %d actions, %d values)",
			cp.Cores, cp.Bands, cp.Actions, len(cp.Q))
	}
	for i, q := range cp.Q {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return fmt.Errorf("governor: mldtm checkpoint is poisoned: q[%d] = %v", i, q)
		}
	}
	for i, v := range cp.Visits {
		if v < 0 {
			return fmt.Errorf("governor: mldtm checkpoint is inconsistent: visits[%d] = %d", i, v)
		}
	}
	if cp.Epoch < 0 {
		return fmt.Errorf("governor: mldtm checkpoint epoch %d is negative", cp.Epoch)
	}
	g.restored = &cp
	return nil
}

// applyRestored builds the live table from a staged checkpoint. With a
// page pool, the flat payload is materialised and interned once
// (restoredTab); this and every later Reset clone it, so all sessions
// restored from the same trained state share its pages. Without a pool the
// table is a private copy, the pre-pool behaviour. Reset recomputes the
// greedy choices and the epoch clock afterwards.
func (g *MLDTM) applyRestored(rows, nActions int) {
	cp := g.restored
	if cp.Cores != g.ctx.NumCores || cp.Actions != nActions {
		panic(fmt.Sprintf("governor: mldtm checkpoint is %d cores × %d actions, cluster has %d × %d",
			cp.Cores, cp.Actions, g.ctx.NumCores, nActions))
	}
	pool := g.ctx.QPool
	if pool == nil {
		g.tab = qpage.FromFlat(rows, nActions, cp.Q, cp.Visits)
		return
	}
	if g.restoredTab != nil && g.restoredTab.Pool() != pool {
		g.restoredTab.Release()
		g.restoredTab = nil
	}
	if g.restoredTab == nil {
		g.restoredTab = qpage.FromFlat(rows, nActions, cp.Q, cp.Visits)
		g.restoredTab.Intern(pool)
	}
	g.tab = g.restoredTab.Clone()
}

// stateOf maps a utilisation into a band index.
func (g *MLDTM) stateOf(util float64) int {
	if util < 0 {
		util = 0
	}
	if util >= 1 {
		return g.UtilBands - 1
	}
	return int(util * float64(g.UtilBands))
}

// reward scores the previous epoch for one core: negative utilisation
// error plus a power penalty. No term involves the deadline — the
// controller cannot see it — but saturated utilisation is punished hard:
// a core pegged at ≈100 % busy means the workload no longer fits the
// clock, the same signal that makes Linux's ondemand jump to fmax. Without
// this term a too-slow operating point would look ideal (utilisation near
// target, power low) exactly when the application is being starved.
func (g *MLDTM) reward(util, powerW float64) float64 {
	powerNorm := powerW / g.MaxPowerW
	if powerNorm > 1 {
		powerNorm = 1
	}
	if util >= 0.97 {
		return -(2.0 + g.PowerWeight*powerNorm)
	}
	utilErr := math.Abs(util - g.TargetUtil)
	return -(utilErr + g.PowerWeight*powerNorm)
}

// Decide implements Governor: one Q-update per core from its own
// utilisation, then per-core ε-greedy action selection; the shared-clock
// cluster runs at the fastest per-core vote.
func (g *MLDTM) Decide(obs Observation) int {
	nActions := g.ctx.Table.Len()
	if obs.Epoch < 0 {
		g.lastAction = 0
		return 0
	}
	// Update every core's table on the epoch that just finished. The
	// bootstrap max is read before MutRow so a COW fault on the touched
	// page cannot perturb it — the values are the same pre-update ones
	// either way.
	for c := 0; c < g.ctx.NumCores; c++ {
		util := 0.0
		if c < len(obs.Util) {
			util = obs.Util[c]
		}
		r := g.reward(util, obs.PowerW)
		sPrev := g.lastState[c]
		sNow := g.stateOf(util)
		best := maxOf(g.tab.Row(g.row(c, sNow)))
		alpha := g.Alpha
		if g.AlphaDecayK > 0 {
			alpha = g.Alpha * g.AlphaDecayK / (g.AlphaDecayK + float64(g.tab.VRow(g.row(c, sPrev))[g.lastAction]))
		}
		qrow, vrow := g.tab.MutRow(g.row(c, sPrev))
		qrow[g.lastAction] = (1-alpha)*qrow[g.lastAction] + alpha*(r+g.Discount*best)
		vrow[g.lastAction]++
		// Sticky greedy refresh for the updated state.
		cur := g.greedy[c][sPrev]
		if am := argmaxOf(qrow); qrow[am] > qrow[cur]+g.GreedyMargin {
			g.greedy[c][sPrev] = am
		}
		g.lastState[c] = sNow
	}

	// Per-core ε-greedy votes; the cluster takes the max.
	eps := g.Epsilon0 * math.Exp(-g.EpsilonDecay*float64(g.epoch))
	vote := 0
	explored := false
	if g.rng == nil {
		g.rng = xrand.New(g.ctx.Seed)
	}
	for c := 0; c < g.ctx.NumCores; c++ {
		var a int
		if g.rng.Float64() < eps {
			a = g.rng.Intn(nActions) // uniform exploration
			explored = true
		} else {
			a = g.greedy[c][g.lastState[c]]
		}
		if a > vote {
			vote = a
		}
	}
	if explored {
		g.explorations++
	}
	g.epoch++
	g.lastAction = vote
	g.tracker.Observe(g.greedyPolicy())
	return vote
}

// greedyPolicy flattens the per-core sticky greedy actions into one
// fingerprint, masking under-sampled states exactly as the proposed RTM
// does (see RTM.greedyFingerprint) so the Table III comparison measures
// the same notion of stability on both sides.
func (g *MLDTM) greedyPolicy() []int {
	const minRowVisits = 20
	out := make([]int, 0, len(g.greedy)*g.UtilBands)
	for c, per := range g.greedy {
		for s, a := range per {
			var rowVisits int
			for _, v := range g.tab.VRow(g.row(c, s)) {
				rowVisits += int(v)
			}
			if rowVisits < minRowVisits {
				out = append(out, -1)
			} else {
				out = append(out, a)
			}
		}
	}
	return out
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func argmaxOf(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

var _ Checkpointer = (*MLDTM)(nil)

func init() {
	Register("mldtm", func() Governor { return NewMLDTM() })
}
