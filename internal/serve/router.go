package serve

import (
	crand "crypto/rand"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qgov/internal/governor"
	"qgov/internal/ring"
	"qgov/internal/serve/client"
	"qgov/internal/stats"
	"qgov/internal/trace"
	"qgov/internal/wire"
)

// Router is the fleet-facing front of a sharded rtmd deployment: it
// owns no sessions itself, maps every session id onto a replica with a
// consistent-hash ring, and forwards traffic over persistent
// multiplexed binary connections (ConnsPerReplica of them per member,
// relayed batches striped round-robin). The decide path is a zero-copy
// pipelined relay: observe payloads coming off the binary listener are
// forwarded as raw bytes — only the request id is rewritten — grouped
// by owner, and dispatched without waiting for the previous batch's
// replies, so up to the transport's pipeline depth of batches stay in
// flight per inbound connection while each replica's slice still
// travels as one flush on that replica's connection (the
// connection-level batch coalescing the flat server relies on,
// preserved per replica). Per-batch grouping state is pooled;
// LegacyRelay restores the old blocking decode/re-encode relay.
// Control operations (create, checkpoint, delete, info) follow the
// same ring; metrics and list aggregate across the fleet, including a
// per-replica relay hop histogram and in-flight gauge.
//
// The router serves the same two fronts as a replica: Handler is the
// HTTP control plane (plus JSON decide), NewRouterTCP the binary
// transport. Clients cannot tell a router from a flat server — the
// router equivalence test holds routed decision streams byte-identical
// to a single server over the same session set.
//
// RemoveReplica drains a member: its sessions hand off to their new
// owners by checkpoint/restore (freeze on the leaving replica, re-create
// warm from that state on the ring's new placement), so learnt policies
// survive resharding. AddReplica is the inverse: the grown ring steals
// ≈1/N of the keys for the newcomer and only those sessions move.
//
// Every ring change bumps the membership epoch and pushes the new table
// (a wire.Members document) to every replica, so replicas can forward
// decides that a stale direct client (client.Fleet) sent to the wrong
// member. A background prober keeps membership honest at runtime: it
// health-checks every member, redials dropped connections (a replica
// restart no longer poisons its client forever), re-pushes the table to
// replicas that restarted, and feeds per-member up/down status into
// /healthz and the members table.
type Router struct {
	opt    RouterOptions
	log    *slog.Logger
	tracer *trace.Tracer

	// mu guards membership: the ring and the client set. Decide and
	// control traffic holds it for read; Add/RemoveReplica hold it for
	// write across the whole hand-off, so no decision can land on a
	// session mid-move.
	mu      sync.RWMutex
	ring    *ring.Ring
	clients map[string]*client.Client

	// epoch is the membership generation, bumped on every ring change
	// and stamped into every decide reply the fleet sends.
	epoch atomic.Uint32

	// stmu guards status: the prober's per-member up/down view. Separate
	// from mu so health reporting never contends with the decide path.
	stmu   sync.Mutex
	status map[string]memberStatus

	nextID    atomic.Int64
	decisions atomic.Int64

	// relayWG counts in-flight relayed decide batches. Add runs under
	// mu.RLock, Wait under mu.Lock — mutually exclusive, so a Wait never
	// races a fresh Add. Ring changes Wait on it to restore the invariant
	// the legacy path got from holding the read lock across the round
	// trip: no decision lands on a session mid-move.
	relayWG  sync.WaitGroup
	inflight atomic.Int64

	// hopmu guards hops: per-replica routed round-trip latency, recorded
	// by relay completion goroutines and snapshotted by mergedMetrics.
	hopmu sync.Mutex
	hops  map[string]*stats.Histogram

	done      chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// memberStatus is the prober's last verdict on one member.
type memberStatus struct {
	up  bool
	err string
}

// defaultProbeEvery is the replica health-check cadence when
// RouterOptions.ProbeEvery is zero.
const defaultProbeEvery = 2 * time.Second

// defaultPipelineDepth is the per-connection relay pipeline depth when
// RouterOptions.PipelineDepth is zero: how many decide batches the
// router's transport keeps in flight toward the replicas before the
// reader stops pulling new frames off a client connection.
const defaultPipelineDepth = 4

// Routed hop latency histogram shape: 0–20ms in 400µs bins covers
// loopback and rack-local round trips; slower hops land in overflow,
// which the exposition still counts.
const (
	routeHopHiUS = 20000
	routeHopBins = 50
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// VirtualNodes is the ring's virtual-node count per replica; <= 0
	// selects ring.DefaultVirtualNodes.
	VirtualNodes int
	// ProbeEvery is the replica health-check cadence: every interval the
	// router probes each member, redials the unreachable ones, and marks
	// them up/down for /healthz and the members table. Zero selects
	// defaultProbeEvery; negative disables probing.
	ProbeEvery time.Duration
	// Log receives operational and slow-request log records; nil
	// discards them.
	Log *slog.Logger
	// Tracer head-samples routed decide batches (tagging relayed frames
	// so replica spans stitch under the same id) and tail-captures slow
	// routed batches. Nil builds a default tracer with sampling off.
	Tracer *trace.Tracer
	// ConnsPerReplica is how many binary connections the router opens to
	// each replica; batches stripe across them. <= 0 selects 1.
	ConnsPerReplica int
	// PipelineDepth bounds how many decide batches each client
	// connection keeps in flight toward the replicas before the router
	// stops pulling new frames off it. Zero selects
	// defaultPipelineDepth; LegacyRelay disables pipelining entirely.
	PipelineDepth int
	// LegacyRelay restores the pre-pipelining relay: each decide batch
	// decodes into observations, re-encodes toward the replicas, and
	// blocks its connection until every reply lands. Kept as an escape
	// hatch and as the baseline the routed benchmarks compare against.
	LegacyRelay bool
}

// NewRouter dials every replica's binary address and builds the ring
// over them. Replica addresses are the ring's member names: every
// router given the same replica set computes the same placement.
func NewRouter(replicas []string, opt RouterOptions) (*Router, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one replica")
	}
	lg := opt.Log
	if lg == nil {
		lg = slog.New(slog.DiscardHandler)
	}
	tr := opt.Tracer
	if tr == nil {
		tr = trace.New(trace.Options{})
	}
	rt := &Router{
		opt:     opt,
		log:     lg,
		tracer:  tr,
		ring:    ring.New(opt.VirtualNodes),
		clients: make(map[string]*client.Client, len(replicas)),
		status:  make(map[string]memberStatus, len(replicas)),
		done:    make(chan struct{}),
	}
	for _, addr := range replicas {
		if _, dup := rt.clients[addr]; dup {
			continue
		}
		cl, err := rt.dialReplica(addr)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("serve: dialing replica %s: %w", addr, err)
		}
		rt.clients[addr] = cl
		rt.ring.Add(addr)
		rt.status[addr] = memberStatus{up: true}
	}
	rt.epoch.Store(1)
	rt.pushMembershipLocked()
	every := opt.ProbeEvery
	if every == 0 {
		every = defaultProbeEvery
	}
	if every > 0 {
		rt.probeWG.Add(1)
		go rt.probeLoop(every)
	}
	return rt, nil
}

// dialReplica opens the router's client to one replica, honoring the
// configured connection count. Every replica dial goes through here so
// redials and joins get the same sharding as the initial fleet.
func (rt *Router) dialReplica(addr string) (*client.Client, error) {
	return client.DialOpts(addr, client.DialOptions{Conns: rt.opt.ConnsPerReplica})
}

// memberEpoch implements connBackend: routed decide replies carry the
// fleet epoch, exactly as replies straight off a replica do.
func (rt *Router) memberEpoch() uint32 { return rt.epoch.Load() }

// Epoch returns the current membership epoch (bumped on every ring
// change).
func (rt *Router) Epoch() uint32 { return rt.epoch.Load() }

// logf keeps printf-style call sites alive on the structured logger;
// new code should call rt.log directly with key/value attrs.
func (rt *Router) logf(format string, args ...any) {
	if rt.log.Enabled(nil, slog.LevelInfo) {
		rt.log.Info(fmt.Sprintf(format, args...))
	}
}

// Tracer exposes the router's span ring, for embedding harnesses and
// the /v1/trace handlers. Never nil.
func (rt *Router) Tracer() *trace.Tracer { return rt.tracer }

// Close stops the prober and drops every replica connection. Idempotent.
func (rt *Router) Close() error {
	rt.closeOnce.Do(func() { close(rt.done) })
	rt.probeWG.Wait()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var firstErr error
	for addr, cl := range rt.clients {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(rt.clients, addr)
		rt.ring.Remove(addr)
	}
	// Closing the clients failed any in-flight relays; wait for their
	// completion goroutines to finish writing their batches.
	rt.relayWG.Wait()
	return firstErr
}

// Replicas returns the current member addresses, sorted.
func (rt *Router) Replicas() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Members()
}

// Owner returns the replica address that owns the session id.
func (rt *Router) Owner(id string) (string, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Owner(id)
}

// setStatus records the prober's verdict on one member.
func (rt *Router) setStatus(addr string, up bool, errMsg string) {
	rt.stmu.Lock()
	rt.status[addr] = memberStatus{up: up, err: errMsg}
	rt.stmu.Unlock()
}

func (rt *Router) clearStatus(addr string) {
	rt.stmu.Lock()
	delete(rt.status, addr)
	rt.stmu.Unlock()
}

// downMembers returns the members the prober currently reports
// unreachable, sorted.
func (rt *Router) downMembers() []string {
	rt.stmu.Lock()
	defer rt.stmu.Unlock()
	var down []string
	for addr, st := range rt.status {
		if !st.up {
			down = append(down, addr)
		}
	}
	sort.Strings(down)
	return down
}

// membersInfo answers an OpMembers fetch (and GET /v1/members): the
// current table plus the prober's down list, so a direct client routes
// keys owned by a dead member via the router instead of dialing it.
func (rt *Router) membersInfo() wire.Members {
	rt.mu.RLock()
	m := wire.Members{
		Epoch:   rt.epoch.Load(),
		VNodes:  rt.ring.VirtualNodes(),
		Members: rt.ring.Members(),
	}
	rt.mu.RUnlock()
	m.Down = rt.downMembers()
	return m
}

// pushMembershipLocked pushes the current table to every connected
// member. Callers hold the write lock (or own the router exclusively,
// as NewRouter does). Push failures are logged, not fatal: the prober
// re-pushes as soon as the replica answers health checks again — a
// replica with a stale table still serves its own sessions correctly,
// it just cannot forward for others until the re-push lands.
func (rt *Router) pushMembershipLocked() {
	epoch := rt.epoch.Load()
	members := rt.ring.Members()
	vnodes := rt.ring.VirtualNodes()
	for _, addr := range members {
		if cl := rt.clients[addr]; cl != nil {
			rt.pushTable(addr, cl, epoch, vnodes, members)
		}
	}
}

// pushTable installs the membership table on one replica via OpMembers.
func (rt *Router) pushTable(addr string, cl *client.Client, epoch uint32, vnodes int, members []string) {
	body := jsonBody(wire.Members{Epoch: epoch, VNodes: vnodes, Members: members, Self: addr})
	if status, resp, err := cl.Control(wire.OpMembers, "", body); err != nil || status != http.StatusOK {
		rt.logf("serve: router: pushing membership epoch %d to %s: status %d err %v (%s)", epoch, addr, status, err, resp)
	}
}

// probeLoop health-checks the fleet every interval until Close.
func (rt *Router) probeLoop(every time.Duration) {
	defer rt.probeWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-t.C:
			rt.probeOnce()
		}
	}
}

// probeOnce probes every member. A member whose client answers health
// is up (and gets a table re-push if its installed epoch is stale — a
// restarted replica comes back with epoch 0). A member whose client is
// poisoned or gone is redialed: on success the fresh connection replaces
// the dead one, so a replica restart heals without a router restart; on
// failure the member is marked down for /healthz and the members table.
func (rt *Router) probeOnce() {
	rt.mu.RLock()
	members := rt.ring.Members()
	vnodes := rt.ring.VirtualNodes()
	clients := make([]*client.Client, len(members))
	for i, m := range members {
		clients[i] = rt.clients[m]
	}
	rt.mu.RUnlock()
	epoch := rt.epoch.Load()

	for i, addr := range members {
		if cl := clients[i]; cl != nil {
			if st, body, err := cl.Health(); err == nil && st == http.StatusOK {
				var h healthJSON
				_ = json.Unmarshal(body, &h)
				if h.MemberEpoch != epoch {
					rt.pushTable(addr, cl, epoch, vnodes, members)
				}
				rt.setStatus(addr, true, "")
				continue
			}
			// Poisoned or unresponsive: fall through to a redial.
		}
		nc, err := rt.dialReplica(addr)
		if err != nil {
			rt.setStatus(addr, false, err.Error())
			continue
		}
		if st, _, err := nc.Health(); err != nil || st != http.StatusOK {
			nc.Close()
			rt.setStatus(addr, false, fmt.Sprintf("health status %d err %v", st, err))
			continue
		}
		rt.pushTable(addr, nc, epoch, vnodes, members)
		rt.mu.Lock()
		if !rt.ring.Has(addr) { // removed while we were redialing
			rt.mu.Unlock()
			nc.Close()
			continue
		}
		old := rt.clients[addr]
		rt.clients[addr] = nc
		rt.mu.Unlock()
		if old != nil {
			old.Close()
		}
		rt.setStatus(addr, true, "")
		rt.log.Info("reconnected to replica", "replica", addr)
	}
}

// decideBatch implements connBackend: requests group by owning replica
// and fan out, one relay (one flush, one coalesced server-side fan-out)
// per replica. Entries for unreachable replicas fail individually,
// exactly like unknown sessions. The JSON decide path and the legacy
// relay come through here and block until the batch is answered; the
// pipelined binary transport calls startBatch directly instead, so the
// connection's reader keeps pulling frames while this batch is in
// flight.
func (rt *Router) decideBatch(batch []*observeReq) {
	if rt.pipelineDepth() > 0 {
		<-rt.startBatch(batch)
		return
	}
	rt.legacyDecideBatch(batch)
}

// pipelineDepth implements batchStarter: a positive depth switches the
// binary transport's connection workers to the pipelined dispatcher.
func (rt *Router) pipelineDepth() int {
	if rt.opt.LegacyRelay {
		return 0
	}
	if rt.opt.PipelineDepth > 0 {
		return rt.opt.PipelineDepth
	}
	return defaultPipelineDepth
}

// routeGroup is one replica's slice of a relayed batch: the original
// batch positions, the observe payloads aliased straight out of the
// requests, and the decision slots the relay fills.
type routeGroup struct {
	addr     string
	idx      []int
	payloads [][]byte
	out      []client.Decision
	rel      *client.Relay
	start    time.Time
}

// routeScratch holds one batch's grouping state. Pooled: the routed hot
// path reuses the map and every group's slices across batches instead
// of allocating them per call.
type routeScratch struct {
	groups map[string]*routeGroup
	used   []*routeGroup // groups in dispatch order
	free   []*routeGroup
}

var routeScratchPool = sync.Pool{New: func() any {
	return &routeScratch{groups: make(map[string]*routeGroup)}
}}

// group returns the (possibly recycled) group for one replica.
func (s *routeScratch) group(addr string) *routeGroup {
	g := s.groups[addr]
	if g == nil {
		if n := len(s.free); n > 0 {
			g, s.free = s.free[n-1], s.free[:n-1]
		} else {
			g = &routeGroup{}
		}
		g.addr = addr
		s.groups[addr] = g
		s.used = append(s.used, g)
	}
	return g
}

// release clears payload and error references (they alias pooled
// request buffers and per-batch strings) and returns the scratch.
func (s *routeScratch) release() {
	for _, g := range s.used {
		delete(s.groups, g.addr)
		g.idx = g.idx[:0]
		clear(g.payloads)
		g.payloads = g.payloads[:0]
		for i := range g.out {
			g.out[i] = client.Decision{}
		}
		g.out = g.out[:0]
		g.rel = nil
		s.free = append(s.free, g)
	}
	s.used = s.used[:0]
	routeScratchPool.Put(s)
}

// startBatch implements batchStarter: it relays the batch's already-
// encoded observe payloads to their owning replicas — no decode, no
// re-encode, only the request id is rewritten per frame — and returns a
// channel that closes when every entry is answered. Grouping and
// dispatch run on the caller's goroutine under the read lock (so the
// ring cannot change under the batch, and per-replica frame order
// follows arrival order); waiting moves to a completion goroutine, so
// the transport can keep further batches in flight.
func (rt *Router) startBatch(batch []*observeReq) <-chan struct{} {
	done := make(chan struct{})
	s := routeScratchPool.Get().(*routeScratch)

	// Head-sample the batch. A sampled batch tags every relayed frame
	// with the trace id (the replicas then record their "decide" spans
	// under it); frames that arrived already traced keep their upstream
	// id — propagated ids relay untouched even when this tracer is off.
	tr := rt.tracer
	tid, _ := tr.Sample()
	timed := tr.Enabled()
	var batchStart time.Time
	if timed {
		batchStart = time.Now()
	}
	var propagated trace.TraceID

	rt.mu.RLock()
	relayed := 0
	for i, r := range batch {
		if r.ctrl {
			continue // callers split controls out; defensive
		}
		owner, ok := rt.ring.OwnerBytes(r.m.Session)
		if !ok {
			r.oppIdx, r.freqMHz = -1, 0
			r.errMsg = "router has no replicas"
			continue
		}
		payload := r.raw
		if len(payload) == 0 {
			// JSON-path requests carry no wire payload; encode one. The id
			// is rewritten at relay time, so zero is fine here.
			var err error
			r.raw, err = wire.AppendObserveBytes(r.raw[:0], 0, r.m.Flags, r.m.Session, &r.m.Obs)
			if err != nil {
				r.oppIdx, r.freqMHz = -1, 0
				r.errMsg = err.Error()
				continue
			}
			payload = r.raw[wire.HeaderSize:]
		}
		if r.m.Flags&wire.FlagTraced != 0 {
			if propagated == 0 {
				if id, ok := wire.ObserveTraceID(payload); ok {
					propagated = trace.TraceID(id)
				}
			}
		} else if tid != 0 {
			// The tagged slice (possibly reallocated) lives in the group's
			// payload list until the batch is answered; r.raw can stay on
			// the shorter untagged bytes.
			if tagged, terr := wire.AppendObserveTrace(payload, uint64(tid)); terr == nil {
				payload = tagged
			}
		}
		g := s.group(owner)
		g.idx = append(g.idx, i)
		// The payload bytes stay owned by their pooled request until the
		// whole batch is answered (the transport pools a request only
		// after done closes), so the group aliases them.
		g.payloads = append(g.payloads, payload)
		relayed++
	}
	spanTrace := tid
	if spanTrace == 0 {
		spanTrace = propagated
	}

	for _, g := range s.used {
		n := len(g.idx)
		if cap(g.out) < n {
			g.out = make([]client.Decision, n)
		} else {
			g.out = g.out[:n]
		}
		g.start = time.Now()
		rel, err := rt.clients[g.addr].StartRelay(g.payloads, g.out)
		if err != nil {
			for _, i := range g.idx {
				batch[i].oppIdx, batch[i].freqMHz = -1, 0
				batch[i].errMsg = fmt.Sprintf("replica %s: %v", g.addr, err)
			}
			relayed -= n
			continue
		}
		g.rel = rel
	}
	rt.inflight.Add(int64(relayed))
	rt.relayWG.Add(1)
	rt.mu.RUnlock()

	go func() {
		for _, g := range s.used {
			if g.rel == nil {
				continue
			}
			err := g.rel.Wait()
			rt.recordHop(g.addr, time.Since(g.start))
			if timed && spanTrace != 0 {
				errMsg := ""
				if err != nil {
					errMsg = err.Error()
				}
				tr.Record(trace.Span{
					Trace:   spanTrace,
					Stage:   "relay",
					Origin:  "router",
					Replica: g.addr,
					Start:   g.start.UnixNano(),
					DurUS:   float64(time.Since(g.start)) / float64(time.Microsecond),
					Batch:   len(g.idx),
					Err:     errMsg,
				})
			}
			for k, i := range g.idx {
				r := batch[i]
				if err != nil {
					r.oppIdx, r.freqMHz = -1, 0
					r.errMsg = fmt.Sprintf("replica %s: %v", g.addr, err)
					continue
				}
				r.oppIdx = int32(g.out[k].OPPIdx)
				r.freqMHz = int32(g.out[k].FreqMHz)
				r.errMsg = g.out[k].Err
				if g.out[k].Err == "" {
					rt.decisions.Add(1)
				}
			}
		}
		rt.inflight.Add(int64(-relayed))
		s.release()
		rt.relayWG.Done()
		if timed {
			dur := time.Since(batchStart)
			durUS := float64(dur) / float64(time.Microsecond)
			if tr.Slow(dur) {
				id := spanTrace
				if id == 0 {
					id = tr.ID()
				}
				tr.Record(trace.Span{
					Trace:  id,
					Stage:  "route",
					Origin: "router",
					Start:  batchStart.UnixNano(),
					DurUS:  durUS,
					Batch:  len(batch),
					Slow:   true,
				})
				rt.log.Warn("slow routed batch",
					"trace", id.String(),
					"dur_us", durUS,
					"batch", len(batch))
			} else if spanTrace != 0 {
				tr.Record(trace.Span{
					Trace:  spanTrace,
					Stage:  "route",
					Origin: "router",
					Start:  batchStart.UnixNano(),
					DurUS:  durUS,
					Batch:  len(batch),
				})
			}
		}
		close(done)
	}()
	return done
}

// recordHop folds one replica round trip into that replica's hop
// histogram (microseconds, same unit as session decide latency).
func (rt *Router) recordHop(addr string, d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	rt.hopmu.Lock()
	if rt.hops == nil {
		rt.hops = make(map[string]*stats.Histogram)
	}
	h := rt.hops[addr]
	if h == nil {
		h = stats.NewHistogram(0, routeHopHiUS, routeHopBins)
		rt.hops[addr] = h
	}
	h.Add(us)
	rt.hopmu.Unlock()
}

// HopLatency merges the per-replica relay-hop histograms into one
// router-wide histogram (microseconds), or nil before the first relayed
// batch. The merge is a copy; the caller owns the result.
func (rt *Router) HopLatency() *stats.Histogram {
	rt.hopmu.Lock()
	defer rt.hopmu.Unlock()
	var merged *stats.Histogram
	for _, h := range rt.hops {
		if merged == nil {
			merged = stats.NewHistogram(0, routeHopHiUS, routeHopBins)
		}
		if err := merged.Merge(h); err != nil {
			// Same fixed shape by construction; a mismatch is a bug.
			panic("serve: merging hop histograms: " + err.Error())
		}
	}
	return merged
}

// hopSnapshot renders the per-replica hop histograms for /v1/metrics.
func (rt *Router) hopSnapshot() map[string]latencyJSON {
	rt.hopmu.Lock()
	defer rt.hopmu.Unlock()
	if len(rt.hops) == 0 {
		return nil
	}
	out := make(map[string]latencyJSON, len(rt.hops))
	for addr, h := range rt.hops {
		out[addr] = latencyFromHistogram(h)
	}
	return out
}

// legacyDecideBatch is the pre-pipelining relay, kept behind
// RouterOptions.LegacyRelay: decode each request, re-encode toward the
// owner, and hold the read lock across the whole round trip.
func (rt *Router) legacyDecideBatch(batch []*observeReq) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()

	type group struct {
		idx      []int
		sessions [][]byte
		obs      []governor.Observation
	}
	groups := make(map[string]*group)
	for i, r := range batch {
		if r.ctrl {
			continue // callers split controls out; defensive
		}
		owner, ok := rt.ring.OwnerBytes(r.m.Session)
		if !ok {
			r.oppIdx, r.freqMHz = -1, 0
			r.errMsg = "router has no replicas"
			continue
		}
		g := groups[owner]
		if g == nil {
			g = &group{}
			groups[owner] = g
		}
		g.idx = append(g.idx, i)
		// The session bytes stay owned by their pooled request until the
		// whole batch is answered, so the group can alias them — skipping
		// a string conversion per decision on the routed hot path.
		g.sessions = append(g.sessions, r.m.Session)
		g.obs = append(g.obs, r.m.Obs)
	}

	var wg sync.WaitGroup
	for owner, g := range groups {
		wg.Add(1)
		go func(owner string, g *group) {
			defer wg.Done()
			out := make([]client.Decision, len(g.sessions))
			err := rt.clients[owner].DecideBatchBytes(g.sessions, g.obs, out)
			for k, i := range g.idx {
				r := batch[i]
				if err != nil {
					r.oppIdx, r.freqMHz = -1, 0
					r.errMsg = fmt.Sprintf("replica %s: %v", owner, err)
					continue
				}
				r.oppIdx = int32(out[k].OPPIdx)
				r.freqMHz = int32(out[k].FreqMHz)
				r.errMsg = out[k].Err
				if out[k].Err == "" {
					rt.decisions.Add(1)
				}
			}
		}(owner, g)
	}
	wg.Wait()
}

// control implements connBackend: session-scoped ops forward to the
// owning replica; fleet-scoped ops aggregate across every replica.
func (rt *Router) control(op byte, session string, body []byte) (uint16, []byte) {
	switch op {
	case wire.OpMetrics:
		return rt.aggregateMetrics()
	case wire.OpList:
		return rt.aggregateList()
	case wire.OpHealth:
		return rt.aggregateHealth()
	case wire.OpTrace:
		return rt.aggregateTrace(body)
	case wire.OpMembers:
		if len(body) > 0 {
			return http.StatusBadRequest, errorBody(errf("the router is the membership authority; pushes go router→replica"))
		}
		return http.StatusOK, jsonBody(rt.membersInfo())
	case wire.OpCreate:
		id := session
		if id == "" {
			// The id decides placement, so the router must know it before
			// forwarding; parse it out of the body and assign one if the
			// caller left naming to the server.
			var req struct {
				ID string `json:"id"`
			}
			if len(body) > 0 {
				if err := json.Unmarshal(body, &req); err != nil {
					return http.StatusBadRequest, errorBody(err)
				}
			}
			id = req.ID
		}
		if id == "" {
			// The router is stateless and replicas outlive it, so
			// auto-assigned ids must not repeat across router restarts
			// (a counter would collide with sessions the fleet still
			// holds) or across two routers fronting the same fleet.
			var rnd [6]byte
			if _, err := crand.Read(rnd[:]); err != nil {
				return http.StatusInternalServerError, errorBody(err)
			}
			id = fmt.Sprintf("r%d-%x", rt.nextID.Add(1), rnd)
		}
		if !validSessionID(id) {
			return http.StatusBadRequest, errorBody(errBadSessionID(id))
		}
		return rt.forward(wire.OpCreate, id, body)
	default:
		return rt.forward(op, session, body)
	}
}

// forward routes one session-scoped control op to the session's owner.
// The op travels with the session id in the frame's session field, so
// the replica applies it to the right session whatever the body says.
// The read lock is held across the round trip: a control op must not
// land on a replica after RemoveReplica has enumerated its sessions —
// the drain would miss it and strand the session off-ring.
func (rt *Router) forward(op byte, session string, body []byte) (uint16, []byte) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	owner, ok := rt.ring.Owner(session)
	cl := rt.clients[owner]
	if !ok || cl == nil {
		return http.StatusServiceUnavailable, errorBody(errf("router has no replicas"))
	}
	status, resp, err := cl.Control(op, session, body)
	if err != nil {
		return http.StatusBadGateway, errorBody(fmt.Errorf("replica %s: %w", owner, err))
	}
	return uint16(status), resp
}

// eachReplica runs f per replica in parallel, collecting per-replica
// results in member order. A failing replica fails only its own slot —
// each caller decides whether a partial fleet answer degrades (name the
// gap, aggregate the rest) or fails outright (zero replicas answered).
// The read lock is held across the fan-out so the member set cannot
// shrink under it.
func (rt *Router) eachReplica(f func(addr string, cl *client.Client) ([]byte, error)) (bodies [][]byte, members []string, errs []error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	members = rt.ring.Members()
	clients := make([]*client.Client, len(members))
	for i, m := range members {
		clients[i] = rt.clients[m]
	}

	bodies = make([][]byte, len(members))
	errs = make([]error, len(members))
	var wg sync.WaitGroup
	for i := range members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if clients[i] == nil {
				errs[i] = errf("no connection")
				return
			}
			bodies[i], errs[i] = f(members[i], clients[i])
		}(i)
	}
	wg.Wait()
	return bodies, members, errs
}

// mergedMetrics merges the reachable replicas' /v1/metrics documents:
// session entries union (ids are globally unique — the ring sends each
// to one replica), decision counters sum, and unreachable members are
// named in DegradedReplicas rather than failing the whole aggregate.
// The error is non-nil only when zero replicas answered.
func (rt *Router) mergedMetrics() (metricsJSON, error) {
	bodies, members, errs := rt.eachReplica(func(addr string, cl *client.Client) ([]byte, error) {
		status, body, err := cl.Metrics()
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("metrics returned %d", status)
		}
		return body, nil
	})
	merged := metricsJSON{Sessions: make(map[string]sessionMetricsJSON)}
	var firstErr error
	answered := 0
	for i := range members {
		err := errs[i]
		if err == nil {
			var m metricsJSON
			if derr := json.Unmarshal(bodies[i], &m); derr != nil {
				err = fmt.Errorf("decoding replica metrics: %w", derr)
			} else {
				answered++
				merged.Decisions += m.Decisions
				merged.CheckpointWrites += m.CheckpointWrites
				merged.CheckpointSkipped += m.CheckpointSkipped
				merged.QTablePoolPages += m.QTablePoolPages
				merged.QTablePoolSharedBytes += m.QTablePoolSharedBytes
				merged.QTableCowFaults += m.QTableCowFaults
				merged.DecideLatency = mergeLatencyJSON(merged.DecideLatency, m.DecideLatency)
				for id, sm := range m.Sessions {
					merged.Sessions[id] = sm
				}
				continue
			}
		}
		merged.DegradedReplicas = append(merged.DegradedReplicas, members[i])
		if firstErr == nil {
			firstErr = fmt.Errorf("replica %s: %w", members[i], err)
		}
	}
	if answered == 0 {
		if firstErr == nil {
			firstErr = errf("router has no replicas")
		}
		return metricsJSON{}, firstErr
	}
	merged.RouteHops = rt.hopSnapshot()
	inflight := rt.inflight.Load()
	merged.RouteInflight = &inflight
	rs := stats.ReadRuntime()
	merged.Runtime = &rs // the router's own process, not the fleet's
	return merged, nil
}

// aggregateMetrics is mergedMetrics in control-plane clothing: a partial
// answer is still 200 (scrapers keep their time series through a replica
// outage) with the gap named in degraded_replicas.
func (rt *Router) aggregateMetrics() (uint16, []byte) {
	merged, err := rt.mergedMetrics()
	if err != nil {
		return http.StatusBadGateway, errorBody(err)
	}
	return http.StatusOK, jsonBody(merged)
}

// aggregateList concatenates the reachable replicas' session lists,
// sorted by id. A partial answer is 206 — callers that must see every
// session (a drain) treat that as failure; observability callers keep
// the majority view. Zero answers is 502.
func (rt *Router) aggregateList() (uint16, []byte) {
	bodies, members, errs := rt.eachReplica(func(addr string, cl *client.Client) ([]byte, error) {
		status, body, err := cl.ListSessions()
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("list returned %d", status)
		}
		return body, nil
	})
	var all []sessionInfo
	var firstErr error
	answered := 0
	for i := range members {
		err := errs[i]
		if err == nil {
			var infos []sessionInfo
			if derr := json.Unmarshal(bodies[i], &infos); derr != nil {
				err = fmt.Errorf("decoding replica list: %w", derr)
			} else {
				answered++
				all = append(all, infos...)
				continue
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("replica %s: %w", members[i], err)
		}
	}
	if answered == 0 {
		if firstErr == nil {
			firstErr = errf("router has no replicas")
		}
		return http.StatusBadGateway, errorBody(firstErr)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if answered < len(members) {
		return http.StatusPartialContent, jsonBody(all)
	}
	return http.StatusOK, jsonBody(all)
}

// RemoveReplica drains one member: every session it owns is frozen
// there, re-created warm from that state on the replica the shrunk ring
// now places it on, and deleted from the leaver. The write lock is held
// throughout, so no decide observes a session mid-move; callers pause
// their decision loops at an epoch boundary around this call (decides
// issued during the move simply block, they do not fail).
//
// The drain is abort-on-failure: if any session cannot move, the
// sessions already moved are moved back, the ring is restored, and the
// replica stays connected — the router never ends up routing a session
// away from the only replica that holds it. It returns the moved
// session ids.
func (rt *Router) RemoveReplica(addr string) ([]string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// Quiesce the pipelined relay: in-flight batches dispatched under the
	// read lock must land before any session moves, or a decision could
	// reach a replica after the drain enumerated its sessions.
	rt.relayWG.Wait()

	leaving := rt.clients[addr]
	if leaving == nil {
		return nil, fmt.Errorf("serve: %s is not a replica", addr)
	}
	if len(rt.clients) == 1 {
		return nil, fmt.Errorf("serve: cannot remove the last replica")
	}

	status, body, err := leaving.ListSessions()
	if err != nil || status != http.StatusOK {
		return nil, fmt.Errorf("serve: listing sessions on %s: status %d err %v", addr, status, err)
	}
	var infos []sessionInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		return nil, fmt.Errorf("serve: decoding session list from %s: %w", addr, err)
	}

	rt.ring.Remove(addr)
	var moved []string
	for _, info := range infos {
		owner, ok := rt.ring.Owner(info.ID)
		if !ok {
			// Unreachable with ≥ 1 survivor; guard anyway.
			rt.ring.Add(addr)
			return nil, fmt.Errorf("serve: ring is empty")
		}
		if err := rt.moveSession(leaving, addr, rt.clients[owner], owner, info); err != nil {
			rt.logf("serve: router: moving %s off %s failed, aborting drain: %v", info.ID, addr, err)
			rt.undoDrain(leaving, addr, infos, moved)
			rt.ring.Add(addr)
			return nil, fmt.Errorf("serve: draining %s: moving %s: %w", addr, info.ID, err)
		}
		moved = append(moved, info.ID)
	}

	delete(rt.clients, addr)
	rt.clearStatus(addr)
	closeErr := leaving.Close()
	epoch := rt.epoch.Add(1)
	rt.pushMembershipLocked()
	rt.log.Info("drained replica", "replica", addr, "sessions_moved", len(moved), "epoch", epoch)
	return moved, closeErr
}

// AddReplica joins a new member to a live fleet — the inverse of
// RemoveReplica. The grown ring steals ≈1/N of the keys for the
// newcomer; exactly the sessions whose owner changed move there by the
// same checkpoint/restore hand-off a drain uses, under the write lock,
// so no decide observes a session mid-move. The join is
// abort-on-failure: a failed move puts already-moved sessions back,
// restores the ring, and leaves the fleet exactly as it was. On success
// the membership epoch bumps and the new table is pushed fleet-wide; it
// returns the moved session ids.
func (rt *Router) AddReplica(addr string) ([]string, error) {
	cl, err := rt.dialReplica(addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dialing replica %s: %w", addr, err)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// Same quiesce as RemoveReplica: no relayed decision may straddle the
	// ring change.
	rt.relayWG.Wait()
	if rt.ring.Has(addr) {
		cl.Close()
		return nil, fmt.Errorf("serve: %s is already a replica", addr)
	}

	// Enumerate every member's sessions before growing the ring; the
	// grown ring then tells us which of them the newcomer owns.
	type source struct {
		addr string
		cl   *client.Client
		info sessionInfo
	}
	var candidates []source
	for _, m := range rt.ring.Members() {
		mc := rt.clients[m]
		if mc == nil {
			cl.Close()
			return nil, fmt.Errorf("serve: no connection to %s", m)
		}
		status, body, err := mc.ListSessions()
		if err != nil || status != http.StatusOK {
			cl.Close()
			return nil, fmt.Errorf("serve: listing sessions on %s: status %d err %v", m, status, err)
		}
		var infos []sessionInfo
		if err := json.Unmarshal(body, &infos); err != nil {
			cl.Close()
			return nil, fmt.Errorf("serve: decoding session list from %s: %w", m, err)
		}
		for _, info := range infos {
			candidates = append(candidates, source{addr: m, cl: mc, info: info})
		}
	}

	rt.ring.Add(addr)
	var moved []source
	for _, c := range candidates {
		if owner, _ := rt.ring.Owner(c.info.ID); owner != addr {
			continue
		}
		if err := rt.moveSession(c.cl, c.addr, cl, addr, c.info); err != nil {
			rt.logf("serve: router: moving %s onto %s failed, aborting join: %v", c.info.ID, addr, err)
			for _, m := range moved {
				if uerr := rt.moveSession(cl, addr, m.cl, m.addr, m.info); uerr != nil {
					rt.logf("serve: router: undo of %s back to %s failed: %v", m.info.ID, m.addr, uerr)
				}
			}
			rt.ring.Remove(addr)
			cl.Close()
			return nil, fmt.Errorf("serve: joining %s: moving %s: %w", addr, c.info.ID, err)
		}
		moved = append(moved, c)
	}

	rt.clients[addr] = cl
	rt.setStatus(addr, true, "")
	epoch := rt.epoch.Add(1)
	rt.pushMembershipLocked()
	rt.log.Info("added replica", "replica", addr, "sessions_moved", len(moved), "epoch", epoch)
	ids := make([]string, len(moved))
	for i, m := range moved {
		ids[i] = m.info.ID
	}
	return ids, nil
}

// undoDrain moves already-moved sessions back onto the replica whose
// drain is being aborted. The ring is still shrunk here, so each moved
// session's current holder is its ring owner. Undo failures are logged
// and skipped — at that point the fleet is degraded either way, and
// leaving the session where it is beats deleting it.
func (rt *Router) undoDrain(leaving *client.Client, addr string, infos []sessionInfo, moved []string) {
	byID := make(map[string]sessionInfo, len(infos))
	for _, info := range infos {
		byID[info.ID] = info
	}
	for _, id := range moved {
		owner, ok := rt.ring.Owner(id)
		if !ok {
			continue
		}
		if err := rt.moveSession(rt.clients[owner], owner, leaving, addr, byID[id]); err != nil {
			rt.logf("serve: router: undo of %s back to %s failed: %v", id, addr, err)
		}
	}
}

// moveSession hands one session between replicas by checkpoint/restore:
// freeze on the source, re-create warm on the destination, delete from
// the source, then persist on the destination. The delete runs after
// the create so the session always exists somewhere; the final
// checkpoint runs after the delete because deleting the source session
// garbage-collects its checkpoint — on shared checkpoint storage that
// would otherwise leave the moved session with no durable state until
// the destination's next periodic sweep. Callers hold the write lock.
func (rt *Router) moveSession(src *client.Client, srcAddr string, dst *client.Client, dstAddr string, info sessionInfo) error {
	if dst == nil {
		return fmt.Errorf("no client for %s", dstAddr)
	}

	// Freeze the learnt state. Governors that keep none (400) move cold;
	// a governor that has not decided yet (409) moves cold too.
	var state json.RawMessage
	status, body, err := src.CheckpointSession(info.ID)
	switch {
	case err != nil:
		return fmt.Errorf("freezing on %s: %w", srcAddr, err)
	case status == http.StatusOK:
		var ck checkpointResponse
		if err := json.Unmarshal(body, &ck); err != nil {
			return fmt.Errorf("decoding checkpoint: %w", err)
		}
		state = ck.State
	case status == http.StatusBadRequest || status == http.StatusConflict:
		// stateless governor / nothing learnt yet
	default:
		return fmt.Errorf("freezing on %s: status %d: %s", srcAddr, status, body)
	}

	// The moved session keeps its identity: workload and cap re-apply,
	// and the manifest it originally warm-started from rides along as
	// provenance (the state itself travels inline). A ThermalCap's
	// ceiling is transient protective state and is not carried — the
	// destination starts at the full ladder and re-throttles within an
	// epoch per over-budget step, exactly as after a restart.
	create := createRequest{
		ID:           info.ID,
		Governor:     info.Governor,
		Platform:     info.Platform,
		Workload:     info.Workload,
		PeriodS:      info.PeriodS,
		Seed:         info.Seed,
		ThermalCapMW: info.ThermalCapMW,
		WarmStart:    info.WarmManifest,
		State:        state,
	}
	status, body, err = dst.CreateSession(jsonBody(create))
	if err != nil {
		return fmt.Errorf("re-creating on %s: %w", dstAddr, err)
	}
	if status != http.StatusCreated {
		return fmt.Errorf("re-creating on %s: status %d: %s", dstAddr, status, body)
	}

	if status, body, err = src.DeleteSession(info.ID); err != nil || status != http.StatusNoContent {
		// The move failed with the session live on BOTH replicas. Remove
		// the destination copy so the source (which the aborting caller
		// will restore to the ring) stays the single authority — an
		// orphaned dst copy would keep checkpointing stale state over the
		// live session's on shared storage.
		if st, b, derr := dst.DeleteSession(info.ID); derr != nil || st != http.StatusNoContent {
			rt.logf("serve: router: removing duplicate %s from %s after failed move: status %d err %v (%s)",
				info.ID, dstAddr, st, derr, b)
		} else if state != nil {
			// That delete garbage-collected the checkpoint; on shared
			// storage it was the survivor's too. Re-freeze on the source
			// (best-effort — its periodic sweep retries).
			if st, _, cerr := src.CheckpointSession(info.ID); cerr != nil || st != http.StatusOK {
				rt.logf("serve: router: re-freezing %s on %s after aborted move: status %d err %v",
					info.ID, srcAddr, st, cerr)
			}
		}
		return fmt.Errorf("deleting from %s: status %d err %v (%s)", srcAddr, status, err, body)
	}

	// Re-persist on the destination; best-effort (the periodic sweep
	// retries), but without it a crash before the next sweep would lose
	// the learnt state the move just carried.
	if state != nil {
		if status, body, err := dst.CheckpointSession(info.ID); err != nil || status != http.StatusOK {
			rt.logf("serve: router: persisting %s on %s after move: status %d err %v (%s)",
				info.ID, dstAddr, status, err, body)
		}
	}
	return nil
}

// NewRouterTCP wraps a Router with a binary-transport listener — the
// routed twin of NewTCP. Clients speak the identical protocol; the
// router forwards each frame to the replica that owns its session.
func NewRouterTCP(rt *Router, lis net.Listener) *TCPServer {
	return newTCPListener(rt, lis)
}

// Handler returns the router's HTTP API: the same surface a flat server
// exposes, so existing clients point at the router unchanged.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", rt.handleRouteCreate)
	mux.HandleFunc("POST /v1/decide", rt.handleRouteDecide)
	mux.HandleFunc("GET /v1/sessions/{id}", rt.handleRouteOp(wire.OpInfo))
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleRouteOp(wire.OpDelete))
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", rt.handleRouteOp(wire.OpCheckpoint))
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsPrometheus(r) {
			// The router scrapes like a replica: the fleet-merged document
			// renders through the same exposition writer.
			merged, err := rt.mergedMetrics()
			if err != nil {
				writeError(w, http.StatusBadGateway, err)
				return
			}
			w.Header().Set("Content-Type", prometheusContentType)
			writePrometheus(w, merged, topSessions(r))
			return
		}
		status, body := rt.control(wire.OpMetrics, "", nil)
		writeControlResult(w, status, body)
	})
	mux.HandleFunc("GET /v1/trace", rt.handleTrace)
	mux.HandleFunc("GET /healthz", rt.handleRouteHealth)
	mux.HandleFunc("GET /v1/members", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, rt.membersInfo())
	})
	return mux
}

// writeControlResult relays a control result as an HTTP response; the
// two planes share status codes and bodies by construction.
func writeControlResult(w http.ResponseWriter, status uint16, body []byte) {
	if len(body) == 0 {
		w.WriteHeader(int(status))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(int(status))
	_, _ = w.Write(body)
}

func (rt *Router) handleRouteCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decodeBody(w, r, &req) {
		return
	}
	status, body := rt.control(wire.OpCreate, req.ID, jsonBody(req))
	writeControlResult(w, status, body)
}

func (rt *Router) handleRouteOp(op byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		status, body := rt.control(op, r.PathValue("id"), nil)
		writeControlResult(w, status, body)
	}
}

// handleRouteDecide serves a JSON decide batch through the same
// grouping/fan-out path as the binary transport.
func (rt *Router) handleRouteDecide(w http.ResponseWriter, r *http.Request) {
	var req decideRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n := len(req.Requests)
	if err := validateDecideBatch(n); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	batch := make([]*observeReq, n)
	for i, item := range req.Requests {
		batch[i] = &observeReq{}
		batch[i].m.Session = []byte(item.Session)
		batch[i].m.Obs = item.Obs.observation()
	}
	rt.decideBatch(batch)
	resp := decideResponse{Decisions: make([]decisionJSON, n)}
	for i, r := range batch {
		// decideBatch zeroes freqMHz on every failure path, matching the
		// flat server's error shape.
		resp.Decisions[i] = decisionJSON{
			Session: req.Requests[i].Session,
			OPPIdx:  int(r.oppIdx),
			FreqMHz: int(r.freqMHz),
			Error:   r.errMsg,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// memberHealthJSON is one member's slot in the fleet health document.
type memberHealthJSON struct {
	Up        bool   `json:"up"`
	Sessions  int    `json:"sessions"`
	Decisions int64  `json:"decisions"`
	Error     string `json:"error,omitempty"`
}

// aggregateHealth sums fleet liveness: one O(1) health op per replica —
// a probe never enumerates sessions. Both control planes serve it (GET
// /healthz and binary OpHealth return the same body). One dead replica
// degrades the answer instead of failing it: status "degraded", the
// failed members named, per-member detail under "members", counters
// aggregated over the reachable majority. Only zero reachable replicas
// is non-200 (503 "down").
func (rt *Router) aggregateHealth() (uint16, []byte) {
	bodies, members, errs := rt.eachReplica(func(addr string, cl *client.Client) ([]byte, error) {
		status, body, err := cl.Health()
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("health returned %d", status)
		}
		return body, nil
	})
	var sessions int
	var decisions int64
	var degraded []string
	detail := make(map[string]memberHealthJSON, len(members))
	up := 0
	for i := range members {
		err := errs[i]
		if err == nil {
			var h healthJSON
			if derr := json.Unmarshal(bodies[i], &h); derr != nil {
				err = fmt.Errorf("decoding health: %w", derr)
			} else {
				up++
				sessions += h.Sessions
				decisions += h.Decisions
				detail[members[i]] = memberHealthJSON{Up: true, Sessions: h.Sessions, Decisions: h.Decisions}
				continue
			}
		}
		degraded = append(degraded, members[i])
		detail[members[i]] = memberHealthJSON{Up: false, Error: err.Error()}
	}
	sort.Strings(degraded)
	status, code := "ok", http.StatusOK
	switch {
	case up == 0:
		status, code = "down", http.StatusServiceUnavailable
	case len(degraded) > 0:
		status = "degraded"
	}
	body := map[string]any{
		"status":           status,
		"sessions":         sessions,
		"replicas":         len(members),
		"replicas_up":      up,
		"epoch":            rt.epoch.Load(),
		"decisions":        decisions, // fleet total, direct traffic included
		"routed_decisions": rt.decisions.Load(),
		"members":          detail,
	}
	if len(degraded) > 0 {
		body["degraded"] = degraded
	}
	return uint16(code), jsonBody(body)
}

func (rt *Router) handleRouteHealth(w http.ResponseWriter, _ *http.Request) {
	status, body := rt.aggregateHealth()
	writeControlResult(w, status, body)
}
