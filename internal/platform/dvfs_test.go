package platform

import (
	"testing"
	"testing/quick"
)

func TestDVFSSetAndCost(t *testing.T) {
	d := NewDVFS(A15Table(), 0)
	if d.CurrentIdx() != 0 {
		t.Fatalf("start idx = %d", d.CurrentIdx())
	}
	// Same index: free.
	if cost := d.Set(0); cost != 0 {
		t.Errorf("no-op transition cost = %v, want 0", cost)
	}
	// One step vs many steps: more steps cost more.
	oneStep := d.Set(1)
	d.Reset(0)
	manySteps := d.Set(18)
	if !(manySteps > oneStep) {
		t.Errorf("18-step cost %v not above 1-step cost %v", manySteps, oneStep)
	}
	if oneStep != d.BaseLatencyS+d.PerStepLatencyS {
		t.Errorf("1-step cost = %v, want base+step", oneStep)
	}
}

func TestDVFSClamps(t *testing.T) {
	d := NewDVFS(A15Table(), 5)
	d.Set(-10)
	if d.CurrentIdx() != 0 {
		t.Errorf("Set(-10) landed on %d, want 0", d.CurrentIdx())
	}
	d.Set(99)
	if d.CurrentIdx() != 18 {
		t.Errorf("Set(99) landed on %d, want 18", d.CurrentIdx())
	}
}

func TestDVFSSetMHz(t *testing.T) {
	d := NewDVFS(A15Table(), 0)
	if _, err := d.SetMHz(1400); err != nil {
		t.Fatal(err)
	}
	if d.Current().FreqMHz != 1400 {
		t.Fatalf("SetMHz landed on %v", d.Current())
	}
	if _, err := d.SetMHz(1234); err == nil {
		t.Fatal("SetMHz(1234) must error")
	}
}

func TestDVFSStatistics(t *testing.T) {
	d := NewDVFS(A15Table(), 0)
	d.Set(3)
	d.Set(3) // no-op, not counted
	d.Set(7)
	if d.Transitions() != 2 {
		t.Errorf("Transitions = %d, want 2", d.Transitions())
	}
	if d.TotalCostS() <= 0 {
		t.Errorf("TotalCostS = %v, want > 0", d.TotalCostS())
	}
	d.Reset(0)
	if d.Transitions() != 0 || d.TotalCostS() != 0 || d.CurrentIdx() != 0 {
		t.Error("Reset did not clear statistics")
	}
}

func TestNewDVFSPanicsOnBadTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDVFS on empty table must panic")
		}
	}()
	NewDVFS(OPPTable{}, 0)
}

// Property: after any sequence of Set calls the current index is valid and
// cumulative cost equals the sum of returned costs.
func TestDVFSCostAccountingProperty(t *testing.T) {
	table := A15Table()
	f := func(targets []int8) bool {
		d := NewDVFS(table, 0)
		var sum float64
		for _, raw := range targets {
			sum += d.Set(int(raw))
		}
		idx := d.CurrentIdx()
		if idx < 0 || idx >= table.Len() {
			return false
		}
		return almostEqualFloat(sum, d.TotalCostS(), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func almostEqualFloat(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
