package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"qgov/internal/qpage"
)

// QTable is the look-up table of Section II-A: one row per discretised
// system state, one column per V-F action, holding the learnt long-term
// pay-off of taking that action in that state.
//
// InitQ seeds unvisited entries. A mildly pessimistic value (below the
// typical reward) makes the greedy policy prefer actions it has actually
// seen succeed, leaving exploration to the ε/EPD machinery where the paper
// puts it; an optimistic value (0 with negative rewards) would force a
// blind sweep of all 19 actions per state and inflate the exploration
// counts of Table II for every method alike.
//
// Storage is paged copy-on-write (internal/qpage): a table built through a
// pool shares immutable pages with every other table of identical content
// — all cold sessions on one platform, all sessions warm-started from one
// manifest — and Update copies only the touched page before its first
// write. rowVisits stays per-table: the convergence tracker reads it for
// every state on every decision, it is tiny, and keeping it private means
// the hot read path never consults the pool.
type QTable struct {
	states  int
	actions int
	tab     *qpage.Table
	// rowVisits caches per-state visit totals. The convergence tracker
	// reads RowVisits for every state on every decision, which made the
	// O(actions) sum the single hottest path of the decision service;
	// the cache turns it into a load.
	rowVisits []int
}

// NewQTable creates a table with every entry at initQ, with private
// (unshared) storage.
func NewQTable(states, actions int, initQ float64) *QTable {
	if states < 1 || actions < 1 {
		panic(fmt.Sprintf("core: QTable(%d states, %d actions)", states, actions))
	}
	return &QTable{
		states:    states,
		actions:   actions,
		tab:       qpage.New(states, actions, initQ),
		rowVisits: make([]int, states),
	}
}

// NewQTableShared creates a table with every entry at initQ whose pages
// are interned in pool: every table so created shares one uniform page
// until its first update faults a private copy.
func NewQTableShared(pool *qpage.Pool, states, actions int, initQ float64) *QTable {
	if states < 1 || actions < 1 {
		panic(fmt.Sprintf("core: QTable(%d states, %d actions)", states, actions))
	}
	return &QTable{
		states:    states,
		actions:   actions,
		tab:       pool.NewShared(states, actions, initQ),
		rowVisits: make([]int, states),
	}
}

// Clone returns a table sharing every pooled page of t (and deep-copying
// private ones) — how sessions warm-started from one interned base table
// come to share its storage.
func (t *QTable) Clone() *QTable {
	nt := &QTable{
		states:    t.states,
		actions:   t.actions,
		tab:       t.tab.Clone(),
		rowVisits: make([]int, t.states),
	}
	copy(nt.rowVisits, t.rowVisits)
	return nt
}

// Intern publishes t's pages into pool, deduplicating against identical
// content already there. Idempotent.
func (t *QTable) Intern(pool *qpage.Pool) { t.tab.Intern(pool) }

// Release returns t's pooled page references to the pool. The table is
// unusable afterwards; sessions call it exactly once, on delete.
func (t *QTable) Release() {
	if t.tab != nil {
		t.tab.Release()
	}
}

// recomputeRowVisits rebuilds the per-state cache from visits — the
// deserialisation paths call it after replacing the underlying storage.
func (t *QTable) recomputeRowVisits() {
	if len(t.rowVisits) != t.states {
		t.rowVisits = make([]int, t.states)
	}
	for s := 0; s < t.states; s++ {
		sum := 0
		for _, v := range t.tab.VRow(s) {
			sum += int(v)
		}
		t.rowVisits[s] = sum
	}
}

// States returns |S|.
func (t *QTable) States() int { return t.states }

// Actions returns |A|.
func (t *QTable) Actions() int { return t.actions }

// Q returns the value of (state, action).
func (t *QTable) Q(state, action int) float64 {
	t.check(state, action)
	return t.tab.Row(state)[action]
}

// Visits returns how many updates (state, action) has received.
func (t *QTable) Visits(state, action int) int {
	t.check(state, action)
	return int(t.tab.VRow(state)[action])
}

// RowVisits returns the total updates state has received across actions.
func (t *QTable) RowVisits(state int) int {
	if state < 0 || state >= t.states {
		panic(fmt.Sprintf("core: state %d outside [0,%d)", state, t.states))
	}
	return t.rowVisits[state]
}

// VisitTotal returns the total updates across all states and actions.
func (t *QTable) VisitTotal() int {
	n := 0
	for _, v := range t.rowVisits {
		n += v
	}
	return n
}

// Update applies Bellman's optimality equation (Eq. 3):
//
//	Q(s,a) ← (1−α)·Q(s,a) + α·(R + γ·max_a' Q(s', a'))
//
// where s' is the (predicted) next state. The bootstrap value is read
// before the row is made writable: if s' shares the touched page, the
// pre-update value is what Eq. 3 wants either way.
func (t *QTable) Update(state, action int, reward float64, nextState int, alpha, discount float64) {
	t.check(state, action)
	best := t.MaxQ(nextState)
	q, v := t.tab.MutRow(state)
	q[action] = (1-alpha)*q[action] + alpha*(reward+discount*best)
	v[action]++
	t.rowVisits[state]++
}

// UpdateSARSA applies the on-policy temporal-difference update:
//
//	Q(s,a) ← (1−α)·Q(s,a) + α·(R + γ·Q(s', a'))
//
// where a' is the action the policy has *actually chosen* for the next
// epoch — the SARSA variant of Eq. 3, kept for the on-policy ablation.
// Off-policy Q-learning bootstraps from the greedy value even while the
// ε/EPD machinery is still exploring, which inflates values reachable
// only through actions the final policy will not take; SARSA evaluates
// the policy being followed.
func (t *QTable) UpdateSARSA(state, action int, reward float64, nextState, nextAction int, alpha, discount float64) {
	t.check(state, action)
	next := t.Q(nextState, nextAction)
	q, v := t.tab.MutRow(state)
	q[action] = (1-alpha)*q[action] + alpha*(reward+discount*next)
	v[action]++
	t.rowVisits[state]++
}

// MaxQ returns max over actions of Q(state, ·).
func (t *QTable) MaxQ(state int) float64 {
	row := t.row(state)
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// BestAction returns argmax over actions of Q(state, ·); ties resolve to
// the lowest index (slowest V-F point, the energy-conservative choice).
func (t *QTable) BestAction(state int) int {
	row := t.row(state)
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// BestActionSticky returns the greedy action with hysteresis: the current
// action is kept unless a challenger beats it by more than margin. With
// stochastic rewards the Q-values of adjacent V-F points in a
// well-visited state hover within sampling noise of each other; without a
// dead-band the greedy choice flips indefinitely, which both thrashes the
// DVFS actuator and makes "the policy has stabilised" undetectable.
func (t *QTable) BestActionSticky(state, current int, margin float64) int {
	row := t.row(state)
	if current < 0 || current >= len(row) {
		return t.BestAction(state)
	}
	best := t.BestAction(state)
	if row[best] > row[current]+margin {
		return best
	}
	return current
}

// GreedyPolicy returns the best action for every state — the fingerprint
// the convergence tracker watches.
func (t *QTable) GreedyPolicy() []int {
	out := make([]int, t.states)
	for s := range out {
		out[s] = t.BestAction(s)
	}
	return out
}

// Row returns a copy of one state's action values.
func (t *QTable) Row(state int) []float64 {
	return append([]float64(nil), t.row(state)...)
}

// row returns a read-only view of one state's action values; the view may
// alias a shared page.
func (t *QTable) row(state int) []float64 {
	if state < 0 || state >= t.states {
		panic(fmt.Sprintf("core: state %d outside [0,%d)", state, t.states))
	}
	return t.tab.Row(state)
}

func (t *QTable) check(state, action int) {
	if state < 0 || state >= t.states || action < 0 || action >= t.actions {
		panic(fmt.Sprintf("core: (%d,%d) outside %dx%d table", state, action, t.states, t.actions))
	}
}

// qtableJSON is the serialisation schema for learning transfer.
type qtableJSON struct {
	States  int       `json:"states"`
	Actions int       `json:"actions"`
	Q       []float64 `json:"q"`
	Visits  []int     `json:"visits"`
}

// MarshalJSON implements json.Marshaler, so a table embeds directly in
// larger checkpoint envelopes (governor.Checkpointer payloads). The paged
// storage is materialised flat: the wire format is identical to the
// pre-paging layout, byte for byte.
func (t *QTable) MarshalJSON() ([]byte, error) {
	return json.Marshal(qtableJSON{States: t.states, Actions: t.actions, Q: t.tab.FlatQ(), Visits: t.tab.FlatV()})
}

// UnmarshalJSON implements json.Unmarshaler with the same validation Load
// applies: consistent dimensions, non-negative visit counts, and finite
// Q-values — a NaN or ±Inf entry would poison every max/argmax the policy
// computes from the row it lands in, so a corrupted table is rejected
// whole rather than imported.
func (t *QTable) UnmarshalJSON(b []byte) error {
	var j qtableJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if j.States < 1 || j.Actions < 1 || len(j.Q) != j.States*j.Actions || len(j.Visits) != len(j.Q) {
		return fmt.Errorf("core: Q-table is inconsistent (%d states, %d actions, %d values)",
			j.States, j.Actions, len(j.Q))
	}
	for i, q := range j.Q {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return fmt.Errorf("core: Q-table is poisoned: Q(%d,%d) = %v", i/j.Actions, i%j.Actions, q)
		}
	}
	for i, v := range j.Visits {
		if v < 0 {
			return fmt.Errorf("core: Q-table is inconsistent: Visits(%d,%d) = %d", i/j.Actions, i%j.Actions, v)
		}
	}
	if t.tab != nil {
		// Re-unmarshalling into a live table must not strand pool refs.
		t.tab.Release()
	}
	t.states, t.actions = j.States, j.Actions
	t.tab = qpage.FromFlat(j.States, j.Actions, j.Q, j.Visits)
	t.recomputeRowVisits()
	return nil
}

// Save serialises the table as JSON. Together with Load it implements the
// learning-transfer capability of Shafik et al. (TCAD'16, the paper's ref
// [12]): a table learnt for one application run seeds the next, skipping
// the exploration phase.
func (t *QTable) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("core: saving Q-table: %w", err)
	}
	return bw.Flush()
}

// Load restores a table saved with Save, rejecting inconsistent dimensions
// and non-finite Q-values (see UnmarshalJSON).
func Load(r io.Reader) (*QTable, error) {
	t := new(QTable)
	if err := json.NewDecoder(r).Decode(t); err != nil {
		return nil, fmt.Errorf("core: loading Q-table: %w", err)
	}
	return t, nil
}
