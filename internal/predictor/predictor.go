// Package predictor implements the workload predictors used by the
// run-time manager and its ablation studies.
//
// The paper's RTM predicts the next decision epoch's CPU cycle count with
// an exponential weighted moving average (EWMA, Eq. 1, smoothing factor
// γ = 0.6) and classifies the prediction into a Q-table state. Section II-A
// argues EWMA over the adaptive-filter predictors of earlier work, whose
// filter lag hurts on dynamically varying workloads — the NLMS type here
// exists so that claim can be measured rather than assumed (the γ-sweep and
// predictor-comparison ablations in internal/experiments).
package predictor

import "fmt"

// Predictor forecasts the next epoch's workload from the history of actual
// workloads. Implementations are deterministic state machines.
//
// Protocol: Predict returns the forecast for epoch i+1; Observe feeds the
// actual value for epoch i+1 once it is known. The first Predict (before
// any Observe) returns the implementation's prior — callers treat epoch 0
// as unpredicted warm-up.
type Predictor interface {
	// Name identifies the predictor in tables and CSV output.
	Name() string
	// Predict returns the current forecast for the next value.
	Predict() float64
	// Observe incorporates the actual value for the epoch just finished.
	Observe(actual float64)
	// Reset returns the predictor to its initial state.
	Reset()
}

// Record is one epoch of a prediction trace.
type Record struct {
	Predicted float64
	Actual    float64
}

// Evaluate runs a predictor over a workload series and returns the aligned
// prediction/actual records, skipping no epochs: record i holds the
// forecast made *before* observing series[i]. The predictor is Reset first.
func Evaluate(p Predictor, series []float64) []Record {
	p.Reset()
	out := make([]Record, len(series))
	for i, actual := range series {
		out[i] = Record{Predicted: p.Predict(), Actual: actual}
		p.Observe(actual)
	}
	return out
}

// Split separates records into prediction and actual slices for the error
// metrics in internal/stats.
func Split(records []Record) (pred, actual []float64) {
	pred = make([]float64, len(records))
	actual = make([]float64, len(records))
	for i, r := range records {
		pred[i] = r.Predicted
		actual[i] = r.Actual
	}
	return pred, actual
}

// New constructs a predictor by name with its default parameters:
// "ewma" (γ=0.6, the paper's choice), "last", "ma" (window 8),
// "holt" (α=0.5, β=0.3), "nlms" (order 4, µ=0.5).
func New(name string) (Predictor, error) {
	switch name {
	case "ewma":
		return NewEWMA(0.6), nil
	case "last":
		return NewLastValue(), nil
	case "ma":
		return NewMovingAverage(8), nil
	case "holt":
		return NewHolt(0.5, 0.3), nil
	case "nlms":
		return NewNLMS(4, 0.5), nil
	default:
		return nil, fmt.Errorf("predictor: unknown predictor %q", name)
	}
}
