package workload

import (
	"fmt"
	"math/rand"

	"qgov/internal/fft"
)

// FFTAppConfig models the paper's FFT application: a periodic pipeline
// that transforms batches of sample blocks at a fixed block rate (32 fps in
// Table II). Every thread performs BatchPerThread transforms of length N
// per frame.
//
// Unlike the video models, the demand here is not drawn from a
// distribution: it is derived from the actual butterfly count of the
// radix-2 kernel in internal/fft ((N/2)·log2 N per transform) times a
// cycles-per-butterfly cost, plus a small lognormal factor for
// cache-residency variation. That is why the FFT trace has by far the
// lowest coefficient of variation of the evaluated applications — the
// property that makes it converge fastest in Table II.
type FFTAppConfig struct {
	Name           string
	FPS            float64
	NumFrames      int
	Threads        int
	N              int     // transform length (power of two)
	BatchPerThread int     // transforms per thread per frame
	CyclesPerBfly  float64 // core cycles per radix-2 butterfly
	JitterSigma    float64 // lognormal sigma for cache/input variation
	Seed           int64
}

// Validate reports configuration errors, including a non-power-of-two N.
func (c FFTAppConfig) Validate() error {
	switch {
	case c.FPS <= 0:
		return fmt.Errorf("workload: fft app %q needs positive FPS", c.Name)
	case c.NumFrames < 1:
		return fmt.Errorf("workload: fft app %q needs frames", c.Name)
	case c.Threads < 1:
		return fmt.Errorf("workload: fft app %q needs threads", c.Name)
	case c.N < 2 || c.N&(c.N-1) != 0:
		return fmt.Errorf("workload: fft app %q needs power-of-two N, got %d", c.Name, c.N)
	case c.BatchPerThread < 1:
		return fmt.Errorf("workload: fft app %q needs a positive batch", c.Name)
	case c.CyclesPerBfly <= 0:
		return fmt.Errorf("workload: fft app %q needs positive cycles per butterfly", c.Name)
	}
	return nil
}

// Generate produces the trace. It runs one real transform to confirm the
// kernel's counted work matches the analytic formula used for the rest of
// the trace — if the kernel ever diverges from its model, trace generation
// fails loudly rather than silently drifting.
func (c FFTAppConfig) Generate() Trace {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	probe := make([]complex128, c.N)
	for i := range probe {
		probe[i] = complex(float64(i%17), 0)
	}
	ops, err := fft.Transform(probe)
	if err != nil {
		panic(err)
	}
	if ops.Butterflies != fft.ExpectedButterflies(c.N) {
		panic(fmt.Sprintf("workload: fft kernel counted %d butterflies, analytic %d",
			ops.Butterflies, fft.ExpectedButterflies(c.N)))
	}
	perTransform := ops.CyclesAt(c.CyclesPerBfly)

	rng := rand.New(rand.NewSource(c.Seed))
	frames := make([]Frame, c.NumFrames)
	for i := range frames {
		cy := make([]uint64, c.Threads)
		for j := range cy {
			base := float64(perTransform) * float64(c.BatchPerThread)
			cy[j] = uint64(base * logNormal(rng, c.JitterSigma))
		}
		frames[i] = Frame{Cycles: cy}
	}
	return Trace{Name: c.Name, RefTimeS: 1 / c.FPS, Frames: frames}
}

// FFT32 is the Table II FFT workload: 32 blocks per second, 64K-point
// transforms, six per thread per frame. At 10 cycles per butterfly the
// per-thread demand is ≈31 Mcycles, requiring ≈1 GHz at the 31.25 ms
// deadline — mid-table, with ≈3 % variation.
func FFT32(seed int64, numFrames int) Trace {
	return FFTAppConfig{
		Name:           "fft-32fps",
		FPS:            32,
		NumFrames:      numFrames,
		Threads:        4,
		N:              1 << 16,
		BatchPerThread: 6,
		CyclesPerBfly:  10,
		JitterSigma:    0.03,
		Seed:           seed,
	}.Generate()
}
