// Command rtmd serves governor decisions online: the run-time manager as
// a daemon instead of a closed simulation loop. Each controlled cluster
// creates a session (its own governor instance and learning state) and
// posts one observation per decision epoch to the batched /v1/decide
// endpoint, receiving the operating-point index to apply next — the
// deployment direction of Kim et al. (arXiv:1712.00076): take the learnt
// manager out of the simulator and put it behind the OS.
//
// Usage:
//
//	rtmd -addr :8090
//	rtmd -addr :8090 -listen-tcp :8091
//	rtmd -addr :8090 -checkpoint-dir /var/lib/rtmd -checkpoint-every 30s
//	rtmd -addr :8090 -registry-dir /srv/rtmd-registry
//	rtmd -route -replicas host1:8091,host2:8091 -addr :8080 -listen-tcp :8081
//	rtmd -fleet router:8081 -fleet-sessions 256 -fleet-for 10s
//
//	curl -s localhost:8090/v1/sessions -d '{"id":"cluster0","governor":"rtm","seed":1}'
//	curl -s localhost:8090/v1/decide -d '{"requests":[{"session":"cluster0","obs":{"epoch":-1}}]}'
//
// -listen-tcp additionally serves the binary wire protocol (see
// internal/wire and the README's "Wire protocol" section) on persistent
// multiplexed connections — the transport fast path, several times the
// decisions/s of the JSON endpoint. HTTP stays up alongside it as the
// control plane (sessions are created and checkpointed over JSON) and as
// the differential-testing oracle for the binary path. The control
// plane also runs over the binary protocol (wire control frames), so a
// routed fleet needs no HTTP between tiers.
//
// -route turns rtmd into the stateless routing tier of a sharded fleet:
// it owns no sessions, places every session id on one of the -replicas
// (comma-separated binary-transport addresses) with a consistent-hash
// ring, and forwards both planes over multiplexed binary connections.
// The decide path is a zero-copy pipelined relay: observe payload bytes
// are forwarded verbatim (only the request id is rewritten) and up to
// -pipeline-depth batches (default 4) stay in flight per inbound
// connection; -pipeline-depth -1 restores the legacy blocking relay.
// -conns-per-replica opens N connections per replica and stripes
// relayed batches across them. Point every replica at the same
// -checkpoint-dir (shared storage) and sessions can hand off between
// replicas by checkpoint/restore. Clients talk to a router exactly as
// they would to a flat rtmd.
//
// -fleet turns rtmd into a ring-aware direct bench client instead of a
// server: it fetches the membership table from the given router's
// binary listener, opens one multiplexed connection per replica,
// creates -fleet-sessions sessions (through the router, the placement
// authority), drives decide batches straight to the ring owners for
// -fleet-for (-fleet-conns stripes each replica's traffic over N
// connections), reports decisions/s, deletes its sessions, and exits.
// This is the load-generation twin of BenchmarkDirectDecideThroughput
// for benching a real fleet over the network.
//
// Learning state is checkpointed periodically and on graceful shutdown
// (SIGINT/SIGTERM) — both listeners drain before the final freeze — and
// a restarted rtmd warm-starts every session that is re-created under
// its old id.
//
// -registry-dir points the replica at a checkpoint-registry blob store
// (internal/registry) instead of a plain checkpoint directory: session
// checkpoints live beside the registry's published manifests, replicas
// sharing the store hand sessions off through it, and session creates
// may carry warm_start ("auto" or a manifest id) to start from the
// fleet's pooled training. -ring-self/-ring-members tell a routed
// replica which consistent-hash shards it owns, so its startup
// compaction sweep reads only its own fraction of the shared store;
// both flags must carry the router's -replicas address strings verbatim
// — the ring hashes member strings, so "host1:8091" and "10.0.0.1:8091"
// are different members even when they name the same machine.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"qgov/internal/governor"
	"qgov/internal/loadgen"
	"qgov/internal/registry"
	"qgov/internal/ring"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
	"qgov/internal/sessionstore"
	"qgov/internal/stats"
	"qgov/internal/trace"

	// Register the RTM variants with the governor registry.
	_ "qgov/internal/core"
)

func main() {
	var (
		addr       = flag.String("addr", ":8090", "HTTP listen address (control plane + JSON decide)")
		tcpAddr    = flag.String("listen-tcp", "", "binary wire-protocol listen address (empty: HTTP only)")
		route      = flag.Bool("route", false, "run as a stateless router over -replicas instead of serving sessions")
		replicas   = flag.String("replicas", "", "comma-separated replica binary-transport addresses (with -route)")
		connsPer   = flag.Int("conns-per-replica", 1, "binary connections the router holds per replica; batches stripe across them (with -route)")
		pipeDepth  = flag.Int("pipeline-depth", 0, "relayed decide batches kept in flight per client connection; 0 selects the default, negative restores the legacy blocking relay (with -route)")
		platform   = flag.String("platform", "a15", "default platform variant for new sessions")
		periodS    = flag.Float64("period", 0.040, "default decision-epoch deadline Tref in seconds")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for session learning-state checkpoints (empty: no persistence)")
		regDir     = flag.String("registry-dir", "", "checkpoint-registry blob store root; enables warm_start resolution and stores session checkpoints in the registry (mutually exclusive with -checkpoint-dir)")
		ckptEvery  = flag.Duration("checkpoint-every", 30*time.Second, "period of the background checkpoint sweep")
		ringSelf   = flag.String("ring-self", "", "this replica's address exactly as it appears in the router's -replicas list; with -ring-members, restricts the startup compaction sweep to this member's own shards")
		ringAll    = flag.String("ring-members", "", "the router's -replicas list, verbatim (placement hashes the address strings, so the lists must match byte for byte)")
		drainGrace = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		quiet      = flag.Bool("quiet", false, "suppress operational logging")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and /debug/runtime on this address (empty: off)")

		traceSample = flag.Float64("trace-sample", 0, "probability a decide batch is head-sampled into the trace ring (0: off)")
		traceSlow   = flag.Duration("trace-slow", 0, "tail-capture decide batches slower than this (0: off)")
		traceBuf    = flag.Int("trace-buf", 0, "trace ring capacity in spans (0: default)")

		fleetAddr     = flag.String("fleet", "", "run as a ring-aware direct bench client against this router binary-transport address, then exit")
		fleetSessions = flag.Int("fleet-sessions", 256, "sessions the -fleet bench client creates and drives")
		fleetFor      = flag.Duration("fleet-for", 5*time.Second, "how long the -fleet bench client drives decides")
		fleetConns    = flag.Int("fleet-conns", 1, "connections the -fleet bench client opens per replica")

		lgSpec   = flag.String("loadgen", "", "run as a workload-generating client from this spec file (JSON, see internal/loadgen), then exit")
		lgReplay = flag.String("loadgen-replay", "", "replay this recorded trace instead of generating from a spec")
		lgAddr   = flag.String("loadgen-addr", "", "binary-transport address to drive (a flat rtmd or a router; empty: run against the in-process oracle)")
		lgDirect = flag.Bool("loadgen-direct", false, "drive the fleet directly (ring-aware client.Fleet; -loadgen-addr must then be a router)")
		lgRecord = flag.String("loadgen-record", "", "record the executed schedule to this trace file (with -loadgen and no -loadgen-addr, record without executing)")
		lgLanes  = flag.Int("loadgen-lanes", 0, "concurrent executor lanes (0: min(GOMAXPROCS, 8))")
		lgBatch  = flag.Int("loadgen-batch", 0, "max decides coalesced per batch (0: 512)")
		lgPace   = flag.Float64("loadgen-pace", 0, "pace dispatch against the schedule clock (1: recorded speed; 0: flat out)")
		lgPrefix = flag.String("loadgen-id-prefix", "", "override the spec's session-id prefix (several generators can share one server without id collisions)")
	)
	flag.Parse()

	logger, err := buildLogger(*quiet, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	// Client modes (loadgen, fleet) and this file's own progress lines
	// still speak printf; route them through the structured logger so
	// -log-level/-log-format govern every line the process emits.
	logf := func(format string, args ...any) {
		if logger.Enabled(context.Background(), slog.LevelInfo) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}

	tracer, err := buildTracer(*traceSample, *traceSlow, *traceBuf)
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		go startDebug(*debugAddr, logf)
	}

	if *lgSpec != "" || *lgReplay != "" {
		if *route || *fleetAddr != "" {
			fatal(errors.New("-loadgen is a client mode; it cannot be combined with -route or -fleet"))
		}
		if *lgSpec != "" && *lgReplay != "" {
			fatal(errors.New("-loadgen and -loadgen-replay are two sources for one schedule; pick one"))
		}
		if *lgPrefix != "" && *lgReplay != "" {
			// A trace's events already carry their session ids; renaming
			// them here would desync decides from the creates they follow.
			fatal(errors.New("-loadgen-id-prefix rewrites generated ids; it cannot be combined with -loadgen-replay"))
		}
		loadgenMain(loadgenConfig{
			spec:     *lgSpec,
			replay:   *lgReplay,
			addr:     *lgAddr,
			direct:   *lgDirect,
			record:   *lgRecord,
			lanes:    *lgLanes,
			batch:    *lgBatch,
			pace:     *lgPace,
			idPrefix: *lgPrefix,
		}, logf)
		return
	}
	flag.Visit(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "loadgen-") {
			fatal(fmt.Errorf("-%s requires -loadgen or -loadgen-replay", f.Name))
		}
	})

	if *fleetAddr != "" {
		if *route {
			fatal(errors.New("-fleet is a client mode; it cannot be combined with -route"))
		}
		fleetMain(*fleetAddr, *fleetSessions, *fleetFor, *fleetConns, logf)
		return
	}

	if *route {
		// Session-serving flags are dead in router mode (the router owns
		// no sessions and no checkpoints); passing one means the operator
		// expects behavior they are not getting, so fail loudly instead
		// of silently dropping it.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "checkpoint-dir", "registry-dir", "checkpoint-every", "platform", "period", "ring-self", "ring-members":
				fatal(fmt.Errorf("-%s applies to replicas, not the router; set it on each replica rtmd", f.Name))
			}
		})
		routeMain(*addr, *tcpAddr, *replicas, *connsPer, *pipeDepth, *drainGrace, logger, tracer, logf)
		return
	}
	if *replicas != "" {
		fatal(errors.New("-replicas requires -route"))
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "conns-per-replica", "pipeline-depth":
			fatal(fmt.Errorf("-%s requires -route", f.Name))
		}
	})

	var ckpt sessionstore.CheckpointStore
	var reg *registry.Registry
	switch {
	case *regDir != "" && *ckptDir != "":
		fatal(errors.New("-checkpoint-dir and -registry-dir are two homes for the same state; pick one"))
	case *regDir != "":
		blobs, err := registry.NewDir(*regDir)
		if err != nil {
			fatal(err)
		}
		reg = registry.New(blobs)
		ckpt = registry.Checkpoints(blobs)
	case *ckptDir != "":
		d, err := sessionstore.NewDir(*ckptDir)
		if err != nil {
			fatal(err)
		}
		ckpt = d
	}

	// A routed replica that knows the fleet's ring sweeps only its own
	// shards at startup instead of reading every checkpoint in a shared
	// store.
	var compactOwn func(id string) bool
	if *ringSelf != "" || *ringAll != "" {
		if *ringSelf == "" || *ringAll == "" {
			fatal(errors.New("-ring-self and -ring-members go together"))
		}
		var members []string
		for _, m := range strings.Split(*ringAll, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		rg := ring.New(0, members...)
		if !rg.Has(*ringSelf) {
			fatal(fmt.Errorf("-ring-self %q is not in -ring-members %v", *ringSelf, members))
		}
		compactOwn = func(id string) bool {
			owner, ok := rg.Owner(id)
			return ok && owner == *ringSelf
		}
	}

	srv := serve.New(serve.Options{
		DefaultPlatform:  *platform,
		DefaultPeriodS:   *periodS,
		Checkpoints:      ckpt,
		CheckpointEvery:  *ckptEvery,
		Registry:         reg,
		CompactionFilter: compactOwn,
		Log:              logger,
		Tracer:           tracer,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	var tcpSrv *serve.TCPServer
	if *tcpAddr != "" {
		lis, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fatal(err)
		}
		tcpSrv = serve.NewTCP(srv, lis)
		go func() {
			// An accept error ends the binary listener but must not kill
			// the process: HTTP keeps serving and, crucially, the final
			// checkpoint still runs on shutdown.
			if err := tcpSrv.Serve(); err != nil {
				logf("rtmd: binary transport down: %v", err)
			}
		}()
		logf("rtmd: binary transport on %s", lis.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		logf("rtmd: shutting down (draining for up to %v)", *drainGrace)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		// Drain both transports in parallel within the same grace window.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := hs.Shutdown(drainCtx); err != nil {
				logf("rtmd: http drain: %v", err)
			}
		}()
		if tcpSrv != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := tcpSrv.Shutdown(drainCtx); err != nil {
					logf("rtmd: tcp drain: %v", err)
				}
			}()
		}
		wg.Wait()
	}()

	logf("rtmd: serving on %s (default platform %s, Tref %gs)", *addr, *platform, *periodS)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	// ListenAndServe returns the moment Shutdown begins; wait for both
	// transports to finish draining before the final checkpoint, so no
	// in-flight decision can land between the freeze and exit.
	<-drained
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// routeMain runs the routing tier: no sessions, no checkpoints — just
// the ring, one multiplexed binary connection per replica, and the same
// two listener fronts a replica has.
func routeMain(addr, tcpAddr, replicaList string, connsPer, pipeDepth int, drainGrace time.Duration, logger *slog.Logger, tracer *trace.Tracer, logf func(string, ...any)) {
	var addrs []string
	for _, a := range strings.Split(replicaList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal(errors.New("-route requires -replicas host1:port,host2:port,..."))
	}
	opt := serve.RouterOptions{Log: logger, Tracer: tracer, ConnsPerReplica: connsPer}
	if pipeDepth < 0 {
		opt.LegacyRelay = true
	} else {
		opt.PipelineDepth = pipeDepth
	}
	rt, err := serve.NewRouter(addrs, opt)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Addr: addr, Handler: rt.Handler()}

	var tcpSrv *serve.TCPServer
	if tcpAddr != "" {
		lis, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			fatal(err)
		}
		tcpSrv = serve.NewRouterTCP(rt, lis)
		go func() {
			if err := tcpSrv.Serve(); err != nil {
				logf("rtmd: routed binary transport down: %v", err)
			}
		}()
		logf("rtmd: routed binary transport on %s", lis.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		logf("rtmd: router shutting down (draining for up to %v)", drainGrace)
		drainCtx, cancel := context.WithTimeout(context.Background(), drainGrace)
		defer cancel()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := hs.Shutdown(drainCtx); err != nil {
				logf("rtmd: http drain: %v", err)
			}
		}()
		if tcpSrv != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := tcpSrv.Shutdown(drainCtx); err != nil {
					logf("rtmd: tcp drain: %v", err)
				}
			}()
		}
		wg.Wait()
	}()

	logf("rtmd: routing %d replicas on %s: %s", len(addrs), addr, strings.Join(addrs, ", "))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-drained
	if err := rt.Close(); err != nil {
		fatal(err)
	}
}

// fleetMain is the -fleet bench client: the ring-aware direct data
// path (client.Fleet) driven flat out against a running router's
// fleet, reporting end-to-end decisions/s. Sessions are created and
// deleted through the router so the bench leaves the fleet as it
// found it.
func fleetMain(routerAddr string, sessions int, dur time.Duration, conns int, logf func(string, ...any)) {
	if sessions < 1 {
		fatal(errors.New("-fleet-sessions must be at least 1"))
	}
	fl, err := client.DialFleetOpts(routerAddr, client.DialOptions{Conns: conns})
	if err != nil {
		fatal(err)
	}
	defer fl.Close()
	replicas := len(fl.Replicas())
	logf("rtmd: fleet client holds %d direct replica connections (membership epoch %d)", replicas, fl.Epoch())

	obsTemplate := governor.Observation{
		Epoch:     1,
		Cycles:    []uint64{30e6, 31e6, 29e6, 30e6},
		Util:      []float64{0.6, 0.5, 0.7, 0.6},
		ExecTimeS: 0.025,
		PeriodS:   0.040,
		WallTimeS: 0.040,
		PowerW:    2,
		TempC:     50,
		OPPIdx:    10,
	}
	ids := make([]string, sessions)
	obs := make([]governor.Observation, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("fleet-bench-%d-%d", os.Getpid(), i)
		obs[i] = obsTemplate
		body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, ids[i], i+1)
		st, resp, err := fl.CreateSession([]byte(body))
		if err != nil {
			fatal(err)
		}
		if st != http.StatusCreated {
			fatal(fmt.Errorf("creating %s: status %d: %s", ids[i], st, resp))
		}
	}
	defer func() {
		for _, id := range ids {
			_, _, _ = fl.DeleteSession(id)
		}
	}()

	lanes := 2 * replicas
	if lanes < 2 {
		lanes = 2
	}
	if lanes > sessions {
		lanes = sessions
	}
	per := sessions / lanes
	deadline := time.Now().Add(dur)
	var total atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, lanes)
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			lo, hi := l*per, (l+1)*per
			if l == lanes-1 {
				hi = sessions
			}
			out := make([]client.Decision, hi-lo)
			for time.Now().Before(deadline) {
				if err := fl.DecideBatch(ids[lo:hi], obs[lo:hi], out); err != nil {
					errCh <- err
					return
				}
				for i := range out {
					if out[i].Err != "" {
						errCh <- fmt.Errorf("session %s: %s", ids[lo+i], out[i].Err)
						return
					}
				}
				total.Add(int64(hi - lo))
			}
		}(l)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		logf("rtmd: fleet client: %v", err)
		return
	}
	n := total.Load()
	fmt.Printf("fleet-direct: %d decisions over %d replicas in %v (%d sessions, %d lanes): %.0f decisions/s\n",
		n, replicas, dur, sessions, lanes, float64(n)/dur.Seconds())
}

type loadgenConfig struct {
	spec     string
	replay   string
	addr     string
	direct   bool
	record   string
	lanes    int
	batch    int
	pace     float64
	idPrefix string
}

// loadgenMain is the -loadgen client mode: generate (or replay) a
// deterministic workload schedule and drive it at a serving target — a
// flat rtmd, a router, the fleet directly, or the in-process oracle when
// no address is given. With -loadgen-record and no address, the schedule
// is recorded without being executed (trace authoring).
func loadgenMain(cfg loadgenConfig, logf func(string, ...any)) {
	var stream loadgen.Stream
	if cfg.replay != "" {
		f, err := os.Open(cfg.replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		stream = loadgen.NewTraceReader(f)
	} else {
		spec, err := loadgen.LoadSpec(cfg.spec)
		if err != nil {
			fatal(err)
		}
		if cfg.idPrefix != "" {
			spec.IDPrefix = cfg.idPrefix
		}
		g, err := loadgen.New(spec)
		if err != nil {
			fatal(err)
		}
		stream = g
	}

	var recordTee *loadgen.Tee
	if cfg.record != "" {
		f, err := os.Create(cfg.record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if cfg.addr == "" {
			// Record-only: write the schedule and exit without executing.
			n, err := loadgen.Record(f, stream)
			if err != nil {
				fatal(err)
			}
			logf("rtmd: recorded %d events to %s", n, cfg.record)
			return
		}
		recordTee = loadgen.NewTee(stream, f)
		stream = recordTee
	}

	var target loadgen.Target
	switch {
	case cfg.addr == "":
		logf("rtmd: loadgen driving the in-process oracle (no -loadgen-addr)")
		target = loadgen.NewLocal()
	case cfg.direct:
		fl, err := client.DialFleet(cfg.addr)
		if err != nil {
			fatal(err)
		}
		defer fl.Close()
		logf("rtmd: loadgen driving %d replicas directly (membership epoch %d)", len(fl.Replicas()), fl.Epoch())
		target = fl
	default:
		cl, err := client.Dial(cfg.addr)
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		target = cl
	}

	rep, err := loadgen.Run(stream, target, loadgen.RunOptions{
		Lanes:     cfg.lanes,
		BatchMax:  cfg.batch,
		TimeScale: cfg.pace,
	})
	if recordTee != nil {
		if ferr := recordTee.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		fatal(err)
	}
	q := func(p float64) float64 { return rep.Latency.Quantile(p) }
	fmt.Printf("loadgen: %d events (%d creates, %d deletes, %d decides, %d decide errors) in %.2fs: %.0f decides/s\n",
		rep.Events, rep.Creates, rep.Deletes, rep.Decides, rep.DecideErrors, rep.WallS,
		float64(rep.Decides)/rep.WallS)
	fmt.Printf("loadgen: batch RTT p50 %.0fµs p99 %.0fµs p999 %.0fµs; peak live %d; checksum %016x\n",
		q(0.50), q(0.99), q(0.999), rep.PeakLive, rep.Checksum)
	if rep.CreateErrors != 0 || rep.DeleteErrors != 0 {
		fatal(fmt.Errorf("control-plane errors: %d create, %d delete", rep.CreateErrors, rep.DeleteErrors))
	}
}

// buildLogger constructs the process-wide structured logger from the
// -quiet/-log-level/-log-format flags. Quiet wins: it discards
// everything, whatever the level says.
func buildLogger(quiet bool, level, format string) (*slog.Logger, error) {
	if quiet {
		return slog.New(slog.DiscardHandler), nil
	}
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// buildTracer constructs the decide-path tracer from the -trace-* flags;
// nil (tracing fully off, zero overhead) when neither sampling nor tail
// capture is requested.
func buildTracer(sample float64, slow time.Duration, buf int) (*trace.Tracer, error) {
	if sample < 0 || sample > 1 {
		return nil, fmt.Errorf("-trace-sample %g: want a probability in [0, 1]", sample)
	}
	if slow < 0 {
		return nil, fmt.Errorf("-trace-slow %v: want a non-negative duration", slow)
	}
	if sample == 0 && slow == 0 {
		return nil, nil
	}
	return trace.New(trace.Options{SampleProb: sample, Slow: slow, Capacity: buf}), nil
}

// startDebug serves the profiling surface on its own listener, kept off
// the public metrics port so an operator can firewall it separately:
// the full net/http/pprof suite plus /debug/runtime, the same
// runtime-health snapshot /v1/metrics embeds, as a standalone document.
func startDebug(addr string, logf func(string, ...any)) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rs := stats.ReadRuntime()
		_ = json.NewEncoder(w).Encode(rs)
	})
	logf("rtmd: debug listener (pprof, /debug/runtime) on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logf("rtmd: debug listener down: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmd:", err)
	os.Exit(1)
}
