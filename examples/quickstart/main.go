// Quickstart: run the paper's Q-learning run-time manager on a video
// workload and read the result.
//
//	go run ./examples/quickstart
//
// The five steps below are the whole public API surface a user needs:
// generate (or load) a workload trace, build the RTM, pre-characterise it,
// run the closed loop, and read the aggregates.
package main

import (
	"fmt"
	"log"

	"qgov/internal/core"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

func main() {
	// 1. A workload: MPEG4 decode at 30 fps, 1500 frames, four threads —
	//    one per A15 core. Every named workload in the registry works the
	//    same way; workload.ReadCSV loads recorded traces instead.
	trace := workload.MPEG4At30(42, 1500)

	// 2. The proposed governor with the paper's configuration (N=5 state
	//    levels, EWMA γ=0.6, EPD exploration, shared Q-table).
	rtm := core.New(core.DefaultConfig())

	// 3. Pre-characterise the workload range (the paper's design-space
	//    exploration). Skipping this is allowed — the RTM then auto-ranges
	//    online — but calibrated runs learn faster.
	if err := rtm.Calibrate(trace.MaxPerFrame()); err != nil {
		log.Fatal(err)
	}

	// 4. Close the loop: the engine executes the trace frame by frame on a
	//    simulated ODROID-XU3 A15 cluster, calling the governor once per
	//    decision epoch.
	result := sim.Run(sim.Config{Trace: trace, Governor: rtm, Seed: 42})

	// 5. Read the outcome.
	fmt.Printf("workload:      %s, %d frames at %.0f fps\n",
		result.Workload, result.Frames, trace.FPS())
	fmt.Printf("energy:        %.2f J (%.2f W mean over %.1f s)\n",
		result.EnergyJ, result.MeanPowerW, result.SimTimeS)
	fmt.Printf("performance:   %.2f of the deadline budget (<1 over-performs)\n",
		result.NormPerf)
	fmt.Printf("missed frames: %d of %d (%.1f%%)\n",
		result.Misses, result.Frames, result.MissRate*100)
	fmt.Printf("learning:      %d explorations, policy stable from epoch %d\n",
		result.Explorations, result.ConvergedAt)
}
