package sim

import (
	"math"
	"testing"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/workload"
)

// The governor × workload matrix: every registered governor must complete
// every workload class with sane accounting, and a handful of cross-cutting
// invariants must hold on each cell. This is the broad-coverage backstop
// behind the targeted experiment tests.

func matrixWorkloads() []workload.Trace {
	return []workload.Trace{
		workload.MPEG4At30(3, 400),                         // bursty video
		workload.FFT32(3, 400),                             // near-constant
		workload.ParsecFerret().Generate(400, 4, 25, 3),    // imbalanced pipeline
		workload.Splash2Radix().Generate(400, 4, 25, 3),    // strong phases
		workload.Step("step", 25, 400, 4, 200, 15e6, 45e6), // hard step
	}
}

func matrixGovernors(tr workload.Trace) []governor.Governor {
	var govs []governor.Governor
	for _, name := range governor.Names() {
		g, err := governor.ByName(name)
		if err != nil {
			panic(err)
		}
		if rtm, ok := g.(*core.RTM); ok {
			if err := rtm.Calibrate(tr.MaxPerFrame()); err != nil {
				panic(err)
			}
		}
		govs = append(govs, g)
	}
	govs = append(govs,
		governor.NewOracle(tr, platform.DefaultA15PowerModel()),
		governor.NewUserspace(1400),
		governor.NewThermalCap(governor.NewPerformance()),
	)
	return govs
}

func TestGovernorWorkloadMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("broad integration matrix")
	}
	for _, tr := range matrixWorkloads() {
		tr := tr
		t.Run(tr.Name, func(t *testing.T) {
			var oracleE float64
			var perfE float64
			for _, g := range matrixGovernors(tr) {
				res := Run(Config{Trace: tr, Governor: g, Seed: 3})

				// Universal invariants.
				if res.Frames != tr.Len() {
					t.Fatalf("%s: incomplete run (%d frames)", g.Name(), res.Frames)
				}
				if res.EnergyJ <= 0 || math.IsNaN(res.EnergyJ) || math.IsInf(res.EnergyJ, 0) {
					t.Fatalf("%s: energy %v", g.Name(), res.EnergyJ)
				}
				if res.NormPerf <= 0 || math.IsNaN(res.NormPerf) {
					t.Fatalf("%s: norm perf %v", g.Name(), res.NormPerf)
				}
				if res.MissRate < 0 || res.MissRate > 1 {
					t.Fatalf("%s: miss rate %v", g.Name(), res.MissRate)
				}
				if res.SimTimeS < float64(tr.Len())*tr.RefTimeS*0.99 {
					t.Fatalf("%s: simulated %v s for %d frames of %v s",
						g.Name(), res.SimTimeS, tr.Len(), tr.RefTimeS)
				}
				if res.MeanPowerW <= 0 || res.MeanPowerW > 10 {
					t.Fatalf("%s: implausible mean power %v W", g.Name(), res.MeanPowerW)
				}
				// Sensor-derived energy tracks the model within sensor error.
				if rel := math.Abs(res.SensorEnergyJ-res.EnergyJ) / res.EnergyJ; rel > 0.15 {
					t.Errorf("%s: sensor energy off by %.0f%%", g.Name(), rel*100)
				}

				switch g.Name() {
				case "oracle":
					oracleE = res.EnergyJ
					if res.MissRate > 0.01 {
						t.Errorf("oracle missed %.1f%% of deadlines", res.MissRate*100)
					}
				case "performance":
					perfE = res.EnergyJ
					if res.Misses != 0 {
						t.Errorf("performance governor missed %d deadlines on a feasible trace", res.Misses)
					}
				case "powersave":
					// Always the lowest power, never above 1 W on this model.
					if res.MeanPowerW > 1 {
						t.Errorf("powersave mean power %v W", res.MeanPowerW)
					}
				}
			}
			// The Oracle never spends more than flat-out fmax.
			if !(oracleE < perfE) {
				t.Errorf("oracle energy %v not below performance %v", oracleE, perfE)
			}
		})
	}
}

func TestDeadlineAwareGovernorsBeatOndemandOnEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("broad integration matrix")
	}
	// On a long video run, every deadline-aware policy (framedvs, pid, rtm)
	// must undercut deadline-blind ondemand's energy: they exploit Tref,
	// ondemand cannot.
	tr := workload.MPEG4At30(9, 2000)
	energy := func(g governor.Governor) float64 {
		return Run(Config{Trace: tr, Governor: g, Seed: 9}).EnergyJ
	}
	ondemand := energy(governor.NewOndemand())
	for name, g := range map[string]governor.Governor{
		"framedvs": governor.NewFrameDVS(),
		"pid":      governor.NewPID(),
		"rtm": func() governor.Governor {
			rtm := core.New(core.DefaultConfig())
			if err := rtm.Calibrate(tr.MaxPerFrame()); err != nil {
				t.Fatal(err)
			}
			return rtm
		}(),
	} {
		if e := energy(g); !(e < ondemand) {
			t.Errorf("%s energy %.1f J not below ondemand %.1f J", name, e, ondemand)
		}
	}
}

func TestThermalCapKeepsDieCooler(t *testing.T) {
	if testing.Short() {
		t.Skip("broad integration matrix")
	}
	// A heavy sustained load at fmax heats the die; the thermal wrapper
	// must keep the final temperature below the uncapped run's.
	tr := workload.Constant("hot", 25, 2000, 4, 70e6)
	hot := Run(Config{Trace: tr, Governor: governor.NewPerformance(), Seed: 1})
	capped := governor.NewThermalCap(governor.NewPerformance())
	capped.TripC = 70
	capped.HysteresisC = 4
	cool := Run(Config{Trace: tr, Governor: capped, Seed: 1})
	if !(cool.FinalTempC < hot.FinalTempC) {
		t.Fatalf("thermal cap did not cool: %.1f vs %.1f °C", cool.FinalTempC, hot.FinalTempC)
	}
	if capped.ThrottleEvents() == 0 {
		t.Fatal("cap never engaged on a hot run")
	}
}
