package platform

import (
	"math"
	"testing"
)

func memCluster(m float64, seed int64) *Cluster {
	return NewCluster(ClusterConfig{
		Name:         "A15",
		Table:        A15Table(),
		NumCores:     4,
		Seed:         seed,
		MemStallFrac: m,
	})
}

func TestMemStallExecAtFmaxUnchanged(t *testing.T) {
	// The cycle demand is calibrated at f_max, so execution time there is
	// identical for any memory-bound fraction.
	cycles := []uint64{40e6, 40e6, 40e6, 40e6}
	var ref float64
	for _, m := range []float64{0, 0.3, 0.6, 0.9} {
		c := memCluster(m, 1)
		c.SetOPP(c.Table().MaxIdx())
		rep := c.Execute(cycles, 0, 0.040)
		if m == 0 {
			ref = rep.ExecTimeS
			continue
		}
		if math.Abs(rep.ExecTimeS-ref) > 1e-12 {
			t.Fatalf("m=%v: exec at fmax %v != compute-bound %v", m, rep.ExecTimeS, ref)
		}
	}
}

func TestMemStallDampsFrequencyLeverage(t *testing.T) {
	// At the slowest OPP the memory-bound workload finishes sooner than
	// the compute-bound one: only its compute fraction slowed down.
	cycles := []uint64{20e6}
	run := func(m float64) float64 {
		c := memCluster(m, 2)
		c.SetOPP(0) // 200 MHz
		return c.Execute(cycles, 0, 0).ExecTimeS
	}
	compute := run(0)
	memory := run(0.6)
	if !(memory < compute) {
		t.Fatalf("memory-bound exec %v not below compute-bound %v at fmin", memory, compute)
	}
	// Analytic check: T = 0.4*C/f + 0.6*C/fmax.
	want := 0.4*20e6/200e6 + 0.6*20e6/2000e6
	if math.Abs(memory-want) > 1e-9 {
		t.Fatalf("memory-bound exec %v, want %v", memory, want)
	}
}

func TestMemStallShrinksObservedCycles(t *testing.T) {
	// At a low clock the PMU observes fewer cycles than the calibrated
	// demand: the stall cycles scale away with the clock.
	c := memCluster(0.5, 3)
	c.SetOPP(0) // 200 MHz, 10% of fmax
	before := c.PMU(1).Read()
	c.Execute([]uint64{0, 30e6, 0, 0}, 0, 0)
	d := c.PMU(1).Read().Delta(before)
	// busy = 0.5*C/f + 0.5*C/fmax; observed = busy*f = 0.5*C*(1 + f/fmax)
	want := uint64(0.5 * 30e6 * (1 + 200.0/2000.0))
	if math.Abs(float64(d.Cycles)-float64(want)) > 1e3 {
		t.Fatalf("observed cycles %d, want ≈%d", d.Cycles, want)
	}
	if d.Cycles >= 30e6 {
		t.Fatal("observed cycles not below the calibrated demand at low clock")
	}
}

func TestMemStallMinEnergyStillMeetsDeadline(t *testing.T) {
	c := memCluster(0.5, 4)
	cycles := []uint64{60e6, 60e6, 60e6, 60e6}
	idx := c.MinEnergyIdx(cycles, 0.040)
	opp := c.Table()[idx]
	exec := 0.5*60e6/opp.FreqHz() + 0.5*60e6/2000e6
	if exec > 0.040 {
		t.Fatalf("oracle choice %v misses the deadline (%.1f ms)", opp, exec*1e3)
	}
	// With half the work clock-invariant, a 60 Mcycle frame fits at a
	// much lower frequency than the compute-bound requirement (1.5 GHz):
	// 0.5*60e6/f + 15ms <= 40ms -> f >= 1.2 GHz... verify the chosen point
	// is not slower than that bound.
	if opp.FreqHz() < 0.5*60e6/(0.040-0.5*60e6/2000e6)-1 {
		t.Fatalf("choice %v below the feasibility bound", opp)
	}
}

func TestMemStallConfigValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 0.95, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MemStallFrac %v accepted", bad)
				}
			}()
			memCluster(bad, 1)
		}()
	}
}
