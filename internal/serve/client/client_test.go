package client

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/wire"
)

// hostile is a scripted wire-protocol server: it accepts one
// connection, decodes each observe frame, and hands it to the test's
// script. The script answers through reply, which may be called from
// any goroutine — this is how the tests model servers that duplicate,
// misaddress, or reorder responses, which a correct client must
// survive without ever returning a zero-valued Decision as if it were
// real.
type hostile struct {
	t    *testing.T
	addr string

	mu   sync.Mutex
	conn net.Conn
}

// newHostile starts the server; script runs on the reader goroutine
// once per observe frame, in arrival order.
func newHostile(t *testing.T, script func(h *hostile, seq int, id uint32)) *hostile {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	h := &hostile{t: t, addr: lis.Addr().String()}
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		h.mu.Lock()
		h.conn = conn
		h.mu.Unlock()
		defer conn.Close()
		r := wire.NewReader(conn)
		var m wire.Observe
		seq := 0
		for {
			typ, payload, err := r.Next()
			if err != nil {
				return
			}
			if typ != wire.MsgObserve {
				continue
			}
			if err := m.Decode(payload); err != nil {
				return
			}
			script(h, seq, m.ID)
			seq++
		}
	}()
	return h
}

// reply writes one decide frame; safe from any goroutine.
func (h *hostile) reply(id uint32, oppIdx, freqMHz int32, errMsg string) {
	buf, err := wire.AppendDecide(nil, id, 0, oppIdx, freqMHz, errMsg)
	if err != nil {
		h.t.Error(err)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conn != nil {
		h.conn.Write(buf)
	}
}

// TestDuplicateDecideDoesNotCloseBatchEarly is the regression test for
// the silent zero-decision bug: a server that echoes one request id
// twice used to decrement the batch's remaining count twice, closing
// the batch before its last entry was answered — the caller got a
// zero-valued Decision (OPP 0, no error) for a request the server
// never answered, indistinguishable from a real lowest-OPP decision.
// The duplicate must be dropped and the batch must wait for the real
// third answer.
func TestDuplicateDecideDoesNotCloseBatchEarly(t *testing.T) {
	h := newHostile(t, func(h *hostile, seq int, id uint32) {
		h.reply(id, int32(seq+1), int32(1000*(seq+1)), "")
		if seq == 0 {
			h.reply(id, 99, 9999, "") // duplicate of the first answer
		}
	})
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 5 * time.Second

	sessions := []string{"a", "b", "c"}
	obs := make([]governor.Observation, 3)
	out := make([]Decision, 3)
	if err := c.DecideBatch(sessions, obs, out); err != nil {
		t.Fatal(err)
	}
	for i, want := range []Decision{
		{OPPIdx: 1, FreqMHz: 1000},
		{OPPIdx: 2, FreqMHz: 2000},
		{OPPIdx: 3, FreqMHz: 3000},
	} {
		if out[i] != want {
			t.Errorf("out[%d] = %+v, want %+v (first answer must stand, batch must not close early)", i, out[i], want)
		}
	}
}

// TestStrayDecideFailsClient: a decide for a batch handle the client
// never issued means the stream is corrupt — request ids are the
// client's own, so a correct server can only echo them back. The old
// code dropped the frame on the floor; now it must poison the client
// so the caller sees a transport error instead of a silent hang until
// timeout.
func TestStrayDecideFailsClient(t *testing.T) {
	h := newHostile(t, func(h *hostile, seq int, id uint32) {
		h.reply(id^(5<<indexBits), 1, 1000, "") // wrong batch handle
	})
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 5 * time.Second

	_, err = c.Decide("a", governor.Observation{})
	if err == nil {
		t.Fatal("Decide succeeded against a stray response")
	}
	if !strings.Contains(err.Error(), "unknown batch") {
		t.Fatalf("error %q does not name the unknown batch", err)
	}
	if c.Err() == nil {
		t.Fatal("client not poisoned after an inconsistent stream")
	}
}

// TestOutOfRangeIndexFailsClient: an in-batch index beyond the batch
// length is the same corruption class — fail fast, not index out of
// bounds or silent drop.
func TestOutOfRangeIndexFailsClient(t *testing.T) {
	h := newHostile(t, func(h *hostile, seq int, id uint32) {
		h.reply(id|7, 1, 1000, "") // batch has 2 entries; index 7 is beyond it
	})
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 5 * time.Second

	sessions := []string{"a", "b"}
	obs := make([]governor.Observation, 2)
	out := make([]Decision, 2)
	err = c.DecideBatch(sessions, obs, out)
	if err == nil || !strings.Contains(err.Error(), "beyond batch") {
		t.Fatalf("err = %v, want an index-beyond-batch failure", err)
	}
}

// TestHandleWrapSkipsBusyHandle is the regression test for the batch
// handle wraparound bug: after 2^20 DecideBatch calls the handle
// counter wraps, and the old code overwrote whatever batch still held
// that handle — stranding its waiter until timeout and misrouting its
// replies into the new batch. A busy handle must be skipped.
func TestHandleWrapSkipsBusyHandle(t *testing.T) {
	firstID := make(chan uint32, 1)
	release := make(chan struct{})
	h := newHostile(t, func(h *hostile, seq int, id uint32) {
		switch seq {
		case 0:
			// Hold the first batch open across the wrap.
			firstID <- id
			go func(id uint32) {
				<-release
				h.reply(id, 7, 700, "")
			}(id)
		default:
			h.reply(id, 8, 800, "")
		}
	})
	c, err := Dial(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 5 * time.Second

	var wg sync.WaitGroup
	var first Decision
	var firstErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		first, firstErr = c.Decide("held", governor.Observation{})
	}()
	id0 := <-firstID // batch 0 is now in flight on handle 0

	// Wrap the counter: the next batch lands on handle 0 again, which is
	// busy, and must skip to handle 1 instead of overwriting.
	setNextBatchHandle(c, 1<<(32-indexBits))
	second, err := c.Decide("wrapped", governor.Observation{})
	if err != nil {
		t.Fatal(err)
	}
	if (second != Decision{OPPIdx: 8, FreqMHz: 800}) {
		t.Fatalf("wrapped batch got %+v, want the second server answer", second)
	}

	close(release)
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("held batch failed: %v (its handle was overwritten?)", firstErr)
	}
	if (first != Decision{OPPIdx: 7, FreqMHz: 700}) {
		t.Fatalf("held batch got %+v, want its own answer", first)
	}
	if id0>>indexBits != 0 {
		t.Fatalf("first batch used handle %d, want 0", id0>>indexBits)
	}
}
