package serve_test

import (
	"net/http"
	"testing"

	"qgov/internal/serve"
)

// close shuts the harness down early (both halves are idempotent, so the
// registered cleanup is a no-op afterwards) — for tests that restart a
// server over the same checkpoint directory.
func (h *testServer) close() {
	h.ts.Close()
	_ = h.srv.Close()
}

// ckptCounters reads the write-amplification counters off /v1/metrics.
func ckptCounters(t *testing.T, h *testServer) (writes, skipped int64) {
	t.Helper()
	var m struct {
		Writes  int64 `json:"checkpoint_writes"`
		Skipped int64 `json:"checkpoint_skipped"`
	}
	if st := h.get("/v1/metrics", &m); st != http.StatusOK {
		t.Fatalf("metrics returned %d", st)
	}
	return m.Writes, m.Skipped
}

func createAndDecide(t *testing.T, h *testServer, id string, decides int) {
	t.Helper()
	if st := h.post("/v1/sessions", map[string]any{"id": id, "governor": "rtm", "seed": 1}, nil); st != http.StatusCreated {
		t.Fatalf("create %s returned %d", id, st)
	}
	decideN(t, h, id, decides)
}

func decideN(t *testing.T, h *testServer, id string, decides int) {
	t.Helper()
	obs := steadyObs()
	for i := 0; i < decides; i++ {
		obs.Epoch = i
		var resp struct {
			Decisions []decision `json:"decisions"`
		}
		if st := h.post("/v1/decide", map[string]any{
			"requests": []decideItem{{Session: id, Obs: obsFromGov(obs)}},
		}, &resp); st != http.StatusOK || resp.Decisions[0].Error != "" {
			t.Fatalf("decide %s: status %d %+v", id, st, resp.Decisions)
		}
	}
}

// The write-amplification fix: a checkpoint sweep writes a session's state
// only when a decide touched it since the last write. Idle sessions skip
// (and are counted as skipped); a new decide re-dirties exactly the
// sessions it touched; an explicit /checkpoint marks its session clean.
func TestCheckpointSweepSkipsCleanSessions(t *testing.T) {
	h := newTestServer(t, serve.Options{CheckpointDir: t.TempDir()})

	createAndDecide(t, h, "dirty-a", 3)
	createAndDecide(t, h, "dirty-b", 2)
	createAndDecide(t, h, "never-decided", 0)

	// First sweep: both decided sessions are dirty; the never-decided one
	// is skipped silently (nothing to persist — not write amplification).
	if n, err := h.srv.CheckpointAll(); err != nil || n != 2 {
		t.Fatalf("first sweep wrote %d (err %v), want 2", n, err)
	}
	if w, sk := ckptCounters(t, h); w != 2 || sk != 0 {
		t.Fatalf("after first sweep: writes=%d skipped=%d, want 2/0", w, sk)
	}

	// Nothing decided since: the sweep must write nothing and count both
	// sessions as skipped.
	if n, err := h.srv.CheckpointAll(); err != nil || n != 0 {
		t.Fatalf("idle sweep wrote %d (err %v), want 0", n, err)
	}
	if w, sk := ckptCounters(t, h); w != 2 || sk != 2 {
		t.Fatalf("after idle sweep: writes=%d skipped=%d, want 2/2", w, sk)
	}

	// One more decide on a single session re-dirties it alone.
	decideN(t, h, "dirty-a", 1)
	if n, err := h.srv.CheckpointAll(); err != nil || n != 1 {
		t.Fatalf("post-decide sweep wrote %d (err %v), want 1", n, err)
	}
	if w, sk := ckptCounters(t, h); w != 3 || sk != 3 {
		t.Fatalf("after post-decide sweep: writes=%d skipped=%d, want 3/3", w, sk)
	}

	// An explicit checkpoint writes unconditionally and marks the session
	// clean, so the next sweep skips it too.
	if st := h.post("/v1/sessions/dirty-b/checkpoint", map[string]any{}, nil); st != http.StatusOK {
		t.Fatalf("explicit checkpoint returned %d", st)
	}
	if w, _ := ckptCounters(t, h); w != 4 {
		t.Fatalf("explicit checkpoint not counted: writes=%d, want 4", w)
	}
	if n, err := h.srv.CheckpointAll(); err != nil || n != 0 {
		t.Fatalf("sweep after explicit checkpoint wrote %d (err %v), want 0", n, err)
	}
}

// The pre-fix baseline toggle: CheckpointEverySession restores the
// re-write-everything sweep the soak harness measures against.
func TestCheckpointEverySessionBaseline(t *testing.T) {
	h := newTestServer(t, serve.Options{
		CheckpointDir:          t.TempDir(),
		CheckpointEverySession: true,
	})
	createAndDecide(t, h, "base-a", 1)
	createAndDecide(t, h, "base-b", 1)
	for sweep := 1; sweep <= 3; sweep++ {
		if n, err := h.srv.CheckpointAll(); err != nil || n != 2 {
			t.Fatalf("baseline sweep %d wrote %d (err %v), want 2", sweep, n, err)
		}
	}
	if w, sk := ckptCounters(t, h); w != 6 || sk != 0 {
		t.Fatalf("baseline counters: writes=%d skipped=%d, want 6/0", w, sk)
	}
}

// A session re-created from its checkpoint must still checkpoint again
// after new decides: the dirty generation restarts with the session.
func TestCheckpointDirtyAfterWarmRestart(t *testing.T) {
	dir := t.TempDir()
	h := newTestServer(t, serve.Options{CheckpointDir: dir})
	createAndDecide(t, h, "wr", 2)
	if n, err := h.srv.CheckpointAll(); err != nil || n != 1 {
		t.Fatalf("sweep wrote %d (err %v), want 1", n, err)
	}
	h.close()

	h2 := newTestServer(t, serve.Options{CheckpointDir: dir})
	// Re-create under the same id: warm-starts from its checkpoint. With
	// no new decides the sweep must not re-write the state it loaded.
	createAndDecide(t, h2, "wr", 0)
	if n, err := h2.srv.CheckpointAll(); err != nil || n != 0 {
		t.Fatalf("sweep after warm restart wrote %d (err %v), want 0", n, err)
	}
	decideN(t, h2, "wr", 1)
	if n, err := h2.srv.CheckpointAll(); err != nil || n != 1 {
		t.Fatalf("sweep after new decide wrote %d (err %v), want 1", n, err)
	}
}
