package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestFFT32IsLowVariance(t *testing.T) {
	tr := FFT32(5, 500)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Summarize()
	if st.CVCycles > 0.06 {
		t.Fatalf("FFT CV = %v, want <= 0.06 (the paper's least-varying app)", st.CVCycles)
	}
	// Compare with MPEG4: the video workload must vary more. This ordering
	// is what drives the exploration-count ordering in Table II.
	video := MPEG4At30(5, 500)
	if video.Summarize().CVCycles <= st.CVCycles {
		t.Fatalf("MPEG4 CV %v not above FFT CV %v", video.Summarize().CVCycles, st.CVCycles)
	}
}

func TestFFTAppDemandMatchesKernelModel(t *testing.T) {
	cfg := FFTAppConfig{
		Name: "fft-test", FPS: 32, NumFrames: 3, Threads: 2,
		N: 1 << 10, BatchPerThread: 4, CyclesPerBfly: 10, JitterSigma: 0,
		Seed: 1,
	}
	tr := cfg.Generate()
	// (N/2)*log2(N) = 512*10 = 5120 butterflies, x10 cycles x4 batch.
	want := uint64(5120 * 10 * 4)
	for _, f := range tr.Frames {
		for _, c := range f.Cycles {
			if c != want {
				t.Fatalf("demand = %d, want %d from kernel op count", c, want)
			}
		}
	}
}

func TestFFTAppConfigValidateRejects(t *testing.T) {
	good := FFTAppConfig{Name: "x", FPS: 32, NumFrames: 1, Threads: 1, N: 8, BatchPerThread: 1, CyclesPerBfly: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FFTAppConfig{
		{Name: "fps", FPS: 0, NumFrames: 1, Threads: 1, N: 8, BatchPerThread: 1, CyclesPerBfly: 10},
		{Name: "frames", FPS: 32, NumFrames: 0, Threads: 1, N: 8, BatchPerThread: 1, CyclesPerBfly: 10},
		{Name: "threads", FPS: 32, NumFrames: 1, Threads: 0, N: 8, BatchPerThread: 1, CyclesPerBfly: 10},
		{Name: "n-not-pow2", FPS: 32, NumFrames: 1, Threads: 1, N: 12, BatchPerThread: 1, CyclesPerBfly: 10},
		{Name: "batch", FPS: 32, NumFrames: 1, Threads: 1, N: 8, BatchPerThread: 0, CyclesPerBfly: 10},
		{Name: "cycles", FPS: 32, NumFrames: 1, Threads: 1, N: 8, BatchPerThread: 1, CyclesPerBfly: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
}

func TestProfilesGenerateValidTraces(t *testing.T) {
	for _, p := range append(ParsecProfiles(), Splash2Profiles()...) {
		tr := p.Generate(300, 4, 25, 42)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if tr.Len() != 300 || tr.Threads() != 4 {
			t.Errorf("%s: shape %dx%d", p.Name, tr.Len(), tr.Threads())
		}
		st := tr.Summarize()
		if st.MeanCycles <= 0 {
			t.Errorf("%s: degenerate demand", p.Name)
		}
	}
}

func TestProfileCharacteristicsOrdering(t *testing.T) {
	// Regular benchmarks must produce visibly lower variation than
	// irregular ones — this drives learning-speed differences downstream.
	cvOf := func(p Profile) float64 { return p.Generate(600, 4, 25, 9).Summarize().CVCycles }
	swaptions := cvOf(ParsecSwaptions())
	freqmine := cvOf(ParsecFreqmine())
	if !(swaptions < freqmine) {
		t.Errorf("swaptions CV %v not below freqmine CV %v", swaptions, freqmine)
	}
	ocean := cvOf(Splash2Ocean())
	raytrace := cvOf(Splash2Raytrace())
	if !(ocean < raytrace) {
		t.Errorf("ocean CV %v not below raytrace CV %v", ocean, raytrace)
	}
}

func TestProfileTrendDirection(t *testing.T) {
	lu := Splash2LU().Generate(400, 4, 25, 3)
	xs := lu.MaxPerFrame()
	firstHalf, secondHalf := 0.0, 0.0
	for i, x := range xs {
		if i < len(xs)/2 {
			firstHalf += x
		} else {
			secondHalf += x
		}
	}
	if !(secondHalf < firstHalf) {
		t.Fatal("LU demand should decrease over the run (shrinking submatrix)")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	good := ParsecBlackscholes()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BaseCyclesPerThread = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero base cycles accepted")
	}
	bad = good
	bad.PeriodAmp = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("PeriodAmp >= 1 accepted")
	}
	bad = good
	bad.BurstProb = 0.5 // without magnitude
	bad.BurstMag = 0
	if err := bad.Validate(); err == nil {
		t.Error("bursts without magnitude accepted")
	}
	bad = good
	bad.LevelMin = 2
	bad.LevelMax = 1
	if err := bad.Validate(); err == nil {
		t.Error("inverted level clamp accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := MPEG4At30(13, 50)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("name %q != %q", got.Name, orig.Name)
	}
	if got.RefTimeS != orig.RefTimeS {
		t.Errorf("ref %v != %v", got.RefTimeS, orig.RefTimeS)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len %d != %d", got.Len(), orig.Len())
	}
	for i := range got.Frames {
		for j := range got.Frames[i].Cycles {
			if got.Frames[i].Cycles[j] != orig.Frames[i].Cycles[j] {
				t.Fatalf("frame %d thread %d: %d != %d", i, j,
					got.Frames[i].Cycles[j], orig.Frames[i].Cycles[j])
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad cycle":   "frame,thread0\n0,notanumber\n",
		"no threads":  "frame\n0\n",
		"bad ref":     "# ref_time_s=zero\nframe,thread0\n0,5\n",
		"neg ref":     "# ref_time_s=-1\nframe,thread0\n0,5\n",
		"empty input": "",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%s) accepted", name)
		}
	}
}

func TestReadCSVDefaults(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("frame,thread0\n0,100\n1,200\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "imported" || got.RefTimeS != 0.040 {
		t.Fatalf("defaults not applied: %q %v", got.Name, got.RefTimeS)
	}
}

func TestRegistryResolvesEverything(t *testing.T) {
	for _, name := range Names() {
		g, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := g(1, 10)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if tr.Len() == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
	if _, err := ByName("definitely-not-a-workload"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRegistryDefaultLengths(t *testing.T) {
	g, err := ByName("h264-football")
	if err != nil {
		t.Fatal(err)
	}
	if got := g(1, 0).Len(); got != 3000 {
		t.Errorf("football default length = %d, want 3000", got)
	}
	if got := g(1, 50).Len(); got != 50 {
		t.Errorf("football truncated length = %d, want 50", got)
	}
}
