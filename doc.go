// Package qgov is a full reproduction of "Machine Learning for Run-Time
// Energy Optimisation in Many-Core Systems" (Biswas, Balagopal, Shafik,
// Al-Hashimi, Merrett — DATE 2017): a Q-learning power governor that
// selects per-epoch voltage-frequency settings for a many-core cluster so
// that frame-based applications meet their deadlines at minimum energy.
//
// The paper's substrate is an ODROID-XU3 board; this repository rebuilds
// everything above a simulated equivalent (see DESIGN.md for the
// substitution argument) and regenerates every table and figure of the
// paper's evaluation (see EXPERIMENTS.md for measured-vs-paper numbers):
//
//	internal/platform    the hardware layer: A15/A7 clusters, 19-point
//	                     DVFS ladder, CMOS power + RC thermal models,
//	                     PMUs, sampled power sensors
//	internal/workload    the application layer: GOP-structured video
//	                     decode, an FFT pipeline grounded in a real
//	                     kernel (internal/fft), PARSEC and SPLASH-2
//	                     phase models, CSV trace import/export
//	internal/predictor   EWMA (Eq. 1) and the comparison predictors
//	internal/governor    the run-time layer: governor interface, the
//	                     Linux cpufreq family, the Oracle, and the
//	                     ML-DTM baseline of ref [20]
//	internal/core        the paper's contribution: the Q-learning RTM
//	                     (Eqs. 2-7), its many-core modes, learning
//	                     transfer, and the multi-application extension
//	internal/sim         the epoch engine: the step-driven Session
//	                     (New → Observe/Decide/Step, Snapshot/Restore)
//	                     with Run as its closed-loop driver, plus the
//	                     streaming sweep runner (worker-pool Stream +
//	                     online Aggregator, O(workers) memory at any
//	                     sweep size)
//	internal/scenario    the sweep surface: every governor × workload ×
//	                     platform combination as a named scenario
//	                     ("rtm/h264-football/a15") resolving to a run
//	                     configuration or step-driven Session; any
//	                     learner trains, freezes and warm-starts here
//	                     (governor.Checkpointer)
//	internal/serve       governors as an online decision service: many
//	                     concurrent sessions (one per controlled
//	                     cluster) in a mutex-striped session store,
//	                     behind a batched /v1/decide HTTP API and a
//	                     binary streaming TCP transport (~5× the JSON
//	                     path's decisions/s) that also carries the
//	                     whole control plane as control frames;
//	                     latency histograms + exploration/convergence
//	                     counters on /v1/metrics, learning-state
//	                     checkpoints through a pluggable
//	                     CheckpointStore, and a consistent-hash Router
//	                     that shards sessions across a replica fleet
//	                     with checkpoint/restore hand-off — elastic in
//	                     both directions while serving (AddReplica /
//	                     RemoveReplica bump a membership epoch pushed
//	                     to every replica), health-probed with
//	                     automatic replica reconnect, and degrading
//	                     gracefully (per-replica status in /healthz,
//	                     partial aggregates) when members fail
//	internal/qpage       copy-on-write paged value tables behind a
//	                     process-wide content-interned page pool
//	                     (sharded, SHA-256-keyed, refcounted): sessions
//	                     with identical starting state — cold tables,
//	                     one warm-start manifest — share immutable
//	                     pages and copy only what they touch, cutting
//	                     the per-session memory floor ~9x at soak scale
//	internal/xrand       the 8-byte splitmix64 deterministic generator
//	                     (uniform/exponential/normal variates) that
//	                     replaced per-session ~5 KB math/rand state in
//	                     learners and load-generator clients
//	internal/sessionstore the serving layer's state stores: the sharded
//	                     Store (striped locks, byte-keyed lookups) and
//	                     the CheckpointStore interface with its
//	                     local-directory implementation
//	internal/registry    the content-addressed checkpoint registry:
//	                     frozen learning state as SHA-256-addressed
//	                     blobs under fingerprint-keyed manifests
//	                     (governor/workload/platform/shape + training
//	                     metadata), Nearest resolution for warm_start
//	                     (exact fingerprint, then the cross-workload
//	                     same-platform fallback), and a registry-backed
//	                     CheckpointStore so replica fleets share
//	                     session state through one BlobStore seam
//	internal/ring        the consistent-hash ring (virtual nodes,
//	                     deterministic placement, bounded key movement
//	                     on membership change) that maps session ids
//	                     to replicas
//	internal/wire        the length-prefixed binary frame codec of the
//	                     streaming transport: zero-allocation encode/
//	                     decode of observe/decide messages plus the
//	                     control frames (create/checkpoint/delete/...),
//	                     fuzzed against truncated/oversized/bit-flipped
//	                     frames
//	internal/serve/client the multiplexed Go client for the binary
//	                     transport — decisions and control plane —
//	                     used by the router, benchmarks, and the
//	                     equivalence tests; its ring-aware Fleet
//	                     fetches the membership table from the router
//	                     and sends decide batches directly to the
//	                     owning replicas (epoch-stamped replies
//	                     trigger table refetch; misrouted decides are
//	                     forwarded replica-side), taking the router
//	                     out of the data path
//	internal/trace       sampled decide-path tracing: spans (route,
//	                     relay, decide, forward) in a fixed lock-free
//	                     ring, probabilistic head sampling plus tail
//	                     capture of slow batches, trace ids propagated
//	                     through the wire protocol so one routed
//	                     decide stitches router→replica(→forward)
//	                     spans under a single id at GET /v1/trace
//	internal/promlint    the Prometheus text-exposition linter behind
//	                     cmd/promlint and the scrape-hygiene tests:
//	                     HELP/TYPE pairing, label escaping, duplicate
//	                     series, cumulative le buckets, and
//	                     series/byte budgets for scrape cardinality
//	internal/experiments Table I, II, III, Fig. 3, the ablations, and
//	                     the warm-start transfer matrix (train on one
//	                     workload, publish to the registry, serve
//	                     another cold vs. warm)
//
// The sim.Session inversion is what connects the two halves: sim.Run,
// Stream and the experiment harness drive it as a closed loop, while
// cmd/rtmd serves the same governors online — observations in, operating
// points out — the way the paper's RTM runs inside an OS.
//
// Entry points: cmd/experiments regenerates the paper's results and runs
// streaming scenario sweeps (-run sweep -match 'rtm/*/a15'), cmd/rtmsim
// runs one governor on one workload or one named scenario (-save-state /
// -load-state freeze and warm-start any learner), cmd/rtmd serves
// governor decisions over HTTP and (-listen-tcp) the binary wire
// protocol — or, with -route -replicas, fronts a sharded replica fleet
// as a stateless consistent-hash router, or, with -fleet, benches a
// running fleet through the ring-aware direct client — cmd/tracegen
// emits workload traces,
// cmd/benchjson converts benchmark output to the BENCH_<n>.json perf
// artifacts, cmd/promlint lints a Prometheus exposition against series
// and byte budgets; examples/ holds runnable API walkthroughs; the benchmarks
// in bench_test.go regenerate each experiment under `go test -bench`.
package qgov
