package predictor

import "fmt"

// NLMS is a normalized least-mean-squares adaptive filter over the last
// `order` observations — the "adaptive filtering of workload traces"
// approach (Sinha & Chandrakasan, ref [16] of the paper) that the paper
// contrasts EWMA against. The normalised step size makes it stable for the
// widely scaled cycle counts (10⁷–10⁸) without manual gain tuning.
type NLMS struct {
	weights []float64
	history []float64 // most recent observation first
	mu      float64
	eps     float64
	seen    int
}

// NewNLMS creates a filter of the given order with step size mu in (0, 2).
func NewNLMS(order int, mu float64) *NLMS {
	if order < 1 {
		panic(fmt.Sprintf("predictor: NLMS order %d < 1", order))
	}
	if mu <= 0 || mu >= 2 {
		panic(fmt.Sprintf("predictor: NLMS step %v outside (0,2)", mu))
	}
	n := &NLMS{
		weights: make([]float64, order),
		history: make([]float64, order),
		mu:      mu,
		eps:     1e-12,
	}
	// Start as a last-value predictor: weight 1 on the newest sample.
	n.weights[0] = 1
	return n
}

// Name implements Predictor.
func (n *NLMS) Name() string { return fmt.Sprintf("nlms(%d,µ=%g)", len(n.weights), n.mu) }

// Predict implements Predictor.
func (n *NLMS) Predict() float64 {
	if n.seen == 0 {
		return 0
	}
	var y float64
	for i, w := range n.weights {
		y += w * n.history[i]
	}
	if y < 0 {
		// Cycle counts are non-negative; a transiently mis-adapted filter
		// must not forecast negative work.
		y = 0
	}
	return y
}

// Observe implements Predictor: one NLMS weight update followed by a shift
// of the regression window.
func (n *NLMS) Observe(actual float64) {
	if n.seen > 0 {
		pred := 0.0
		var norm float64
		for i, w := range n.weights {
			pred += w * n.history[i]
			norm += n.history[i] * n.history[i]
		}
		err := actual - pred
		step := n.mu / (norm + n.eps)
		for i := range n.weights {
			n.weights[i] += step * err * n.history[i]
		}
	}
	// Shift in the newest observation.
	copy(n.history[1:], n.history)
	n.history[0] = actual
	n.seen++
}

// Reset implements Predictor.
func (n *NLMS) Reset() {
	for i := range n.weights {
		n.weights[i] = 0
	}
	n.weights[0] = 1
	for i := range n.history {
		n.history[i] = 0
	}
	n.seen = 0
}
