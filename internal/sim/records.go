package sim

import "sync"

// recordPool recycles per-frame record slices across recorded runs, so a
// sweep that records (Fig. 3 series, CSV export) does not allocate a fresh
// multi-thousand-entry slice per job. Runs that do not record never touch
// the pool — aggregates are computed online and no per-frame state is
// retained at all.
var recordPool sync.Pool

// getRecords returns an empty record slice with at least the requested
// capacity, reusing a pooled backing array when one is large enough.
func getRecords(capacity int) []FrameRecord {
	if v := recordPool.Get(); v != nil {
		if s := v.([]FrameRecord); cap(s) >= capacity {
			return s[:0]
		}
	}
	return make([]FrameRecord, 0, capacity)
}

// Release returns the result's record slice to the pool and nils it. Call
// it when a recorded result has been consumed (rendered, written to CSV)
// and the per-frame series is no longer needed; the aggregate fields stay
// valid. Safe to call on results without records.
func (r *Result) Release() {
	if r.Records == nil {
		return
	}
	recordPool.Put(r.Records[:0]) //nolint:staticcheck // slice header is intentional
	r.Records = nil
}
