package serve_test

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"testing"

	"qgov/internal/governor"
	"qgov/internal/serve"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// A session created with thermal_cap_mw must decide exactly as sim.Run
// does with the same governor wrapped in a power-only ThermalCap: the
// cap composes per session in serve mode without disturbing determinism,
// and the capped learner still checkpoints and reports learning stats
// (the wrapper is unwrapped on those paths).
func TestThermalCapSessionMatchesWrappedSim(t *testing.T) {
	const (
		scn    = "rtm/mpeg4-30fps/a15"
		seed   = 5
		frames = 400
		capMW  = 1500.0
	)

	// The oracle run: same scenario, governor wrapped the way the server
	// wraps it.
	cfg := scenarioConfig(t, scn, seed, frames)
	wrap := &governor.ThermalCap{Inner: cfg.Governor, TripC: math.Inf(1), PowerCapW: capMW / 1000}
	cfg.Governor = wrap
	want := sim.Run(cfg)
	if wrap.ThrottleEvents() == 0 {
		t.Fatalf("cap of %v mW never throttled; the test would not exercise the wrapper", capMW)
	}

	// An uncapped twin must differ, or the cap was a no-op at this budget.
	uncapped := sim.Run(scenarioConfig(t, scn, seed, frames))
	if phys(want) == phys(uncapped) {
		t.Fatal("capped and uncapped runs are identical; cap too loose to test composition")
	}

	h := newTestServer(t, serve.Options{})
	tr := workload.MPEG4At30(seed, frames)
	var info struct {
		ThermalCapMW float64 `json:"thermal_cap_mw"`
	}
	if st := h.post("/v1/sessions", map[string]any{
		"id":             "cap0",
		"governor":       "rtm",
		"period_s":       tr.RefTimeS,
		"seed":           seed,
		"calibration_cc": tr.MaxPerFrame(),
		"thermal_cap_mw": capMW,
	}, &info); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	if info.ThermalCapMW != capMW {
		t.Fatalf("info thermal_cap_mw = %v, want %v", info.ThermalCapMW, capMW)
	}

	got := h.driveOne("cap0", sim.NewSession(scenarioConfig(t, scn, seed, frames)))
	if phys(want) != phys(got) {
		t.Errorf("capped served run diverged from wrapped sim.Run:\n%+v\nvs\n%+v", phys(want), phys(got))
	}

	// The wrapper must not cost the session its learning surface: info
	// still reports learner stats, and the checkpoint freezes the inner
	// learner's state.
	var stats sessionInfo
	if st := h.get("/v1/sessions/cap0", &stats); st != http.StatusOK {
		t.Fatalf("info returned %d", st)
	}
	if stats.Explorations < 0 {
		t.Error("capped learner lost its learning stats")
	}
	var ck struct {
		State json.RawMessage `json:"state"`
	}
	if st := h.post("/v1/sessions/cap0/checkpoint", map[string]any{}, &ck); st != http.StatusOK {
		t.Fatalf("checkpoint of capped session returned %d", st)
	}
	if len(ck.State) == 0 {
		t.Error("capped session froze empty state")
	}

	if st := h.post("/v1/sessions", map[string]any{
		"id": "bad", "governor": "rtm", "thermal_cap_mw": -5,
	}, nil); st != http.StatusBadRequest {
		t.Errorf("negative thermal_cap_mw returned %d, want 400", st)
	}
}

// The startup compaction sweep must respect the CompactionFilter: a
// routed replica sweeps only the shards it owns, leaving its siblings'
// checkpoints unread and untouched.
func TestCompactionFilterRestrictsSweep(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"mine.state", "other.state"} {
		if err := os.WriteFile(dir+"/"+name, []byte("unrestorable junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv := serve.New(serve.Options{
		CheckpointDir:    dir,
		CompactionFilter: func(id string) bool { return id == "mine" },
	})
	defer srv.Close()

	if _, err := os.Stat(dir + "/mine.state"); err == nil {
		t.Error("sweep kept an unrestorable checkpoint in its own shard")
	}
	if _, err := os.Stat(dir + "/other.state"); err != nil {
		t.Errorf("sweep touched another member's shard: %v", err)
	}
}
