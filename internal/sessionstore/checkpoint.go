package sessionstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qgov/internal/atomicfile"
)

// CheckpointStore persists frozen session learning state keyed by
// session id. It abstracts where checkpoints live: the serving layer
// reads and writes ids, never paths, so a replica fleet can point every
// member at shared storage and hand sessions off by checkpointing on one
// replica and restoring on another. Dir is the local-directory
// implementation; a shared-blob implementation slots in behind the same
// interface.
//
// Save must be atomic with respect to Load: a concurrent Load returns
// either the previous checkpoint or the new one, never a torn write.
type CheckpointStore interface {
	// Save durably replaces the checkpoint for id.
	Save(id string, state []byte) error
	// Load returns the checkpoint for id, or an error satisfying
	// errors.Is(err, fs.ErrNotExist) when none exists.
	Load(id string) ([]byte, error)
	// Delete removes the checkpoint for id; deleting an absent
	// checkpoint is not an error.
	Delete(id string) error
	// List returns the ids that currently have checkpoints.
	List() ([]string, error)
}

// stateSuffix names checkpoint files: "<id>.state", the layout rtmd has
// always used, so existing checkpoint directories stay readable.
const stateSuffix = ".state"

// Dir is the local-directory CheckpointStore: one "<id>.state" file per
// session, written atomically (temp file + rename).
type Dir struct {
	dir string
}

// NewDir creates the directory if needed and sweeps out stale temp
// files a crashed writer left behind (they hold torn state by
// definition). Fresh temp files are left alone — on shared storage they
// belong to a sibling replica mid-Save (atomicfile owns the age gate).
func NewDir(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sessionstore: checkpoint dir: %w", err)
	}
	// Fail fast on an unreadable directory — the sweep ignores walk
	// errors by design, but a store New cannot list must not limp into
	// serving only to fail on the first Save.
	if _, err := os.ReadDir(dir); err != nil {
		return nil, fmt.Errorf("sessionstore: checkpoint dir: %w", err)
	}
	atomicfile.SweepTemps(dir, tmpPrefix)
	return &Dir{dir: dir}, nil
}

// Path returns the directory backing the store.
func (d *Dir) Path() string { return d.dir }

func (d *Dir) file(id string) string {
	return filepath.Join(d.dir, id+stateSuffix)
}

const tmpPrefix = ".state-"

// Save implements CheckpointStore via atomicfile's temp + rename
// discipline, so a reader never observes a torn checkpoint.
func (d *Dir) Save(id string, state []byte) error {
	return atomicfile.WriteFile(d.file(id), state, tmpPrefix)
}

// Load implements CheckpointStore.
func (d *Dir) Load(id string) ([]byte, error) {
	return os.ReadFile(d.file(id))
}

// Delete implements CheckpointStore.
func (d *Dir) Delete(id string) error {
	err := os.Remove(d.file(id))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements CheckpointStore.
func (d *Dir) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, stateSuffix) {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, stateSuffix))
	}
	return ids, nil
}
