package workload

import (
	"math"
	"math/rand"
	"testing"
)

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestLogNormalZeroSigma(t *testing.T) {
	rng := newTestRNG(1)
	for i := 0; i < 10; i++ {
		if got := logNormal(rng, 0); got != 1 {
			t.Fatalf("logNormal(σ=0) = %v, want exactly 1", got)
		}
	}
}

func TestLogNormalMedianNearOne(t *testing.T) {
	rng := newTestRNG(2)
	var above, below int
	for i := 0; i < 4000; i++ {
		if logNormal(rng, 0.5) > 1 {
			above++
		} else {
			below++
		}
	}
	ratio := float64(above) / 4000
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("median not ≈1: fraction above = %v", ratio)
	}
}

func TestBoundedWalkStaysInBounds(t *testing.T) {
	rng := newTestRNG(3)
	v := 1.0
	for i := 0; i < 10000; i++ {
		v = boundedWalk(rng, v, 0.3, 0.01, 0.5, 2.0)
		if v < 0.5 || v > 2.0 {
			t.Fatalf("walk escaped bounds: %v", v)
		}
	}
}

func TestBoundedWalkMeanReverts(t *testing.T) {
	// With strong reversion the walk must pull back toward 1 from the
	// boundary.
	rng := newTestRNG(4)
	v := 2.0
	var acc float64
	const n = 5000
	for i := 0; i < n; i++ {
		v = boundedWalk(rng, v, 0.05, 0.2, 0.1, 4.0)
		acc += v
	}
	mean := acc / n
	if math.Abs(mean-1.0) > 0.2 {
		t.Fatalf("reverting walk long-run mean = %v, want ≈1", mean)
	}
}

func TestSplitPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("splitAcrossThreads(0 threads) must panic")
		}
	}()
	splitAcrossThreads(newTestRNG(1), 1000, 0, 0)
}

func TestSplitBalancedWhenNoCV(t *testing.T) {
	out := splitAcrossThreads(newTestRNG(1), 1000, 4, 0)
	for _, c := range out {
		if c != 250 {
			t.Fatalf("zero-CV split = %v, want uniform 250", out)
		}
	}
}
