package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"qgov/internal/registry"
	"qgov/internal/serve"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// trainAndPublish drives one rtm session on a server and publishes its
// frozen state to the registry under the given workload's fingerprint,
// returning the manifest and the frozen bytes.
func trainAndPublish(t *testing.T, h *testServer, reg *registry.Registry, id, wl string, seed int64, frames int) (registry.Manifest, json.RawMessage) {
	t.Helper()
	gen, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen(seed, frames)
	if st := h.post("/v1/sessions", map[string]any{
		"id": id, "governor": "rtm", "workload": wl,
		"period_s": tr.RefTimeS, "seed": seed, "calibration_cc": tr.MaxPerFrame(),
	}, nil); st != http.StatusCreated {
		t.Fatalf("create %s returned %d", id, st)
	}
	h.driveOne(id, sim.NewSession(scenarioConfig(t, "rtm/"+wl+"/a15", seed, frames)))
	var ck struct {
		State json.RawMessage `json:"state"`
	}
	if st := h.post("/v1/sessions/"+id+"/checkpoint", map[string]any{}, &ck); st != http.StatusOK {
		t.Fatalf("checkpoint %s returned %d", id, st)
	}
	m, err := reg.Publish(registry.Fingerprint{
		Governor: "rtm", Workload: wl, Platform: "a15",
		Shape: registry.ShapeOf(ck.State),
	}, registry.Training{Frames: int64(frames)}, ck.State)
	if err != nil {
		t.Fatal(err)
	}
	return m, ck.State
}

// jsonEqual compares two JSON documents structurally (a warm-started
// learner re-freezes the same state modulo re-encoding).
func jsonEqual(t *testing.T, a, b json.RawMessage) bool {
	t.Helper()
	var av, bv any
	if err := json.Unmarshal(a, &av); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &bv); err != nil {
		t.Fatal(err)
	}
	return reflect.DeepEqual(av, bv)
}

// Fleet-wide warm-start through the registry: a manifest id resolves
// exactly that checkpoint, "auto" resolves by fingerprint with exact-
// workload preference and a same-platform/different-workload fallback,
// and a fingerprint nothing matches starts cold rather than failing.
func TestWarmStartFromRegistry(t *testing.T) {
	const frames = 300
	blobs := registry.NewMem()
	reg := registry.New(blobs)
	h := newTestServer(t, serve.Options{Registry: reg})

	// Two published policies on a15: one trained on mpeg4, a longer one
	// on the football trace.
	mpeg, mpegState := trainAndPublish(t, h, reg, "t-mpeg", "mpeg4-30fps", 7, frames)
	football, footballState := trainAndPublish(t, h, reg, "t-foot", "h264-football", 7, 450)

	// Explicit manifest id: the session warm-starts from exactly that
	// state — an immediate re-freeze reproduces it.
	var info struct {
		WarmManifest string `json:"warm_manifest"`
	}
	if st := h.post("/v1/sessions", map[string]any{
		"id": "w-exact", "governor": "rtm", "seed": 7, "warm_start": mpeg.ID,
	}, &info); st != http.StatusCreated {
		t.Fatalf("warm_start by id returned %d", st)
	}
	if info.WarmManifest != mpeg.ID {
		t.Fatalf("warm_manifest = %q, want %q", info.WarmManifest, mpeg.ID)
	}
	var refrozen struct {
		State json.RawMessage `json:"state"`
	}
	if st := h.post("/v1/sessions/w-exact/checkpoint", map[string]any{}, &refrozen); st != http.StatusOK {
		t.Fatalf("checkpoint returned %d", st)
	}
	if !jsonEqual(t, mpegState, refrozen.State) {
		t.Error("session warm-started by manifest id does not carry the manifest's state")
	}

	// "auto" with a matching workload prefers the exact fingerprint even
	// though the football manifest trained longer.
	if st := h.post("/v1/sessions", map[string]any{
		"id": "w-auto", "governor": "rtm", "workload": "mpeg4-30fps", "seed": 7, "warm_start": "auto",
	}, &info); st != http.StatusCreated {
		t.Fatalf("warm_start auto returned %d", st)
	}
	if info.WarmManifest != mpeg.ID {
		t.Fatalf("auto resolved %q, want exact-workload manifest %q", info.WarmManifest, mpeg.ID)
	}

	// "auto" with an unseen workload falls back to the best same-platform
	// manifest (cross-workload transfer).
	if st := h.post("/v1/sessions", map[string]any{
		"id": "w-fallback", "governor": "rtm", "workload": "fft-32fps", "seed": 7, "warm_start": "auto",
	}, &info); st != http.StatusCreated {
		t.Fatalf("warm_start fallback returned %d", st)
	}
	if info.WarmManifest != football.ID && info.WarmManifest != mpeg.ID {
		t.Fatalf("fallback resolved %q, want a same-platform manifest", info.WarmManifest)
	}
	if st := h.post("/v1/sessions/w-fallback/checkpoint", map[string]any{}, &refrozen); st != http.StatusOK {
		t.Fatalf("checkpoint returned %d", st)
	}
	if !jsonEqual(t, footballState, refrozen.State) && !jsonEqual(t, mpegState, refrozen.State) {
		t.Error("fallback warm-start did not transfer a published policy")
	}

	// "auto" against a platform with no manifests starts cold, 201.
	var cold struct {
		WarmManifest string `json:"warm_manifest"`
	}
	if st := h.post("/v1/sessions", map[string]any{
		"id": "w-cold", "governor": "rtm", "platform": "a7", "seed": 7, "warm_start": "auto",
	}, &cold); st != http.StatusCreated {
		t.Fatalf("cold auto create returned %d", st)
	}
	if cold.WarmManifest != "" {
		t.Fatalf("cold create reports warm_manifest %q", cold.WarmManifest)
	}

	// An unknown manifest id is an error, not a silent cold start; a
	// malformed one is the caller's error, not a server fault.
	if st := h.post("/v1/sessions", map[string]any{
		"id": "w-miss", "governor": "rtm", "warm_start": "deadbeefdeadbeef",
	}, nil); st != http.StatusNotFound {
		t.Fatalf("unknown manifest returned %d, want 404", st)
	}
	if st := h.post("/v1/sessions", map[string]any{
		"id": "w-bad", "governor": "rtm", "warm_start": "bad key!",
	}, nil); st != http.StatusBadRequest {
		t.Fatalf("malformed manifest id returned %d, want 400", st)
	}
}

// A session re-created under its old id must resume its OWN checkpoint
// even when the create carries warm_start — the session's exact learnt
// state beats any published manifest, and "auto" in a steady-state
// create body must not swap it for a foreign policy. A manifest id
// alongside inline state is recorded as provenance (the hand-off path).
func TestOwnCheckpointBeatsWarmStart(t *testing.T) {
	const frames = 300
	blobs := registry.NewMem()
	reg := registry.New(blobs)
	h := newTestServer(t, serve.Options{Checkpoints: registry.Checkpoints(blobs), Registry: reg})

	// A published manifest from a different trainer.
	_, _ = trainAndPublish(t, h, reg, "t-pub", "h264-football", 3, 450)

	// Train "own", freeze it, delete nothing — then re-create it with
	// warm_start auto: it must carry its own state forward.
	tr := workload.MPEG4At30(9, frames)
	if st := h.post("/v1/sessions", map[string]any{
		"id": "own", "governor": "rtm", "workload": "mpeg4-30fps",
		"period_s": tr.RefTimeS, "seed": 9, "calibration_cc": tr.MaxPerFrame(),
	}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	h.driveOne("own", sim.NewSession(scenarioConfig(t, "rtm/mpeg4-30fps/a15", 9, frames)))
	var frozen struct {
		State json.RawMessage `json:"state"`
	}
	if st := h.post("/v1/sessions/own/checkpoint", map[string]any{}, &frozen); st != http.StatusOK {
		t.Fatalf("checkpoint returned %d", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, h.ts.URL+"/v1/sessions/own", nil)
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// DELETE GCs the checkpoint; put it back as the "restart" would have
	// left it (a server restart keeps checkpoints, it does not DELETE).
	if err := registry.Checkpoints(blobs).Save("own", frozen.State); err != nil {
		t.Fatal(err)
	}

	var info struct {
		WarmManifest string `json:"warm_manifest"`
	}
	if st := h.post("/v1/sessions", map[string]any{
		"id": "own", "governor": "rtm", "workload": "mpeg4-30fps",
		"period_s": tr.RefTimeS, "seed": 9, "warm_start": "auto",
	}, &info); st != http.StatusCreated {
		t.Fatalf("re-create returned %d", st)
	}
	if info.WarmManifest != "" {
		t.Fatalf("re-created session took manifest %q over its own checkpoint", info.WarmManifest)
	}
	var refrozen struct {
		State json.RawMessage `json:"state"`
	}
	if st := h.post("/v1/sessions/own/checkpoint", map[string]any{}, &refrozen); st != http.StatusOK {
		t.Fatalf("checkpoint returned %d", st)
	}
	if !jsonEqual(t, frozen.State, refrozen.State) {
		t.Error("re-created session did not resume its own checkpoint")
	}

	// Provenance: inline state + a manifest id records warm_manifest
	// without a registry lookup of the state.
	m, state := trainAndPublish(t, h, reg, "t-prov", "mpeg4-30fps", 4, frames)
	var prov struct {
		WarmManifest string `json:"warm_manifest"`
	}
	if st := h.post("/v1/sessions", map[string]any{
		"id": "moved", "governor": "rtm", "seed": 4,
		"state": state, "warm_start": m.ID,
	}, &prov); st != http.StatusCreated {
		t.Fatalf("create with state+provenance returned %d", st)
	}
	if prov.WarmManifest != m.ID {
		t.Fatalf("provenance lost: warm_manifest %q, want %q", prov.WarmManifest, m.ID)
	}
}

// warm_start without a configured registry must fail loudly.
func TestWarmStartNeedsRegistry(t *testing.T) {
	h := newTestServer(t, serve.Options{})
	if st := h.post("/v1/sessions", map[string]any{
		"id": "w0", "governor": "rtm", "warm_start": "auto",
	}, nil); st != http.StatusBadRequest {
		t.Fatalf("warm_start without registry returned %d, want 400", st)
	}
	// An unknown workload name on create is caught, registry or not.
	if st := h.post("/v1/sessions", map[string]any{
		"id": "w1", "governor": "rtm", "workload": "no-such-trace",
	}, nil); st != http.StatusBadRequest {
		t.Fatalf("bogus workload returned %d, want 400", st)
	}
}

// The registry-backed CheckpointStore carries sessions across server
// restarts exactly as the local-dir store does: a session re-created
// under its old id on a fresh server sharing the blob store resumes its
// learnt policy.
func TestRegistryCheckpointStoreSurvivesRestart(t *testing.T) {
	const frames = 300
	blobs := registry.NewMem()

	srv1 := serve.New(serve.Options{Checkpoints: registry.Checkpoints(blobs)})
	ts1 := httptest.NewServer(srv1.Handler())
	h1 := &testServer{t: t, srv: srv1, ts: ts1}
	tr := workload.MPEG4At30(9, frames)
	if st := h1.post("/v1/sessions", map[string]any{
		"id": "c0", "governor": "rtm", "period_s": tr.RefTimeS, "seed": 9,
		"calibration_cc": tr.MaxPerFrame(),
	}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	h1.driveOne("c0", sim.NewSession(scenarioConfig(t, "rtm/mpeg4-30fps/a15", 9, frames)))
	h1.ts.Close()
	if err := srv1.Close(); err != nil { // final sweep freezes c0 into the blob store
		t.Fatal(err)
	}
	frozen, err := registry.Checkpoints(blobs).Load("c0")
	if err != nil {
		t.Fatalf("final checkpoint missing from registry store: %v", err)
	}

	h2 := newTestServer(t, serve.Options{Checkpoints: registry.Checkpoints(blobs)})
	if st := h2.post("/v1/sessions", map[string]any{
		"id": "c0", "governor": "rtm", "period_s": tr.RefTimeS, "seed": 9,
	}, nil); st != http.StatusCreated {
		t.Fatalf("re-create returned %d", st)
	}
	var out struct {
		State json.RawMessage `json:"state"`
	}
	if st := h2.post("/v1/sessions/c0/checkpoint", map[string]any{}, &out); st != http.StatusOK {
		t.Fatalf("checkpoint returned %d", st)
	}
	if !jsonEqual(t, frozen, out.State) {
		t.Error("warm-started session does not reproduce its registry checkpoint")
	}
}
