// Transfer demonstrates learning transfer (Shafik et al., TCAD'16 — the
// journal lineage of the paper, its ref [12]): a Q-table learnt on one run
// seeds the next, skipping the exploration phase.
//
//	go run ./examples/transfer
//
// The demo trains on one video sequence, saves the learnt table to a file
// (the same format cmd/rtmsim's -save-qtable/-load-qtable use), then plays
// a *different* sequence of the same application twice — cold versus
// transferred — and compares the learning cost.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"qgov/internal/core"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

func main() {
	// Train on sequence A.
	trainTrace := workload.MPEG4At30(100, 2000)
	trainer := core.New(core.DefaultConfig())
	if err := trainer.Calibrate(trainTrace.MaxPerFrame()); err != nil {
		log.Fatal(err)
	}
	train := sim.Run(sim.Config{Trace: trainTrace, Governor: trainer, Seed: 100})
	fmt.Printf("training on %s: %d explorations, %.1f%% misses\n",
		trainTrace.Name, train.Explorations, train.MissRate*100)

	// Persist the learnt table the way a deployment would.
	path := filepath.Join(os.TempDir(), "qgov-transfer.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trainer.Table().Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("q-table saved to %s\n\n", path)

	// A different sequence of the same application (new seed: new scene
	// structure, same statistics).
	playTrace := workload.MPEG4At30(200, 2000)

	// Cold start: full exploration phase.
	cold := core.New(core.DefaultConfig())
	if err := cold.Calibrate(playTrace.MaxPerFrame()); err != nil {
		log.Fatal(err)
	}
	coldRes := sim.Run(sim.Config{Trace: playTrace, Governor: cold, Seed: 200})

	// Transferred start: load the table, begin in exploitation.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	table, err := core.Load(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Transfer = table
	cfg.Epsilon.Epsilon0 = 0.1 // residual exploration only
	cfg.Epsilon.HoldEpochs = 0
	cfg.Epsilon.Reset()
	warm := core.New(cfg)
	if err := warm.Calibrate(playTrace.MaxPerFrame()); err != nil {
		log.Fatal(err)
	}
	warmRes := sim.Run(sim.Config{Trace: playTrace, Governor: warm, Seed: 200})

	fmt.Printf("playback on %s (%d frames):\n", playTrace.Name, playTrace.Len())
	fmt.Printf("  cold start:   %3d explorations, %5.1f%% misses, %.1f J\n",
		coldRes.Explorations, coldRes.MissRate*100, coldRes.EnergyJ)
	fmt.Printf("  transferred:  %3d explorations, %5.1f%% misses, %.1f J\n",
		warmRes.Explorations, warmRes.MissRate*100, warmRes.EnergyJ)
	fmt.Printf("\ntransfer removed %.0f%% of the exploration cost\n",
		(1-float64(warmRes.Explorations)/float64(coldRes.Explorations))*100)
}
