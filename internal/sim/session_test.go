package sim_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"qgov/internal/scenario"
	"qgov/internal/sim"
)

func sessionScenarioConfig(t *testing.T, name string, seed int64, frames int) sim.Config {
	t.Helper()
	sc, err := scenario.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.Config(seed, frames)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// resultsEqual compares two results byte-for-byte, treating NaN as equal
// to NaN: recorded runs legitimately carry NaN in the tracer fields
// (PredictedCC before the first forecast, AvgSlackL/Epsilon for opaque
// governors), which reflect.DeepEqual would report as a difference.
func resultsEqual(a, b *sim.Result) bool {
	ra, rb := a.Records, b.Records
	if len(ra) != len(rb) {
		return false
	}
	ca, cb := *a, *b
	ca.Records, cb.Records = nil, nil
	if !reflect.DeepEqual(&ca, &cb) {
		return false
	}
	sameF := func(x, y float64) bool { return x == y || (x != x && y != y) }
	for i := range ra {
		x, y := ra[i], rb[i]
		if !sameF(x.PredictedCC, y.PredictedCC) || !sameF(x.AvgSlackL, y.AvgSlackL) || !sameF(x.Epsilon, y.Epsilon) {
			return false
		}
		x.PredictedCC, y.PredictedCC = 0, 0
		x.AvgSlackL, y.AvgSlackL = 0, 0
		x.Epsilon, y.Epsilon = 0, 0
		if x != y {
			return false
		}
	}
	return true
}

// A hand-driven Session loop must be byte-identical to Run — the extract-
// method contract of the refactor. Recorded runs are included so the
// tracer introspection path (predicted CC, slack L, ε capture order) is
// locked too.
func TestSessionLoopMatchesRun(t *testing.T) {
	for _, name := range []string{
		"rtm/mpeg4-30fps/a15",
		"mldtm/h264-15fps/a15",
		"ondemand/fft-32fps/a7",
	} {
		for _, record := range []bool{false, true} {
			cfg := sessionScenarioConfig(t, name, 11, 180)
			cfg.Record = record
			want := sim.Run(cfg)

			cfg2 := sessionScenarioConfig(t, name, 11, 180)
			cfg2.Record = record
			s := sim.NewSession(cfg2)
			for !s.Done() {
				s.Step(s.Decide())
			}
			if got := s.Result(); !resultsEqual(want, got) {
				t.Errorf("%s (record=%v): session loop diverged from Run\nrun:     %+v\nsession: %+v",
					name, record, want, got)
			}
		}
	}
}

// Snapshot mid-run, round-trip it through JSON, restore against a freshly
// built Config and finish both sessions: every aggregate must match. This
// is the resumability contract — a snapshot plus the Config determines the
// session exactly.
func TestSessionSnapshotRestoreResumes(t *testing.T) {
	const name, seed, frames = "rtm/mpeg4-30fps/a15", 7, 300

	orig := sim.NewSession(sessionScenarioConfig(t, name, seed, frames))
	for orig.Epoch() < frames/2 {
		orig.Step(orig.Decide())
	}

	raw, err := json.Marshal(orig.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap sim.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}

	restored, err := sim.RestoreSession(sessionScenarioConfig(t, name, seed, frames), snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != orig.Epoch() {
		t.Fatalf("restored at epoch %d, want %d", restored.Epoch(), orig.Epoch())
	}
	if !reflect.DeepEqual(orig.Observe(), restored.Observe()) {
		t.Fatalf("restored observation differs:\n%+v\nvs\n%+v", orig.Observe(), restored.Observe())
	}

	for !orig.Done() {
		orig.Step(orig.Decide())
		restored.Step(restored.Decide())
	}
	if !reflect.DeepEqual(orig.Result(), restored.Result()) {
		t.Errorf("resumed run diverged:\n%+v\nvs\n%+v", orig.Result(), restored.Result())
	}
}

// A restore against the wrong Config (different seed → different governor
// decisions) must be refused, not silently diverge.
func TestSessionRestoreRejectsMismatch(t *testing.T) {
	s := sim.NewSession(sessionScenarioConfig(t, "rtm/mpeg4-30fps/a15", 7, 200))
	for s.Epoch() < 150 {
		s.Step(s.Decide())
	}
	snap := s.Snapshot()

	if _, err := sim.RestoreSession(sessionScenarioConfig(t, "rtm/mpeg4-30fps/a15", 8, 200), snap); err == nil {
		t.Error("restore with a different seed was accepted")
	}
	if _, err := sim.RestoreSession(sessionScenarioConfig(t, "ondemand/mpeg4-30fps/a15", 7, 200), snap); err == nil {
		t.Error("restore with a different governor was accepted")
	}

	bad := snap
	bad.Chosen = bad.Chosen[:len(bad.Chosen)-1]
	if _, err := sim.RestoreSession(sessionScenarioConfig(t, "rtm/mpeg4-30fps/a15", 7, 200), bad); err == nil {
		t.Error("inconsistent snapshot was accepted")
	}
}

// A driver may consult the governor and then override its choice (a cap,
// a floor); the snapshot logs both, so such histories restore exactly.
func TestSessionRestoreWithOverriddenDecisions(t *testing.T) {
	const name, seed, frames = "rtm/mpeg4-30fps/a15", 7, 240
	cap := func(a int) int {
		if a > 10 {
			return 10
		}
		return a
	}

	orig := sim.NewSession(sessionScenarioConfig(t, name, seed, frames))
	for orig.Epoch() < frames/2 {
		orig.Step(cap(orig.Decide()))
	}
	restored, err := sim.RestoreSession(sessionScenarioConfig(t, name, seed, frames), orig.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for !orig.Done() {
		orig.Step(cap(orig.Decide()))
		restored.Step(cap(restored.Decide()))
	}
	if !reflect.DeepEqual(orig.Result(), restored.Result()) {
		t.Errorf("capped run did not restore:\n%+v\nvs\n%+v", orig.Result(), restored.Result())
	}
}

// Externally driven sessions — actions fed to Step without consulting the
// session's governor — must reproduce the physical aggregates of the run
// the actions came from. This is the serve-mode shape: the decision maker
// lives outside the simulator.
func TestSessionExternalDriveMatchesPhysicalAggregates(t *testing.T) {
	const name, seed, frames = "rtm/h264-15fps/a15", 3, 250

	ref := sim.NewSession(sessionScenarioConfig(t, name, seed, frames))
	var actions []int
	for !ref.Done() {
		a := ref.Decide()
		actions = append(actions, a)
		ref.Step(a)
	}
	want := ref.Result()

	ext := sim.NewSession(sessionScenarioConfig(t, name, seed, frames))
	for i := 0; !ext.Done(); i++ {
		ext.Step(actions[i])
	}
	got := ext.Result()

	// The external session's own governor was never consulted, so learning
	// fields legitimately differ; everything physical must be identical.
	type phys struct {
		EnergyJ, SensorEnergyJ, MeanPowerW, SimTimeS, NormPerf, MissRate float64
		Misses, Transitions                                              int
		FinalTempC                                                       float64
	}
	p := func(r *sim.Result) phys {
		return phys{r.EnergyJ, r.SensorEnergyJ, r.MeanPowerW, r.SimTimeS,
			r.NormPerf, r.MissRate, r.Misses, r.Transitions, r.FinalTempC}
	}
	if p(want) != p(got) {
		t.Errorf("externally driven session diverged physically:\n%+v\nvs\n%+v", p(want), p(got))
	}
}

func TestSessionStepAndDecideContracts(t *testing.T) {
	cfg := sessionScenarioConfig(t, "ondemand/mpeg4-30fps/a15", 1, 5)
	s := sim.NewSession(cfg)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}

	s.Decide()
	mustPanic("double Decide", func() { s.Decide() })

	for !s.Done() {
		s.Step(0)
	}
	mustPanic("Step past end", func() { s.Step(0) })
	if s.Epoch() != 5 {
		t.Fatalf("epoch %d after exhausting 5 frames", s.Epoch())
	}
}
