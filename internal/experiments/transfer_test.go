package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// A reduced-scale matrix must hold the transfer claim's direction: the
// warm-started serve spends fewer exploratory decisions than the cold
// one (the robust signal — exploration is deterministic given the seed)
// and converges no later.
func TestTransferMatrixWarmBeatsCold(t *testing.T) {
	res, err := transferMatrix([]TransferPair{{Source: "h264-football", Target: "mpeg4-30fps"}},
		[]int64{11, 23}, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	if c.ManifestID == "" {
		t.Fatal("cell carries no manifest id")
	}
	if c.WarmExplorations >= c.ColdExplorations {
		t.Errorf("warm run explored %.0f times, cold %.0f — transfer did not reduce exploration",
			c.WarmExplorations, c.ColdExplorations)
	}
	if c.WarmFrames > c.ColdFrames {
		t.Errorf("warm start converged later than cold (%.0f vs %.0f frames)", c.WarmFrames, c.ColdFrames)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Render wrote nothing")
	}
}

// BenchmarkWarmStartConvergence measures the transfer study's headline
// quantity per cell — frames to reach the converged-policy threshold,
// cold vs. warm-started from the registry — plus the energy over the
// horizon. CI writes it to BENCH_5.json; the warm_frames_to_converge
// metric falling below cold_frames_to_converge is the reproduction of
// the ref [12] warm-start claim at scenario scale.
func BenchmarkWarmStartConvergence(b *testing.B) {
	for _, pair := range DefaultTransferPairs {
		b.Run(fmt.Sprintf("%s_to_%s", pair.Source, pair.Target), func(b *testing.B) {
			var last *TransferResult
			for i := 0; i < b.N; i++ {
				res, err := transferMatrix([]TransferPair{pair}, DefaultSeeds[:3], 1000)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			c := last.Cells[0]
			b.ReportMetric(c.ColdFrames, "cold_frames_to_converge")
			b.ReportMetric(c.WarmFrames, "warm_frames_to_converge")
			b.ReportMetric(c.ColdFrames-c.WarmFrames, "frames_saved")
			b.ReportMetric(c.ColdExplorations, "cold_explorations")
			b.ReportMetric(c.WarmExplorations, "warm_explorations")
			b.ReportMetric(c.ColdEnergyJ, "cold_energy_J")
			b.ReportMetric(c.WarmEnergyJ, "warm_energy_J")
		})
	}
}
