package governor

import (
	"testing"

	"qgov/internal/platform"
)

func testCtx(seed int64) Context {
	return Context{
		Table:    platform.A15Table(),
		NumCores: 4,
		PeriodS:  0.040,
		Seed:     seed,
	}
}

// obsAt builds an observation for a frame that ran at OPP idx with the
// given per-core utilisation.
func obsAt(epoch, idx int, util float64, periodS float64) Observation {
	us := []float64{util, util, util, util}
	table := platform.A15Table()
	cycles := make([]uint64, 4)
	for i := range cycles {
		cycles[i] = uint64(util * periodS * table[idx].FreqHz())
	}
	return Observation{
		Epoch:     epoch,
		Cycles:    cycles,
		Util:      us,
		ExecTimeS: util * periodS,
		PeriodS:   periodS,
		WallTimeS: periodS,
		PowerW:    2,
		TempC:     50,
		OPPIdx:    idx,
	}
}

func TestObservationHelpers(t *testing.T) {
	o := Observation{
		Util:   []float64{0.2, 0.9, 0.5},
		Cycles: []uint64{100, 900, 500},
	}
	if o.MaxUtil() != 0.9 {
		t.Errorf("MaxUtil = %v", o.MaxUtil())
	}
	if o.MaxCycles() != 900 {
		t.Errorf("MaxCycles = %v", o.MaxCycles())
	}
	var empty Observation
	if empty.MaxUtil() != 0 || empty.MaxCycles() != 0 {
		t.Error("empty observation helpers must return 0")
	}
}

func TestFixedGovernors(t *testing.T) {
	ctx := testCtx(1)
	p := NewPerformance()
	p.Reset(ctx)
	if got := p.Decide(obsAt(0, 5, 0.5, 0.04)); got != ctx.Table.MaxIdx() {
		t.Errorf("performance chose %d", got)
	}
	ps := NewPowersave()
	ps.Reset(ctx)
	if got := ps.Decide(obsAt(0, 5, 0.99, 0.04)); got != 0 {
		t.Errorf("powersave chose %d", got)
	}
	us := NewUserspace(1400)
	us.Reset(ctx)
	if got := us.Decide(obsAt(0, 5, 0.5, 0.04)); ctx.Table[got].FreqMHz != 1400 {
		t.Errorf("userspace chose %v", ctx.Table[got])
	}
}

func TestUserspaceRejectsUnknownFrequency(t *testing.T) {
	us := NewUserspace(1234)
	defer func() {
		if recover() == nil {
			t.Fatal("userspace with unknown frequency must panic at Reset")
		}
	}()
	us.Reset(testCtx(1))
}

func TestOndemandJumpsToMaxOnHighLoad(t *testing.T) {
	g := NewOndemand()
	ctx := testCtx(1)
	g.Reset(ctx)
	if got := g.Decide(Observation{Epoch: -1}); got != 0 {
		t.Fatalf("first decision %d, want 0", got)
	}
	if got := g.Decide(obsAt(0, 3, 0.95, 0.04)); got != ctx.Table.MaxIdx() {
		t.Fatalf("95%% load chose %d, want max", got)
	}
}

func TestOndemandProportionalScaleDown(t *testing.T) {
	g := NewOndemand()
	ctx := testCtx(1)
	g.Reset(ctx)
	// 30% load: target = 0.3 * 2000 MHz = 600 MHz.
	got := g.Decide(obsAt(0, 18, 0.30, 0.04))
	if ctx.Table[got].FreqMHz != 600 {
		t.Fatalf("30%% load chose %v, want 600 MHz", ctx.Table[got])
	}
}

func TestOndemandOscillatesAndOverPerforms(t *testing.T) {
	// On a steady demand of f_req = 800 MHz, ondemand's proportional rule
	// produces the classic bounce: at f_max the load is 0.4, so the target
	// drops to 0.4·f_max = 800 MHz; there the load saturates (>= threshold)
	// and it jumps back to f_max. The time-average frequency therefore sits
	// well above the requirement — the over-performance Table I measures.
	g := NewOndemand()
	ctx := testCtx(1)
	g.Reset(ctx)
	idx := 0
	const fReq = 800e6
	var visited []int
	var normPerf float64
	const steady = 40
	for i := 0; i < 60; i++ {
		f := ctx.Table[idx].FreqHz()
		util := fReq / f
		if util > 1 {
			util = 1
		}
		if i >= 60-steady {
			visited = append(visited, idx)
			normPerf += util // exec time fraction of the period
		}
		idx = g.Decide(obsAt(i, idx, util, 0.04))
	}
	normPerf /= steady
	lo, hi := visited[0], visited[0]
	for _, v := range visited {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi != ctx.Table.MaxIdx() {
		t.Fatalf("steady state never touches fmax (hi=%v)", ctx.Table[hi])
	}
	if ctx.Table[lo].FreqMHz != 800 {
		t.Fatalf("steady-state low point %v, want 800 MHz", ctx.Table[lo])
	}
	if normPerf < 0.55 || normPerf > 0.9 {
		t.Fatalf("mean normalised performance %v; want clear over-performance (0.55..0.9)", normPerf)
	}
}

func TestOndemandSamplingDownFactorHoldsMax(t *testing.T) {
	g := NewOndemand()
	g.SamplingDownFactor = 3
	ctx := testCtx(1)
	g.Reset(ctx)
	g.Decide(obsAt(0, 5, 0.95, 0.04)) // jump to max, hold 2 more
	if got := g.Decide(obsAt(1, 18, 0.30, 0.04)); got != ctx.Table.MaxIdx() {
		t.Fatalf("hold epoch 1 chose %d, want max", got)
	}
	if got := g.Decide(obsAt(2, 18, 0.30, 0.04)); got != ctx.Table.MaxIdx() {
		t.Fatalf("hold epoch 2 chose %d, want max", got)
	}
	if got := g.Decide(obsAt(3, 18, 0.30, 0.04)); got == ctx.Table.MaxIdx() {
		t.Fatal("hold did not expire")
	}
}

func TestConservativeSteps(t *testing.T) {
	g := NewConservative()
	ctx := testCtx(1)
	g.Reset(ctx)
	g.Decide(Observation{Epoch: -1})
	// High load: one step at a time.
	got := g.Decide(obsAt(0, 0, 0.95, 0.04))
	if got != 1 {
		t.Fatalf("first up-step landed at %d, want 1", got)
	}
	got = g.Decide(obsAt(1, 1, 0.95, 0.04))
	if got != 2 {
		t.Fatalf("second up-step landed at %d, want 2", got)
	}
	// Low load: step back down.
	got = g.Decide(obsAt(2, 2, 0.05, 0.04))
	if got != 1 {
		t.Fatalf("down-step landed at %d, want 1", got)
	}
	// Mid load: hold.
	got = g.Decide(obsAt(3, 1, 0.5, 0.04))
	if got != 1 {
		t.Fatalf("mid load moved to %d, want hold at 1", got)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range []string{"performance", "powersave", "ondemand", "conservative", "mldtm"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, g.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown governor accepted")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register must panic")
		}
	}()
	Register("ondemand", func() Governor { return NewOndemand() })
}
