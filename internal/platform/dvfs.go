package platform

import "fmt"

// DVFS models the voltage-frequency actuator of one cluster: the regulator
// ramp plus PLL relock that makes each operating-point change cost real
// time. The transition cost is what the paper's T_OVH term (Eq. 5) charges
// against the slack budget, so it must be accounted for, not assumed free.
type DVFS struct {
	table OPPTable
	idx   int

	// BaseLatencyS is the fixed cost of any transition (PLL relock, kernel
	// cpufreq path). PerStepLatencyS adds regulator ramp time per table
	// step crossed, which makes large jumps (200→2000 MHz) cost more than
	// neighbouring moves, as on real hardware.
	BaseLatencyS    float64
	PerStepLatencyS float64

	transitions int
	totalCostS  float64
}

// NewDVFS creates an actuator over the table, initially at startIdx.
// Defaults model the Exynos 5422 cpufreq path: ≈50 µs base plus ≈10 µs per
// step. It panics on an invalid table (configuration bug).
func NewDVFS(table OPPTable, startIdx int) *DVFS {
	if err := table.Validate(); err != nil {
		panic(err)
	}
	return &DVFS{
		table:           table,
		idx:             table.Clamp(startIdx),
		BaseLatencyS:    50e-6,
		PerStepLatencyS: 10e-6,
	}
}

// Table returns the actuator's OPP table.
func (d *DVFS) Table() OPPTable { return d.table }

// CurrentIdx returns the index of the active operating point.
func (d *DVFS) CurrentIdx() int { return d.idx }

// Current returns the active operating point.
func (d *DVFS) Current() OPP { return d.table[d.idx] }

// Set switches to the operating point at idx (clamped to the table) and
// returns the transition latency in seconds. Setting the current index
// costs nothing, mirroring the cpufreq fast path.
func (d *DVFS) Set(idx int) float64 {
	idx = d.table.Clamp(idx)
	if idx == d.idx {
		return 0
	}
	steps := idx - d.idx
	if steps < 0 {
		steps = -steps
	}
	cost := d.BaseLatencyS + float64(steps)*d.PerStepLatencyS
	d.idx = idx
	d.transitions++
	d.totalCostS += cost
	return cost
}

// SetMHz switches to the operating point with the exact frequency in MHz.
// It returns an error when the table has no such point; the governor API
// works in indices, so this path is only used by CLI flag parsing.
func (d *DVFS) SetMHz(mhz int) (float64, error) {
	i := d.table.IndexOfMHz(mhz)
	if i < 0 {
		return 0, fmt.Errorf("platform: no OPP at %d MHz", mhz)
	}
	return d.Set(i), nil
}

// Transitions returns the number of operating-point changes performed.
func (d *DVFS) Transitions() int { return d.transitions }

// TotalCostS returns the cumulative transition latency in seconds.
func (d *DVFS) TotalCostS() float64 { return d.totalCostS }

// Reset restores the actuator to startIdx and clears statistics.
func (d *DVFS) Reset(startIdx int) {
	d.idx = d.table.Clamp(startIdx)
	d.transitions = 0
	d.totalCostS = 0
}
