package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"qgov/internal/governor"
	"qgov/internal/ring"
	"qgov/internal/serve/client"
	"qgov/internal/trace"
	"qgov/internal/wire"
)

// This file is the replica's side of fleet membership. The router pushes
// the membership table (a wire.Members document) to every replica via
// OpMembers on each ring change; the replica installs it, stamps its
// epoch into every decide reply, and — when a stale direct client sends
// a decide for a session the ring places elsewhere — forwards the
// request to the owner instead of failing it. Forwarded frames carry
// wire.FlagForwarded and are never relayed a second time, so transient
// disagreement between two replicas' tables costs one extra hop, not a
// loop. A flat server outside any fleet has no table: epoch 0, no
// forwarding, exactly the old behaviour.

// fleetView is one installed membership table with the ring built from
// it. Immutable once installed; installs swap the whole view.
type fleetView struct {
	table wire.Members
	ring  *ring.Ring
}

// memberEpoch implements connBackend: the installed membership epoch,
// stamped into every decide reply (0 outside any fleet).
func (s *Server) memberEpoch() uint32 { return s.fleetEpoch.Load() }

// originName is the span origin this replica stamps on its traces: its
// own fleet address, or "" for a flat server outside any fleet (a
// router aggregating spans fills empty origins with the member address
// it fetched them from).
func (s *Server) originName() string {
	s.fleetMu.RLock()
	defer s.fleetMu.RUnlock()
	if s.fleet == nil {
		return ""
	}
	return s.fleet.table.Self
}

// membersTable answers an OpMembers fetch: the installed table, or a
// zero-epoch empty table outside any fleet.
func (s *Server) membersTable() wire.Members {
	s.fleetMu.RLock()
	defer s.fleetMu.RUnlock()
	if s.fleet == nil {
		return wire.Members{}
	}
	return s.fleet.table
}

// installMembers answers an OpMembers push: it installs the table if it
// is newer than the current one and drops peer connections to members no
// longer on the ring. Stale pushes (an older epoch racing a newer one)
// are ignored; the reply body always carries the table now in force.
func (s *Server) installMembers(msg wire.Members) (uint16, []byte) {
	if msg.Epoch == 0 || len(msg.Members) == 0 {
		return http.StatusBadRequest, errorBody(errf("members push needs a non-zero epoch and at least one member"))
	}
	self := false
	for _, m := range msg.Members {
		if m == msg.Self {
			self = true
			break
		}
	}
	if !self {
		return http.StatusBadRequest, errorBody(errf("self %q is not in the member list", msg.Self))
	}

	var stale []*client.Client
	s.fleetMu.Lock()
	if s.fleet != nil && msg.Epoch <= s.fleet.table.Epoch {
		cur := s.fleet.table
		s.fleetMu.Unlock()
		return http.StatusOK, jsonBody(cur)
	}
	s.fleet = &fleetView{table: msg, ring: ring.New(msg.VNodes, msg.Members...)}
	for addr, cl := range s.peers {
		if !s.fleet.ring.Has(addr) {
			delete(s.peers, addr)
			stale = append(stale, cl)
		}
	}
	s.fleetEpoch.Store(msg.Epoch)
	s.fleetMu.Unlock()
	for _, cl := range stale {
		cl.Close()
	}
	s.logf("serve: installed membership epoch %d (%d members, self %s)", msg.Epoch, len(msg.Members), msg.Self)
	return http.StatusOK, jsonBody(msg)
}

// peer returns the multiplexed connection to another replica, dialing on
// first use. Peers are only ever other fleet members — the forwarding
// targets.
func (s *Server) peer(addr string) (*client.Client, error) {
	s.fleetMu.RLock()
	cl := s.peers[addr]
	s.fleetMu.RUnlock()
	if cl != nil {
		return cl, nil
	}
	nc, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	s.fleetMu.Lock()
	if s.peers == nil { // server closed under us
		s.fleetMu.Unlock()
		nc.Close()
		return nil, errf("server is closed")
	}
	if cur := s.peers[addr]; cur != nil {
		s.fleetMu.Unlock()
		nc.Close()
		return cur, nil
	}
	s.peers[addr] = nc
	s.fleetMu.Unlock()
	return nc, nil
}

// dropPeer forgets a peer connection after a transport error, so the
// next forward redials instead of reusing a poisoned client.
func (s *Server) dropPeer(addr string, cl *client.Client) {
	s.fleetMu.Lock()
	if s.peers[addr] == cl {
		delete(s.peers, addr)
	}
	s.fleetMu.Unlock()
	cl.Close()
}

// closePeers tears down every peer connection; part of Server.Close.
func (s *Server) closePeers() {
	s.fleetMu.Lock()
	peers := s.peers
	s.peers = nil
	s.fleetMu.Unlock()
	for _, cl := range peers {
		cl.Close()
	}
}

// forwardMisrouted is the second pass of the binary decide path: any
// request whose session this replica does not hold, and whose ring owner
// is another live member, is relayed there and answered with the owner's
// decision. Only first-hop requests are relayed (FlagForwarded bounds
// the relay depth at one), and without a fleet table the pass is a
// no-op — the "unknown session" error from the first pass stands.
func (s *Server) forwardMisrouted(batch []*observeReq, batchTrace trace.TraceID) {
	s.fleetMu.RLock()
	fl := s.fleet
	s.fleetMu.RUnlock()
	if fl == nil {
		return
	}
	var groups map[string][]*observeReq
	for _, r := range batch {
		if !r.unknown || r.m.Flags&wire.FlagForwarded != 0 {
			continue
		}
		owner, ok := fl.ring.OwnerBytes(r.m.Session)
		if !ok || owner == fl.table.Self {
			continue
		}
		if groups == nil {
			groups = make(map[string][]*observeReq)
		}
		groups[owner] = append(groups[owner], r)
	}
	if groups == nil {
		return
	}
	var wg sync.WaitGroup
	for owner, reqs := range groups {
		wg.Add(1)
		go func(owner string, reqs []*observeReq) {
			defer wg.Done()
			s.forwardTo(owner, reqs, batchTrace)
		}(owner, reqs)
	}
	wg.Wait()
}

// forwardTo relays one owner's worth of misrouted requests and copies
// the owner's decisions back into them. A transport failure fails only
// these requests (per-entry errors, like any batch) and drops the peer
// connection so the next batch redials. Traced requests (their own wire
// id, or the batch's sampled id) carry the id across the hop and record
// a "forward" span on this — the misrouting — side.
func (s *Server) forwardTo(owner string, reqs []*observeReq, batchTrace trace.TraceID) {
	fail := func(err error) {
		for _, r := range reqs {
			r.oppIdx, r.freqMHz = -1, 0
			r.errMsg = fmt.Sprintf("forwarding to owner %s: %v", owner, err)
		}
	}
	var traces []uint64
	for i, r := range reqs {
		tid := r.m.TraceID
		if tid == 0 {
			tid = uint64(batchTrace)
		}
		if tid != 0 && traces == nil {
			traces = make([]uint64, len(reqs))
		}
		if traces != nil {
			traces[i] = tid
		}
	}
	if traces != nil {
		start := time.Now()
		origin := s.originName()
		defer func() {
			durUS := float64(time.Since(start)) / float64(time.Microsecond)
			for i, r := range reqs {
				if traces[i] == 0 {
					continue
				}
				s.tracer.Record(trace.Span{
					Trace:   trace.TraceID(traces[i]),
					Stage:   "forward",
					Origin:  origin,
					Session: string(r.m.Session),
					Replica: owner,
					Start:   start.UnixNano(),
					DurUS:   durUS,
					Err:     r.errMsg,
				})
			}
		}()
	}
	cl, err := s.peer(owner)
	if err != nil {
		fail(err)
		return
	}
	sessions := make([][]byte, len(reqs))
	obs := make([]governor.Observation, len(reqs))
	out := make([]client.Decision, len(reqs))
	for i, r := range reqs {
		sessions[i] = r.m.Session
		obs[i] = r.m.Obs
	}
	if err := cl.ForwardBatch(sessions, obs, out, traces); err != nil {
		s.dropPeer(owner, cl)
		fail(err)
		return
	}
	for i, r := range reqs {
		r.oppIdx = int32(out[i].OPPIdx)
		r.freqMHz = int32(out[i].FreqMHz)
		r.errMsg = out[i].Err
	}
	s.forwarded.Add(int64(len(reqs)))
}
